// Geo-inference example (§4.4 of the paper): extend iGDB's geographic
// knowledge from logical measurements. Hoiho geolocates hostnames with
// learned naming conventions, IXP prefixes pin peering-LAN addresses, and
// latency-constrained belief propagation pushes locations to neighbouring
// hops — surfacing (metro, AS) presences absent from every declarative
// source, including networks with no public records at all.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"igdb/internal/core"
	"igdb/internal/geoloc"
	"igdb/internal/ingest"
	"igdb/internal/paths"
	"igdb/internal/worldgen"
)

func main() {
	world := worldgen.Generate(worldgen.SmallConfig())
	store := ingest.NewStore("")
	if err := ingest.Collect(world, store, time.Now().UTC()); err != nil {
		log.Fatal(err)
	}
	g, err := core.Build(store, core.BuildOptions{SkipPolygons: true})
	if err != nil {
		log.Fatal(err)
	}
	p, err := paths.NewPipeline(g, store)
	if err != nil {
		log.Fatal(err)
	}

	// Seed: every IP geolocatable without propagation.
	known := p.KnownLocations()
	fmt.Printf("seed locations (hoiho + IXP prefixes + anchors): %d\n", len(known))

	// Belief propagation with the paper's thresholds (2 ms metro
	// differential, 30 ms origin bound).
	inferred := geoloc.Propagate(p.Observations(), known, geoloc.Options{})
	fmt.Printf("IPs newly geolocated by belief propagation: %d\n", len(inferred))

	// Which (metro, AS) presences are new to the database?
	existing := map[[2]int]bool{}
	rows := g.Rel.MustQuery(`SELECT DISTINCT asn, metro, state_province, country FROM asn_loc`)
	for _, r := range rows.Rows {
		asn, _ := r[0].AsInt()
		m, _ := r[1].AsText()
		s, _ := r[2].AsText()
		c, _ := r[3].AsText()
		if city := g.CityIndex(m, s, c); city >= 0 {
			existing[[2]int{city, int(asn)}] = true
		}
	}
	ipASN := map[uint32]int{}
	for _, o := range p.Observations() {
		for i, ip := range o.IPs {
			if o.ASNs[i] >= 0 {
				ipASN[ip] = o.ASNs[i]
			}
		}
	}
	tuples := geoloc.NewTuples(inferred, ipASN, existing)
	fmt.Printf("new (metro, AS) tuples discovered: %d\n", len(tuples))

	type tup struct {
		metro string
		asn   int
	}
	var list []tup
	for k := range tuples {
		list = append(list, tup{metro: g.Cities[k[0]].Metro(), asn: k[1]})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].asn != list[j].asn {
			return list[i].asn < list[j].asn
		}
		return list[i].metro < list[j].metro
	})
	fmt.Println("\nsample of inferred presences:")
	for i, t := range list {
		if i >= 12 {
			break
		}
		fmt.Printf("  AS%-6d @ %s\n", t.asn, t.metro)
	}

	// Score against ground truth — possible only in this reproduction.
	truth := map[uint32]int{}
	for _, tr := range world.Traces {
		for _, h := range tr.Hops {
			truth[h.IP] = h.City
		}
	}
	correct, total := 0, 0
	for ip, inf := range inferred {
		want, ok := truth[ip]
		if !ok {
			continue
		}
		total++
		if g.Cities[inf.City].Name == world.Cities[want].Name {
			correct++
		}
	}
	if total > 0 {
		fmt.Printf("\nbelief-propagation accuracy vs ground truth: %d/%d (%.0f%%)\n",
			correct, total, 100*float64(correct)/float64(total))
	}
}
