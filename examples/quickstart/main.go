// Quickstart: generate a small synthetic Internet, collect snapshots from
// every emulated data source, build the cross-layer iGDB database, audit
// its consistency, and run a first SQL query — the whole pipeline in one
// main.
package main

import (
	"fmt"
	"log"
	"time"

	"igdb/internal/core"
	"igdb/internal/ingest"
	"igdb/internal/worldgen"
)

func main() {
	// 1. A deterministic miniature Internet stands in for the live sources.
	world := worldgen.Generate(worldgen.SmallConfig())
	fmt.Printf("world: %d cities, %d ASes, %d ISPs, %d traceroutes\n",
		len(world.Cities), len(world.ASes), len(world.ISPs), len(world.Traces))

	// 2. Collect a timestamped snapshot of all eleven input sources.
	store := ingest.NewStore("") // in-memory; pass a directory to persist
	if err := ingest.Collect(world, store, time.Now().UTC()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected: %v\n", ingest.Sources)

	// 3. Build iGDB: standardization, right-of-way inference, the bridge.
	t0 := time.Now()
	g, err := core.Build(store, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d relations in %v\n", len(g.Rel.TableNames()), time.Since(t0).Round(time.Millisecond))

	// 4. Audit cross-layer consistency (the paper's organizing principle).
	rep := g.ConsistencyCheck()
	fmt.Printf("consistency: %d rows audited, %d violations\n", rep.Checked, len(rep.Violations))

	// 5. Ask a cross-layer question in SQL: where does Cogent peer in
	// Germany, and how far is each metro from Frankfurt?
	rows, err := g.Rel.Query(`
		SELECT DISTINCT l.metro, METRO_DIST(l.metro || '-DE', 'Frankfurt-DE') AS km
		FROM asn_loc l
		WHERE l.asn = 174 AND l.country = 'DE'
		ORDER BY km`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAS174 peering metros in Germany:")
	for _, r := range rows.Rows {
		metro, _ := r[0].AsText()
		km, _ := r[1].AsFloat()
		fmt.Printf("  %-12s %6.0f km from Frankfurt\n", metro, km)
	}
}
