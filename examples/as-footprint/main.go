// AS-footprint example (§4.1 of the paper): identify the geographic spatial
// extent of autonomous systems with plain SQL over iGDB — the global
// country-footprint ranking (Table 2) and the Cox/Charter metro overlap
// (Figure 6) — and render the overlap map as SVG.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"igdb/internal/core"
	"igdb/internal/geo"
	"igdb/internal/ingest"
	"igdb/internal/render"
	"igdb/internal/worldgen"
)

func main() {
	world := worldgen.Generate(worldgen.SmallConfig())
	store := ingest.NewStore("")
	if err := ingest.Collect(world, store, time.Now().UTC()); err != nil {
		log.Fatal(err)
	}
	g, err := core.Build(store, core.BuildOptions{SkipPolygons: true})
	if err != nil {
		log.Fatal(err)
	}

	// Table 2: which ASes have physical presence in the most countries?
	rows := g.Rel.MustQuery(`
		SELECT l.asn, MIN(n.asn_name) AS name, COUNT(DISTINCT l.country) AS countries
		FROM asn_loc l
		JOIN asn_name n ON n.asn = l.asn AND n.source = 'asrank'
		GROUP BY l.asn ORDER BY countries DESC, l.asn LIMIT 10`)
	fmt.Println("ASes with physical presence in the most countries:")
	for _, r := range rows.Rows {
		asn, _ := r[0].AsInt()
		name, _ := r[1].AsText()
		n, _ := r[2].AsInt()
		fmt.Printf("  AS%-6d %-24s %d countries\n", asn, name, n)
	}

	// Figure 6: metro overlap between two access ISPs.
	overlap := g.Rel.MustQuery(`
		SELECT DISTINCT a.metro, a.state_province
		FROM asn_loc a
		JOIN asn_loc b ON a.metro = b.metro AND a.state_province = b.state_province
		WHERE a.asn = 22773 AND b.asn IN (20115, 7843, 20001, 10796)
		  AND a.country = 'US' AND b.country = 'US'
		ORDER BY a.metro`)
	fmt.Printf("\nCox ∩ Charter: %d shared metros\n", overlap.Len())
	m := render.NewMap(geo.BBox{MinLon: -126, MinLat: 23, MaxLon: -65, MaxLat: 51}, 1000, 520)
	m.SetTitle("Metros served by both Cox and Charter")
	for _, r := range overlap.Rows {
		metro, _ := r[0].AsText()
		state, _ := r[1].AsText()
		fmt.Printf("  %s, %s\n", metro, state)
		if idx := g.CityByName(metro, state, "US"); idx >= 0 {
			m.Circle(g.Cities[idx].Loc, render.Style{Stroke: "#c0392b", StrokeWidth: 2, Radius: 6})
			m.Text(g.Cities[idx].Loc, metro, 10)
		}
	}
	if err := os.WriteFile("overlap.svg", m.SVG(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote overlap.svg")
}
