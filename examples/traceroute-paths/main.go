// Traceroute-paths example (§4.2 of the paper): fuse a logical traceroute
// with iGDB's physical layer. Each hop is attributed to an AS (bdrmap),
// geolocated (Hoiho / IXP prefixes / anchors), the metro sequence is routed
// along inferred conduits, MPLS-hidden intermediate PoPs are proposed via a
// 25-mile buffer join, and the route is scored with the distance cost.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"igdb/internal/core"
	"igdb/internal/geo"
	"igdb/internal/ingest"
	"igdb/internal/iptrie"
	"igdb/internal/paths"
	"igdb/internal/render"
	"igdb/internal/worldgen"
)

func main() {
	world := worldgen.Generate(worldgen.SmallConfig())
	store := ingest.NewStore("")
	if err := ingest.Collect(world, store, time.Now().UTC()); err != nil {
		log.Fatal(err)
	}
	g, err := core.Build(store, core.BuildOptions{SkipPolygons: true})
	if err != nil {
		log.Fatal(err)
	}
	p, err := paths.NewPipeline(g, store)
	if err != nil {
		log.Fatal(err)
	}

	// The reference measurement: Kansas City → Atlanta.
	ref := world.FindTrace("Kansas City", "Atlanta")
	if ref == nil {
		log.Fatal("reference traceroute not in the mesh")
	}
	for _, m := range p.Measurements {
		if m.SrcAnchor != ref.SrcAnchor || m.DstAnchor != ref.DstAnchor {
			continue
		}
		ta := p.AnalyzeTrace(m)
		fmt.Println("hop  ip               rtt(ms)  AS      metro            via")
		for i, h := range ta.Hops {
			metro := "?"
			if h.City >= 0 {
				metro = g.Cities[h.City].Name
			}
			fmt.Printf("%3d  %-15s  %7.2f  AS%-5d %-16s %s\n",
				i+1, iptrie.FormatAddr(h.IP), h.RTT, h.ASN, metro, h.GeoSource)
		}

		var metros []string
		for _, c := range ta.CitySeq {
			metros = append(metros, g.Cities[c].Name)
		}
		fmt.Printf("\nvisible metro sequence: %v\n", metros)

		kc := g.CityByName("Kansas City", "", "US")
		dal := g.CityByName("Dallas", "", "US")
		fmt.Println("\nMPLS-hidden candidates between Kansas City and Dallas (25-mile buffer):")
		for _, c := range p.HiddenNodeCandidates(kc, dal, ta.ASPath, 25) {
			fmt.Printf("  %s (AS%d), %.1f km off the conduit\n", g.Cities[c.City].Name, c.ASN, c.Km)
		}

		inferred, shortest, cost, ok := p.DistanceCost(ta.CitySeq)
		if ok {
			fmt.Printf("\ninferred physical route: %.0f km\n", inferred)
			fmt.Printf("shortest practical path: %.0f km\n", shortest)
			fmt.Printf("distance cost:           %.2f\n", cost)
		}

		// Render the three-path comparison.
		mp := render.NewMap(geo.BBox{MinLon: -103, MinLat: 26, MaxLon: -78, MaxLat: 42}, 1100, 700)
		mp.SetTitle("Traceroute (blue) vs inferred physical (green) vs shortest practical (orange)")
		var straight []geo.Point
		for _, c := range ta.CitySeq {
			straight = append(straight, g.Cities[c].Loc)
		}
		mp.Polyline(straight, render.Style{Stroke: "#2980b9", StrokeWidth: 2})
		routeGeom, _ := p.InferredRoute(ta.CitySeq)
		mp.Polyline(routeGeom, render.Style{Stroke: "#27ae60", StrokeWidth: 1.6})
		if sp, _, ok := g.Paths.ShortestPracticalPath(ta.CitySeq[0], ta.CitySeq[len(ta.CitySeq)-1]); ok {
			mp.Polyline(g.Paths.RouteGeometry(sp), render.Style{Stroke: "#e67e22", StrokeWidth: 1.6, Dash: "6,3"})
		}
		if err := os.WriteFile("physical_path.svg", mp.SVG(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nwrote physical_path.svg")
		return
	}
	log.Fatal("measurement for the reference traceroute not found")
}
