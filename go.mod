module igdb

go 1.22
