#!/bin/sh
# Tier-1 verification gate: formatting, vet, build, and the full test
# suite under the race detector. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...

# Project-aware static analysis, all thirteen analyzers: SQL/schema
# consistency, error and logging discipline, metric hygiene, path-sensitive
# mutex-guard checking, lock ordering (deadlock detection), goroutine
# leaks, unclosed closers, call-graph dead code, snapshot immutability,
# context discipline, hot-path allocation discipline (alloclint), and dead
# suppressions. Any finding fails the gate; per-analyzer timings land in
# artifacts/lint.json and BENCH_lint.json.
scripts/lint.sh

go test -race ./...

# Replay the fuzz seed corpora (wkt, reldb SQL — including the seeds
# harvested from the repo's own queries — and source parsers) and run
# the fault-injection suites (chaos matrix, degraded builds/rebuilds,
# collect retry) under the race detector.
go test -race -run 'Fuzz.*' ./...
go test -race -run 'TestChaos|TestDegraded|TestStale|TestFailedRebuild|TestCollect|TestStoreConcurrent|TestFaults|TestDrop|TestFlaky' \
    ./internal/chaos/ ./internal/core/ ./internal/ingest/ ./internal/server/ ./cmd/igdb/

# Replication gate: the chaos acceptance matrix (truncated chunks, bit
# flips, stalls, dropped connections, leader down) and the mid-fetch
# failover test under the race detector — a follower must never serve a
# partial or corrupt snapshot, and must keep answering while its leader
# is gone.
go test -race -run 'TestReplica|TestSlowLoris' ./internal/server/
go test -race ./internal/replicate/

# Smoke the benchmark harness (one iteration per benchmark) so bench.sh and
# the benchmarks it drives cannot rot.
scripts/bench.sh --smoke

# Smoke the load generator end to end: a real leader + follower pair on a
# tiny store, corpus replay against both, EXPLAIN ANALYZE and
# /debug/statements asserted against the live leader, and a leader killed
# mid-stream with the follower's error rate asserted to be exactly zero.
scripts/loadgen.sh --smoke

# Smoke the what-if failure engine: a tiny deterministic scenario batch
# under the race detector (worker-pool result invariance and SQL-queryable
# stored rows), plus the harness that writes BENCH_simulate.json.
go test -race -run 'TestRunWorkerCountInvariance|TestStoreSQLQueryable' ./internal/simulate/
scripts/simulate.sh --smoke

echo "check.sh: all green"
