#!/bin/sh
# Tier-1 verification gate: formatting, vet, build, and the full test
# suite under the race detector. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

echo "check.sh: all green"
