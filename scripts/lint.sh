#!/bin/sh
# Static-analysis wrapper around cmd/igdblint.
#
# Lints the whole module, prints findings in file:line:col form, and always
# writes the machine-readable JSON report (findings plus per-analyzer wall
# time and counts) to artifacts/lint.json, and the standalone benchmark
# artifact — per-analyzer rows plus the parallel driver's workers, cores,
# serial baseline, and speedup — to BENCH_lint.json, so CI can archive
# both. Exits non-zero on findings.
#
# Usage:
#   scripts/lint.sh                 # lint ./...
#   scripts/lint.sh ./internal/...  # lint specific packages
set -eu

cd "$(dirname "$0")/.."

mkdir -p artifacts

status=0
go run ./cmd/igdblint -json -bench BENCH_lint.json "$@" >artifacts/lint.json || status=$?
if [ "$status" -eq 2 ]; then
    echo "lint.sh: igdblint failed to load packages" >&2
    exit 2
fi

if [ "$status" -ne 0 ]; then
    # Re-render in human file:line:col form for the terminal; findings are
    # deterministic, so both runs see the same set.
    go run ./cmd/igdblint "$@" || true
    echo "lint.sh: findings written to artifacts/lint.json" >&2
else
    echo "lint.sh: clean (artifacts/lint.json)"
fi

# Per-analyzer summary (name, wall ms, finding count) from the JSON
# report, so CI logs show which of the thirteen analyzers ran and what
# each one cost. No jq in the image; the report is machine-written, so a
# line-oriented awk pass over its stable field order is safe.
awk '
/"name":/     { gsub(/[",]/, "", $2); name = $2 }
/"wall_ms":/  { gsub(/,/, "", $2); ms = $2 }
/"findings": [0-9]+/ && name != "" {
    gsub(/,/, "", $2)
    printf "lint.sh:   %-14s %8.3f ms  %s finding(s)\n", name, ms, $2
    name = ""
}
' artifacts/lint.json

exit "$status"
