#!/bin/sh
# What-if failure-engine benchmark harness.
#
# Runs BenchmarkScenarioThroughput at one worker and at one worker per
# available CPU, then writes BENCH_simulate.json at the repo root with
# scenarios/sec for both settings, the measured all-core speedup, and the
# core count (the speedup is only meaningful against it: a 1-core runner
# reports ~1x by construction).
#
# Usage:
#   scripts/simulate.sh           # full run (benchtime from BENCHTIME, default 2s)
#   scripts/simulate.sh --smoke   # one iteration per benchmark; correctness only
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2s}"
if [ "${1:-}" = "--smoke" ]; then
    benchtime=1x
fi

out=BENCH_simulate.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

go test -run '^$' -bench 'BenchmarkScenarioThroughput' \
    -benchtime "$benchtime" ./internal/simulate/ | tee "$tmp"

# Benchmark lines look like:
#   BenchmarkScenarioThroughput/workers=1-8  5  210ms/op  304.8 scenarios/sec
# The first workers=1 series is the single-core baseline; the last series
# is the all-core run (identical name plus a #01 suffix on a 1-CPU host).
awk -v cores="$cores" '
/^Benchmark/ {
    sps = ""
    for (i = 3; i < NF; i++) if ($(i + 1) == "scenarios/sec") sps = $i
    if (sps == "") next
    if (single == "") single = sps
    all = sps
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (name ~ /workers=1$|workers=1#/) nworkers = 1
    else { nworkers = name; sub(/.*workers=/, "", nworkers); sub(/#.*/, "", nworkers) }
}
END {
    if (single == "" || all == "") {
        print "simulate.sh: no scenarios/sec samples parsed" > "/dev/stderr"
        exit 1
    }
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkScenarioThroughput\",\n"
    printf "  \"cores\": %s,\n", cores
    printf "  \"single_worker_scenarios_per_sec\": %s,\n", single
    printf "  \"all_core_scenarios_per_sec\": %s,\n", all
    printf "  \"all_core_workers\": %s,\n", nworkers
    printf "  \"speedup\": %.2f\n", all / single
    printf "}\n"
}
' "$tmp" > "$out"

echo "simulate.sh: wrote $out ($(tr -d ' \n' < "$out"))"
