#!/bin/sh
# Replicated-serve-tier load harness: stands up a leader + follower pair on
# a tiny collected store, replays the harvested query corpus (plus export
# and path traffic) against both with `igdb loadgen`, then repeats the
# follower run while the leader is killed mid-stream — the follower must
# keep answering with a zero error rate. The three reports are merged into
# BENCH_serve.json alongside scripts/bench.sh's entries.
#
# Usage:
#   scripts/loadgen.sh            # full run (duration from LOADGEN_DURATION, default 10s)
#   scripts/loadgen.sh --smoke    # 2s runs; correctness only
set -eu

cd "$(dirname "$0")/.."

duration="${LOADGEN_DURATION:-10s}"
conc="${LOADGEN_CONCURRENCY:-4}"
if [ "${1:-}" = "--smoke" ]; then
    duration=2s
    conc=2
fi

out=BENCH_serve.json
work=$(mktemp -d)
leader_pid=""
follower_pid=""
cleanup() {
    [ -n "$leader_pid" ] && kill "$leader_pid" 2>/dev/null || true
    [ -n "$follower_pid" ] && kill "$follower_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/igdb" ./cmd/igdb

"$work/igdb" collect -dir "$work/store" >/dev/null

# Ports derived from the PID so concurrent runs do not collide.
leader_port=$(( ($$ % 10000) + 20000 ))
follower_port=$(( leader_port + 1 ))
leader_url="http://127.0.0.1:$leader_port"
follower_url="http://127.0.0.1:$follower_port"

# wait_health URL PATTERN — poll /healthz until the pattern appears.
wait_health() {
    i=0
    while ! curl -sf --max-time 2 "$1/healthz" 2>/dev/null | grep -q "$2"; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "loadgen.sh: $1 never reported $2" >&2
            exit 1
        fi
        sleep 0.2
    done
}

start_leader() {
    "$work/igdb" serve -dir "$work/store" -leader -addr "127.0.0.1:$leader_port" \
        >>"$work/leader.log" 2>&1 &
    leader_pid=$!
    wait_health "$leader_url" '"role":"leader"'
}

start_leader
"$work/igdb" serve -follow "$leader_url" -addr "127.0.0.1:$follower_port" \
    -replica-poll 500ms >>"$work/follower.log" 2>&1 &
follower_pid=$!
# The follower is synced once its health flips from "syncing" to "ok".
wait_health "$follower_url" '"status":"ok"'

run() { # $1 = report name, $2 = target URL
    "$work/igdb" loadgen -url "$2" -duration "$duration" -concurrency "$conc" \
        -name "$1" -o "$work/$1.json"
    echo "loadgen.sh: $1: $(grep -E '"(rps|p99_ms|error_rate)"' "$work/$1.json" | tr -d ' \n')"
}

# Observability smoke against the live leader: EXPLAIN ANALYZE must return
# an instrumented plan, and after a loadgen run /debug/statements must hold
# per-fingerprint aggregates.
explain_out=$(curl -sf --max-time 5 -X POST "$leader_url/sql" \
    -d 'EXPLAIN ANALYZE SELECT asn, country FROM asn_loc LIMIT 5')
case "$explain_out" in
*'"plan"'*'actual'*) ;;
*)
    echo "loadgen.sh: EXPLAIN ANALYZE over POST /sql returned no instrumented plan:" >&2
    echo "$explain_out" >&2
    exit 1
    ;;
esac
echo "loadgen.sh: EXPLAIN ANALYZE smoke passed on the leader"

run LoadgenLeader "$leader_url"
run LoadgenFollower "$follower_url"

if ! curl -sf --max-time 5 "$leader_url/debug/statements" | grep -q '"fingerprint"'; then
    echo "loadgen.sh: /debug/statements holds no fingerprints after a loadgen run" >&2
    exit 1
fi
echo "loadgen.sh: /debug/statements aggregated the loadgen run"

# Failover run: kill the leader partway through a follower-directed run.
# The follower keeps serving its last good snapshot, so its error rate must
# stay exactly zero.
(
    sleep 1
    kill "$leader_pid" 2>/dev/null || true
) &
killer_pid=$!
run LoadgenFollowerLeaderKilled "$follower_url"
wait "$killer_pid" 2>/dev/null || true
leader_pid=""
if ! grep -q '"error_rate": 0,' "$work/LoadgenFollowerLeaderKilled.json"; then
    echo "loadgen.sh: follower served errors while the leader was down:" >&2
    cat "$work/LoadgenFollowerLeaderKilled.json" >&2
    exit 1
fi
echo "loadgen.sh: follower error rate 0 with the leader killed mid-stream"

# Merge the three reports into BENCH_serve.json. bench.sh rewrites the file
# as a JSON array; we append to it (or start a fresh array), so both
# harnesses' entries coexist.
merged="$work/merged.json"
if [ -s "$out" ]; then
    sed '$d' "$out" > "$merged" # drop the closing ]
    printf ',\n' >> "$merged"
else
    printf '[\n' > "$merged"
fi
first=1
for name in LoadgenLeader LoadgenFollower LoadgenFollowerLeaderKilled; do
    [ "$first" = 1 ] || printf ',\n' >> "$merged"
    cat "$work/$name.json" >> "$merged"
    first=0
done
printf ']\n' >> "$merged"
mv "$merged" "$out"

echo "loadgen.sh: wrote 3 loadgen reports to $out"
