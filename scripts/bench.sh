#!/bin/sh
# Serving-layer and build-tracing benchmark harness.
#
# Runs the SQL-serving throughput benchmark (with and without the result
# cache), the reldb prepared-vs-parse benchmark, and the traced-vs-untraced
# build benchmark, then writes the parsed results to BENCH_serve.json at the
# repo root. A second pass runs the per-operator executor benchmarks and the
# EXPLAIN-overhead comparison into BENCH_reldb.json (ns/op, B/op and
# allocs/op, plus rows/s where the benchmark reports it).
#
# Usage:
#   scripts/bench.sh            # full run (benchtime from BENCHTIME, default 1s)
#   scripts/bench.sh --smoke    # one iteration per benchmark; correctness only
#
# A full run overwrites the committed artifacts at the repo root. --smoke
# exists so CI can prove the harness and every benchmark still execute; its
# iterations:1 output is meaningless as a measurement, so it is written to
# artifacts/bench-smoke/ and the committed BENCH_*.json keep their real
# (explicit-benchtime) numbers.
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
destdir=.
if [ "${1:-}" = "--smoke" ]; then
    benchtime=1x
    destdir=artifacts/bench-smoke
    mkdir -p "$destdir"
fi

out="$destdir/BENCH_serve.json"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkServeSQLThroughput|BenchmarkBuildTraced' \
    -benchtime "$benchtime" -benchmem . | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkPreparedVsQuery' \
    -benchtime "$benchtime" -benchmem ./internal/reldb/ | tee -a "$tmp"

# Parse `BenchmarkName-P   N   X ns/op ...` lines into a JSON array. No jq
# in the image, so awk renders the JSON directly.
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    nsop = ""; bop = ""; aop = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") nsop = $i
        if ($(i + 1) == "B/op") bop = $i
        if ($(i + 1) == "allocs/op") aop = $i
    }
    if (nsop == "") next
    if (count++) printf ",\n"
    printf "  {\"benchmark\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, nsop
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (aop != "") printf ", \"allocs_per_op\": %s", aop
    printf "}"
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$tmp" > "$out"

echo "bench.sh: wrote $(grep -c '"benchmark"' "$out") results to $out"

# Per-operator executor instrumentation benchmarks. These report a custom
# rows/s metric alongside ns/op, so they get their own artifact and parser.
relout="$destdir/BENCH_reldb.json"
reltmp=$(mktemp)
trap 'rm -f "$tmp" "$reltmp"' EXIT

go test -run '^$' -bench 'BenchmarkOperators|BenchmarkExplainOverhead' \
    -benchtime "$benchtime" -benchmem ./internal/reldb/ | tee "$reltmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    nsop = ""; rps = ""; bop = ""; aop = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") nsop = $i
        if ($(i + 1) == "rows/s") rps = $i
        if ($(i + 1) == "B/op") bop = $i
        if ($(i + 1) == "allocs/op") aop = $i
    }
    if (nsop == "") next
    if (count++) printf ",\n"
    printf "  {\"benchmark\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, nsop
    if (rps != "") printf ", \"rows_per_sec\": %s", rps
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (aop != "") printf ", \"allocs_per_op\": %s", aop
    printf "}"
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$reltmp" > "$relout"

echo "bench.sh: wrote $(grep -c '"benchmark"' "$relout") results to $relout"
