package hoiho

import (
	"fmt"
	"testing"

	"igdb/internal/core"
	"igdb/internal/geo"
)

// gaz builds a small standard-city gazetteer.
func gaz() []core.StandardCity {
	return []core.StandardCity{
		{Name: "Dresden", Country: "DE", Population: 554, Loc: geo.Point{Lon: 13.7, Lat: 51.0}},
		{Name: "Atlanta", State: "GA", Country: "US", Population: 498, Loc: geo.Point{Lon: -84.4, Lat: 33.7}},
		{Name: "Dallas", State: "TX", Country: "US", Population: 1345, Loc: geo.Point{Lon: -96.8, Lat: 32.8}},
		{Name: "Paris", Country: "FR", Population: 2161, Loc: geo.Point{Lon: 2.35, Lat: 48.85}},
		{Name: "Portland", State: "OR", Country: "US", Population: 653, Loc: geo.Point{Lon: -122.7, Lat: 45.5}},
	}
}

func TestLearnAndLocate(t *testing.T) {
	cities := gaz()
	examples := []Example{
		{Hostname: "be2695.rcr21.drs01.atlas.cogentco.com", City: 0},
		{Hostname: "be3172.rcr11.atl02.atlas.cogentco.com", City: 1},
		{Hostname: "te0-1.ccr31.dll01.atlas.cogentco.com", City: 2},
	}
	ex := Learn(examples, cities)
	if ex.Domains() != 1 {
		t.Fatalf("learned %d domains, want 1", ex.Domains())
	}
	// Unseen city, same convention: Paris.
	city, ok := ex.Locate("be9.rcr77.prs03.atlas.cogentco.com")
	if !ok || cities[city].Name != "Paris" {
		t.Errorf("Locate unseen code: city=%v ok=%v", city, ok)
	}
	// No geohint token (2 letters only).
	if _, ok := ex.Locate("be9.rcr77.xx99.atlas.cogentco.com"); ok {
		t.Error("2-letter code should not locate")
	}
	// Unknown domain.
	if _, ok := ex.Locate("drs01.example.net"); ok {
		t.Error("unknown domain should not locate")
	}
}

func TestLearnRequiresSupport(t *testing.T) {
	cities := gaz()
	// A single example is not enough.
	ex := Learn([]Example{
		{Hostname: "a1.drs01.lonely.net", City: 0},
	}, cities)
	if ex.Domains() != 0 {
		t.Errorf("single example should not establish a convention")
	}
}

func TestLearnRequiresMajority(t *testing.T) {
	cities := gaz()
	// Two matching examples drowned by four non-matching ones.
	examples := []Example{
		{Hostname: "x1.drs01.noisy.net", City: 0},
		{Hostname: "x2.atl01.noisy.net", City: 1},
		{Hostname: "x3.zzz.noisy.net", City: 2},
		{Hostname: "x4.zzz.noisy.net", City: 3},
		{Hostname: "x5.zzz.noisy.net", City: 4},
		{Hostname: "x6.zzz.noisy.net", City: 2},
	}
	ex := Learn(examples, cities)
	if ex.Domains() != 0 {
		t.Errorf("minority convention accepted")
	}
}

func TestCodeCollisionPrefersPopulous(t *testing.T) {
	// "Dallas" and a fictional "Dlls" would collide; here use Paris vs a
	// smaller city with the same code.
	cities := append(gaz(), core.StandardCity{Name: "Porositi", Country: "XX", Population: 10})
	// CityCode("Portland") = "prt", CityCode("Porositi") = "prs"? Verify via behavior:
	examples := []Example{
		{Hostname: "r1.prs01.net.example.com", City: 3},
		{Hostname: "r2.prs02.net.example.com", City: 3},
	}
	ex := Learn(examples, cities)
	city, ok := ex.Locate("r9.prs03.net.example.com")
	if !ok {
		t.Fatal("locate failed")
	}
	if cities[city].Name != "Paris" {
		t.Errorf("collision resolved to %s, want the most populous (Paris)", cities[city].Name)
	}
}

func TestCandidates(t *testing.T) {
	cities := gaz()
	examples := []Example{
		{Hostname: "r1.drs01.x.example.com", City: 0},
		{Hostname: "r2.atl01.x.example.com", City: 1},
	}
	ex := Learn(examples, cities)
	cands := ex.Candidates("r3.dll09.x.example.com")
	if len(cands) == 0 || cities[cands[0]].Name != "Dallas" {
		t.Errorf("candidates = %v", cands)
	}
	if got := ex.Candidates("nohint.example.org"); got != nil {
		t.Error("unknown domain should have no candidates")
	}
}

func TestDifferentTokenPositions(t *testing.T) {
	cities := gaz()
	// Domain A encodes at token 0, domain B at token 2.
	examples := []Example{
		{Hostname: "drs1.core.ispa.net", City: 0},
		{Hostname: "atl2.core.ispa.net", City: 1},
		{Hostname: "be1.agg2.dll01.ispb.net", City: 2},
		{Hostname: "be2.agg1.prs02.ispb.net", City: 3},
	}
	ex := Learn(examples, cities)
	if ex.Domains() != 2 {
		t.Fatalf("domains = %d, want 2", ex.Domains())
	}
	if c, ok := ex.Locate("prs9.core.ispa.net"); !ok || cities[c].Name != "Paris" {
		t.Errorf("ispa locate failed: %v %v", c, ok)
	}
	if c, ok := ex.Locate("be9.agg9.atl05.ispb.net"); !ok || cities[c].Name != "Atlanta" {
		t.Errorf("ispb locate failed: %v %v", c, ok)
	}
}

func TestBadCityIndexIgnored(t *testing.T) {
	cities := gaz()
	ex := Learn([]Example{{Hostname: "a.b.c.d", City: 99}}, cities)
	if ex.Domains() != 0 {
		t.Error("out-of-range training city should be ignored")
	}
}

func BenchmarkLocate(b *testing.B) {
	cities := make([]core.StandardCity, 2000)
	for i := range cities {
		cities[i] = core.StandardCity{Name: fmt.Sprintf("City%04d", i), Population: i}
	}
	examples := []Example{
		{Hostname: "r1.cty01.bench.net", City: 0},
		{Hostname: "r2.cty02.bench.net", City: 1},
	}
	ex := Learn(examples, cities)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Locate("r9.cty77.bench.net")
	}
}
