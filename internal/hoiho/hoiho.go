// Package hoiho reimplements the part of Hoiho [Luckie et al. 2021] that
// iGDB consumes: mapping router hostnames to metro locations via learned
// per-domain naming conventions. Operators embed 3-letter city codes at a
// fixed dot-token position ("be2695.rcr21.drs01.atlas.cogentco.com" →
// Dresden); given training pairs of (hostname, true metro), the extractor
// learns which token carries the code for each domain and builds a
// code→city dictionary, then geolocates unseen hostnames — including
// metros never seen in training, via code derivation from the gazetteer.
package hoiho

import (
	"sort"
	"strings"

	"igdb/internal/core"
	"igdb/internal/worldgen"
)

// Example is one labeled training hostname.
type Example struct {
	Hostname string
	City     int // index into the standard-city gazetteer
}

// Extractor geolocates hostnames by learned convention.
type Extractor struct {
	// conventions maps a registrable domain to the token index carrying the
	// city code.
	conventions map[string]int
	// codes maps a 3-letter code to candidate city indices derived from the
	// gazetteer, most populous first.
	codes map[string][]int
	// learned maps codes to cities observed in training: operators'
	// coordinated codes don't always match the name derivation, and a code
	// seen with a known metro beats any derivation.
	learned map[string]int
	cities  []core.StandardCity
}

// registrableDomain approximates the registered suffix as the last two
// labels ("cogentco.com" from "…atlas.cogentco.com").
func registrableDomain(hostname string) string {
	labels := strings.Split(strings.ToLower(hostname), ".")
	if len(labels) < 2 {
		return strings.ToLower(hostname)
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// hostTokens returns the dot-tokens preceding the registrable domain.
func hostTokens(hostname string) []string {
	labels := strings.Split(strings.ToLower(hostname), ".")
	if len(labels) <= 2 {
		return nil
	}
	return labels[:len(labels)-2]
}

// leadingLetters returns the maximal alphabetic prefix of a token.
func leadingLetters(token string) string {
	for i := 0; i < len(token); i++ {
		c := token[i]
		if c < 'a' || c > 'z' {
			return token[:i]
		}
	}
	return token
}

// Learn builds an extractor from training pairs over the given gazetteer.
// A domain's convention is accepted when at least minSupport examples agree
// on a token position and they form a majority of that domain's examples.
func Learn(examples []Example, cities []core.StandardCity) *Extractor {
	const minSupport = 2
	e := &Extractor{
		conventions: make(map[string]int),
		codes:       make(map[string][]int),
		learned:     make(map[string]int),
		cities:      cities,
	}
	// code dictionary from the full gazetteer, most populous candidate first.
	for i, c := range cities {
		code := worldgen.CityCode(c.Name)
		e.codes[code] = append(e.codes[code], i)
	}
	for code := range e.codes {
		ids := e.codes[code]
		sort.Slice(ids, func(a, b int) bool {
			return cities[ids[a]].Population > cities[ids[b]].Population
		})
	}

	// The learner assumes nothing about how operators pick their codes
	// (they coordinate on unambiguous ones, which need not match any name
	// derivation). For every (domain, token position), tally which 3-letter
	// codes co-occur with which labeled cities. The code position is the one
	// where the mapping is (near-)functional: one city per code.
	// Infrastructure tokens ("rcr21", "ccr31") fail that test — the same few
	// codes recur across many cities.
	type slot struct {
		domain string
		idx    int
	}
	occur := make(map[slot]map[string]map[int]int) // code -> city -> count
	totals := make(map[string]int)
	for _, ex := range examples {
		if ex.City < 0 || ex.City >= len(cities) {
			continue
		}
		domain := registrableDomain(ex.Hostname)
		totals[domain]++
		for idx, tok := range hostTokens(ex.Hostname) {
			code := leadingLetters(tok)
			if len(code) != 3 {
				continue
			}
			k := slot{domain, idx}
			if occur[k] == nil {
				occur[k] = make(map[string]map[int]int)
			}
			if occur[k][code] == nil {
				occur[k][code] = make(map[int]int)
			}
			occur[k][code][ex.City]++
		}
	}
	bestVotes := make(map[string]int)
	bestIdx := make(map[string]int)
	for k, byCode := range occur {
		votes := 0
		ambiguous := 0
		for _, byCity := range byCode {
			maxN := 0
			for _, n := range byCity {
				if n > maxN {
					maxN = n
				}
			}
			votes += maxN
			if len(byCity) > 1 {
				ambiguous++
			}
		}
		// Reject positions where codes recur across cities (>10% ambiguous).
		if ambiguous*10 > len(byCode) {
			continue
		}
		cur, have := bestVotes[k.domain]
		if !have || votes > cur || (votes == cur && k.idx < bestIdx[k.domain]) {
			bestVotes[k.domain] = votes
			bestIdx[k.domain] = k.idx
		}
	}
	for domain, votes := range bestVotes {
		if votes >= minSupport && votes*2 > totals[domain] {
			e.conventions[domain] = bestIdx[domain]
		}
	}
	// Second pass: with conventions fixed, learn the code→metro dictionary
	// from the training labels themselves (codes are coordinated by
	// operators, so an observed binding beats name derivation).
	codeVotes := make(map[string]map[int]int)
	for _, ex := range examples {
		if ex.City < 0 || ex.City >= len(cities) {
			continue
		}
		idx, have := e.conventions[registrableDomain(ex.Hostname)]
		if !have {
			continue
		}
		tokens := hostTokens(ex.Hostname)
		if idx >= len(tokens) {
			continue
		}
		code := leadingLetters(tokens[idx])
		if len(code) != 3 {
			continue
		}
		if codeVotes[code] == nil {
			codeVotes[code] = make(map[int]int)
		}
		codeVotes[code][ex.City]++
	}
	for code, byCity := range codeVotes {
		bestCity, bestN, total := -1, 0, 0
		for city, n := range byCity {
			total += n
			if n > bestN || (n == bestN && city < bestCity) {
				bestCity, bestN = city, n
			}
		}
		if bestN >= minSupport && bestN*2 > total {
			e.learned[code] = bestCity
		}
	}
	return e
}

// candidatesFor merges the learned binding (first) with derived candidates.
func (e *Extractor) candidatesFor(code string) []int {
	derived := e.codes[code]
	city, have := e.learned[code]
	if !have {
		return derived
	}
	out := []int{city}
	for _, c := range derived {
		if c != city {
			out = append(out, c)
		}
	}
	return out
}

// Domains returns the number of learned domain conventions.
func (e *Extractor) Domains() int { return len(e.conventions) }

// Locate geolocates a hostname, returning the city index. ok is false when
// the domain has no learned convention, the token carries no 3-letter code,
// or the code matches no gazetteer city.
func (e *Extractor) Locate(hostname string) (city int, ok bool) {
	domain := registrableDomain(hostname)
	idx, have := e.conventions[domain]
	if !have {
		return -1, false
	}
	tokens := hostTokens(hostname)
	if idx >= len(tokens) {
		return -1, false
	}
	code := leadingLetters(tokens[idx])
	if len(code) != 3 {
		return -1, false
	}
	cands := e.candidatesFor(code)
	if len(cands) == 0 {
		return -1, false
	}
	return cands[0], true
}

// Candidates returns every gazetteer city matching the hostname's code, for
// callers that disambiguate with extra context (e.g. latency constraints).
func (e *Extractor) Candidates(hostname string) []int {
	domain := registrableDomain(hostname)
	idx, have := e.conventions[domain]
	if !have {
		return nil
	}
	tokens := hostTokens(hostname)
	if idx >= len(tokens) {
		return nil
	}
	code := leadingLetters(tokens[idx])
	if len(code) != 3 {
		return nil
	}
	return e.candidatesFor(code)
}
