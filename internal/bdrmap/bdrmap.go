// Package bdrmap reimplements the slice of bdrmapIT [Marder et al. 2018]
// that iGDB uses: attributing each traceroute hop to its owning AS. Naive
// longest-prefix matching mis-attributes inter-AS link interfaces that are
// numbered from the neighbour's address space (§3.3 challenge 1); bdrmap
// corrects those with a domain-ownership vote learned from the hops
// themselves, mirroring how bdrmapIT leverages aggregate evidence.
package bdrmap

import (
	"strings"

	"igdb/internal/iptrie"
	"igdb/internal/sources/routeviews"
)

// Mapper attributes IPs to ASes.
type Mapper struct {
	trie      *iptrie.Trie
	domainASN map[string]int
}

// New builds a mapper over the announced prefix table.
func New(recs []routeviews.Record) *Mapper {
	return &Mapper{trie: routeviews.Trie(recs), domainASN: make(map[string]int)}
}

// Lookup returns the origin AS of the most specific covering prefix.
func (m *Mapper) Lookup(ip uint32) (asn int, ok bool) {
	return m.trie.Lookup(ip)
}

func registrableDomain(hostname string) string {
	labels := strings.Split(strings.ToLower(hostname), ".")
	if len(labels) < 2 {
		return strings.ToLower(hostname)
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// LearnDomains accumulates (rDNS domain → AS) majority votes over observed
// traceroute hops. ptr maps hop IPs to hostnames. Call once over the whole
// measurement corpus before MapTrace.
func (m *Mapper) LearnDomains(traces [][]uint32, ptr map[uint32]string) {
	votes := make(map[string]map[int]int)
	for _, ips := range traces {
		for _, ip := range ips {
			host, okH := ptr[ip]
			if !okH {
				continue
			}
			asn, okA := m.trie.Lookup(ip)
			if !okA {
				continue
			}
			d := registrableDomain(host)
			if votes[d] == nil {
				votes[d] = make(map[int]int)
			}
			votes[d][asn]++
		}
	}
	for d, byASN := range votes {
		bestASN, bestN, total := -1, 0, 0
		for asn, n := range byASN {
			total += n
			if n > bestN || (n == bestN && asn < bestASN) {
				bestASN, bestN = asn, n
			}
		}
		// Require a clear majority; ambiguous domains stay unmapped.
		if bestN*2 > total {
			m.domainASN[d] = bestASN
		}
	}
}

// DomainOwner returns the learned owner of an rDNS domain, or -1.
func (m *Mapper) DomainOwner(domain string) int {
	if asn, ok := m.domainASN[strings.ToLower(domain)]; ok {
		return asn
	}
	return -1
}

// MapTrace attributes each hop of one traceroute to an AS. Hops with no
// covering prefix get -1. The border correction reassigns a hop when its
// hostname's domain belongs (by the learned vote) to a different AS that
// also owns an adjacent hop — the signature of a link interface numbered
// from the neighbour's space.
func (m *Mapper) MapTrace(ips []uint32, ptr map[uint32]string) []int {
	out := make([]int, len(ips))
	for i, ip := range ips {
		if asn, ok := m.trie.Lookup(ip); ok {
			out[i] = asn
		} else {
			out[i] = -1
		}
	}
	// Corrections can cascade (two consecutive borrowed interfaces), so
	// iterate to a fixpoint: first demanding direct adjacency, then
	// accepting the owner appearing anywhere on the trace (it still takes a
	// strong domain-majority vote to get here, so stale rDNS stays bounded).
	for pass := 0; pass < 3; pass++ {
		changed := false
		for i, ip := range ips {
			host, ok := ptr[ip]
			if !ok || out[i] < 0 {
				continue
			}
			owner, ok := m.domainASN[registrableDomain(host)]
			if !ok || owner == out[i] {
				continue
			}
			evidence := (i > 0 && out[i-1] == owner) || (i+1 < len(ips) && out[i+1] == owner)
			if !evidence && pass > 0 {
				// MAP-IT signature: the hop longest-prefix-matches the same
				// AS as its predecessor, i.e. it sits in the neighbour's
				// space — exactly what a borrowed /30 ingress looks like.
				if i > 0 && out[i-1] == out[i] {
					evidence = true
				}
				// Or the owner AS appears elsewhere on this trace.
				for _, asn := range out {
					if asn == owner {
						evidence = true
						break
					}
				}
			}
			if evidence {
				out[i] = owner
				changed = true
			}
		}
		if !changed && pass > 0 {
			break
		}
	}
	return out
}

// ASPath collapses a hop attribution into the visited AS sequence
// (consecutive duplicates removed, unknowns dropped) — the "AS path
// identification" use the paper applies bdrmapIT to.
func ASPath(hopASNs []int) []int {
	var out []int
	for _, asn := range hopASNs {
		if asn < 0 {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != asn {
			out = append(out, asn)
		}
	}
	return out
}
