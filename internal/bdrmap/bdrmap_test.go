package bdrmap

import (
	"reflect"
	"testing"

	"igdb/internal/iptrie"
	"igdb/internal/sources/routeviews"
)

func table() []routeviews.Record {
	return []routeviews.Record{
		{Prefix: iptrie.MustParsePrefix("10.0.0.0/16"), Origin: 100},
		{Prefix: iptrie.MustParsePrefix("20.0.0.0/16"), Origin: 200},
		{Prefix: iptrie.MustParsePrefix("30.0.0.0/16"), Origin: 300},
	}
}

func ip(s string) uint32 { return iptrie.MustParseAddr(s) }

func TestLookup(t *testing.T) {
	m := New(table())
	if asn, ok := m.Lookup(ip("10.0.2.3")); !ok || asn != 100 {
		t.Errorf("got %d %v", asn, ok)
	}
	if _, ok := m.Lookup(ip("99.0.0.1")); ok {
		t.Error("unannounced space should not resolve")
	}
}

func TestMapTracePlainLPM(t *testing.T) {
	m := New(table())
	ips := []uint32{ip("10.0.0.1"), ip("20.0.0.1"), ip("30.0.0.1")}
	got := m.MapTrace(ips, nil)
	if !reflect.DeepEqual(got, []int{100, 200, 300}) {
		t.Errorf("got %v", got)
	}
	if path := ASPath(got); !reflect.DeepEqual(path, []int{100, 200, 300}) {
		t.Errorf("ASPath = %v", path)
	}
}

func TestBorderCorrection(t *testing.T) {
	m := New(table())
	// The border router of AS200 responds with an address from AS100's
	// space (10.0.0.9), but its hostname belongs to AS200's domain.
	ptr := map[uint32]string{
		ip("10.0.0.1"): "r1.isp100.net",
		ip("10.0.0.2"): "r2.isp100.net",
		ip("10.0.0.9"): "border.isp200.net", // borrowed address
		ip("20.0.0.1"): "core1.isp200.net",
		ip("20.0.0.2"): "core2.isp200.net",
	}
	traces := [][]uint32{
		{ip("10.0.0.1"), ip("10.0.0.2"), ip("10.0.0.9"), ip("20.0.0.1"), ip("20.0.0.2")},
		{ip("10.0.0.2"), ip("20.0.0.1")},
		{ip("20.0.0.2"), ip("20.0.0.1")},
	}
	m.LearnDomains(traces, ptr)
	if owner := m.DomainOwner("isp200.net"); owner != 200 {
		t.Fatalf("domain owner = %d, want 200", owner)
	}
	got := m.MapTrace(traces[0], ptr)
	want := []int{100, 100, 200, 200, 200}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MapTrace = %v, want %v", got, want)
	}
	if path := ASPath(got); !reflect.DeepEqual(path, []int{100, 200}) {
		t.Errorf("ASPath = %v", path)
	}
}

func TestBorderCorrectionMapItSignature(t *testing.T) {
	m := New(table())
	// A hop numbered from its predecessor's space whose hostname belongs to
	// another domain carries the MAP-IT borrowed-/30 signature and is
	// reassigned even when the owner AS has no other hop on the trace.
	ptr := map[uint32]string{
		ip("10.0.0.9"): "border.isp200.net",
		ip("20.0.0.1"): "core.isp200.net",
	}
	m.LearnDomains([][]uint32{{ip("20.0.0.1")}}, ptr)
	got := m.MapTrace([]uint32{ip("10.0.0.1"), ip("10.0.0.9"), ip("30.0.0.1")}, ptr)
	if got[1] != 200 {
		t.Errorf("MAP-IT signature not applied: %v", got)
	}
}

func TestStaleRDNSWithoutSignatureKept(t *testing.T) {
	m := New(table())
	// Hop 20.0.0.5 has a stale hostname claiming AS300, but its LPM AS
	// differs from its predecessor's (no borrowed-/30 signature) and AS300
	// is nowhere on the trace: the LPM attribution stands.
	ptr := map[uint32]string{
		ip("20.0.0.5"): "stale.isp300.net",
		ip("30.0.0.1"): "r.isp300.net",
	}
	m.LearnDomains([][]uint32{{ip("30.0.0.1")}}, ptr)
	got := m.MapTrace([]uint32{ip("10.0.0.1"), ip("20.0.0.5"), ip("20.0.0.9")}, ptr)
	if got[1] != 200 {
		t.Errorf("stale rDNS flipped attribution: %v", got)
	}
}

func TestLearnDomainsMajority(t *testing.T) {
	m := New(table())
	// shared.net hostnames appear under two ASes with no majority.
	ptr := map[uint32]string{
		ip("10.0.0.1"): "a.shared.net",
		ip("20.0.0.1"): "b.shared.net",
	}
	m.LearnDomains([][]uint32{{ip("10.0.0.1"), ip("20.0.0.1")}}, ptr)
	if owner := m.DomainOwner("shared.net"); owner != -1 {
		t.Errorf("ambiguous domain mapped to %d", owner)
	}
}

func TestASPathDropsUnknownAndDuplicates(t *testing.T) {
	got := ASPath([]int{100, 100, -1, 200, 200, 100})
	if !reflect.DeepEqual(got, []int{100, 200, 100}) {
		t.Errorf("got %v", got)
	}
	if got := ASPath(nil); got != nil {
		t.Error("empty input should be nil")
	}
}
