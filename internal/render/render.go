// Package render regenerates the paper's figures without ArcGIS: an SVG
// map renderer (equirectangular projection) for nodes, conduits, cables,
// Thiessen cells and buffers, plus a GeoJSON exporter so any external GIS
// can consume iGDB layers.
package render

import (
	"encoding/json"
	"fmt"
	"strings"

	"igdb/internal/geo"
	"igdb/internal/wkt"
)

// Style controls how a map element is drawn.
type Style struct {
	Stroke      string
	StrokeWidth float64
	Fill        string
	Opacity     float64
	Radius      float64 // circles only, px
	Dash        string  // SVG stroke-dasharray, "" = solid
}

func (s Style) attrs() string {
	var b strings.Builder
	if s.Stroke != "" {
		fmt.Fprintf(&b, ` stroke="%s"`, s.Stroke)
	}
	if s.StrokeWidth > 0 {
		fmt.Fprintf(&b, ` stroke-width="%.2f"`, s.StrokeWidth)
	}
	if s.Fill != "" {
		fmt.Fprintf(&b, ` fill="%s"`, s.Fill)
	} else {
		b.WriteString(` fill="none"`)
	}
	if s.Opacity > 0 && s.Opacity < 1 {
		fmt.Fprintf(&b, ` opacity="%.2f"`, s.Opacity)
	}
	if s.Dash != "" {
		fmt.Fprintf(&b, ` stroke-dasharray="%s"`, s.Dash)
	}
	return b.String()
}

// Map accumulates drawable layers over a geographic bounding box.
type Map struct {
	W, H     int
	Box      geo.BBox
	elements []string
	title    string
}

// NewWorldMap creates a whole-Earth canvas.
func NewWorldMap(w, h int) *Map {
	return NewMap(geo.BBox{MinLon: -180, MinLat: -90, MaxLon: 180, MaxLat: 90}, w, h)
}

// NewMap creates a canvas over the given region.
func NewMap(box geo.BBox, w, h int) *Map {
	return &Map{W: w, H: h, Box: box}
}

// SetTitle adds a caption in the top-left corner.
func (m *Map) SetTitle(t string) { m.title = t }

// project maps lon/lat to pixel coordinates (equirectangular; y grows down).
func (m *Map) project(p geo.Point) (x, y float64) {
	x = (p.Lon - m.Box.MinLon) / (m.Box.MaxLon - m.Box.MinLon) * float64(m.W)
	y = (m.Box.MaxLat - p.Lat) / (m.Box.MaxLat - m.Box.MinLat) * float64(m.H)
	return x, y
}

// Polyline draws a line path.
func (m *Map) Polyline(pts []geo.Point, st Style) {
	if len(pts) < 2 {
		return
	}
	var b strings.Builder
	b.WriteString(`<polyline points="`)
	for i, p := range pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		x, y := m.project(p)
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	b.WriteString(`"`)
	b.WriteString(st.attrs())
	b.WriteString("/>")
	m.elements = append(m.elements, b.String())
}

// Polygon draws a closed ring.
func (m *Map) Polygon(ring []geo.Point, st Style) {
	if len(ring) < 3 {
		return
	}
	var b strings.Builder
	b.WriteString(`<polygon points="`)
	for i, p := range ring {
		if i > 0 {
			b.WriteByte(' ')
		}
		x, y := m.project(p)
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	b.WriteString(`"`)
	b.WriteString(st.attrs())
	b.WriteString("/>")
	m.elements = append(m.elements, b.String())
}

// Circle draws a fixed-pixel-radius marker at a location.
func (m *Map) Circle(p geo.Point, st Style) {
	x, y := m.project(p)
	r := st.Radius
	if r <= 0 {
		r = 2
	}
	m.elements = append(m.elements,
		fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="%.1f"%s/>`, x, y, r, st.attrs()))
}

// Text places a label at a location.
func (m *Map) Text(p geo.Point, label string, size int) {
	x, y := m.project(p)
	if size <= 0 {
		size = 10
	}
	m.elements = append(m.elements,
		fmt.Sprintf(`<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif">%s</text>`,
			x, y, size, escape(label)))
}

// Geometry draws any WKT geometry with one style.
func (m *Map) Geometry(g wkt.Geometry, st Style) {
	switch g.Kind {
	case wkt.KindPoint:
		if !g.Empty {
			m.Circle(g.Point, st)
		}
	case wkt.KindLineString:
		m.Polyline(g.Line, st)
	case wkt.KindPolygon:
		if len(g.Rings) > 0 {
			m.Polygon(g.Rings[0], st)
		}
	case wkt.KindMultiPoint:
		for _, p := range g.Points {
			m.Circle(p, st)
		}
	case wkt.KindMultiLineString:
		for _, l := range g.Lines {
			m.Polyline(l, st)
		}
	case wkt.KindMultiPolygon:
		for _, poly := range g.Polygons {
			if len(poly) > 0 {
				m.Polygon(poly[0], st)
			}
		}
	case wkt.KindGeometryCollection:
		for _, sub := range g.Geoms {
			m.Geometry(sub, st)
		}
	}
}

// ElementCount returns how many drawables have been added (for tests).
func (m *Map) ElementCount() int { return len(m.elements) }

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// SVG renders the accumulated layers.
func (m *Map) SVG() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		m.W, m.H, m.W, m.H)
	b.WriteString(`<rect width="100%" height="100%" fill="#ffffff"/>`)
	for _, e := range m.elements {
		b.WriteString(e)
	}
	if m.title != "" {
		fmt.Fprintf(&b, `<text x="8" y="18" font-size="14" font-family="sans-serif">%s</text>`, escape(m.title))
	}
	b.WriteString(`</svg>`)
	return []byte(b.String())
}

// ---- GeoJSON ----

// FeatureCollection builds a GeoJSON document from WKT geometries.
type FeatureCollection struct {
	features []feature
}

type feature struct {
	Type       string                 `json:"type"`
	Geometry   json.RawMessage        `json:"geometry"`
	Properties map[string]interface{} `json:"properties"`
}

// Add appends a feature; properties may be nil.
func (fc *FeatureCollection) Add(g wkt.Geometry, props map[string]interface{}) error {
	gj, err := geometryJSON(g)
	if err != nil {
		return err
	}
	if props == nil {
		props = map[string]interface{}{}
	}
	fc.features = append(fc.features, feature{Type: "Feature", Geometry: gj, Properties: props})
	return nil
}

// Len returns the number of features.
func (fc *FeatureCollection) Len() int { return len(fc.features) }

// Marshal renders the document.
func (fc *FeatureCollection) Marshal() ([]byte, error) {
	doc := struct {
		Type     string    `json:"type"`
		Features []feature `json:"features"`
	}{Type: "FeatureCollection", Features: fc.features}
	if doc.Features == nil {
		doc.Features = []feature{}
	}
	return json.Marshal(doc)
}

func coord(p geo.Point) []float64 { return []float64{p.Lon, p.Lat} }

func coords(pts []geo.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = coord(p)
	}
	return out
}

func geometryJSON(g wkt.Geometry) (json.RawMessage, error) {
	var obj interface{}
	switch g.Kind {
	case wkt.KindPoint:
		obj = map[string]interface{}{"type": "Point", "coordinates": coord(g.Point)}
	case wkt.KindLineString:
		obj = map[string]interface{}{"type": "LineString", "coordinates": coords(g.Line)}
	case wkt.KindPolygon:
		rings := make([][][]float64, len(g.Rings))
		for i, r := range g.Rings {
			rings[i] = coords(r)
		}
		obj = map[string]interface{}{"type": "Polygon", "coordinates": rings}
	case wkt.KindMultiPoint:
		obj = map[string]interface{}{"type": "MultiPoint", "coordinates": coords(g.Points)}
	case wkt.KindMultiLineString:
		lines := make([][][]float64, len(g.Lines))
		for i, l := range g.Lines {
			lines[i] = coords(l)
		}
		obj = map[string]interface{}{"type": "MultiLineString", "coordinates": lines}
	case wkt.KindMultiPolygon:
		polys := make([][][][]float64, len(g.Polygons))
		for i, poly := range g.Polygons {
			rings := make([][][]float64, len(poly))
			for j, r := range poly {
				rings[j] = coords(r)
			}
			polys[i] = rings
		}
		obj = map[string]interface{}{"type": "MultiPolygon", "coordinates": polys}
	default:
		return nil, fmt.Errorf("render: unsupported GeoJSON geometry %s", g.Kind)
	}
	return json.Marshal(obj)
}
