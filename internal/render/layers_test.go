package render

import (
	"bytes"
	"encoding/json"
	"testing"

	"igdb/internal/geo"
	"igdb/internal/reldb"
	"igdb/internal/wkt"
)

func TestFeatureWriterFraming(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFeatureWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Add(wkt.NewPoint(geo.Point{Lon: 1, Lat: 2}), map[string]interface{}{"name": "a"}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Add(wkt.NewPoint(geo.Point{Lon: 3, Lat: 4}), nil); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if fw.Len() != 2 {
		t.Fatalf("Len = %d, want 2", fw.Len())
	}
	var doc struct {
		Type     string `json:"type"`
		Features []struct {
			Type       string                 `json:"type"`
			Properties map[string]interface{} `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid streamed JSON: %v\n%s", err, buf.String())
	}
	if doc.Type != "FeatureCollection" || len(doc.Features) != 2 {
		t.Fatalf("bad document: %s", buf.String())
	}
	if doc.Features[0].Properties["name"] != "a" {
		t.Fatalf("properties lost: %v", doc.Features[0].Properties)
	}
	if err := fw.Add(wkt.NewPoint(geo.Point{}), nil); err == nil {
		t.Fatal("Add after Close should fail")
	}
}

func TestFeatureWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFeatureWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != `{"type":"FeatureCollection","features":[]}` {
		t.Fatalf("empty collection = %s", got)
	}
}

func TestLayerFeatures(t *testing.T) {
	db := reldb.New()
	db.MustExec(`CREATE TABLE phys_nodes (node_name TEXT, organization TEXT, metro TEXT,
		state_province TEXT, country TEXT, latitude REAL, longitude REAL, source TEXT, as_of_date TEXT)`)
	db.MustExec(`INSERT INTO phys_nodes VALUES ('n1', 'OrgA', 'Metro-US', 'TX', 'US', 30.0, -97.0, 'atlas', 'latest')`)
	db.MustExec(`CREATE TABLE std_paths (from_metro TEXT, from_state TEXT, from_country TEXT,
		to_metro TEXT, to_state TEXT, to_country TEXT, distance_km REAL, path_wkt TEXT, as_of_date TEXT)`)
	db.MustExec(`INSERT INTO std_paths VALUES ('A', '', 'US', 'B', '', 'US', 12.5, 'LINESTRING (0 0, 1 1)', 'latest')`)
	db.MustExec(`INSERT INTO std_paths VALUES ('A', '', 'US', 'C', '', 'US', 9.0, 'not wkt', 'latest')`)

	var buf bytes.Buffer
	n, err := WriteLayerGeoJSON(&buf, db, "phys_nodes")
	if err != nil || n != 1 {
		t.Fatalf("phys_nodes: n=%d err=%v", n, err)
	}
	// The bad-WKT row is skipped, not an error.
	buf.Reset()
	n, err = WriteLayerGeoJSON(&buf, db, "std_paths")
	if err != nil || n != 1 {
		t.Fatalf("std_paths: n=%d err=%v", n, err)
	}
	if _, err := WriteLayerGeoJSON(&buf, db, "nope"); err == nil {
		t.Fatal("unknown layer should error")
	}
}

func TestLayersList(t *testing.T) {
	ls := Layers()
	if len(ls) != 5 || ls[0] != "phys_nodes" {
		t.Fatalf("Layers() = %v", ls)
	}
	ls[0] = "mutated"
	if Layers()[0] != "phys_nodes" {
		t.Fatal("Layers() returned aliased slice")
	}
}
