package render

import (
	"encoding/json"
	"strings"
	"testing"

	"igdb/internal/geo"
	"igdb/internal/wkt"
)

func TestSVGBasics(t *testing.T) {
	m := NewWorldMap(720, 360)
	m.SetTitle("Test & Map")
	m.Polyline([]geo.Point{{Lon: -90, Lat: 0}, {Lon: 90, Lat: 0}}, Style{Stroke: "green", StrokeWidth: 1})
	m.Circle(geo.Point{Lon: 0, Lat: 0}, Style{Fill: "orange", Radius: 3})
	m.Polygon([]geo.Point{{Lon: 0, Lat: 0}, {Lon: 10, Lat: 0}, {Lon: 10, Lat: 10}}, Style{Fill: "blue", Opacity: 0.5})
	m.Text(geo.Point{Lon: 0, Lat: 50}, "<label>", 12)
	svg := string(m.SVG())
	for _, want := range []string{"<svg", "polyline", "circle", "polygon", "&lt;label&gt;", "Test &amp; Map", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if m.ElementCount() != 4 {
		t.Errorf("elements = %d, want 4", m.ElementCount())
	}
}

func TestProjectionOrientation(t *testing.T) {
	m := NewWorldMap(360, 180)
	// North pole maps to y=0, antimeridian west edge to x=0.
	x, y := m.project(geo.Point{Lon: -180, Lat: 90})
	if x != 0 || y != 0 {
		t.Errorf("NW corner at (%v, %v)", x, y)
	}
	x, y = m.project(geo.Point{Lon: 180, Lat: -90})
	if x != 360 || y != 180 {
		t.Errorf("SE corner at (%v, %v)", x, y)
	}
}

func TestDegenerateElementsIgnored(t *testing.T) {
	m := NewWorldMap(100, 50)
	m.Polyline([]geo.Point{{Lon: 0, Lat: 0}}, Style{})
	m.Polygon([]geo.Point{{Lon: 0, Lat: 0}, {Lon: 1, Lat: 1}}, Style{})
	if m.ElementCount() != 0 {
		t.Error("degenerate shapes should be skipped")
	}
}

func TestGeometryDispatch(t *testing.T) {
	m := NewWorldMap(100, 50)
	for _, s := range []string{
		"POINT (1 2)",
		"LINESTRING (0 0, 1 1)",
		"POLYGON ((0 0, 5 0, 5 5, 0 0))",
		"MULTIPOINT (1 1, 2 2)",
		"MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))",
		"GEOMETRYCOLLECTION (POINT (0 0), LINESTRING (1 1, 2 2))",
	} {
		m.Geometry(wkt.MustParse(s), Style{Stroke: "black"})
	}
	if m.ElementCount() != 10 {
		t.Errorf("elements = %d, want 10", m.ElementCount())
	}
}

func TestGeoJSON(t *testing.T) {
	var fc FeatureCollection
	if err := fc.Add(wkt.MustParse("POINT (1 2)"), map[string]interface{}{"name": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := fc.Add(wkt.MustParse("LINESTRING (0 0, 1 1)"), nil); err != nil {
		t.Fatal(err)
	}
	if err := fc.Add(wkt.MustParse("POLYGON ((0 0, 1 0, 1 1, 0 0))"), nil); err != nil {
		t.Fatal(err)
	}
	if err := fc.Add(wkt.MustParse("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))"), nil); err != nil {
		t.Fatal(err)
	}
	raw, err := fc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type string `json:"type"`
			} `json:"geometry"`
			Properties map[string]interface{} `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Type != "FeatureCollection" || len(doc.Features) != 4 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Features[0].Geometry.Type != "Point" || doc.Features[0].Properties["name"] != "x" {
		t.Errorf("first feature wrong: %+v", doc.Features[0])
	}
	if doc.Features[3].Geometry.Type != "MultiPolygon" {
		t.Errorf("fourth feature type = %s", doc.Features[3].Geometry.Type)
	}
}

func TestGeoJSONEmptyCollection(t *testing.T) {
	var fc FeatureCollection
	raw, err := fc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"features":[]`) {
		t.Errorf("empty collection renders %s", raw)
	}
}

func TestGeoJSONRejectsEmptyGeometry(t *testing.T) {
	var fc FeatureCollection
	g := wkt.Geometry{Kind: wkt.Kind(99)}
	if err := fc.Add(g, nil); err == nil {
		t.Error("unsupported kind should fail")
	}
}
