package render

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"igdb/internal/geo"
	"igdb/internal/reldb"
	"igdb/internal/wkt"
)

// layerNames lists the exportable GIS layers, each backed by one Figure 2
// relation. Order is the documented CLI/HTTP order.
var layerNames = []string{"phys_nodes", "std_paths", "sub_cables", "city_points", "city_polygons"}

// Layers returns the names of the exportable GIS layers.
func Layers() []string {
	out := make([]string, len(layerNames))
	copy(out, layerNames)
	return out
}

// LayerFeatures iterates a layer's (geometry, properties) features straight
// from the built database's relations, yielding each feature in relation
// order. Rows whose stored WKT fails to parse are skipped, matching the
// forgiving behaviour GIS exports need.
func LayerFeatures(db *reldb.DB, layer string, yield func(wkt.Geometry, map[string]interface{}) error) error {
	switch layer {
	case "phys_nodes":
		rows, err := db.Query(`SELECT node_name, organization, metro, country, longitude, latitude FROM phys_nodes`)
		if err != nil {
			return err
		}
		for _, r := range rows.Rows {
			name, _ := r[0].AsText()
			org, _ := r[1].AsText()
			metro, _ := r[2].AsText()
			country, _ := r[3].AsText()
			lon, _ := r[4].AsFloat()
			lat, _ := r[5].AsFloat()
			err := yield(wkt.NewPoint(geo.Point{Lon: lon, Lat: lat}),
				map[string]interface{}{"name": name, "organization": org, "metro": metro, "country": country})
			if err != nil {
				return err
			}
		}
	case "std_paths":
		rows, err := db.Query(`SELECT from_metro, to_metro, distance_km, path_wkt FROM std_paths`)
		if err != nil {
			return err
		}
		for _, r := range rows.Rows {
			from, _ := r[0].AsText()
			to, _ := r[1].AsText()
			km, _ := r[2].AsFloat()
			s, _ := r[3].AsText()
			geomW, err := wkt.Parse(s)
			if err != nil {
				continue
			}
			if err := yield(geomW, map[string]interface{}{"from": from, "to": to, "km": km}); err != nil {
				return err
			}
		}
	case "sub_cables":
		rows, err := db.Query(`SELECT cable_name, length_km, cable_wkt FROM sub_cables`)
		if err != nil {
			return err
		}
		for _, r := range rows.Rows {
			name, _ := r[0].AsText()
			km, _ := r[1].AsFloat()
			s, _ := r[2].AsText()
			geomW, err := wkt.Parse(s)
			if err != nil {
				continue
			}
			if err := yield(geomW, map[string]interface{}{"name": name, "km": km}); err != nil {
				return err
			}
		}
	case "city_points":
		rows, err := db.Query(`SELECT city, country, longitude, latitude, population FROM city_points`)
		if err != nil {
			return err
		}
		for _, r := range rows.Rows {
			city, _ := r[0].AsText()
			country, _ := r[1].AsText()
			lon, _ := r[2].AsFloat()
			lat, _ := r[3].AsFloat()
			pop, _ := r[4].AsInt()
			err := yield(wkt.NewPoint(geo.Point{Lon: lon, Lat: lat}),
				map[string]interface{}{"city": city, "country": country, "population": pop})
			if err != nil {
				return err
			}
		}
	case "city_polygons":
		rows, err := db.Query(`SELECT city, country, geom FROM city_polygons`)
		if err != nil {
			return err
		}
		for _, r := range rows.Rows {
			city, _ := r[0].AsText()
			country, _ := r[1].AsText()
			s, _ := r[2].AsText()
			geomW, err := wkt.Parse(s)
			if err != nil {
				continue
			}
			if err := yield(geomW, map[string]interface{}{"city": city, "country": country}); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("render: unknown layer %q", layer)
	}
	return nil
}

// FeatureWriter streams a GeoJSON FeatureCollection to an io.Writer one
// feature at a time, so an HTTP handler never buffers the whole document.
// Call Close to emit the footer; Add after Close is an error.
type FeatureWriter struct {
	w      io.Writer
	n      int
	closed bool
}

// NewFeatureWriter writes the FeatureCollection header and returns a writer
// ready for Add calls.
func NewFeatureWriter(w io.Writer) (*FeatureWriter, error) {
	if _, err := io.WriteString(w, `{"type":"FeatureCollection","features":[`); err != nil {
		return nil, err
	}
	return &FeatureWriter{w: w}, nil
}

// Add streams one feature; properties may be nil.
func (fw *FeatureWriter) Add(g wkt.Geometry, props map[string]interface{}) error {
	if fw.closed {
		return fmt.Errorf("render: FeatureWriter is closed")
	}
	gj, err := geometryJSON(g)
	if err != nil {
		return err
	}
	if props == nil {
		props = map[string]interface{}{}
	}
	body, err := json.Marshal(feature{Type: "Feature", Geometry: gj, Properties: props})
	if err != nil {
		return err
	}
	if fw.n > 0 {
		if _, err := io.WriteString(fw.w, ","); err != nil {
			return err
		}
	}
	if _, err := fw.w.Write(body); err != nil {
		return err
	}
	fw.n++
	return nil
}

// Len returns the number of features streamed so far.
func (fw *FeatureWriter) Len() int { return fw.n }

// Close writes the FeatureCollection footer.
func (fw *FeatureWriter) Close() error {
	if fw.closed {
		return nil
	}
	fw.closed = true
	_, err := io.WriteString(fw.w, `]}`)
	return err
}

// WriteLayerGeoJSON streams one layer as a GeoJSON FeatureCollection,
// returning the feature count.
func WriteLayerGeoJSON(w io.Writer, db *reldb.DB, layer string) (int, error) {
	fw, err := NewFeatureWriter(w)
	if err != nil {
		return 0, err
	}
	if err := LayerFeatures(db, layer, fw.Add); err != nil {
		// Terminate the stream so partial output is still well-formed
		// GeoJSON; the feature error is the one worth reporting.
		if cerr := fw.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return fw.Len(), err
	}
	return fw.Len(), fw.Close()
}
