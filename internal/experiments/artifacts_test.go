package experiments

import (
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"
)

// Every figure artifact must be well-formed XML (SVG) or JSON (GeoJSON) —
// the whole point of the artifacts is to open them in external tools.
func TestArtifactsWellFormed(t *testing.T) {
	e := env(t)
	for _, r := range e.All() {
		for name, data := range r.Artifacts {
			switch {
			case strings.HasSuffix(name, ".svg"):
				dec := xml.NewDecoder(strings.NewReader(string(data)))
				for {
					_, err := dec.Token()
					if err != nil {
						if err.Error() == "EOF" {
							break
						}
						t.Fatalf("%s/%s: malformed SVG: %v", r.ID, name, err)
					}
				}
				if !strings.Contains(string(data), "<svg") {
					t.Errorf("%s/%s: not an SVG", r.ID, name)
				}
			case strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".geojson"):
				var v interface{}
				if err := json.Unmarshal(data, &v); err != nil {
					t.Fatalf("%s/%s: malformed JSON: %v", r.ID, name, err)
				}
			default:
				t.Errorf("%s/%s: unknown artifact extension", r.ID, name)
			}
			if len(data) < 100 {
				t.Errorf("%s/%s: suspiciously small artifact (%d bytes)", r.ID, name, len(data))
			}
		}
	}
}

// The §3.2 ip_asn_dns preparatory table is populated by the pipeline.
func TestIPASNDNSPopulated(t *testing.T) {
	e := env(t)
	rows := e.G.Rel.MustQuery(`SELECT COUNT(*), COUNT(DISTINCT ip) FROM ip_asn_dns`)
	total, _ := rows.Rows[0][0].AsInt()
	distinct, _ := rows.Rows[0][1].AsInt()
	if total == 0 {
		t.Fatal("ip_asn_dns empty")
	}
	if total != distinct {
		t.Errorf("duplicate IPs in ip_asn_dns: %d rows, %d distinct", total, distinct)
	}
	// At least three geolocation techniques present (hoiho, ixp, and the
	// unlocated rest).
	src := e.G.Rel.MustQuery(`SELECT DISTINCT geo_source FROM ip_asn_dns`)
	if src.Len() < 3 {
		t.Errorf("geo_source variety = %d, want >= 3", src.Len())
	}
}

// The distance-cost distribution over many traceroutes: all >= ~1, most
// below 5 — the Figure 7 metric generalized to the mesh.
func TestDistanceCostDistribution(t *testing.T) {
	e := env(t)
	n, below1, over5, scored := 0, 0, 0, 0
	for _, m := range e.P.Measurements {
		if n >= 150 {
			break
		}
		n++
		ta := e.P.AnalyzeTrace(m)
		if len(ta.CitySeq) < 2 {
			continue
		}
		_, _, cost, ok := e.P.DistanceCost(ta.CitySeq)
		if !ok {
			continue
		}
		scored++
		if cost < 0.99 {
			below1++
		}
		if cost > 5 {
			over5++
		}
	}
	if scored < 20 {
		t.Fatalf("only %d traces scored", scored)
	}
	if below1 > 0 {
		t.Errorf("%d traces with distance cost < 1 (shorter than the shortest practical path)", below1)
	}
	if float64(over5)/float64(scored) > 0.2 {
		t.Errorf("%d/%d traces with cost > 5: routing model implausible", over5, scored)
	}
}
