package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"igdb/internal/geo"
	"igdb/internal/geoloc"
	"igdb/internal/geom"
	"igdb/internal/render"
	"igdb/internal/wkt"
)

func propagate(e *Env, known map[uint32]int) map[uint32]geoloc.Inference {
	return geoloc.Propagate(e.P.Observations(), known, geoloc.Options{})
}

// Figure3 reproduces the Thiessen tessellation of the world's urban areas
// (paper: 7,342 polygons).
func (e *Env) Figure3() Result {
	r := Result{
		ID:     "figure3",
		Title:  "Figure 3: Thiessen polygons around urban areas",
		Header: []string{"Metric", "Value"},
	}
	d := e.G.Diagram
	cells := 0
	var totalArea float64
	for i := range d.Cells {
		if d.Cells[i] != nil {
			cells++
			totalArea += d.CellArea(i)
		}
	}
	r.addRow("urban areas", intCell(len(d.Sites)))
	r.addRow("polygons", intCell(cells))
	r.addRow("area coverage", fmt.Sprintf("%.4f%% of the plate-carrée world", 100*totalArea/(360*180)))
	r.notef("paper tessellates 7,342 Natural Earth places; measured %d sites, %d cells", len(d.Sites), cells)

	m := render.NewWorldMap(1440, 720)
	m.SetTitle("Thiessen polygons around urban areas")
	for i, cell := range d.Cells {
		if cell == nil {
			continue
		}
		m.Polygon(cell[:len(cell)-1], render.Style{Stroke: "#888888", StrokeWidth: 0.3})
		_ = i
	}
	r.artifact("figure3_thiessen.svg", m.SVG())
	return r
}

// interTubesLink is one conduit of the simulated InterTubes US long-haul
// map: ground-truth geometry plus whether it follows a transportation
// right-of-way (the paper's Atlanta→Houston gas-pipeline link does not).
type interTubesLink struct {
	a, b       int // world city IDs
	geometry   []geo.Point
	followsROW bool
}

// synthesizeInterTubes recreates a US long-haul map from ground truth:
// conduits of US ISP links, mostly along the road network, with a fraction
// following non-transportation rights-of-way (pipelines).
func (e *Env) synthesizeInterTubes() []interTubesLink {
	w := e.World
	roadGraph := w.RoadGraph()
	geomOf := map[[2]int][]geo.Point{}
	for _, rd := range w.Roads {
		k := [2]int{rd.A, rd.B}
		if rd.A > rd.B {
			k = [2]int{rd.B, rd.A}
		}
		if _, ok := geomOf[k]; !ok {
			geomOf[k] = rd.Path
		}
	}
	seen := map[[2]int]bool{}
	var out []interTubesLink
	n := 0
	for _, isp := range w.ISPs {
		for _, l := range isp.Links {
			a, b := l[0], l[1]
			if w.Cities[a].Country != "US" || w.Cities[b].Country != "US" {
				continue
			}
			k := [2]int{min(a, b), max(a, b)}
			if seen[k] {
				continue
			}
			seen[k] = true
			n++
			link := interTubesLink{a: a, b: b, followsROW: n%7 != 0}
			if link.followsROW {
				nodes, _, ok := roadGraph.ShortestPath(a, b)
				if !ok {
					continue
				}
				for i := 1; i < len(nodes); i++ {
					k2 := [2]int{min(nodes[i-1], nodes[i]), max(nodes[i-1], nodes[i])}
					seg := geomOf[k2]
					if nodes[i-1] > nodes[i] {
						seg = reversePts(seg)
					}
					if len(link.geometry) > 0 && len(seg) > 0 {
						seg = seg[1:]
					}
					link.geometry = append(link.geometry, seg...)
				}
			} else {
				// A pipeline right-of-way: a direct corridor bowed away from
				// the road network.
				la, lb := w.Cities[a].Loc, w.Cities[b].Loc
				mid := geo.Midpoint(la, lb)
				off := geo.Destination(mid, geo.InitialBearing(la, lb)+90, geo.Haversine(la, lb)*0.18)
				link.geometry = []geo.Point{la, geo.Interpolate(la, off, 0.5), off, geo.Interpolate(off, lb, 0.5), lb}
			}
			if len(link.geometry) >= 2 {
				out = append(out, link)
			}
		}
	}
	return out
}

func reversePts(p []geo.Point) []geo.Point {
	out := make([]geo.Point, len(p))
	for i, q := range p {
		out[len(p)-1-i] = q
	}
	return out
}

// Figure4 compares iGDB's shortest-path right-of-way routes against the
// simulated InterTubes long-haul map: a link is "approximated" when an
// inferred standard path stays within 25 miles of it. The paper observes
// that most InterTubes links are approximated, that non-road rights-of-way
// (pipelines) are not, and that iGDB offers additional unused corridors.
func (e *Env) Figure4() Result {
	r := Result{
		ID:     "figure4",
		Title:  "Figure 4: InterTubes long-haul map vs iGDB shortest-path routes",
		Header: []string{"Category", "Count"},
	}
	links := e.synthesizeInterTubes()
	threshold := 25 * geo.KmPerMile

	// iGDB inferred paths with both endpoints in the US.
	type stdPath struct {
		line []geo.Point
	}
	var usPaths []stdPath
	rows := e.G.Rel.MustQuery(`SELECT path_wkt FROM std_paths WHERE from_country = 'US' AND to_country = 'US'`)
	for _, row := range rows.Rows {
		s, _ := row[0].AsText()
		g, err := wkt.Parse(s)
		if err != nil || g.Kind != wkt.KindLineString {
			continue
		}
		usPaths = append(usPaths, stdPath{line: g.Line})
	}

	matchedROW, totalROW := 0, 0
	matchedPipe, totalPipe := 0, 0
	usedPath := make([]bool, len(usPaths))
	for _, l := range links {
		// A link is approximated when some iGDB path covers it within the
		// corridor threshold (directed Hausdorff from the link).
		matched := false
		for pi, p := range usPaths {
			if geom.HausdorffDirectedKm(l.geometry, p.line) <= threshold {
				matched = true
				usedPath[pi] = true
				break
			}
		}
		if l.followsROW {
			totalROW++
			if matched {
				matchedROW++
			}
		} else {
			totalPipe++
			if matched {
				matchedPipe++
			}
		}
	}
	unused := 0
	for _, u := range usedPath {
		if !u {
			unused++
		}
	}
	r.addRow("InterTubes links along transportation ROW", intCell(totalROW))
	r.addRow("... approximated within 25 miles", intCell(matchedROW))
	r.addRow("InterTubes links along other ROW (pipeline)", intCell(totalPipe))
	r.addRow("... approximated within 25 miles", intCell(matchedPipe))
	r.addRow("iGDB corridors with no InterTubes counterpart", intCell(unused))

	fROW := 0.0
	if totalROW > 0 {
		fROW = float64(matchedROW) / float64(totalROW)
	}
	r.notef("paper: most long-haul links approximated; pipeline links are not; many alternates remain")
	r.notef("measured: %.0f%% of road/rail-following links approximated, %d/%d pipeline links, %d unused corridors",
		100*fROW, matchedPipe, totalPipe, unused)

	m := render.NewMap(geo.BBox{MinLon: -126, MinLat: 23, MaxLon: -65, MaxLat: 51}, 1200, 620)
	m.SetTitle("InterTubes recreation (brown) vs iGDB routes (green) and alternates (purple)")
	for pi, p := range usPaths {
		st := render.Style{Stroke: "#8e44ad", StrokeWidth: 0.7} // purple alternates
		if usedPath[pi] {
			st = render.Style{Stroke: "#27ae60", StrokeWidth: 1.1} // matched
		}
		m.Polyline(p.line, st)
	}
	for _, l := range links {
		m.Polyline(l.geometry, render.Style{Stroke: "#8b5a2b", StrokeWidth: 0.8, Opacity: 0.8})
	}
	r.artifact("figure4_intertubes.svg", m.SVG())
	return r
}

// Figure5 regenerates the world physical map: nodes, inferred terrestrial
// paths and submarine cables.
func (e *Env) Figure5() Result {
	r := Result{
		ID:     "figure5",
		Title:  "Figure 5: physical elements of iGDB",
		Header: []string{"Layer", "Count"},
	}
	m := render.NewWorldMap(1600, 800)
	m.SetTitle("iGDB physical layer: nodes (orange), inferred paths (green), submarine cables (purple)")

	pathsRows := e.G.Rel.MustQuery(`SELECT path_wkt FROM std_paths`)
	for _, row := range pathsRows.Rows {
		s, _ := row[0].AsText()
		if g, err := wkt.Parse(s); err == nil && g.Kind == wkt.KindLineString {
			m.Polyline(geom.Simplify(g.Line, 8), render.Style{Stroke: "#27ae60", StrokeWidth: 0.5})
		}
	}
	cableRows := e.G.Rel.MustQuery(`SELECT cable_wkt FROM sub_cables`)
	for _, row := range cableRows.Rows {
		s, _ := row[0].AsText()
		if g, err := wkt.Parse(s); err == nil && g.Kind == wkt.KindLineString {
			m.Polyline(geom.Simplify(g.Line, 8), render.Style{Stroke: "#8e44ad", StrokeWidth: 0.6})
		}
	}
	nodeRows := e.G.Rel.MustQuery(`SELECT longitude, latitude FROM phys_nodes`)
	for _, row := range nodeRows.Rows {
		lon, _ := row[0].AsFloat()
		lat, _ := row[1].AsFloat()
		m.Circle(geo.Point{Lon: lon, Lat: lat}, render.Style{Fill: "#e67e22", Radius: 1.2})
	}
	r.addRow("physical nodes", intCell(nodeRows.Len()))
	r.addRow("inferred terrestrial paths", intCell(pathsRows.Len()))
	r.addRow("submarine cables", intCell(cableRows.Len()))
	r.artifact("figure5_physical_map.svg", m.SVG())
	r.notef("all three layers regenerated from the relational store alone")
	return r
}

// Figure6 reproduces the Cox/Charter metro-footprint overlap. Paper: Cox
// (AS22773) in 30 metros, Charter (AS20115/7843/20001/10796) in 71, overlap
// exactly 10.
func (e *Env) Figure6() Result {
	r := Result{
		ID:     "figure6",
		Title:  "Figure 6: Cox vs Charter peering footprints",
		Header: []string{"Operator", "US metros"},
	}
	metroSet := func(asns string) map[string]bool {
		rows := e.G.Rel.MustQuery(fmt.Sprintf(
			`SELECT DISTINCT metro, state_province FROM asn_loc WHERE country = 'US' AND asn IN (%s)`, asns))
		out := map[string]bool{}
		for _, row := range rows.Rows {
			m, _ := row[0].AsText()
			s, _ := row[1].AsText()
			out[m+"|"+s] = true
		}
		return out
	}
	cox := metroSet("22773")
	charter := metroSet("20115, 7843, 20001, 10796")
	overlap := 0
	var overlapNames []string
	for k := range cox {
		if charter[k] {
			overlap++
			overlapNames = append(overlapNames, strings.SplitN(k, "|", 2)[0])
		}
	}
	sort.Strings(overlapNames)
	r.addRow("Cox Communications (AS22773)", intCell(len(cox)))
	r.addRow("Charter Communications (4 ASNs)", intCell(len(charter)))
	r.addRow("Overlapping metros", intCell(overlap))
	r.notef("paper: Cox 30, Charter 71, overlap 10 (%s...)", strings.Join(firstN(overlapNames, 4), ", "))
	r.notef("measured: Cox %d, Charter %d, overlap %d", len(cox), len(charter), overlap)

	m := render.NewMap(geo.BBox{MinLon: -126, MinLat: 23, MaxLon: -65, MaxLat: 51}, 1200, 620)
	m.SetTitle("Cox (green), Charter (orange), both (red)")
	draw := func(set map[string]bool, other map[string]bool, both bool, st render.Style) {
		for k := range set {
			if both != (other[k]) {
				continue
			}
			parts := strings.SplitN(k, "|", 2)
			idx := e.G.CityByName(parts[0], parts[1], "US")
			if idx < 0 {
				continue
			}
			m.Circle(e.G.Cities[idx].Loc, st)
		}
	}
	draw(cox, charter, false, render.Style{Stroke: "#27ae60", StrokeWidth: 1.5, Radius: 5})
	draw(charter, cox, false, render.Style{Stroke: "#e67e22", StrokeWidth: 1.5, Radius: 5})
	draw(cox, charter, true, render.Style{Stroke: "#c0392b", StrokeWidth: 2, Radius: 6})
	r.artifact("figure6_footprints.svg", m.SVG())
	return r
}

func firstN(s []string, n int) []string {
	if len(s) < n {
		return s
	}
	return s[:n]
}

// Figure7 reproduces the Kansas City→Atlanta physical-path analysis:
// the traceroute metro sequence, the MPLS-hidden intermediate candidates
// (Tulsa / Oklahoma City), the inferred physical route length, the shortest
// practical physical path, and the distance cost (paper: 2518 km vs 1282 km
// = 1.96).
func (e *Env) Figure7() Result {
	r := Result{
		ID:     "figure7",
		Title:  "Figure 7: physical path of the Kansas City → Atlanta traceroute",
		Header: []string{"Quantity", "Value"},
	}
	m, ok := e.measurementBetween("Kansas City", "Atlanta")
	if !ok {
		r.notef("reference measurement missing")
		return r
	}
	ta := e.P.AnalyzeTrace(m)
	var metros []string
	for _, c := range ta.CitySeq {
		metros = append(metros, e.G.Cities[c].Name)
	}
	r.addRow("visible metro sequence", strings.Join(metros, " → "))
	var asPath []string
	for _, a := range ta.ASPath {
		asPath = append(asPath, fmt.Sprintf("AS%d", a))
	}
	r.addRow("AS path", strings.Join(asPath, " → "))

	// Hidden-node candidates on the longest gap (KC → Dallas).
	kc := e.G.CityByName("Kansas City", "", "US")
	dal := e.G.CityByName("Dallas", "", "US")
	cands := e.P.HiddenNodeCandidates(kc, dal, ta.ASPath, 25)
	var candNames []string
	for _, c := range cands {
		candNames = append(candNames, fmt.Sprintf("%s (AS%d)", e.G.Cities[c.City].Name, c.ASN))
	}
	r.addRow("hidden-node candidates KC→Dallas", strings.Join(candNames, "; "))

	inferredKm, shortestKm, cost, ok := e.P.DistanceCost(ta.CitySeq)
	if ok {
		r.addRow("inferred physical route", fmt.Sprintf("%.0f km", inferredKm))
		r.addRow("shortest practical physical path", fmt.Sprintf("%.0f km", shortestKm))
		r.addRow("distance cost", fmt.Sprintf("%.2f", cost))
		r.notef("paper: 2518 km inferred vs 1282 km shortest practical = 1.96; measured %.0f/%.0f = %.2f",
			inferredKm, shortestKm, cost)
	}
	hidden := "Tulsa hop hidden by MPLS in ground truth"
	for _, h := range e.World.FindTrace("Kansas City", "Atlanta").Hops {
		if h.Hidden {
			hidden = fmt.Sprintf("ground truth hides %s (AS%d) via MPLS", e.World.Cities[h.City].Name, h.ASN)
		}
	}
	r.notef(hidden)

	mp := render.NewMap(geo.BBox{MinLon: -103, MinLat: 26, MaxLon: -78, MaxLat: 42}, 1100, 700)
	mp.SetTitle("KC→Atlanta: traceroute (blue), inferred physical (green), shortest practical (orange)")
	var straight []geo.Point
	for _, c := range ta.CitySeq {
		straight = append(straight, e.G.Cities[c].Loc)
	}
	mp.Polyline(straight, render.Style{Stroke: "#2980b9", StrokeWidth: 2})
	routeGeom, _ := e.P.InferredRoute(ta.CitySeq)
	mp.Polyline(routeGeom, render.Style{Stroke: "#27ae60", StrokeWidth: 1.6})
	if sp, _, ok := e.G.Paths.ShortestPracticalPath(kc, e.G.CityByName("Atlanta", "", "US")); ok {
		mp.Polyline(e.G.Paths.RouteGeometry(sp), render.Style{Stroke: "#e67e22", StrokeWidth: 1.6, Dash: "6,3"})
	}
	for _, c := range cands {
		mp.Circle(e.G.Cities[c.City].Loc, render.Style{Stroke: "#27ae60", StrokeWidth: 1.5, Radius: 6})
		mp.Text(e.G.Cities[c.City].Loc, e.G.Cities[c.City].Name, 11)
	}
	r.artifact("figure7_kc_atlanta.svg", mp.SVG())
	return r
}

// Figure8 contrasts the Rocketfuel straight-line representation of AS7018
// with iGDB's right-of-way representation: many logical edges collapse onto
// few physical corridors.
func (e *Env) Figure8() Result {
	r := Result{
		ID:     "figure8",
		Title:  "Figure 8: Rocketfuel AS7018 vs iGDB physical representation",
		Header: []string{"Metric", "Value"},
	}
	// AT&T's logical metro edges come from its Atlas records in the DB.
	rows := e.G.Rel.MustQuery(`SELECT DISTINCT n1.metro, n1.state_province, n2.metro, n2.state_province
		FROM phys_nodes n1
		JOIN phys_nodes n2 ON n1.organization = n2.organization
		WHERE n1.organization LIKE '%ATT-INTERNET%' AND n1.metro < n2.metro`)
	_ = rows // metro pairs from self-join are the complete graph; use std_paths instead

	// Use the AT&T adjacency via the world's Rocketfuel edge list realized
	// in the database: every pair that has an inferred standard path.
	att := e.World.ASByNumber(7018)
	var logical [][2]int
	if att != nil && att.ISP >= 0 {
		for _, l := range e.World.ISPs[att.ISP].Links {
			a := e.G.CityByName(e.World.Cities[l[0]].Name, e.World.Cities[l[0]].State, "US")
			b := e.G.CityByName(e.World.Cities[l[1]].Name, e.World.Cities[l[1]].State, "US")
			if a >= 0 && b >= 0 {
				logical = append(logical, [2]int{a, b})
			}
		}
	}
	// Straight-line total length vs corridor sharing in the iGDB view. The
	// collapse happens at the right-of-way segment level: many logical
	// edges route over the same road/rail corridor.
	var straightKm float64
	corridorUse := map[[2]int]int{}
	traversals := 0
	for _, l := range logical {
		straightKm += geo.Haversine(e.G.Cities[l[0]].Loc, e.G.Cities[l[1]].Loc)
		nodes, _, ok := e.G.Row.G.ShortestPath(l[0], l[1])
		if !ok {
			continue
		}
		for i := 1; i < len(nodes); i++ {
			k := [2]int{min(nodes[i-1], nodes[i]), max(nodes[i-1], nodes[i])}
			corridorUse[k]++
			traversals++
		}
	}
	sharing := 0.0
	if len(corridorUse) > 0 {
		sharing = float64(traversals) / float64(len(corridorUse))
	}
	r.addRow("Rocketfuel logical edges", intCell(len(logical)))
	r.addRow("distinct physical corridors used", intCell(len(corridorUse)))
	r.addRow("corridor traversals", intCell(traversals))
	r.addRow("sharing factor (traversals/corridors)", fmt.Sprintf("%.2f", sharing))
	r.addRow("straight-line total length", fmt.Sprintf("%.0f km", straightKm))
	r.notef("paper: implied path diversity collapses onto shared rights-of-way; sharing factor > 1 reproduces that")

	mp := render.NewMap(geo.BBox{MinLon: -126, MinLat: 23, MaxLon: -65, MaxLat: 51}, 1200, 620)
	mp.SetTitle("AS7018: Rocketfuel straight lines (brown) vs iGDB corridors (purple)")
	for _, l := range logical {
		mp.Polyline([]geo.Point{e.G.Cities[l[0]].Loc, e.G.Cities[l[1]].Loc},
			render.Style{Stroke: "#8b5a2b", StrokeWidth: 0.8, Opacity: 0.7})
	}
	for k := range corridorUse {
		if gline, ok := e.G.Row.Geometry(k[0], k[1]); ok {
			mp.Polyline(gline, render.Style{Stroke: "#8e44ad", StrokeWidth: 1.2})
		}
	}
	for _, l := range logical {
		mp.Circle(e.G.Cities[l[0]].Loc, render.Style{Fill: "#2980b9", Radius: 3})
		mp.Circle(e.G.Cities[l[1]].Loc, render.Style{Fill: "#2980b9", Radius: 3})
	}
	r.artifact("figure8_rocketfuel.svg", mp.SVG())
	return r
}

// Figure9 reproduces the Madrid→Berlin fusion: the real traceroute versus
// the paper's theoretical Figure 1 (paper: 3 ASes vs 4; 5 metros vs 10;
// 3 countries vs 6).
func (e *Env) Figure9() Result {
	r := Result{
		ID:     "figure9",
		Title:  "Figure 9: Madrid → Berlin traceroute fused with iGDB",
		Header: []string{"Quantity", "Measured", "Theoretical (Fig. 1)"},
	}
	m, ok := e.measurementBetween("Madrid", "Berlin")
	if !ok {
		r.notef("reference measurement missing")
		return r
	}
	ta := e.P.AnalyzeTrace(m)
	asSet := map[int]bool{}
	for _, a := range ta.ASPath {
		asSet[a] = true
	}
	countrySet := map[string]bool{}
	var metros []string
	for _, c := range ta.CitySeq {
		countrySet[e.G.Cities[c].Country] = true
		metros = append(metros, e.G.Cities[c].Name)
	}
	r.addRow("responding hops", intCell(len(ta.Hops)), "11")
	r.addRow("ASes on path", intCell(len(asSet)), "4")
	r.addRow("metros on path", intCell(len(ta.CitySeq)), "10")
	r.addRow("countries traversed", intCell(len(countrySet)), "6")
	r.notef("paper measured: 11 hops, 3 ASes, 5 metros, 3 countries; path %s", strings.Join(metros, " → "))

	// AS spatial extents: peering metros + convex hull per AS.
	mp := render.NewMap(geo.BBox{MinLon: -12, MinLat: 34, MaxLon: 25, MaxLat: 58}, 1000, 800)
	mp.SetTitle("Madrid→Berlin path (brown) with AS peering footprints")
	colors := map[int]string{12008: "#c0392b", 22822: "#2980b9", 20647: "#27ae60"}
	for asn, color := range colors {
		rows := e.G.Rel.MustQuery(fmt.Sprintf(
			`SELECT DISTINCT metro, state_province, country FROM asn_loc WHERE asn = %d`, asn))
		var pts []geo.Point
		for _, row := range rows.Rows {
			mm, _ := row[0].AsText()
			ss, _ := row[1].AsText()
			cc, _ := row[2].AsText()
			idx := e.G.CityIndex(mm, ss, cc)
			if idx < 0 {
				continue
			}
			p := e.G.Cities[idx].Loc
			pts = append(pts, p)
			mp.Circle(p, render.Style{Stroke: color, StrokeWidth: 1.2, Radius: 4})
		}
		if hull := geom.ConvexHull(pts); len(hull) >= 3 {
			mp.Polygon(hull, render.Style{Fill: color, Opacity: 0.12})
		}
	}
	routeGeom, _ := e.P.InferredRoute(ta.CitySeq)
	mp.Polyline(routeGeom, render.Style{Stroke: "#8b5a2b", StrokeWidth: 2})
	r.artifact("figure9_madrid_berlin.svg", mp.SVG())
	return r
}

// Figure10 reproduces the node-density analysis: physical nodes per
// Thiessen cell and the CDF over cells with at least one node. Paper:
// 3,130 of 7,342 cells have ≥1 node; most cells have fewer than 10.
func (e *Env) Figure10() Result {
	r := Result{
		ID:     "figure10",
		Title:  "Figure 10: physical-node distribution across Thiessen cells",
		Header: []string{"Metric", "Value"},
	}
	rows := e.G.Rel.MustQuery(`SELECT metro, state_province, country, COUNT(*) AS n
		FROM phys_nodes GROUP BY metro, state_province, country`)
	counts := make([]int, 0, rows.Len())
	for _, row := range rows.Rows {
		n, _ := row[3].AsInt()
		counts = append(counts, int(n))
	}
	sort.Ints(counts)
	occupied := len(counts)
	under10 := 0
	for _, n := range counts {
		if n < 10 {
			under10++
		}
	}
	median := 0
	if occupied > 0 {
		median = counts[occupied/2]
	}
	maxN := 0
	if occupied > 0 {
		maxN = counts[occupied-1]
	}
	r.addRow("cells in tessellation", intCell(len(e.G.Cities)))
	r.addRow("cells with >= 1 node", intCell(occupied))
	r.addRow("cells with < 10 nodes", fmt.Sprintf("%d (%.0f%%)", under10, 100*float64(under10)/float64(max(1, occupied))))
	r.addRow("median nodes per occupied cell", intCell(median))
	r.addRow("max nodes in one cell", intCell(maxN))
	r.notef("paper: 3130/7342 cells occupied, most below 10 nodes; measured %d/%d occupied, %.0f%% below 10",
		occupied, len(e.G.Cities), 100*float64(under10)/float64(max(1, occupied)))

	// CDF artifact as an SVG plot (log-x as in the paper).
	r.artifact("figure10_cdf.svg", cdfSVG(counts))

	// Density map.
	mp := render.NewWorldMap(1440, 720)
	mp.SetTitle("Physical nodes per metro")
	for _, row := range rows.Rows {
		mm, _ := row[0].AsText()
		ss, _ := row[1].AsText()
		cc, _ := row[2].AsText()
		n, _ := row[3].AsInt()
		idx := e.G.CityIndex(mm, ss, cc)
		if idx < 0 {
			continue
		}
		radius := 1.0 + math.Log1p(float64(n))
		mp.Circle(e.G.Cities[idx].Loc, render.Style{Fill: "#e67e22", Radius: radius, Opacity: 0.7})
	}
	r.artifact("figure10_density.svg", mp.SVG())
	return r
}

// cdfSVG renders the Figure 10 CDF (percent of cities vs node count,
// log-scaled x) as a plain SVG plot.
func cdfSVG(sortedCounts []int) []byte {
	const w, h, pad = 640, 420, 50
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="#ffffff"/>`)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, pad, h-pad, w-pad, h-pad)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, pad, pad, pad, h-pad)
	if len(sortedCounts) > 0 {
		maxX := math.Log10(float64(sortedCounts[len(sortedCounts)-1]) + 1)
		if maxX <= 0 {
			maxX = 1
		}
		var pts []string
		for i, n := range sortedCounts {
			fx := math.Log10(float64(n)+1) / maxX
			fy := float64(i+1) / float64(len(sortedCounts))
			x := pad + fx*float64(w-2*pad)
			y := float64(h-pad) - fy*float64(h-2*pad)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#2980b9" stroke-width="1.5"/>`, strings.Join(pts, " "))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" font-family="sans-serif">Number of Nodes (log)</text>`, w/2-60, h-14)
	fmt.Fprintf(&b, `<text x="6" y="%d" font-size="12" font-family="sans-serif" transform="rotate(-90 14 %d)">Percent of Cities</text>`, h/2, h/2)
	b.WriteString(`</svg>`)
	return []byte(b.String())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
