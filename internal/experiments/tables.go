package experiments

import (
	"fmt"
	"sort"

	"igdb/internal/iptrie"
)

// Table1 reproduces "Select database characteristics": the row counts that
// summarize iGDB's coverage. Paper values: 102,216 ASes; 81,879
// organizations; 29,220 physical nodes; 210 countries with nodes; 8,323
// inferred physical paths; 511 submarine cables.
func (e *Env) Table1() Result {
	r := Result{
		ID:     "table1",
		Title:  "Table 1: Select database characteristics",
		Header: []string{"Type", "Value"},
	}
	count := func(sql string) int64 {
		rows := e.G.Rel.MustQuery(sql)
		n, _ := rows.Rows[0][0].AsInt()
		return n
	}
	ases := count(`SELECT COUNT(DISTINCT asn) FROM asn_name`)
	orgs := count(`SELECT COUNT(DISTINCT organization) FROM asn_org`)
	nodes := count(`SELECT COUNT(*) FROM phys_nodes`)
	countries := count(`SELECT COUNT(DISTINCT country) FROM phys_nodes`)
	pathsN := count(`SELECT COUNT(*) FROM std_paths`)
	cables := count(`SELECT COUNT(*) FROM sub_cables`)

	r.addRow("Number of ASes", fmt.Sprintf("%d", ases))
	r.addRow("Number of organizations", fmt.Sprintf("%d", orgs))
	r.addRow("Number of physical nodes", fmt.Sprintf("%d", nodes))
	r.addRow("Number of countries with nodes", fmt.Sprintf("%d", countries))
	r.addRow("Number of inferred physical paths", fmt.Sprintf("%d", pathsN))
	r.addRow("Number of submarine cables", fmt.Sprintf("%d", cables))

	r.notef("paper: 102216 ASes / 81879 orgs / 29220 nodes / 210 countries / 8323 paths / 511 cables")
	r.notef("measured: %d / %d / %d / %d / %d / %d", ases, orgs, nodes, countries, pathsN, cables)
	return r
}

// Table2 reproduces "ASes with physical presence in the most countries".
// Paper's top three: Cloudflare (52), Hurricane Electric (50), Microsoft
// (50); eleven rows total down to 35 countries.
func (e *Env) Table2() Result {
	r := Result{
		ID:     "table2",
		Title:  "Table 2: ASes with physical presence in the most countries",
		Header: []string{"ASNumber", "ASName", "Organization", "Countries"},
	}
	rows := e.G.Rel.MustQuery(`
		SELECT l.asn, MIN(n.asn_name) AS name, MIN(o.organization) AS org,
		       COUNT(DISTINCT l.country) AS countries
		FROM asn_loc l
		JOIN asn_name n ON n.asn = l.asn AND n.source = 'asrank'
		JOIN asn_org o ON o.asn = l.asn AND o.source = 'asrank'
		GROUP BY l.asn
		ORDER BY countries DESC, l.asn ASC
		LIMIT 11`)
	for _, row := range rows.Rows {
		asn, _ := row[0].AsInt()
		name, _ := row[1].AsText()
		org, _ := row[2].AsText()
		n, _ := row[3].AsInt()
		r.addRow(fmt.Sprintf("%d", asn), name, org, fmt.Sprintf("%d", n))
	}
	if rows.Len() > 0 {
		topASN, _ := rows.Rows[0][0].AsInt()
		topN, _ := rows.Rows[0][3].AsInt()
		r.notef("paper: AS13335 (Cloudflare) leads with 52 countries; measured leader: AS%d with %d", topASN, topN)
	}
	return r
}

// Table3 reproduces "Missing locations in Internet Atlas and PeeringDB for
// AS174 (Cogent)": metros observed via traceroute rDNS hostnames that the
// declarative sources do not list. The paper shows six example metros and
// reports >104 missing cities overall.
func (e *Env) Table3() Result {
	r := Result{
		ID:     "table3",
		Title:  "Table 3: Missing locations in Internet Atlas and PeeringDB for AS174",
		Header: []string{"Reverse Hostname", "Metro"},
	}
	// Declared AS174 metros from the database.
	declared := map[string]bool{}
	rows := e.G.Rel.MustQuery(`SELECT DISTINCT metro, country FROM asn_loc WHERE asn = 174`)
	for _, row := range rows.Rows {
		m, _ := row[0].AsText()
		c, _ := row[1].AsText()
		declared[m+"-"+c] = true
	}
	rows = e.G.Rel.MustQuery(`SELECT DISTINCT metro, country FROM phys_nodes
		WHERE organization LIKE '%COGENT%' OR organization LIKE '%Cogent%'`)
	for _, row := range rows.Rows {
		m, _ := row[0].AsText()
		c, _ := row[1].AsText()
		declared[m+"-"+c] = true
	}

	// Observed AS174 hops across the mesh, geolocated via Hoiho. The same
	// hostname can be geolocated differently under different measurement
	// contexts, so each hostname takes its majority metro.
	votes := map[string]map[string]int{}
	for _, m := range e.P.Measurements {
		ta := e.P.AnalyzeTrace(m)
		for _, h := range ta.Hops {
			if h.ASN != 174 || h.GeoSource != "hoiho" || h.Hostname == "" {
				continue
			}
			if votes[h.Hostname] == nil {
				votes[h.Hostname] = map[string]int{}
			}
			votes[h.Hostname][e.G.Cities[h.City].Metro()]++
		}
	}
	missing := map[string]string{} // metro -> hostname
	for host, byMetro := range votes {
		bestMetro, bestN := "", 0
		for metro, n := range byMetro {
			if n > bestN || (n == bestN && metro < bestMetro) {
				bestMetro, bestN = metro, n
			}
		}
		if declared[bestMetro] {
			continue
		}
		if _, seen := missing[bestMetro]; !seen {
			missing[bestMetro] = host
		}
	}
	metros := make([]string, 0, len(missing))
	for m := range missing {
		metros = append(metros, m)
	}
	sort.Strings(metros)
	for _, m := range metros {
		r.addRow(missing[m], m)
	}
	r.notef("paper: >104 Cogent metros recovered via rDNS that declarative sources omit; measured: %d", len(missing))
	r.notef("ground truth plants undeclared Cogent PoPs in Dresden, Syracuse, Hong Kong, Orlando, Katowice, Jacksonville")
	return r
}

// Section44 reproduces the belief-propagation statistics of §4.4: counts of
// newly inferred (city, AS) tuples, metros and ASes touched, the
// rDNS-resolution and geohint rates, and consistency against independent
// locators. Paper: 2231 new tuples across >124 metros and 240 ASes; 36% of
// IPs unresolvable; 86% of resolving hostnames without geohints; 86%
// BP/Hoiho+IXP agreement; 177 ASes gain first geolocation.
func (e *Env) Section44() Result {
	r := Result{
		ID:     "section44",
		Title:  "§4.4: Inferring geographic information from logical measurements",
		Header: []string{"Metric", "Value"},
	}
	stats := e.beliefPropagation()

	r.addRow("observed traceroute IPs", intCell(stats.observedIPs))
	r.addRow("IPs resolving via rDNS", fmt.Sprintf("%d (%.0f%%)", stats.resolved, 100*float64(stats.resolved)/float64(max(1, stats.observedIPs))))
	r.addRow("resolving IPs with geohint", fmt.Sprintf("%d (%.0f%%)", stats.geohinted, 100*float64(stats.geohinted)/float64(max(1, stats.resolved))))
	r.addRow("seed locations (hoiho+ixp+anchor)", intCell(stats.seeds))
	r.addRow("IPs newly geolocated by BP", intCell(stats.inferred))
	r.addRow("new (city, AS) tuples", intCell(stats.newTuples))
	r.addRow("distinct metros gained", intCell(stats.newMetros))
	r.addRow("distinct ASes gained", intCell(stats.newASes))
	r.addRow("ASes with first-ever geolocation", intCell(stats.firstGeoASes))
	if stats.consistencyTotal > 0 {
		r.addRow("BP vs independent locator agreement",
			fmt.Sprintf("%d/%d (%.0f%%)", stats.consistencyAgree, stats.consistencyTotal,
				100*float64(stats.consistencyAgree)/float64(stats.consistencyTotal)))
	}
	r.addRow("BP accuracy vs ground truth", fmt.Sprintf("%.0f%%", 100*stats.truthAccuracy))

	r.notef("paper: 2231 new tuples, >124 metros, 240 ASes, 86%% consistency, 64%% resolve, 14%% geohinted")
	r.notef("ground-truth accuracy is only measurable in this reproduction (the live Internet has no oracle)")
	return r
}

type bpStats struct {
	observedIPs      int
	resolved         int
	geohinted        int
	seeds            int
	inferred         int
	newTuples        int
	newMetros        int
	newASes          int
	firstGeoASes     int
	consistencyAgree int
	consistencyTotal int
	truthAccuracy    float64
}

func (e *Env) beliefPropagation() bpStats {
	var st bpStats
	seen := map[uint32]bool{}
	for _, m := range e.P.Measurements {
		for _, h := range m.Hops {
			addr, err := iptrie.ParseAddr(h.IP)
			if err != nil || seen[addr] {
				continue
			}
			seen[addr] = true
			st.observedIPs++
			if host, ok := e.P.PTR[addr]; ok {
				st.resolved++
				if _, located := e.P.Hoiho.Locate(host); located {
					st.geohinted++
				}
			}
		}
	}
	known := e.P.KnownLocations()
	st.seeds = len(known)
	inferred := propagate(e, known)
	st.inferred = len(inferred)

	// Existing (metro, AS) pairs from asn_loc.
	existing := map[[2]int]bool{}
	asWithGeo := map[int]bool{}
	rows := e.G.Rel.MustQuery(`SELECT DISTINCT asn, metro, state_province, country FROM asn_loc`)
	for _, row := range rows.Rows {
		asn64, _ := row[0].AsInt()
		m, _ := row[1].AsText()
		s, _ := row[2].AsText()
		c, _ := row[3].AsText()
		city := e.G.CityIndex(m, s, c)
		if city >= 0 {
			existing[[2]int{city, int(asn64)}] = true
		}
		asWithGeo[int(asn64)] = true
	}
	ipASN := map[uint32]int{}
	for _, o := range e.P.Observations() {
		for i, ip := range o.IPs {
			if o.ASNs[i] >= 0 {
				ipASN[ip] = o.ASNs[i]
			}
		}
	}
	tupleSet := map[[2]int]bool{}
	metroSet := map[int]bool{}
	asSet := map[int]bool{}
	firstGeo := map[int]bool{}
	for ip, inf := range inferred {
		asn, ok := ipASN[ip]
		if !ok {
			continue
		}
		key := [2]int{inf.City, asn}
		if existing[key] || tupleSet[key] {
			continue
		}
		tupleSet[key] = true
		metroSet[inf.City] = true
		asSet[asn] = true
		if !asWithGeo[asn] {
			firstGeo[asn] = true
		}
	}
	st.newTuples = len(tupleSet)
	st.newMetros = len(metroSet)
	st.newASes = len(asSet)
	st.firstGeoASes = len(firstGeo)

	// Consistency vs Hoiho-only locations (held out of the seed set): the
	// paper's §4.4 cross-check. Per-IP sources come from the context-aware
	// trace analysis.
	holdout := map[uint32]int{}
	seedNoHoiho := map[uint32]int{}
	for _, m := range e.P.Measurements {
		ta := e.P.AnalyzeTrace(m)
		for _, h := range ta.Hops {
			if h.City < 0 {
				continue
			}
			if h.GeoSource == "hoiho" {
				if _, have := holdout[h.IP]; !have {
					holdout[h.IP] = h.City
				}
			} else {
				if _, have := seedNoHoiho[h.IP]; !have {
					seedNoHoiho[h.IP] = h.City
				}
			}
		}
	}
	inf2 := propagate(e, seedNoHoiho)
	for ip, inf := range inf2 {
		want, ok := holdout[ip]
		if !ok {
			continue
		}
		st.consistencyTotal++
		if want == inf.City {
			st.consistencyAgree++
		}
	}

	// Ground-truth accuracy.
	truth := map[uint32]int{}
	for _, tr := range e.World.Traces {
		for _, h := range tr.Hops {
			truth[h.IP] = h.City
		}
	}
	correct, total := 0, 0
	for ip, inf := range inferred {
		want, ok := truth[ip]
		if !ok {
			continue
		}
		total++
		if e.G.Cities[inf.City].Name == e.World.Cities[want].Name {
			correct++
		}
	}
	if total > 0 {
		st.truthAccuracy = float64(correct) / float64(total)
	}
	return st
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
