package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"igdb/internal/worldgen"
)

var (
	envOnce sync.Once
	testEnv *Env
)

func env(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		e, err := NewEnv(worldgen.SmallConfig())
		if err != nil {
			panic(err)
		}
		testEnv = e
	})
	return testEnv
}

// cell finds the value for a row whose first column matches prefix.
func cell(r Result, prefix string) string {
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], prefix) {
			return row[len(row)-1]
		}
	}
	return ""
}

func cellInt(t *testing.T, r Result, prefix string) int {
	t.Helper()
	s := cell(r, prefix)
	if s == "" {
		t.Fatalf("%s: no row with prefix %q", r.ID, prefix)
	}
	// Accept "123" or "123 (45%)" or "123 km".
	fields := strings.Fields(s)
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		t.Fatalf("%s: row %q value %q is not an int", r.ID, prefix, s)
	}
	return n
}

func TestTable1Shape(t *testing.T) {
	e := env(t)
	r := e.Table1()
	cfg := worldgen.SmallConfig()
	if got := cellInt(t, r, "Number of ASes"); got != cfg.NumASNs {
		t.Errorf("ASes = %d, want %d", got, cfg.NumASNs)
	}
	if got := cellInt(t, r, "Number of physical nodes"); got <= 0 {
		t.Error("no physical nodes")
	}
	if got := cellInt(t, r, "Number of inferred physical paths"); got <= 0 {
		t.Error("no inferred paths")
	}
	if got := cellInt(t, r, "Number of submarine cables"); got <= 0 {
		t.Error("no cables")
	}
	if got := cellInt(t, r, "Number of countries with nodes"); got < 20 {
		t.Errorf("countries = %d, suspiciously low", got)
	}
}

func TestTable2Shape(t *testing.T) {
	e := env(t)
	r := e.Table2()
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(r.Rows))
	}
	// Non-increasing country counts; leader is one of the planted tier-1s.
	prev := 1 << 30
	for _, row := range r.Rows {
		n, err := strconv.Atoi(row[3])
		if err != nil || n > prev {
			t.Fatalf("country column not sorted: %v", r.Rows)
		}
		prev = n
	}
	leader, _ := strconv.Atoi(r.Rows[0][0])
	want := map[int]bool{13335: true, 6939: true, 8075: true, 174: true, 3356: true, 16509: true, 42473: true, 1299: true}
	if !want[leader] {
		t.Errorf("leader AS%d is not one of the planted global networks", leader)
	}
	// Cloudflare appears in the table (it has the largest planted footprint).
	saw13335 := false
	for _, row := range r.Rows {
		if row[0] == "13335" {
			saw13335 = true
		}
	}
	if !saw13335 {
		t.Error("AS13335 missing from the top-11")
	}
}

func TestTable3FindsPlantedCities(t *testing.T) {
	e := env(t)
	r := e.Table3()
	if len(r.Rows) == 0 {
		t.Fatal("no missing locations recovered")
	}
	got := map[string]bool{}
	for _, row := range r.Rows {
		got[row[1]] = true
		if !strings.Contains(row[0], "cogentco.com") {
			t.Errorf("hostname %q is not a Cogent name", row[0])
		}
	}
	// At least some planted metros must be recovered (which ones appear
	// depends on mesh sampling).
	planted := []string{"Dresden-DE", "Syracuse-US", "Hong Kong-HK", "Orlando-US", "Katowice-PL", "Jacksonville-US"}
	found := 0
	for _, p := range planted {
		if got[p] {
			found++
		}
	}
	if found == 0 {
		t.Errorf("none of the planted Table 3 metros recovered; got %v", got)
	}
}

func TestFigure3Shape(t *testing.T) {
	e := env(t)
	r := e.Figure3()
	if got := cellInt(t, r, "polygons"); got < len(e.G.Cities)-5 {
		t.Errorf("polygons = %d", got)
	}
	if len(r.Artifacts["figure3_thiessen.svg"]) == 0 {
		t.Error("missing SVG artifact")
	}
}

func TestFigure4Shape(t *testing.T) {
	e := env(t)
	r := e.Figure4()
	totalROW := cellInt(t, r, "InterTubes links along transportation ROW")
	matchedROW := cellInt(t, r, "... approximated")
	if totalROW == 0 {
		t.Fatal("no road-following InterTubes links")
	}
	frac := float64(matchedROW) / float64(totalROW)
	if frac < 0.6 {
		t.Errorf("only %.0f%% of road-following links approximated, want >= 60%%", 100*frac)
	}
	// Pipeline links mostly NOT approximated (paper's key observation).
	totalPipe := cellInt(t, r, "InterTubes links along other ROW")
	rows := r.Rows
	matchedPipe, _ := strconv.Atoi(rows[3][1])
	if totalPipe > 0 && matchedPipe == totalPipe {
		t.Error("every pipeline link approximated — the non-road ROW effect vanished")
	}
	if got := cellInt(t, r, "iGDB corridors with no InterTubes counterpart"); got == 0 {
		t.Error("no unused alternate corridors")
	}
	if len(r.Artifacts["figure4_intertubes.svg"]) == 0 {
		t.Error("missing SVG artifact")
	}
}

func TestFigure5Shape(t *testing.T) {
	e := env(t)
	r := e.Figure5()
	for _, metric := range []string{"physical nodes", "inferred terrestrial paths", "submarine cables"} {
		if got := cellInt(t, r, metric); got <= 0 {
			t.Errorf("%s = %d", metric, got)
		}
	}
	if len(r.Artifacts["figure5_physical_map.svg"]) == 0 {
		t.Error("missing SVG artifact")
	}
}

func TestFigure6ExactCounts(t *testing.T) {
	e := env(t)
	r := e.Figure6()
	if got := cellInt(t, r, "Cox Communications"); got != 30 {
		t.Errorf("Cox metros = %d, want 30", got)
	}
	if got := cellInt(t, r, "Charter Communications"); got != 71 {
		t.Errorf("Charter metros = %d, want 71", got)
	}
	if got := cellInt(t, r, "Overlapping metros"); got != 10 {
		t.Errorf("overlap = %d, want 10", got)
	}
}

func TestFigure7Shape(t *testing.T) {
	e := env(t)
	r := e.Figure7()
	seq := cell(r, "visible metro sequence")
	if !strings.Contains(seq, "Kansas City") || !strings.Contains(seq, "Atlanta") {
		t.Errorf("metro sequence = %q", seq)
	}
	if strings.Contains(seq, "Tulsa") {
		t.Error("Tulsa should be hidden from the visible sequence")
	}
	cands := cell(r, "hidden-node candidates")
	if !strings.Contains(cands, "Tulsa") {
		t.Errorf("candidates %q missing Tulsa", cands)
	}
	costStr := cell(r, "distance cost")
	cost, err := strconv.ParseFloat(costStr, 64)
	if err != nil || cost < 1.2 {
		t.Errorf("distance cost = %q, want >= 1.2", costStr)
	}
	if len(r.Artifacts["figure7_kc_atlanta.svg"]) == 0 {
		t.Error("missing SVG artifact")
	}
}

func TestFigure8Shape(t *testing.T) {
	e := env(t)
	r := e.Figure8()
	logical := cellInt(t, r, "Rocketfuel logical edges")
	corridors := cellInt(t, r, "distinct physical corridors")
	if logical == 0 || corridors == 0 {
		t.Fatalf("logical=%d corridors=%d", logical, corridors)
	}
	sharing, err := strconv.ParseFloat(cell(r, "sharing factor"), 64)
	if err != nil || sharing <= 1.0 {
		t.Errorf("sharing factor = %v, want > 1 (corridor collapse)", sharing)
	}
	if len(r.Artifacts["figure8_rocketfuel.svg"]) == 0 {
		t.Error("missing SVG artifact")
	}
}

func TestFigure9Shape(t *testing.T) {
	e := env(t)
	r := e.Figure9()
	if got := cellInt(t, r, "ASes on path"); got != 3 {
		// value column is "Measured"; row has 3 columns
		for _, row := range r.Rows {
			if row[0] == "ASes on path" && row[1] != "3" {
				t.Errorf("ASes on path = %s, want 3", row[1])
			}
		}
	}
	for _, row := range r.Rows {
		switch row[0] {
		case "metros on path":
			if row[1] != "5" {
				t.Errorf("metros = %s, want 5", row[1])
			}
		case "countries traversed":
			if row[1] != "3" {
				t.Errorf("countries = %s, want 3", row[1])
			}
		}
	}
	if len(r.Artifacts["figure9_madrid_berlin.svg"]) == 0 {
		t.Error("missing SVG artifact")
	}
}

func TestFigure10Shape(t *testing.T) {
	e := env(t)
	r := e.Figure10()
	occupied := cellInt(t, r, "cells with >= 1 node")
	total := cellInt(t, r, "cells in tessellation")
	if occupied <= 0 || occupied > total {
		t.Fatalf("occupied=%d total=%d", occupied, total)
	}
	// Most occupied cells hold fewer than 10 nodes (paper's CDF shape).
	under10 := cellInt(t, r, "cells with < 10 nodes")
	if float64(under10)/float64(occupied) < 0.5 {
		t.Errorf("only %d/%d cells under 10 nodes", under10, occupied)
	}
	if len(r.Artifacts["figure10_cdf.svg"]) == 0 || len(r.Artifacts["figure10_density.svg"]) == 0 {
		t.Error("missing artifacts")
	}
}

func TestSection44Shape(t *testing.T) {
	e := env(t)
	r := e.Section44()
	if got := cellInt(t, r, "IPs newly geolocated by BP"); got <= 0 {
		t.Error("BP inferred nothing")
	}
	if got := cellInt(t, r, "new (city, AS) tuples"); got <= 0 {
		t.Error("no new tuples")
	}
	resolved := cellInt(t, r, "IPs resolving via rDNS")
	observed := cellInt(t, r, "observed traceroute IPs")
	if resolved == 0 || resolved >= observed {
		t.Errorf("rDNS resolution %d/%d should be partial", resolved, observed)
	}
	// Ground-truth accuracy is reported and reasonable.
	acc := cell(r, "BP accuracy vs ground truth")
	n, err := strconv.Atoi(strings.TrimSuffix(acc, "%"))
	if err != nil || n < 60 {
		t.Errorf("BP accuracy = %q, want >= 60%%", acc)
	}
}

func TestAllRuns(t *testing.T) {
	e := env(t)
	results := e.All()
	if len(results) != 12 {
		t.Fatalf("All returned %d results, want 12", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.ID == "" || r.Title == "" {
			t.Errorf("result missing identity: %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
	}
}
