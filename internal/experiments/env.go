// Package experiments reproduces every table and figure in the iGDB
// paper's evaluation (§4 + appendix). Each experiment runs the same
// analysis the paper describes — as SQL over the iGDB relations plus the
// measurement-fusion pipeline — against the synthetic world, and returns a
// Result whose rows mirror what the paper reports, with paper-vs-measured
// notes where the paper states concrete numbers.
package experiments

import (
	"fmt"
	"time"

	"igdb/internal/core"
	"igdb/internal/ingest"
	"igdb/internal/paths"
	"igdb/internal/sources/ripeatlas"
	"igdb/internal/worldgen"
)

// Env is a fully built experimental environment: world, snapshots,
// database, and the measurement pipeline.
type Env struct {
	World *worldgen.World
	Store *ingest.Store
	G     *core.IGDB
	P     *paths.Pipeline
}

// NewEnv generates the world, collects all snapshots, builds iGDB and
// trains the pipeline.
func NewEnv(cfg worldgen.Config) (*Env, error) {
	w := worldgen.Generate(cfg)
	store := ingest.NewStore("")
	asOf := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	if err := ingest.Collect(w, store, asOf); err != nil {
		return nil, err
	}
	g, err := core.Build(store, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	p, err := paths.NewPipeline(g, store)
	if err != nil {
		return nil, err
	}
	if _, err := p.StoreIPASNDNS(); err != nil {
		return nil, err
	}
	return &Env{World: w, Store: store, G: g, P: p}, nil
}

// Result is one reproduced table or figure.
type Result struct {
	ID     string // "table1", "figure7", ...
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries paper-vs-measured commentary.
	Notes []string
	// Artifacts holds regenerated figure files (SVG/GeoJSON) by filename.
	Artifacts map[string][]byte
}

func (r *Result) addRow(cells ...string) { r.Rows = append(r.Rows, cells) }

func (r *Result) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) artifact(name string, data []byte) {
	if r.Artifacts == nil {
		r.Artifacts = make(map[string][]byte)
	}
	r.Artifacts[name] = data
}

// All runs every experiment in paper order.
func (e *Env) All() []Result {
	return []Result{
		e.Table1(),
		e.Table2(),
		e.Table3(),
		e.Figure3(),
		e.Figure4(),
		e.Figure5(),
		e.Figure6(),
		e.Figure7(),
		e.Figure8(),
		e.Figure9(),
		e.Figure10(),
		e.Section44(),
	}
}

// measurementBetween finds the mesh measurement between two named metros.
func (e *Env) measurementBetween(src, dst string) (ripeatlas.Measurement, bool) {
	tr := e.World.FindTrace(src, dst)
	if tr == nil {
		return ripeatlas.Measurement{}, false
	}
	for _, m := range e.P.Measurements {
		if m.SrcAnchor == tr.SrcAnchor && m.DstAnchor == tr.DstAnchor {
			return m, true
		}
	}
	return ripeatlas.Measurement{}, false
}

// intCell formats an int.
func intCell(n int) string { return fmt.Sprintf("%d", n) }
