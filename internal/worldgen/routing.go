package worldgen

import (
	"math/rand"

	"igdb/internal/geo"
	"igdb/internal/graph"
)

// fiberKmPerMs is the propagation speed of light in fiber (~2/3 c),
// expressed as kilometers per millisecond of one-way delay.
const fiberKmPerMs = 200.0

// routeInflation approximates how much longer fiber routes are than the
// great circle (rights-of-way are not straight lines).
const routeInflation = 1.25

// asChangePenaltyKm biases routing toward staying inside one network,
// mimicking hot-potato economics.
const asChangePenaltyKm = 400.0

// routingNode is one (ISP, city) PoP in the forwarding graph.
type routingNode struct {
	isp  int // ISP index
	city int
}

// routingGraph is the (AS, city)-level forwarding fabric used to synthesize
// traceroutes.
type routingGraph struct {
	g      *graph.Graph
	nodes  []routingNode
	nodeID map[routingNode]int
	w      *World
}

func (w *World) buildRoutingGraph() *routingGraph {
	rg := &routingGraph{
		g:      graph.New(0),
		nodeID: make(map[routingNode]int),
		w:      w,
	}
	node := func(isp, city int) int {
		key := routingNode{isp, city}
		if id, ok := rg.nodeID[key]; ok {
			return id
		}
		id := rg.g.AddNode()
		rg.nodeID[key] = id
		rg.nodes = append(rg.nodes, key)
		return id
	}
	// Intra-ISP backbone links.
	for i := range w.ISPs {
		isp := &w.ISPs[i]
		for _, l := range isp.Links {
			a := node(i, l[0])
			b := node(i, l[1])
			d := geo.Haversine(w.Cities[l[0]].Loc, w.Cities[l[1]].Loc) * routeInflation
			if d <= 0 {
				d = 1
			}
			rg.g.AddUndirected(a, b, d)
		}
		// Single-PoP ISPs still need their node present.
		for _, p := range isp.POPs {
			node(i, p)
		}
	}
	// Inter-AS edges where two linked ASes share a metro.
	linked := make(map[[2]int]bool, len(w.ASLinks))
	for _, l := range w.ASLinks {
		linked[[2]int{min(l.A, l.B), max(l.A, l.B)}] = true
	}
	byCity := make(map[int][]int) // city -> ISP ids
	for i := range w.ISPs {
		for _, p := range w.ISPs[i].POPs {
			byCity[p] = append(byCity[p], i)
		}
	}
	for city, isps := range byCity {
		for i := 0; i < len(isps); i++ {
			for j := i + 1; j < len(isps); j++ {
				a, b := w.ISPs[isps[i]].ASN, w.ISPs[isps[j]].ASN
				if !linked[[2]int{min(a, b), max(a, b)}] {
					continue
				}
				rg.g.AddUndirected(node(isps[i], city), node(isps[j], city), asChangePenaltyKm)
			}
		}
	}
	// Backhaul: an AS link whose endpoints share no metro still carries
	// traffic — the customer leases a circuit to the provider's nearest
	// PoP. One edge between the closest PoP pair keeps the fabric connected.
	for _, l := range w.ASLinks {
		asA, asB := w.ASByNumber(l.A), w.ASByNumber(l.B)
		if asA == nil || asB == nil || asA.ISP < 0 || asB.ISP < 0 {
			continue
		}
		ispA, ispB := &w.ISPs[asA.ISP], &w.ISPs[asB.ISP]
		shared := false
		pops := make(map[int]bool, len(ispA.POPs))
		for _, p := range ispA.POPs {
			pops[p] = true
		}
		for _, p := range ispB.POPs {
			if pops[p] {
				shared = true
				break
			}
		}
		if shared {
			continue
		}
		bestA, bestB, bestD := -1, -1, -1.0
		for _, pa := range ispA.POPs {
			for _, pb := range ispB.POPs {
				d := geo.Haversine(w.Cities[pa].Loc, w.Cities[pb].Loc)
				if bestD < 0 || d < bestD {
					bestA, bestB, bestD = pa, pb, d
				}
			}
		}
		if bestA >= 0 {
			rg.g.AddUndirected(node(asA.ISP, bestA), node(asB.ISP, bestB),
				bestD*routeInflation+asChangePenaltyKm)
		}
	}
	// Physically-present IXP members peer with each other at the exchange
	// metro regardless of the declarative AS-link table (public peering).
	peered := make(map[[2]int]bool)
	for _, ix := range w.IXPs {
		var local []int // ISP ids physically at the exchange
		for _, m := range ix.Members {
			if m.Remote {
				continue
			}
			as := w.ASByNumber(m.ASN)
			if as != nil && as.ISP >= 0 && w.containsPOP(&w.ISPs[as.ISP], ix.City) {
				local = append(local, as.ISP)
			}
		}
		for i := 0; i < len(local); i++ {
			for j := i + 1; j < len(local); j++ {
				a := node(local[i], ix.City)
				b := node(local[j], ix.City)
				k := [2]int{min(a, b), max(a, b)}
				if peered[k] {
					continue
				}
				peered[k] = true
				rg.g.AddUndirected(a, b, asChangePenaltyKm)
			}
		}
	}
	return rg
}

// route computes the PoP-level forwarding path between two (ISP, city)
// endpoints, returning the node sequence.
func (rg *routingGraph) route(srcISP, srcCity, dstISP, dstCity int) []routingNode {
	src, ok1 := rg.nodeID[routingNode{srcISP, srcCity}]
	dst, ok2 := rg.nodeID[routingNode{dstISP, dstCity}]
	if !ok1 || !ok2 {
		return nil
	}
	dstLoc := rg.w.Cities[dstCity].Loc
	h := func(n int) float64 {
		return geo.Haversine(rg.w.Cities[rg.nodes[n].city].Loc, dstLoc)
	}
	path, _, ok := rg.g.ShortestPathWithHeuristic(src, dst, h)
	if !ok {
		return nil
	}
	out := make([]routingNode, len(path))
	for i, id := range path {
		out[i] = rg.nodes[id]
	}
	return out
}

// genTraceroutes samples anchor pairs and synthesizes their traceroute
// measurements, including MPLS-hidden interior hops and missing PTR
// records.
func (w *World) genTraceroutes(r *rand.Rand) {
	rg := w.buildRoutingGraph()

	// The guaranteed first anchors (KC, Atlanta, Madrid, Berlin) get the
	// paper's two reference traceroutes as constructed ground truth; the
	// rest of the mesh is sampled and emergent.
	w.buildReferenceTraces(r)

	type pair struct{ src, dst int }
	var pairs []pair
	for len(pairs) < w.Cfg.TraceroutePairs {
		s := r.Intn(len(w.Anchors))
		d := r.Intn(len(w.Anchors))
		if s != d {
			pairs = append(pairs, pair{s, d})
		}
	}
	for _, p := range pairs {
		if tr, ok := w.synthesizeTrace(r, rg, p.src, p.dst); ok {
			w.Traces = append(w.Traces, tr)
		}
	}
}

func (w *World) synthesizeTrace(r *rand.Rand, rg *routingGraph, srcA, dstA int) (Traceroute, bool) {
	src := w.Anchors[srcA]
	dst := w.Anchors[dstA]
	srcISP := w.ASByNumber(src.ASN).ISP
	dstISP := w.ASByNumber(dst.ASN).ISP
	if srcISP < 0 || dstISP < 0 {
		return Traceroute{}, false
	}
	path := rg.route(srcISP, src.City, dstISP, dst.City)
	if len(path) == 0 {
		return Traceroute{}, false
	}
	tr := Traceroute{SrcAnchor: srcA, DstAnchor: dstA}

	// Decide per-AS-segment whether MPLS hides the interior.
	hideSegment := make(map[int]bool)
	for _, n := range path {
		isp := &w.ISPs[n.isp]
		if isp.MPLS {
			if _, seen := hideSegment[n.isp]; !seen {
				hideSegment[n.isp] = r.Float64() < w.Cfg.MPLSHiddenFraction
			}
		}
	}

	cum := 0.0
	var prevLoc geo.Point = w.Cities[src.City].Loc
	for i, n := range path {
		loc := w.Cities[n.city].Loc
		cum += geo.Haversine(prevLoc, loc) * routeInflation
		prevLoc = loc
		isp := &w.ISPs[n.isp]
		as := w.ASByNumber(isp.ASN)
		rt := w.ensureRouter(r, as, isp, n.city)

		hidden := false
		if hideSegment[n.isp] {
			// Interior hop of a hidden MPLS segment: not first or last node
			// of this AS's contiguous run.
			interior := i > 0 && i < len(path)-1 &&
				path[i-1].isp == n.isp && path[i+1].isp == n.isp
			hidden = interior
		}
		// At AS boundaries the ingress interface is often numbered from the
		// neighbour's address space (the §3.3 IP-to-AS pitfall), or — when
		// the handoff happens at an exchange — from the IXP peering LAN
		// (whose prefix is never announced, so LPM finds nothing: the
		// signature traIXroute exploits).
		ip := rt.IP
		if i > 0 && path[i-1].isp != n.isp {
			if lanIP, ok := w.ixpMemberIP(n.city, isp.ASN); ok && r.Float64() < 0.4 {
				ip = lanIP
			} else if r.Float64() < 0.3 {
				if borrowed := w.borrowedBorderIP(w.ISPs[path[i-1].isp].ASN, rt.ID); borrowed != 0 {
					ip = borrowed
				}
			}
		}
		rtt := 2*cum/fiberKmPerMs + 0.1*float64(i) + r.Float64()*0.4
		tr.Hops = append(tr.Hops, Hop{
			IP:       ip,
			RTTms:    rtt,
			ASN:      isp.ASN,
			City:     n.city,
			Hidden:   hidden,
			Hostname: rt.Hostname,
		})
	}
	// Metro-internal extra hops at the ends (the paper's Madrid/Berlin
	// traceroute shows four hops inside each anchor metro).
	tr.Hops = w.addMetroHops(r, tr.Hops, src, dst)
	return tr, true
}

// addMetroHops prepends/appends intra-metro hops inside the source and
// destination networks.
func (w *World) addMetroHops(r *rand.Rand, hops []Hop, src, dst Anchor) []Hop {
	if len(hops) == 0 {
		return hops
	}
	n := 1 + r.Intn(3)
	var pre []Hop
	for i := 0; i < n; i++ {
		ip := w.anchorMetroIP(src.ID, src.ASN, i)
		if ip == 0 {
			break
		}
		pre = append(pre, Hop{
			IP:    ip,
			RTTms: 0.2 + float64(i)*0.15 + r.Float64()*0.3,
			ASN:   src.ASN,
			City:  src.City,
		})
	}
	base := hops[len(hops)-1].RTTms
	m := 1 + r.Intn(3)
	var post []Hop
	for i := 0; i < m; i++ {
		ip := w.anchorMetroIP(dst.ID, dst.ASN, i)
		if ip == 0 {
			break
		}
		post = append(post, Hop{
			IP:    ip,
			RTTms: base + 0.2 + float64(i)*0.15 + r.Float64()*0.3,
			ASN:   dst.ASN,
			City:  dst.City,
		})
	}
	out := append(pre, hops...)
	return append(out, post...)
}

// waypoint is one step of a constructed reference traceroute.
type waypoint struct {
	asn    int
	city   string
	hidden bool
}

// buildReferenceTraces constructs the two traceroutes the paper analyzes in
// §4.2 and §4.5 as ground truth: Kansas City→Atlanta through Cogent with
// the Tulsa hop hidden by MPLS, and Madrid→Berlin through UltraDNS →
// Limelight → IPB.
func (w *World) buildReferenceTraces(r *rand.Rand) {
	if len(w.Anchors) < 4 {
		return
	}
	kcAtlanta := []waypoint{
		{64199, "Kansas City", false},
		{12186, "Kansas City", false},
		{174, "Kansas City", false},
		{174, "Tulsa", true}, // MPLS interior, hidden from traceroute
		{174, "Dallas", false},
		{174, "Houston", false},
		{174, "Atlanta", false},
		{20473, "Atlanta", false},
	}
	madridBerlin := []waypoint{
		{12008, "Madrid", false},
		{22822, "Madrid", false},
		{22822, "Paris", false},
		{22822, "Frankfurt", false},
		{22822, "Duesseldorf", false},
		{22822, "Berlin", false},
		{20647, "Berlin", false},
	}
	if tr, ok := w.buildForcedTrace(r, 0, 1, kcAtlanta); ok {
		w.Traces = append(w.Traces, tr)
	}
	if tr, ok := w.buildForcedTrace(r, 2, 3, madridBerlin); ok {
		w.Traces = append(w.Traces, tr)
	}
	// Table 3 scenario: traffic transits Cogent through each of its
	// undeclared PoPs at least once, so rDNS can reveal them.
	for _, cityName := range table3Cities {
		cityID := w.CityID(cityName)
		if cityID < 0 {
			continue
		}
		srcA := w.nearestAnchor(cityID, -1)
		dstA := w.nearestAnchor(cityID, srcA)
		if srcA < 0 || dstA < 0 {
			continue
		}
		wps := []waypoint{
			{w.Anchors[srcA].ASN, w.Cities[w.Anchors[srcA].City].Name, false},
			{174, cityName, false},
			{w.Anchors[dstA].ASN, w.Cities[w.Anchors[dstA].City].Name, false},
		}
		if tr, ok := w.buildForcedTrace(r, srcA, dstA, wps); ok {
			w.Traces = append(w.Traces, tr)
		}
	}
}

// ixpMemberIP returns the peering-LAN address of the AS at an exchange in
// the given city, if it is a physically present member there.
func (w *World) ixpMemberIP(city, asn int) (uint32, bool) {
	if w.ixpIPByKey == nil {
		w.ixpIPByKey = make(map[[2]int]uint32)
		for _, ix := range w.IXPs {
			for _, m := range ix.Members {
				if m.Remote {
					continue
				}
				key := [2]int{ix.City, m.ASN}
				if _, dup := w.ixpIPByKey[key]; !dup {
					w.ixpIPByKey[key] = m.IP
				}
			}
		}
	}
	ip, ok := w.ixpIPByKey[[2]int{city, asn}]
	return ip, ok
}

// nearestAnchor returns the anchor closest to the city, excluding one index.
func (w *World) nearestAnchor(cityID, exclude int) int {
	best, bestD := -1, -1.0
	for i, a := range w.Anchors {
		if i == exclude {
			continue
		}
		d := geo.Haversine(w.Cities[cityID].Loc, w.Cities[a.City].Loc)
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func (w *World) buildForcedTrace(r *rand.Rand, srcA, dstA int, wps []waypoint) (Traceroute, bool) {
	tr := Traceroute{SrcAnchor: srcA, DstAnchor: dstA}
	cum := 0.0
	var prevLoc geo.Point
	for i, wp := range wps {
		cityID := w.CityID(wp.city)
		as := w.ASByNumber(wp.asn)
		if cityID < 0 || as == nil || as.ISP < 0 {
			return Traceroute{}, false
		}
		isp := &w.ISPs[as.ISP]
		loc := w.Cities[cityID].Loc
		if i > 0 {
			cum += geo.Haversine(prevLoc, loc) * routeInflation
		}
		prevLoc = loc
		rt := w.ensureRouter(r, as, isp, cityID)
		tr.Hops = append(tr.Hops, Hop{
			IP:       rt.IP,
			RTTms:    2*cum/fiberKmPerMs + 0.1*float64(i) + r.Float64()*0.3,
			ASN:      wp.asn,
			City:     cityID,
			Hidden:   wp.hidden,
			Hostname: rt.Hostname,
		})
	}
	tr.Hops = w.addMetroHops(r, tr.Hops, w.Anchors[srcA], w.Anchors[dstA])
	return tr, true
}

// VisibleHops returns the hops a measurement consumer would see (MPLS
// interior hops removed).
func (t Traceroute) VisibleHops() []Hop {
	out := make([]Hop, 0, len(t.Hops))
	for _, h := range t.Hops {
		if !h.Hidden {
			out = append(out, h)
		}
	}
	return out
}

// FindTrace returns the first traceroute between anchors in the two named
// cities, or nil.
func (w *World) FindTrace(srcCity, dstCity string) *Traceroute {
	sc, dc := w.CityID(srcCity), w.CityID(dstCity)
	for i := range w.Traces {
		tr := &w.Traces[i]
		if w.Anchors[tr.SrcAnchor].City == sc && w.Anchors[tr.DstAnchor].City == dc {
			return tr
		}
	}
	return nil
}
