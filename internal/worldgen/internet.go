package worldgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"igdb/internal/geo"
	"igdb/internal/iptrie"
)

// prefixAllocator hands out non-overlapping IPv4 blocks.
type prefixAllocator struct {
	next19 uint32 // counter of /19 blocks for AS space
	next24 uint32 // counter of /24 blocks for IXP LANs
}

func newPrefixAllocator() *prefixAllocator {
	return &prefixAllocator{
		next19: iptrie.MustParseAddr("1.0.0.0") >> 13,
		next24: iptrie.MustParseAddr("195.0.0.0") >> 8,
	}
}

func (a *prefixAllocator) as19() iptrie.Prefix {
	p := iptrie.Prefix{Addr: a.next19 << 13, Len: 19}
	a.next19++
	return p
}

func (a *prefixAllocator) ixp24() iptrie.Prefix {
	p := iptrie.Prefix{Addr: a.next24 << 8, Len: 24}
	a.next24++
	return p
}

// genInternet creates ASes, ISPs with PoP footprints, the AS-level graph,
// IXPs, submarine cables and anchors.
func (w *World) genInternet(r *rand.Rand) {
	alloc := newPrefixAllocator()
	taken := make(map[int]bool)

	// Pre-compute per-country city lists, population-sorted.
	cityByCountry := make(map[string][]int)
	for _, c := range w.Cities {
		cityByCountry[c.Country] = append(cityByCountry[c.Country], c.ID)
	}
	for _, ids := range cityByCountry {
		sort.Slice(ids, func(i, j int) bool {
			return w.Cities[ids[i]].Population > w.Cities[ids[j]].Population
		})
	}
	countryCodes := make([]string, 0, len(cityByCountry))
	for code := range cityByCountry {
		countryCodes = append(countryCodes, code)
	}
	sort.Strings(countryCodes)

	// 1. Embedded real ASes, each an ISP.
	for _, g := range gazASes {
		taken[g.asn] = true
		as := AS{
			ASN: g.asn,
			NamesBySource: map[string]string{
				"asrank": g.nameASRank, "peeringdb": g.namePDB,
			},
			OrgsBySource: map[string]string{
				"asrank": g.orgASRank, "peeringdb": g.orgPDB, "pch": g.orgPCH,
			},
			Tier:        g.tier,
			HomeCountry: g.homeCountry,
			Real:        true,
			ISP:         len(w.ISPs),
		}
		nPrefix := 1
		if g.tier == 1 {
			nPrefix = 4
		} else if g.tier == 2 {
			nPrefix = 2
		}
		for i := 0; i < nPrefix; i++ {
			as.Prefixes = append(as.Prefixes, alloc.as19())
		}
		isp := ISP{
			ID:      len(w.ISPs),
			ASN:     g.asn,
			Name:    g.nameASRank,
			InAtlas: true,
			MPLS:    g.mpls,
			Domain:  g.domain,
			Scheme:  schemeForISP(r),
			Real:    true,
		}
		w.buildRealFootprint(r, &isp, g, cityByCountry, countryCodes)
		w.asByASN[g.asn] = len(w.ASes)
		w.ASes = append(w.ASes, as)
		w.ISPs = append(w.ISPs, isp)
	}
	w.wireSpecialTopologies()

	// 2. Synthetic infrastructure ISPs.
	nextASN := 100
	newASN := func() int {
		for taken[nextASN] {
			nextASN++
		}
		taken[nextASN] = true
		n := nextASN
		nextASN++
		return n
	}
	nameTaken := map[string]bool{}
	for len(w.ISPs) < w.Cfg.NumISPs {
		asn := newASN()
		tier := 3
		switch {
		case len(w.ISPs) < w.Cfg.NumISPs/50:
			tier = 1
		case len(w.ISPs) < w.Cfg.NumISPs/4:
			tier = 2
		}
		base := synthName(r, nameTaken)
		as := AS{
			ASN: asn,
			NamesBySource: map[string]string{
				"asrank":    strings.ToUpper(base) + "-AS",
				"peeringdb": base + " Networks",
			},
			OrgsBySource: map[string]string{
				"asrank":    base + " Networks LLC",
				"peeringdb": base + " Networks",
				"pch":       base + " Networks, Inc.",
			},
			Tier:        tier,
			HomeCountry: countryCodes[r.Intn(len(countryCodes))],
			ISP:         len(w.ISPs),
		}
		as.Prefixes = append(as.Prefixes, alloc.as19())
		if tier <= 2 {
			as.Prefixes = append(as.Prefixes, alloc.as19())
		}
		domain := ""
		if r.Float64() < 0.85 {
			domain = strings.ToLower(base) + ".net"
		}
		dark := tier == 3 && r.Float64() < 0.12
		if dark {
			// Dark networks never register anywhere declarative.
			delete(as.NamesBySource, "peeringdb")
			delete(as.OrgsBySource, "peeringdb")
			delete(as.OrgsBySource, "pch")
			if domain == "" {
				domain = strings.ToLower(base) + ".net" // discoverable via rDNS
			}
		}
		isp := ISP{
			ID:      len(w.ISPs),
			ASN:     asn,
			Name:    base + " Networks",
			InAtlas: !dark && len(w.ISPs) < w.Cfg.NumAtlasNetworks,
			Dark:    dark,
			MPLS:    r.Float64() < 0.35,
			Domain:  domain,
			Scheme:  schemeForISP(r),
		}
		w.buildSyntheticFootprint(r, &isp, tier, cityByCountry, countryCodes)
		w.asByASN[asn] = len(w.ASes)
		w.ASes = append(w.ASes, as)
		w.ISPs = append(w.ISPs, isp)
	}

	// 3. Stub ASes (no modelled infrastructure) to reach the ASN target.
	// Real organizations often originate several ASNs (the paper counts
	// 81,879 organizations against 102,216 ASes), so a share of stubs reuse
	// an earlier org name.
	var orgPool []string
	for len(w.ASes) < w.Cfg.NumASNs {
		asn := newASN()
		base := synthName(r, nameTaken)
		org := base + " Inc."
		if len(orgPool) > 0 && r.Float64() < 0.35 {
			org = orgPool[r.Intn(len(orgPool))]
		} else {
			orgPool = append(orgPool, org)
		}
		as := AS{
			ASN: asn,
			NamesBySource: map[string]string{
				"asrank": strings.ToUpper(base),
			},
			OrgsBySource: map[string]string{
				"asrank": org,
			},
			Tier:        3,
			HomeCountry: countryCodes[r.Intn(len(countryCodes))],
			ISP:         -1,
			Prefixes:    []iptrie.Prefix{alloc.as19()},
		}
		// A third of stubs also appear in PeeringDB with divergent labels.
		if r.Float64() < 0.33 {
			as.NamesBySource["peeringdb"] = strings.ToLower(base) + "-net"
			as.OrgsBySource["peeringdb"] = org + " (PDB)"
		}
		w.asByASN[asn] = len(w.ASes)
		w.ASes = append(w.ASes, as)
	}

	w.genASLinks(r)
	w.genIXPs(r, alloc, cityByCountry)
	w.genCables(r)
	w.genAnchors(r)
	w.genRouters(r)
}

// buildRealFootprint grows an embedded AS's PoP set to its documented shape.
func (w *World) buildRealFootprint(r *rand.Rand, isp *ISP, g gazAS, cityByCountry map[string][]int, countryCodes []string) {
	add := func(cityID int) {
		for _, p := range isp.POPs {
			if p == cityID {
				return
			}
		}
		isp.POPs = append(isp.POPs, cityID)
	}
	switch g.asn {
	case 7018: // AT&T: exactly the Rocketfuel metros.
		for _, e := range rocketfuelEdges {
			add(w.cityByName[e[0]])
			add(w.cityByName[e[1]])
		}
	case 22773: // Cox: the 10 overlap metros + 20 more US metros.
		w.buildUSCableFootprint(r, isp, 30, cityByCountry)
	case 20115, 7843, 20001, 10796:
		// Charter family footprints are assigned jointly in
		// wireSpecialTopologies once all four exist.
	default:
		home := cityByCountry[g.homeCountry]
		if len(home) > 0 {
			add(home[0])
			if len(home) > 1 {
				add(home[1])
			}
		}
		// One to three metros in each of (countries-1) further countries.
		perm := r.Perm(len(countryCodes))
		added := map[string]bool{g.homeCountry: true}
		for _, ci := range perm {
			if len(added) >= g.countries {
				break
			}
			code := countryCodes[ci]
			if added[code] || len(cityByCountry[code]) == 0 {
				continue
			}
			added[code] = true
			ids := cityByCountry[code]
			n := 1 + r.Intn(min(3, len(ids)))
			for i := 0; i < n; i++ {
				add(ids[i])
			}
		}
	}
	w.linkPOPs(r, isp)
	// Declared presence: most PoPs are published; Cogent's Table 3 cities
	// are deliberately undeclared (they exist only as routers, discoverable
	// through rDNS).
	w.declare(r, isp)
}

// table3Cities are the Cogent metros the paper recovers through rDNS.
var table3Cities = []string{"Dresden", "Syracuse", "Hong Kong", "Orlando", "Katowice", "Jacksonville"}

// buildUSCableFootprint picks count US metros including the ten overlap
// metros (used by the Cox footprint).
func (w *World) buildUSCableFootprint(r *rand.Rand, isp *ISP, count int, cityByCountry map[string][]int) {
	for _, name := range usOverlapMetros {
		isp.POPs = append(isp.POPs, w.cityByName[name])
	}
	us := cityByCountry["US"]
	for _, id := range us {
		if len(isp.POPs) >= count {
			break
		}
		if w.containsPOP(isp, id) || w.isOverlapMetro(id) {
			continue
		}
		// Cox-only metros must avoid the Charter pool chosen later; mark by
		// parity of a deterministic hash to partition the US metro space.
		if (id*2654435761)%97 < 31 {
			isp.POPs = append(isp.POPs, id)
		}
	}
	w.linkPOPs(r, isp)
}

func (w *World) containsPOP(isp *ISP, cityID int) bool {
	for _, p := range isp.POPs {
		if p == cityID {
			return true
		}
	}
	return false
}

func (w *World) isOverlapMetro(cityID int) bool {
	name := w.Cities[cityID].Name
	for _, m := range usOverlapMetros {
		if m == name {
			return true
		}
	}
	return false
}

// buildSyntheticFootprint places a synthetic ISP's PoPs.
func (w *World) buildSyntheticFootprint(r *rand.Rand, isp *ISP, tier int, cityByCountry map[string][]int, countryCodes []string) {
	as := w.ASes // home country is on the AS; the AS isn't appended yet, so derive again
	_ = as
	var nCountries, popsPer int
	switch tier {
	case 1:
		nCountries, popsPer = 12+r.Intn(24), 2
	case 2:
		nCountries, popsPer = 2+r.Intn(5), 3
	default:
		nCountries, popsPer = 1, 2
	}
	home := countryCodes[r.Intn(len(countryCodes))]
	countries := []string{home}
	for len(countries) < nCountries {
		countries = append(countries, countryCodes[r.Intn(len(countryCodes))])
	}
	for _, code := range countries {
		ids := cityByCountry[code]
		if len(ids) == 0 {
			continue
		}
		n := min(popsPer+r.Intn(2), len(ids))
		for i := 0; i < n; i++ {
			id := ids[r.Intn(min(len(ids), 12))] // prefer large metros
			if !w.containsPOP(isp, id) {
				isp.POPs = append(isp.POPs, id)
			}
		}
	}
	if len(isp.POPs) == 0 {
		ids := cityByCountry[home]
		if len(ids) > 0 {
			isp.POPs = append(isp.POPs, ids[0])
		} else {
			isp.POPs = append(isp.POPs, r.Intn(len(w.Cities)))
		}
	}
	w.linkPOPs(r, isp)
	w.declare(r, isp)
}

// linkPOPs builds the ISP's internal PoP adjacency: a chain through its
// PoPs ordered by longitude plus shortcuts, approximating a backbone.
func (w *World) linkPOPs(r *rand.Rand, isp *ISP) {
	if isp.ASN == 7018 {
		// AT&T uses the exact Rocketfuel adjacency.
		for _, e := range rocketfuelEdges {
			isp.Links = append(isp.Links, [2]int{w.cityByName[e[0]], w.cityByName[e[1]]})
		}
		return
	}
	if len(isp.POPs) < 2 {
		return
	}
	ordered := append([]int(nil), isp.POPs...)
	sort.Slice(ordered, func(i, j int) bool {
		return w.Cities[ordered[i]].Loc.Lon < w.Cities[ordered[j]].Loc.Lon
	})
	// Greedy nearest-unvisited chain keeps links short.
	visited := map[int]bool{ordered[0]: true}
	cur := ordered[0]
	for len(visited) < len(ordered) {
		best, bestD := -1, math.Inf(1)
		for _, id := range ordered {
			if visited[id] {
				continue
			}
			if d := geo.Haversine(w.Cities[cur].Loc, w.Cities[id].Loc); d < bestD {
				best, bestD = id, d
			}
		}
		isp.Links = append(isp.Links, [2]int{cur, best})
		visited[best] = true
		cur = best
	}
	// A few redundancy shortcuts.
	extra := len(ordered) / 4
	for i := 0; i < extra; i++ {
		a := ordered[r.Intn(len(ordered))]
		b := ordered[r.Intn(len(ordered))]
		if a != b {
			isp.Links = append(isp.Links, [2]int{a, b})
		}
	}
}

// declare marks which PoPs the ISP publishes to PeeringDB/Atlas. Undeclared
// PoPs exist only as routers (the paper's Table 3 scenario).
func (w *World) declare(r *rand.Rand, isp *ISP) {
	// Declared is modelled as POPs minus a hidden subset; hidden PoPs are
	// recorded via the Hidden map on the ISP by convention of order: we
	// reuse POPs ordering and store the declared count boundary instead.
	// Simpler: store in dedicated field.
	isp.declared = make([]bool, len(isp.POPs))
	if isp.Dark {
		return // dark networks declare nothing anywhere
	}
	for i := range isp.POPs {
		isp.declared[i] = r.Float64() < 0.8
	}
	// Guarantee at least one declared PoP so the AS exists in PeeringDB.
	if len(isp.POPs) > 0 {
		isp.declared[0] = true
	}
	// The footprint-experiment networks (Figure 6's cable ISPs, Figure 8's
	// AT&T) keep complete PeeringDB records, as their real counterparts do.
	switch isp.ASN {
	case 22773, 20115, 7843, 20001, 10796, 7018:
		for i := range isp.declared {
			isp.declared[i] = true
		}
	}
	if isp.ASN == 174 {
		// Cogent: force the Table 3 cities into the footprint, undeclared.
		for _, name := range table3Cities {
			id := w.cityByName[name]
			found := false
			for i, p := range isp.POPs {
				if p == id {
					isp.declared[i] = false
					found = true
					break
				}
			}
			if !found {
				isp.POPs = append(isp.POPs, id)
				isp.declared = append(isp.declared, false)
				// Wire the hidden PoP into the backbone so traffic can pass
				// through it.
				nearest := w.nearestPOP(isp, id)
				if nearest >= 0 {
					isp.Links = append(isp.Links, [2]int{id, nearest})
				}
			}
		}
	}
}

func (w *World) nearestPOP(isp *ISP, cityID int) int {
	best, bestD := -1, math.Inf(1)
	for _, p := range isp.POPs {
		if p == cityID {
			continue
		}
		if d := geo.Haversine(w.Cities[cityID].Loc, w.Cities[p].Loc); d < bestD {
			best, bestD = p, d
		}
	}
	return best
}

// DeclaredPOPs returns the PoPs the ISP publishes to declarative sources.
func (isp *ISP) DeclaredPOPs() []int {
	var out []int
	for i, p := range isp.POPs {
		if i < len(isp.declared) && isp.declared[i] {
			out = append(out, p)
		}
	}
	return out
}

// wireSpecialTopologies hard-codes the footprints and adjacencies the
// paper's named experiments depend on.
func (w *World) wireSpecialTopologies() {
	r := rand.New(rand.NewSource(w.Cfg.Seed + 77))
	// Charter family: 71 distinct US metros, exactly 10 shared with Cox.
	var charterISPs []*ISP
	for i := range w.ISPs {
		switch w.ISPs[i].ASN {
		case 20115, 7843, 20001, 10796:
			charterISPs = append(charterISPs, &w.ISPs[i])
		}
	}
	if len(charterISPs) == 4 {
		var cox *ISP
		for i := range w.ISPs {
			if w.ISPs[i].ASN == 22773 {
				cox = &w.ISPs[i]
			}
		}
		pool := w.charterMetroPool(cox, 71)
		// Distribute: primary ASN gets the overlap metros plus a share.
		for i, cityID := range pool {
			isp := charterISPs[i%4]
			if i < 10 {
				isp = charterISPs[0] // overlap metros on the primary ASN
			}
			if !w.containsPOP(isp, cityID) {
				isp.POPs = append(isp.POPs, cityID)
			}
		}
		for _, isp := range charterISPs {
			isp.Links = nil
			w.linkPOPs(r, isp)
			w.declare(r, isp)
		}
	}

	// Figure 9 transit chain: LLNW's European backbone Madrid—Paris—
	// Frankfurt—Duesseldorf—Berlin; IPB regional in DE/NL/BE; UltraDNS in
	// Madrid.
	chain := []string{"Madrid", "Paris", "Frankfurt", "Duesseldorf", "Berlin"}
	if llnw := w.ispByASN(22822); llnw != nil {
		for _, name := range chain {
			id := w.cityByName[name]
			if !w.containsPOP(llnw, id) {
				llnw.POPs = append(llnw.POPs, id)
				llnw.declared = append(llnw.declared, true)
			}
		}
		for i := 0; i+1 < len(chain); i++ {
			llnw.Links = append(llnw.Links, [2]int{w.cityByName[chain[i]], w.cityByName[chain[i+1]]})
		}
	}
	if ipb := w.ispByASN(20647); ipb != nil {
		for _, name := range []string{"Berlin", "Hamburg", "Amsterdam", "Brussels", "Frankfurt"} {
			id := w.cityByName[name]
			if !w.containsPOP(ipb, id) {
				ipb.POPs = append(ipb.POPs, id)
				ipb.declared = append(ipb.declared, true)
			}
		}
		ipb.Links = nil
		w.linkPOPs(r, ipb)
	}
	if udns := w.ispByASN(12008); udns != nil {
		id := w.cityByName["Madrid"]
		if !w.containsPOP(udns, id) {
			udns.POPs = append(udns.POPs, id)
			udns.declared = append(udns.declared, true)
			w.linkPOPs(r, udns)
		}
	}

	// Figure 7: Cogent's mid-US backbone with the Tulsa/OKC corridors, and
	// the source/destination edge networks.
	if cogent := w.ispByASN(174); cogent != nil {
		usCore := []string{"Kansas City", "Tulsa", "Oklahoma City", "Dallas", "Houston", "Atlanta"}
		for _, name := range usCore {
			id := w.cityByName[name]
			if !w.containsPOP(cogent, id) {
				cogent.POPs = append(cogent.POPs, id)
				cogent.declared = append(cogent.declared, true)
			} else {
				// The corridor PoPs must be publicly declared for the
				// Figure 7 analysis to see Cogent's peering locations.
				for i, p := range cogent.POPs {
					if p == id && i < len(cogent.declared) {
						cogent.declared[i] = true
					}
				}
			}
		}
		adj := [][2]string{
			{"Kansas City", "Tulsa"}, {"Tulsa", "Dallas"},
			{"Kansas City", "Oklahoma City"}, {"Oklahoma City", "Dallas"},
			{"Dallas", "Houston"}, {"Houston", "Atlanta"},
		}
		for _, e := range adj {
			cogent.Links = append(cogent.Links, [2]int{w.cityByName[e[0]], w.cityByName[e[1]]})
		}
	}
	if anchorNet := w.ispByASN(64199); anchorNet != nil {
		id := w.cityByName["Kansas City"]
		if !w.containsPOP(anchorNet, id) {
			anchorNet.POPs = append(anchorNet.POPs, id)
			anchorNet.declared = append(anchorNet.declared, true)
		}
	}
	if wbs := w.ispByASN(12186); wbs != nil {
		for _, name := range []string{"Kansas City", "Denver", "Chicago", "Dallas"} {
			id := w.cityByName[name]
			if !w.containsPOP(wbs, id) {
				wbs.POPs = append(wbs.POPs, id)
				wbs.declared = append(wbs.declared, true)
			}
		}
		wbs.Links = nil
		w.linkPOPs(r, wbs)
	}
	if vultr := w.ispByASN(20473); vultr != nil {
		id := w.cityByName["Atlanta"]
		if !w.containsPOP(vultr, id) {
			vultr.POPs = append(vultr.POPs, id)
			vultr.declared = append(vultr.declared, true)
			w.linkPOPs(r, vultr)
		}
	}
}

// charterMetroPool selects 71 US metros for Charter: the 10 Cox-overlap
// metros plus 61 US metros disjoint from Cox's exclusive footprint.
func (w *World) charterMetroPool(cox *ISP, total int) []int {
	var pool []int
	for _, name := range usOverlapMetros {
		pool = append(pool, w.cityByName[name])
	}
	for _, c := range w.Cities {
		if len(pool) >= total {
			break
		}
		if c.Country != "US" || w.isOverlapMetro(c.ID) {
			continue
		}
		if cox != nil && w.containsPOP(cox, c.ID) {
			continue
		}
		pool = append(pool, c.ID)
	}
	return pool
}

func (w *World) ispByASN(asn int) *ISP {
	for i := range w.ISPs {
		if w.ISPs[i].ASN == asn {
			return &w.ISPs[i]
		}
	}
	return nil
}

// genASLinks builds the AS-level topology: providers for every non-tier-1
// AS plus dense tier-1 interconnection and random peering, targeting the
// paper's ~4.1 links per AS.
func (w *World) genASLinks(r *rand.Rand) {
	var tier1, tier2 []int // ASNs
	for _, as := range w.ASes {
		switch as.Tier {
		case 1:
			tier1 = append(tier1, as.ASN)
		case 2:
			tier2 = append(tier2, as.ASN)
		}
	}
	seen := make(map[[2]int]bool)
	add := func(a, b int, kind string) {
		if a == b {
			return
		}
		k := [2]int{min(a, b), max(a, b)}
		if seen[k] {
			return
		}
		seen[k] = true
		w.ASLinks = append(w.ASLinks, ASLink{A: a, B: b, Kind: kind})
	}
	// Tier-1 mesh.
	for i, a := range tier1 {
		for _, b := range tier1[i+1:] {
			if r.Float64() < 0.8 {
				add(a, b, "p2p")
			}
		}
	}
	// Everyone below tier 1 buys transit.
	for _, as := range w.ASes {
		switch as.Tier {
		case 2:
			n := 1 + r.Intn(3)
			for i := 0; i < n; i++ {
				add(tier1[r.Intn(len(tier1))], as.ASN, "p2c")
			}
		case 3:
			n := 1 + r.Intn(2)
			for i := 0; i < n; i++ {
				var provider int
				if len(tier2) > 0 && r.Float64() < 0.8 {
					provider = tier2[r.Intn(len(tier2))]
				} else {
					provider = tier1[r.Intn(len(tier1))]
				}
				add(provider, as.ASN, "p2c")
			}
		}
	}
	// Hard-wired adjacencies for the named experiments.
	add(12008, 22822, "p2p")
	add(22822, 20647, "p2c")
	add(12186, 64199, "p2c")
	add(174, 12186, "p2p")
	add(174, 20473, "p2p")
	// Random additional peering to reach the target density (~4.1 links/AS).
	target := int(4.1 * float64(len(w.ASes)))
	for len(w.ASLinks) < target {
		a := w.ASes[r.Intn(len(w.ASes))].ASN
		b := w.ASes[r.Intn(len(w.ASes))].ASN
		add(a, b, "p2p")
	}
}

// genIXPs creates exchanges in large metros with members drawn from ISPs
// present in the metro plus remote peers.
func (w *World) genIXPs(r *rand.Rand, alloc *prefixAllocator, cityByCountry map[string][]int) {
	// ISP presence per city.
	present := make(map[int][]int) // city -> ISP ids
	for _, isp := range w.ISPs {
		for _, p := range isp.POPs {
			present[p] = append(present[p], isp.ID)
		}
	}
	// Host cities: largest metros first.
	ordered := make([]int, 0, len(w.Cities))
	for _, c := range w.Cities {
		ordered = append(ordered, c.ID)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return w.Cities[ordered[i]].Population > w.Cities[ordered[j]].Population
	})
	for i := 0; i < w.Cfg.NumIXPs && i < len(ordered); i++ {
		city := ordered[i%len(ordered)]
		ix := IXP{
			ID:     len(w.IXPs),
			Name:   fmt.Sprintf("%s-IX", strings.ToUpper(CityCode(w.Cities[city].Name))),
			City:   city,
			Prefix: alloc.ixp24(),
			Euro:   w.Cities[city].Continent == 2,
		}
		hostIP := ix.Prefix.Addr + 1
		addMember := func(asn, trueCity int, remote bool) {
			ix.Members = append(ix.Members, IXPMember{
				ASN: asn, Remote: remote, TrueCity: trueCity, IP: hostIP,
			})
			hostIP++
		}
		for _, ispID := range present[city] {
			if w.ISPs[ispID].Dark {
				continue
			}
			if r.Float64() < 0.7 {
				addMember(w.ISPs[ispID].ASN, city, false)
			}
		}
		// Remote peers: ISPs without local presence.
		nRemote := int(float64(len(ix.Members)) * w.Cfg.RemotePeerFraction / (1 - w.Cfg.RemotePeerFraction))
		for j := 0; j < nRemote; j++ {
			isp := w.ISPs[r.Intn(len(w.ISPs))]
			if isp.Dark || w.containsPOP(&isp, city) || len(isp.POPs) == 0 {
				continue
			}
			addMember(isp.ASN, isp.POPs[r.Intn(len(isp.POPs))], true)
		}
		w.IXPs = append(w.IXPs, ix)
	}
}

// genCables lays submarine cables between coastal cities on different
// continents, with great-circle paths bulged away from land.
func (w *World) genCables(r *rand.Rand) {
	coastalByCont := make(map[int][]int)
	for _, c := range w.Cities {
		if c.Coastal {
			coastalByCont[c.Continent] = append(coastalByCont[c.Continent], c.ID)
		}
	}
	// Corridor weights approximate real cable density.
	corridors := [][2]int{{0, 2}, {0, 4}, {2, 4}, {2, 3}, {0, 1}, {4, 5}, {1, 3}, {3, 4}, {2, 2}, {0, 0}}
	nameTaken := map[string]bool{}
	for i := 0; i < w.Cfg.NumCables; i++ {
		cor := corridors[r.Intn(len(corridors))]
		as, bs := coastalByCont[cor[0]], coastalByCont[cor[1]]
		if len(as) == 0 || len(bs) == 0 {
			continue
		}
		a := as[r.Intn(len(as))]
		b := bs[r.Intn(len(bs))]
		if a == b {
			continue
		}
		landings := []int{a, b}
		// Some cables pick up an extra landing near an endpoint.
		if r.Float64() < 0.3 && len(bs) > 1 {
			c := bs[r.Intn(len(bs))]
			if c != a && c != b {
				landings = append(landings, c)
			}
		}
		path := cablePath(r, w.Cities[a].Loc, w.Cities[b].Loc)
		nOwners := 1 + r.Intn(4)
		owners := make([]string, 0, nOwners)
		for j := 0; j < nOwners; j++ {
			owner := w.ASes[r.Intn(len(w.ASes))]
			owners = append(owners, owner.OrgsBySource["asrank"])
		}
		w.Cables = append(w.Cables, Cable{
			Name:     synthName(r, nameTaken) + " Cable",
			Landings: landings,
			Path:     path,
			Owners:   owners,
			LengthKm: geo.PathLengthKm(path),
		})
	}
}

func cablePath(r *rand.Rand, a, b geo.Point) []geo.Point {
	d := geo.Haversine(a, b)
	n := 3 + int(d/1500)
	if n > 10 {
		n = 10
	}
	bulge := (r.Float64()*0.12 + 0.04) * d
	side := 1.0
	if r.Float64() < 0.5 {
		side = -1
	}
	path := []geo.Point{a}
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n+1)
		mid := geo.Interpolate(a, b, f)
		brng := geo.InitialBearing(a, b) + 90*side
		off := bulge * math.Sin(f*math.Pi)
		path = append(path, geo.Destination(mid, brng, off))
	}
	return append(path, b)
}

// genAnchors drops measurement anchors in ISP PoP metros.
func (w *World) genAnchors(r *rand.Rand) {
	// Guaranteed anchors for the paper's named traceroutes.
	guaranteed := []struct {
		city string
		asn  int
	}{
		{"Kansas City", 64199},
		{"Atlanta", 20473},
		{"Madrid", 12008},
		{"Berlin", 20647},
	}
	for _, g := range guaranteed {
		cityID := w.CityID(g.city)
		if cityID < 0 {
			continue
		}
		as := w.ASByNumber(g.asn)
		if as == nil {
			continue
		}
		ip := w.allocIP(g.asn)
		if ip == 0 {
			continue
		}
		w.Anchors = append(w.Anchors, Anchor{
			ID:   len(w.Anchors),
			City: cityID,
			ASN:  g.asn,
			IP:   ip,
		})
	}
	for len(w.Anchors) < w.Cfg.NumAnchors {
		isp := w.ISPs[r.Intn(len(w.ISPs))]
		if len(isp.POPs) == 0 {
			continue
		}
		city := isp.POPs[r.Intn(len(isp.POPs))]
		ip := w.allocIP(isp.ASN)
		if ip == 0 {
			continue
		}
		w.Anchors = append(w.Anchors, Anchor{
			ID:   len(w.Anchors),
			City: city,
			ASN:  isp.ASN,
			IP:   ip,
		})
	}
}

// genRouters materializes one router per (AS, PoP) with hostnames according
// to the ISP naming scheme and the configured rDNS coverage.
func (w *World) genRouters(r *rand.Rand) {
	for i := range w.ISPs {
		isp := &w.ISPs[i]
		as := w.ASByNumber(isp.ASN)
		for _, city := range isp.POPs {
			w.ensureRouter(r, as, isp, city)
		}
	}
}

// ensureRouter returns the router for (asn, city), creating it on first use.
func (w *World) ensureRouter(r *rand.Rand, as *AS, isp *ISP, city int) *Router {
	key := [2]int{as.ASN, city}
	if i, ok := w.routerByKey[key]; ok {
		return &w.Routers[i]
	}
	ip := w.allocIP(as.ASN)
	if ip == 0 {
		ip = as.Prefixes[0].Addr + 16 // exhausted block: reuse the first host
	}
	rt := Router{
		ID:   len(w.Routers),
		ASN:  as.ASN,
		City: city,
		IP:   ip,
	}
	// Real embedded ISPs always publish PTR records with geohints (their
	// conventions are documented, e.g. Cogent's in Table 3); synthetic ISPs
	// follow the configured rDNS coverage and geohint fractions.
	if isp != nil && isp.Domain != "" && (isp.Real || r.Float64() < w.Cfg.RDNSCoverage) {
		code := ""
		if isp.Real || r.Float64() < w.Cfg.GeohintFraction {
			code = w.CityCodeOf(city)
			rt.Geohint = true
		}
		rt.Hostname = isp.Scheme.Hostname(r, code, isp.Domain)
	}
	w.routerByKey[key] = len(w.Routers)
	w.Routers = append(w.Routers, rt)
	return &w.Routers[len(w.Routers)-1]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
