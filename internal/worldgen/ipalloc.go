package worldgen

// ipalloc hands out host addresses inside an AS's first /19 so that every
// synthetic interface IP longest-prefix-matches back to its owner (or, for
// deliberately "borrowed" border addresses, to the neighbour that numbered
// the link).

const hostsPer19 = 8192

// allocIP returns the next unused host address inside the AS's first
// prefix, or 0 when the block is exhausted (callers fall back to reuse).
func (w *World) allocIP(asn int) uint32 {
	if w.ipNext == nil {
		w.ipNext = make(map[int]uint32)
	}
	next, ok := w.ipNext[asn]
	if !ok {
		next = 16 // skip network + infrastructure reserved space
	}
	if next >= hostsPer19-2 {
		return 0
	}
	w.ipNext[asn] = next + 1
	as := w.ASByNumber(asn)
	if as == nil || len(as.Prefixes) == 0 {
		return 0
	}
	return as.Prefixes[0].Addr + next
}

// borrowedBorderIP returns (allocating on first use) the address AS prevASN
// assigned to its side's /30 toward the given router — the classic case
// where a traceroute hop responds from the neighbour's address space and
// naive longest-prefix matching mis-attributes the hop.
func (w *World) borrowedBorderIP(prevASN int, routerID int) uint32 {
	if w.borderIP == nil {
		w.borderIP = make(map[[2]int]uint32)
		w.BorderPTR = make(map[uint32]string)
	}
	key := [2]int{prevASN, routerID}
	if ip, ok := w.borderIP[key]; ok {
		return ip
	}
	ip := w.allocIP(prevASN)
	if ip == 0 {
		return 0
	}
	w.borderIP[key] = ip
	if h := w.Routers[routerID].Hostname; h != "" {
		w.BorderPTR[ip] = h
	}
	return ip
}

// anchorMetroIP returns the idx-th intra-metro infrastructure address for
// the anchor's network, allocating a small stable pool per anchor.
func (w *World) anchorMetroIP(anchorID, asn, idx int) uint32 {
	if w.metroIPs == nil {
		w.metroIPs = make(map[int][]uint32)
	}
	pool := w.metroIPs[anchorID]
	for len(pool) <= idx {
		ip := w.allocIP(asn)
		if ip == 0 {
			if len(pool) > 0 {
				ip = pool[0]
			} else {
				return 0
			}
		}
		pool = append(pool, ip)
	}
	w.metroIPs[anchorID] = pool
	return pool[idx]
}
