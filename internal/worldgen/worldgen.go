// Package worldgen synthesizes a deterministic miniature Internet — cities,
// countries, rights-of-way networks, ISPs with PoPs, an AS topology, IXPs,
// submarine cables, RIPE-Atlas-style anchors and traceroute meshes — that
// stands in for the live data sources the iGDB paper scrapes (Internet
// Atlas, PeeringDB, Telegeography, PCH, Hurricane Electric, EuroIX, Rapid7
// rDNS, AS Rank, RIPE Atlas).
//
// The generated world embeds the real entities the paper's evaluation names
// (the Figure 7 Kansas City→Atlanta corridor, the Figure 9 Madrid→Berlin
// traceroute ASes, the Cox/Charter footprints of Figure 6, Table 2's
// country-footprint ranking) so the reproduction reports the same entities,
// and grows a synthetic long tail around them sized to Table 1. Ground
// truth (true router locations, MPLS-hidden hops, remote-peering homes) is
// retained so inference accuracy can be scored, which the paper could not
// do against the live Internet.
package worldgen

import (
	"math/rand"

	"igdb/internal/geo"
	"igdb/internal/iptrie"
)

// Config sizes the synthetic world. The zero value is unusable; use
// DefaultConfig (paper scale) or SmallConfig (test scale).
type Config struct {
	Seed int64

	NumCities    int // urban areas (paper: 7,342 Natural Earth places)
	NumCountries int // paper: 210 countries with physical nodes

	NumASNs          int // total ASNs in the AS graph (paper: 102,216)
	NumISPs          int // infrastructure ASes with PoPs/routers
	NumAtlasNetworks int // subset of ISPs documented in Internet Atlas (~1.5K)
	NumIXPs          int
	NumCables        int // submarine cables (paper: 511)
	NumAnchors       int // RIPE-Atlas-style anchors
	TraceroutePairs  int // sampled anchor pairs for the mesh

	// MPLSHiddenFraction is the probability an MPLS-enabled transit AS hides
	// its interior hops from traceroute.
	MPLSHiddenFraction float64
	// RDNSCoverage is the fraction of router IPs with PTR records (paper
	// observes 64%).
	RDNSCoverage float64
	// GeohintFraction is the fraction of resolving hostnames carrying a
	// parseable location code (paper observes 14%).
	GeohintFraction float64
	// RemotePeerFraction is the fraction of IXP participants peering
	// remotely (virtual presence).
	RemotePeerFraction float64
}

// DefaultConfig is paper-scale: slow to generate but matches Table 1's
// orders of magnitude.
func DefaultConfig() Config {
	return Config{
		Seed:               42,
		NumCities:          7342,
		NumCountries:       210,
		NumASNs:            102216,
		NumISPs:            4000,
		NumAtlasNetworks:   1500,
		NumIXPs:            700,
		NumCables:          511,
		NumAnchors:         700,
		TraceroutePairs:    4000,
		MPLSHiddenFraction: 0.65,
		RDNSCoverage:       0.64,
		GeohintFraction:    0.14,
		RemotePeerFraction: 0.18,
	}
}

// SmallConfig is test-scale: generates in milliseconds while preserving all
// structural properties.
func SmallConfig() Config {
	return Config{
		Seed:               42,
		NumCities:          600,
		NumCountries:       60,
		NumASNs:            3000,
		NumISPs:            300,
		NumAtlasNetworks:   150,
		NumIXPs:            60,
		NumCables:          40,
		NumAnchors:         80,
		TraceroutePairs:    400,
		MPLSHiddenFraction: 0.65,
		RDNSCoverage:       0.64,
		GeohintFraction:    0.30,
		RemotePeerFraction: 0.18,
	}
}

// Continent is a coarse landmass model used to place synthetic cities.
type Continent struct {
	Name     string
	Center   geo.Point
	RadiusKm float64
}

// City is one urban area; the first len(gazetteer) entries are real cities.
type City struct {
	ID         int
	Name       string
	State      string
	Country    string // 2-letter code
	Continent  int
	Loc        geo.Point
	Population int // thousands
	Coastal    bool
	Real       bool
}

// Country is a national territory hosting cities.
type Country struct {
	Code      string
	Name      string
	Continent int
}

// RoadEdge is one right-of-way segment (road or rail) between two cities.
type RoadEdge struct {
	A, B     int // city IDs
	Path     []geo.Point
	LengthKm float64
	Kind     string // "road" or "rail"
}

// AS is one autonomous system. NamesBySource/OrgsBySource carry the
// deliberately inconsistent per-source labels (§3.2's AS2686 example).
type AS struct {
	ASN           int
	NamesBySource map[string]string // "asrank", "peeringdb"
	OrgsBySource  map[string]string // "asrank", "peeringdb", "pch"
	Tier          int               // 1 = global transit, 2 = regional, 3 = stub
	ISP           int               // index into World.ISPs, -1 for non-infrastructure ASes
	Prefixes      []iptrie.Prefix
	HomeCountry   string
	Real          bool
}

// ASLink is one AS-level adjacency.
type ASLink struct {
	A, B int    // ASNs
	Kind string // "p2c" (A provider of B) or "p2p"
}

// ISP is an infrastructure network: an AS that operates PoPs and routers.
type ISP struct {
	ID      int
	ASN     int
	Name    string // network name as it appears in Internet Atlas
	POPs    []int  // city IDs with point of presence
	Links   [][2]int
	InAtlas bool // documented in the Internet Atlas dataset
	// Dark networks publish nothing declarative: no PeeringDB record, no
	// IXP membership, no Atlas entry. They are only discoverable through
	// measurements — the paper's §4.4 "177 ASes with no known geographic
	// locations" scenario.
	Dark   bool
	MPLS   bool   // interior hops hidden from traceroute
	Domain string // rDNS domain; "" = no reverse DNS for its routers
	Scheme HostScheme
	Real   bool
	// declared flags which POPs are published to declarative sources
	// (PeeringDB, Atlas); see DeclaredPOPs.
	declared []bool
}

// IXPMember records one AS present at an exchange. Remote members peer
// virtually; TrueCity is the ground-truth location of their equipment.
type IXPMember struct {
	ASN      int
	Remote   bool
	TrueCity int
	IP       uint32 // address on the IXP peering LAN
}

// IXP is one Internet exchange point.
type IXP struct {
	ID      int
	Name    string
	City    int
	Prefix  iptrie.Prefix
	Members []IXPMember
	// Euro reports whether the IXP appears in the EuroIX feed.
	Euro bool
}

// Cable is one submarine cable with its landing cities and geometry.
type Cable struct {
	Name     string
	Landings []int // city IDs (coastal)
	Path     []geo.Point
	Owners   []string
	LengthKm float64
}

// Anchor is a measurement vantage point (RIPE-Atlas-anchor-like).
type Anchor struct {
	ID   int
	City int
	ASN  int
	IP   uint32
}

// Hop is one traceroute hop.
type Hop struct {
	IP       uint32
	RTTms    float64
	ASN      int // ground truth owner
	City     int // ground truth location
	Hidden   bool
	Hostname string // "" when no PTR record exists
}

// Traceroute is one measured path. Hops with Hidden=true exist physically
// (MPLS interior) and are exposed only as ground truth, never to the
// measurement consumer.
type Traceroute struct {
	SrcAnchor, DstAnchor int
	Hops                 []Hop
}

// Router is a ground-truth network device: one per (ASN, city) pair that
// traffic traverses.
type Router struct {
	ID       int
	ASN      int
	City     int
	IP       uint32
	Hostname string // "" = no PTR record
	Geohint  bool   // hostname carries a parseable location code
}

// World is the full synthetic ground truth.
type World struct {
	Cfg        Config
	Continents []Continent
	Cities     []City
	Countries  []Country
	Roads      []RoadEdge
	ASes       []AS
	ASLinks    []ASLink
	ISPs       []ISP
	IXPs       []IXP
	Cables     []Cable
	Anchors    []Anchor
	Routers    []Router
	Traces     []Traceroute

	// BorderPTR maps borrowed inter-AS link addresses (numbered from the
	// neighbour's space) to the PTR hostname of the router that actually
	// answers — the ambiguity bdrmap has to resolve.
	BorderPTR map[uint32]string

	cityByName  map[string]int
	asByASN     map[int]int
	routerByKey map[[2]int]int // (asn, city) -> router index
	cityCodes   []string
	ipNext      map[int]uint32
	borderIP    map[[2]int]uint32
	metroIPs    map[int][]uint32
	ixpIPByKey  map[[2]int]uint32
}

// BorderOwner returns the ground-truth ASN of a borrowed border address,
// or -1 if the address is not a borrowed one.
func (w *World) BorderOwner(ip uint32) int {
	for key, v := range w.borderIP {
		if v == ip {
			return w.Routers[key[1]].ASN
		}
	}
	return -1
}

// CityID returns the city with the given name, or -1.
func (w *World) CityID(name string) int {
	if id, ok := w.cityByName[name]; ok {
		return id
	}
	return -1
}

// ASByNumber returns the AS with the given ASN, or nil.
func (w *World) ASByNumber(asn int) *AS {
	if i, ok := w.asByASN[asn]; ok {
		return &w.ASes[i]
	}
	return nil
}

// RouterAt returns the ground-truth router for (asn, city), or nil.
func (w *World) RouterAt(asn, city int) *Router {
	if i, ok := w.routerByKey[[2]int{asn, city}]; ok {
		return &w.Routers[i]
	}
	return nil
}

// Generate builds the world deterministically from cfg.Seed.
func Generate(cfg Config) *World {
	w := &World{
		Cfg:         cfg,
		cityByName:  make(map[string]int),
		asByASN:     make(map[int]int),
		routerByKey: make(map[[2]int]int),
	}
	// Separate streams per stage keep downstream stages stable when one
	// stage's draw count changes.
	stage := traceStage("geography")
	w.genGeography(rand.New(rand.NewSource(cfg.Seed)))
	stage = stage.next("internet")
	w.genInternet(rand.New(rand.NewSource(cfg.Seed + 1)))
	stage = stage.next("traceroutes")
	w.genTraceroutes(rand.New(rand.NewSource(cfg.Seed + 2)))
	stage.done()
	return w
}
