package worldgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// HostScheme describes an ISP's router-naming convention: which dot-token
// of the hostname carries the city code and how the surrounding tokens look.
// Real operators do exactly this (the paper's Table 3 shows Cogent's
// be2695.rcr21.drs01.atlas.cogentco.com, where "drs" encodes Dresden), and
// the Hoiho substrate has to *learn* these conventions per domain.
type HostScheme struct {
	// CodeToken is the 0-based index of the dot-separated token (counting
	// from the left, before the domain) that embeds the city code.
	CodeToken int
	// NumTokens is how many leading tokens precede the domain.
	NumTokens int
	// Style selects the decoration of the code token: 0 = code+2 digits
	// ("drs01"), 1 = bare code ("drs"), 2 = code with dash-digit ("drs-1").
	Style int
}

// schemeForISP derives a deterministic naming scheme from the ISP id.
func schemeForISP(r *rand.Rand) HostScheme {
	n := 2 + r.Intn(2) // 2 or 3 leading tokens
	return HostScheme{
		CodeToken: r.Intn(n),
		NumTokens: n,
		Style:     r.Intn(3),
	}
}

var prefixPools = [][]string{
	{"be", "ae", "te", "xe", "hu", "et"},
	{"rcr", "ccr", "cor", "agr", "bbr", "edg"},
}

// Hostname renders a router hostname under the scheme. cityCode is embedded
// at CodeToken; when cityCode is empty a generic numeric token is emitted
// instead (a hostname without geohints).
func (s HostScheme) Hostname(r *rand.Rand, cityCode, domain string) string {
	tokens := make([]string, s.NumTokens)
	for i := range tokens {
		if i == s.CodeToken && cityCode != "" {
			switch s.Style {
			case 0:
				tokens[i] = fmt.Sprintf("%s%02d", cityCode, 1+r.Intn(4))
			case 1:
				tokens[i] = cityCode
			default:
				tokens[i] = fmt.Sprintf("%s-%d", cityCode, 1+r.Intn(4))
			}
			continue
		}
		pool := prefixPools[min(i, len(prefixPools)-1)]
		tokens[i] = fmt.Sprintf("%s%d", pool[r.Intn(len(pool))], 1+r.Intn(4095))
	}
	return strings.Join(tokens, ".") + "." + domain
}

// CityCode derives the 3-letter location code an operator would use for a
// city: first letter plus following consonants ("Dresden" → "drs",
// "Atlanta" → "atl").
func CityCode(name string) string {
	lower := strings.ToLower(name)
	var letters []rune
	for _, c := range lower {
		if c >= 'a' && c <= 'z' {
			letters = append(letters, c)
		}
	}
	if len(letters) == 0 {
		return "xxx"
	}
	code := []rune{letters[0]}
	for _, c := range letters[1:] {
		if len(code) == 3 {
			break
		}
		if !strings.ContainsRune("aeiou", c) {
			code = append(code, c)
		}
	}
	for _, c := range letters[1:] {
		if len(code) == 3 {
			break
		}
		code = append(code, c)
	}
	for len(code) < 3 {
		code = append(code, 'x')
	}
	return string(code)
}
