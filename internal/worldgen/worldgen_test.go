package worldgen

import (
	"math"
	"testing"

	"igdb/internal/geo"
	"igdb/internal/graph"
)

// small builds the SmallConfig world once; tests share it read-only.
var smallWorld = Generate(SmallConfig())

func TestDeterminism(t *testing.T) {
	a := Generate(SmallConfig())
	b := Generate(SmallConfig())
	if len(a.Cities) != len(b.Cities) || len(a.Roads) != len(b.Roads) ||
		len(a.ASes) != len(b.ASes) || len(a.Traces) != len(b.Traces) {
		t.Fatal("same seed must give identical shape")
	}
	for i := range a.Cities {
		if a.Cities[i] != b.Cities[i] {
			t.Fatalf("city %d differs between runs", i)
		}
	}
	for i := range a.Traces {
		if len(a.Traces[i].Hops) != len(b.Traces[i].Hops) {
			t.Fatalf("trace %d differs between runs", i)
		}
	}
	c := SmallConfig()
	c.Seed = 99
	other := Generate(c)
	diff := false
	for i := range other.Cities {
		if i < len(a.Cities) && other.Cities[i] != a.Cities[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should produce different worlds")
	}
}

func TestCityCounts(t *testing.T) {
	w := smallWorld
	if len(w.Cities) != SmallConfig().NumCities {
		t.Errorf("cities = %d, want %d", len(w.Cities), SmallConfig().NumCities)
	}
	if len(w.Countries) < SmallConfig().NumCountries {
		t.Errorf("countries = %d, want >= %d", len(w.Countries), SmallConfig().NumCountries)
	}
	// All gazetteer cities embedded with their real coordinates.
	kc := w.Cities[w.CityID("Kansas City")]
	if math.Abs(kc.Loc.Lat-39.0997) > 1e-6 || kc.Country != "US" || kc.State != "MO" {
		t.Errorf("Kansas City mangled: %+v", kc)
	}
	// Every city has a valid location and an existing country.
	codes := make(map[string]bool)
	for _, c := range w.Countries {
		codes[c.Code] = true
	}
	for _, c := range w.Cities {
		if !c.Loc.Valid() {
			t.Fatalf("city %s has invalid location %v", c.Name, c.Loc)
		}
		if !codes[c.Country] {
			t.Fatalf("city %s references unknown country %q", c.Name, c.Country)
		}
		if c.Population <= 0 {
			t.Fatalf("city %s has no population", c.Name)
		}
	}
}

func TestCityNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range smallWorld.Cities {
		if seen[c.Name] {
			t.Fatalf("duplicate city name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestRoadsConnectContinents(t *testing.T) {
	w := smallWorld
	// Per continent, the road graph must be connected.
	for cont := range w.Continents {
		idx := map[int]int{}
		var ids []int
		for _, c := range w.Cities {
			if c.Continent == cont {
				idx[c.ID] = len(ids)
				ids = append(ids, c.ID)
			}
		}
		if len(ids) < 2 {
			continue
		}
		g := graph.New(len(ids))
		for _, e := range w.Roads {
			a, aok := idx[e.A]
			b, bok := idx[e.B]
			if aok && bok {
				g.AddUndirected(a, b, 1)
			}
		}
		if _, count := g.Components(); count != 1 {
			t.Errorf("continent %s road network has %d components", w.Continents[cont].Name, count)
		}
	}
	// Road paths have sane geometry.
	for _, e := range w.Roads {
		if len(e.Path) < 2 {
			t.Fatal("road with degenerate path")
		}
		direct := geo.Haversine(w.Cities[e.A].Loc, w.Cities[e.B].Loc)
		if e.LengthKm < direct-1 {
			t.Fatalf("road shorter than great circle: %f < %f", e.LengthKm, direct)
		}
		if e.LengthKm > direct*2+10 {
			t.Fatalf("road absurdly long: %f vs direct %f", e.LengthKm, direct)
		}
	}
}

func TestASInvariants(t *testing.T) {
	w := smallWorld
	if len(w.ASes) != SmallConfig().NumASNs {
		t.Errorf("ASes = %d, want %d", len(w.ASes), SmallConfig().NumASNs)
	}
	seen := map[int]bool{}
	for _, as := range w.ASes {
		if seen[as.ASN] {
			t.Fatalf("duplicate ASN %d", as.ASN)
		}
		seen[as.ASN] = true
		if len(as.Prefixes) == 0 {
			t.Fatalf("AS%d has no prefixes", as.ASN)
		}
		if as.NamesBySource["asrank"] == "" {
			t.Fatalf("AS%d missing AS Rank name", as.ASN)
		}
		if as.ISP >= 0 && w.ISPs[as.ISP].ASN != as.ASN {
			t.Fatalf("AS%d ISP back-reference broken", as.ASN)
		}
	}
	// Link density near the paper's 4.1 links per AS.
	ratio := float64(len(w.ASLinks)) / float64(len(w.ASes))
	if ratio < 3.5 || ratio > 5.0 {
		t.Errorf("AS link density %.2f, want ~4.1", ratio)
	}
	// No duplicate links.
	links := map[[2]int]bool{}
	for _, l := range w.ASLinks {
		k := [2]int{min(l.A, l.B), max(l.A, l.B)}
		if links[k] {
			t.Fatalf("duplicate AS link %v", k)
		}
		links[k] = true
	}
}

func TestPrefixesDisjoint(t *testing.T) {
	w := smallWorld
	seen := map[uint32]int{}
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			if p.Len != 19 {
				t.Fatalf("AS prefix %s is not a /19", p)
			}
			if other, dup := seen[p.Addr]; dup {
				t.Fatalf("prefix %s assigned to both AS%d and AS%d", p, other, as.ASN)
			}
			seen[p.Addr] = as.ASN
		}
	}
}

func TestEmbeddedFootprints(t *testing.T) {
	w := smallWorld
	// Cox has exactly 30 metros, Charter family 71, overlap exactly 10.
	cox := map[int]bool{}
	charter := map[int]bool{}
	for _, isp := range w.ISPs {
		switch isp.ASN {
		case 22773:
			for _, p := range isp.POPs {
				cox[p] = true
			}
		case 20115, 7843, 20001, 10796:
			for _, p := range isp.POPs {
				charter[p] = true
			}
		}
	}
	if len(cox) != 30 {
		t.Errorf("Cox metros = %d, want 30", len(cox))
	}
	if len(charter) != 71 {
		t.Errorf("Charter metros = %d, want 71", len(charter))
	}
	overlap := 0
	for p := range cox {
		if charter[p] {
			overlap++
		}
	}
	if overlap != 10 {
		t.Errorf("overlap = %d, want 10", overlap)
	}
}

func TestCogentTable3Cities(t *testing.T) {
	w := smallWorld
	cogent := w.ispByASN(174)
	if cogent == nil {
		t.Fatal("Cogent missing")
	}
	declared := map[int]bool{}
	for _, p := range cogent.DeclaredPOPs() {
		declared[p] = true
	}
	for _, name := range table3Cities {
		id := w.CityID(name)
		if id < 0 {
			t.Fatalf("gazetteer city %q missing", name)
		}
		if !w.containsPOP(cogent, id) {
			t.Errorf("Cogent should have an undeclared PoP in %s", name)
		}
		if declared[id] {
			t.Errorf("%s must NOT be declared (Table 3 scenario)", name)
		}
		// A router exists there with a geohint hostname.
		rt := w.RouterAt(174, id)
		if rt == nil {
			t.Errorf("no Cogent router in %s", name)
		} else if !rt.Geohint || rt.Hostname == "" {
			t.Errorf("Cogent router in %s lacks geohint hostname: %+v", name, rt)
		}
	}
}

func TestAT7018UsesRocketfuelTopology(t *testing.T) {
	w := smallWorld
	att := w.ispByASN(7018)
	if att == nil {
		t.Fatal("AT&T missing")
	}
	if len(att.Links) != len(rocketfuelEdges) {
		t.Errorf("AT&T links = %d, want %d", len(att.Links), len(rocketfuelEdges))
	}
	wantCities := map[string]bool{}
	for _, e := range rocketfuelEdges {
		wantCities[e[0]] = true
		wantCities[e[1]] = true
	}
	if len(att.POPs) != len(wantCities) {
		t.Errorf("AT&T POPs = %d, want %d", len(att.POPs), len(wantCities))
	}
}

func TestIXPs(t *testing.T) {
	w := smallWorld
	if len(w.IXPs) == 0 {
		t.Fatal("no IXPs")
	}
	remote, total := 0, 0
	for _, ix := range w.IXPs {
		if ix.Prefix.Len != 24 {
			t.Fatalf("IXP prefix %s not a /24", ix.Prefix)
		}
		seenIP := map[uint32]bool{}
		for _, m := range ix.Members {
			total++
			if m.Remote {
				remote++
				if m.TrueCity == ix.City {
					t.Error("remote member with TrueCity at the IXP metro")
				}
			}
			if !ix.Prefix.Contains(m.IP) {
				t.Fatalf("member IP %d outside IXP LAN %s", m.IP, ix.Prefix)
			}
			if seenIP[m.IP] {
				t.Fatal("duplicate member IP on one LAN")
			}
			seenIP[m.IP] = true
		}
	}
	if total == 0 || remote == 0 {
		t.Errorf("members=%d remote=%d; want both positive", total, remote)
	}
	frac := float64(remote) / float64(total)
	if frac < 0.05 || frac > 0.4 {
		t.Errorf("remote fraction %.2f outside plausible band", frac)
	}
}

func TestCables(t *testing.T) {
	w := smallWorld
	if len(w.Cables) == 0 {
		t.Fatal("no cables")
	}
	for _, c := range w.Cables {
		if len(c.Landings) < 2 {
			t.Fatalf("cable %s has %d landings", c.Name, len(c.Landings))
		}
		for _, l := range c.Landings {
			if !w.Cities[l].Coastal {
				t.Fatalf("cable %s lands at non-coastal %s", c.Name, w.Cities[l].Name)
			}
		}
		if len(c.Path) < 2 || c.LengthKm <= 0 {
			t.Fatalf("cable %s has degenerate path", c.Name)
		}
	}
}

func TestAnchorsAndTraces(t *testing.T) {
	w := smallWorld
	if len(w.Anchors) != SmallConfig().NumAnchors {
		t.Errorf("anchors = %d", len(w.Anchors))
	}
	for _, a := range w.Anchors {
		as := w.ASByNumber(a.ASN)
		if as == nil {
			t.Fatal("anchor in unknown AS")
		}
		if as.ISP < 0 {
			t.Fatal("anchor AS must be an infrastructure AS")
		}
	}
	if len(w.Traces) < SmallConfig().TraceroutePairs/2 {
		t.Errorf("only %d traces synthesized", len(w.Traces))
	}
	hiddenTotal, visibleTotal := 0, 0
	for _, tr := range w.Traces {
		if len(tr.Hops) < 2 {
			t.Fatal("trace with fewer than 2 hops")
		}
		prev := -1.0
		for _, h := range tr.Hops {
			if h.RTTms < prev-2.0 { // jitter may wobble slightly
				t.Fatalf("RTT strongly decreasing along path: %f after %f", h.RTTms, prev)
			}
			prev = h.RTTms
			if h.Hidden {
				hiddenTotal++
			} else {
				visibleTotal++
			}
			if w.ASByNumber(h.ASN) == nil {
				t.Fatal("hop in unknown AS")
			}
		}
		vis := tr.VisibleHops()
		for _, h := range vis {
			if h.Hidden {
				t.Fatal("VisibleHops leaked a hidden hop")
			}
		}
	}
	if hiddenTotal == 0 {
		t.Error("MPLS should hide some hops")
	}
	if visibleTotal == 0 {
		t.Fatal("no visible hops at all")
	}
}

func TestGuaranteedTraceroutes(t *testing.T) {
	w := smallWorld
	if tr := w.FindTrace("Kansas City", "Atlanta"); tr == nil {
		t.Error("Kansas City → Atlanta trace missing")
	} else {
		// It must transit Cogent (AS174).
		saw174 := false
		for _, h := range tr.Hops {
			if h.ASN == 174 {
				saw174 = true
			}
		}
		if !saw174 {
			t.Error("KC→Atlanta trace does not transit AS174")
		}
	}
	if tr := w.FindTrace("Madrid", "Berlin"); tr == nil {
		t.Error("Madrid → Berlin trace missing")
	} else {
		asns := map[int]bool{}
		for _, h := range tr.Hops {
			asns[h.ASN] = true
		}
		for _, want := range []int{12008, 22822, 20647} {
			if !asns[want] {
				t.Errorf("Madrid→Berlin trace missing AS%d (saw %v)", want, asns)
			}
		}
	}
}

func TestRouterHostnames(t *testing.T) {
	w := smallWorld
	withPTR, withHint := 0, 0
	for _, rt := range w.Routers {
		if rt.Hostname != "" {
			withPTR++
			if rt.Geohint {
				withHint++
			}
		}
	}
	if withPTR == 0 || withHint == 0 {
		t.Fatalf("PTR=%d geohint=%d, want both positive", withPTR, withHint)
	}
	// Cogent's routers follow the documented convention with a city code.
	rt := w.RouterAt(174, w.CityID("Dresden"))
	if rt == nil {
		t.Fatal("no Cogent Dresden router")
	}
	if rt.Hostname == "" || !contains(rt.Hostname, "drs") || !contains(rt.Hostname, "atlas.cogentco.com") {
		t.Errorf("Cogent Dresden hostname = %q", rt.Hostname)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestCityCodesUnique(t *testing.T) {
	w := smallWorld
	seen := map[string]bool{}
	for i := range w.Cities {
		code := w.CityCodeOf(i)
		if len(code) != 3 {
			t.Fatalf("city %d code %q not 3 letters", i, code)
		}
		if seen[code] {
			t.Fatalf("duplicate city code %q", code)
		}
		seen[code] = true
	}
	// Real gazetteer cities keep their natural derivation.
	if got := w.CityCodeOf(w.CityID("Dresden")); got != "drs" {
		t.Errorf("Dresden code = %q, want drs", got)
	}
	if w.CityCodeOf(-1) != "xxx" || w.CityCodeOf(1<<30) != "xxx" {
		t.Error("out-of-range ids should return xxx")
	}
}

func TestCityCode(t *testing.T) {
	cases := []struct{ name, want string }{
		{"Dresden", "drs"},
		{"Atlanta", "atl"},
		{"Oslo", "osl"},
		{"A", "axx"},
		{"", "xxx"},
		{"Aeiou", "aei"},
	}
	for _, c := range cases {
		if got := CityCode(c.name); got != c.want {
			t.Errorf("CityCode(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestHostSchemeEmbedsCode(t *testing.T) {
	w := smallWorld
	for _, isp := range w.ISPs[:10] {
		if isp.Domain == "" {
			continue
		}
		rt := (*Router)(nil)
		for _, p := range isp.POPs {
			if r := w.RouterAt(isp.ASN, p); r != nil && r.Geohint {
				rt = r
				break
			}
		}
		if rt == nil {
			continue
		}
		code := CityCode(w.Cities[rt.City].Name)
		if !contains(rt.Hostname, code) {
			t.Errorf("hostname %q missing city code %q", rt.Hostname, code)
		}
	}
}

func TestDeclaredSubset(t *testing.T) {
	w := smallWorld
	sawDark := false
	for _, isp := range w.ISPs {
		decl := isp.DeclaredPOPs()
		if isp.Dark {
			sawDark = true
			if len(decl) != 0 {
				t.Fatalf("dark ISP %s declares PoPs", isp.Name)
			}
			if isp.InAtlas {
				t.Fatalf("dark ISP %s in Atlas", isp.Name)
			}
			if isp.Domain == "" {
				t.Fatalf("dark ISP %s has no rDNS domain (must stay discoverable)", isp.Name)
			}
			continue
		}
		if len(isp.POPs) > 0 && len(decl) == 0 {
			t.Fatalf("ISP %s (AS%d) declares nothing", isp.Name, isp.ASN)
		}
		set := map[int]bool{}
		for _, p := range isp.POPs {
			set[p] = true
		}
		for _, p := range decl {
			if !set[p] {
				t.Fatalf("ISP %s declares a PoP it does not have", isp.Name)
			}
		}
	}
	if !sawDark {
		t.Error("no dark ISPs generated")
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(SmallConfig())
	}
}
