package worldgen

import (
	"os"
	"time"

	"igdb/internal/obs"
)

// genLogger carries per-stage generation timing through the structured
// logging layer (IGDB_LOG_FORMAT/IGDB_LOG_LEVEL apply); it only speaks
// when IGDB_TRACE_GEN is set.
var genLogger = obs.FromEnv(os.Stderr)

// stageTimer reports per-stage generation timing when IGDB_TRACE_GEN is set;
// useful when sizing paper-scale worlds.
type stageTimer struct {
	name  string
	start time.Time
}

func traceStage(name string) stageTimer {
	return stageTimer{name: name, start: time.Now()}
}

func (s stageTimer) next(name string) stageTimer {
	s.done()
	return traceStage(name)
}

func (s stageTimer) done() {
	if os.Getenv("IGDB_TRACE_GEN") != "" {
		genLogger.Info("worldgen stage", obs.F("stage", s.name), obs.F("elapsed", time.Since(s.start)))
	}
}
