package worldgen

import (
	"fmt"
	"os"
	"time"
)

// stageTimer reports per-stage generation timing when IGDB_TRACE_GEN is set;
// useful when sizing paper-scale worlds.
type stageTimer struct {
	name  string
	start time.Time
}

func traceStage(name string) stageTimer {
	return stageTimer{name: name, start: time.Now()}
}

func (s stageTimer) next(name string) stageTimer {
	s.done()
	return traceStage(name)
}

func (s stageTimer) done() {
	if os.Getenv("IGDB_TRACE_GEN") != "" {
		fmt.Fprintf(os.Stderr, "worldgen: %-12s %v\n", s.name, time.Since(s.start))
	}
}
