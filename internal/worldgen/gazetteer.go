package worldgen

// The gazetteer embeds the real-world entities the paper's experiments name
// directly: the cities of Figures 6-9 and Tables 2-3, and the ASes whose
// footprints the evaluation measures. The synthetic world is grown around
// these anchors so the reproduction can report the same entities the paper
// does, while the long tail of cities/ASes is synthesized.

// gazCity is one embedded real city.
type gazCity struct {
	name    string
	state   string
	country string // ISO-ish 2-letter code
	lat     float64
	lon     float64
	popK    int // population in thousands
	coastal bool
}

var gazetteer = []gazCity{
	// --- United States: Figure 7 corridor (Kansas City → Atlanta) ---
	{"Kansas City", "MO", "US", 39.0997, -94.5786, 508, false},
	{"Tulsa", "OK", "US", 36.1540, -95.9928, 413, false},
	{"Oklahoma City", "OK", "US", 35.4676, -97.5164, 681, false},
	{"Dallas", "TX", "US", 32.7767, -96.7970, 1345, false},
	{"Houston", "TX", "US", 29.7604, -95.3698, 2325, true},
	{"Atlanta", "GA", "US", 33.7490, -84.3880, 498, false},
	{"St. Louis", "MO", "US", 38.6270, -90.1994, 301, false},
	{"Nashville", "TN", "US", 36.1627, -86.7816, 692, false},
	{"Memphis", "TN", "US", 35.1495, -90.0490, 651, false},
	{"Little Rock", "AR", "US", 34.7465, -92.2896, 202, false},
	{"Wichita", "KS", "US", 37.6872, -97.3301, 397, false},
	{"Springfield", "MO", "US", 37.2090, -93.2923, 169, false},
	{"Birmingham", "AL", "US", 33.5186, -86.8104, 209, false},
	{"Chattanooga", "TN", "US", 35.0456, -85.3097, 182, false},
	{"New Orleans", "LA", "US", 29.9511, -90.0715, 390, true},
	{"Jackson", "MS", "US", 32.2988, -90.1848, 160, false},
	{"Shreveport", "LA", "US", 32.5252, -93.7502, 187, false},
	// --- Figure 6: Cox/Charter overlap metros ---
	{"Alexandria", "VA", "US", 38.8048, -77.0469, 159, false},
	{"Chicago", "IL", "US", 41.8781, -87.6298, 2746, false},
	{"Cleveland", "OH", "US", 41.4993, -81.6944, 372, false},
	{"Irvine", "TX", "US", 32.8140, -96.9489, 240, false}, // as named in the paper
	{"Los Angeles", "CA", "US", 34.0522, -118.2437, 3980, true},
	{"New York", "NY", "US", 40.7128, -74.0060, 8399, true},
	{"San Diego", "CA", "US", 32.7157, -117.1611, 1423, true},
	{"San Jose", "CA", "US", 37.3382, -121.8863, 1030, false},
	// --- Figure 8: Rocketfuel AS7018 corridors ---
	{"Sacramento", "CA", "US", 38.5816, -121.4944, 513, false},
	{"Salt Lake City", "UT", "US", 40.7608, -111.8910, 200, false},
	{"Las Vegas", "NV", "US", 36.1699, -115.1398, 651, false},
	{"San Bernardino", "CA", "US", 34.1083, -117.2898, 216, false},
	{"Phoenix", "AZ", "US", 33.4484, -112.0740, 1680, false},
	{"San Francisco", "CA", "US", 37.7749, -122.4194, 883, true},
	{"Denver", "CO", "US", 39.7392, -104.9903, 727, false},
	{"Albuquerque", "NM", "US", 35.0844, -106.6504, 560, false},
	{"El Paso", "TX", "US", 31.7619, -106.4850, 682, false},
	{"Austin", "TX", "US", 30.2672, -97.7431, 964, false},
	{"San Antonio", "TX", "US", 29.4241, -98.4936, 1547, false},
	{"Miami", "FL", "US", 25.7617, -80.1918, 470, true},
	{"Orlando", "FL", "US", 28.5383, -81.3792, 287, false},
	{"Jacksonville", "FL", "US", 30.3322, -81.6557, 911, true},
	{"Tampa", "FL", "US", 27.9506, -82.4572, 399, true},
	{"Tallahassee", "FL", "US", 30.4383, -84.2807, 194, false},
	{"Charlotte", "NC", "US", 35.2271, -80.8431, 885, false},
	{"Raleigh", "NC", "US", 35.7796, -78.6382, 474, false},
	{"Richmond", "VA", "US", 37.5407, -77.4360, 230, false},
	{"Washington", "DC", "US", 38.9072, -77.0369, 705, false},
	{"Philadelphia", "PA", "US", 39.9526, -75.1652, 1584, true},
	{"Baltimore", "MD", "US", 39.2904, -76.6122, 593, true},
	{"Pittsburgh", "PA", "US", 40.4406, -79.9959, 300, false},
	{"Columbus", "OH", "US", 39.9612, -82.9988, 898, false},
	{"Cincinnati", "OH", "US", 39.1031, -84.5120, 303, false},
	{"Indianapolis", "IN", "US", 39.7684, -86.1581, 876, false},
	{"Detroit", "MI", "US", 42.3314, -83.0458, 672, false},
	{"Milwaukee", "WI", "US", 43.0389, -87.9065, 590, false},
	{"Madison", "WI", "US", 43.0731, -89.4012, 259, false},
	{"Minneapolis", "MN", "US", 44.9778, -93.2650, 429, false},
	{"Omaha", "NE", "US", 41.2565, -95.9345, 478, false},
	{"Des Moines", "IA", "US", 41.5868, -93.6250, 214, false},
	{"Boston", "MA", "US", 42.3601, -71.0589, 694, true},
	{"Syracuse", "NY", "US", 43.0481, -76.1474, 142, false},
	{"Buffalo", "NY", "US", 42.8864, -78.8784, 255, false},
	{"Albany", "NY", "US", 42.6526, -73.7562, 97, false},
	{"Hartford", "CT", "US", 41.7658, -72.6734, 122, false},
	{"Newark", "NJ", "US", 40.7357, -74.1724, 282, true},
	{"Seattle", "WA", "US", 47.6062, -122.3321, 744, true},
	{"Portland", "OR", "US", 45.5152, -122.6784, 653, false},
	{"Boise", "ID", "US", 43.6150, -116.2023, 228, false},
	{"Reno", "NV", "US", 39.5296, -119.8138, 250, false},
	{"Fresno", "CA", "US", 36.7378, -119.7871, 531, false},
	{"Bakersfield", "CA", "US", 35.3733, -119.0187, 384, false},
	{"Tucson", "AZ", "US", 32.2226, -110.9747, 548, false},
	{"Louisville", "KY", "US", 38.2527, -85.7585, 617, false},
	{"Knoxville", "TN", "US", 35.9606, -83.9207, 187, false},
	{"Savannah", "GA", "US", 32.0809, -81.0912, 145, true},
	{"Norfolk", "VA", "US", 36.8508, -76.2859, 245, true},
	// --- Europe: Figures 1 and 9 (Madrid → Berlin) ---
	{"Madrid", "", "ES", 40.4168, -3.7038, 3223, false},
	{"Barcelona", "", "ES", 41.3851, 2.1734, 1620, true},
	{"Bilbao", "", "ES", 43.2630, -2.9350, 345, true},
	{"Valencia", "", "ES", 39.4699, -0.3763, 791, true},
	{"Andorra la Vella", "", "AD", 42.5063, 1.5218, 22, false},
	{"Toulouse", "", "FR", 43.6047, 1.4442, 479, false},
	{"Bordeaux", "", "FR", 44.8378, -0.5792, 257, true},
	{"Biarritz", "", "FR", 43.4832, -1.5586, 25, true},
	{"Paris", "", "FR", 48.8566, 2.3522, 2161, false},
	{"Lyon", "", "FR", 45.7640, 4.8357, 516, false},
	{"Marseille", "", "FR", 43.2965, 5.3698, 861, true},
	{"Geneva", "", "CH", 46.2044, 6.1432, 201, false},
	{"Bern", "", "CH", 46.9480, 7.4474, 133, false},
	{"Zurich", "", "CH", 47.3769, 8.5417, 415, false},
	{"Torino", "", "IT", 45.0703, 7.6869, 870, false},
	{"Milano", "", "IT", 45.4642, 9.1900, 1372, false},
	{"Rome", "", "IT", 41.9028, 12.4964, 2873, false},
	{"Frankfurt", "", "DE", 50.1109, 8.6821, 753, false},
	{"Offenbach", "", "DE", 50.0956, 8.7761, 130, false},
	{"Munich", "", "DE", 48.1351, 11.5820, 1472, false},
	{"Freiburg", "", "DE", 47.9990, 7.8421, 230, false},
	{"Berlin", "", "DE", 52.5200, 13.4050, 3645, false},
	{"Hamburg", "", "DE", 53.5511, 9.9937, 1841, true},
	{"Dresden", "", "DE", 51.0504, 13.7373, 554, false},
	{"Duesseldorf", "", "DE", 51.2277, 6.7735, 619, false},
	{"Cologne", "", "DE", 50.9375, 6.9603, 1086, false},
	{"Stuttgart", "", "DE", 48.7758, 9.1829, 634, false},
	{"Amsterdam", "", "NL", 52.3676, 4.9041, 872, true},
	{"Rotterdam", "", "NL", 51.9244, 4.4777, 651, true},
	{"Brussels", "", "BE", 50.8503, 4.3517, 1209, false},
	{"Antwerp", "", "BE", 51.2194, 4.4025, 529, true},
	{"London", "", "GB", 51.5074, -0.1278, 8982, true},
	{"Manchester", "", "GB", 53.4808, -2.2426, 553, false},
	{"Dublin", "", "IE", 53.3498, -6.2603, 555, true},
	{"Vienna", "", "AT", 48.2082, 16.3738, 1897, false},
	{"Prague", "", "CZ", 50.0755, 14.4378, 1309, false},
	{"Warsaw", "", "PL", 52.2297, 21.0122, 1790, false},
	{"Katowice", "", "PL", 50.2649, 19.0238, 294, false},
	{"Krakow", "", "PL", 50.0647, 19.9450, 779, false},
	{"Copenhagen", "", "DK", 55.6761, 12.5683, 794, true},
	{"Stockholm", "", "SE", 59.3293, 18.0686, 975, true},
	{"Oslo", "", "NO", 59.9139, 10.7522, 693, true},
	{"Helsinki", "", "FI", 60.1699, 24.9384, 656, true},
	{"Lisbon", "", "PT", 38.7223, -9.1393, 505, true},
	{"Porto", "", "PT", 41.1579, -8.6291, 237, true},
	{"Athens", "", "GR", 37.9838, 23.7275, 664, true},
	{"Budapest", "", "HU", 47.4979, 19.0402, 1752, false},
	{"Bucharest", "", "RO", 44.4268, 26.1025, 1883, false},
	{"Sofia", "", "BG", 42.6977, 23.3219, 1236, false},
	{"Zagreb", "", "HR", 45.8150, 15.9819, 806, false},
	{"Kyiv", "", "UA", 50.4501, 30.5234, 2884, false},
	{"Moscow", "", "RU", 55.7558, 37.6173, 11920, false},
	// --- Asia / Oceania / Americas / Africa ---
	{"Hong Kong", "", "HK", 22.3193, 114.1694, 7482, true},
	{"Singapore", "", "SG", 1.3521, 103.8198, 5639, true},
	{"Tokyo", "", "JP", 35.6762, 139.6503, 13960, true},
	{"Osaka", "", "JP", 34.6937, 135.5023, 2691, true},
	{"Seoul", "", "KR", 37.5665, 126.9780, 9776, false},
	{"Taipei", "", "TW", 25.0330, 121.5654, 2646, true},
	{"Shanghai", "", "CN", 31.2304, 121.4737, 24280, true},
	{"Beijing", "", "CN", 39.9042, 116.4074, 21540, false},
	{"Mumbai", "", "IN", 19.0760, 72.8777, 12440, true},
	{"Delhi", "", "IN", 28.7041, 77.1025, 16790, false},
	{"Chennai", "", "IN", 13.0827, 80.2707, 7088, true},
	{"Bangkok", "", "TH", 13.7563, 100.5018, 8281, false},
	{"Jakarta", "", "ID", -6.2088, 106.8456, 10560, true},
	{"Kuala Lumpur", "", "MY", 3.1390, 101.6869, 1808, false},
	{"Manila", "", "PH", 14.5995, 120.9842, 1780, true},
	{"Dubai", "", "AE", 25.2048, 55.2708, 3331, true},
	{"Tel Aviv", "", "IL", 32.0853, 34.7818, 452, true},
	{"Istanbul", "", "TR", 41.0082, 28.9784, 15460, true},
	{"Sydney", "", "AU", -33.8688, 151.2093, 5312, true},
	{"Melbourne", "", "AU", -37.8136, 144.9631, 5078, true},
	{"Perth", "", "AU", -31.9505, 115.8605, 2059, true},
	{"Auckland", "", "NZ", -36.8509, 174.7645, 1657, true},
	{"Sao Paulo", "", "BR", -23.5505, -46.6333, 12330, false},
	{"Rio de Janeiro", "", "BR", -22.9068, -43.1729, 6748, true},
	{"Fortaleza", "", "BR", -3.7319, -38.5267, 2669, true},
	{"Buenos Aires", "", "AR", -34.6037, -58.3816, 3075, true},
	{"Santiago", "", "CL", -33.4489, -70.6693, 6160, false},
	{"Lima", "", "PE", -12.0464, -77.0428, 9752, true},
	{"Bogota", "", "CO", 4.7110, -74.0721, 7413, false},
	{"Mexico City", "", "MX", 19.4326, -99.1332, 9209, false},
	{"Panama City", "", "PA", 8.9824, -79.5199, 880, true},
	{"Toronto", "ON", "CA", 43.6532, -79.3832, 2930, false},
	{"Montreal", "QC", "CA", 45.5017, -73.5673, 1780, false},
	{"Vancouver", "BC", "CA", 49.2827, -123.1207, 675, true},
	{"Calgary", "AB", "CA", 51.0447, -114.0719, 1239, false},
	{"Johannesburg", "", "ZA", -26.2041, 28.0473, 5635, false},
	{"Cape Town", "", "ZA", -33.9249, 18.4241, 4618, true},
	{"Nairobi", "", "KE", -1.2921, 36.8219, 4397, false},
	{"Lagos", "", "NG", 6.5244, 3.3792, 14860, true},
	{"Cairo", "", "EG", 30.0444, 31.2357, 9540, false},
	{"Casablanca", "", "MA", 33.5731, -7.5898, 3359, true},
	{"Marseilles-Landing", "", "FR", 43.27, 5.35, 10, true}, // cable landing aux
}

// gazAS is one embedded real autonomous system with the footprint shape the
// paper reports for it.
type gazAS struct {
	asn         int
	nameASRank  string // from WHOIS via AS Rank
	namePDB     string // PeeringDB variant (often different; see AS2686)
	orgASRank   string
	orgPDB      string
	orgPCH      string
	countries   int    // target country footprint (Table 2)
	usMetros    int    // target US metro footprint (Figure 6), 0 = derive
	homeCountry string // weighting for footprint growth
	isp         bool   // modelled as an ISP with PoP infrastructure
	mpls        bool
	domain      string // rDNS domain; "" = no reverse DNS
	tier        int
}

var gazASes = []gazAS{
	// Table 2: ASes with physical presence in the most countries.
	{13335, "CLOUDFLARENET", "Cloudflare", "Cloudflare, Inc.", "Cloudflare, Inc.", "Cloudflare", 52, 0, "US", true, false, "cloudflare.com", 1},
	{6939, "HURRICANE", "Hurricane Electric", "Hurricane Electric LLC", "Hurricane Electric", "Hurricane Electric LLC", 50, 0, "US", true, false, "he.net", 1},
	{8075, "MICROSOFT-CORP", "Microsoft", "Microsoft Corporation", "Microsoft Corp", "Microsoft Corporation", 50, 0, "US", true, false, "msn.net", 1},
	{174, "COGENT-174", "Cogent", "Cogent Communications", "Cogent Communications, Inc.", "Cogent", 45, 0, "US", true, true, "atlas.cogentco.com", 1},
	{16509, "AMAZON-02", "Amazon Web Services", "Amazon.com, Inc.", "Amazon", "Amazon.com", 44, 0, "US", true, false, "amazonaws.com", 1},
	{42473, "AS-ANEXIA", "ANEXIA", "ANEXIA Internetdienstleistungs GmbH", "ANEXIA", "ANEXIA GmbH", 44, 0, "AT", true, false, "anexia-it.net", 2},
	{32934, "FACEBOOK", "Meta", "Facebook, Inc.", "Meta Platforms", "Facebook Inc", 42, 0, "US", true, false, "facebook.com", 1},
	{32261, "SUBSPACE", "Subspace", "SUBSPACE", "Subspace Inc", "SUBSPACE", 41, 0, "US", true, false, "subspace.net", 2},
	{20940, "AKAMAI-ASN1", "Akamai", "Akamai International B.V.", "Akamai Technologies", "Akamai", 38, 0, "US", true, false, "akamaitechnologies.com", 1},
	{15169, "GOOGLE", "Google LLC", "Google LLC", "Google", "Google Inc.", 35, 0, "US", true, false, "1e100.net", 1},
	{57463, "NetIX", "NetIX Communications", "NetIX Communications JSC", "NetIX", "NetIX Communications Ltd.", 35, 0, "BG", true, false, "netix.net", 2},
	// Figure 6: Cox and Charter.
	{22773, "ASN-CXA-ALL-CCI-22773-RDC", "Cox Communications", "Cox Communications Inc.", "Cox Communications", "Cox Communications Inc", 1, 30, "US", true, false, "coxfiber.net", 2},
	{20115, "CHARTER-20115", "Charter Communications", "Charter Communications", "Charter Communications Inc", "Charter", 1, 40, "US", true, false, "chtrptr.net", 2},
	{7843, "TWCABLE-BACKBONE", "Charter Communications (TWC)", "Charter Communications Inc", "Charter Communications", "Time Warner Cable", 1, 17, "US", true, false, "twcable.com", 2},
	{20001, "TWC-20001-PACWEST", "Charter (Pacwest)", "Charter Communications Inc", "Charter Communications", "Time Warner Cable Pacific West", 1, 9, "US", true, false, "twcable.com", 3},
	{10796, "TWC-10796-MIDWEST", "Charter (Midwest)", "Charter Communications Inc", "Charter Communications", "Time Warner Cable Midwest", 1, 15, "US", true, false, "twcable.com", 3},
	// Figure 8: AT&T (Rocketfuel AS7018).
	{7018, "ATT-INTERNET4", "AT&T", "AT&T Services, Inc.", "AT&T", "AT&T Services Inc", 8, 0, "US", true, true, "ip.att.net", 1},
	// §3.2's naming-inconsistency example.
	{2686, "ATGS-MMD-AS", "as-ignemea", "AT&T Global Network Services, LLC", "AT&T EMEA - AS2686", "AT&T Global Network Services Nederland BV", 12, 0, "NL", true, false, "attgns.net", 2},
	// Figure 9: Madrid→Berlin traceroute ASes.
	{20647, "IPB-AS", "IPB GmbH", "IPB Internet Provider in Berlin GmbH", "IPB", "IPB GmbH Berlin", 3, 0, "DE", true, false, "ipb.de", 3},
	{22822, "LLNW", "Limelight Networks", "Limelight Networks, Inc.", "LLNW", "Limelight Networks Inc", 29, 0, "US", true, true, "llnw.net", 1},
	{12008, "ULTRADNS", "UltraDNS", "NeuStar, Inc.", "ULTRADNS", "UltraDNS Corp", 18, 0, "US", true, false, "ultradns.net", 2},
	// Figure 7's transit ASes.
	{12186, "WBSCONNECT", "WBS Connect", "WBS Connect LLC", "WBS Connect", "WBS Connect L.L.C.", 4, 0, "US", true, true, "wbsconnect.net", 2},
	{20473, "AS-VULTR", "Vultr", "The Constant Company, LLC", "Vultr Holdings", "Choopa LLC", 25, 0, "US", true, false, "choopa.net", 2},
	{64199, "ANCHOR-NET", "AnchorNet", "Anchor Networks LLC", "AnchorNet", "Anchor Networks", 2, 0, "US", true, false, "anchor-net.example", 3},
	// Additional large transits so the synthetic AS graph has a realistic core.
	{3356, "LEVEL3", "Lumen", "Level 3 Parent, LLC", "Lumen Technologies", "Level 3 Communications", 34, 0, "US", true, true, "level3.net", 1},
	{1299, "TWELVE99", "Arelion", "Arelion Sweden AB", "Arelion", "Telia Carrier", 33, 0, "SE", true, false, "arelion.net", 1},
	{2914, "NTT-LTD-2914", "NTT", "NTT America, Inc.", "NTT Global IP Network", "NTT Communications", 30, 0, "JP", true, true, "ntt.net", 1},
	{3257, "GTT-BACKBONE", "GTT", "GTT Communications Inc.", "GTT", "GTT Communications", 28, 0, "US", true, false, "gtt.net", 1},
	{6453, "AS6453", "TATA (AS6453)", "TATA COMMUNICATIONS (AMERICA) INC", "Tata Communications", "Tata Communications America", 27, 0, "US", true, true, "tata.net", 1},
	{6461, "ZAYO-6461", "Zayo", "Zayo Bandwidth", "Zayo Group", "Zayo Bandwidth Inc", 20, 0, "US", true, false, "zayo.com", 1},
	{3491, "BTN-ASN", "PCCW Global", "PCCW Global, Inc.", "PCCW Global", "Beyond The Network America", 24, 0, "HK", true, false, "pccwbtn.net", 1},
	{7922, "COMCAST-7922", "Comcast", "Comcast Cable Communications, LLC", "Comcast", "Comcast Cable", 2, 25, "US", true, false, "comcast.net", 2},
	{701, "UUNET", "Verizon", "Verizon Business/UUnet", "Verizon", "MCI Communications/Verizon", 15, 0, "US", true, true, "verizon-gni.net", 1},
}

// usOverlapMetros are the ten metros the paper reports as shared between Cox
// and Charter (Figure 6).
var usOverlapMetros = []string{
	"Alexandria", "Atlanta", "Chicago", "Cleveland", "Dallas",
	"Irvine", "Los Angeles", "New York", "San Diego", "San Jose",
}

// rocketfuelEdges are the metro-level AS7018 adjacencies recreated from the
// Rocketfuel AT&T map (Figure 8 left): deliberately more diverse than the
// physical corridors, so the iGDB representation can show the collapse onto
// shared rights-of-way.
var rocketfuelEdges = [][2]string{
	{"San Francisco", "Sacramento"}, {"San Francisco", "Los Angeles"},
	{"San Francisco", "Salt Lake City"}, {"San Francisco", "Denver"},
	{"San Francisco", "Chicago"}, {"Sacramento", "Salt Lake City"},
	{"San Jose", "Sacramento"}, {"San Jose", "Los Angeles"},
	{"Los Angeles", "Las Vegas"}, {"Los Angeles", "Phoenix"},
	{"Los Angeles", "Dallas"}, {"San Diego", "Phoenix"},
	{"San Bernardino", "Phoenix"}, {"Las Vegas", "Salt Lake City"},
	{"Phoenix", "El Paso"}, {"Phoenix", "Dallas"},
	{"Salt Lake City", "Denver"}, {"Denver", "Kansas City"},
	{"Denver", "Chicago"}, {"Kansas City", "Chicago"},
	{"Kansas City", "St. Louis"}, {"Dallas", "Houston"},
	{"Dallas", "Atlanta"}, {"Dallas", "Kansas City"},
	{"Houston", "New Orleans"}, {"Houston", "Atlanta"},
	{"St. Louis", "Chicago"}, {"St. Louis", "Nashville"},
	{"Chicago", "Detroit"}, {"Chicago", "Cleveland"},
	{"Chicago", "New York"}, {"Cleveland", "New York"},
	{"Detroit", "New York"}, {"Nashville", "Atlanta"},
	{"Atlanta", "Charlotte"}, {"Atlanta", "Orlando"},
	{"Atlanta", "Miami"}, {"Atlanta", "Jacksonville"},
	{"Atlanta", "Washington"}, {"Orlando", "Miami"},
	{"Orlando", "Tampa"}, {"Jacksonville", "Orlando"},
	{"Jacksonville", "Miami"}, {"Tampa", "Miami"},
	{"Charlotte", "Washington"}, {"Washington", "Philadelphia"},
	{"Philadelphia", "New York"}, {"New York", "Boston"},
}

// realCountryNames maps embedded country codes to display names.
var realCountryNames = map[string]string{
	"US": "United States", "CA": "Canada", "MX": "Mexico", "PA": "Panama",
	"BR": "Brazil", "AR": "Argentina", "CL": "Chile", "PE": "Peru", "CO": "Colombia",
	"ES": "Spain", "FR": "France", "DE": "Germany", "IT": "Italy", "CH": "Switzerland",
	"AD": "Andorra", "NL": "Netherlands", "BE": "Belgium", "GB": "United Kingdom",
	"IE": "Ireland", "AT": "Austria", "CZ": "Czechia", "PL": "Poland", "DK": "Denmark",
	"SE": "Sweden", "NO": "Norway", "FI": "Finland", "PT": "Portugal", "GR": "Greece",
	"HU": "Hungary", "RO": "Romania", "BG": "Bulgaria", "HR": "Croatia", "UA": "Ukraine",
	"RU": "Russia", "HK": "Hong Kong", "SG": "Singapore", "JP": "Japan", "KR": "South Korea",
	"TW": "Taiwan", "CN": "China", "IN": "India", "TH": "Thailand", "ID": "Indonesia",
	"MY": "Malaysia", "PH": "Philippines", "AE": "United Arab Emirates", "IL": "Israel",
	"TR": "Turkey", "AU": "Australia", "NZ": "New Zealand", "ZA": "South Africa",
	"KE": "Kenya", "NG": "Nigeria", "EG": "Egypt", "MA": "Morocco",
}
