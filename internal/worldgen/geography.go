package worldgen

import (
	"math"
	"math/rand"
	"sort"

	"igdb/internal/geo"
	"igdb/internal/graph"
	"igdb/internal/spatial"
)

// continents is the coarse landmass model. Synthetic cities are scattered
// around population clusters inside these discs.
var continents = []Continent{
	{Name: "North America", Center: geo.Point{Lon: -98, Lat: 42}, RadiusKm: 3300},
	{Name: "South America", Center: geo.Point{Lon: -60, Lat: -16}, RadiusKm: 2800},
	{Name: "Europe", Center: geo.Point{Lon: 14, Lat: 49}, RadiusKm: 2300},
	{Name: "Africa", Center: geo.Point{Lon: 19, Lat: 4}, RadiusKm: 3400},
	{Name: "Asia", Center: geo.Point{Lon: 95, Lat: 34}, RadiusKm: 4400},
	{Name: "Oceania", Center: geo.Point{Lon: 140, Lat: -27}, RadiusKm: 2600},
}

// landBridges are city pairs whose continents connect over land.
var landBridges = [][2]string{
	{"Istanbul", "Tel Aviv"},
	{"Cairo", "Tel Aviv"},
	{"Panama City", "Bogota"},
	{"Mexico City", "Panama City"},
	{"Moscow", "Beijing"},
	{"Casablanca", "Cairo"},
}

func nearestContinent(p geo.Point) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range continents {
		if d := geo.Haversine(p, c.Center); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

var nameSyllables = []string{
	"al", "an", "ar", "bel", "bor", "cal", "dan", "dor", "el", "far", "gar",
	"hol", "is", "jor", "kal", "lan", "mar", "nor", "or", "pel", "quin",
	"ras", "sol", "tar", "ul", "ver", "wes", "yor", "zan", "mor", "ken",
	"lin", "sta", "tri", "val",
}

func synthName(r *rand.Rand, taken map[string]bool) string {
	// 2-4 syllables gives ~1.5M distinct names, far above any Config's
	// demand; retries resolve residual collisions quickly.
	for attempt := 0; ; attempt++ {
		n := 2 + r.Intn(3)
		if attempt > 4 {
			n = 4
		}
		name := ""
		for i := 0; i < n; i++ {
			name += nameSyllables[r.Intn(len(nameSyllables))]
		}
		name = string(name[0]-'a'+'A') + name[1:]
		if !taken[name] {
			taken[name] = true
			return name
		}
	}
}

// genGeography creates cities, countries and right-of-way networks.
func (w *World) genGeography(r *rand.Rand) {
	w.Continents = continents
	taken := make(map[string]bool)

	// 1. Embed the real gazetteer cities.
	for _, g := range gazetteer {
		c := City{
			ID:         len(w.Cities),
			Name:       g.name,
			State:      g.state,
			Country:    g.country,
			Loc:        geo.Point{Lon: g.lon, Lat: g.lat},
			Population: g.popK,
			Coastal:    g.coastal,
			Real:       true,
		}
		c.Continent = nearestContinent(c.Loc)
		w.cityByName[c.Name] = c.ID
		taken[c.Name] = true
		w.Cities = append(w.Cities, c)
	}

	// 2. Country list: real codes first, then synthetic to reach the target.
	realCodes := make([]string, 0, len(realCountryNames))
	for code := range realCountryNames {
		realCodes = append(realCodes, code)
	}
	sort.Strings(realCodes)
	countryCont := make(map[string]int)
	countryCenter := make(map[string]geo.Point)
	countryN := make(map[string]int)
	for _, c := range w.Cities {
		countryN[c.Country]++
		cc := countryCenter[c.Country]
		cc.Lon += c.Loc.Lon
		cc.Lat += c.Loc.Lat
		countryCenter[c.Country] = cc
	}
	for _, code := range realCodes {
		n := countryN[code]
		if n == 0 {
			continue
		}
		cc := countryCenter[code]
		countryCenter[code] = geo.Point{Lon: cc.Lon / float64(n), Lat: cc.Lat / float64(n)}
		countryCont[code] = nearestContinent(countryCenter[code])
		w.Countries = append(w.Countries, Country{Code: code, Name: realCountryNames[code], Continent: countryCont[code]})
	}
	codeTaken := make(map[string]bool)
	for _, c := range w.Countries {
		codeTaken[c.Code] = true
	}
	for len(w.Countries) < w.Cfg.NumCountries {
		// Synthetic country: pick a continent weighted by size, place its
		// center inside the disc.
		cont := r.Intn(len(continents))
		code := ""
		for {
			code = string(rune('A'+r.Intn(26))) + string(rune('A'+r.Intn(26)))
			if !codeTaken[code] {
				codeTaken[code] = true
				break
			}
		}
		center := randomInContinent(r, cont, 0.9)
		name := synthName(r, taken) + "ia"
		w.Countries = append(w.Countries, Country{Code: code, Name: name, Continent: cont})
		countryCenter[code] = center
		countryCont[code] = cont
	}

	// 3. Synthetic cities: scattered around population clusters, each
	// assigned to the nearest country center on its continent.
	type seed struct {
		code string
		p    geo.Point
		cont int
	}
	var seeds []seed
	for code, p := range countryCenter {
		seeds = append(seeds, seed{code: code, p: p, cont: countryCont[code]})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].code < seeds[j].code })

	contWeights := []float64{0.22, 0.10, 0.24, 0.12, 0.24, 0.08}
	for len(w.Cities) < w.Cfg.NumCities {
		cont := weightedContinent(r, contWeights)
		p := randomInContinent(r, cont, 1.0)
		// Nearest country seed on the same continent.
		bestCode, bestD := "", math.Inf(1)
		for _, s := range seeds {
			if s.cont != cont {
				continue
			}
			if d := geo.Haversine(p, s.p); d < bestD {
				bestCode, bestD = s.code, d
			}
		}
		if bestCode == "" {
			continue
		}
		c := City{
			ID:         len(w.Cities),
			Name:       synthName(r, taken),
			Country:    bestCode,
			Continent:  cont,
			Loc:        p,
			Population: 15 + int(math.Exp(r.Float64()*6.5)), // 15k .. ~700k, heavy tail
			Coastal:    r.Float64() < 0.22,
		}
		// US synthetic cities inherit the state of the nearest real US city
		// so state-level grouping stays meaningful.
		if c.Country == "US" {
			c.State = w.nearestRealState(p, "US")
		}
		w.cityByName[c.Name] = c.ID
		w.Cities = append(w.Cities, c)
	}

	w.assignCityCodes()
	w.genRoads(r)
}

// assignCityCodes gives every city a unique 3-letter code, the way
// operators coordinate on unambiguous location codes (IATA-style). The
// natural derivation wins when free; collisions mutate the last letters
// deterministically. Earlier cities (the real gazetteer) keep their natural
// codes.
func (w *World) assignCityCodes() {
	taken := make(map[string]bool, len(w.Cities))
	w.cityCodes = make([]string, len(w.Cities))
	for i, c := range w.Cities {
		code := CityCode(c.Name)
		for attempt := 0; taken[code]; attempt++ {
			b := []byte(code)
			b[2] = 'a' + byte((int(b[2]-'a')+1)%26)
			if attempt > 0 && attempt%26 == 0 {
				b[1] = 'a' + byte((int(b[1]-'a')+1)%26)
			}
			if attempt > 26*26 {
				b[0] = 'a' + byte((int(b[0]-'a')+1)%26)
			}
			code = string(b)
		}
		taken[code] = true
		w.cityCodes[i] = code
	}
}

// CityCodeOf returns the unique location code assigned to a city.
func (w *World) CityCodeOf(id int) string {
	if id < 0 || id >= len(w.cityCodes) {
		return "xxx"
	}
	return w.cityCodes[id]
}

func (w *World) nearestRealState(p geo.Point, country string) string {
	best, bestD := "", math.Inf(1)
	for _, c := range w.Cities {
		if !c.Real || c.Country != country || c.State == "" {
			continue
		}
		if d := geo.Haversine(p, c.Loc); d < bestD {
			best, bestD = c.State, d
		}
	}
	return best
}

func weightedContinent(r *rand.Rand, weights []float64) int {
	x := r.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// randomInContinent samples a point inside the continent disc (scaled by
// frac), biased toward the center where populations cluster.
func randomInContinent(r *rand.Rand, cont int, frac float64) geo.Point {
	c := continents[cont]
	dist := c.RadiusKm * frac * math.Sqrt(r.Float64()) * (0.55 + 0.45*r.Float64())
	bearing := r.Float64() * 360
	p := geo.Destination(c.Center, bearing, dist)
	if p.Lat > 72 {
		p.Lat = 72 - r.Float64()*5
	}
	if p.Lat < -55 {
		p.Lat = -55 + r.Float64()*5
	}
	return p
}

// genRoads builds the right-of-way graph: per continent, each city connects
// to its nearest neighbours, augmented to connectivity, plus intercity
// trunk corridors and rail along a subset.
func (w *World) genRoads(r *rand.Rand) {
	type edgeKey [2]int
	seen := make(map[edgeKey]bool)
	addEdge := func(a, b int, kind string) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		k := edgeKey{a, b}
		if seen[k] {
			return
		}
		seen[k] = true
		pa, pb := w.Cities[a].Loc, w.Cities[b].Loc
		path := jitteredPath(r, pa, pb)
		w.Roads = append(w.Roads, RoadEdge{
			A: a, B: b,
			Path:     path,
			LengthKm: geo.PathLengthKm(path),
			Kind:     kind,
		})
	}

	for cont := range continents {
		var ids []int
		for _, c := range w.Cities {
			if c.Continent == cont {
				ids = append(ids, c.ID)
			}
		}
		if len(ids) < 2 {
			continue
		}
		entries := make([]spatial.Entry, len(ids))
		for i, id := range ids {
			entries[i] = spatial.Entry{P: w.Cities[id].Loc, ID: id}
		}
		tree := spatial.NewKDTree(entries)
		// k-nearest-neighbour edges.
		for _, id := range ids {
			for _, res := range tree.KNearest(w.Cities[id].Loc, 4)[1:] {
				addEdge(id, res.Entry.ID, "road")
			}
		}
		// Trunk corridors between the continent's largest cities.
		big := append([]int(nil), ids...)
		sort.Slice(big, func(i, j int) bool {
			return w.Cities[big[i]].Population > w.Cities[big[j]].Population
		})
		nBig := len(big) / 10
		if nBig < 4 {
			nBig = min(4, len(big))
		}
		big = big[:nBig]
		for i, id := range big {
			for t := 0; t < 2; t++ {
				other := big[r.Intn(len(big))]
				if other != id {
					kind := "road"
					if (i+t)%3 == 0 {
						kind = "rail"
					}
					addEdge(id, other, kind)
				}
			}
		}
		// Stitch any disconnected components.
		w.connectComponents(ids, addEdge)
	}

	// Land bridges across continents.
	for _, b := range landBridges {
		a, ok1 := w.cityByName[b[0]]
		c, ok2 := w.cityByName[b[1]]
		if ok1 && ok2 {
			addEdge(a, c, "road")
		}
	}
}

// connectComponents links disconnected road components within one continent
// by joining the geographically closest city pairs.
func (w *World) connectComponents(ids []int, addEdge func(a, b int, kind string)) {
	idPos := make(map[int]int, len(ids))
	for i, id := range ids {
		idPos[id] = i
	}
	for {
		g := graph.New(len(ids))
		for _, e := range w.Roads {
			ia, aok := idPos[e.A]
			ib, bok := idPos[e.B]
			if aok && bok {
				g.AddUndirected(ia, ib, 1)
			}
		}
		labels, count := g.Components()
		if count <= 1 {
			return
		}
		// Join component 0 to the closest city in any other component.
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for i, id := range ids {
			if labels[i] != 0 {
				continue
			}
			for j, jd := range ids {
				if labels[j] == 0 {
					continue
				}
				if d := geo.Haversine(w.Cities[id].Loc, w.Cities[jd].Loc); d < bestD {
					bestA, bestB, bestD = id, jd, d
				}
			}
		}
		if bestA < 0 {
			return
		}
		addEdge(bestA, bestB, "road")
	}
}

// jitteredPath produces a plausible road geometry: the great circle with
// perpendicular offsets at interior points.
func jitteredPath(r *rand.Rand, a, b geo.Point) []geo.Point {
	d := geo.Haversine(a, b)
	n := 1 + int(d/250) // a bend every ~250 km
	if n > 8 {
		n = 8
	}
	path := []geo.Point{a}
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n+1)
		mid := geo.Interpolate(a, b, f)
		offset := (r.Float64() - 0.5) * 0.12 * d // up to ±6% of length
		brng := geo.InitialBearing(a, b) + 90
		path = append(path, geo.Destination(mid, brng, offset))
	}
	return append(path, b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RoadGraph builds a weighted graph over cities from the right-of-way
// edges; useful to callers computing shortest corridors on ground truth.
func (w *World) RoadGraph() *graph.Graph {
	g := graph.New(len(w.Cities))
	for _, e := range w.Roads {
		g.AddUndirected(e.A, e.B, e.LengthKm)
	}
	return g
}
