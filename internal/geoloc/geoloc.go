// Package geoloc implements the latency-constrained belief propagation of
// §4.4: starting from IPs with known metros (Hoiho geohints, IXP peering
// LANs, anchor addresses), locations flow along traceroute adjacencies —
// when two adjacent hops differ by less than the metro threshold and both
// sit close to the origin, the unknown hop inherits its neighbour's metro.
// Iterating expands the geolocated set, and inferences carry the iteration
// at which they were made so consumers can discard lower-confidence tiers.
package geoloc

import (
	"sort"
)

// Observation is one traceroute's visible hops with RTTs, pre-attributed to
// ASes by bdrmap.
type Observation struct {
	IPs  []uint32
	RTTs []float64
	ASNs []int // -1 where unknown
}

// Options tunes the propagation thresholds; zero values select the paper's
// parameters.
type Options struct {
	// MetroThresholdMs bounds the differential latency between adjacent
	// hops considered co-located (paper: 2 ms).
	MetroThresholdMs float64
	// OriginBoundMs bounds both hops' distance from the traceroute origin
	// (paper: 30 ms).
	OriginBoundMs float64
	// MaxIterations caps propagation rounds; 0 means run to fixpoint.
	MaxIterations int
}

func (o Options) withDefaults() Options {
	if o.MetroThresholdMs == 0 {
		o.MetroThresholdMs = 2.0
	}
	if o.OriginBoundMs == 0 {
		o.OriginBoundMs = 30.0
	}
	return o
}

// Inference is one propagated location.
type Inference struct {
	City      int
	Iteration int // 1-based round in which the location was assigned
	FromIP    uint32
}

// Propagate runs belief propagation. known seeds IP→city; the returned map
// contains only newly inferred IPs.
func Propagate(traces []Observation, known map[uint32]int, opts Options) map[uint32]Inference {
	opts = opts.withDefaults()
	loc := make(map[uint32]int, len(known))
	for ip, c := range known {
		loc[ip] = c
	}
	inferred := make(map[uint32]Inference)
	for iter := 1; ; iter++ {
		if opts.MaxIterations > 0 && iter > opts.MaxIterations {
			break
		}
		// Collect this round's candidate assignments; an IP observed in
		// multiple adjacencies takes the majority metro.
		cand := make(map[uint32]map[int]int)
		candFrom := make(map[[2]interface{}]uint32)
		vote := func(ip uint32, city int, from uint32) {
			if _, have := loc[ip]; have {
				return
			}
			if cand[ip] == nil {
				cand[ip] = make(map[int]int)
			}
			cand[ip][city]++
			candFrom[[2]interface{}{ip, city}] = from
		}
		for _, tr := range traces {
			for i := 0; i+1 < len(tr.IPs); i++ {
				a, b := tr.IPs[i], tr.IPs[i+1]
				ra, rb := tr.RTTs[i], tr.RTTs[i+1]
				if ra > opts.OriginBoundMs || rb > opts.OriginBoundMs {
					continue
				}
				if diff(ra, rb) >= opts.MetroThresholdMs {
					continue
				}
				ca, haveA := loc[a]
				cb, haveB := loc[b]
				switch {
				case haveA && !haveB:
					vote(b, ca, a)
				case haveB && !haveA:
					vote(a, cb, b)
				}
			}
		}
		if len(cand) == 0 {
			break
		}
		ips := make([]uint32, 0, len(cand))
		for ip := range cand {
			ips = append(ips, ip)
		}
		sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
		for _, ip := range ips {
			bestCity, bestN := -1, 0
			for city, n := range cand[ip] {
				if n > bestN || (n == bestN && city < bestCity) {
					bestCity, bestN = city, n
				}
			}
			loc[ip] = bestCity
			inferred[ip] = Inference{
				City:      bestCity,
				Iteration: iter,
				FromIP:    candFrom[[2]interface{}{ip, bestCity}],
			}
		}
	}
	return inferred
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Consistency scores one set of inferences against an independent locator
// (Hoiho or IXP prefixes): the fraction of overlapping IPs that agree —
// the paper reports 86%.
func Consistency(inferred map[uint32]Inference, independent map[uint32]int) (agree, total int) {
	for ip, inf := range inferred {
		want, ok := independent[ip]
		if !ok {
			continue
		}
		total++
		if want == inf.City {
			agree++
		}
	}
	return agree, total
}

// NewTuples aggregates inferences into distinct (city, AS) pairs, given a
// per-IP AS attribution — the §4.4 "2231 new (city-AS) tuples" metric.
func NewTuples(inferred map[uint32]Inference, ipASN map[uint32]int, existing map[[2]int]bool) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for ip, inf := range inferred {
		asn, ok := ipASN[ip]
		if !ok || asn < 0 {
			continue
		}
		key := [2]int{inf.City, asn}
		if existing != nil && existing[key] {
			continue
		}
		out[key] = true
	}
	return out
}

// RemoteVerdict classifies an (AS, exchange-metro) presence as remote
// peering using latency evidence [Nomikos et al. 2018, simplified]: if every
// observed RTT sample from the member's peering-LAN address to hops known
// to be in the exchange metro exceeds the metro threshold, the member is
// remote.
func RemoteVerdict(samplesMs []float64, metroThresholdMs float64) bool {
	if metroThresholdMs == 0 {
		metroThresholdMs = 2.0
	}
	if len(samplesMs) == 0 {
		return false // no evidence: assume physical
	}
	for _, s := range samplesMs {
		if s < metroThresholdMs {
			return false
		}
	}
	return true
}
