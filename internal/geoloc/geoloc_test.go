package geoloc

import (
	"testing"
)

func TestPropagateOneHop(t *testing.T) {
	// hop 1 known (city 7), hop 2 unknown, within thresholds → inherits.
	traces := []Observation{{
		IPs:  []uint32{1, 2},
		RTTs: []float64{5.0, 6.0},
	}}
	known := map[uint32]int{1: 7}
	inf := Propagate(traces, known, Options{})
	got, ok := inf[2]
	if !ok || got.City != 7 || got.Iteration != 1 || got.FromIP != 1 {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
}

func TestPropagateRespectsThresholds(t *testing.T) {
	// Differential latency >= 2 ms: no propagation.
	traces := []Observation{{IPs: []uint32{1, 2}, RTTs: []float64{5.0, 7.5}}}
	if inf := Propagate(traces, map[uint32]int{1: 7}, Options{}); len(inf) != 0 {
		t.Error("propagated across a 2.5 ms boundary")
	}
	// Beyond the 30 ms origin bound: no propagation.
	traces = []Observation{{IPs: []uint32{1, 2}, RTTs: []float64{31.0, 31.5}}}
	if inf := Propagate(traces, map[uint32]int{1: 7}, Options{}); len(inf) != 0 {
		t.Error("propagated beyond the origin bound")
	}
}

func TestPropagateIterates(t *testing.T) {
	// A chain: 1(known) - 2 - 3; 3 is only reachable on iteration 2.
	traces := []Observation{{
		IPs:  []uint32{1, 2, 3},
		RTTs: []float64{5.0, 5.5, 6.0},
	}}
	inf := Propagate(traces, map[uint32]int{1: 7}, Options{})
	if inf[2].Iteration != 1 || inf[3].Iteration != 2 {
		t.Fatalf("iterations: %+v", inf)
	}
	if inf[3].City != 7 {
		t.Error("location did not chain")
	}
	// Capped at one round: hop 3 stays unknown.
	inf = Propagate(traces, map[uint32]int{1: 7}, Options{MaxIterations: 1})
	if _, ok := inf[3]; ok {
		t.Error("MaxIterations ignored")
	}
}

func TestPropagateBackward(t *testing.T) {
	// Known hop downstream locates the unknown upstream hop.
	traces := []Observation{{IPs: []uint32{1, 2}, RTTs: []float64{4.0, 4.5}}}
	inf := Propagate(traces, map[uint32]int{2: 9}, Options{})
	if inf[1].City != 9 {
		t.Fatalf("backward propagation failed: %+v", inf)
	}
}

func TestPropagateMajorityVote(t *testing.T) {
	// IP 5 is adjacent to two known city-3 hops and one known city-8 hop.
	traces := []Observation{
		{IPs: []uint32{1, 5}, RTTs: []float64{4, 4.3}},
		{IPs: []uint32{2, 5}, RTTs: []float64{4, 4.4}},
		{IPs: []uint32{3, 5}, RTTs: []float64{4, 4.5}},
	}
	known := map[uint32]int{1: 3, 2: 3, 3: 8}
	inf := Propagate(traces, known, Options{})
	if inf[5].City != 3 {
		t.Fatalf("majority vote failed: %+v", inf[5])
	}
}

func TestPropagateDoesNotOverwriteKnown(t *testing.T) {
	traces := []Observation{{IPs: []uint32{1, 2}, RTTs: []float64{4, 4.2}}}
	known := map[uint32]int{1: 3, 2: 9}
	if inf := Propagate(traces, known, Options{}); len(inf) != 0 {
		t.Error("known locations must not be re-inferred")
	}
}

func TestConsistency(t *testing.T) {
	inferred := map[uint32]Inference{
		1: {City: 3}, 2: {City: 5}, 3: {City: 7},
	}
	independent := map[uint32]int{1: 3, 2: 6, 9: 1}
	agree, total := Consistency(inferred, independent)
	if agree != 1 || total != 2 {
		t.Errorf("agree=%d total=%d, want 1/2", agree, total)
	}
}

func TestNewTuples(t *testing.T) {
	inferred := map[uint32]Inference{
		1: {City: 3}, 2: {City: 3}, 3: {City: 5}, 4: {City: 9},
	}
	ipASN := map[uint32]int{1: 100, 2: 100, 3: 100, 4: -1}
	existing := map[[2]int]bool{{5, 100}: true}
	got := NewTuples(inferred, ipASN, existing)
	// (3,100) new once; (5,100) exists; (9,-1) unmapped.
	if len(got) != 1 || !got[[2]int{3, 100}] {
		t.Errorf("got %v", got)
	}
}

func TestRemoteVerdict(t *testing.T) {
	if RemoteVerdict(nil, 2.0) {
		t.Error("no evidence should default to physical")
	}
	if RemoteVerdict([]float64{0.4, 0.8}, 2.0) {
		t.Error("sub-threshold samples mean physical presence")
	}
	if !RemoteVerdict([]float64{12.0, 15.0}, 2.0) {
		t.Error("all samples far above threshold mean remote")
	}
	if RemoteVerdict([]float64{12.0, 0.5}, 2.0) {
		t.Error("any local sample means physical")
	}
	if !RemoteVerdict([]float64{5}, 0) {
		t.Error("zero threshold should default to 2 ms")
	}
}
