package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"igdb/internal/obs"
)

func TestRequestIDProvided(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-42")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "caller-supplied-42" {
		t.Fatalf("X-Request-ID echoed %q, want caller-supplied-42", got)
	}
}

func TestRequestIDGenerated(t *testing.T) {
	s := newTestServer(t, Config{})
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		id := rec.Header().Get("X-Request-ID")
		if id == "" {
			t.Fatal("no X-Request-ID generated")
		}
		ids[id] = true
	}
	if len(ids) != 3 {
		t.Fatalf("generated IDs are not unique: %v", ids)
	}
}

func TestRequestIDTruncated(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", strings.Repeat("x", 500))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); len(got) != maxRequestIDLen {
		t.Fatalf("oversized request ID echoed with %d bytes, want %d", len(got), maxRequestIDLen)
	}
}

func TestRequestIDInErrorBody(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest("POST", "/sql", strings.NewReader(""))
	req.Header.Set("X-Request-ID", "err-req-7")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["request_id"] != "err-req-7" {
		t.Fatalf("error body request_id = %q, want err-req-7", body["request_id"])
	}
	if body["error"] == "" {
		t.Fatal("error body lost its error message")
	}
}

// logLines decodes a JSON-mode log buffer into one map per line.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]interface{} {
	t.Helper()
	var out []map[string]interface{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestAccessLogFields(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Config{Logger: obs.NewJSON(&buf)})
	buf.Reset() // drop build-time lines; only the access log matters here
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "log-req-1")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	var access map[string]interface{}
	for _, m := range logLines(t, &buf) {
		if m["msg"] == "access" {
			access = m
			break
		}
	}
	if access == nil {
		t.Fatalf("no access log line in %q", buf.String())
	}
	want := map[string]string{
		"method": "GET", "path": "/healthz", "route": "/healthz", "request_id": "log-req-1",
	}
	for k, v := range want {
		if access[k] != v {
			t.Errorf("access log %s = %v, want %s", k, access[k], v)
		}
	}
	if status, ok := access["status"].(float64); !ok || int(status) != 200 {
		t.Errorf("access log status = %v, want 200", access["status"])
	}
	if _, ok := access["dur_ms"]; !ok {
		t.Error("access log missing dur_ms")
	}
	if access["level"] != "info" {
		t.Errorf("access log level = %v, want info", access["level"])
	}
}

func TestPanicRecoveryLogsRequestID(t *testing.T) {
	var buf bytes.Buffer
	s := &Server{
		cfg:     Config{RequestTimeout: time.Second},
		metrics: newMetrics(),
		sem:     make(chan struct{}, 1),
		logger:  obs.NewJSON(&buf),
	}
	h := s.wrap("/boom", true, func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	req := httptest.NewRequest("GET", "/boom", nil)
	req.Header.Set("X-Request-ID", "panic-req-9")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var found bool
	for _, m := range logLines(t, &buf) {
		if m["msg"] == "panic recovered" {
			found = true
			if m["request_id"] != "panic-req-9" {
				t.Errorf("panic log request_id = %v, want panic-req-9", m["request_id"])
			}
			if m["level"] != "error" {
				t.Errorf("panic log level = %v, want error", m["level"])
			}
			if s, _ := m["stack"].(string); !strings.Contains(s, "goroutine") {
				t.Error("panic log has no stack trace")
			}
		}
	}
	if !found {
		t.Fatalf("no panic-recovered log line in %q", buf.String())
	}
}

func TestPprofGating(t *testing.T) {
	off := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status = %d, want 404", rec.Code)
	}

	on := newTestServer(t, Config{EnablePprof: true})
	rec = httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof with -pprof: status = %d, want 200", rec.Code)
	}
}
