// Package server is iGDB's concurrent query-serving layer: a long-lived
// daemon that builds the cross-layer database once and then answers
// read-only traffic over HTTP — the paper's "self-contained SQL queries"
// (§3.4) as a service instead of a one-shot CLI run.
//
// Design:
//
//   - The built database (core.IGDB plus the §4.2 measurement pipeline) is
//     held behind an atomic.Pointer snapshot. Readers load the pointer once
//     per request and never take a lock; a background rebuild constructs a
//     fresh snapshot off to the side and swaps it in atomically, so queries
//     in flight keep the old tables and new queries see the new ones.
//   - Each snapshot carries its own LRU plan cache (normalized SQL →
//     prepared reldb.Stmt, so repeated statements are parsed once) and
//     result cache (normalized SQL → encoded rows). Tying the caches to the
//     snapshot makes a swap invalidate them wholesale, with no epoch
//     bookkeeping.
//   - POST /sql admits SELECT only: anything that parses to DDL/DML is
//     rejected with 403 before touching the database.
//   - Robustness: panic recovery, a concurrency limiter, per-request
//     timeouts, structured access logs, graceful shutdown, and /metrics
//     (request counts, latency histogram, cache hit rates, snapshot age).
package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"igdb/internal/core"
	"igdb/internal/ingest"
	"igdb/internal/obs"
	"igdb/internal/paths"
	"igdb/internal/reldb"
	"igdb/internal/replicate"
	"igdb/internal/simulate"
)

// Config controls the server.
type Config struct {
	// Dir is the snapshot store directory (igdb collect's -dir). Ignored
	// when Store is set.
	Dir string
	// Store is an optional pre-loaded snapshot store; tests and benchmarks
	// inject in-memory or fault-injecting (chaos) stores here.
	Store ingest.Reloader
	// AsOf pins builds to snapshots at-or-before this instant; zero = newest.
	AsOf time.Time
	// Degraded builds with core's per-source fault isolation: corrupt,
	// missing, or stale sources are quarantined in source_status instead of
	// failing the build, and a missing measurement pipeline (paths) is
	// tolerated. /healthz reports the per-source verdicts.
	Degraded bool
	// StaleAfter forwards to core.BuildOptions.StaleAfter: sources whose
	// snapshot lags the newest one by more than this are stale.
	StaleAfter time.Duration
	// Addr is the listen address for Run (default ":8080").
	Addr string
	// MaxConcurrency bounds simultaneously executing requests (default 64).
	MaxConcurrency int
	// RequestTimeout bounds one request end to end (default 30s).
	RequestTimeout time.Duration
	// CacheSize is the per-snapshot LRU capacity for both the plan and the
	// result cache (default 256). Negative disables the result cache (plans
	// are still cached); the throughput benchmark uses this to measure the
	// cache's contribution.
	CacheSize int
	// MaxResultRows caps the rows returned by one /sql call (default 10000).
	MaxResultRows int
	// RebuildEvery re-ingests from the store directory and swaps the
	// snapshot on this period (0 = only on POST /admin/rebuild).
	RebuildEvery time.Duration
	// Logger receives structured server logs (access lines, rebuild
	// outcomes, panics). When nil, Logf is bridged; when both are nil the
	// server logs key=value text to stderr honoring IGDB_LOG_FORMAT and
	// IGDB_LOG_LEVEL.
	Logger *obs.Logger
	// Logf is a legacy printf-style sink, bridged into a structured Logger
	// when Logger is nil.
	Logf func(format string, args ...interface{})
	// SlowQueryMin is the /sql duration threshold past which a statement is
	// recorded in the slow-query log (GET /debug/queries). 0 means the
	// 250ms default; negative records every statement.
	SlowQueryMin time.Duration
	// QueryLogSize is the slow-query ring-buffer capacity (default 128).
	QueryLogSize int
	// StmtStatsSize caps how many distinct statement fingerprints the
	// /debug/statements aggregator tracks (default 512); executions of
	// fingerprints beyond the cap are only counted in aggregate.
	StmtStatsSize int
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/.
	EnablePprof bool
	// SimulateScenarios, when positive, runs a Monte-Carlo what-if failure
	// batch of this many scenarios against every snapshot right after it
	// builds, so scenario_runs / scenario_impacts are populated and
	// queryable through POST /sql the moment the snapshot starts serving.
	// A failed simulation degrades to empty relations; it never blocks the
	// snapshot.
	SimulateScenarios int
	// SimulateSeed seeds the scenario generator (default 1); the same
	// store and seed produce identical scenario relations on every rebuild.
	SimulateSeed int64
	// Leader exposes the replication surface (GET /replica/manifest and
	// GET /replica/chunk/{hash}) so followers can sync from this server.
	Leader bool
	// LeaderURL makes this server a follower of that leader: it builds
	// nothing locally — snapshots arrive by replication, are verified
	// chunk-by-chunk, and swap in atomically. Data routes answer 503 until
	// the first successful sync. Dir and Store are not required.
	LeaderURL string
	// ReplicaPoll is the follower's manifest poll period (default 2s).
	ReplicaPoll time.Duration
	// ReplicaTimeout bounds one whole sync — manifest poll plus every
	// chunk fetch (default 30s). A stalled leader connection is abandoned
	// at this deadline and the follower keeps its last good snapshot.
	ReplicaTimeout time.Duration
	// ReplicaClient overrides the follower's HTTP client; chaos tests
	// inject fault-injecting transports here. Nil means a default client.
	ReplicaClient *http.Client
	// ReadHeaderTimeout, ReadTimeout, and IdleTimeout configure the
	// http.Server started by Run (defaults 10s, 30s, 120s). Explicit
	// timeouts keep a slow-loris client from pinning connections forever.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxResultRows <= 0 {
		c.MaxResultRows = 10000
	}
	if c.QueryLogSize <= 0 {
		c.QueryLogSize = 128
	}
	if c.ReplicaPoll <= 0 {
		c.ReplicaPoll = 2 * time.Second
	}
	if c.ReplicaTimeout <= 0 {
		c.ReplicaTimeout = 30 * time.Second
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 10 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 120 * time.Second
	}
}

// resolveLogger picks the structured logger: explicit Logger, a bridged
// legacy Logf, or a fresh env-configured stderr logger.
func (c *Config) resolveLogger() *obs.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	if c.Logf != nil {
		return obs.NewCallback(c.Logf)
	}
	return obs.FromEnv(os.Stderr)
}

// snapshot is one immutable built database plus everything derived from it.
// All fields are read-only after construction; the caches are internally
// synchronized.
type snapshot struct {
	g         *core.IGDB
	pipe      *paths.Pipeline
	pipeErr   string // why pipe is nil (degraded builds only)
	seq       uint64
	builtAt   time.Time
	buildTime time.Duration
	simCount  int           // scenarios simulated against this snapshot
	simTime   time.Duration // wall time of that simulation batch
	// The statement and result caches take their own lock per operation,
	// so request goroutines may write them after the snapshot publishes.
	//
	// snapshot: internally synchronized
	plans *lruCache[*reldb.Stmt]
	// snapshot: internally synchronized
	results *lruCache[*sqlResult]

	// The replication artifact is rendered lazily, once, by the first
	// follower poll, with artOnce serializing the write; see
	// snapshot.artifact.
	artOnce sync.Once
	// snapshot: internally synchronized
	art *replicate.Artifact
	// snapshot: internally synchronized
	artErr error
}

// Server serves a built iGDB over HTTP.
type Server struct {
	cfg     Config
	store   ingest.Reloader
	snap    atomic.Pointer[snapshot]
	seq     atomic.Uint64
	metrics *Metrics
	sem     chan struct{}
	mux     *http.ServeMux
	logger  *obs.Logger
	qlog    *queryLog
	stmts   *stmtStats
	slowMin time.Duration // threshold for the slow-query log; 0 records all

	// fetcher pulls snapshots from the leader (followers only).
	fetcher *replicate.Fetcher

	// rebuildMu serializes rebuilds and replication syncs (and the store
	// reload inside rebuilds).
	rebuildMu sync.Mutex

	// stateMu guards the last-rebuild outcome reported by /healthz and the
	// follower's replication bookkeeping.
	stateMu        sync.Mutex
	lastRebuildErr error
	lastRebuildAt  time.Time
	repl           replState
}

// New loads the store, builds the first snapshot, and wires the routes.
// A follower (cfg.LeaderURL set) builds nothing: it attempts one initial
// sync from the leader and starts serving 503s on data routes until a sync
// succeeds — a leader that is down at follower startup is an expected,
// recoverable condition, not a construction error.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if cfg.Leader && cfg.LeaderURL != "" {
		return nil, fmt.Errorf("server: Leader and LeaderURL are mutually exclusive")
	}
	store := cfg.Store
	if store == nil && cfg.LeaderURL == "" {
		if cfg.Dir == "" {
			return nil, fmt.Errorf("server: Dir or Store is required")
		}
		store = ingest.NewStore(cfg.Dir)
		if err := store.Load(); err != nil {
			return nil, fmt.Errorf("server: loading store: %w", err)
		}
	}
	slowMin := cfg.SlowQueryMin
	switch {
	case slowMin == 0:
		slowMin = 250 * time.Millisecond
	case slowMin < 0:
		slowMin = 0 // record every statement
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		metrics: newMetrics(),
		sem:     make(chan struct{}, cfg.MaxConcurrency),
		logger:  cfg.resolveLogger(),
		qlog:    newQueryLog(cfg.QueryLogSize),
		stmts:   newStmtStats(cfg.StmtStatsSize),
		slowMin: slowMin,
	}
	if cfg.LeaderURL != "" {
		s.fetcher = &replicate.Fetcher{
			LeaderURL: strings.TrimRight(cfg.LeaderURL, "/"),
			Client:    cfg.ReplicaClient,
			Logger:    s.logger,
			Seed:      1,
		}
		if _, _, err := s.syncFromLeader(context.Background()); err != nil {
			s.logger.Warn("initial replication sync failed; data routes serve 503 until the leader is reachable",
				obs.F("leader", cfg.LeaderURL), obs.F("err", err))
		}
		s.routes()
		return s, nil
	}
	snap, err := s.buildSnapshot()
	if err != nil {
		return nil, err
	}
	s.snap.Store(snap)
	s.routes()
	return s, nil
}

// current returns the serving snapshot. Handlers call this once per request
// so one request always sees one consistent database.
func (s *Server) current() *snapshot { return s.snap.Load() }

// buildSnapshot constructs a fresh snapshot from the store. Callers other
// than New must hold rebuildMu.
func (s *Server) buildSnapshot() (*snapshot, error) {
	t0 := time.Now()
	g, err := core.Build(s.store, core.BuildOptions{
		AsOf:       s.cfg.AsOf,
		Degraded:   s.cfg.Degraded,
		StaleAfter: s.cfg.StaleAfter,
		Logger:     s.logger,
	})
	if err != nil {
		return nil, fmt.Errorf("server: build: %w", err)
	}
	var pipeErr string
	pipe, err := paths.NewPipeline(g, s.store)
	if err != nil {
		// The measurement pipeline reads its own snapshots (routeviews,
		// rdns, ripeatlas); in degraded mode a broken one costs /path, not
		// the whole server.
		if !s.cfg.Degraded {
			return nil, fmt.Errorf("server: paths pipeline: %w", err)
		}
		pipe, pipeErr = nil, err.Error()
		s.logger.Warn("degraded: paths pipeline unavailable", obs.F("err", err))
	}
	simCount, simTime := s.simulateSnapshot(g)
	resultSize := s.cfg.CacheSize
	if resultSize < 0 {
		resultSize = 0 // disabled; sqlResult lookups are skipped entirely
	}
	snap := &snapshot{
		g:         g,
		pipe:      pipe,
		pipeErr:   pipeErr,
		seq:       s.seq.Add(1),
		builtAt:   time.Now(),
		buildTime: time.Since(t0),
		simCount:  simCount,
		simTime:   simTime,
		plans:     newLRU[*reldb.Stmt](max(s.cfg.CacheSize, 16)),
	}
	if resultSize > 0 {
		snap.results = newLRU[*sqlResult](resultSize)
	}
	return snap, nil
}

// simulateSnapshot runs the configured what-if failure batch against a
// freshly built database, before the snapshot starts serving. Simulation
// is auxiliary: on error the snapshot ships with empty scenario relations
// and the failure is logged and counted, mirroring how a degraded build
// quarantines a bad source instead of dying.
func (s *Server) simulateSnapshot(g *core.IGDB) (int, time.Duration) {
	if s.cfg.SimulateScenarios <= 0 {
		return 0, 0
	}
	eng, err := simulate.NewEngine(g, simulate.Options{
		Seed:   s.cfg.SimulateSeed,
		Logger: s.logger,
	})
	if err == nil {
		results := eng.Run(eng.Generate(s.cfg.SimulateScenarios), 0)
		if _, serr := eng.Store(results); serr != nil {
			err = serr
		} else {
			s.metrics.simScenarios.Add(uint64(len(results)))
			return len(results), eng.Elapsed()
		}
	}
	s.metrics.simErrors.Add(1)
	s.logger.Warn("snapshot simulation failed", obs.F("err", err))
	return 0, 0
}

// Rebuild re-reads the store directory (picking up snapshots collected
// since startup), builds a fresh database, and atomically swaps it in.
// Readers are never blocked: they keep the old snapshot until the swap.
// Returns the new snapshot's sequence number and build duration. On a
// follower "rebuild" means one synchronous sync from the leader.
func (s *Server) Rebuild() (uint64, time.Duration, error) {
	if s.fetcher != nil {
		t0 := time.Now()
		seq, _, err := s.syncFromLeader(context.Background())
		return seq, time.Since(t0), err
	}
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	// Pick up store snapshots that appeared on disk since the last load
	// (in-memory stores no-op here).
	if err := s.store.Load(); err != nil {
		err = fmt.Errorf("server: reloading store: %w", err)
		s.noteRebuild(err)
		return 0, 0, err
	}
	snap, err := s.buildSnapshot()
	if err != nil {
		// The previous snapshot keeps serving; /healthz turns degraded.
		s.noteRebuild(err)
		return 0, 0, err
	}
	s.snap.Store(snap)
	s.noteRebuild(nil)
	s.metrics.rebuilds.Add(1)
	s.logger.Info("snapshot ready", obs.F("seq", snap.seq),
		obs.F("build_time", snap.buildTime.Round(time.Millisecond)))
	return snap.seq, snap.buildTime, nil
}

// noteRebuild records the most recent rebuild outcome for /healthz and
// bumps the failure counter on error.
func (s *Server) noteRebuild(err error) {
	if err != nil {
		s.metrics.rebuildErrors.Add(1)
	}
	s.stateMu.Lock()
	s.lastRebuildErr = err
	s.lastRebuildAt = time.Now()
	s.stateMu.Unlock()
}

// LastRebuildError returns the error of the most recent rebuild attempt
// (nil when it succeeded or none has run).
func (s *Server) LastRebuildError() error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.lastRebuildErr
}

// TryRebuild runs Rebuild unless one is already in flight.
func (s *Server) TryRebuild() (uint64, time.Duration, bool, error) {
	if !s.rebuildMu.TryLock() {
		return 0, 0, false, nil
	}
	s.rebuildMu.Unlock()
	seq, d, err := s.Rebuild()
	return seq, d, true, err
}

// Handler returns the fully middleware-wrapped HTTP handler; usable
// directly with httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// SnapshotSeq returns the serving snapshot's sequence number (0 on a
// follower that has not completed its first sync).
func (s *Server) SnapshotSeq() uint64 { return s.servingSeq() }

// Run serves until ctx is cancelled, then drains connections gracefully.
// When cfg.RebuildEvery > 0 a background ticker re-ingests and swaps the
// snapshot on that period.
func (s *Server) Run(ctx context.Context) error {
	httpSrv := &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	if s.fetcher != nil {
		go s.pollLeader(ctx)
	}
	if s.cfg.RebuildEvery > 0 && s.fetcher == nil {
		go func() {
			tick := time.NewTicker(s.cfg.RebuildEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, _, err := s.Rebuild(); err != nil {
						s.logger.Error("periodic rebuild failed", obs.F("err", err))
					}
				}
			}
		}()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	tables := 0
	if snap := s.current(); snap != nil {
		tables = len(snap.g.Rel.TableNames())
	}
	s.logger.Info("listening", obs.F("addr", s.cfg.Addr),
		obs.F("role", string(s.Role())),
		obs.F("snapshot", s.servingSeq()),
		obs.F("tables", tables))
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.logger.Info("shutting down")
		return httpSrv.Shutdown(shutCtx)
	}
}
