package server

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// cellInt converts one JSON-decoded /sql cell (float64 for numbers) to int.
func cellInt(t *testing.T, v interface{}) int {
	t.Helper()
	switch x := v.(type) {
	case float64:
		return int(x)
	case string:
		n, err := strconv.Atoi(x)
		if err != nil {
			t.Fatalf("cell %q is not a number", x)
		}
		return n
	default:
		t.Fatalf("cell has unexpected type %T (%v)", v, v)
		return 0
	}
}

// scrapeMetric fetches /metrics and returns the value of an unlabeled
// series as a float.
func scrapeMetric(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s has non-numeric value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed:\n%s", name, rec.Body.String())
	return 0
}

// TestServeSimulateBatch: with SimulateScenarios set, every snapshot is
// simulated against before it serves, the results answer POST /sql, and
// the igdb_simulate_* metric family reports the batch.
func TestServeSimulateBatch(t *testing.T) {
	s := newTestServer(t, Config{SimulateScenarios: 15, SimulateSeed: 7})
	h := s.Handler()

	rec, resp := postSQL(t, h, `SELECT COUNT(*) FROM scenario_runs`)
	if rec.Code != 200 {
		t.Fatalf("sql status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Rows) != 1 || cellInt(t, resp.Rows[0][0]) != 15 {
		t.Fatalf("scenario_runs count = %v, want 15", resp.Rows)
	}
	rec, resp = postSQL(t, h, `SELECT COUNT(*) FROM scenario_impacts`)
	if rec.Code != 200 || len(resp.Rows) != 1 {
		t.Fatalf("scenario_impacts query failed: %d %s", rec.Code, rec.Body.String())
	}
	if n := cellInt(t, resp.Rows[0][0]); n <= 0 {
		t.Fatalf("scenario_impacts is empty")
	}
	// Ranked impacts join back to their runs through scenario_id.
	rec, resp = postSQL(t, h, `SELECT r.kind, i.name, i.lost_pairs
		FROM scenario_runs r JOIN scenario_impacts i ON i.scenario_id = r.scenario_id
		WHERE i.rank = 1 AND i.impact = 'metro' LIMIT 5`)
	if rec.Code != 200 {
		t.Fatalf("join query status = %d: %s", rec.Code, rec.Body.String())
	}

	if got := scrapeMetric(t, s, "igdb_simulate_scenarios_total"); got != 15 {
		t.Errorf("igdb_simulate_scenarios_total = %g, want 15", got)
	}
	if got := scrapeMetric(t, s, "igdb_simulate_snapshot_scenarios"); got != 15 {
		t.Errorf("igdb_simulate_snapshot_scenarios = %g, want 15", got)
	}
	if got := scrapeMetric(t, s, "igdb_simulate_snapshot_seconds"); got <= 0 {
		t.Errorf("igdb_simulate_snapshot_seconds = %g, want > 0", got)
	}
	if got := scrapeMetric(t, s, "igdb_simulate_errors_total"); got != 0 {
		t.Errorf("igdb_simulate_errors_total = %g, want 0", got)
	}

	// A rebuild simulates the new snapshot too: the process counter grows,
	// the per-snapshot gauge stays at the batch size.
	if _, _, err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := scrapeMetric(t, s, "igdb_simulate_scenarios_total"); got != 30 {
		t.Errorf("after rebuild igdb_simulate_scenarios_total = %g, want 30", got)
	}
	if got := scrapeMetric(t, s, "igdb_simulate_snapshot_scenarios"); got != 15 {
		t.Errorf("after rebuild igdb_simulate_snapshot_scenarios = %g, want 15", got)
	}
	rec, resp = postSQL(t, h, `SELECT COUNT(*) FROM scenario_runs`)
	if rec.Code != 200 || len(resp.Rows) != 1 || cellInt(t, resp.Rows[0][0]) != 15 {
		t.Fatalf("after rebuild scenario_runs = %v, want 15 rows exactly (fresh snapshot, not accumulation)", resp.Rows)
	}
}

// TestSimulateOffByDefault: without SimulateScenarios the relations exist
// but stay empty and no batch runs.
func TestSimulateOffByDefault(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, resp := postSQL(t, s.Handler(), `SELECT COUNT(*) FROM scenario_runs`)
	if rec.Code != 200 || len(resp.Rows) != 1 || cellInt(t, resp.Rows[0][0]) != 0 {
		t.Fatalf("scenario_runs without simulation = %v, want 0", resp.Rows)
	}
	if got := scrapeMetric(t, s, "igdb_simulate_scenarios_total"); got != 0 {
		t.Errorf("igdb_simulate_scenarios_total = %g, want 0", got)
	}
}

// TestSnapshotAgeGaugeValue is the dedicated behavior test for
// igdb_snapshot_age_seconds: a parseable, non-negative, monotonically
// growing gauge that resets when a rebuild swaps in a younger snapshot.
func TestSnapshotAgeGaugeValue(t *testing.T) {
	s := newTestServer(t, Config{})
	age1 := scrapeMetric(t, s, "igdb_snapshot_age_seconds")
	if age1 < 0 {
		t.Fatalf("snapshot age = %g, want >= 0", age1)
	}
	if age1 > 300 {
		t.Fatalf("snapshot age = %g right after build, implausible", age1)
	}
	age2 := scrapeMetric(t, s, "igdb_snapshot_age_seconds")
	if age2 < age1 {
		t.Fatalf("snapshot age went backwards without a rebuild: %g -> %g", age1, age2)
	}
	seq1 := scrapeMetric(t, s, "igdb_snapshot_seq")
	if _, _, err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if seq2 := scrapeMetric(t, s, "igdb_snapshot_seq"); seq2 != seq1+1 {
		t.Fatalf("snapshot seq after rebuild = %g, want %g", seq2, seq1+1)
	}
	age3 := scrapeMetric(t, s, "igdb_snapshot_age_seconds")
	if age3 < 0 || age3 > age2+60 {
		t.Fatalf("snapshot age after rebuild = %g, want a freshly reset gauge", age3)
	}
}
