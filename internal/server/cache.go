package server

import (
	"container/list"
	"strings"
	"sync"
)

// lruCache is a small mutex-guarded LRU keyed by string. The server keeps
// one plan cache (normalized SQL → prepared statement) and one result cache
// (normalized SQL → encoded result) per database snapshot, so a snapshot
// swap implicitly invalidates everything derived from the old tables.
type lruCache[V any] struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // guarded by mu
	order   *list.List               // guarded by mu; front = most recently used
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lruCache[V] {
	if max < 1 {
		max = 1
	}
	return &lruCache[V]{
		max:     max,
		entries: make(map[string]*list.Element, max),
		order:   list.New(),
	}
}

// Get returns the cached value and promotes it to most-recent.
func (c *lruCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Put inserts or refreshes a value, evicting the least-recent entry when
// over capacity.
func (c *lruCache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry[V]).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// normalizeSQL canonicalizes a statement for cache keying: whitespace runs
// outside string literals collapse to single spaces and one trailing
// semicolon is dropped. Whitespace inside 'quoted literals' is preserved —
// queries differing only inside a literal must not share a cache key.
func normalizeSQL(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(sql); i++ {
		ch := sql[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		switch ch {
		case ' ', '\t', '\n', '\r', '\f', '\v':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			b.WriteByte(ch)
			if ch == '\'' {
				inStr = true
			}
		}
	}
	return strings.TrimSpace(strings.TrimSuffix(b.String(), ";"))
}
