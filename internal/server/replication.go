package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"igdb/internal/core"
	"igdb/internal/obs"
	"igdb/internal/paths"
	"igdb/internal/reldb"
	"igdb/internal/replicate"
)

// Role names a server's position in the replication topology.
type Role string

// The roles. A standalone server neither serves nor consumes artifacts.
const (
	RoleStandalone Role = "standalone"
	RoleLeader     Role = "leader"
	RoleFollower   Role = "follower"
)

// Role reports this server's replication role.
func (s *Server) Role() Role {
	switch {
	case s.cfg.LeaderURL != "":
		return RoleFollower
	case s.cfg.Leader:
		return RoleLeader
	default:
		return RoleStandalone
	}
}

// replState is the follower's replication bookkeeping, guarded by stateMu.
type replState struct {
	leaderSeq   uint64    // newest manifest seq seen on the leader
	lastSyncAt  time.Time // last successful sync (fetch or confirmed up-to-date)
	lastErr     string    // last poll/fetch failure; "" after a success
	lastErrAt   time.Time // when lastErr was recorded
	quarantined uint64    // transfers discarded before serving (mirrors the metric)
}

// artifact lazily renders this snapshot as a replication artifact. The
// encode cost is paid once, by the first follower to ask, and the result is
// immutable alongside the snapshot itself.
func (sn *snapshot) artifact(s *Server) (*replicate.Artifact, error) {
	sn.artOnce.Do(func() {
		sn.art, sn.artErr = replicate.BuildArtifact(sn.g.Rel, s.store, sn.seq, sn.builtAt, sn.g.AsOf)
	})
	return sn.art, sn.artErr
}

// handleReplicaManifest serves GET /replica/manifest: the serving
// snapshot's manifest, encoding the artifact on first use.
func (s *Server) handleReplicaManifest(w http.ResponseWriter, r *http.Request) {
	snap := s.current()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot to replicate yet")
		return
	}
	art, err := snap.artifact(s)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "snapshot artifact unavailable: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errdrop a failed response write means the follower went away; it will re-poll
	_, _ = w.Write(art.ManifestJSON)
}

// handleReplicaChunk serves GET /replica/chunk/{hash}: raw chunk bytes by
// content address. 404 means the follower holds a manifest for a rotated
// snapshot and should re-poll.
func (s *Server) handleReplicaChunk(w http.ResponseWriter, r *http.Request) {
	snap := s.current()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot to replicate yet")
		return
	}
	art, err := snap.artifact(s)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "snapshot artifact unavailable: %v", err)
		return
	}
	data, ok := art.Chunk(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, "no chunk %s in the serving snapshot", r.PathValue("hash"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	//lint:ignore errdrop a failed response write surfaces follower-side as a short read and is retried there
	_, _ = w.Write(data)
}

// noteSyncError records one failed poll or transfer for /healthz and the
// error counter; quarantine marks transfers that were discarded after the
// manifest was obtained (corrupt bytes, bad decode, row drift).
func (s *Server) noteSyncError(err error, quarantine bool) {
	s.metrics.replFetchErrors.Add(1)
	if quarantine {
		s.metrics.replQuarantined.Add(1)
	}
	s.stateMu.Lock()
	s.repl.lastErr = err.Error()
	s.repl.lastErrAt = time.Now()
	if quarantine {
		s.repl.quarantined++
	}
	s.stateMu.Unlock()
}

// syncFromLeader polls the leader's manifest and, when it advertises a
// snapshot this follower is not serving, fetches, verifies, and swaps it
// in. Any failure leaves the current snapshot untouched. Returns the seq
// now serving and whether a new snapshot was installed.
func (s *Server) syncFromLeader(ctx context.Context) (uint64, bool, error) {
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ReplicaTimeout)
	defer cancel()

	m, err := s.fetcher.Manifest(ctx)
	if err != nil {
		s.noteSyncError(err, false)
		return s.servingSeq(), false, err
	}
	s.stateMu.Lock()
	s.repl.leaderSeq = m.Seq
	s.stateMu.Unlock()
	if cur := s.current(); cur != nil && cur.seq == m.Seq {
		s.stateMu.Lock()
		s.repl.lastSyncAt = time.Now()
		s.repl.lastErr = ""
		s.stateMu.Unlock()
		return m.Seq, false, nil
	}

	t0 := time.Now()
	s.metrics.replFetches.Add(1)
	p, err := s.fetcher.Fetch(ctx, m)
	if p != nil {
		s.metrics.replChunkRetries.Add(uint64(p.ChunkRetries))
	}
	if err != nil {
		// The transfer is quarantined wholesale: nothing fetched under this
		// manifest reaches the serving path.
		s.noteSyncError(err, true)
		return s.servingSeq(), false, err
	}
	snap, err := s.snapshotFromPayload(p, time.Since(t0))
	if err != nil {
		s.noteSyncError(err, true)
		return s.servingSeq(), false, err
	}
	s.metrics.replBytes.Add(uint64(p.Bytes))
	s.snap.Store(snap)
	s.stateMu.Lock()
	s.repl.lastSyncAt = time.Now()
	s.repl.lastErr = ""
	s.stateMu.Unlock()
	s.logger.Info("replica snapshot installed",
		obs.F("seq", snap.seq), obs.F("bytes", p.Bytes),
		obs.F("chunks", len(m.Chunks)), obs.F("chunk_retries", p.ChunkRetries),
		obs.F("fetch_ms", time.Since(t0).Round(time.Millisecond)))
	return snap.seq, true, nil
}

// snapshotFromPayload turns one verified transfer into a servable snapshot:
// the gazetteer and path network are reconstructed from the replicated
// relations, and the paths pipeline is trained from the replicated
// measurement sources (missing ones cost /path, exactly as on a degraded
// leader). Scenario relations arrive as data, so no local simulation runs.
func (s *Server) snapshotFromPayload(p *replicate.Payload, fetchTime time.Duration) (*snapshot, error) {
	g, err := core.FromRelations(p.DB, p.Manifest.AsOf)
	if err != nil {
		return nil, fmt.Errorf("server: reconstructing snapshot %d: %w", p.Manifest.Seq, err)
	}
	var pipeErr string
	pipe, err := paths.NewPipeline(g, p.Sources)
	if err != nil {
		pipe, pipeErr = nil, err.Error()
		s.logger.Warn("replica: paths pipeline unavailable", obs.F("err", err))
	}
	resultSize := s.cfg.CacheSize
	if resultSize < 0 {
		resultSize = 0
	}
	snap := &snapshot{
		g:         g,
		pipe:      pipe,
		pipeErr:   pipeErr,
		seq:       p.Manifest.Seq,
		builtAt:   p.Manifest.BuiltAt,
		buildTime: fetchTime,
		plans:     newLRU[*reldb.Stmt](max(s.cfg.CacheSize, 16)),
	}
	if resultSize > 0 {
		snap.results = newLRU[*sqlResult](resultSize)
	}
	return snap, nil
}

// servingSeq is the current snapshot's seq, or 0 before the first sync.
func (s *Server) servingSeq() uint64 {
	if snap := s.current(); snap != nil {
		return snap.seq
	}
	return 0
}

// replicaGauges samples the replication gauges for /metrics and /healthz.
func (s *Server) replicaGauges() replGauges {
	g := replGauges{role: s.Role()}
	s.stateMu.Lock()
	g.leaderSeq = s.repl.leaderSeq
	g.lastSyncAt = s.repl.lastSyncAt
	g.lastErr = s.repl.lastErr
	s.stateMu.Unlock()
	if g.role == RoleFollower {
		if snap := s.current(); snap != nil {
			g.lagS = time.Since(snap.builtAt).Seconds()
		} else {
			g.lagS = -1 // never synced; no data to measure lag against
		}
	}
	return g
}

// pollLeader is the follower's background sync loop: one poll per
// ReplicaPoll tick until ctx ends. Errors are already recorded by
// syncFromLeader; here they only rate-limit the log.
func (s *Server) pollLeader(ctx context.Context) {
	tick := time.NewTicker(s.cfg.ReplicaPoll)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if _, _, err := s.syncFromLeader(ctx); err != nil && ctx.Err() == nil {
				s.logger.Warn("replica sync failed; serving last good snapshot", obs.F("err", err))
			}
		}
	}
}
