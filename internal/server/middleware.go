package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sync/atomic"
	"time"

	"igdb/internal/obs"
)

// statusWriter records the response status and request ID for logs, metrics,
// and error bodies.
type statusWriter struct {
	http.ResponseWriter
	status int
	reqID  string
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

type ctxKey int

const requestIDKey ctxKey = 0

// RequestID returns the request's ID ("" when the middleware did not run).
func RequestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey).(string)
	return id
}

// reqCounter disambiguates request IDs generated in the same nanosecond.
var reqCounter atomic.Uint64

// newRequestID generates a process-unique request ID.
func newRequestID() string {
	return fmt.Sprintf("%x-%x", time.Now().UnixNano(), reqCounter.Add(1))
}

// maxRequestIDLen caps caller-provided X-Request-ID values so a hostile
// client cannot bloat logs.
const maxRequestIDLen = 128

// requestID accepts the caller's X-Request-ID (truncated to a sane length)
// or generates one, and echoes it on the response.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	if id == "" {
		id = newRequestID()
	}
	return id
}

// wrap applies the standard middleware stack to one endpoint: request-ID
// assignment, panic recovery, inflight accounting, the concurrency limiter
// (unless the endpoint is exempt, like /healthz and /metrics), a per-request
// timeout, metrics, and the structured access log.
func (s *Server) wrap(route string, limited bool, h http.HandlerFunc) http.Handler {
	rs := s.metrics.route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		reqID := requestID(r)
		w.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: w, reqID: reqID}
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, reqID))
		s.metrics.inflight.Add(1)
		defer func() {
			s.metrics.inflight.Add(-1)
			if rec := recover(); rec != nil {
				s.metrics.panics.Add(1)
				s.logger.Error("panic recovered",
					obs.F("method", r.Method), obs.F("path", r.URL.Path),
					obs.F("request_id", reqID), obs.F("panic", rec),
					obs.F("stack", string(debug.Stack())))
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			elapsed := time.Since(t0)
			s.metrics.observe(rs, status, elapsed)
			s.logger.Info("access",
				obs.F("method", r.Method), obs.F("path", r.URL.RequestURI()),
				obs.F("route", route), obs.F("status", status),
				obs.F("dur_ms", fmt.Sprintf("%.3f", float64(elapsed)/float64(time.Millisecond))),
				obs.F("remote", r.RemoteAddr), obs.F("request_id", reqID))
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)

		if limited {
			// Data routes need a snapshot; a follower that has never synced
			// has none yet. Control routes (/healthz, /metrics,
			// /admin/rebuild) stay up so the condition is observable and
			// fixable.
			if s.fetcher != nil && s.current() == nil {
				writeError(sw, http.StatusServiceUnavailable,
					"no snapshot yet: replication from %s has not succeeded", s.cfg.LeaderURL)
				return
			}
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			case <-ctx.Done():
				s.metrics.rejected.Add(1)
				writeError(sw, http.StatusServiceUnavailable, "server saturated")
				return
			}
		}
		h(sw, r)
	})
}

// routes wires every endpoint into the mux.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /sql", s.wrap("/sql", true, s.handleSQL))
	s.mux.Handle("GET /tables", s.wrap("/tables", true, s.handleTables))
	s.mux.Handle("GET /export/{layer}", s.wrap("/export", true, s.handleExport))
	s.mux.Handle("GET /footprint/{asn}", s.wrap("/footprint", true, s.handleFootprint))
	s.mux.Handle("GET /path", s.wrap("/path", true, s.handlePath))
	s.mux.Handle("POST /admin/rebuild", s.wrap("/admin/rebuild", false, s.handleRebuild))
	s.mux.Handle("GET /healthz", s.wrap("/healthz", false, s.handleHealthz))
	s.mux.Handle("GET /metrics", s.wrap("/metrics", false, s.handleMetrics))
	s.mux.Handle("GET /debug/queries", s.wrap("/debug/queries", false, s.handleQueryLog))
	s.mux.Handle("GET /debug/statements", s.wrap("/debug/statements", false, s.handleStatements))
	if s.cfg.Leader {
		// Replication traffic is exempt from the query limiter: a saturated
		// query tier must not starve followers into staleness.
		s.mux.Handle("GET /replica/manifest", s.wrap("/replica/manifest", false, s.handleReplicaManifest))
		s.mux.Handle("GET /replica/chunk/{hash}", s.wrap("/replica/chunk", false, s.handleReplicaChunk))
	}
	if s.cfg.EnablePprof {
		// The pprof handlers manage their own output; they bypass wrap so
		// profiles are not distorted by the request timeout.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}
