package server

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter records the response status for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// wrap applies the standard middleware stack to one endpoint: panic
// recovery, inflight accounting, the concurrency limiter (unless the
// endpoint is exempt, like /healthz and /metrics), a per-request timeout,
// metrics, and the access log.
func (s *Server) wrap(route string, limited bool, h http.HandlerFunc) http.Handler {
	rs := s.metrics.route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		s.metrics.inflight.Add(1)
		defer func() {
			s.metrics.inflight.Add(-1)
			if rec := recover(); rec != nil {
				s.metrics.panics.Add(1)
				s.cfg.Logf("igdb-serve: panic on %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			elapsed := time.Since(t0)
			s.metrics.observe(rs, status, elapsed)
			s.cfg.Logf(`igdb-serve: access method=%s path=%s status=%d dur_ms=%.3f remote=%s`,
				r.Method, r.URL.RequestURI(), status, float64(elapsed)/float64(time.Millisecond), r.RemoteAddr)
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)

		if limited {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			case <-ctx.Done():
				s.metrics.rejected.Add(1)
				writeError(sw, http.StatusServiceUnavailable, "server saturated")
				return
			}
		}
		h(sw, r)
	})
}

// routes wires every endpoint into the mux.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /sql", s.wrap("/sql", true, s.handleSQL))
	s.mux.Handle("GET /tables", s.wrap("/tables", true, s.handleTables))
	s.mux.Handle("GET /export/{layer}", s.wrap("/export", true, s.handleExport))
	s.mux.Handle("GET /footprint/{asn}", s.wrap("/footprint", true, s.handleFootprint))
	s.mux.Handle("GET /path", s.wrap("/path", true, s.handlePath))
	s.mux.Handle("POST /admin/rebuild", s.wrap("/admin/rebuild", false, s.handleRebuild))
	s.mux.Handle("GET /healthz", s.wrap("/healthz", false, s.handleHealthz))
	s.mux.Handle("GET /metrics", s.wrap("/metrics", false, s.handleMetrics))
}
