package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"igdb/internal/chaos"
)

// newLeaderPair starts a leader over httptest and a follower replicating
// from it through a chaos fault injector. The follower has completed its
// initial sync when this returns. replicaTimeout bounds one whole sync —
// keep it generous unless the test stalls a transfer, in which case the
// stall costs exactly this long.
func newLeaderPair(t *testing.T, replicaTimeout time.Duration) (leader, follower *Server, tr *chaos.Transport) {
	t.Helper()
	leader = newTestServer(t, Config{Leader: true})
	lsrv := httptest.NewServer(leader.Handler())
	t.Cleanup(lsrv.Close)

	tr = chaos.NewTransport(nil, 7)
	follower = newTestServer(t, Config{
		LeaderURL:      lsrv.URL,
		ReplicaClient:  &http.Client{Transport: tr},
		ReplicaTimeout: replicaTimeout,
	})
	if follower.SnapshotSeq() != leader.SnapshotSeq() {
		t.Fatalf("initial sync: follower seq %d, leader seq %d", follower.SnapshotSeq(), leader.SnapshotSeq())
	}
	return leader, follower, tr
}

func getHealth(t *testing.T, h http.Handler) healthReport {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d", rec.Code)
	}
	var rep healthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad /healthz body: %v", err)
	}
	return rep
}

func getMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	return rec.Body.String()
}

func TestReplicationFollowerServesLeaderSnapshot(t *testing.T) {
	leader, follower, _ := newLeaderPair(t, 30*time.Second)

	// The reference workload answers identically on both ends.
	lrec, lresp := postSQL(t, leader.Handler(), table2SQL)
	frec, fresp := postSQL(t, follower.Handler(), table2SQL)
	if lrec.Code != http.StatusOK || frec.Code != http.StatusOK {
		t.Fatalf("statuses: leader %d, follower %d", lrec.Code, frec.Code)
	}
	if lresp.RowCount != fresp.RowCount || len(lresp.Rows) != len(fresp.Rows) {
		t.Fatalf("row counts differ: leader %d, follower %d", lresp.RowCount, fresp.RowCount)
	}
	for i := range lresp.Rows {
		for j := range lresp.Rows[i] {
			if fmt.Sprint(lresp.Rows[i][j]) != fmt.Sprint(fresp.Rows[i][j]) {
				t.Fatalf("row %d col %d: leader %v, follower %v", i, j, lresp.Rows[i][j], fresp.Rows[i][j])
			}
		}
	}

	// The replicated measurement sources trained the paths pipeline.
	if rep := getHealth(t, follower.Handler()); rep.PathsPipeline != "ok" {
		t.Fatalf("follower paths pipeline = %q", rep.PathsPipeline)
	}

	// A leader rebuild propagates on the next poll.
	oldSeq := follower.SnapshotSeq()
	if _, _, err := leader.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, installed, err := follower.syncFromLeader(context.Background()); err != nil || !installed {
		t.Fatalf("sync after leader rebuild: installed=%v err=%v", installed, err)
	}
	if follower.SnapshotSeq() != leader.SnapshotSeq() || follower.SnapshotSeq() == oldSeq {
		t.Fatalf("follower seq %d, leader seq %d (was %d)", follower.SnapshotSeq(), leader.SnapshotSeq(), oldSeq)
	}

	// An up-to-date poll is a no-op, not an error.
	if _, installed, err := follower.syncFromLeader(context.Background()); err != nil || installed {
		t.Fatalf("up-to-date poll: installed=%v err=%v", installed, err)
	}
}

func TestReplicationHealthzFields(t *testing.T) {
	leader, follower, _ := newLeaderPair(t, 30*time.Second)

	if rep := getHealth(t, leader.Handler()); rep.Role != string(RoleLeader) || rep.LeaderURL != "" {
		t.Fatalf("leader healthz role = %q leader_url = %q", rep.Role, rep.LeaderURL)
	}
	standalone := newTestServer(t, Config{})
	if rep := getHealth(t, standalone.Handler()); rep.Role != string(RoleStandalone) {
		t.Fatalf("standalone healthz role = %q", rep.Role)
	}

	rep := getHealth(t, follower.Handler())
	if rep.Role != string(RoleFollower) {
		t.Fatalf("follower healthz role = %q", rep.Role)
	}
	if rep.LeaderURL == "" || rep.LeaderSeq != leader.SnapshotSeq() {
		t.Fatalf("follower healthz leader_url = %q leader_seq = %d (leader at %d)",
			rep.LeaderURL, rep.LeaderSeq, leader.SnapshotSeq())
	}
	if rep.ReplicaLagS < 0 {
		t.Fatalf("replica_lag_s = %g after a successful sync", rep.ReplicaLagS)
	}
	if rep.LastFetchErr != "" || rep.LastFetchUnix == 0 {
		t.Fatalf("after success: last_fetch_error=%q last_fetch_unix=%d", rep.LastFetchErr, rep.LastFetchUnix)
	}

	m := getMetrics(t, follower.Handler())
	for _, want := range []string{
		"igdb_replica_role 2",
		"igdb_replica_fetches_total 1",
		"igdb_replica_fetch_errors_total 0",
		"igdb_replica_quarantined_total 0",
		"igdb_replica_lag_seconds",
		"igdb_replica_leader_seq",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("follower /metrics missing %q", want)
		}
	}
	if m := getMetrics(t, leader.Handler()); !strings.Contains(m, "igdb_replica_role 1") {
		t.Error("leader /metrics missing igdb_replica_role 1")
	}
}

// TestReplicationChaosMatrix is the acceptance matrix: for every transport
// fault, a follower never serves a partial or corrupt snapshot, /healthz
// names the fault, queries keep succeeding against the last good snapshot,
// and clearing the fault recovers on the next sync.
func TestReplicationChaosMatrix(t *testing.T) {
	// 2s is what one stalled transfer costs the matrix; every healthy sync
	// finishes far inside it.
	leader, follower, tr := newLeaderPair(t, 2*time.Second)

	cases := []struct {
		name    string
		inject  func()
		errName string // substring /healthz must surface for this fault
	}{
		{"truncate", func() {
			// Three one-shot faults cover the fetcher's three attempts.
			tr.Inject(chaos.TruncateBody("/replica/chunk/"),
				chaos.TruncateBody("/replica/chunk/"),
				chaos.TruncateBody("/replica/chunk/"))
		}, "unexpected EOF"},
		{"flip", func() {
			tr.Inject(chaos.FlipBody("/replica/chunk/", 4),
				chaos.FlipBody("/replica/chunk/", 4),
				chaos.FlipBody("/replica/chunk/", 4))
		}, "checksum mismatch"},
		{"stall", func() {
			tr.Inject(chaos.Stall("/replica/manifest"))
		}, "context deadline exceeded"},
		{"drop", func() {
			tr.Inject(chaos.DropConn("/replica/chunk/"),
				chaos.DropConn("/replica/chunk/"),
				chaos.DropConn("/replica/chunk/"))
		}, "connection reset"},
		{"down", func() {
			tr.SetDown(true)
		}, "connection refused"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			goodSeq := follower.SnapshotSeq()
			// The leader moves ahead, so the follower has something to fetch.
			if _, _, err := leader.Rebuild(); err != nil {
				t.Fatal(err)
			}
			tc.inject()

			if _, installed, err := follower.syncFromLeader(context.Background()); err == nil || installed {
				t.Fatalf("faulted sync: installed=%v err=%v", installed, err)
			}
			// Quarantine: the follower still serves the last good snapshot.
			if got := follower.SnapshotSeq(); got != goodSeq {
				t.Fatalf("follower moved to seq %d under fault %s", got, tc.name)
			}
			rec, resp := postSQL(t, follower.Handler(), table2SQL)
			if rec.Code != http.StatusOK || resp.SnapshotSeq != goodSeq {
				t.Fatalf("query under fault: status=%d seq=%d want %d", rec.Code, resp.SnapshotSeq, goodSeq)
			}
			// /healthz names the fault.
			rep := getHealth(t, follower.Handler())
			if rep.Status != "degraded" || !strings.Contains(rep.LastFetchErr, tc.errName) {
				t.Fatalf("healthz status=%q last_fetch_error=%q, want degraded naming %q",
					rep.Status, rep.LastFetchErr, tc.errName)
			}

			// Fault cleared: the next sync installs the leader's snapshot.
			tr.Clear()
			if _, installed, err := follower.syncFromLeader(context.Background()); err != nil || !installed {
				t.Fatalf("recovery sync: installed=%v err=%v", installed, err)
			}
			if follower.SnapshotSeq() != leader.SnapshotSeq() {
				t.Fatalf("after recovery: follower %d, leader %d", follower.SnapshotSeq(), leader.SnapshotSeq())
			}
			if rep := getHealth(t, follower.Handler()); rep.LastFetchErr != "" {
				t.Fatalf("last_fetch_error=%q after recovery", rep.LastFetchErr)
			}
		})
	}

	// The matrix left its marks in the counters.
	m := getMetrics(t, follower.Handler())
	if !strings.Contains(m, "igdb_replica_quarantined_total") || strings.Contains(m, "igdb_replica_quarantined_total 0\n") {
		t.Error("quarantine counter did not move across the matrix")
	}
	if strings.Contains(m, "igdb_replica_chunk_retries_total 0\n") {
		t.Error("chunk retry counter did not move across the matrix")
	}
}

// TestReplicationFailover kills the leader mid-fetch while queries hammer
// the follower: the follower must keep answering from its last good
// snapshot through the outage and catch up when the leader returns.
func TestReplicationFailover(t *testing.T) {
	leader, follower, tr := newLeaderPair(t, 30*time.Second)
	goodSeq := follower.SnapshotSeq()

	// Query load for the whole scenario; any non-200 is a failover failure.
	var failures atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("POST", "/sql", strings.NewReader(table2SQL))
				rec := httptest.NewRecorder()
				follower.Handler().ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					failures.Add(1)
				}
				// Yield so the sync under test is not starved on small
				// GOMAXPROCS; the CI box has a single core.
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// The leader publishes a new snapshot, then dies mid-transfer: the
	// first chunk requests are reset, and every request after that is
	// refused outright.
	if _, _, err := leader.Rebuild(); err != nil {
		t.Fatal(err)
	}
	tr.Inject(chaos.DropConn("/replica/chunk/"), chaos.DropConn("/replica/chunk/"), chaos.DropConn("/replica/chunk/"))
	tr.SetDown(true)
	if _, installed, err := follower.syncFromLeader(context.Background()); err == nil || installed {
		t.Fatalf("mid-fetch kill: installed=%v err=%v", installed, err)
	}
	// Repeated polls against the dead leader change nothing.
	for i := 0; i < 3; i++ {
		if _, _, err := follower.syncFromLeader(context.Background()); err == nil {
			t.Fatal("poll against dead leader succeeded")
		}
	}
	if follower.SnapshotSeq() != goodSeq {
		t.Fatalf("follower abandoned its snapshot during the outage (seq %d)", follower.SnapshotSeq())
	}

	// Leader returns; the follower catches up.
	tr.Clear()
	if _, installed, err := follower.syncFromLeader(context.Background()); err != nil || !installed {
		t.Fatalf("catch-up sync: installed=%v err=%v", installed, err)
	}
	if follower.SnapshotSeq() != leader.SnapshotSeq() {
		t.Fatalf("follower %d, leader %d after recovery", follower.SnapshotSeq(), leader.SnapshotSeq())
	}

	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d queries failed during failover; the follower must keep serving", n)
	}
}

// TestReplicationFollowerStartsWithDeadLeader: a follower whose leader is
// down at startup still constructs, serves 503 on data routes with a clear
// body, reports "syncing", and starts serving after the first good sync.
func TestReplicationFollowerStartsWithDeadLeader(t *testing.T) {
	leader := newTestServer(t, Config{Leader: true})
	lsrv := httptest.NewServer(leader.Handler())
	t.Cleanup(lsrv.Close)

	tr := chaos.NewTransport(nil, 7)
	tr.SetDown(true)
	follower := newTestServer(t, Config{
		LeaderURL:      lsrv.URL,
		ReplicaClient:  &http.Client{Transport: tr},
		ReplicaTimeout: 30 * time.Second,
	})
	if follower.SnapshotSeq() != 0 {
		t.Fatalf("seq = %d with a dead leader", follower.SnapshotSeq())
	}
	rec, _ := postSQL(t, follower.Handler(), table2SQL)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("data route status = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "no snapshot yet") {
		t.Fatalf("503 body does not explain: %s", rec.Body.String())
	}
	rep := getHealth(t, follower.Handler())
	if rep.Status != "syncing" || rep.LastFetchErr == "" || rep.ReplicaLagS != -1 {
		t.Fatalf("healthz = %+v, want syncing with an error and lag -1", rep)
	}

	tr.SetDown(false)
	if _, installed, err := follower.syncFromLeader(context.Background()); err != nil || !installed {
		t.Fatalf("first good sync: installed=%v err=%v", installed, err)
	}
	if rec, resp := postSQL(t, follower.Handler(), table2SQL); rec.Code != http.StatusOK || resp.RowCount == 0 {
		t.Fatalf("follower not serving after first sync: %d", rec.Code)
	}
}

// TestReplicaEndpointsOnLeader covers the wire surface directly: manifest
// content type, chunk round-trip, 404 for unknown hashes, and absence of
// the endpoints on non-leaders.
func TestReplicaEndpointsOnLeader(t *testing.T) {
	leader := newTestServer(t, Config{Leader: true})
	h := leader.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/replica/manifest", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("manifest: status=%d type=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var m struct {
		Chunks []struct {
			SHA256 string `json:"sha256"`
			Bytes  int    `json:"bytes"`
		} `json:"chunks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil || len(m.Chunks) == 0 {
		t.Fatalf("bad manifest: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/replica/chunk/"+m.Chunks[0].SHA256, nil))
	if rec.Code != http.StatusOK || rec.Body.Len() != m.Chunks[0].Bytes {
		t.Fatalf("chunk: status=%d len=%d want %d", rec.Code, rec.Body.Len(), m.Chunks[0].Bytes)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/replica/chunk/"+strings.Repeat("ab", 32), nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown chunk status = %d, want 404", rec.Code)
	}

	standalone := newTestServer(t, Config{})
	rec = httptest.NewRecorder()
	standalone.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/replica/manifest", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("standalone serves /replica/manifest (status %d)", rec.Code)
	}
}

// TestSlowLorisConnectionReaped: the listener must drop a client that
// sends headers and then goes silent, instead of pinning the connection
// until the heat death of the accept loop.
func TestSlowLorisConnectionReaped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{
		Addr:              addr,
		ReadHeaderTimeout: 150 * time.Millisecond,
		ReadTimeout:       300 * time.Millisecond,
		IdleTimeout:       time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()

	// Wait for the listener to come up.
	var conn net.Conn
	for i := 0; i < 100; i++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never listened on %s: %v", addr, err)
	}

	// A partial request that never finishes its headers.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: igdb\r\nX-Slow:")); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	buf := make([]byte, 512)
	for {
		// The server must close the connection (read returns EOF or a
		// 408); our read deadline failing instead means it never did.
		_, rerr := conn.Read(buf)
		if rerr != nil {
			if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
				t.Fatal("connection still open 3s after headers stalled; ReadHeaderTimeout not enforced")
			}
			break
		}
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("slow-loris connection survived %v", elapsed)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	// The server itself is unharmed: a well-formed request still works.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after slow-loris: %d", resp.StatusCode)
	}

	cancel()
	if err := <-runDone; err != nil && err != http.ErrServerClosed && ctx.Err() == nil {
		t.Fatal(err)
	}
}
