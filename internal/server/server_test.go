package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"igdb/internal/ingest"
	"igdb/internal/worldgen"
)

// table2SQL is the paper's Table 2 analysis (ASes with physical presence in
// the most countries) — the reference workload for the serving layer.
const table2SQL = `
	SELECT l.asn, MIN(n.asn_name) AS name, MIN(o.organization) AS org,
	       COUNT(DISTINCT l.country) AS countries
	FROM asn_loc l
	JOIN asn_name n ON n.asn = l.asn AND n.source = 'asrank'
	JOIN asn_org o ON o.asn = l.asn AND o.source = 'asrank'
	GROUP BY l.asn
	ORDER BY countries DESC, l.asn ASC
	LIMIT 11`

var (
	testOnce  sync.Once
	testStore *ingest.Store
)

// sharedStore builds one small-world snapshot store for the whole package.
func sharedStore(t testing.TB) *ingest.Store {
	t.Helper()
	testOnce.Do(func() {
		w := worldgen.Generate(worldgen.SmallConfig())
		store := ingest.NewStore("")
		if err := ingest.Collect(w, store, time.Unix(1780000000, 0).UTC()); err != nil {
			panic(err)
		}
		testStore = store
	})
	return testStore
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = sharedStore(t)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {} // keep test output quiet
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postSQL(t testing.TB, h http.Handler, sql string) (*httptest.ResponseRecorder, sqlResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", "/sql", strings.NewReader(sql))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp sqlResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad /sql response: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, resp
}

func TestSQLEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec, resp := postSQL(t, h, table2SQL)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.RowCount == 0 || len(resp.Rows) == 0 {
		t.Fatalf("Table 2 query returned no rows: %s", rec.Body.String())
	}
	if got := resp.Columns; len(got) != 4 || got[3] != "countries" {
		t.Fatalf("columns = %v", got)
	}
	if resp.Cached {
		t.Fatal("first execution should not be cached")
	}

	// Identical statement (different whitespace) must hit the result cache.
	rec2, resp2 := postSQL(t, h, "  "+strings.Join(strings.Fields(table2SQL), "  "))
	if rec2.Code != http.StatusOK || !resp2.Cached {
		t.Fatalf("second execution: status=%d cached=%v", rec2.Code, resp2.Cached)
	}
	if resp2.RowCount != resp.RowCount {
		t.Fatalf("cached row count %d != %d", resp2.RowCount, resp.RowCount)
	}

	// JSON request body form.
	body, _ := json.Marshal(map[string]string{"sql": `SELECT COUNT(*) FROM phys_nodes`})
	req := httptest.NewRequest("POST", "/sql", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req)
	if rec3.Code != http.StatusOK {
		t.Fatalf("JSON body: status = %d: %s", rec3.Code, rec3.Body.String())
	}
}

func TestSQLRejectsWrites(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	for _, sql := range []string{
		`INSERT INTO phys_nodes VALUES ('x','y','z','s','US',0,0,'me','now')`,
		`CREATE TABLE evil (a INTEGER)`,
		`DELETE FROM asn_loc`,
		`UPDATE asn_name SET asn_name = 'pwned'`,
		`DROP TABLE asn_loc`,
		`CREATE INDEX ON asn_loc (asn)`,
	} {
		rec, _ := postSQL(t, h, sql)
		if rec.Code != http.StatusForbidden {
			t.Errorf("%q: status = %d, want 403 (%s)", sql, rec.Code, rec.Body.String())
		}
	}
	// Malformed SQL is a client error, not a forbidden statement.
	rec, _ := postSQL(t, h, `SELEKT 1`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed SQL: status = %d, want 400", rec.Code)
	}
	rec, _ = postSQL(t, h, ``)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty SQL: status = %d, want 400", rec.Code)
	}
}

// TestConcurrentSQL runs >= 8 in-flight clients against /sql under -race.
func TestConcurrentSQL(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	const clients, perClient = 10, 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				sql := table2SQL
				if c%2 == 1 {
					// Half the clients bypass the result cache with distinct
					// statements, exercising plan building concurrently.
					sql = fmt.Sprintf(`SELECT COUNT(*) FROM phys_nodes WHERE latitude > %d`, i%5)
				}
				rec, resp := postSQL(t, h, sql)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s", c, rec.Code, rec.Body.String())
					return
				}
				if len(resp.Rows) == 0 {
					errs <- fmt.Errorf("client %d: empty result", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRebuildNeverBlocksReaders queries continuously while a rebuild swaps
// the snapshot; every read must succeed, before and after the swap.
func TestRebuildNeverBlocksReaders(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	startSeq := s.SnapshotSeq()

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var reads atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec, resp := postSQL(t, h, table2SQL)
				if rec.Code != http.StatusOK || len(resp.Rows) == 0 {
					errs <- fmt.Errorf("reader %d: status=%d body=%s", c, rec.Code, rec.Body.String())
					return
				}
				reads.Add(1)
			}
		}(c)
	}

	waitForReads := func(min int64) {
		deadline := time.Now().Add(30 * time.Second)
		for reads.Load() < min && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if reads.Load() < min {
			t.Fatalf("readers stalled at %d reads", reads.Load())
		}
	}
	// Make sure reads are flowing against the old snapshot, then trigger
	// the rebuild over HTTP while readers keep hammering it.
	waitForReads(1)
	req := httptest.NewRequest("POST", "/admin/rebuild", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("rebuild status = %d: %s", rec.Code, rec.Body.String())
	}
	// Readers must keep succeeding against the swapped-in snapshot.
	waitForReads(reads.Load() + 8)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.SnapshotSeq(); got != startSeq+1 {
		t.Fatalf("snapshot seq = %d, want %d", got, startSeq+1)
	}
	if reads.Load() == 0 {
		t.Fatal("no reads completed during the rebuild")
	}

	// The swap invalidated the result cache: the first post-swap execution
	// of the same SQL reports cached=false with the new snapshot seq.
	_, resp := postSQL(t, h, table2SQL)
	if resp.SnapshotSeq != startSeq+1 {
		t.Fatalf("post-swap snapshot seq = %d", resp.SnapshotSeq)
	}
}

func TestTablesEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/tables", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp struct {
		Tables []struct {
			Name string `json:"name"`
			Rows int    `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, tb := range resp.Tables {
		byName[tb.Name] = tb.Rows
	}
	for _, want := range []string{"phys_nodes", "asn_loc", "std_paths", "city_points"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing table %s in %v", want, byName)
		}
	}
	if byName["phys_nodes"] == 0 {
		t.Error("phys_nodes is empty")
	}
}

func TestExportEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/export/phys_nodes", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/geo+json" {
		t.Fatalf("content-type = %q", ct)
	}
	var doc struct {
		Type     string            `json:"type"`
		Features []json.RawMessage `json:"features"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid GeoJSON: %v", err)
	}
	if doc.Type != "FeatureCollection" || len(doc.Features) == 0 {
		t.Fatalf("empty export: type=%s features=%d", doc.Type, len(doc.Features))
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/export/no_such_layer", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown layer status = %d", rec.Code)
	}
}

func TestFootprintEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	// Find an AS that actually has declared locations.
	_, resp := postSQL(t, h, `SELECT asn, COUNT(DISTINCT country) FROM asn_loc GROUP BY asn ORDER BY 2 DESC LIMIT 1`)
	if len(resp.Rows) == 0 {
		t.Fatal("no located ASes in the test world")
	}
	asn := int(resp.Rows[0][0].(float64))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/footprint/%d", asn), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var fp struct {
		ASN       int `json:"asn"`
		Countries int `json:"countries"`
		Metros    []struct {
			Metro   string  `json:"metro"`
			Country string  `json:"country"`
			Lon     float64 `json:"lon"`
			Lat     float64 `json:"lat"`
		} `json:"metros"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &fp); err != nil {
		t.Fatal(err)
	}
	if fp.ASN != asn || fp.Countries == 0 || len(fp.Metros) == 0 {
		t.Fatalf("footprint = %+v", fp)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/footprint/not-a-number", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad ASN status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/footprint/999999999", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown ASN status = %d", rec.Code)
	}
}

func TestPathEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	// Pick a connected std_paths pair straight from the database.
	_, resp := postSQL(t, h, `SELECT from_metro, from_country, to_metro, to_country FROM std_paths LIMIT 1`)
	if len(resp.Rows) == 0 {
		t.Skip("test world inferred no standard paths")
	}
	src := fmt.Sprintf("%s-%s", resp.Rows[0][0], resp.Rows[0][1])
	dst := fmt.Sprintf("%s-%s", resp.Rows[0][2], resp.Rows[0][3])
	q := url.Values{"src": {src}, "dst": {dst}}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/path?"+q.Encode(), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var doc struct {
		Features []struct {
			Geometry struct {
				Type        string      `json:"type"`
				Coordinates [][]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]interface{} `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid GeoJSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Features) != 1 || doc.Features[0].Geometry.Type != "LineString" {
		t.Fatalf("bad path document: %s", rec.Body.String())
	}
	if len(doc.Features[0].Geometry.Coordinates) < 2 {
		t.Fatal("degenerate route geometry")
	}
	if km, _ := doc.Features[0].Properties["km"].(float64); km <= 0 {
		t.Fatalf("route km = %v", doc.Features[0].Properties["km"])
	}

	q2 := url.Values{"src": {"Nowhere-XX"}, "dst": {dst}}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/path?"+q2.Encode(), nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown metro status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/path", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing params status = %d", rec.Code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	// Generate traffic: hits, misses, one forbidden write.
	postSQL(t, h, table2SQL)
	postSQL(t, h, table2SQL)
	postSQL(t, h, `DELETE FROM asn_loc`)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`igdb_requests_total{route="/sql"} 3`,
		`igdb_request_errors_total{route="/sql"} 1`,
		`igdb_request_duration_ms_bucket{le="+Inf"}`,
		`igdb_result_cache_hits_total 1`,
		`igdb_result_cache_hit_rate 0.5`,
		`igdb_snapshot_seq 1`,
		`igdb_snapshot_age_seconds`,
		`igdb_snapshot_build_seconds`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestResultCacheDisabled(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: -1})
	h := s.Handler()
	_, r1 := postSQL(t, h, `SELECT COUNT(*) FROM asn_name`)
	_, r2 := postSQL(t, h, `SELECT COUNT(*) FROM asn_name`)
	if r1.Cached || r2.Cached {
		t.Fatal("result cache should be disabled")
	}
	// Plans are still cached even without the result cache.
	if s.Metrics().planHits.Load() == 0 {
		t.Fatal("plan cache saw no hits")
	}
}

func TestMaxResultRowsTruncation(t *testing.T) {
	s := newTestServer(t, Config{MaxResultRows: 3})
	_, resp := postSQL(t, s.Handler(), `SELECT metro FROM asn_loc`)
	if !resp.Truncated || len(resp.Rows) != 3 || resp.RowCount <= 3 {
		t.Fatalf("truncation: rows=%d row_count=%d truncated=%v", len(resp.Rows), resp.RowCount, resp.Truncated)
	}
}

// TestPanicRecovery exercises the middleware with a handler that panics; no
// database build needed.
func TestPanicRecovery(t *testing.T) {
	s := &Server{
		cfg:     Config{RequestTimeout: time.Second, Logf: func(string, ...interface{}) {}},
		metrics: newMetrics(),
		sem:     make(chan struct{}, 1),
	}
	h := s.wrap("/boom", true, func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if s.metrics.panics.Load() != 1 {
		t.Fatal("panic not counted")
	}
	// The limiter slot must have been released.
	select {
	case s.sem <- struct{}{}:
	default:
		t.Fatal("semaphore slot leaked after panic")
	}
}

// TestLimiterSaturation: with one slot held and a tiny deadline, a second
// request is rejected with 503 instead of queueing forever.
func TestLimiterSaturation(t *testing.T) {
	s := &Server{
		cfg:     Config{RequestTimeout: 20 * time.Millisecond, Logf: func(string, ...interface{}) {}},
		metrics: newMetrics(),
		sem:     make(chan struct{}, 1),
	}
	release := make(chan struct{})
	h := s.wrap("/slow", true, func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	})
	done := make(chan struct{})
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
		close(done)
	}()
	// Wait until the first request holds the slot.
	for i := 0; len(s.sem) == 0 && i < 100; i++ {
		time.Sleep(time.Millisecond)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, want 503", rec.Code)
	}
	if s.metrics.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}
	close(release)
	<-done
}

func TestLRUCache(t *testing.T) {
	c := newLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive")
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatal("refresh failed")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestNormalizeSQL(t *testing.T) {
	a := normalizeSQL("SELECT  *\n\tFROM t ;")
	b := normalizeSQL("SELECT * FROM t")
	if a != b {
		t.Fatalf("%q != %q", a, b)
	}
	// Distinct literals must never share a cache key.
	if normalizeSQL("SELECT 'A  B'") == normalizeSQL("SELECT 'A B'") {
		t.Fatal("whitespace inside string literals must be preserved")
	}
	if got := normalizeSQL("SELECT name FROM t WHERE x = 'a;  b' ;"); got != "SELECT name FROM t WHERE x = 'a;  b'" {
		t.Fatalf("normalizeSQL = %q", got)
	}
}
