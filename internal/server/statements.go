package server

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// defaultStmtStatsSize bounds how many distinct fingerprints the aggregator
// tracks before new ones are counted only in aggregate.
const defaultStmtStatsSize = 512

// stmtStat aggregates every execution of one statement fingerprint.
type stmtStat struct {
	calls      uint64
	errors     uint64
	rows       uint64
	planHits   uint64
	resultHits uint64
	parseNs    uint64
	execNs     uint64
	totalNs    uint64
	maxNs      uint64
}

// stmtStats is the process-wide pg_stat_statements-style aggregator keyed
// by normalized fingerprint. It lives on the Server, not the snapshot, so
// statistics accumulate across snapshot swaps; the capacity bound keeps a
// hostile workload of unique statement shapes from growing the map without
// limit (executions past capacity are counted in dropped).
type stmtStats struct {
	mu      sync.Mutex
	m       map[string]*stmtStat // guarded by mu
	max     int
	dropped uint64 // guarded by mu; executions of fingerprints beyond capacity
}

func newStmtStats(max int) *stmtStats {
	if max <= 0 {
		max = defaultStmtStatsSize
	}
	return &stmtStats{m: make(map[string]*stmtStat), max: max}
}

// stmtSample is one /sql execution's contribution: the parse/exec split,
// result size, and which caches served it.
type stmtSample struct {
	parse     time.Duration
	exec      time.Duration
	total     time.Duration
	rows      int
	err       bool
	planHit   bool
	resultHit bool
}

func (ss *stmtStats) record(fp string, smpl stmtSample) {
	if fp == "" {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st, ok := ss.m[fp]
	if !ok {
		if len(ss.m) >= ss.max {
			ss.dropped++
			return
		}
		st = &stmtStat{}
		ss.m[fp] = st
	}
	st.calls++
	if smpl.err {
		st.errors++
	}
	st.rows += uint64(smpl.rows)
	if smpl.planHit {
		st.planHits++
	}
	if smpl.resultHit {
		st.resultHits++
	}
	st.parseNs += uint64(smpl.parse)
	st.execNs += uint64(smpl.exec)
	st.totalNs += uint64(smpl.total)
	if ns := uint64(smpl.total); ns > st.maxNs {
		st.maxNs = ns
	}
}

// stmtStatView is one fingerprint's aggregate as served by
// GET /debug/statements.
type stmtStatView struct {
	Fingerprint     string  `json:"fingerprint"`
	Calls           uint64  `json:"calls"`
	Errors          uint64  `json:"errors,omitempty"`
	Rows            uint64  `json:"rows"`
	TotalMs         float64 `json:"total_ms"`
	MeanMs          float64 `json:"mean_ms"`
	MaxMs           float64 `json:"max_ms"`
	ParseMs         float64 `json:"parse_ms"`
	ExecMs          float64 `json:"exec_ms"`
	PlanCacheHits   uint64  `json:"plan_cache_hits"`
	ResultCacheHits uint64  `json:"result_cache_hits"`
}

const nsPerMs = float64(time.Millisecond)

// snapshot returns every tracked fingerprint ordered by total time spent,
// costliest first (ties broken by fingerprint for determinism), plus the
// dropped-execution count.
func (ss *stmtStats) snapshot() ([]stmtStatView, uint64) {
	ss.mu.Lock()
	views := make([]stmtStatView, 0, len(ss.m))
	for fp, st := range ss.m {
		v := stmtStatView{
			Fingerprint:     fp,
			Calls:           st.calls,
			Errors:          st.errors,
			Rows:            st.rows,
			TotalMs:         float64(st.totalNs) / nsPerMs,
			MaxMs:           float64(st.maxNs) / nsPerMs,
			ParseMs:         float64(st.parseNs) / nsPerMs,
			ExecMs:          float64(st.execNs) / nsPerMs,
			PlanCacheHits:   st.planHits,
			ResultCacheHits: st.resultHits,
		}
		if st.calls > 0 {
			v.MeanMs = v.TotalMs / float64(st.calls)
		}
		views = append(views, v)
	}
	dropped := ss.dropped
	ss.mu.Unlock()
	sort.Slice(views, func(i, j int) bool {
		if views[i].TotalMs != views[j].TotalMs {
			return views[i].TotalMs > views[j].TotalMs
		}
		return views[i].Fingerprint < views[j].Fingerprint
	})
	return views, dropped
}

// stmtTotals are the aggregator-wide sums exposed on /metrics.
type stmtTotals struct {
	distinct int
	calls    uint64
	errors   uint64
	rows     uint64
	dropped  uint64
	parseNs  uint64
	execNs   uint64
}

func (ss *stmtStats) totals() stmtTotals {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	t := stmtTotals{distinct: len(ss.m), dropped: ss.dropped}
	for _, st := range ss.m {
		t.calls += st.calls
		t.errors += st.errors
		t.rows += st.rows
		t.parseNs += st.parseNs
		t.execNs += st.execNs
	}
	return t
}

// handleStatements serves GET /debug/statements: per-fingerprint statement
// statistics, costliest first. ?top=N truncates the list; entries link back
// to /debug/queries through the fingerprint field on slow-query entries.
func (s *Server) handleStatements(w http.ResponseWriter, r *http.Request) {
	views, dropped := s.stmts.snapshot()
	total := len(views)
	if top, err := strconv.Atoi(r.URL.Query().Get("top")); err == nil && top > 0 && top < len(views) {
		views = views[:top]
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":              total,
		"dropped_executions": dropped,
		"statements":         views,
	})
}
