package server

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

var sampleLineRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (-?[0-9.]+(e[+-][0-9]+)?|\+Inf|NaN)$`)

// metricBase strips histogram sample suffixes so _bucket/_sum/_count series
// resolve to their declared family name.
func metricBase(name string, histograms map[string]bool) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && histograms[base] {
			return base
		}
	}
	return name
}

// TestMetricsExposition lints the /metrics output: every exposed metric has
// exactly one HELP and one TYPE line, TYPE precedes the metric's samples,
// and every sample line is well-formed Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	// Touch several routes so per-route series exist.
	postSQL(t, h, table2SQL)
	postSQL(t, h, `DELETE FROM asn_loc`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	body := rec.Body.String()

	helpCount := map[string]int{}
	typeCount := map[string]int{}
	histograms := map[string]bool{}
	samplesSeen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[3] == "" {
				t.Errorf("HELP line without text: %q", line)
				continue
			}
			helpCount[parts[2]]++
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			name, typ := parts[2], parts[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("invalid TYPE %q in %q", typ, line)
			}
			if typ == "histogram" {
				histograms[name] = true
			}
			typeCount[name]++
			if samplesSeen[name] {
				t.Errorf("TYPE for %s appears after its samples", name)
			}
		case strings.HasPrefix(line, "#"):
			t.Errorf("unexpected comment line: %q", line)
		default:
			m := sampleLineRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("malformed sample line: %q", line)
				continue
			}
			samplesSeen[metricBase(m[1], histograms)] = true
		}
	}

	for name, n := range helpCount {
		if n != 1 {
			t.Errorf("metric %s has %d HELP lines, want 1", name, n)
		}
		if typeCount[name] != 1 {
			t.Errorf("metric %s has %d TYPE lines, want 1", name, typeCount[name])
		}
	}
	for name := range typeCount {
		if helpCount[name] != 1 {
			t.Errorf("metric %s has TYPE but %d HELP lines", name, helpCount[name])
		}
	}
	for name := range samplesSeen {
		if helpCount[name] == 0 {
			t.Errorf("metric %s has samples but no HELP/TYPE header", name)
		}
	}
	for _, name := range []string{
		"igdb_requests_total", "igdb_request_duration_ms", "igdb_slow_queries_total",
		"igdb_source_load_seconds", "igdb_source_rows", "igdb_build_stage_seconds",
		"igdb_collect_retries_total",
		"igdb_sql_statements", "igdb_sql_calls_total", "igdb_sql_errors_total",
		"igdb_sql_rows_total", "igdb_sql_parse_seconds_total",
		"igdb_sql_exec_seconds_total", "igdb_sql_dropped_total",
	} {
		if !samplesSeen[name] {
			t.Errorf("metric %s exposed no samples", name)
		}
	}
}

// TestMetricsPerRouteHistogram: each route gets its own histogram series
// alongside the unlabeled aggregate, and the aggregate equals the sum.
func TestMetricsPerRouteHistogram(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	postSQL(t, h, table2SQL)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	for _, want := range []string{
		`igdb_request_duration_ms_bucket{route="/sql",le="+Inf"} 1`,
		`igdb_request_duration_ms_bucket{route="/healthz",le="+Inf"} 1`,
		`igdb_request_duration_ms_count{route="/sql"} 1`,
		`igdb_request_duration_ms_sum{route="/sql"}`,
		`igdb_request_duration_ms_bucket{le="+Inf"} 2`, // aggregate: /sql + /healthz
		`igdb_request_duration_ms_count 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}
