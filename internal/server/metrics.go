package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in milliseconds. The +Inf
// bucket is implicit (the total count).
var latencyBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// routeStats are per-endpoint counters.
type routeStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
}

// Metrics aggregates the server's observability counters. All updates are
// lock-free atomics; the registry map is fixed at construction.
type Metrics struct {
	mu     sync.Mutex
	routes map[string]*routeStats

	latCounts []atomic.Uint64 // one per latencyBuckets entry
	latCount  atomic.Uint64
	latSumUs  atomic.Uint64 // total microseconds

	resultHits   atomic.Uint64
	resultMisses atomic.Uint64
	planHits     atomic.Uint64
	planMisses   atomic.Uint64

	rebuilds      atomic.Uint64
	rebuildErrors atomic.Uint64
	panics        atomic.Uint64
	rejected      atomic.Uint64 // limiter/timeout rejections (503/504)
	inflight      atomic.Int64
}

func newMetrics() *Metrics {
	return &Metrics{
		routes:    make(map[string]*routeStats),
		latCounts: make([]atomic.Uint64, len(latencyBuckets)),
	}
}

// route returns (registering on first use) the counters for an endpoint.
func (m *Metrics) route(name string) *routeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[name]
	if !ok {
		rs = &routeStats{}
		m.routes[name] = rs
	}
	return rs
}

// observe records one served request.
func (m *Metrics) observe(rs *routeStats, status int, elapsed time.Duration) {
	rs.requests.Add(1)
	if status >= 400 {
		rs.errors.Add(1)
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	for i, ub := range latencyBuckets {
		if ms <= ub {
			m.latCounts[i].Add(1)
		}
	}
	m.latCount.Add(1)
	m.latSumUs.Add(uint64(elapsed / time.Microsecond))
}

// resultHitRate returns hits/(hits+misses), or 0 before any lookup.
func (m *Metrics) resultHitRate() float64 {
	h, mi := m.resultHits.Load(), m.resultMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// snapGauges are the point-in-time gauges derived from the serving
// snapshot, sampled by the server at scrape time.
type snapGauges struct {
	seq         uint64
	age         time.Duration
	buildTime   time.Duration
	degraded    int // 1 when serving degraded (bad source, no pipeline, or failed rebuild)
	quarantined int // sources quarantined in the serving snapshot
}

// WriteTo renders the Prometheus text exposition format. Snapshot gauges
// (age, seq, build time, degradation) are passed in by the server at
// scrape time.
func (m *Metrics) WriteTo(w io.Writer, g snapGauges) {
	m.mu.Lock()
	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	stats := make([]*routeStats, len(names))
	for i, name := range names {
		stats[i] = m.routes[name]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP igdb_requests_total Requests served, by route.\n# TYPE igdb_requests_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "igdb_requests_total{route=%q} %d\n", name, stats[i].requests.Load())
	}
	fmt.Fprintf(w, "# HELP igdb_request_errors_total Responses with status >= 400, by route.\n# TYPE igdb_request_errors_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "igdb_request_errors_total{route=%q} %d\n", name, stats[i].errors.Load())
	}

	fmt.Fprintf(w, "# HELP igdb_request_duration_ms Request latency histogram (milliseconds).\n# TYPE igdb_request_duration_ms histogram\n")
	for i, ub := range latencyBuckets {
		fmt.Fprintf(w, "igdb_request_duration_ms_bucket{le=%q} %d\n",
			fmt.Sprintf("%g", ub), m.latCounts[i].Load())
	}
	fmt.Fprintf(w, "igdb_request_duration_ms_bucket{le=\"+Inf\"} %d\n", m.latCount.Load())
	fmt.Fprintf(w, "igdb_request_duration_ms_sum %g\n", float64(m.latSumUs.Load())/1000)
	fmt.Fprintf(w, "igdb_request_duration_ms_count %d\n", m.latCount.Load())

	fmt.Fprintf(w, "igdb_result_cache_hits_total %d\n", m.resultHits.Load())
	fmt.Fprintf(w, "igdb_result_cache_misses_total %d\n", m.resultMisses.Load())
	fmt.Fprintf(w, "igdb_result_cache_hit_rate %g\n", m.resultHitRate())
	fmt.Fprintf(w, "igdb_plan_cache_hits_total %d\n", m.planHits.Load())
	fmt.Fprintf(w, "igdb_plan_cache_misses_total %d\n", m.planMisses.Load())

	fmt.Fprintf(w, "igdb_rebuilds_total %d\n", m.rebuilds.Load())
	fmt.Fprintf(w, "igdb_rebuild_errors_total %d\n", m.rebuildErrors.Load())
	fmt.Fprintf(w, "igdb_panics_recovered_total %d\n", m.panics.Load())
	fmt.Fprintf(w, "igdb_requests_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "igdb_requests_inflight %d\n", m.inflight.Load())

	fmt.Fprintf(w, "igdb_snapshot_seq %d\n", g.seq)
	fmt.Fprintf(w, "igdb_snapshot_age_seconds %g\n", g.age.Seconds())
	fmt.Fprintf(w, "igdb_snapshot_build_seconds %g\n", g.buildTime.Seconds())
	fmt.Fprintf(w, "# HELP igdb_degraded 1 when the serving snapshot is degraded (quarantined source, missing paths pipeline, or failed rebuild).\n# TYPE igdb_degraded gauge\n")
	fmt.Fprintf(w, "igdb_degraded %d\n", g.degraded)
	fmt.Fprintf(w, "# HELP igdb_quarantined_sources Sources quarantined in the serving snapshot.\n# TYPE igdb_quarantined_sources gauge\n")
	fmt.Fprintf(w, "igdb_quarantined_sources %d\n", g.quarantined)
}
