package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"igdb/internal/core"
	"igdb/internal/obs"
)

// latencyBuckets are the histogram upper bounds in milliseconds. The +Inf
// bucket is implicit (the total count).
var latencyBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// routeStats are per-endpoint counters, including a per-route latency
// histogram alongside the server-wide aggregate one.
type routeStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400

	latCounts []atomic.Uint64 // one per latencyBuckets entry
	latCount  atomic.Uint64
	latSumUs  atomic.Uint64 // total microseconds
}

// Metrics aggregates the server's observability counters. All updates are
// lock-free atomics; the registry map is fixed at construction.
type Metrics struct {
	mu     sync.Mutex
	routes map[string]*routeStats // guarded by mu

	latCounts []atomic.Uint64 // aggregate histogram, one per latencyBuckets entry
	latCount  atomic.Uint64
	latSumUs  atomic.Uint64 // total microseconds

	resultHits   atomic.Uint64
	resultMisses atomic.Uint64
	planHits     atomic.Uint64
	planMisses   atomic.Uint64

	rebuilds      atomic.Uint64
	rebuildErrors atomic.Uint64

	replFetches      atomic.Uint64 // snapshot transfers attempted (manifest obtained)
	replFetchErrors  atomic.Uint64 // failed polls and failed transfers
	replQuarantined  atomic.Uint64 // transfers discarded before serving (corrupt/partial)
	replChunkRetries atomic.Uint64 // per-chunk retry sleeps across all transfers
	replBytes        atomic.Uint64 // verified chunk bytes installed
	simScenarios     atomic.Uint64 // what-if scenarios evaluated across all snapshots
	simErrors        atomic.Uint64 // snapshot simulation batches that failed
	panics           atomic.Uint64
	rejected         atomic.Uint64 // limiter/timeout rejections (503/504)
	slowQueries      atomic.Uint64 // /sql statements over the slow-query threshold
	inflight         atomic.Int64
}

func newMetrics() *Metrics {
	return &Metrics{
		routes:    make(map[string]*routeStats),
		latCounts: make([]atomic.Uint64, len(latencyBuckets)),
	}
}

// route returns (registering on first use) the counters for an endpoint.
func (m *Metrics) route(name string) *routeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[name]
	if !ok {
		rs = &routeStats{latCounts: make([]atomic.Uint64, len(latencyBuckets))}
		m.routes[name] = rs
	}
	return rs
}

// observe records one served request in the route's histogram and the
// aggregate one.
func (m *Metrics) observe(rs *routeStats, status int, elapsed time.Duration) {
	rs.requests.Add(1)
	if status >= 400 {
		rs.errors.Add(1)
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	us := uint64(elapsed / time.Microsecond)
	for i, ub := range latencyBuckets {
		if ms <= ub {
			m.latCounts[i].Add(1)
			rs.latCounts[i].Add(1)
		}
	}
	m.latCount.Add(1)
	m.latSumUs.Add(us)
	rs.latCount.Add(1)
	rs.latSumUs.Add(us)
}

// resultHitRate returns hits/(hits+misses), or 0 before any lookup.
func (m *Metrics) resultHitRate() float64 {
	h, mi := m.resultHits.Load(), m.resultMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// snapGauges are the point-in-time gauges derived from the serving
// snapshot, sampled by the server at scrape time.
type snapGauges struct {
	seq            uint64
	age            time.Duration
	buildTime      time.Duration
	degraded       int // 1 when serving degraded (bad source, no pipeline, or failed rebuild)
	quarantined    int // sources quarantined in the serving snapshot
	sources        []core.SourceStatus
	stages         []obs.StageTiming
	collectRetries uint64
	simScenarios   int           // scenarios simulated against the serving snapshot
	simTime        time.Duration // wall time of that simulation batch
	repl           replGauges    // replication role, lag, and leader seq
	stmt           stmtTotals    // statement-statistics aggregator sums
}

// replGauges is the point-in-time replication state sampled at scrape time.
type replGauges struct {
	role       Role
	leaderSeq  uint64
	lastSyncAt time.Time
	lastErr    string
	lagS       float64 // follower: seconds behind the leader's build; -1 before first sync
}

// num renders the role as a stable gauge value.
func (g replGauges) num() int {
	switch g.role {
	case RoleLeader:
		return 1
	case RoleFollower:
		return 2
	default:
		return 0
	}
}

// help emits the HELP/TYPE header for one metric. Every exposed metric name
// goes through here exactly once so the exposition stays lint-clean.
func help(w io.Writer, name, typ, text string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, text, name, typ)
}

// writeHistogram emits one histogram series; labels ("" for the aggregate)
// is the pre-rendered label prefix like `route="/sql",`.
func writeHistogram(w io.Writer, labels string, counts []atomic.Uint64, count, sumUs *atomic.Uint64) {
	for i, ub := range latencyBuckets {
		fmt.Fprintf(w, "igdb_request_duration_ms_bucket{%sle=%q} %d\n",
			labels, fmt.Sprintf("%g", ub), counts[i].Load())
	}
	fmt.Fprintf(w, "igdb_request_duration_ms_bucket{%sle=\"+Inf\"} %d\n", labels, count.Load())
	if labels == "" {
		fmt.Fprintf(w, "igdb_request_duration_ms_sum %g\n", float64(sumUs.Load())/1000)
		fmt.Fprintf(w, "igdb_request_duration_ms_count %d\n", count.Load())
		return
	}
	trimmed := labels[:len(labels)-1] // drop the trailing comma
	fmt.Fprintf(w, "igdb_request_duration_ms_sum{%s} %g\n", trimmed, float64(sumUs.Load())/1000)
	fmt.Fprintf(w, "igdb_request_duration_ms_count{%s} %d\n", trimmed, count.Load())
}

// WriteTo renders the Prometheus text exposition format. Snapshot gauges
// (age, seq, build time, degradation, per-source and per-stage timings) are
// passed in by the server at scrape time.
func (m *Metrics) WriteTo(w io.Writer, g snapGauges) {
	m.mu.Lock()
	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	stats := make([]*routeStats, len(names))
	for i, name := range names {
		stats[i] = m.routes[name]
	}
	m.mu.Unlock()

	help(w, "igdb_requests_total", "counter", "Requests served, by route.")
	for i, name := range names {
		fmt.Fprintf(w, "igdb_requests_total{route=%q} %d\n", name, stats[i].requests.Load())
	}
	help(w, "igdb_request_errors_total", "counter", "Responses with status >= 400, by route.")
	for i, name := range names {
		fmt.Fprintf(w, "igdb_request_errors_total{route=%q} %d\n", name, stats[i].errors.Load())
	}

	help(w, "igdb_request_duration_ms", "histogram",
		"Request latency histogram in milliseconds; unlabeled series is the all-routes aggregate.")
	writeHistogram(w, "", m.latCounts, &m.latCount, &m.latSumUs)
	for i, name := range names {
		labels := fmt.Sprintf("route=%q,", name)
		writeHistogram(w, labels, stats[i].latCounts, &stats[i].latCount, &stats[i].latSumUs)
	}

	help(w, "igdb_result_cache_hits_total", "counter", "Result-cache hits on POST /sql.")
	fmt.Fprintf(w, "igdb_result_cache_hits_total %d\n", m.resultHits.Load())
	help(w, "igdb_result_cache_misses_total", "counter", "Result-cache misses on POST /sql.")
	fmt.Fprintf(w, "igdb_result_cache_misses_total %d\n", m.resultMisses.Load())
	help(w, "igdb_result_cache_hit_rate", "gauge", "Result-cache hits / lookups since start.")
	fmt.Fprintf(w, "igdb_result_cache_hit_rate %g\n", m.resultHitRate())
	help(w, "igdb_plan_cache_hits_total", "counter", "Plan-cache hits on POST /sql.")
	fmt.Fprintf(w, "igdb_plan_cache_hits_total %d\n", m.planHits.Load())
	help(w, "igdb_plan_cache_misses_total", "counter", "Plan-cache misses on POST /sql.")
	fmt.Fprintf(w, "igdb_plan_cache_misses_total %d\n", m.planMisses.Load())

	help(w, "igdb_rebuilds_total", "counter", "Successful snapshot rebuilds.")
	fmt.Fprintf(w, "igdb_rebuilds_total %d\n", m.rebuilds.Load())
	help(w, "igdb_rebuild_errors_total", "counter", "Failed snapshot rebuild attempts.")
	fmt.Fprintf(w, "igdb_rebuild_errors_total %d\n", m.rebuildErrors.Load())
	help(w, "igdb_panics_recovered_total", "counter", "Handler panics recovered by middleware.")
	fmt.Fprintf(w, "igdb_panics_recovered_total %d\n", m.panics.Load())
	help(w, "igdb_requests_rejected_total", "counter", "Requests rejected by the limiter or deadline (503/504).")
	fmt.Fprintf(w, "igdb_requests_rejected_total %d\n", m.rejected.Load())
	help(w, "igdb_slow_queries_total", "counter", "POST /sql statements over the slow-query threshold.")
	fmt.Fprintf(w, "igdb_slow_queries_total %d\n", m.slowQueries.Load())
	help(w, "igdb_requests_inflight", "gauge", "Requests currently executing.")
	fmt.Fprintf(w, "igdb_requests_inflight %d\n", m.inflight.Load())

	help(w, "igdb_snapshot_seq", "gauge", "Sequence number of the serving snapshot.")
	fmt.Fprintf(w, "igdb_snapshot_seq %d\n", g.seq)
	help(w, "igdb_snapshot_age_seconds", "gauge", "Seconds since the serving snapshot was built.")
	fmt.Fprintf(w, "igdb_snapshot_age_seconds %g\n", g.age.Seconds())
	help(w, "igdb_snapshot_build_seconds", "gauge", "Wall time the serving snapshot took to build.")
	fmt.Fprintf(w, "igdb_snapshot_build_seconds %g\n", g.buildTime.Seconds())
	help(w, "igdb_degraded", "gauge", "1 when the serving snapshot is degraded (quarantined source, missing paths pipeline, or failed rebuild).")
	fmt.Fprintf(w, "igdb_degraded %d\n", g.degraded)
	help(w, "igdb_quarantined_sources", "gauge", "Sources quarantined in the serving snapshot.")
	fmt.Fprintf(w, "igdb_quarantined_sources %d\n", g.quarantined)

	help(w, "igdb_simulate_scenarios_total", "counter", "What-if failure scenarios evaluated across all snapshot simulations in this process.")
	fmt.Fprintf(w, "igdb_simulate_scenarios_total %d\n", m.simScenarios.Load())
	help(w, "igdb_simulate_errors_total", "counter", "Snapshot simulation batches that failed (snapshot served with empty scenario relations).")
	fmt.Fprintf(w, "igdb_simulate_errors_total %d\n", m.simErrors.Load())
	help(w, "igdb_simulate_snapshot_scenarios", "gauge", "Scenarios simulated against the serving snapshot.")
	fmt.Fprintf(w, "igdb_simulate_snapshot_scenarios %d\n", g.simScenarios)
	help(w, "igdb_simulate_snapshot_seconds", "gauge", "Wall time of the serving snapshot's simulation batch.")
	fmt.Fprintf(w, "igdb_simulate_snapshot_seconds %g\n", g.simTime.Seconds())

	help(w, "igdb_sql_statements", "gauge", "Distinct statement fingerprints tracked by the statement-statistics aggregator.")
	fmt.Fprintf(w, "igdb_sql_statements %d\n", g.stmt.distinct)
	help(w, "igdb_sql_calls_total", "counter", "POST /sql executions aggregated by statement fingerprint.")
	fmt.Fprintf(w, "igdb_sql_calls_total %d\n", g.stmt.calls)
	help(w, "igdb_sql_errors_total", "counter", "POST /sql executions that returned an error, across all fingerprints.")
	fmt.Fprintf(w, "igdb_sql_errors_total %d\n", g.stmt.errors)
	help(w, "igdb_sql_rows_total", "counter", "Result rows produced by POST /sql, across all fingerprints.")
	fmt.Fprintf(w, "igdb_sql_rows_total %d\n", g.stmt.rows)
	help(w, "igdb_sql_parse_seconds_total", "counter", "Wall time spent parsing and planning /sql statements (plan-cache misses only).")
	fmt.Fprintf(w, "igdb_sql_parse_seconds_total %g\n", float64(g.stmt.parseNs)/1e9)
	help(w, "igdb_sql_exec_seconds_total", "counter", "Wall time spent executing /sql statements.")
	fmt.Fprintf(w, "igdb_sql_exec_seconds_total %g\n", float64(g.stmt.execNs)/1e9)
	help(w, "igdb_sql_dropped_total", "counter", "Executions not attributed to a fingerprint because the statement table was at capacity.")
	fmt.Fprintf(w, "igdb_sql_dropped_total %d\n", g.stmt.dropped)

	help(w, "igdb_replica_role", "gauge", "Replication role: 0 standalone, 1 leader, 2 follower.")
	fmt.Fprintf(w, "igdb_replica_role %d\n", g.repl.num())
	help(w, "igdb_replica_fetches_total", "counter", "Snapshot transfers attempted by this follower.")
	fmt.Fprintf(w, "igdb_replica_fetches_total %d\n", m.replFetches.Load())
	help(w, "igdb_replica_fetch_errors_total", "counter", "Failed leader polls and failed snapshot transfers.")
	fmt.Fprintf(w, "igdb_replica_fetch_errors_total %d\n", m.replFetchErrors.Load())
	help(w, "igdb_replica_quarantined_total", "counter", "Snapshot transfers discarded before serving (corrupt, partial, or undecodable).")
	fmt.Fprintf(w, "igdb_replica_quarantined_total %d\n", m.replQuarantined.Load())
	help(w, "igdb_replica_chunk_retries_total", "counter", "Per-chunk fetch retries across all snapshot transfers.")
	fmt.Fprintf(w, "igdb_replica_chunk_retries_total %d\n", m.replChunkRetries.Load())
	help(w, "igdb_replica_bytes_total", "counter", "Verified chunk bytes installed by this follower.")
	fmt.Fprintf(w, "igdb_replica_bytes_total %d\n", m.replBytes.Load())
	help(w, "igdb_replica_lag_seconds", "gauge", "Follower: seconds between the leader building the serving snapshot and now; -1 before the first sync, 0 when not a follower.")
	fmt.Fprintf(w, "igdb_replica_lag_seconds %g\n", g.repl.lagS)
	help(w, "igdb_replica_leader_seq", "gauge", "Newest snapshot seq the leader has advertised to this follower.")
	fmt.Fprintf(w, "igdb_replica_leader_seq %d\n", g.repl.leaderSeq)

	help(w, "igdb_source_load_seconds", "gauge", "Per-source load wall time in the serving snapshot's build.")
	for _, st := range g.sources {
		fmt.Fprintf(w, "igdb_source_load_seconds{source=%q} %g\n", st.Source, st.LoadTime.Seconds())
	}
	help(w, "igdb_source_rows", "gauge", "Rows loaded per source in the serving snapshot's build.")
	for _, st := range g.sources {
		fmt.Fprintf(w, "igdb_source_rows{source=%q} %d\n", st.Source, st.RowsLoaded)
	}
	help(w, "igdb_build_stage_seconds", "gauge", "Wall time per top-level build stage in the serving snapshot's span trace.")
	for _, st := range g.stages {
		fmt.Fprintf(w, "igdb_build_stage_seconds{stage=%q} %g\n", st.Name, st.Seconds)
	}
	help(w, "igdb_collect_retries_total", "counter", "Ingest fetch retries across all collects in this process.")
	fmt.Fprintf(w, "igdb_collect_retries_total %d\n", g.collectRetries)
}
