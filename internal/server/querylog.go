package server

import (
	"net/http"
	"sync"
	"time"

	"igdb/internal/obs"
)

// QueryLogEntry is one recorded /sql statement that crossed the slow-query
// threshold (or any statement when the threshold is negative). Fingerprint
// links the entry to its aggregate under GET /debug/statements.
type QueryLogEntry struct {
	Time        time.Time   `json:"time"`
	RequestID   string      `json:"request_id,omitempty"`
	SQL         string      `json:"sql"`
	Fingerprint string      `json:"fingerprint,omitempty"`
	Rows        int         `json:"rows"`
	DurationMs  float64     `json:"duration_ms"`
	CacheHit    bool        `json:"cache_hit"`
	Err         string      `json:"error,omitempty"`
	Trace       []TraceSpan `json:"trace,omitempty"`
}

// TraceSpan is one executor span flattened for the slow-query log: where a
// slow statement actually spent its time (parse, exec, and — under EXPLAIN
// ANALYZE — each plan operator).
type TraceSpan struct {
	Name       string                 `json:"name"`
	Parent     string                 `json:"parent,omitempty"`
	StartMs    float64                `json:"start_ms"`
	DurationMs float64                `json:"duration_ms"`
	Attrs      map[string]interface{} `json:"attrs,omitempty"`
}

// traceFromSpan flattens a finished span tree into TraceSpan rows.
//
// perf: allocates intentionally — builds the retained trace payload, one
// attrs map per span that carries attributes.
func traceFromSpan(sp *obs.Span) []TraceSpan {
	infos := sp.Flatten()
	if len(infos) == 0 {
		return nil
	}
	out := make([]TraceSpan, len(infos))
	for i, in := range infos {
		ts := TraceSpan{
			Name:       in.Name,
			Parent:     in.Parent,
			StartMs:    in.StartMs,
			DurationMs: in.DurationMs,
		}
		if len(in.Attrs) > 0 {
			ts.Attrs = make(map[string]interface{}, len(in.Attrs))
			for _, f := range in.Attrs {
				ts.Attrs[f.Key] = f.Val
			}
		}
		out[i] = ts
	}
	return out
}

// queryLog is a fixed-capacity ring buffer of slow queries. Writers never
// block readers for long: add and entries both take one short mutex.
type queryLog struct {
	mu   sync.Mutex
	buf  []QueryLogEntry // guarded by mu
	next int             // guarded by mu; index the next entry lands on
	full bool            // guarded by mu
}

func newQueryLog(capacity int) *queryLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &queryLog{buf: make([]QueryLogEntry, capacity)}
}

func (q *queryLog) add(e QueryLogEntry) {
	q.mu.Lock()
	q.buf[q.next] = e
	q.next++
	if q.next == len(q.buf) {
		q.next = 0
		q.full = true
	}
	q.mu.Unlock()
}

// entries returns the recorded queries, newest first.
func (q *queryLog) entries() []QueryLogEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.next
	if q.full {
		n = len(q.buf)
	}
	out := make([]QueryLogEntry, 0, n)
	for i := 0; i < n; i++ {
		idx := q.next - 1 - i
		if idx < 0 {
			idx += len(q.buf)
		}
		out = append(out, q.buf[idx])
	}
	return out
}

// handleQueryLog serves GET /debug/queries: the slow-query ring buffer,
// newest first, plus the active threshold.
func (s *Server) handleQueryLog(w http.ResponseWriter, r *http.Request) {
	entries := s.qlog.entries()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"threshold_ms": float64(s.slowMin) / float64(time.Millisecond),
		"count":        len(entries),
		"queries":      entries,
	})
}
