package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// queryLogBody is the GET /debug/queries envelope.
type queryLogBody struct {
	ThresholdMs float64         `json:"threshold_ms"`
	Count       int             `json:"count"`
	Queries     []QueryLogEntry `json:"queries"`
}

func getQueryLog(t *testing.T, h http.Handler) queryLogBody {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/queries status = %d: %s", rec.Code, rec.Body.String())
	}
	var body queryLogBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body
}

func TestSlowQueryLogRecordsAll(t *testing.T) {
	// Negative threshold records every statement.
	s := newTestServer(t, Config{SlowQueryMin: -1})
	h := s.Handler()

	req := httptest.NewRequest("POST", "/sql", strings.NewReader(`SELECT COUNT(*) FROM asn_name`))
	req.Header.Set("X-Request-ID", "slow-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("sql status = %d", rec.Code)
	}

	body := getQueryLog(t, h)
	if body.ThresholdMs != 0 {
		t.Errorf("threshold_ms = %g, want 0 (record all)", body.ThresholdMs)
	}
	if body.Count != 1 || len(body.Queries) != 1 {
		t.Fatalf("query log count = %d, want 1", body.Count)
	}
	q := body.Queries[0]
	if q.SQL != `SELECT COUNT(*) FROM asn_name` {
		t.Errorf("logged sql = %q", q.SQL)
	}
	if q.RequestID != "slow-1" {
		t.Errorf("logged request_id = %q, want slow-1", q.RequestID)
	}
	if q.Rows != 1 || q.CacheHit || q.Err != "" {
		t.Errorf("entry = %+v, want rows=1 cache_hit=false err=''", q)
	}
	if q.DurationMs < 0 {
		t.Errorf("negative duration %g", q.DurationMs)
	}
	if s.Metrics().slowQueries.Load() != 1 {
		t.Errorf("igdb_slow_queries_total = %d, want 1", s.Metrics().slowQueries.Load())
	}

	// A repeat of the same statement is served from the result cache and
	// logged as a hit, newest first.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/sql", strings.NewReader(`SELECT COUNT(*) FROM asn_name`)))
	body = getQueryLog(t, h)
	if len(body.Queries) != 2 || !body.Queries[0].CacheHit {
		t.Fatalf("after repeat: count=%d newest cache_hit=%v, want 2/true", len(body.Queries), body.Queries[0].CacheHit)
	}

	// Errors are recorded too.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/sql", strings.NewReader(`DELETE FROM asn_name`)))
	body = getQueryLog(t, h)
	if body.Queries[0].Err == "" {
		t.Fatalf("rejected DML left no error in the query log: %+v", body.Queries[0])
	}
}

func TestSlowQueryLogThreshold(t *testing.T) {
	// With an hour-long threshold nothing in a test run qualifies.
	s := newTestServer(t, Config{SlowQueryMin: time.Hour})
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/sql", strings.NewReader(`SELECT COUNT(*) FROM asn_name`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("sql status = %d", rec.Code)
	}
	body := getQueryLog(t, h)
	if body.Count != 0 {
		t.Fatalf("query log recorded %d fast queries, want 0", body.Count)
	}
	if body.ThresholdMs != float64(time.Hour/time.Millisecond) {
		t.Errorf("threshold_ms = %g", body.ThresholdMs)
	}
	if s.Metrics().slowQueries.Load() != 0 {
		t.Errorf("igdb_slow_queries_total = %d, want 0", s.Metrics().slowQueries.Load())
	}
}

func TestQueryLogRingWraps(t *testing.T) {
	q := newQueryLog(3)
	for i := 0; i < 5; i++ {
		q.add(QueryLogEntry{Rows: i})
	}
	got := q.entries()
	if len(got) != 3 {
		t.Fatalf("entries = %d, want 3", len(got))
	}
	for i, want := range []int{4, 3, 2} { // newest first
		if got[i].Rows != want {
			t.Errorf("entries[%d].Rows = %d, want %d", i, got[i].Rows, want)
		}
	}
}
