package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"igdb/internal/geo"
	"igdb/internal/ingest"
	"igdb/internal/obs"
	"igdb/internal/reldb"
	"igdb/internal/render"
	"igdb/internal/wkt"
)

// maxSQLBody bounds the POST /sql request body.
const maxSQLBody = 1 << 20

// sqlResult is the cacheable part of a query response.
type sqlResult struct {
	Columns   []string        `json:"columns"`
	Rows      [][]interface{} `json:"rows"`
	RowCount  int             `json:"row_count"` // pre-truncation count
	Truncated bool            `json:"truncated,omitempty"`
}

// sqlResponse is the full POST /sql envelope. Plan is present only for
// EXPLAIN statements: the structured plan tree mirroring the text rows.
type sqlResponse struct {
	sqlResult
	Cached      bool            `json:"cached"`
	SnapshotSeq uint64          `json:"snapshot_seq"`
	ElapsedMs   float64         `json:"elapsed_ms"`
	Plan        *reldb.PlanNode `json:"plan,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	//lint:ignore errdrop a failed response write means the client went away; there is no one left to tell
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	// Handlers receive the middleware's statusWriter, so the request ID is
	// recoverable here without changing every handler signature.
	if sw, ok := w.(*statusWriter); ok && sw.reqID != "" {
		body["request_id"] = sw.reqID
	}
	writeJSON(w, status, body)
}

// readSQL extracts the statement from a raw-text or {"sql": "..."} body.
func readSQL(r *http.Request) (string, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSQLBody+1))
	if err != nil {
		return "", fmt.Errorf("reading body: %v", err)
	}
	if len(body) > maxSQLBody {
		return "", fmt.Errorf("statement exceeds %d bytes", maxSQLBody)
	}
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "{") {
		var req struct {
			SQL string `json:"sql"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("bad JSON body: %v", err)
		}
		trimmed = strings.TrimSpace(req.SQL)
	}
	if trimmed == "" {
		return "", fmt.Errorf("empty statement")
	}
	return trimmed, nil
}

// attachPlanSpans mirrors an EXPLAIN ANALYZE plan tree into the request's
// span tree so slow-query traces show parse → exec → per-operator stages.
// The executor records operator durations but not start offsets, so every
// operator span shares its stage's start instant.
func attachPlanSpans(parent *obs.Span, n *reldb.PlanNode, start time.Time) {
	if parent == nil || n == nil {
		return
	}
	var d time.Duration
	attrs := make([]obs.Field, 0, 4)
	if n.Table != "" {
		attrs = append(attrs, obs.F("table", n.Table))
	}
	if n.Actual != nil {
		d = time.Duration(n.Actual.TimeMs * float64(time.Millisecond))
		attrs = append(attrs,
			obs.F("rows_in", n.Actual.RowsIn),
			obs.F("rows_out", n.Actual.RowsOut),
			obs.F("loops", n.Actual.Loops))
	}
	child := parent.AddTimed("op:"+n.Op, start, d, attrs...)
	for _, c := range n.Children {
		attachPlanSpans(child, c, start)
	}
}

// handleSQL serves POST /sql: read-only SELECT (or EXPLAIN / EXPLAIN
// ANALYZE) against the current snapshot, with plan and result caching.
// DDL/DML is refused with 403 before touching the database. Every request
// contributes a sample to the per-fingerprint statement statistics.
//
// perf: hot path
func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	sp := obs.StartTrace("sql")
	var qSQL, qFP string
	var qRows int
	var qCached bool
	var qErr string
	var smpl stmtSample
	defer func() {
		sp.End()
		elapsed := time.Since(t0)
		if qFP != "" {
			smpl.total = elapsed
			smpl.rows = qRows
			smpl.err = qErr != ""
			smpl.resultHit = qCached
			s.stmts.record(qFP, smpl)
		}
		if s.qlog == nil || qSQL == "" || elapsed < s.slowMin {
			return
		}
		s.metrics.slowQueries.Add(1)
		s.qlog.add(QueryLogEntry{
			Time:        t0,
			RequestID:   RequestID(r),
			SQL:         qSQL,
			Fingerprint: qFP,
			Rows:        qRows,
			DurationMs:  float64(elapsed) / float64(time.Millisecond),
			CacheHit:    qCached,
			Err:         qErr,
			Trace:       traceFromSpan(sp),
		})
	}()
	sql, err := readSQL(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	qSQL = sql
	norm := normalizeSQL(sql)
	qFP = reldb.Fingerprint(norm)
	snap := s.current()

	if snap.results != nil {
		if res, ok := snap.results.Get(norm); ok {
			s.metrics.resultHits.Add(1)
			qRows, qCached = res.RowCount, true
			writeJSON(w, http.StatusOK, sqlResponse{
				sqlResult:   *res,
				Cached:      true,
				SnapshotSeq: snap.seq,
				ElapsedMs:   float64(time.Since(t0)) / float64(time.Millisecond),
			})
			return
		}
	}

	stmt, ok := snap.plans.Get(norm)
	if ok {
		s.metrics.planHits.Add(1)
		smpl.planHit = true
	} else {
		s.metrics.planMisses.Add(1)
		psp := sp.Start("parse")
		pt0 := time.Now()
		stmt, err = snap.g.Rel.Prepare(norm)
		smpl.parse = time.Since(pt0)
		psp.End()
		if errors.Is(err, reldb.ErrNotSelect) {
			qErr = err.Error()
			writeError(w, http.StatusForbidden, "read-only API: %v", err)
			return
		}
		if err != nil {
			qErr = err.Error()
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		snap.plans.Put(norm, stmt)
	}
	isExplain := stmt.IsExplain()
	if snap.results != nil && !isExplain {
		// Counted here, not at lookup time, so rejected writes, parse
		// errors, and EXPLAIN — which can never produce a cacheable
		// result — do not drag the hit rate down.
		s.metrics.resultMisses.Add(1)
	}

	// Execute off the handler goroutine so a per-request deadline can fire
	// even though reldb execution is not context-aware. A timed-out query
	// runs to completion in the background; the limiter slot is held by the
	// handler, so abandoned queries cannot pile up unboundedly.
	type outcome struct {
		rows *reldb.Rows
		plan *reldb.PlanNode
		err  error
	}
	done := make(chan outcome, 1)
	esp := sp.Start("exec")
	et0 := time.Now()
	go func() {
		if isExplain {
			plan, qerr := stmt.Explain()
			done <- outcome{plan: plan, err: qerr}
			return
		}
		rows, qerr := stmt.Query()
		done <- outcome{rows: rows, err: qerr}
	}()
	var rows *reldb.Rows
	var plan *reldb.PlanNode
	select {
	case out := <-done:
		smpl.exec = time.Since(et0)
		esp.End()
		if out.err != nil {
			qErr = out.err.Error()
			writeError(w, http.StatusBadRequest, "%v", out.err)
			return
		}
		rows, plan = out.rows, out.plan
		if plan != nil {
			rows = plan.Rows()
			attachPlanSpans(esp, plan, et0)
		}
	case <-r.Context().Done():
		smpl.exec = time.Since(et0)
		esp.End()
		s.metrics.rejected.Add(1)
		qErr = "query exceeded the request deadline"
		writeError(w, http.StatusGatewayTimeout, "query exceeded the request deadline")
		return
	}

	qRows = rows.Len()
	res := &sqlResult{Columns: rows.Columns, RowCount: rows.Len()}
	n := rows.Len()
	if n > s.cfg.MaxResultRows {
		n = s.cfg.MaxResultRows
		res.Truncated = true
	}
	// One flat backing array for all marshalled rows instead of a fresh
	// slice per row; every executor row has exactly len(Columns) values.
	res.Rows = make([][]interface{}, n)
	flat := make([]interface{}, n*len(rows.Columns))
	for i := 0; i < n; i++ {
		w := len(rows.Rows[i])
		row := flat[:w:w]
		flat = flat[w:]
		for j, v := range rows.Rows[i] {
			row[j] = v.Interface()
		}
		res.Rows[i] = row
	}
	if snap.results != nil && !isExplain {
		// EXPLAIN ANALYZE re-executes on every call by design; caching its
		// one-shot plan text would serve stale actuals.
		snap.results.Put(norm, res)
	}
	writeJSON(w, http.StatusOK, sqlResponse{
		sqlResult:   *res,
		SnapshotSeq: snap.seq,
		ElapsedMs:   float64(time.Since(t0)) / float64(time.Millisecond),
		Plan:        plan,
	})
}

// handleTables serves GET /tables: relation names and row counts.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	snap := s.current()
	type tableInfo struct {
		Name string `json:"name"`
		Rows int    `json:"rows"`
	}
	var tables []tableInfo
	for _, name := range snap.g.Rel.TableNames() {
		tables = append(tables, tableInfo{Name: name, Rows: snap.g.Rel.Table(name).Len()})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tables":       tables,
		"snapshot_seq": snap.seq,
	})
}

// handleExport serves GET /export/{layer}: one GIS layer streamed as
// GeoJSON, never buffering the whole document.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	layer := r.PathValue("layer")
	known := false
	for _, l := range render.Layers() {
		if l == layer {
			known = true
			break
		}
	}
	if !known {
		writeError(w, http.StatusNotFound, "unknown layer %q (have %s)", layer, strings.Join(render.Layers(), ", "))
		return
	}
	snap := s.current()
	w.Header().Set("Content-Type", "application/geo+json")
	if _, err := render.WriteLayerGeoJSON(w, snap.g.Rel, layer); err != nil {
		// Headers are already out; all we can do is log.
		s.logger.Error("export failed", obs.F("layer", layer),
			obs.F("request_id", RequestID(r)), obs.F("err", err))
	}
}

// handleFootprint serves GET /footprint/{asn}: the §4.1 geographic spatial
// extent of one AS — names, organizations, and located metros from asn_loc.
func (s *Server) handleFootprint(w http.ResponseWriter, r *http.Request) {
	asn, err := strconv.Atoi(r.PathValue("asn"))
	if err != nil || asn < 0 {
		writeError(w, http.StatusBadRequest, "bad ASN %q", r.PathValue("asn"))
		return
	}
	snap := s.current()
	texts := func(sql string) []string {
		rows, qerr := snap.g.Rel.Query(sql)
		if qerr != nil {
			return nil
		}
		var out []string
		for _, row := range rows.Rows {
			if t, ok := row[0].AsText(); ok && t != "" {
				out = append(out, t)
			}
		}
		return out
	}
	names := texts(fmt.Sprintf(`SELECT DISTINCT asn_name FROM asn_name WHERE asn = %d ORDER BY asn_name`, asn))
	orgs := texts(fmt.Sprintf(`SELECT DISTINCT organization FROM asn_org WHERE asn = %d ORDER BY organization`, asn))

	locRows, err := snap.g.Rel.Query(fmt.Sprintf(
		`SELECT DISTINCT metro, state_province, country, remote FROM asn_loc
		 WHERE asn = %d ORDER BY country, metro`, asn))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	type metroInfo struct {
		Metro   string  `json:"metro"`
		State   string  `json:"state,omitempty"`
		Country string  `json:"country"`
		Lon     float64 `json:"lon"`
		Lat     float64 `json:"lat"`
		Remote  bool    `json:"remote,omitempty"`
	}
	metros := make([]metroInfo, 0, locRows.Len())
	countries := map[string]bool{}
	for _, row := range locRows.Rows {
		metro, _ := row[0].AsText()
		state, _ := row[1].AsText()
		country, _ := row[2].AsText()
		remote, _ := row[3].AsBool()
		mi := metroInfo{Metro: metro, State: state, Country: country, Remote: remote}
		if idx := snap.g.CityIndex(metro, state, country); idx >= 0 {
			loc := snap.g.CityLoc(idx)
			mi.Lon, mi.Lat = loc.Lon, loc.Lat
		}
		countries[country] = true
		metros = append(metros, mi)
	}
	if len(metros) == 0 && len(names) == 0 && len(orgs) == 0 {
		writeError(w, http.StatusNotFound, "AS%d is not in the database", asn)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"asn":           asn,
		"names":         names,
		"organizations": orgs,
		"countries":     len(countries),
		"metros":        metros,
		"snapshot_seq":  snap.seq,
	})
}

// handlePath serves GET /path?src=City-CC&dst=City-CC: the §4.2 shortest
// practical physical path between two metros, recovered through the paths
// pipeline and returned as GeoJSON.
func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	src := r.URL.Query().Get("src")
	dst := r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		writeError(w, http.StatusBadRequest, "src and dst query parameters are required (metro labels like Austin-US)")
		return
	}
	snap := s.current()
	if snap.pipe == nil {
		writeError(w, http.StatusServiceUnavailable,
			"path inference unavailable on this degraded snapshot: %s", snap.pipeErr)
		return
	}
	a := snap.g.MetroIndex(src)
	b := snap.g.MetroIndex(dst)
	if a < 0 {
		writeError(w, http.StatusNotFound, "unknown metro %q", src)
		return
	}
	if b < 0 {
		writeError(w, http.StatusNotFound, "unknown metro %q", dst)
		return
	}
	cities, km, ok := snap.g.Paths.ShortestPracticalPath(a, b)
	if !ok {
		writeError(w, http.StatusNotFound, "no physical path between %q and %q", src, dst)
		return
	}
	line, routeKm := snap.pipe.InferredRoute([]int{a, b})
	if len(line) < 2 {
		writeError(w, http.StatusNotFound, "no route geometry between %q and %q", src, dst)
		return
	}
	via := make([]string, len(cities))
	for i, c := range cities {
		via[i] = snap.g.Cities[c].Metro()
	}
	straight := geo.Haversine(snap.g.CityLoc(a), snap.g.CityLoc(b))
	props := map[string]interface{}{
		"src":          src,
		"dst":          dst,
		"km":           routeKm,
		"shortest_km":  km,
		"straight_km":  straight,
		"via":          via,
		"snapshot_seq": snap.seq,
	}
	w.Header().Set("Content-Type", "application/geo+json")
	fw, err := render.NewFeatureWriter(w)
	if err != nil {
		return
	}
	if err := fw.Add(wkt.NewLineString(line), props); err != nil {
		s.logger.Error("path export failed", obs.F("request_id", RequestID(r)), obs.F("err", err))
		if cerr := fw.Close(); cerr != nil {
			s.logger.Debug("path export close failed", obs.F("request_id", RequestID(r)), obs.F("err", cerr))
		}
		return
	}
	if err := fw.Close(); err != nil {
		s.logger.Debug("path export close failed", obs.F("request_id", RequestID(r)), obs.F("err", err))
	}
}

// handleRebuild serves POST /admin/rebuild: synchronous re-ingest + atomic
// snapshot swap. 409 when a rebuild is already running.
func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	seq, buildTime, started, err := s.TryRebuild()
	if !started {
		writeError(w, http.StatusConflict, "rebuild already in progress")
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"snapshot_seq": seq,
		"build_ms":     float64(buildTime) / float64(time.Millisecond),
	})
}

// sourceHealth is one source's entry in the /healthz report.
type sourceHealth struct {
	Source     string `json:"source"`
	Status     string `json:"status"`
	AsOf       string `json:"as_of,omitempty"`
	Error      string `json:"error,omitempty"`
	RowsLoaded int    `json:"rows_loaded"`
}

// healthReport is the GET /healthz body.
type healthReport struct {
	Status          string         `json:"status"` // ok | degraded | stale | syncing
	Degraded        bool           `json:"degraded"`
	Stale           bool           `json:"stale"`
	SnapshotSeq     uint64         `json:"snapshot_seq"`
	SnapshotAgeS    float64        `json:"snapshot_age_s"`
	BuildMs         float64        `json:"build_ms"`
	Tables          int            `json:"tables"`
	Sources         []sourceHealth `json:"sources,omitempty"`
	Quarantined     []string       `json:"quarantined,omitempty"`
	PathsPipeline   string         `json:"paths_pipeline"` // "ok" or the failure
	LastRebuildErr  string         `json:"last_rebuild_error,omitempty"`
	LastRebuildUnix int64          `json:"last_rebuild_unix,omitempty"`

	// Replication topology. Role is always present; the rest only when this
	// server is a follower.
	Role string `json:"role"` // standalone | leader | follower
	// LeaderURL is the leader this follower replicates from.
	LeaderURL string `json:"leader_url,omitempty"`
	// LeaderSeq is the newest snapshot seq the leader has advertised.
	LeaderSeq uint64 `json:"leader_seq,omitempty"`
	// ReplicaLagS is seconds between the leader building the serving
	// snapshot and now; -1 before the first successful sync.
	ReplicaLagS float64 `json:"replica_lag_s,omitempty"`
	// LastFetchErr is the most recent failed poll or transfer — it names
	// the fault (checksum mismatch, connection refused, deadline, ...).
	// Empty after a successful sync.
	LastFetchErr string `json:"last_fetch_error,omitempty"`
	// LastFetchUnix is when the last successful sync finished.
	LastFetchUnix int64 `json:"last_fetch_unix,omitempty"`
}

// staleCutoff is the snapshot age past which /healthz reports "stale":
// StaleAfter when configured, else twice the periodic-rebuild interval.
func (s *Server) staleCutoff() time.Duration {
	if s.cfg.StaleAfter > 0 {
		return s.cfg.StaleAfter
	}
	if s.cfg.RebuildEvery > 0 {
		return 2 * s.cfg.RebuildEvery
	}
	return 0
}

// handleHealthz serves GET /healthz: a structured operator report — overall
// status (ok/degraded/stale), per-source build verdicts, snapshot age, and
// the most recent rebuild failure. Always 200 with a body; load balancers
// should key on .status, not the HTTP code.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.current()
	s.stateMu.Lock()
	lastErr, lastAt := s.lastRebuildErr, s.lastRebuildAt
	repl := s.repl
	s.stateMu.Unlock()
	role := s.Role()

	rep := healthReport{
		Status:        "ok",
		PathsPipeline: "ok",
		Role:          string(role),
		LeaderURL:     s.cfg.LeaderURL,
		LeaderSeq:     repl.leaderSeq,
		LastFetchErr:  repl.lastErr,
	}
	if !repl.lastSyncAt.IsZero() {
		rep.LastFetchUnix = repl.lastSyncAt.Unix()
	}
	if snap == nil {
		// A follower before its first successful sync: nothing to serve,
		// but the report says exactly why.
		rep.Status = "syncing"
		rep.Degraded = true
		rep.PathsPipeline = "no snapshot yet"
		rep.ReplicaLagS = -1
		writeJSON(w, http.StatusOK, rep)
		return
	}

	age := time.Since(snap.builtAt)
	rep.SnapshotSeq = snap.seq
	rep.SnapshotAgeS = age.Seconds()
	rep.BuildMs = float64(snap.buildTime) / float64(time.Millisecond)
	rep.Tables = len(snap.g.Rel.TableNames())
	rep.Quarantined = snap.g.QuarantinedSources()
	if role == RoleFollower {
		// The serving snapshot's builtAt is the leader's build instant, so
		// its age IS the replica lag.
		rep.ReplicaLagS = age.Seconds()
	}
	for _, st := range snap.g.SourceStatus {
		sh := sourceHealth{
			Source: st.Source, Status: st.Status,
			Error: st.Err, RowsLoaded: st.RowsLoaded,
		}
		if !st.AsOf.IsZero() {
			sh.AsOf = st.AsOf.UTC().Format(time.RFC3339)
		}
		rep.Sources = append(rep.Sources, sh)
	}
	if snap.pipe == nil {
		rep.PathsPipeline = snap.pipeErr
	}
	if lastErr != nil {
		rep.LastRebuildErr = lastErr.Error()
	}
	if !lastAt.IsZero() {
		rep.LastRebuildUnix = lastAt.Unix()
	}
	if cut := s.staleCutoff(); cut > 0 && age > cut {
		rep.Stale = true
		rep.Status = "stale"
	}
	if snap.g.Degraded() || snap.pipe == nil || lastErr != nil || repl.lastErr != "" {
		rep.Degraded = true
		rep.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g := snapGauges{
		collectRetries: ingest.RetriesTotal(),
		repl:           s.replicaGauges(),
		stmt:           s.stmts.totals(),
	}
	if snap := s.current(); snap != nil {
		if snap.g.Degraded() || snap.pipe == nil || s.LastRebuildError() != nil {
			g.degraded = 1
		}
		g.seq = snap.seq
		g.age = time.Since(snap.builtAt)
		g.buildTime = snap.buildTime
		g.quarantined = len(snap.g.QuarantinedSources())
		g.sources = snap.g.SourceStatus
		g.stages = snap.g.BuildTrace.Stages()
		g.simScenarios = snap.simCount
		g.simTime = snap.simTime
	} else {
		g.degraded = 1 // a follower with nothing to serve is degraded by definition
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, g)
}
