package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"igdb/internal/chaos"
)

// getJSON fetches a path and decodes the JSON body into v.
func getJSON(t *testing.T, h http.Handler, path string, v interface{}) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if v != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec
}

// TestFailedRebuildKeepsOldSnapshot: when a rebuild fails, the previous
// snapshot keeps serving /sql, /healthz flips to degraded with the rebuild
// error, and /metrics counts the failure — the operator-visible contract.
func TestFailedRebuildKeepsOldSnapshot(t *testing.T) {
	cs := chaos.New(sharedStore(t), 7)
	s := newTestServer(t, Config{Store: cs})
	h := s.Handler()
	firstSeq := s.SnapshotSeq()

	// Break a source, then ask for a rebuild: it must fail loudly...
	cs.Inject("peeringdb", chaos.Drop())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/rebuild", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("rebuild with dropped source: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "peeringdb") {
		t.Fatalf("rebuild error does not name the source: %s", rec.Body.String())
	}

	// ...while the old snapshot keeps answering.
	rc, resp := postSQL(t, h, `SELECT COUNT(*) FROM city_points`)
	if rc.Code != http.StatusOK {
		t.Fatalf("/sql after failed rebuild: %d %s", rc.Code, rc.Body.String())
	}
	if resp.SnapshotSeq != firstSeq {
		t.Fatalf("snapshot seq changed after failed rebuild: %d -> %d", firstSeq, resp.SnapshotSeq)
	}
	if resp.RowCount == 0 {
		t.Fatal("old snapshot served no rows")
	}

	var rep healthReport
	getJSON(t, h, "/healthz", &rep)
	if rep.Status != "degraded" || !rep.Degraded {
		t.Fatalf("healthz after failed rebuild = %q (degraded=%v), want degraded", rep.Status, rep.Degraded)
	}
	if !strings.Contains(rep.LastRebuildErr, "peeringdb") {
		t.Fatalf("healthz last_rebuild_error = %q, want it to name peeringdb", rep.LastRebuildErr)
	}

	mrec := getJSON(t, h, "/metrics", nil)
	body := mrec.Body.String()
	if !strings.Contains(body, "igdb_rebuild_errors_total 1") {
		t.Errorf("metrics missing rebuild failure count:\n%s", body)
	}
	if !strings.Contains(body, "igdb_degraded 1") {
		t.Errorf("metrics missing degraded gauge:\n%s", body)
	}

	// Healing the source heals the server.
	cs.Clear("peeringdb")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/admin/rebuild", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("rebuild after heal: %d %s", rec.Code, rec.Body.String())
	}
	var healed healthReport
	getJSON(t, h, "/healthz", &healed)
	if healed.Status != "ok" || healed.LastRebuildErr != "" {
		t.Fatalf("healthz after heal = %q (last err %q), want ok", healed.Status, healed.LastRebuildErr)
	}
	if got := s.SnapshotSeq(); got != firstSeq+1 {
		t.Fatalf("snapshot seq after heal = %d, want %d", got, firstSeq+1)
	}
}

// TestDegradedServerQuarantines: with Config.Degraded a corrupt source does
// not stop the server from coming up; /healthz itemizes the quarantine and
// source_status is queryable over /sql.
func TestDegradedServerQuarantines(t *testing.T) {
	cs := chaos.New(sharedStore(t), 11)
	cs.Inject("he", chaos.Garble(""))
	s := newTestServer(t, Config{Store: cs, Degraded: true})
	h := s.Handler()

	var rep healthReport
	getJSON(t, h, "/healthz", &rep)
	if rep.Status != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", rep.Status)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "he" {
		t.Fatalf("quarantined = %v, want [he]", rep.Quarantined)
	}
	found := false
	for _, src := range rep.Sources {
		if src.Source == "he" {
			found = true
			if src.Status != "corrupt" || src.Error == "" {
				t.Errorf("he health = %+v, want corrupt with error detail", src)
			}
		} else if src.Status != "ok" {
			t.Errorf("healthy source %s reported %q", src.Source, src.Status)
		}
	}
	if !found {
		t.Fatalf("healthz sources missing he: %+v", rep.Sources)
	}

	rc, resp := postSQL(t, h, `SELECT source, status FROM source_status WHERE status <> 'ok'`)
	if rc.Code != http.StatusOK {
		t.Fatalf("/sql source_status: %d %s", rc.Code, rc.Body.String())
	}
	if resp.RowCount != 1 || resp.Rows[0][0] != "he" {
		t.Fatalf("source_status rows = %v, want one he row", resp.Rows)
	}

	mrec := getJSON(t, h, "/metrics", nil)
	if !strings.Contains(mrec.Body.String(), "igdb_quarantined_sources 1") {
		t.Errorf("metrics missing quarantined gauge:\n%s", mrec.Body.String())
	}
}

// TestDegradedServerWithoutPipeline: losing a measurement-side source
// (ripeatlas) in degraded mode costs /path (503, not a crash) while /sql
// keeps working and /healthz explains what is missing.
func TestDegradedServerWithoutPipeline(t *testing.T) {
	cs := chaos.New(sharedStore(t), 13)
	cs.Inject("ripeatlas", chaos.Drop())
	s := newTestServer(t, Config{Store: cs, Degraded: true})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/path?src=a&dst=b", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/path without pipeline: %d, want 503 (%s)", rec.Code, rec.Body.String())
	}

	rc, resp := postSQL(t, h, `SELECT COUNT(*) FROM city_points`)
	if rc.Code != http.StatusOK || resp.RowCount == 0 {
		t.Fatalf("/sql on pipeline-less snapshot: %d %s", rc.Code, rc.Body.String())
	}

	var rep healthReport
	getJSON(t, h, "/healthz", &rep)
	if rep.Status != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", rep.Status)
	}
	if rep.PathsPipeline == "ok" || rep.PathsPipeline == "" {
		t.Fatalf("healthz paths_pipeline = %q, want the failure reason", rep.PathsPipeline)
	}
}
