package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"igdb/internal/reldb"
)

func TestStmtStatsRecord(t *testing.T) {
	ss := newStmtStats(4)
	ss.record("SELECT a FROM t WHERE a = ?", stmtSample{
		parse: time.Millisecond, exec: 2 * time.Millisecond,
		total: 4 * time.Millisecond, rows: 10,
	})
	ss.record("SELECT a FROM t WHERE a = ?", stmtSample{
		total: 2 * time.Millisecond, rows: 5, planHit: true,
	})
	ss.record("SELECT a FROM t WHERE a = ?", stmtSample{
		total: time.Millisecond, err: true,
	})
	ss.record("", stmtSample{total: time.Hour}) // no fingerprint: dropped silently

	views, dropped := ss.snapshot()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(views) != 1 {
		t.Fatalf("distinct fingerprints = %d, want 1", len(views))
	}
	v := views[0]
	if v.Calls != 3 || v.Errors != 1 || v.Rows != 15 || v.PlanCacheHits != 1 {
		t.Fatalf("aggregate = %+v", v)
	}
	if v.TotalMs != 7 || v.MaxMs != 4 || v.ParseMs != 1 || v.ExecMs != 2 {
		t.Fatalf("timings = %+v", v)
	}
	if want := 7.0 / 3; v.MeanMs != want {
		t.Fatalf("mean = %v, want %v", v.MeanMs, want)
	}
}

func TestStmtStatsCapacity(t *testing.T) {
	ss := newStmtStats(2)
	ss.record("A", stmtSample{})
	ss.record("B", stmtSample{})
	ss.record("C", stmtSample{}) // over capacity: counted only in dropped
	ss.record("C", stmtSample{})
	ss.record("A", stmtSample{}) // existing fingerprints still aggregate

	views, dropped := ss.snapshot()
	if len(views) != 2 {
		t.Fatalf("distinct = %d, want 2", len(views))
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	tot := ss.totals()
	if tot.distinct != 2 || tot.calls != 3 || tot.dropped != 2 {
		t.Fatalf("totals = %+v", tot)
	}
}

// TestStmtStatsConcurrent hammers the aggregator from many goroutines; run
// with -race this proves the mutex discipline.
func TestStmtStatsConcurrent(t *testing.T) {
	ss := newStmtStats(64)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fp := fmt.Sprintf("SELECT ? -- shape %d", i%16)
				ss.record(fp, stmtSample{total: time.Microsecond, rows: 1})
				if i%10 == 0 {
					ss.snapshot()
					ss.totals()
				}
			}
		}(w)
	}
	wg.Wait()
	tot := ss.totals()
	if tot.calls != workers*perWorker {
		t.Fatalf("calls = %d, want %d", tot.calls, workers*perWorker)
	}
	if tot.distinct != 16 || tot.dropped != 0 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.rows != workers*perWorker {
		t.Fatalf("rows = %d, want %d", tot.rows, workers*perWorker)
	}
}

// statementsReport mirrors the GET /debug/statements body.
type statementsReport struct {
	Count             int            `json:"count"`
	DroppedExecutions uint64         `json:"dropped_executions"`
	Statements        []stmtStatView `json:"statements"`
}

func getStatements(t *testing.T, s *Server, query string) statementsReport {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/statements"+query, nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/statements status = %d: %s", rec.Code, rec.Body.String())
	}
	var rep statementsReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad /debug/statements body: %v", err)
	}
	return rep
}

func TestStatementsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	// Three executions of the same shape (different literals), one of another.
	for _, q := range []string{
		`SELECT asn FROM asn_loc WHERE country = 'US' LIMIT 3`,
		`SELECT asn FROM asn_loc WHERE country = 'DE' LIMIT 5`,
		`SELECT asn FROM asn_loc WHERE country = 'JP' LIMIT 7`,
		`SELECT COUNT(*) FROM phys_nodes`,
	} {
		if rec, _ := postSQL(t, h, q); rec.Code != 200 {
			t.Fatalf("POST /sql %q = %d: %s", q, rec.Code, rec.Body.String())
		}
	}

	rep := getStatements(t, s, "")
	if rep.Count != 2 {
		t.Fatalf("count = %d, want 2 distinct fingerprints\n%+v", rep.Count, rep.Statements)
	}
	wantFP := reldb.Fingerprint(normalizeSQL(`SELECT asn FROM asn_loc WHERE country = 'US' LIMIT 3`))
	var found *stmtStatView
	for i := range rep.Statements {
		if rep.Statements[i].Fingerprint == wantFP {
			found = &rep.Statements[i]
		}
	}
	if found == nil {
		t.Fatalf("fingerprint %q not in report: %+v", wantFP, rep.Statements)
	}
	if found.Calls != 3 {
		t.Fatalf("calls = %d, want 3 (literals must collapse into one shape)", found.Calls)
	}
	if !strings.Contains(wantFP, "?") || strings.Contains(wantFP, "'US'") {
		t.Fatalf("fingerprint kept literals: %q", wantFP)
	}
	if found.TotalMs <= 0 || found.MeanMs <= 0 {
		t.Fatalf("timings not recorded: %+v", *found)
	}

	// ?top=1 truncates the list but count still reports every fingerprint.
	top := getStatements(t, s, "?top=1")
	if top.Count != 2 || len(top.Statements) != 1 {
		t.Fatalf("top=1: count=%d len=%d", top.Count, len(top.Statements))
	}

	// A result-cache hit still contributes a sample.
	if rec, resp := postSQL(t, h, `SELECT COUNT(*) FROM phys_nodes`); rec.Code != 200 || !resp.Cached {
		t.Fatalf("expected cached repeat, status=%d cached=%v", rec.Code, resp.Cached)
	}
	rep = getStatements(t, s, "")
	for _, v := range rep.Statements {
		if v.Fingerprint == reldb.Fingerprint(`SELECT COUNT(*) FROM phys_nodes`) {
			if v.Calls != 2 || v.ResultCacheHits != 1 {
				t.Fatalf("cached repeat not aggregated: %+v", v)
			}
		}
	}
}

func TestSQLExplainEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec, resp := postSQL(t, h, "EXPLAIN ANALYZE "+table2SQL)
	if rec.Code != 200 {
		t.Fatalf("EXPLAIN ANALYZE status = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Columns) != 1 || resp.Columns[0] != "plan" {
		t.Fatalf("columns = %v, want [plan]", resp.Columns)
	}
	if resp.Plan == nil {
		t.Fatalf("response has no structured plan: %s", rec.Body.String())
	}
	if resp.Plan.Actual == nil {
		t.Fatal("EXPLAIN ANALYZE root node has no actuals")
	}
	text := rec.Body.String()
	for _, want := range []string{"group", "hash_join", "actual:", "rows_out"} {
		if !strings.Contains(text, want) {
			t.Fatalf("plan output missing %q:\n%s", want, text)
		}
	}

	// EXPLAIN output must never be served from the result cache: actuals are
	// per-execution.
	rec2, resp2 := postSQL(t, h, "EXPLAIN ANALYZE "+table2SQL)
	if rec2.Code != 200 || resp2.Cached {
		t.Fatalf("repeat EXPLAIN: status=%d cached=%v", rec2.Code, resp2.Cached)
	}

	// Plain EXPLAIN works for non-SELECT without executing it (and without
	// tripping the read-only gate); ANALYZE of DML is still refused.
	rec3, resp3 := postSQL(t, h, `EXPLAIN DELETE FROM asn_loc WHERE asn = 1`)
	if rec3.Code != 200 || resp3.Plan == nil || resp3.Plan.Op != "delete" {
		t.Fatalf("EXPLAIN DELETE: status=%d plan=%+v", rec3.Code, resp3.Plan)
	}
	rec4, _ := postSQL(t, h, `EXPLAIN ANALYZE DELETE FROM asn_loc WHERE asn = 1`)
	if rec4.Code != 403 {
		t.Fatalf("EXPLAIN ANALYZE DELETE status = %d, want 403: %s", rec4.Code, rec4.Body.String())
	}
}

// TestSlowLogFingerprintAndTrace links /debug/queries entries to
// /debug/statements via the fingerprint, and checks the recorded span tree.
func TestSlowLogFingerprintAndTrace(t *testing.T) {
	s := newTestServer(t, Config{SlowQueryMin: -1}) // record every statement
	h := s.Handler()

	q := `SELECT asn FROM asn_loc WHERE country = 'US' LIMIT 2`
	if rec, _ := postSQL(t, h, q); rec.Code != 200 {
		t.Fatalf("POST /sql = %d", rec.Code)
	}
	if rec, _ := postSQL(t, h, "EXPLAIN ANALYZE "+q); rec.Code != 200 {
		t.Fatalf("EXPLAIN ANALYZE = %d", rec.Code)
	}

	entries := s.qlog.entries()
	if len(entries) != 2 {
		t.Fatalf("qlog entries = %d, want 2", len(entries))
	}
	// entries are newest-first: [0] is the EXPLAIN ANALYZE.
	ex, plain := entries[0], entries[1]
	if plain.Fingerprint != reldb.Fingerprint(normalizeSQL(q)) {
		t.Fatalf("plain fingerprint = %q", plain.Fingerprint)
	}
	if ex.Fingerprint != "EXPLAIN ANALYZE "+plain.Fingerprint {
		t.Fatalf("explain fingerprint = %q", ex.Fingerprint)
	}
	spanNames := func(tr []TraceSpan) map[string]bool {
		m := map[string]bool{}
		for _, ts := range tr {
			m[ts.Name] = true
		}
		return m
	}
	pn := spanNames(plain.Trace)
	if !pn["sql"] || !pn["parse"] || !pn["exec"] {
		t.Fatalf("plain trace missing stages: %+v", plain.Trace)
	}
	en := spanNames(ex.Trace)
	for _, want := range []string{"sql", "exec", "op:project", "op:scan", "op:filter"} {
		if !en[want] {
			t.Fatalf("explain trace missing %q: %+v", want, ex.Trace)
		}
	}
	// Operator spans carry the executor's actuals as attributes.
	for _, ts := range ex.Trace {
		if ts.Name == "op:filter" {
			if _, ok := ts.Attrs["rows_out"]; !ok {
				t.Fatalf("op:filter span has no rows_out attr: %+v", ts)
			}
		}
	}

	// The statement aggregator recorded both shapes with a parse/exec split.
	views, _ := s.stmts.snapshot()
	if len(views) != 2 {
		t.Fatalf("aggregator shapes = %d, want 2", len(views))
	}
	for _, v := range views {
		if v.ExecMs <= 0 {
			t.Fatalf("no exec time recorded: %+v", v)
		}
	}
}
