// Package spatial provides the spatial indexes behind iGDB's GIS
// operations: a k-d tree over unit-sphere coordinates for exact
// nearest-neighbour and radius queries (the spatial join that standardizes
// every node to its closest urban area), and a uniform lon/lat grid for
// bounding-box prefiltering (buffer joins).
//
// The k-d tree stores points as 3-D unit vectors and compares chord
// distances, which are strictly monotone in great-circle distance, so
// nearest-neighbour results are exact everywhere including near the poles
// and the antimeridian.
package spatial

import (
	"container/heap"
	"math"
	"sort"

	"igdb/internal/geo"
)

// Entry associates a geographic point with a caller-defined identifier.
type Entry struct {
	P  geo.Point
	ID int
}

type vec3 struct{ x, y, z float64 }

func toVec(p geo.Point) vec3 {
	lon, lat := p.Radians()
	cl := math.Cos(lat)
	return vec3{cl * math.Cos(lon), cl * math.Sin(lon), math.Sin(lat)}
}

func (v vec3) axis(a int) float64 {
	switch a {
	case 0:
		return v.x
	case 1:
		return v.y
	default:
		return v.z
	}
}

func chord2(a, b vec3) float64 {
	dx, dy, dz := a.x-b.x, a.y-b.y, a.z-b.z
	return dx*dx + dy*dy + dz*dz
}

// chordToKm converts a unit-sphere chord length to great-circle kilometers.
func chordToKm(chord float64) float64 {
	h := chord / 2
	if h > 1 {
		h = 1
	}
	return 2 * geo.EarthRadiusKm * math.Asin(h)
}

// kmToChord converts great-circle kilometers to a unit-sphere chord length.
func kmToChord(km float64) float64 {
	a := km / (2 * geo.EarthRadiusKm)
	if a > math.Pi/2 {
		a = math.Pi / 2
	}
	return 2 * math.Sin(a)
}

type node struct {
	v           vec3
	entry       Entry
	axis        int
	left, right *node
}

// KDTree is an immutable nearest-neighbour index over geographic points.
type KDTree struct {
	root *node
	size int
}

// NewKDTree builds a balanced k-d tree over the entries. The input slice is
// not retained.
func NewKDTree(entries []Entry) *KDTree {
	items := make([]struct {
		v vec3
		e Entry
	}, len(entries))
	for i, e := range entries {
		items[i].v = toVec(e.P)
		items[i].e = e
	}
	t := &KDTree{size: len(entries)}
	t.root = build(items, 0)
	return t
}

func build(items []struct {
	v vec3
	e Entry
}, depth int) *node {
	if len(items) == 0 {
		return nil
	}
	axis := depth % 3
	sort.Slice(items, func(i, j int) bool { return items[i].v.axis(axis) < items[j].v.axis(axis) })
	mid := len(items) / 2
	n := &node{v: items[mid].v, entry: items[mid].e, axis: axis}
	n.left = build(items[:mid], depth+1)
	n.right = build(items[mid+1:], depth+1)
	return n
}

// Len returns the number of indexed entries.
func (t *KDTree) Len() int { return t.size }

// Nearest returns the entry closest to p and its great-circle distance in
// kilometers. ok is false for an empty tree.
func (t *KDTree) Nearest(p geo.Point) (best Entry, km float64, ok bool) {
	if t.root == nil {
		return Entry{}, 0, false
	}
	q := toVec(p)
	bestDist := math.Inf(1)
	var bestEntry Entry
	var search func(n *node)
	search = func(n *node) {
		if n == nil {
			return
		}
		if d := chord2(q, n.v); d < bestDist {
			bestDist = d
			bestEntry = n.entry
		}
		delta := q.axis(n.axis) - n.v.axis(n.axis)
		near, far := n.left, n.right
		if delta > 0 {
			near, far = far, near
		}
		search(near)
		if delta*delta < bestDist {
			search(far)
		}
	}
	search(t.root)
	return bestEntry, chordToKm(math.Sqrt(bestDist)), true
}

// Result pairs an entry with its distance from the query point.
type Result struct {
	Entry Entry
	Km    float64
}

// resultHeap is a max-heap on chord² so the current worst of the best-k is
// at the top.
type resultHeap []struct {
	d2 float64
	e  Entry
}

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].d2 > h[j].d2 }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) {
	*h = append(*h, x.(struct {
		d2 float64
		e  Entry
	}))
}
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNearest returns up to k entries closest to p, ordered nearest first.
func (t *KDTree) KNearest(p geo.Point, k int) []Result {
	if t.root == nil || k <= 0 {
		return nil
	}
	q := toVec(p)
	h := &resultHeap{}
	var search func(n *node)
	search = func(n *node) {
		if n == nil {
			return
		}
		d := chord2(q, n.v)
		if h.Len() < k {
			heap.Push(h, struct {
				d2 float64
				e  Entry
			}{d, n.entry})
		} else if d < (*h)[0].d2 {
			(*h)[0] = struct {
				d2 float64
				e  Entry
			}{d, n.entry}
			heap.Fix(h, 0)
		}
		delta := q.axis(n.axis) - n.v.axis(n.axis)
		near, far := n.left, n.right
		if delta > 0 {
			near, far = far, near
		}
		search(near)
		if h.Len() < k || delta*delta < (*h)[0].d2 {
			search(far)
		}
	}
	search(t.root)
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		item := heap.Pop(h).(struct {
			d2 float64
			e  Entry
		})
		out[i] = Result{Entry: item.e, Km: chordToKm(math.Sqrt(item.d2))}
	}
	return out
}

// Within returns all entries within radiusKm of p, ordered nearest first.
func (t *KDTree) Within(p geo.Point, radiusKm float64) []Result {
	if t.root == nil || radiusKm < 0 {
		return nil
	}
	q := toVec(p)
	maxChord := kmToChord(radiusKm)
	max2 := maxChord * maxChord
	var out []Result
	var search func(n *node)
	search = func(n *node) {
		if n == nil {
			return
		}
		if d := chord2(q, n.v); d <= max2 {
			out = append(out, Result{Entry: n.entry, Km: chordToKm(math.Sqrt(d))})
		}
		delta := q.axis(n.axis) - n.v.axis(n.axis)
		near, far := n.left, n.right
		if delta > 0 {
			near, far = far, near
		}
		search(near)
		if delta*delta <= max2 {
			search(far)
		}
	}
	search(t.root)
	sort.Slice(out, func(i, j int) bool { return out[i].Km < out[j].Km })
	return out
}

// Grid is a uniform lon/lat bucket index for bounding-box queries.
type Grid struct {
	cellDeg float64
	cells   map[[2]int][]Entry
	size    int
}

// NewGrid creates a grid with the given cell size in degrees.
func NewGrid(cellDeg float64) *Grid {
	if cellDeg <= 0 {
		cellDeg = 1
	}
	return &Grid{cellDeg: cellDeg, cells: make(map[[2]int][]Entry)}
}

func (g *Grid) key(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.Lon / g.cellDeg)), int(math.Floor(p.Lat / g.cellDeg))}
}

// Insert adds an entry to the grid.
func (g *Grid) Insert(e Entry) {
	k := g.key(e.P)
	g.cells[k] = append(g.cells[k], e)
	g.size++
}

// Len returns the number of inserted entries.
func (g *Grid) Len() int { return g.size }

// Query returns all entries whose point lies inside the box.
func (g *Grid) Query(b geo.BBox) []Entry {
	lo := [2]int{int(math.Floor(b.MinLon / g.cellDeg)), int(math.Floor(b.MinLat / g.cellDeg))}
	hi := [2]int{int(math.Floor(b.MaxLon / g.cellDeg)), int(math.Floor(b.MaxLat / g.cellDeg))}
	var out []Entry
	for cx := lo[0]; cx <= hi[0]; cx++ {
		for cy := lo[1]; cy <= hi[1]; cy++ {
			for _, e := range g.cells[[2]int{cx, cy}] {
				if b.Contains(e.P) {
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// NearestJoin assigns each point to the nearest site in the index and
// returns a parallel slice of site IDs with distances — the core spatial
// join behind iGDB's location standardization (§3.1).
func NearestJoin(points []geo.Point, sites *KDTree) []Result {
	out := make([]Result, len(points))
	for i, p := range points {
		e, km, ok := sites.Nearest(p)
		if !ok {
			out[i] = Result{Entry: Entry{ID: -1}, Km: math.Inf(1)}
			continue
		}
		out[i] = Result{Entry: e, Km: km}
	}
	return out
}
