package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"igdb/internal/geo"
)

func randPoint(r *rand.Rand) geo.Point {
	return geo.Point{Lon: r.Float64()*360 - 180, Lat: r.Float64()*180 - 90}
}

func randEntries(r *rand.Rand, n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{P: randPoint(r), ID: i}
	}
	return out
}

// bruteNearest is the oracle for the k-d tree.
func bruteNearest(p geo.Point, entries []Entry) (Entry, float64) {
	best := math.Inf(1)
	var be Entry
	for _, e := range entries {
		if d := geo.Haversine(p, e.P); d < best {
			best = d
			be = e
		}
	}
	return be, best
}

func TestKDTreeNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	entries := randEntries(r, 500)
	tree := NewKDTree(entries)
	if tree.Len() != 500 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for q := 0; q < 200; q++ {
		p := randPoint(r)
		got, gotKm, ok := tree.Nearest(p)
		if !ok {
			t.Fatal("nearest on non-empty tree not ok")
		}
		_, wantKm := bruteNearest(p, entries)
		// Two sites may tie; compare distances, not IDs.
		if math.Abs(gotKm-wantKm) > 1e-6 {
			t.Fatalf("query %v: got %.6f km (id %d), brute force %.6f km", p, gotKm, got.ID, wantKm)
		}
	}
}

func TestKDTreeNearestPolesAndAntimeridian(t *testing.T) {
	entries := []Entry{
		{P: geo.Point{Lon: 179.9, Lat: 0}, ID: 1},
		{P: geo.Point{Lon: -179.9, Lat: 0}, ID: 2},
		{P: geo.Point{Lon: 0, Lat: 89.9}, ID: 3},
		{P: geo.Point{Lon: 10, Lat: 0}, ID: 4},
	}
	tree := NewKDTree(entries)
	// Query just across the antimeridian: ID 2 is closer than ID 1 only by
	// wrap-around; a naive lon/lat metric would pick wrongly.
	got, _, _ := tree.Nearest(geo.Point{Lon: -179.95, Lat: 0})
	if got.ID != 2 {
		t.Errorf("antimeridian query picked ID %d, want 2", got.ID)
	}
	got, _, _ = tree.Nearest(geo.Point{Lon: 175, Lat: 0.01})
	if got.ID != 1 {
		t.Errorf("east-side query picked ID %d, want 1", got.ID)
	}
	got, _, _ = tree.Nearest(geo.Point{Lon: 120, Lat: 89})
	if got.ID != 3 {
		t.Errorf("pole query picked ID %d, want 3", got.ID)
	}
}

func TestKDTreeEmpty(t *testing.T) {
	tree := NewKDTree(nil)
	if _, _, ok := tree.Nearest(geo.Point{}); ok {
		t.Error("empty tree should return ok=false")
	}
	if got := tree.KNearest(geo.Point{}, 3); got != nil {
		t.Error("empty tree KNearest should be nil")
	}
	if got := tree.Within(geo.Point{}, 100); got != nil {
		t.Error("empty tree Within should be nil")
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	entries := randEntries(r, 300)
	tree := NewKDTree(entries)
	for q := 0; q < 50; q++ {
		p := randPoint(r)
		k := 1 + r.Intn(10)
		got := tree.KNearest(p, k)
		if len(got) != k {
			t.Fatalf("KNearest returned %d, want %d", len(got), k)
		}
		// Oracle: sort all by distance.
		dists := make([]float64, len(entries))
		for i, e := range entries {
			dists[i] = geo.Haversine(p, e.P)
		}
		sort.Float64s(dists)
		for i, res := range got {
			if math.Abs(res.Km-dists[i]) > 1e-6 {
				t.Fatalf("k=%d rank %d: got %.6f, want %.6f", k, i, res.Km, dists[i])
			}
			if i > 0 && got[i-1].Km > res.Km+1e-12 {
				t.Fatal("KNearest not sorted ascending")
			}
		}
	}
}

func TestKNearestKLargerThanTree(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	entries := randEntries(r, 5)
	tree := NewKDTree(entries)
	got := tree.KNearest(geo.Point{}, 50)
	if len(got) != 5 {
		t.Errorf("got %d results, want all 5", len(got))
	}
	if got := tree.KNearest(geo.Point{}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestWithinMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	entries := randEntries(r, 400)
	tree := NewKDTree(entries)
	for q := 0; q < 50; q++ {
		p := randPoint(r)
		radius := r.Float64() * 3000
		got := tree.Within(p, radius)
		want := 0
		for _, e := range entries {
			if geo.Haversine(p, e.P) <= radius+1e-9 {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Within(%v, %.0f) = %d entries, brute force %d", p, radius, len(got), want)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Km > got[i].Km {
				t.Fatal("Within results not sorted")
			}
		}
		for _, res := range got {
			if res.Km > radius+1e-6 {
				t.Fatalf("entry at %.2f km exceeds radius %.2f", res.Km, radius)
			}
		}
	}
}

func TestWithinNegativeRadius(t *testing.T) {
	tree := NewKDTree([]Entry{{P: geo.Point{}, ID: 0}})
	if got := tree.Within(geo.Point{}, -1); got != nil {
		t.Error("negative radius should return nil")
	}
}

func TestGridQuery(t *testing.T) {
	g := NewGrid(5)
	pts := []geo.Point{
		{Lon: 0, Lat: 0}, {Lon: 1, Lat: 1}, {Lon: 10, Lat: 10}, {Lon: -20, Lat: 30}, {Lon: 179, Lat: -89},
	}
	for i, p := range pts {
		g.Insert(Entry{P: p, ID: i})
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	got := g.Query(geo.BBox{MinLon: -1, MinLat: -1, MaxLon: 2, MaxLat: 2})
	if len(got) != 2 {
		t.Errorf("query returned %d entries, want 2", len(got))
	}
	// Box straddling cells.
	got = g.Query(geo.BBox{MinLon: -25, MinLat: -90, MaxLon: 180, MaxLat: 35})
	if len(got) != 5 {
		t.Errorf("big box returned %d, want 5", len(got))
	}
	got = g.Query(geo.BBox{MinLon: 100, MinLat: 50, MaxLon: 110, MaxLat: 60})
	if len(got) != 0 {
		t.Errorf("empty region returned %d", len(got))
	}
}

func TestGridDefaultCellSize(t *testing.T) {
	g := NewGrid(0)
	g.Insert(Entry{P: geo.Point{Lon: 0.5, Lat: 0.5}, ID: 1})
	if got := g.Query(geo.BBox{MaxLon: 1, MaxLat: 1}); len(got) != 1 {
		t.Error("grid with defaulted cell size should still work")
	}
}

func TestNearestJoin(t *testing.T) {
	sites := NewKDTree([]Entry{
		{P: geo.Point{Lon: 0, Lat: 0}, ID: 100},
		{P: geo.Point{Lon: 50, Lat: 0}, ID: 200},
	})
	pts := []geo.Point{{Lon: 1, Lat: 1}, {Lon: 49, Lat: 1}, {Lon: 25.1, Lat: 0}}
	res := NearestJoin(pts, sites)
	if res[0].Entry.ID != 100 || res[1].Entry.ID != 200 || res[2].Entry.ID != 200 {
		t.Errorf("join IDs = %d,%d,%d", res[0].Entry.ID, res[1].Entry.ID, res[2].Entry.ID)
	}
	empty := NearestJoin(pts, NewKDTree(nil))
	if empty[0].Entry.ID != -1 || !math.IsInf(empty[0].Km, 1) {
		t.Error("join against empty index should yield ID -1, Inf")
	}
}

func BenchmarkKDTreeNearest(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tree := NewKDTree(randEntries(r, 7342)) // one entry per Natural Earth city
	queries := make([]geo.Point, 1024)
	for i := range queries {
		queries[i] = randPoint(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Nearest(queries[i%len(queries)])
	}
}
