package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed stage of a pipeline run. Spans form a tree: Start
// creates a child, End freezes the duration, SetAttr records per-span
// attributes (rows loaded, cache hits, retries). All methods are safe for
// concurrent use and are no-ops on a nil *Span, so untraced code paths pass
// nil spans around for free.
type Span struct {
	mu       sync.Mutex
	name     string
	parent   *Span
	start    time.Time
	end      time.Time // zero while the span is open; guarded by mu
	children []*Span   // guarded by mu
	attrs    []Field   // guarded by mu
}

// StartTrace begins a new root span.
func StartTrace(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Start begins a child span. Returns nil (a valid no-op span) when s is nil.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, parent: s, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// AddTimed appends an already-measured child span: a stage whose timing
// was captured outside the tracer (e.g. per-operator executor
// instrumentation) joins the tree with its externally measured duration.
// The child is created closed, offset from start by the given delay.
// Returns nil (a valid no-op span) when s is nil.
func (s *Span) AddTimed(name string, start time.Time, d time.Duration, attrs ...Field) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, parent: s, start: start, end: start.Add(d), attrs: attrs}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End freezes the span's duration. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr records (or replaces) one attribute on the span.
func (s *Span) SetAttr(key string, val interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, Field{Key: key, Val: val})
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns end-start, or the running duration for an open span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanInfo is one span flattened for storage: the row shape of the
// build_trace relation and the /metrics stage gauges.
type SpanInfo struct {
	Name       string
	Parent     string  // "" for the root
	Depth      int     // 0 for the root
	StartMs    float64 // offset from the root's start
	DurationMs float64
	Attrs      []Field
}

// Flatten returns the tree in pre-order as SpanInfo rows.
func (s *Span) Flatten() []SpanInfo {
	if s == nil {
		return nil
	}
	var out []SpanInfo
	s.flatten(&out, "", 0, s.startTime())
	return out
}

func (s *Span) startTime() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}

func (s *Span) flatten(out *[]SpanInfo, parent string, depth int, epoch time.Time) {
	s.mu.Lock()
	info := SpanInfo{
		Name:       s.name,
		Parent:     parent,
		Depth:      depth,
		StartMs:    durMs(s.start.Sub(epoch)),
		DurationMs: durMs(s.lockedDuration()),
		Attrs:      append([]Field{}, s.attrs...),
	}
	children := append([]*Span{}, s.children...)
	s.mu.Unlock()
	*out = append(*out, info)
	for _, c := range children {
		c.flatten(out, info.Name, depth+1, epoch)
	}
}

func (s *Span) lockedDuration() time.Duration {
	//lint:ignore guardedby callers hold s.mu (the locked* naming convention)
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	//lint:ignore guardedby callers hold s.mu (the locked* naming convention)
	return s.end.Sub(s.start)
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// spanJSON is the serialized span-tree node.
type spanJSON struct {
	Name       string                 `json:"name"`
	StartMs    float64                `json:"start_ms"`
	DurationMs float64                `json:"duration_ms"`
	Attrs      map[string]interface{} `json:"attrs,omitempty"`
	Children   []spanJSON             `json:"children,omitempty"`
}

func (s *Span) toJSON(epoch time.Time) spanJSON {
	s.mu.Lock()
	node := spanJSON{
		Name:       s.name,
		StartMs:    durMs(s.start.Sub(epoch)),
		DurationMs: durMs(s.lockedDuration()),
	}
	if len(s.attrs) > 0 {
		node.Attrs = make(map[string]interface{}, len(s.attrs))
		for _, f := range s.attrs {
			node.Attrs[f.Key] = normalizeAttr(f.Val)
		}
	}
	children := append([]*Span{}, s.children...)
	s.mu.Unlock()
	for _, c := range children {
		node.Children = append(node.Children, c.toJSON(epoch))
	}
	return node
}

// normalizeAttr keeps span attributes JSON-marshalable.
func normalizeAttr(v interface{}) interface{} {
	switch x := v.(type) {
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	default:
		if _, err := json.Marshal(v); err != nil {
			return fmt.Sprint(v)
		}
		return v
	}
}

// WriteJSON serializes the span tree as indented JSON.
func (s *Span) WriteJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.toJSON(s.startTime()))
}

// Summary writes a human-readable timing tree: one line per span with its
// duration, share of the root's wall time, and attributes.
func (s *Span) Summary(w io.Writer) {
	if s == nil {
		return
	}
	infos := s.Flatten()
	if len(infos) == 0 {
		return
	}
	total := infos[0].DurationMs
	nameWidth := 0
	for _, si := range infos {
		if n := 2*si.Depth + len(si.Name); n > nameWidth {
			nameWidth = n
		}
	}
	for _, si := range infos {
		pct := 0.0
		if total > 0 {
			pct = 100 * si.DurationMs / total
		}
		indent := ""
		for i := 0; i < si.Depth; i++ {
			indent += "  "
		}
		fmt.Fprintf(w, "%-*s %10.3fms %6.1f%%", nameWidth, indent+si.Name, si.DurationMs, pct)
		if len(si.Attrs) > 0 {
			fmt.Fprintf(w, "  %s", FormatFields(si.Attrs))
		}
		fmt.Fprintln(w)
	}
}

// Stages returns the root's direct children as (name, seconds) pairs sorted
// by name — the igdb_build_stage_seconds metric series.
func (s *Span) Stages() []StageTiming {
	var out []StageTiming
	for _, si := range s.Flatten() {
		if si.Depth == 1 {
			out = append(out, StageTiming{Name: si.Name, Seconds: si.DurationMs / 1000})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StageTiming is one top-level stage's wall time.
type StageTiming struct {
	Name    string
	Seconds float64
}
