package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := StartTrace("build")
	a := root.Start("load")
	a.SetAttr("rows", 10)
	a.SetAttr("rows", 12) // replaces, not appends
	a.End()
	b := root.Start("infer")
	b.End()
	root.End()

	infos := root.Flatten()
	if len(infos) != 3 {
		t.Fatalf("flattened spans = %d, want 3", len(infos))
	}
	if infos[0].Name != "build" || infos[0].Parent != "" || infos[0].Depth != 0 {
		t.Fatalf("root info = %+v", infos[0])
	}
	if infos[1].Name != "load" || infos[1].Parent != "build" || infos[1].Depth != 1 {
		t.Fatalf("child info = %+v", infos[1])
	}
	if len(infos[1].Attrs) != 1 || infos[1].Attrs[0].Val != 12 {
		t.Fatalf("attrs = %+v", infos[1].Attrs)
	}
	// Children are disjoint sequential stages: their durations cannot
	// exceed the root's.
	if infos[1].DurationMs+infos[2].DurationMs > infos[0].DurationMs+0.001 {
		t.Fatalf("children (%g + %g ms) exceed root (%g ms)",
			infos[1].DurationMs, infos[2].DurationMs, infos[0].DurationMs)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := StartTrace("x")
	time.Sleep(time.Millisecond)
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatal("second End moved the end time")
	}
	if d <= 0 {
		t.Fatal("duration not positive")
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	child := s.Start("child")
	if child != nil {
		t.Fatal("Start on nil must return nil")
	}
	child.SetAttr("k", 1)
	child.End()
	if s.Duration() != 0 || s.Name() != "" || s.Flatten() != nil {
		t.Fatal("nil span accessors must be zero-valued")
	}
	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s.Summary(&buf)
}

func TestSpanJSON(t *testing.T) {
	root := StartTrace("build")
	c := root.Start("load/atlas")
	c.SetAttr("rows", 99)
	c.SetAttr("err", nil)
	c.End()
	root.End()
	var buf strings.Builder
	if err := root.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name       string  `json:"name"`
		DurationMs float64 `json:"duration_ms"`
		Children   []struct {
			Name  string                 `json:"name"`
			Attrs map[string]interface{} `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("span JSON invalid: %v\n%s", err, buf.String())
	}
	if doc.Name != "build" || len(doc.Children) != 1 || doc.Children[0].Name != "load/atlas" {
		t.Fatalf("span JSON = %s", buf.String())
	}
	if doc.Children[0].Attrs["rows"] != float64(99) {
		t.Fatalf("attrs = %v", doc.Children[0].Attrs)
	}
}

func TestSpanSummaryAndStages(t *testing.T) {
	root := StartTrace("build")
	s1 := root.Start("zeta")
	s1.SetAttr("rows", 1)
	s1.End()
	s2 := root.Start("alpha")
	sub := s2.Start("voronoi")
	sub.End()
	s2.End()
	root.End()

	var buf strings.Builder
	root.Summary(&buf)
	out := buf.String()
	for _, want := range []string{"build", "zeta", "alpha", "voronoi", "rows=1", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	stages := root.Stages()
	if len(stages) != 2 || stages[0].Name != "alpha" || stages[1].Name != "zeta" {
		t.Fatalf("stages = %+v", stages)
	}
}

func TestSpanConcurrency(t *testing.T) {
	root := StartTrace("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Start("worker")
			sp.SetAttr("i", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Flatten()); got != 9 {
		t.Fatalf("spans = %d, want 9", got)
	}
}

func TestSpanAddTimed(t *testing.T) {
	root := StartTrace("sql")
	t0 := time.Now()
	child := root.AddTimed("scan", t0, 42*time.Millisecond, Field{Key: "rows_out", Val: 7})
	grand := child.AddTimed("probe", t0, 5*time.Millisecond)
	if grand == nil {
		t.Fatal("AddTimed on a timed child returned nil")
	}
	root.End()

	infos := root.Flatten()
	if len(infos) != 3 {
		t.Fatalf("flattened spans = %d, want 3", len(infos))
	}
	if infos[1].Name != "scan" || infos[1].Parent != "sql" {
		t.Fatalf("child info = %+v", infos[1])
	}
	if got := infos[1].DurationMs; got < 41.999 || got > 42.001 {
		t.Fatalf("child duration = %g ms, want exactly 42 (pre-measured)", got)
	}
	if len(infos[1].Attrs) != 1 || infos[1].Attrs[0].Key != "rows_out" {
		t.Fatalf("attrs = %+v", infos[1].Attrs)
	}
	if infos[2].Name != "probe" || infos[2].Depth != 2 {
		t.Fatalf("grandchild info = %+v", infos[2])
	}
	var nilSpan *Span
	if got := nilSpan.AddTimed("x", t0, time.Second); got != nil {
		t.Fatal("AddTimed on nil span must return nil")
	}
}
