package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t := time.Date(2026, 8, 6, 12, 0, 0, 123e6, time.UTC)
	return func() time.Time { return t }
}

func TestTextFormat(t *testing.T) {
	var buf strings.Builder
	l := New(&buf)
	l.now = fixedClock()
	l.Info("access", F("method", "POST"), F("path", "/sql?x=1 y"), F("status", 200), F("dur_ms", 1.25))
	got := strings.TrimSuffix(buf.String(), "\n")
	want := `ts=2026-08-06T12:00:00.123Z level=info msg=access method=POST path="/sql?x=1 y" status=200 dur_ms=1.25`
	if got != want {
		t.Fatalf("text record:\n got %q\nwant %q", got, want)
	}
}

func TestJSONFormat(t *testing.T) {
	var buf strings.Builder
	l := NewJSON(&buf)
	l.now = fixedClock()
	l.Error("boom", F("err", errors.New("it broke")), F("retries", 3), F("took", 158*time.Millisecond))
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]interface{}{
		"ts": "2026-08-06T12:00:00.123Z", "level": "error", "msg": "boom",
		"err": "it broke", "retries": float64(3), "took": "158ms",
	} {
		if rec[k] != want {
			t.Errorf("rec[%q] = %v, want %v", k, rec[k], want)
		}
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf strings.Builder
	l := New(&buf)
	l.SetLevel(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Fatalf("filtered output = %q", buf.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with SetLevel")
	}
}

func TestWithFields(t *testing.T) {
	var buf strings.Builder
	l := New(&buf).With(F("component", "serve"))
	l.Info("ready", F("addr", ":8080"))
	if got := buf.String(); !strings.Contains(got, "component=serve addr=:8080") {
		t.Fatalf("With fields missing: %q", got)
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored", F("k", "v"))
	l.Logf("ignored %d", 1)
	l.SetLevel(LevelDebug)
	l.SetJSON(true)
	if l.With(F("a", 1)) != nil {
		t.Fatal("With on nil should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestCallbackBridge(t *testing.T) {
	var lines []string
	l := NewCallback(func(format string, args ...interface{}) {
		if format != "%s" {
			t.Fatalf("format = %q", format)
		}
		lines = append(lines, args[0].(string))
	})
	l.Info("snapshot ready", F("seq", 2))
	if len(lines) != 1 || lines[0] != `level=info msg="snapshot ready" seq=2` {
		t.Fatalf("bridged lines = %q", lines)
	}
	if NewCallback(nil) != nil {
		t.Fatal("NewCallback(nil) must be the nil no-op logger")
	}
}

func TestConcurrentLogging(t *testing.T) {
	var mu sync.Mutex
	var n int
	l := NewCallback(func(string, ...interface{}) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info("m", F("j", j))
			}
		}()
	}
	wg.Wait()
	if n != 400 {
		t.Fatalf("records = %d, want 400", n)
	}
}

func TestFormatFields(t *testing.T) {
	got := FormatFields([]Field{F("rows", 42), F("status", "ok"), F("err", "bad thing")})
	if got != `rows=42 status=ok err="bad thing"` {
		t.Fatalf("FormatFields = %q", got)
	}
	if FormatFields(nil) != "" {
		t.Fatal("empty fields should render empty")
	}
}
