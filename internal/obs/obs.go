// Package obs is iGDB's zero-dependency observability layer: leveled
// structured logging (key=value text or JSON lines) and in-process span
// tracing for the build pipeline. Everything is stdlib-only and safe for
// concurrent use; a nil *Logger and a nil *Span are valid no-op receivers,
// so call sites never need nil checks and untraced code paths pay nothing
// but a pointer test.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. Records below the logger's level are dropped.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the conventional lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel resolves a level name ("debug", "info", "warn"/"warning",
// "error"); unknown names default to info.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Field is one key/value attribute of a log record or span.
type Field struct {
	Key string
	Val interface{}
}

// F constructs a Field.
func F(key string, val interface{}) Field { return Field{Key: key, Val: val} }

// Logger emits structured records to a writer or callback sink. Methods are
// safe for concurrent use, and all methods on a nil *Logger are no-ops.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer         // primary sink; guarded by mu
	sink  func(line string) // alternative sink (legacy printf bridges); guarded by mu
	json  bool              // JSON lines instead of key=value text; guarded by mu
	level Level             // minimum level emitted; guarded by mu
	base  []Field           // fields prepended to every record (With); guarded by mu
	now   func() time.Time  // injectable clock (tests); guarded by mu
	noTS  bool              // suppress ts= (sinks that stamp their own); guarded by mu
}

// New returns a text-mode Logger at LevelInfo writing to w.
func New(w io.Writer) *Logger {
	return &Logger{w: w, level: LevelInfo, now: time.Now}
}

// NewJSON returns a JSON-lines Logger at LevelInfo writing to w.
func NewJSON(w io.Writer) *Logger {
	l := New(w)
	l.json = true
	return l
}

// NewCallback bridges a legacy printf-style sink (like server.Config.Logf):
// each record is rendered as one key=value line (without a timestamp — the
// sink usually stamps its own) and passed as logf("%s", line).
func NewCallback(logf func(format string, args ...interface{})) *Logger {
	if logf == nil {
		return nil
	}
	return &Logger{
		sink:  func(line string) { logf("%s", line) },
		level: LevelInfo,
		now:   time.Now,
		noTS:  true,
	}
}

// FromEnv returns a Logger writing to w configured by IGDB_LOG_FORMAT
// ("json" or "text", default text) and IGDB_LOG_LEVEL (default info).
func FromEnv(w io.Writer) *Logger {
	l := New(w)
	if strings.EqualFold(os.Getenv("IGDB_LOG_FORMAT"), "json") {
		l.json = true
	}
	if lv := os.Getenv("IGDB_LOG_LEVEL"); lv != "" {
		l.level = ParseLevel(lv)
	}
	return l
}

// SetJSON switches between JSON-lines and key=value text output.
func (l *Logger) SetJSON(on bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.json = on
	l.mu.Unlock()
}

// SetLevel sets the minimum emitted level.
func (l *Logger) SetLevel(v Level) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.level = v
	l.mu.Unlock()
}

// Enabled reports whether records at level v would be emitted.
func (l *Logger) Enabled(v Level) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return v >= l.level
}

// With returns a child Logger that prepends fields to every record. It
// shares the parent's sink and settings at call time.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	child := &Logger{
		w: l.w, sink: l.sink, json: l.json, level: l.level,
		now: l.now, noTS: l.noTS,
	}
	child.base = append(append([]Field{}, l.base...), fields...)
	return child
}

// Debug emits a debug-level record.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info emits an info-level record.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn emits a warn-level record.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error emits an error-level record.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

// Logf is the printf bridge for call sites not yet converted to fields: the
// formatted string becomes the msg of an info-level record.
func (l *Logger) Logf(format string, args ...interface{}) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

func (l *Logger) log(v Level, msg string, fields []Field) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if v < l.level {
		return
	}
	var line string
	if l.json {
		line = renderJSON(l.stamp(), v, msg, l.base, fields)
	} else {
		line = renderText(l.stamp(), v, msg, l.base, fields)
	}
	if l.sink != nil {
		l.sink(line)
		return
	}
	if l.w != nil {
		fmt.Fprintln(l.w, line)
	}
}

// stamp returns the record timestamp, or "" when suppressed. Called from
// log with l.mu already held.
func (l *Logger) stamp() string {
	//lint:ignore guardedby the only caller (log) holds l.mu
	if l.noTS {
		return ""
	}
	//lint:ignore guardedby the only caller (log) holds l.mu
	now := l.now
	if now == nil {
		now = time.Now
	}
	return now().UTC().Format("2006-01-02T15:04:05.000Z")
}

// renderText emits ts=... level=... msg=... k=v ... with quoting only where
// needed, so lines stay grep-friendly.
func renderText(ts string, v Level, msg string, base, fields []Field) string {
	var b strings.Builder
	if ts != "" {
		b.WriteString("ts=")
		b.WriteString(ts)
		b.WriteByte(' ')
	}
	b.WriteString("level=")
	b.WriteString(v.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	for _, f := range base {
		writeTextField(&b, f)
	}
	for _, f := range fields {
		writeTextField(&b, f)
	}
	return b.String()
}

func writeTextField(b *strings.Builder, f Field) {
	b.WriteByte(' ')
	b.WriteString(f.Key)
	b.WriteByte('=')
	b.WriteString(quoteValue(valueString(f.Val)))
}

// valueString renders a field value as text; errors and Stringers use their
// own rendering.
func valueString(v interface{}) string {
	switch x := v.(type) {
	case nil:
		return "<nil>"
	case string:
		return x
	case error:
		return x.Error()
	case fmt.Stringer:
		return x.String()
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	default:
		return fmt.Sprint(v)
	}
}

// quoteValue quotes s only when it contains whitespace, quotes, '=', or
// control characters.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.IndexFunc(s, func(r rune) bool {
		return r <= ' ' || r == '"' || r == '=' || r == 0x7f
	}) < 0 {
		return s
	}
	return strconv.Quote(s)
}

// renderJSON emits one JSON object per record with fields in call order.
func renderJSON(ts string, v Level, msg string, base, fields []Field) string {
	var b strings.Builder
	b.WriteByte('{')
	if ts != "" {
		b.WriteString(`"ts":`)
		b.WriteString(strconv.Quote(ts))
		b.WriteByte(',')
	}
	b.WriteString(`"level":`)
	b.WriteString(strconv.Quote(v.String()))
	b.WriteString(`,"msg":`)
	b.WriteString(strconv.Quote(msg))
	seen := map[string]bool{"ts": true, "level": true, "msg": true}
	for _, f := range base {
		writeJSONField(&b, f, seen)
	}
	for _, f := range fields {
		writeJSONField(&b, f, seen)
	}
	b.WriteByte('}')
	return b.String()
}

func writeJSONField(b *strings.Builder, f Field, seen map[string]bool) {
	if seen[f.Key] {
		return // first occurrence wins; duplicates would break parsers
	}
	seen[f.Key] = true
	b.WriteByte(',')
	b.WriteString(strconv.Quote(f.Key))
	b.WriteByte(':')
	switch x := f.Val.(type) {
	case error:
		b.WriteString(mustJSON(x.Error()))
	case time.Duration:
		// json.Marshal would emit raw nanoseconds; "158ms" matches text mode.
		b.WriteString(mustJSON(x.String()))
	default:
		b.WriteString(mustJSON(f.Val))
	}
}

// mustJSON marshals v, falling back to its fmt rendering on failure (e.g.
// channels, NaN) so a record is never lost to one odd value.
func mustJSON(v interface{}) string {
	raw, err := json.Marshal(v)
	if err != nil {
		// Marshaling a plain string cannot fail, so this second error
		// branch is unreachable; it exists so no error is ever dropped.
		raw, err = json.Marshal(fmt.Sprint(v))
		if err != nil {
			return `"unserializable"`
		}
	}
	return string(raw)
}

// FormatFields renders fields as one "k=v k=v" string — the attrs column of
// the build_trace relation.
func FormatFields(fields []Field) string {
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(quoteValue(valueString(f.Val)))
	}
	return b.String()
}
