package ingest_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"igdb/internal/chaos"
	"igdb/internal/ingest"
	"igdb/internal/worldgen"
)

var (
	retryOnce  sync.Once
	retryWorld *worldgen.World
)

func smallWorld(t *testing.T) *worldgen.World {
	t.Helper()
	retryOnce.Do(func() { retryWorld = worldgen.Generate(worldgen.SmallConfig()) })
	return retryWorld
}

// sleepRecorder captures backoff delays instead of sleeping.
type sleepRecorder struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (r *sleepRecorder) sleep(d time.Duration) {
	r.mu.Lock()
	r.sleeps = append(r.sleeps, d)
	r.mu.Unlock()
}

func (r *sleepRecorder) all() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.sleeps...)
}

// TestCollectRetriesTransient: a source that fails transiently twice under
// a 3-attempt budget collects successfully, with jittered exponential
// backoff between attempts.
func TestCollectRetriesTransient(t *testing.T) {
	store := ingest.NewStore("")
	rec := &sleepRecorder{}
	base := 10 * time.Millisecond
	report, err := ingest.CollectWith(context.Background(), smallWorld(t), store, time.Unix(1780000000, 0).UTC(), ingest.CollectOptions{
		MaxAttempts: 3,
		BaseBackoff: base,
		MaxBackoff:  time.Second,
		Sleep:       rec.sleep,
		Intercept:   chaos.FlakySources(map[string]int{"pch": 2}),
	})
	if err != nil {
		t.Fatalf("collect failed despite sufficient budget: %v", err)
	}
	for _, res := range report.Results {
		want := 1
		if res.Source == "pch" {
			want = 3
		}
		if res.Attempts != want {
			t.Errorf("%s attempts = %d, want %d", res.Source, res.Attempts, want)
		}
	}
	if _, err := store.Latest("pch", time.Time{}); err != nil {
		t.Fatalf("pch snapshot missing after successful retry: %v", err)
	}
	sleeps := rec.all()
	if len(sleeps) != 2 {
		t.Fatalf("backoff sleeps = %v, want 2 entries", sleeps)
	}
	// Jitter multiplies by [0.5, 1.5): attempt 1 sleeps in [base/2, 3base/2),
	// attempt 2 doubles that.
	bounds := [][2]time.Duration{
		{base / 2, 3 * base / 2},
		{base, 3 * base},
	}
	for i, d := range sleeps {
		if d < bounds[i][0] || d >= bounds[i][1] {
			t.Errorf("sleep %d = %v, want in [%v, %v)", i, d, bounds[i][0], bounds[i][1])
		}
	}
}

// TestCollectPermanentErrorNotRetried: a non-transient failure consumes one
// attempt and fails the source immediately, with no backoff.
func TestCollectPermanentErrorNotRetried(t *testing.T) {
	store := ingest.NewStore("")
	rec := &sleepRecorder{}
	boom := errors.New("schema validation failed")
	report, err := ingest.CollectWith(context.Background(), smallWorld(t), store, time.Unix(1780000000, 0).UTC(), ingest.CollectOptions{
		MaxAttempts: 5,
		Sleep:       rec.sleep,
		Intercept: func(source string, attempt int) error {
			if source == "euroix" {
				return boom
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("collect succeeded despite permanent failure")
	}
	if !strings.Contains(err.Error(), "euroix") {
		t.Fatalf("error does not name the failed source: %v", err)
	}
	for _, res := range report.Results {
		if res.Source == "euroix" && res.Attempts != 1 {
			t.Errorf("permanent error retried: %d attempts", res.Attempts)
		}
	}
	if len(rec.all()) != 0 {
		t.Errorf("permanent error backed off: %v", rec.all())
	}
}

// TestCollectBudgetExhausted: a source that never stops failing transiently
// exhausts its budget and reports the wrapped transient error.
func TestCollectBudgetExhausted(t *testing.T) {
	store := ingest.NewStore("")
	report, err := ingest.CollectWith(context.Background(), smallWorld(t), store, time.Unix(1780000000, 0).UTC(), ingest.CollectOptions{
		MaxAttempts: 2,
		Sleep:       func(time.Duration) {},
		Intercept:   chaos.FlakySources(map[string]int{"rdns": 100}),
	})
	if err == nil || !strings.Contains(err.Error(), "rdns") {
		t.Fatalf("want rdns budget-exhausted error, got %v", err)
	}
	if !ingest.IsTransient(err) {
		t.Fatalf("exhausted-budget error lost its transient marker: %v", err)
	}
	for _, res := range report.Results {
		if res.Source == "rdns" && res.Attempts != 2 {
			t.Errorf("rdns attempts = %d, want 2", res.Attempts)
		}
	}
}

// TestCollectContinueOnError: with ContinueOnError one failed source does
// not stop the rest from being collected.
func TestCollectContinueOnError(t *testing.T) {
	store := ingest.NewStore("")
	report, err := ingest.CollectWith(context.Background(), smallWorld(t), store, time.Unix(1780000000, 0).UTC(), ingest.CollectOptions{
		MaxAttempts:     1,
		ContinueOnError: true,
		Sleep:           func(time.Duration) {},
		Intercept:       chaos.FlakySources(map[string]int{"atlas": 100}),
	})
	if err == nil {
		t.Fatal("continue-on-error still reports the first failure")
	}
	failed := report.Failed()
	if len(failed) != 1 || failed[0] != "atlas" {
		t.Fatalf("failed = %v, want [atlas]", failed)
	}
	for _, src := range ingest.Sources {
		_, lerr := store.Latest(src, time.Time{})
		if src == "atlas" {
			if !errors.Is(lerr, ingest.ErrNoSnapshot) {
				t.Errorf("atlas: want ErrNoSnapshot, got %v", lerr)
			}
			continue
		}
		if lerr != nil {
			t.Errorf("%s not collected after unrelated failure: %v", src, lerr)
		}
	}
}

// TestStoreConcurrentAccess is the -race regression for the latent bug this
// PR fixes: Store.Save used to mutate s.mem with no lock while the server's
// rebuild re-read it.
func TestStoreConcurrentAccess(t *testing.T) {
	store := ingest.NewStore("")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				snap := ingest.Snapshot{
					Source: fmt.Sprintf("src%d", i),
					AsOf:   time.Unix(int64(1780000000+j), 0).UTC(),
					Files:  map[string][]byte{"f": []byte("data")},
				}
				if err := store.Save(snap); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, _ = store.Latest(fmt.Sprintf("src%d", i), time.Time{})
				_ = store.Versions(fmt.Sprintf("src%d", i))
				_ = store.Load()
			}
		}(i)
	}
	wg.Wait()
}

// TestChaosTransientIsRetryable: the chaos store's transient faults carry
// the ingest retryable marker and clear after N reads.
func TestChaosTransientIsRetryable(t *testing.T) {
	base := ingest.NewStore("")
	if err := base.Save(ingest.Snapshot{
		Source: "pch",
		AsOf:   time.Unix(1780000000, 0).UTC(),
		Files:  map[string][]byte{"ixpdir.tsv": []byte("x\ty\n")},
	}); err != nil {
		t.Fatal(err)
	}
	cs := chaos.New(base, 1)
	cs.Inject("pch", chaos.Transient(2))
	for i := 0; i < 2; i++ {
		_, err := cs.Latest("pch", time.Time{})
		if !ingest.IsTransient(err) {
			t.Fatalf("read %d: want transient error, got %v", i, err)
		}
	}
	if _, err := cs.Latest("pch", time.Time{}); err != nil {
		t.Fatalf("read after budget: %v", err)
	}
}
