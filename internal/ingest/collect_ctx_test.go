package ingest_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"igdb/internal/ingest"
)

// TestCollectCancelledBeforeStart: an already-cancelled context aborts the
// collection before any source is attempted.
func TestCollectCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := ingest.CollectWith(ctx, smallWorld(t), ingest.NewStore(""), time.Unix(1780000000, 0).UTC(), ingest.CollectOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(report.Results) != 0 {
		t.Fatalf("attempted %d sources after cancellation, want 0", len(report.Results))
	}
}

// TestCollectCancelInterruptsBackoff: cancelling mid-backoff returns
// promptly instead of sleeping out the remaining delay schedule. The
// backoff here is far longer than the test budget, so a pass proves the
// wait observed the context.
func TestCollectCancelInterruptsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := ingest.CollectWith(ctx, smallWorld(t), ingest.NewStore(""), time.Unix(1780000000, 0).UTC(), ingest.CollectOptions{
		MaxAttempts: 5,
		BaseBackoff: time.Hour,
		MaxBackoff:  time.Hour,
		Intercept: func(source string, attempt int) error {
			return ingest.Transient(errors.New("injected"))
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("collection took %v after cancellation; backoff ignored the context", elapsed)
	}
}
