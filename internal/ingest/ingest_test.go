package ingest

import (
	"testing"
	"time"

	"igdb/internal/worldgen"
)

var world = worldgen.Generate(worldgen.SmallConfig())

func ts(day int) time.Time {
	return time.Date(2026, 7, day, 12, 0, 0, 0, time.UTC)
}

func TestCollectMemoryStore(t *testing.T) {
	store := NewStore("")
	if err := Collect(world, store, ts(1)); err != nil {
		t.Fatal(err)
	}
	for _, src := range Sources {
		snap, err := store.Latest(src, time.Time{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(snap.Files) == 0 {
			t.Fatalf("%s: empty snapshot", src)
		}
		for name, data := range snap.Files {
			if len(data) == 0 {
				t.Fatalf("%s/%s: empty file", src, name)
			}
		}
	}
}

func TestLatestAsOfSelection(t *testing.T) {
	store := NewStore("")
	if err := Collect(world, store, ts(1)); err != nil {
		t.Fatal(err)
	}
	if err := Collect(world, store, ts(10)); err != nil {
		t.Fatal(err)
	}
	// Newest by default.
	snap, err := store.Latest("atlas", time.Time{})
	if err != nil || !snap.AsOf.Equal(ts(10)) {
		t.Errorf("latest = %v, err=%v; want day 10", snap.AsOf, err)
	}
	// Historical as-of picks the older snapshot.
	snap, err = store.Latest("atlas", ts(5))
	if err != nil || !snap.AsOf.Equal(ts(1)) {
		t.Errorf("as-of day 5 = %v, err=%v; want day 1", snap.AsOf, err)
	}
	// Before the first snapshot: error.
	if _, err := store.Latest("atlas", ts(1).Add(-time.Hour)); err == nil {
		t.Error("as-of before any snapshot should fail")
	}
	// Unknown source: error.
	if _, err := store.Latest("nope", time.Time{}); err == nil {
		t.Error("unknown source should fail")
	}
	if got := len(store.Versions("atlas")); got != 2 {
		t.Errorf("versions = %d, want 2", got)
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := NewStore(dir)
	if err := Collect(world, store, ts(2)); err != nil {
		t.Fatal(err)
	}
	// A fresh store must recover everything from disk.
	store2 := NewStore(dir)
	if err := store2.Load(); err != nil {
		t.Fatal(err)
	}
	for _, src := range Sources {
		orig, err1 := store.Latest(src, time.Time{})
		loaded, err2 := store2.Latest(src, time.Time{})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", src, err1, err2)
		}
		if !orig.AsOf.Equal(loaded.AsOf) {
			t.Fatalf("%s: timestamps differ", src)
		}
		if len(orig.Files) != len(loaded.Files) {
			t.Fatalf("%s: file sets differ", src)
		}
		for name, data := range orig.Files {
			got := loaded.Files[name]
			if string(got) != string(data) {
				t.Fatalf("%s/%s: content differs after disk round trip", src, name)
			}
		}
	}
}

func TestLoadMissingDirIsQuiet(t *testing.T) {
	store := NewStore("/nonexistent/igdb-test-dir")
	if err := store.Load(); err != nil {
		t.Errorf("missing dir should be quiet: %v", err)
	}
}

func TestSaveRejectsBadNames(t *testing.T) {
	dir := t.TempDir()
	store := NewStore(dir)
	err := store.Save(Snapshot{
		Source: "x", AsOf: ts(1),
		Files: map[string][]byte{"../escape": []byte("no")},
	})
	if err == nil {
		t.Error("path traversal name should be rejected")
	}
	if err := store.Save(Snapshot{AsOf: ts(1)}); err == nil {
		t.Error("snapshot without source should be rejected")
	}
}
