// Package ingest implements iGDB's collection pipeline (§2 of the paper):
// it pulls a snapshot from every input source, stamps it with an
// acquisition time, and stores the raw bytes so the database can be rebuilt
// for any historical as-of date. In the paper the sources are live web
// endpoints; here they are the worldgen-backed emulations, but the
// snapshot/refresh mechanics are identical — including the failure
// mechanics: sources time out, return garbage, or disappear, so collection
// retries transient errors with jittered exponential backoff and the build
// side can quarantine sources it cannot parse (core.BuildOptions.Degraded).
package ingest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"igdb/internal/obs"
	"igdb/internal/sources/asrank"
	"igdb/internal/sources/atlas"
	"igdb/internal/sources/euroix"
	"igdb/internal/sources/he"
	"igdb/internal/sources/naturalearth"
	"igdb/internal/sources/pch"
	"igdb/internal/sources/peeringdb"
	"igdb/internal/sources/rdns"
	"igdb/internal/sources/ripeatlas"
	"igdb/internal/sources/routeviews"
	"igdb/internal/sources/telegeography"
	"igdb/internal/worldgen"
)

// Sources lists every dataset the collector pulls, in collection order.
var Sources = []string{
	"naturalearth", "atlas", "peeringdb", "telegeography", "pch", "he",
	"euroix", "rdns", "asrank", "routeviews", "ripeatlas",
}

// ErrNoSnapshot reports that a store holds no usable snapshot of a source.
// Callers distinguish "missing" from "corrupt" with errors.Is.
var ErrNoSnapshot = errors.New("ingest: no snapshot")

// transientError marks an error as retryable: the read may succeed if
// attempted again (timeouts, connection resets, rate limits). Parse errors
// are never transient — retrying a malformed document returns the same
// malformed document.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so IsTransient reports true. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// retryable with Transient.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Snapshot is one timestamped pull of one source.
type Snapshot struct {
	Source string
	AsOf   time.Time
	Files  map[string][]byte
}

// Reader is the read side of a snapshot store: what core.Build and the
// paths pipeline consume. chaos.Store wraps any Reader to inject faults.
type Reader interface {
	// Latest returns the most recent snapshot of a source at or before
	// asOf (zero asOf = newest). A store with nothing usable returns an
	// error wrapping ErrNoSnapshot.
	Latest(source string, asOf time.Time) (Snapshot, error)
	// Versions lists the snapshot timestamps available for a source.
	Versions(source string) []time.Time
}

// Reloader is a Reader that can pick up snapshots collected since it was
// opened (the server's periodic rebuild path).
type Reloader interface {
	Reader
	Load() error
}

// Store persists snapshots. A Store with an empty dir keeps everything in
// memory (the common case for tests and benchmarks); with a dir it mirrors
// the paper's on-disk layout <dir>/<source>/<timestamp>/<file>.
//
// A Store is safe for concurrent use: the server's background rebuild
// re-reads it while a collector may still be appending snapshots.
type Store struct {
	dir string

	mu  sync.RWMutex
	mem map[string][]Snapshot // guarded by mu
}

var (
	_ Reader   = (*Store)(nil)
	_ Reloader = (*Store)(nil)
)

// NewStore creates a snapshot store. dir may be "" for memory-only.
func NewStore(dir string) *Store {
	return &Store{dir: dir, mem: make(map[string][]Snapshot)}
}

const tsLayout = "2006-01-02T15-04-05Z"

// Save stores a snapshot.
func (s *Store) Save(snap Snapshot) error {
	if snap.Source == "" {
		return fmt.Errorf("ingest: snapshot without source")
	}
	s.mu.Lock()
	s.mem[snap.Source] = append(s.mem[snap.Source], snap)
	sort.Slice(s.mem[snap.Source], func(i, j int) bool {
		return s.mem[snap.Source][i].AsOf.Before(s.mem[snap.Source][j].AsOf)
	})
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	base := filepath.Join(s.dir, snap.Source, snap.AsOf.UTC().Format(tsLayout))
	if err := os.MkdirAll(base, 0o755); err != nil {
		return err
	}
	for name, data := range snap.Files {
		if strings.Contains(name, "/") || strings.Contains(name, "..") {
			return fmt.Errorf("ingest: invalid file name %q", name)
		}
		if err := os.WriteFile(filepath.Join(base, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Load reads all snapshots from disk into memory (no-op for memory stores).
func (s *Store) Load() error {
	if s.dir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, src := range entries {
		if !src.IsDir() {
			continue
		}
		tsDirs, err := os.ReadDir(filepath.Join(s.dir, src.Name()))
		if err != nil {
			return err
		}
		for _, td := range tsDirs {
			if !td.IsDir() {
				continue
			}
			asOf, err := time.Parse(tsLayout, td.Name())
			if err != nil {
				continue
			}
			if s.hasLocked(src.Name(), asOf) {
				continue
			}
			snap := Snapshot{Source: src.Name(), AsOf: asOf, Files: map[string][]byte{}}
			files, err := os.ReadDir(filepath.Join(s.dir, src.Name(), td.Name()))
			if err != nil {
				return err
			}
			for _, f := range files {
				data, err := os.ReadFile(filepath.Join(s.dir, src.Name(), td.Name(), f.Name()))
				if err != nil {
					return err
				}
				snap.Files[f.Name()] = data
			}
			s.mem[src.Name()] = append(s.mem[src.Name()], snap)
		}
		sort.Slice(s.mem[src.Name()], func(i, j int) bool {
			return s.mem[src.Name()][i].AsOf.Before(s.mem[src.Name()][j].AsOf)
		})
	}
	return nil
}

// hasLocked reports whether a snapshot of source at exactly asOf is already
// in memory. Callers hold s.mu, per the *Locked naming convention.
func (s *Store) hasLocked(source string, asOf time.Time) bool {
	//lint:ignore guardedby callers hold s.mu (the *Locked suffix convention)
	for _, sn := range s.mem[source] {
		if sn.AsOf.Equal(asOf) {
			return true
		}
	}
	return false
}

// Latest returns the most recent snapshot of a source at or before asOf.
// A zero asOf means "newest available".
func (s *Store) Latest(source string, asOf time.Time) (Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snaps := s.mem[source]
	if len(snaps) == 0 {
		return Snapshot{}, fmt.Errorf("%w: no snapshots for %q", ErrNoSnapshot, source)
	}
	if asOf.IsZero() {
		return snaps[len(snaps)-1], nil
	}
	var best *Snapshot
	for i := range snaps {
		if !snaps[i].AsOf.After(asOf) {
			best = &snaps[i]
		}
	}
	if best == nil {
		return Snapshot{}, fmt.Errorf("%w: no snapshot of %q at or before %s", ErrNoSnapshot, source, asOf)
	}
	return *best, nil
}

// Versions lists the snapshot timestamps available for a source.
func (s *Store) Versions(source string) []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []time.Time
	for _, sn := range s.mem[source] {
		out = append(out, sn.AsOf)
	}
	return out
}

// CollectOptions tunes the per-source retry loop. The zero value means
// "3 attempts, 100ms base backoff, fail the whole collection on the first
// exhausted source" — the strict semantics Collect always had.
type CollectOptions struct {
	// MaxAttempts bounds tries per source (<=0 means 3).
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt
	// (<=0 means 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubled delay (<=0 means 5s).
	MaxBackoff time.Duration
	// Seed drives the backoff jitter (0.5x–1.5x), so tests are
	// reproducible.
	Seed int64
	// ContinueOnError keeps collecting remaining sources after one
	// exhausts its attempt budget; the failure is reported in the
	// CollectReport instead of aborting.
	ContinueOnError bool
	// Sleep replaces the backoff wait between attempts (tests). When nil
	// the wait is a timer select that aborts on context cancellation.
	Sleep func(time.Duration)
	// Intercept, when set, runs before each fetch attempt and may return
	// an error to inject a fault (chaos.FlakySources builds these).
	// Transient errors are retried; permanent ones are not.
	Intercept func(source string, attempt int) error
	// Logger receives structured retry/give-up records. When nil it is
	// derived from Logf; when both are nil collection is silent.
	Logger *obs.Logger
	// Logf is the legacy printf sink, bridged into Logger when Logger is
	// unset.
	Logf func(format string, args ...interface{})
	// Trace, when set, records one span per source with attempt/byte
	// attributes under it.
	Trace *obs.Span
}

func (o *CollectOptions) fillDefaults() {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Logger == nil && o.Logf != nil {
		o.Logger = obs.NewCallback(o.Logf)
	}
}

// retriesTotal counts retry sleeps across every CollectWith call in this
// process — the igdb_collect_retries_total metric.
var retriesTotal atomic.Uint64

// RetriesTotal reports the process-wide count of collection retries.
func RetriesTotal() uint64 { return retriesTotal.Load() }

// SourceResult is one source's collection outcome.
type SourceResult struct {
	Source   string
	Attempts int
	Err      error // nil when the snapshot was saved
}

// CollectReport summarizes one CollectWith run.
type CollectReport struct {
	Results []SourceResult
}

// Failed lists the sources that exhausted their attempt budget.
func (r *CollectReport) Failed() []string {
	var out []string
	for _, res := range r.Results {
		if res.Err != nil {
			out = append(out, res.Source)
		}
	}
	return out
}

// fetcher pulls one source's files from the (emulated) live Internet.
type fetcher struct {
	source string
	fetch  func(w *worldgen.World) (map[string][]byte, error)
}

// fetchers enumerates every source in Sources order.
var fetchers = []fetcher{
	{"naturalearth", func(w *worldgen.World) (map[string][]byte, error) {
		ne := naturalearth.Export(w)
		return map[string][]byte{"places.csv": ne.PlacesCSV, "roads.csv": ne.RoadsCSV}, nil
	}},
	{"atlas", func(w *worldgen.World) (map[string][]byte, error) {
		at := atlas.Export(w)
		return map[string][]byte{"nodes.csv": at.NodesCSV, "links.csv": at.LinksCSV}, nil
	}},
	{"peeringdb", func(w *worldgen.World) (map[string][]byte, error) {
		raw, err := peeringdb.Marshal(peeringdb.Export(w))
		if err != nil {
			return nil, err
		}
		return map[string][]byte{"dump.json": raw}, nil
	}},
	{"telegeography", func(w *worldgen.World) (map[string][]byte, error) {
		raw, err := telegeography.Marshal(telegeography.Export(w))
		if err != nil {
			return nil, err
		}
		return map[string][]byte{"cables.json": raw}, nil
	}},
	{"pch", func(w *worldgen.World) (map[string][]byte, error) {
		return map[string][]byte{"ixpdir.tsv": pch.Export(w), "asn_orgs.tsv": pch.ExportOrgs(w)}, nil
	}},
	{"he", func(w *worldgen.World) (map[string][]byte, error) {
		return map[string][]byte{"exchanges.txt": he.Export(w)}, nil
	}},
	{"euroix", func(w *worldgen.World) (map[string][]byte, error) {
		raw, err := euroix.Marshal(euroix.Export(w))
		if err != nil {
			return nil, err
		}
		return map[string][]byte{"ixps.json": raw}, nil
	}},
	{"rdns", func(w *worldgen.World) (map[string][]byte, error) {
		return map[string][]byte{"ptr.tsv": rdns.Export(w)}, nil
	}},
	{"asrank", func(w *worldgen.World) (map[string][]byte, error) {
		ar, err := asrank.Export(w)
		if err != nil {
			return nil, err
		}
		return map[string][]byte{"asns.jsonl": ar.ASNsJSONL, "links.txt": ar.LinksTxt}, nil
	}},
	{"routeviews", func(w *worldgen.World) (map[string][]byte, error) {
		return map[string][]byte{"pfx2as.tsv": routeviews.Export(w)}, nil
	}},
	{"ripeatlas", func(w *worldgen.World) (map[string][]byte, error) {
		ra, err := ripeatlas.Export(w)
		if err != nil {
			return nil, err
		}
		return map[string][]byte{"anchors.json": ra.AnchorsJSON, "measurements.jsonl": ra.MeasurementsJSONL}, nil
	}},
}

// Collect pulls a fresh snapshot of every source from the (emulated) live
// Internet and saves it with the given acquisition time. It is CollectWith
// under default options: 3 attempts per source, exponential backoff, abort
// on the first source that exhausts its budget.
func Collect(w *worldgen.World, store *Store, asOf time.Time) error {
	_, err := CollectWith(context.Background(), w, store, asOf, CollectOptions{})
	return err
}

// CollectWith pulls every source under the given fault-tolerance options.
// Each source gets its own attempt budget; transient errors back off with
// jittered exponential delay and retry, permanent (parse/marshal) errors
// fail the source immediately. Cancelling ctx aborts the collection at the
// next backoff wait or source boundary. The returned report always covers
// every attempted source, even when an error is also returned.
func CollectWith(ctx context.Context, w *worldgen.World, store *Store, asOf time.Time, opts CollectOptions) (*CollectReport, error) {
	opts.fillDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	report := &CollectReport{}
	var firstErr error
	for _, f := range fetchers {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("ingest: %w", err)
			}
			return report, firstErr
		}
		res := SourceResult{Source: f.source}
		sp := opts.Trace.Start("collect/" + f.source)
		var files map[string][]byte
		for attempt := 1; attempt <= opts.MaxAttempts; attempt++ {
			res.Attempts = attempt
			var err error
			if opts.Intercept != nil {
				err = opts.Intercept(f.source, attempt)
			}
			if err == nil {
				files, err = f.fetch(w)
			}
			if err == nil {
				res.Err = nil
				break
			}
			res.Err = err
			if !IsTransient(err) {
				opts.Logger.Warn("permanent collection error, not retrying",
					obs.F("source", f.source), obs.F("err", err))
				break
			}
			if attempt == opts.MaxAttempts {
				opts.Logger.Error("collection attempt budget exhausted",
					obs.F("source", f.source), obs.F("attempts", opts.MaxAttempts), obs.F("err", err))
				break
			}
			delay := backoff(opts.BaseBackoff, opts.MaxBackoff, attempt, rng)
			retriesTotal.Add(1)
			opts.Logger.Warn("collection attempt failed, retrying",
				obs.F("source", f.source), obs.F("attempt", attempt),
				obs.F("max_attempts", opts.MaxAttempts), obs.F("err", err),
				obs.F("backoff", delay))
			if opts.Sleep != nil {
				opts.Sleep(delay)
			} else if err := sleepContext(ctx, delay); err != nil {
				res.Err = fmt.Errorf("backoff interrupted: %w", err)
				break
			}
		}
		if res.Err == nil {
			if err := store.Save(Snapshot{Source: f.source, AsOf: asOf, Files: files}); err != nil {
				res.Err = fmt.Errorf("save: %w", err)
			}
		}
		bytes := 0
		for _, data := range files {
			bytes += len(data)
		}
		sp.SetAttr("attempts", res.Attempts)
		sp.SetAttr("bytes", bytes)
		if res.Err != nil {
			sp.SetAttr("err", res.Err.Error())
		}
		sp.End()
		report.Results = append(report.Results, res)
		if res.Err != nil {
			wrapped := fmt.Errorf("ingest: %s: %w", f.source, res.Err)
			if !opts.ContinueOnError {
				return report, wrapped
			}
			if firstErr == nil {
				firstErr = wrapped
			}
		}
	}
	return report, firstErr
}

// sleepContext waits d or until ctx is cancelled, whichever comes first.
func sleepContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff computes the delay before retry #attempt: base doubled per
// attempt, capped, then jittered to 50–150% so a fleet of collectors does
// not retry in lockstep.
func backoff(base, cap time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}
