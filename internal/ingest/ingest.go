// Package ingest implements iGDB's collection pipeline (§2 of the paper):
// it pulls a snapshot from every input source, stamps it with an
// acquisition time, and stores the raw bytes so the database can be rebuilt
// for any historical as-of date. In the paper the sources are live web
// endpoints; here they are the worldgen-backed emulations, but the
// snapshot/refresh mechanics are identical.
package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"igdb/internal/sources/asrank"
	"igdb/internal/sources/atlas"
	"igdb/internal/sources/euroix"
	"igdb/internal/sources/he"
	"igdb/internal/sources/naturalearth"
	"igdb/internal/sources/pch"
	"igdb/internal/sources/peeringdb"
	"igdb/internal/sources/rdns"
	"igdb/internal/sources/ripeatlas"
	"igdb/internal/sources/routeviews"
	"igdb/internal/sources/telegeography"
	"igdb/internal/worldgen"
)

// Sources lists every dataset the collector pulls, in collection order.
var Sources = []string{
	"naturalearth", "atlas", "peeringdb", "telegeography", "pch", "he",
	"euroix", "rdns", "asrank", "routeviews", "ripeatlas",
}

// Snapshot is one timestamped pull of one source.
type Snapshot struct {
	Source string
	AsOf   time.Time
	Files  map[string][]byte
}

// Store persists snapshots. A Store with an empty dir keeps everything in
// memory (the common case for tests and benchmarks); with a dir it mirrors
// the paper's on-disk layout <dir>/<source>/<timestamp>/<file>.
type Store struct {
	dir string
	mem map[string][]Snapshot
}

// NewStore creates a snapshot store. dir may be "" for memory-only.
func NewStore(dir string) *Store {
	return &Store{dir: dir, mem: make(map[string][]Snapshot)}
}

const tsLayout = "2006-01-02T15-04-05Z"

// Save stores a snapshot.
func (s *Store) Save(snap Snapshot) error {
	if snap.Source == "" {
		return fmt.Errorf("ingest: snapshot without source")
	}
	s.mem[snap.Source] = append(s.mem[snap.Source], snap)
	sort.Slice(s.mem[snap.Source], func(i, j int) bool {
		return s.mem[snap.Source][i].AsOf.Before(s.mem[snap.Source][j].AsOf)
	})
	if s.dir == "" {
		return nil
	}
	base := filepath.Join(s.dir, snap.Source, snap.AsOf.UTC().Format(tsLayout))
	if err := os.MkdirAll(base, 0o755); err != nil {
		return err
	}
	for name, data := range snap.Files {
		if strings.Contains(name, "/") || strings.Contains(name, "..") {
			return fmt.Errorf("ingest: invalid file name %q", name)
		}
		if err := os.WriteFile(filepath.Join(base, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Load reads all snapshots from disk into memory (no-op for memory stores).
func (s *Store) Load() error {
	if s.dir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, src := range entries {
		if !src.IsDir() {
			continue
		}
		tsDirs, err := os.ReadDir(filepath.Join(s.dir, src.Name()))
		if err != nil {
			return err
		}
		for _, td := range tsDirs {
			if !td.IsDir() {
				continue
			}
			asOf, err := time.Parse(tsLayout, td.Name())
			if err != nil {
				continue
			}
			if s.has(src.Name(), asOf) {
				continue
			}
			snap := Snapshot{Source: src.Name(), AsOf: asOf, Files: map[string][]byte{}}
			files, err := os.ReadDir(filepath.Join(s.dir, src.Name(), td.Name()))
			if err != nil {
				return err
			}
			for _, f := range files {
				data, err := os.ReadFile(filepath.Join(s.dir, src.Name(), td.Name(), f.Name()))
				if err != nil {
					return err
				}
				snap.Files[f.Name()] = data
			}
			s.mem[src.Name()] = append(s.mem[src.Name()], snap)
		}
		sort.Slice(s.mem[src.Name()], func(i, j int) bool {
			return s.mem[src.Name()][i].AsOf.Before(s.mem[src.Name()][j].AsOf)
		})
	}
	return nil
}

func (s *Store) has(source string, asOf time.Time) bool {
	for _, sn := range s.mem[source] {
		if sn.AsOf.Equal(asOf) {
			return true
		}
	}
	return false
}

// Latest returns the most recent snapshot of a source at or before asOf.
// A zero asOf means "newest available".
func (s *Store) Latest(source string, asOf time.Time) (Snapshot, error) {
	snaps := s.mem[source]
	if len(snaps) == 0 {
		return Snapshot{}, fmt.Errorf("ingest: no snapshots for %q", source)
	}
	if asOf.IsZero() {
		return snaps[len(snaps)-1], nil
	}
	var best *Snapshot
	for i := range snaps {
		if !snaps[i].AsOf.After(asOf) {
			best = &snaps[i]
		}
	}
	if best == nil {
		return Snapshot{}, fmt.Errorf("ingest: no snapshot of %q at or before %s", source, asOf)
	}
	return *best, nil
}

// Versions lists the snapshot timestamps available for a source.
func (s *Store) Versions(source string) []time.Time {
	var out []time.Time
	for _, sn := range s.mem[source] {
		out = append(out, sn.AsOf)
	}
	return out
}

// Collect pulls a fresh snapshot of every source from the (emulated) live
// Internet and saves it with the given acquisition time.
func Collect(w *worldgen.World, store *Store, asOf time.Time) error {
	ne := naturalearth.Export(w)
	at := atlas.Export(w)
	pdbDump := peeringdb.Export(w)
	pdbRaw, err := peeringdb.Marshal(pdbDump)
	if err != nil {
		return fmt.Errorf("ingest: peeringdb: %w", err)
	}
	tgRaw, err := telegeography.Marshal(telegeography.Export(w))
	if err != nil {
		return fmt.Errorf("ingest: telegeography: %w", err)
	}
	exRaw, err := euroix.Marshal(euroix.Export(w))
	if err != nil {
		return fmt.Errorf("ingest: euroix: %w", err)
	}
	ar, err := asrank.Export(w)
	if err != nil {
		return fmt.Errorf("ingest: asrank: %w", err)
	}
	ra, err := ripeatlas.Export(w)
	if err != nil {
		return fmt.Errorf("ingest: ripeatlas: %w", err)
	}
	snaps := []Snapshot{
		{Source: "naturalearth", AsOf: asOf, Files: map[string][]byte{"places.csv": ne.PlacesCSV, "roads.csv": ne.RoadsCSV}},
		{Source: "atlas", AsOf: asOf, Files: map[string][]byte{"nodes.csv": at.NodesCSV, "links.csv": at.LinksCSV}},
		{Source: "peeringdb", AsOf: asOf, Files: map[string][]byte{"dump.json": pdbRaw}},
		{Source: "telegeography", AsOf: asOf, Files: map[string][]byte{"cables.json": tgRaw}},
		{Source: "pch", AsOf: asOf, Files: map[string][]byte{"ixpdir.tsv": pch.Export(w), "asn_orgs.tsv": pch.ExportOrgs(w)}},
		{Source: "he", AsOf: asOf, Files: map[string][]byte{"exchanges.txt": he.Export(w)}},
		{Source: "euroix", AsOf: asOf, Files: map[string][]byte{"ixps.json": exRaw}},
		{Source: "rdns", AsOf: asOf, Files: map[string][]byte{"ptr.tsv": rdns.Export(w)}},
		{Source: "asrank", AsOf: asOf, Files: map[string][]byte{"asns.jsonl": ar.ASNsJSONL, "links.txt": ar.LinksTxt}},
		{Source: "routeviews", AsOf: asOf, Files: map[string][]byte{"pfx2as.tsv": routeviews.Export(w)}},
		{Source: "ripeatlas", AsOf: asOf, Files: map[string][]byte{"anchors.json": ra.AnchorsJSON, "measurements.jsonl": ra.MeasurementsJSONL}},
	}
	for _, sn := range snaps {
		if err := store.Save(sn); err != nil {
			return fmt.Errorf("ingest: save %s: %w", sn.Source, err)
		}
	}
	return nil
}
