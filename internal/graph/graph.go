// Package graph implements the weighted-graph algorithms iGDB's path
// analyses rely on: Dijkstra shortest paths over right-of-way networks
// (standard-path inference, §3.1), A* with a geographic heuristic, Yen's
// k-shortest paths (alternate-corridor analysis), and connected components
// (map sanity checks).
//
// Nodes are dense integer IDs assigned by the caller; edges are directed
// with non-negative float64 weights. Undirected graphs add both arcs.
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Edge is a weighted arc to a target node.
type Edge struct {
	To     int
	Weight float64
}

// Graph is an adjacency-list weighted digraph.
type Graph struct {
	adj [][]Edge
}

// New creates a graph with n nodes (0..n-1) and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.adj) }

// NumEdges returns the number of directed arcs.
func (g *Graph) NumEdges() int {
	var n int
	for _, es := range g.adj {
		n += len(es)
	}
	return n
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds a directed arc u→v. It panics on out-of-range nodes or a
// negative weight (Dijkstra's precondition).
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj)))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
}

// AddUndirected adds arcs in both directions with the same weight.
func (g *Graph) AddUndirected(u, v int, w float64) {
	g.AddEdge(u, v, w)
	g.AddEdge(v, u, w)
}

// Neighbors returns the out-edges of u. The slice is shared; callers must
// not mutate it.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// item is a priority-queue element.
type item struct {
	node int
	dist float64
}

type pq []item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// ShortestPath returns the minimum-weight path from src to dst and its total
// weight. ok is false when dst is unreachable. The path includes both
// endpoints; a path from a node to itself is [src] with weight 0.
func (g *Graph) ShortestPath(src, dst int) (path []int, weight float64, ok bool) {
	dist, prev := g.dijkstra(src, dst, nil)
	if math.IsInf(dist[dst], 1) {
		return nil, 0, false
	}
	return reconstruct(prev, src, dst), dist[dst], true
}

// ShortestPathWithHeuristic runs A*: h(n) must be an admissible lower bound
// on the remaining distance from n to dst (e.g. great-circle distance for a
// geographic graph).
func (g *Graph) ShortestPathWithHeuristic(src, dst int, h func(int) float64) (path []int, weight float64, ok bool) {
	dist, prev := g.dijkstra(src, dst, h)
	if math.IsInf(dist[dst], 1) {
		return nil, 0, false
	}
	return reconstruct(prev, src, dst), dist[dst], true
}

// dijkstra runs Dijkstra (h == nil) or A* (h != nil) from src, stopping
// early once dst is settled when dst >= 0.
func (g *Graph) dijkstra(src, dst int, h func(int) float64) (dist []float64, prev []int) {
	n := len(g.adj)
	dist = make([]float64, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	if src < 0 || src >= n {
		return dist, prev
	}
	dist[src] = 0
	q := &pq{}
	push := func(node int, d float64) {
		prio := d
		if h != nil {
			prio += h(node)
		}
		heap.Push(q, item{node: node, dist: prio})
	}
	push(src, 0)
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			return dist, prev
		}
		for _, e := range g.adj[u] {
			if nd := dist[u] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				push(e.To, nd)
			}
		}
	}
	return dist, prev
}

// AllShortestFrom returns the distance from src to every node (Inf when
// unreachable).
func (g *Graph) AllShortestFrom(src int) []float64 {
	dist, _ := g.dijkstra(src, -1, nil)
	return dist
}

func reconstruct(prev []int, src, dst int) []int {
	var rev []int
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Path is a node sequence with a total weight, as returned by KShortest.
type Path struct {
	Nodes  []int
	Weight float64
}

// KShortest returns up to k loopless shortest paths from src to dst in
// non-decreasing weight order (Yen's algorithm).
func (g *Graph) KShortest(src, dst, k int) []Path {
	if k <= 0 {
		return nil
	}
	first, w, ok := g.ShortestPath(src, dst)
	if !ok {
		return nil
	}
	result := []Path{{Nodes: first, Weight: w}}
	var candidates []Path
	for len(result) < k {
		lastPath := result[len(result)-1].Nodes
		for i := 0; i < len(lastPath)-1; i++ {
			spurNode := lastPath[i]
			rootPath := lastPath[:i+1]
			// Block edges that would recreate already-found paths sharing
			// this root, and block root nodes to keep paths loopless.
			blockedEdges := make(map[[2]int]bool)
			for _, p := range result {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootPath) {
					blockedEdges[[2]int{p.Nodes[i], p.Nodes[i+1]}] = true
				}
			}
			blockedNodes := make(map[int]bool)
			for _, n := range rootPath[:len(rootPath)-1] {
				blockedNodes[n] = true
			}
			spurPath, spurW, ok := g.shortestAvoiding(spurNode, dst, blockedEdges, blockedNodes)
			if !ok {
				continue
			}
			total := append(append([]int{}, rootPath[:len(rootPath)-1]...), spurPath...)
			rootW := g.pathWeight(rootPath)
			cand := Path{Nodes: total, Weight: rootW + spurW}
			if !containsPath(candidates, cand) && !containsPath(result, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].Weight < candidates[j].Weight })
		result = append(result, candidates[0])
		candidates = candidates[1:]
	}
	return result
}

func (g *Graph) pathWeight(nodes []int) float64 {
	var w float64
	for i := 0; i+1 < len(nodes); i++ {
		best := math.Inf(1)
		for _, e := range g.adj[nodes[i]] {
			if e.To == nodes[i+1] && e.Weight < best {
				best = e.Weight
			}
		}
		w += best
	}
	return w
}

func (g *Graph) shortestAvoiding(src, dst int, blockedEdges map[[2]int]bool, blockedNodes map[int]bool) ([]int, float64, bool) {
	n := len(g.adj)
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{}
	heap.Push(q, item{node: src, dist: 0})
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, e := range g.adj[u] {
			if blockedNodes[e.To] || blockedEdges[[2]int{u, e.To}] {
				continue
			}
			if nd := dist[u] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				heap.Push(q, item{node: e.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0, false
	}
	return reconstruct(prev, src, dst), dist[dst], true
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, p Path) bool {
	for _, q := range ps {
		if len(q.Nodes) != len(p.Nodes) {
			continue
		}
		same := true
		for i := range q.Nodes {
			if q.Nodes[i] != p.Nodes[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// Components returns a component label per node (treating edges as
// undirected) and the number of components.
func (g *Graph) Components() (labels []int, count int) {
	n := len(g.adj)
	// Build reverse adjacency for undirected traversal.
	rev := make([][]int, n)
	for u, es := range g.adj {
		for _, e := range es {
			rev[e.To] = append(rev[e.To], u)
		}
	}
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.adj[u] {
				if labels[e.To] == -1 {
					labels[e.To] = count
					stack = append(stack, e.To)
				}
			}
			for _, v := range rev[u] {
				if labels[v] == -1 {
					labels[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// BellmanFord computes single-source shortest distances in O(V·E); used as
// a test oracle for Dijkstra and available for graphs a caller builds with
// potential negative weights (none in iGDB proper).
func (g *Graph) BellmanFord(src int) []float64 {
	n := len(g.adj)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, e := range g.adj[u] {
				if nd := dist[u] + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
