package graph

import (
	"container/heap"
	"math"
)

// View is a masked subgraph of an immutable Graph: individual nodes and
// undirected edges can be disabled without copying the adjacency list, so
// thousands of what-if variants of one graph can be evaluated cheaply.
// Masks are undirected — disabling edge (u,v) removes both arcs — matching
// how every network in iGDB proper is built (AddUndirected).
//
// A View is NOT safe for concurrent use; the intended pattern (used by
// internal/simulate's worker pool) is one long-lived View per goroutine
// over a shared Graph, calling Reset between evaluations to reuse the
// internal scratch buffers.
type View struct {
	g       *Graph
	nodeOff []bool
	edgeOff map[[2]int]bool

	// rev caches the reverse adjacency for undirected traversal, built on
	// first Components call (the Graph beneath a View never changes).
	rev [][]int

	// Dijkstra scratch, reused across calls.
	done []bool
	prev []int
}

// NewView creates a view of g with nothing disabled.
func NewView(g *Graph) *View {
	return &View{
		g:       g,
		nodeOff: make([]bool, g.Len()),
		edgeOff: make(map[[2]int]bool),
	}
}

// Reset re-enables every node and edge, keeping allocations for reuse.
func (v *View) Reset() {
	for i := range v.nodeOff {
		v.nodeOff[i] = false
	}
	clear(v.edgeOff)
}

// DisableNode removes u and all its incident arcs from the view. Out-of-range
// nodes are ignored (a scenario can reference a node absent at this scale).
func (v *View) DisableNode(u int) {
	if u >= 0 && u < len(v.nodeOff) {
		v.nodeOff[u] = true
	}
}

// DisableEdge removes the undirected edge u-v (both arcs) from the view.
func (v *View) DisableEdge(u, v2 int) {
	if u > v2 {
		u, v2 = v2, u
	}
	v.edgeOff[[2]int{u, v2}] = true
}

// NodeEnabled reports whether u is present in the view.
func (v *View) NodeEnabled(u int) bool {
	return u >= 0 && u < len(v.nodeOff) && !v.nodeOff[u]
}

// edgeEnabled reports whether the arc u→w survives the mask.
func (v *View) edgeEnabled(u, w int) bool {
	if v.nodeOff[u] || v.nodeOff[w] {
		return false
	}
	if len(v.edgeOff) == 0 {
		return true
	}
	a, b := u, w
	if a > b {
		a, b = b, a
	}
	return !v.edgeOff[[2]int{a, b}]
}

// DisabledEdges returns the number of distinct undirected edges masked out.
func (v *View) DisabledEdges() int { return len(v.edgeOff) }

// Components labels every enabled node with its connected component
// (treating arcs as undirected) and returns the number of components.
// Disabled nodes get label -1 and are not counted.
func (v *View) Components() (labels []int, count int) {
	n := v.g.Len()
	if v.rev == nil {
		v.rev = make([][]int, n)
		for u := 0; u < n; u++ {
			for _, e := range v.g.adj[u] {
				v.rev[e.To] = append(v.rev[e.To], u)
			}
		}
	}
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int
	for s := 0; s < n; s++ {
		if labels[s] != -1 || v.nodeOff[s] {
			continue
		}
		labels[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range v.g.adj[u] {
				if labels[e.To] == -1 && v.edgeEnabled(u, e.To) {
					labels[e.To] = count
					stack = append(stack, e.To)
				}
			}
			for _, w := range v.rev[u] {
				if labels[w] == -1 && v.edgeEnabled(u, w) {
					labels[w] = count
					stack = append(stack, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// AllShortestFrom returns the distance from src to every node over the
// masked graph (Inf when unreachable, including every node when src itself
// is disabled). The returned slice is freshly allocated per call.
func (v *View) AllShortestFrom(src int) []float64 {
	return v.dijkstra(src, -1)
}

// ShortestPath returns the minimum-weight masked path from src to dst.
func (v *View) ShortestPath(src, dst int) (path []int, weight float64, ok bool) {
	dist := v.dijkstra(src, dst)
	if dst < 0 || dst >= len(dist) || math.IsInf(dist[dst], 1) {
		return nil, 0, false
	}
	return reconstruct(v.prev, src, dst), dist[dst], true
}

// dijkstra is the masked variant of Graph.dijkstra, reusing the view's
// scratch buffers (done, prev) across calls.
func (v *View) dijkstra(src, dst int) []float64 {
	n := v.g.Len()
	dist := make([]float64, n)
	if cap(v.done) < n {
		v.done = make([]bool, n)
		v.prev = make([]int, n)
	}
	done, prev := v.done[:n], v.prev[:n]
	for i := range dist {
		dist[i] = math.Inf(1)
		done[i] = false
		prev[i] = -1
	}
	if src < 0 || src >= n || v.nodeOff[src] {
		return dist
	}
	dist[src] = 0
	q := &pq{}
	heap.Push(q, item{node: src, dist: 0})
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, e := range v.g.adj[u] {
			if !v.edgeEnabled(u, e.To) {
				continue
			}
			if nd := dist[u] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				heap.Push(q, item{node: e.To, dist: nd})
			}
		}
	}
	return dist
}
