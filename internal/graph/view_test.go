package graph

import (
	"math"
	"testing"
)

// ring builds a weighted undirected cycle 0-1-...-n-1-0 with unit weights.
func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddUndirected(i, (i+1)%n, 1)
	}
	return g
}

func TestViewMatchesGraphWhenNothingDisabled(t *testing.T) {
	g := ring(8)
	g.AddUndirected(0, 4, 0.5) // a chord
	v := NewView(g)

	wantLabels, wantCount := g.Components()
	gotLabels, gotCount := v.Components()
	if gotCount != wantCount {
		t.Fatalf("components = %d, want %d", gotCount, wantCount)
	}
	for i := range wantLabels {
		if (wantLabels[i] == -1) != (gotLabels[i] == -1) {
			t.Fatalf("node %d label mismatch", i)
		}
	}
	for src := 0; src < g.Len(); src++ {
		want := g.AllShortestFrom(src)
		got := v.AllShortestFrom(src)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("dist[%d→%d] = %g, want %g", src, i, got[i], want[i])
			}
		}
	}
}

func TestViewDisableEdge(t *testing.T) {
	cases := []struct {
		name       string
		edges      [][2]int // disabled undirected edges
		src, dst   int
		wantKm     float64
		wantOK     bool
		wantCompat int // expected component count
	}{
		{"no mask", nil, 0, 4, 4, true, 1},
		{"one cut reroutes", [][2]int{{0, 1}}, 0, 4, 4, true, 1},
		{"two cuts partition", [][2]int{{0, 1}, {7, 0}}, 0, 4, 0, false, 2},
		{"reversed key normalizes", [][2]int{{1, 0}, {0, 7}}, 0, 4, 0, false, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := NewView(ring(8))
			for _, e := range tc.edges {
				v.DisableEdge(e[0], e[1])
			}
			_, km, ok := v.ShortestPath(tc.src, tc.dst)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if ok && km != tc.wantKm {
				t.Fatalf("km = %g, want %g", km, tc.wantKm)
			}
			if _, count := v.Components(); count != tc.wantCompat {
				t.Fatalf("components = %d, want %d", count, tc.wantCompat)
			}
		})
	}
}

func TestViewDisableNode(t *testing.T) {
	// Star: 0 at the center, leaves 1..4.
	g := New(5)
	for i := 1; i < 5; i++ {
		g.AddUndirected(0, i, 1)
	}
	v := NewView(g)
	v.DisableNode(0)

	labels, count := v.Components()
	if count != 4 {
		t.Fatalf("components after hub failure = %d, want 4", count)
	}
	if labels[0] != -1 {
		t.Fatalf("disabled node labeled %d, want -1", labels[0])
	}
	if dist := v.AllShortestFrom(1); !math.IsInf(dist[2], 1) {
		t.Fatalf("leaf 1 should not reach leaf 2 without the hub, got %g", dist[2])
	}
	// Dijkstra from a disabled node reaches nothing, not even itself.
	if dist := v.AllShortestFrom(0); !math.IsInf(dist[0], 1) {
		t.Fatalf("disabled source should be unreachable, got %g", dist[0])
	}
	// Out-of-range disables are ignored rather than panicking.
	v.DisableNode(-1)
	v.DisableNode(99)
}

func TestViewResetReuse(t *testing.T) {
	v := NewView(ring(6))
	v.DisableEdge(0, 1)
	v.DisableNode(3)
	if _, count := v.Components(); count != 2 {
		t.Fatalf("masked components = %d, want 2", count)
	}
	v.Reset()
	if _, count := v.Components(); count != 1 {
		t.Fatalf("components after Reset = %d, want 1", count)
	}
	if v.DisabledEdges() != 0 {
		t.Fatalf("DisabledEdges after Reset = %d", v.DisabledEdges())
	}
	_, km, ok := v.ShortestPath(0, 3)
	if !ok || km != 3 {
		t.Fatalf("path after Reset = %g,%v, want 3,true", km, ok)
	}
}

func TestViewPathReconstruction(t *testing.T) {
	v := NewView(ring(8))
	v.DisableEdge(0, 1)
	path, km, ok := v.ShortestPath(1, 0)
	if !ok || km != 7 {
		t.Fatalf("detour = %g,%v, want 7,true", km, ok)
	}
	want := []int{1, 2, 3, 4, 5, 6, 7, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}
