package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// diamond builds:
//
//	0 →1→ 1 →1→ 3
//	0 →4→ 2 →1→ 3        (long southern route)
//	1 →1→ 2
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 4)
	g.AddEdge(2, 3, 1)
	g.AddEdge(1, 2, 1)
	return g
}

func TestShortestPathBasic(t *testing.T) {
	g := diamond()
	path, w, ok := g.ShortestPath(0, 3)
	if !ok || w != 2 || !reflect.DeepEqual(path, []int{0, 1, 3}) {
		t.Errorf("got path=%v w=%v ok=%v", path, w, ok)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := diamond()
	path, w, ok := g.ShortestPath(2, 2)
	if !ok || w != 0 || !reflect.DeepEqual(path, []int{2}) {
		t.Errorf("self path = %v w=%v ok=%v", path, w, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if _, _, ok := g.ShortestPath(0, 2); ok {
		t.Error("node 2 should be unreachable")
	}
	// Directed: reverse direction unreachable too.
	if _, _, ok := g.ShortestPath(1, 0); ok {
		t.Error("directed edge should not be traversable backwards")
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		u, v int
		w    float64
	}{
		{-1, 0, 1}, {0, 5, 1}, {0, 1, -2}, {0, 1, math.NaN()},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d,%v) should panic", c.u, c.v, c.w)
				}
			}()
			g := New(2)
			g.AddEdge(c.u, c.v, c.w)
		}()
	}
}

func TestAddNodeAndCounts(t *testing.T) {
	g := New(0)
	a, b := g.AddNode(), g.AddNode()
	g.AddUndirected(a, b, 2.5)
	if g.Len() != 2 || g.NumEdges() != 2 {
		t.Errorf("Len=%d NumEdges=%d", g.Len(), g.NumEdges())
	}
	if len(g.Neighbors(a)) != 1 || g.Neighbors(a)[0].To != b {
		t.Error("neighbors wrong")
	}
}

func randomGraph(r *rand.Rand, n, m int) *Graph {
	g := New(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v, r.Float64()*100)
	}
	return g
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(40)
		g := randomGraph(r, n, n*3)
		src := r.Intn(n)
		want := g.BellmanFord(src)
		got := g.AllShortestFrom(src)
		for i := range want {
			if math.IsInf(want[i], 1) != math.IsInf(got[i], 1) {
				t.Fatalf("trial %d node %d: reachability disagrees", trial, i)
			}
			if !math.IsInf(want[i], 1) && math.Abs(want[i]-got[i]) > 1e-9 {
				t.Fatalf("trial %d node %d: dijkstra %v vs bellman-ford %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestPathWeightConsistency(t *testing.T) {
	// The returned path's edge weights must sum to the returned weight.
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(30)
		g := randomGraph(r, n, n*4)
		src, dst := r.Intn(n), r.Intn(n)
		path, w, ok := g.ShortestPath(src, dst)
		if !ok {
			continue
		}
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		if math.Abs(g.pathWeight(path)-w) > 1e-9 {
			t.Fatalf("path weight %v != reported %v", g.pathWeight(path), w)
		}
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	// Heuristic h=0 must reproduce Dijkstra exactly; a consistent positive
	// heuristic must give the same weight.
	r := rand.New(rand.NewSource(21))
	n := 50
	// Build a geometric graph where nodes are on a line, so |i-j| is an
	// admissible heuristic when all edges have weight >= distance.
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddUndirected(i, i+1, 1)
	}
	for i := 0; i < 40; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			d := math.Abs(float64(u - v))
			g.AddUndirected(u, v, d+r.Float64()*3)
		}
	}
	for trial := 0; trial < 20; trial++ {
		src, dst := r.Intn(n), r.Intn(n)
		_, w1, ok1 := g.ShortestPath(src, dst)
		h := func(node int) float64 { return math.Abs(float64(node - dst)) }
		_, w2, ok2 := g.ShortestPathWithHeuristic(src, dst, h)
		if ok1 != ok2 || math.Abs(w1-w2) > 1e-9 {
			t.Fatalf("A* %v/%v vs dijkstra %v/%v", w2, ok2, w1, ok1)
		}
	}
}

func TestKShortestDiamond(t *testing.T) {
	g := diamond()
	paths := g.KShortest(0, 3, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	// 0-1-3 (2), 0-1-2-3 (3), 0-2-3 (5)
	wantWeights := []float64{2, 3, 5}
	for i, p := range paths {
		if math.Abs(p.Weight-wantWeights[i]) > 1e-9 {
			t.Errorf("path %d weight = %v, want %v (%v)", i, p.Weight, wantWeights[i], p.Nodes)
		}
	}
	if !reflect.DeepEqual(paths[0].Nodes, []int{0, 1, 3}) {
		t.Errorf("first path = %v", paths[0].Nodes)
	}
}

func TestKShortestLoopless(t *testing.T) {
	g := diamond()
	g.AddUndirected(1, 0, 0.1) // tempt loops
	for _, p := range g.KShortest(0, 3, 5) {
		seen := make(map[int]bool)
		for _, n := range p.Nodes {
			if seen[n] {
				t.Fatalf("path %v revisits node %d", p.Nodes, n)
			}
			seen[n] = true
		}
	}
}

func TestKShortestFewerThanK(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	paths := g.KShortest(0, 2, 10)
	if len(paths) != 1 {
		t.Errorf("only one path exists, got %d", len(paths))
	}
	if got := g.KShortest(0, 2, 0); got != nil {
		t.Error("k=0 should be nil")
	}
	if got := g.KShortest(2, 0, 3); got != nil {
		t.Error("unreachable should be nil")
	}
}

func TestKShortestNonDecreasing(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	g := randomGraph(r, 20, 80)
	paths := g.KShortest(0, 19, 6)
	for i := 1; i < len(paths); i++ {
		if paths[i].Weight < paths[i-1].Weight-1e-9 {
			t.Fatalf("weights decrease: %v then %v", paths[i-1].Weight, paths[i].Weight)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddUndirected(0, 1, 1)
	g.AddUndirected(1, 2, 1)
	g.AddEdge(3, 4, 1) // directed still joins a weak component
	labels, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (0-1-2, 3-4, 5)", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Error("3,4 should share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("5 should be isolated")
	}
}

func TestComponentsEmpty(t *testing.T) {
	g := New(0)
	if _, count := g.Components(); count != 0 {
		t.Error("empty graph has 0 components")
	}
}

func TestBellmanFordBadSource(t *testing.T) {
	g := New(2)
	d := g.BellmanFord(-1)
	if !math.IsInf(d[0], 1) {
		t.Error("invalid source should leave all Inf")
	}
}

func BenchmarkDijkstraGrid(b *testing.B) {
	// 100x100 grid ≈ a continental right-of-way road mesh.
	const side = 100
	g := New(side * side)
	id := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				g.AddUndirected(id(x, y), id(x+1, y), 1)
			}
			if y+1 < side {
				g.AddUndirected(id(x, y), id(x, y+1), 1)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPath(0, side*side-1)
	}
}
