package iptrie

import (
	"math/rand"
	"testing"
)

func TestParseFormatAddr(t *testing.T) {
	cases := []struct {
		s    string
		want uint32
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xFFFFFFFF},
		{"10.0.0.1", 0x0A000001},
		{"192.168.1.2", 0xC0A80102},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseAddr(%q) = %x, %v; want %x", c.s, got, err, c.want)
		}
		if back := FormatAddr(c.want); back != c.s {
			t.Errorf("FormatAddr(%x) = %q, want %q", c.want, back, c.s)
		}
	}
	for _, bad := range []string{"", "1.2.3", "256.1.1.1", "::1", "banana"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) should fail", bad)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.1.2.3/8")
	if err != nil {
		t.Fatal(err)
	}
	// Host bits zeroed.
	if p.String() != "10.0.0.0/8" {
		t.Errorf("got %s", p)
	}
	if !p.Contains(MustParseAddr("10.255.0.1")) {
		t.Error("10/8 should contain 10.255.0.1")
	}
	if p.Contains(MustParseAddr("11.0.0.1")) {
		t.Error("10/8 should not contain 11.0.0.1")
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8", "10.0.0.0/y"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		plen int
		want uint32
	}{
		{0, 0}, {8, 0xFF000000}, {16, 0xFFFF0000}, {24, 0xFFFFFF00},
		{32, 0xFFFFFFFF}, {-1, 0}, {40, 0xFFFFFFFF},
	}
	for _, c := range cases {
		if got := Mask(c.plen); got != c.want {
			t.Errorf("Mask(%d) = %x, want %x", c.plen, got, c.want)
		}
	}
}

func TestTrieLongestPrefixMatch(t *testing.T) {
	tr := New()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 100)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 200)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 300)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	cases := []struct {
		addr string
		want int
		ok   bool
	}{
		{"10.1.2.3", 300, true},
		{"10.1.9.9", 200, true},
		{"10.9.9.9", 100, true},
		{"11.0.0.1", 0, false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Lookup(%s) = %d,%v; want %d,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	tr := New()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), 7)
	got, ok := tr.Lookup(MustParseAddr("203.0.113.5"))
	if !ok || got != 7 {
		t.Errorf("default route lookup = %d,%v", got, ok)
	}
}

func TestTrieReplace(t *testing.T) {
	tr := New()
	p := MustParsePrefix("192.0.2.0/24")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("replace should not grow trie: Len=%d", tr.Len())
	}
	if got, _ := tr.Lookup(MustParseAddr("192.0.2.1")); got != 2 {
		t.Errorf("got %d, want replaced value 2", got)
	}
}

func TestLookupPrefix(t *testing.T) {
	tr := New()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 100)
	tr.Insert(MustParsePrefix("10.64.0.0/10"), 200)
	p, v, ok := tr.LookupPrefix(MustParseAddr("10.65.1.1"))
	if !ok || v != 200 || p.String() != "10.64.0.0/10" {
		t.Errorf("got %s %d %v", p, v, ok)
	}
	p, v, ok = tr.LookupPrefix(MustParseAddr("10.1.1.1"))
	if !ok || v != 100 || p.String() != "10.0.0.0/8" {
		t.Errorf("got %s %d %v", p, v, ok)
	}
	if _, _, ok := tr.LookupPrefix(MustParseAddr("192.0.2.1")); ok {
		t.Error("no covering prefix expected")
	}
}

func TestTrieMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tr := New()
	var prefixes []Prefix
	var values []int
	for i := 0; i < 500; i++ {
		plen := 8 + r.Intn(17) // /8../24
		addr := r.Uint32() & Mask(plen)
		p := Prefix{Addr: addr, Len: plen}
		tr.Insert(p, i)
		// Linear table keeps the LAST value per exact prefix, like the trie.
		replaced := false
		for j, q := range prefixes {
			if q == p {
				values[j] = i
				replaced = true
				break
			}
		}
		if !replaced {
			prefixes = append(prefixes, p)
			values = append(values, i)
		}
	}
	lpm := func(addr uint32) (int, bool) {
		bestLen, bestVal, ok := -1, 0, false
		for j, p := range prefixes {
			if p.Contains(addr) && p.Len > bestLen {
				bestLen, bestVal, ok = p.Len, values[j], true
			}
		}
		return bestVal, ok
	}
	for q := 0; q < 2000; q++ {
		addr := r.Uint32()
		got, gok := tr.Lookup(addr)
		want, wok := lpm(addr)
		if gok != wok || (gok && got != want) {
			t.Fatalf("addr %s: trie %d,%v vs scan %d,%v", FormatAddr(addr), got, gok, want, wok)
		}
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	tr := New()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("9.0.0.0/8"), 2)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 3)
	var seen []string
	tr.Walk(func(p Prefix, v int) bool {
		seen = append(seen, p.String())
		return true
	})
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"}
	if len(seen) != 3 || seen[0] != want[0] || seen[1] != want[1] || seen[2] != want[2] {
		t.Errorf("walk order = %v, want %v", seen, want)
	}
	count := 0
	tr.Walk(func(p Prefix, v int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d, want 1", count)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	tr := New()
	for i := 0; i < 100000; i++ { // ~a realistic RIB slice
		plen := 8 + r.Intn(17)
		tr.Insert(Prefix{Addr: r.Uint32() & Mask(plen), Len: plen}, i)
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = r.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}
