// Package iptrie implements an IPv4 binary (Patricia-style) trie for
// longest-prefix matching. iGDB's bdrmap substrate uses it to map traceroute
// hop addresses to the origin AS of the most specific covering BGP prefix.
package iptrie

import (
	"fmt"
	"net"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR prefix in host byte order.
type Prefix struct {
	Addr uint32 // network address with host bits zeroed
	Len  int    // prefix length, 0..32
}

// ParsePrefix parses "a.b.c.d/len". Host bits are zeroed.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("iptrie: prefix %q missing /len", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	plen, err := strconv.Atoi(s[slash+1:])
	if err != nil || plen < 0 || plen > 32 {
		return Prefix{}, fmt.Errorf("iptrie: bad prefix length in %q", s)
	}
	return Prefix{Addr: addr & Mask(plen), Len: plen}, nil
}

// MustParsePrefix parses s and panics on error; for tests and constants.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the prefix as CIDR.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", FormatAddr(p.Addr), p.Len)
}

// Contains reports whether addr is covered by the prefix.
func (p Prefix) Contains(addr uint32) bool {
	return addr&Mask(p.Len) == p.Addr
}

// Mask returns the network mask for a prefix length.
func Mask(plen int) uint32 {
	if plen <= 0 {
		return 0
	}
	if plen >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - plen)
}

// ParseAddr parses a dotted-quad IPv4 address into host byte order.
func ParseAddr(s string) (uint32, error) {
	ip := net.ParseIP(s)
	if ip == nil {
		return 0, fmt.Errorf("iptrie: bad address %q", s)
	}
	v4 := ip.To4()
	if v4 == nil {
		return 0, fmt.Errorf("iptrie: %q is not IPv4", s)
	}
	return uint32(v4[0])<<24 | uint32(v4[1])<<16 | uint32(v4[2])<<8 | uint32(v4[3]), nil
}

// MustParseAddr parses s and panics on error.
func MustParseAddr(s string) uint32 {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// FormatAddr renders a host-order IPv4 address as a dotted quad.
func FormatAddr(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

type node struct {
	children [2]*node
	hasValue bool
	value    int
}

// Trie maps IPv4 prefixes to integer values (ASNs in iGDB) with
// longest-prefix-match lookup.
type Trie struct {
	root node
	size int
}

// New returns an empty trie.
func New() *Trie { return &Trie{} }

// Len returns the number of stored prefixes.
func (t *Trie) Len() int { return t.size }

// Insert associates value with the prefix, replacing any previous value for
// exactly that prefix.
func (t *Trie) Insert(p Prefix, value int) {
	n := &t.root
	for i := 0; i < p.Len; i++ {
		bit := (p.Addr >> (31 - uint(i))) & 1
		if n.children[bit] == nil {
			n.children[bit] = &node{}
		}
		n = n.children[bit]
	}
	if !n.hasValue {
		t.size++
	}
	n.hasValue = true
	n.value = value
}

// Lookup returns the value of the most specific prefix covering addr.
func (t *Trie) Lookup(addr uint32) (value int, ok bool) {
	n := &t.root
	if n.hasValue {
		value, ok = n.value, true
	}
	for i := 0; i < 32 && n != nil; i++ {
		bit := (addr >> (31 - uint(i))) & 1
		n = n.children[bit]
		if n != nil && n.hasValue {
			value, ok = n.value, true
		}
	}
	return value, ok
}

// LookupPrefix returns the most specific covering prefix and its value.
func (t *Trie) LookupPrefix(addr uint32) (p Prefix, value int, ok bool) {
	n := &t.root
	if n.hasValue {
		p, value, ok = Prefix{}, n.value, true
	}
	var prefixBits uint32
	for i := 0; i < 32 && n != nil; i++ {
		bit := (addr >> (31 - uint(i))) & 1
		prefixBits |= bit << (31 - uint(i))
		n = n.children[bit]
		if n != nil && n.hasValue {
			p = Prefix{Addr: prefixBits & Mask(i+1), Len: i + 1}
			value, ok = n.value, true
		}
	}
	return p, value, ok
}

// Walk visits every stored prefix in address order, stopping early if fn
// returns false.
func (t *Trie) Walk(fn func(p Prefix, value int) bool) {
	var rec func(n *node, addr uint32, depth int) bool
	rec = func(n *node, addr uint32, depth int) bool {
		if n == nil {
			return true
		}
		if n.hasValue {
			if !fn(Prefix{Addr: addr, Len: depth}, n.value) {
				return false
			}
		}
		if !rec(n.children[0], addr, depth+1) {
			return false
		}
		return rec(n.children[1], addr|1<<(31-uint(depth)), depth+1)
	}
	rec(&t.root, 0, 0)
}
