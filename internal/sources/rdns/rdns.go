// Package rdns emulates the Rapid7 Sonar reverse-DNS dataset: one
// "<ip>\t<hostname>" line per IPv4 PTR record. Coverage is partial — the
// paper observes 36% of traceroute IPs never resolve — and that gap is
// reproduced here because routers without hostnames simply have no line.
package rdns

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"

	"igdb/internal/iptrie"
	"igdb/internal/worldgen"
)

// Record is one PTR entry.
type Record struct {
	IP       uint32
	Hostname string
}

// Export renders the PTR table: every router with a hostname, plus the
// borrowed border-link addresses, which resolve to the answering router's
// hostname (as real /30 link addresses usually do).
func Export(w *worldgen.World) []byte {
	var b bytes.Buffer
	for _, rt := range w.Routers {
		if rt.Hostname == "" {
			continue
		}
		fmt.Fprintf(&b, "%s\t%s\n", iptrie.FormatAddr(rt.IP), rt.Hostname)
	}
	ips := make([]uint32, 0, len(w.BorderPTR))
	for ip := range w.BorderPTR {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		fmt.Fprintf(&b, "%s\t%s\n", iptrie.FormatAddr(ip), w.BorderPTR[ip])
	}
	return b.Bytes()
}

// Parse reads PTR lines back.
func Parse(data []byte) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		tab := strings.IndexByte(line, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("rdns: line %d missing tab", lineNo)
		}
		ip, err := iptrie.ParseAddr(line[:tab])
		if err != nil {
			return nil, fmt.Errorf("rdns: line %d: %v", lineNo, err)
		}
		out = append(out, Record{IP: ip, Hostname: line[tab+1:]})
	}
	return out, sc.Err()
}

// Lookup builds an IP → hostname map from records.
func Lookup(recs []Record) map[uint32]string {
	m := make(map[uint32]string, len(recs))
	for _, r := range recs {
		m[r.IP] = r.Hostname
	}
	return m
}
