package atlas

import "testing"

// FuzzParse asserts the Internet Atlas CSV parser returns errors, never
// panics, for arbitrary node and link files.
func FuzzParse(f *testing.F) {
	nodesHdr := "network,node,city,state,country,lat,lon\n"
	linksHdr := "from,to,network\n"
	f.Add(
		[]byte(nodesHdr+"ExampleNet,Austin PoP,Austin,TX,US,30.27,-97.74\n"),
		[]byte(linksHdr+"Austin PoP,Dallas PoP,ExampleNet\n"),
	)
	f.Add([]byte(nodesHdr), []byte(linksHdr))
	f.Add([]byte("a,b\n1"), []byte("x\n"))
	f.Add([]byte(nodesHdr+"n,n,c,s,cc,bad,coords\n"), []byte(linksHdr))
	f.Add([]byte(`"unclosed`), []byte(``))
	f.Add([]byte(``), []byte(``))
	f.Fuzz(func(t *testing.T, nodes, links []byte) {
		_, _, _ = Parse(&Dataset{NodesCSV: nodes, LinksCSV: links})
	})
}
