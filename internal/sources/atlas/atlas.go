// Package atlas emulates the Internet Atlas dataset [Durairajan et al.]:
// PoP-level physical nodes and node-to-node connectivity for ~1.5K networks,
// published as CSV. Exact conduit geometry is withheld (as in reality, for
// security reasons) — only the fact that two PoPs are connected is exported,
// which is precisely why iGDB must infer right-of-way paths.
//
// Export introduces the source's characteristic noise: decorated node
// names, inconsistent city capitalization and a small coordinate jitter, so
// the consumer is forced to standardize locations spatially rather than
// trust labels.
package atlas

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"igdb/internal/geo"
	"igdb/internal/worldgen"
)

// Node is one physical PoP record.
type Node struct {
	Network  string
	NodeName string
	City     string
	State    string
	Country  string
	Lat, Lon float64
}

// Link is one PoP-to-PoP adjacency (no geometry).
type Link struct {
	Network  string
	FromNode string
	ToNode   string
}

// Dataset is a serialized Internet Atlas snapshot.
type Dataset struct {
	NodesCSV []byte
	LinksCSV []byte
}

// Export renders the Atlas view of the world: nodes and links for ISPs with
// InAtlas set (only the declared PoPs — hidden PoPs never appear here).
func Export(w *worldgen.World) *Dataset {
	r := rand.New(rand.NewSource(w.Cfg.Seed + 101))
	var nodes bytes.Buffer
	var links bytes.Buffer
	nw := csv.NewWriter(&nodes)
	lw := csv.NewWriter(&links)
	writeRecord(nw, "network", "node_name", "city", "state", "country", "latitude", "longitude")
	writeRecord(lw, "network", "from_node", "to_node")

	for _, isp := range w.ISPs {
		if !isp.InAtlas {
			continue
		}
		declared := map[int]bool{}
		nodeName := map[int]string{}
		for i, cityID := range isp.DeclaredPOPs() {
			declared[cityID] = true
			c := w.Cities[cityID]
			name := fmt.Sprintf("%s - %s %02d", isp.Name, decorateCity(r, c.Name), 1+i%3)
			nodeName[cityID] = name
			// Jitter within ~10 km: Atlas coordinates come from published
			// maps, not GPS.
			loc := jitter(r, c.Loc, 10)
			writeRecord(nw,
				isp.Name, name, decorateCity(r, c.Name), c.State, c.Country,
				strconv.FormatFloat(loc.Lat, 'f', 4, 64),
				strconv.FormatFloat(loc.Lon, 'f', 4, 64))
		}
		for _, l := range isp.Links {
			if !declared[l[0]] || !declared[l[1]] {
				continue // links touching undeclared PoPs stay private
			}
			writeRecord(lw, isp.Name, nodeName[l[0]], nodeName[l[1]])
		}
	}
	nw.Flush()
	lw.Flush()
	return &Dataset{NodesCSV: nodes.Bytes(), LinksCSV: links.Bytes()}
}

// decorateCity applies the inconsistent labeling real crowd-sourced data
// shows; spatial standardization must undo this.
func decorateCity(r *rand.Rand, name string) string {
	switch r.Intn(5) {
	case 0:
		return strings.ToUpper(name)
	case 1:
		return strings.ToLower(name)
	case 2:
		return name + " Metro"
	default:
		return name
	}
}

func jitter(r *rand.Rand, p geo.Point, km float64) geo.Point {
	return geo.Destination(p, r.Float64()*360, r.Float64()*km)
}

// Parse reads a serialized snapshot back into records.
func Parse(d *Dataset) ([]Node, []Link, error) {
	nr := csv.NewReader(bytes.NewReader(d.NodesCSV))
	rows, err := nr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("atlas: nodes: %w", err)
	}
	var nodes []Node
	for i, row := range rows {
		if i == 0 {
			continue // header
		}
		if len(row) != 7 {
			return nil, nil, fmt.Errorf("atlas: nodes row %d has %d fields", i, len(row))
		}
		lat, err1 := strconv.ParseFloat(row[5], 64)
		lon, err2 := strconv.ParseFloat(row[6], 64)
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("atlas: nodes row %d has bad coordinates", i)
		}
		nodes = append(nodes, Node{
			Network: row[0], NodeName: row[1], City: row[2], State: row[3],
			Country: row[4], Lat: lat, Lon: lon,
		})
	}
	lr := csv.NewReader(bytes.NewReader(d.LinksCSV))
	lrows, err := lr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("atlas: links: %w", err)
	}
	var links []Link
	for i, row := range lrows {
		if i == 0 {
			continue
		}
		if len(row) != 3 {
			return nil, nil, fmt.Errorf("atlas: links row %d has %d fields", i, len(row))
		}
		links = append(links, Link{Network: row[0], FromNode: row[1], ToNode: row[2]})
	}
	return nodes, links, nil
}

// writeRecord appends one CSV record. The writers here target in-memory
// buffers, which never fail, so a csv.Writer error would be a programming
// bug; panicking keeps Export's error-free signature honest.
func writeRecord(w *csv.Writer, record ...string) {
	if err := w.Write(record); err != nil {
		panic(err)
	}
}
