// Package naturalearth emulates the two Natural Earth datasets iGDB
// consumes: the 10m populated-places point shapefile (the 7,342 urban areas
// that seed the Thiessen tessellation) and the roads/railroads line
// shapefiles that define transportation rights-of-way. Both are exported as
// CSV with WKT geometry, the shape most GIS CSV exports take.
package naturalearth

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strconv"

	"igdb/internal/geo"
	"igdb/internal/wkt"
	"igdb/internal/worldgen"
)

// Place is one populated-place record.
type Place struct {
	Name       string
	State      string
	Country    string
	Loc        geo.Point
	Population int // thousands
}

// Road is one right-of-way segment with its geometry.
type Road struct {
	Kind     string // "road" or "rail"
	Path     []geo.Point
	LengthKm float64
}

// Dataset is a serialized Natural Earth snapshot.
type Dataset struct {
	PlacesCSV []byte
	RoadsCSV  []byte
}

// Export renders the populated places and right-of-way layers.
func Export(w *worldgen.World) *Dataset {
	var places bytes.Buffer
	pw := csv.NewWriter(&places)
	writeRecord(pw, "name", "adm1", "iso_a2", "latitude", "longitude", "pop_max")
	for _, c := range w.Cities {
		writeRecord(pw,
			c.Name, c.State, c.Country,
			strconv.FormatFloat(c.Loc.Lat, 'f', 5, 64),
			strconv.FormatFloat(c.Loc.Lon, 'f', 5, 64),
			strconv.Itoa(c.Population*1000))
	}
	pw.Flush()

	var roads bytes.Buffer
	rw := csv.NewWriter(&roads)
	writeRecord(rw, "kind", "length_km", "wkt")
	for _, e := range w.Roads {
		writeRecord(rw,
			e.Kind,
			strconv.FormatFloat(e.LengthKm, 'f', 1, 64),
			wkt.Marshal(wkt.NewLineString(e.Path)))
	}
	rw.Flush()
	return &Dataset{PlacesCSV: places.Bytes(), RoadsCSV: roads.Bytes()}
}

// Parse reads a snapshot back.
func Parse(d *Dataset) ([]Place, []Road, error) {
	pr := csv.NewReader(bytes.NewReader(d.PlacesCSV))
	rows, err := pr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("naturalearth: places: %w", err)
	}
	var places []Place
	for i, row := range rows {
		if i == 0 {
			continue
		}
		if len(row) != 6 {
			return nil, nil, fmt.Errorf("naturalearth: places row %d has %d fields", i, len(row))
		}
		lat, err1 := strconv.ParseFloat(row[3], 64)
		lon, err2 := strconv.ParseFloat(row[4], 64)
		pop, err3 := strconv.Atoi(row[5])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("naturalearth: places row %d malformed", i)
		}
		places = append(places, Place{
			Name: row[0], State: row[1], Country: row[2],
			Loc: geo.Point{Lon: lon, Lat: lat}, Population: pop / 1000,
		})
	}
	rr := csv.NewReader(bytes.NewReader(d.RoadsCSV))
	rr.FieldsPerRecord = 3
	rrows, err := rr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("naturalearth: roads: %w", err)
	}
	var roads []Road
	for i, row := range rrows {
		if i == 0 {
			continue
		}
		km, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("naturalearth: roads row %d bad length", i)
		}
		g, err := wkt.Parse(row[2])
		if err != nil || g.Kind != wkt.KindLineString {
			return nil, nil, fmt.Errorf("naturalearth: roads row %d bad geometry", i)
		}
		roads = append(roads, Road{Kind: row[0], Path: g.Line, LengthKm: km})
	}
	return places, roads, nil
}

// writeRecord appends one CSV record. The writers here target in-memory
// buffers, which never fail, so a csv.Writer error would be a programming
// bug; panicking keeps Export's error-free signature honest.
func writeRecord(w *csv.Writer, record ...string) {
	if err := w.Write(record); err != nil {
		panic(err)
	}
}
