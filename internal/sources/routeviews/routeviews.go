// Package routeviews emulates the CAIDA RouteViews prefix-to-AS dataset
// (pfx2as): every announced IPv4 prefix with its origin ASN, one
// "<prefix>\t<len>\t<asn>" line each. bdrmap builds its longest-prefix-match
// trie from this table.
package routeviews

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"igdb/internal/iptrie"
	"igdb/internal/worldgen"
)

// Record is one announced prefix.
type Record struct {
	Prefix iptrie.Prefix
	Origin int
}

// Export renders the announced table: every AS prefix plus the IXP peering
// LANs (announced by the exchanges' route-server ASes are omitted — IXP
// LANs show up with origin 0, matching how pfx2as shows unannounced space
// only implicitly by absence; we list them with origin -1 sentinel lines
// filtered by Parse).
func Export(w *worldgen.World) []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, "# prefix\tlen\torigin_asn")
	for _, as := range w.ASes {
		for _, p := range as.Prefixes {
			fmt.Fprintf(&b, "%s\t%d\t%d\n", iptrie.FormatAddr(p.Addr), p.Len, as.ASN)
		}
	}
	return b.Bytes()
}

// Parse reads pfx2as lines.
func Parse(data []byte) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 4*1024*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("routeviews: line %d has %d fields", lineNo, len(parts))
		}
		addr, err := iptrie.ParseAddr(parts[0])
		if err != nil {
			return nil, fmt.Errorf("routeviews: line %d: %v", lineNo, err)
		}
		plen, err := strconv.Atoi(parts[1])
		if err != nil || plen < 0 || plen > 32 {
			return nil, fmt.Errorf("routeviews: line %d bad length", lineNo)
		}
		asn, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("routeviews: line %d bad ASN", lineNo)
		}
		out = append(out, Record{Prefix: iptrie.Prefix{Addr: addr & iptrie.Mask(plen), Len: plen}, Origin: asn})
	}
	return out, sc.Err()
}

// Trie builds the LPM trie from records.
func Trie(recs []Record) *iptrie.Trie {
	t := iptrie.New()
	for _, r := range recs {
		t.Insert(r.Prefix, r.Origin)
	}
	return t
}
