// Package he emulates the Hurricane Electric Internet Exchange Report: a
// per-exchange participant listing scraped from bgp.he.net. Like PCH it has
// no coordinates, and its member view differs slightly from the other two
// IXP sources — cross-checking the three is an iGDB design point.
package he

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"igdb/internal/worldgen"
)

// Exchange is one IXP as reported by HE.
type Exchange struct {
	Name    string
	City    string
	Country string
	ASNs    []int
}

// Export renders the HE exchange report.
func Export(w *worldgen.World) []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, "# Hurricane Electric Internet Exchange Report")
	for _, ix := range w.IXPs {
		c := w.Cities[ix.City]
		fmt.Fprintf(&b, "IX: %s (%s, %s)\n", ix.Name, c.Name, c.Country)
		for i, m := range ix.Members {
			// HE misses a different slice than PCH: every 9th member.
			if i%9 == 8 {
				continue
			}
			fmt.Fprintf(&b, "  AS%d\n", m.ASN)
		}
	}
	return b.Bytes()
}

// Parse reads the report back.
func Parse(data []byte) ([]Exchange, error) {
	var out []Exchange
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "IX: "):
			rest := strings.TrimPrefix(line, "IX: ")
			open := strings.LastIndexByte(rest, '(')
			close := strings.LastIndexByte(rest, ')')
			if open < 0 || close < open {
				return nil, fmt.Errorf("he: line %d malformed exchange header", lineNo)
			}
			loc := strings.SplitN(rest[open+1:close], ", ", 2)
			if len(loc) != 2 {
				return nil, fmt.Errorf("he: line %d malformed location", lineNo)
			}
			out = append(out, Exchange{
				Name: strings.TrimSpace(rest[:open]), City: loc[0], Country: loc[1],
			})
		case strings.HasPrefix(strings.TrimSpace(line), "AS"):
			if len(out) == 0 {
				return nil, fmt.Errorf("he: line %d member before any exchange", lineNo)
			}
			n, err := strconv.Atoi(strings.TrimPrefix(strings.TrimSpace(line), "AS"))
			if err != nil {
				return nil, fmt.Errorf("he: line %d bad ASN", lineNo)
			}
			out[len(out)-1].ASNs = append(out[len(out)-1].ASNs, n)
		default:
			return nil, fmt.Errorf("he: line %d unrecognized: %q", lineNo, line)
		}
	}
	return out, sc.Err()
}
