// Package euroix emulates the EuroIX IXP database: JSON records collected
// directly from European exchanges via an automated feed — the most
// reliable of the three IXP sources, but limited to Europe.
package euroix

import (
	"encoding/json"
	"fmt"

	"igdb/internal/worldgen"
)

// IXP is one exchange record from the EuroIX feed.
type IXP struct {
	Name     string `json:"name"`
	City     string `json:"city"`
	Country  string `json:"country"`
	PrefixV4 string `json:"prefix_v4"`
	Members  []int  `json:"member_asns"`
}

// Dump is a full EuroIX snapshot.
type Dump struct {
	IXPs []IXP `json:"ixps"`
}

// Export renders the European subset. The automated feed is complete: all
// members present, unlike PCH/HE.
func Export(w *worldgen.World) *Dump {
	d := &Dump{}
	for _, ix := range w.IXPs {
		if !ix.Euro {
			continue
		}
		c := w.Cities[ix.City]
		rec := IXP{Name: ix.Name, City: c.Name, Country: c.Country, PrefixV4: ix.Prefix.String()}
		for _, m := range ix.Members {
			rec.Members = append(rec.Members, m.ASN)
		}
		d.IXPs = append(d.IXPs, rec)
	}
	return d
}

// Marshal serializes the dump as JSON.
func Marshal(d *Dump) ([]byte, error) { return json.Marshal(d) }

// Parse reads a JSON snapshot.
func Parse(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("euroix: %w", err)
	}
	return &d, nil
}
