// Package sources_test exercises every emulated data source end-to-end:
// export from one shared synthetic world, parse back, and check that the
// round trip preserves the structure iGDB's ETL depends on — including each
// source's deliberate blind spots.
package sources_test

import (
	"strings"
	"testing"

	"igdb/internal/iptrie"
	"igdb/internal/sources/asrank"
	"igdb/internal/sources/atlas"
	"igdb/internal/sources/euroix"
	"igdb/internal/sources/he"
	"igdb/internal/sources/pch"
	"igdb/internal/sources/peeringdb"
	"igdb/internal/sources/rdns"
	"igdb/internal/sources/ripeatlas"
	"igdb/internal/sources/telegeography"
	"igdb/internal/worldgen"
)

var world = worldgen.Generate(worldgen.SmallConfig())

func TestAtlasRoundTrip(t *testing.T) {
	d := atlas.Export(world)
	nodes, links, err := atlas.Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) == 0 || len(links) == 0 {
		t.Fatalf("nodes=%d links=%d", len(nodes), len(links))
	}
	// Every link endpoint references an exported node.
	names := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		names[n.NodeName] = true
		if n.Lat < -90 || n.Lat > 90 || n.Lon < -180 || n.Lon > 180 {
			t.Fatalf("node %q has bad coordinates", n.NodeName)
		}
		if n.Network == "" || n.Country == "" {
			t.Fatalf("node %q missing attributes", n.NodeName)
		}
	}
	for _, l := range links {
		if !names[l.FromNode] || !names[l.ToNode] {
			t.Fatalf("link references unknown node: %+v", l)
		}
	}
	// Only Atlas-flagged networks are included.
	nets := map[string]bool{}
	for _, n := range nodes {
		nets[n.Network] = true
	}
	inAtlas := 0
	for _, isp := range world.ISPs {
		if isp.InAtlas {
			inAtlas++
		}
	}
	if len(nets) > inAtlas {
		t.Errorf("exported %d networks, only %d are in Atlas", len(nets), inAtlas)
	}
}

func TestAtlasHidesUndeclaredPoPs(t *testing.T) {
	d := atlas.Export(world)
	nodes, _, err := atlas.Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	// Cogent's Table 3 cities must not appear as Cogent Atlas nodes.
	for _, n := range nodes {
		if !strings.Contains(n.Network, "COGENT") {
			continue
		}
		for _, hidden := range []string{"Dresden", "Syracuse", "Hong Kong", "Orlando", "Katowice", "Jacksonville"} {
			if strings.EqualFold(n.City, hidden) || strings.EqualFold(n.City, hidden+" Metro") {
				t.Errorf("undeclared Cogent PoP %q leaked into Atlas", hidden)
			}
		}
	}
}

func TestAtlasParseErrors(t *testing.T) {
	if _, _, err := atlas.Parse(&atlas.Dataset{
		NodesCSV: []byte("network,node_name,city,state,country,latitude,longitude\nn,x,c,s,US,bad,0\n"),
		LinksCSV: []byte("network,from_node,to_node\n"),
	}); err == nil {
		t.Error("bad coordinates should fail")
	}
	if _, _, err := atlas.Parse(&atlas.Dataset{
		NodesCSV: []byte("a,b\n1,2,3\n"),
		LinksCSV: []byte{},
	}); err == nil {
		t.Error("wrong field count should fail")
	}
}

func TestPeeringDBRoundTrip(t *testing.T) {
	d := peeringdb.Export(world)
	raw, err := peeringdb.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := peeringdb.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nets) != len(d.Nets) || len(back.Facs) != len(d.Facs) ||
		len(back.NetFacs) != len(d.NetFacs) || len(back.IXs) != len(d.IXs) ||
		len(back.NetIXs) != len(d.NetIXs) {
		t.Fatal("round trip changed record counts")
	}
	// Facility references resolve.
	facs := map[int]bool{}
	for _, f := range back.Facs {
		facs[f.ID] = true
	}
	for _, nf := range back.NetFacs {
		if !facs[nf.FacID] {
			t.Fatalf("netfac references unknown facility %d", nf.FacID)
		}
	}
	// netixlan IPs sit inside the exchange prefix.
	ixPrefix := map[int]iptrie.Prefix{}
	for _, ix := range back.IXs {
		p, err := iptrie.ParsePrefix(ix.PrefixV4)
		if err != nil {
			t.Fatalf("IX %q has bad prefix: %v", ix.Name, err)
		}
		ixPrefix[ix.ID] = p
	}
	for _, ni := range back.NetIXs {
		addr, err := iptrie.ParseAddr(ni.IPv4)
		if err != nil {
			t.Fatal(err)
		}
		if !ixPrefix[ni.IXID].Contains(addr) {
			t.Fatalf("netixlan IP %s outside LAN %s", ni.IPv4, ixPrefix[ni.IXID])
		}
	}
}

func TestPeeringDBDoesNotFlagRemotePeers(t *testing.T) {
	// The PeeringDB schema simply has no remote flag; verify membership
	// counts include the remote members so the ambiguity is really there.
	d := peeringdb.Export(world)
	want := 0
	for _, ix := range world.IXPs {
		want += len(ix.Members)
	}
	if len(d.NetIXs) != want {
		t.Errorf("netixlan rows = %d, want %d (all members incl. remote)", len(d.NetIXs), want)
	}
}

func TestTelegeographyRoundTrip(t *testing.T) {
	d := telegeography.Export(world)
	raw, err := telegeography.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := telegeography.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cables) != len(world.Cables) {
		t.Fatalf("cables = %d, want %d", len(back.Cables), len(world.Cables))
	}
	for _, c := range back.Cables {
		if len(c.Landings) < 2 {
			t.Fatalf("cable %q has %d landings", c.Name, len(c.Landings))
		}
		if c.LengthKm <= 0 {
			t.Fatalf("cable %q has no length", c.Name)
		}
	}
}

func TestTelegeographyRejectsBadWKT(t *testing.T) {
	if _, err := telegeography.Parse([]byte(`{"cables":[{"name":"x","wkt":"POINT (1 2)"}]}`)); err == nil {
		t.Error("point geometry for a cable should fail")
	}
	if _, err := telegeography.Parse([]byte(`{"cables":[{"name":"x","wkt":"garbage"}]}`)); err == nil {
		t.Error("unparseable WKT should fail")
	}
}

func TestPCHRoundTrip(t *testing.T) {
	raw := pch.Export(world)
	recs, err := pch.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(world.IXPs) {
		t.Fatalf("records = %d, want %d", len(recs), len(world.IXPs))
	}
	// PCH drops every 7th member: totals must be below ground truth.
	truth, got := 0, 0
	for _, ix := range world.IXPs {
		truth += len(ix.Members)
	}
	for _, r := range recs {
		got += len(r.ASNs)
	}
	if got >= truth {
		t.Errorf("PCH should be lossy: %d >= %d", got, truth)
	}
	if got == 0 {
		t.Error("PCH lost everything")
	}
}

func TestHERoundTrip(t *testing.T) {
	raw := he.Export(world)
	exs, err := he.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != len(world.IXPs) {
		t.Fatalf("exchanges = %d, want %d", len(exs), len(world.IXPs))
	}
	for _, e := range exs {
		if e.Name == "" || e.City == "" || e.Country == "" {
			t.Fatalf("exchange missing fields: %+v", e)
		}
	}
}

func TestHEParseErrors(t *testing.T) {
	if _, err := he.Parse([]byte("  AS123\n")); err == nil {
		t.Error("member before exchange should fail")
	}
	if _, err := he.Parse([]byte("IX: broken header\n")); err == nil {
		t.Error("malformed header should fail")
	}
}

func TestEuroIXRoundTrip(t *testing.T) {
	d := euroix.Export(world)
	raw, err := euroix.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := euroix.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	euro := 0
	for _, ix := range world.IXPs {
		if ix.Euro {
			euro++
		}
	}
	if len(back.IXPs) != euro {
		t.Fatalf("EuroIX has %d IXPs, want the %d European ones", len(back.IXPs), euro)
	}
	// Feed is complete: member counts match ground truth.
	for _, rec := range back.IXPs {
		for _, ix := range world.IXPs {
			c := world.Cities[ix.City]
			if ix.Name == rec.Name && c.Name == rec.City {
				if len(rec.Members) != len(ix.Members) {
					t.Errorf("IXP %s members = %d, want %d", rec.Name, len(rec.Members), len(ix.Members))
				}
			}
		}
	}
}

func TestRDNSRoundTrip(t *testing.T) {
	raw := rdns.Export(world)
	recs, err := rdns.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	withPTR := len(world.BorderPTR)
	for _, rt := range world.Routers {
		if rt.Hostname != "" {
			withPTR++
		}
	}
	if len(recs) != withPTR {
		t.Fatalf("PTR records = %d, want %d (routers + border links)", len(recs), withPTR)
	}
	m := rdns.Lookup(recs)
	// Cogent Dresden router resolvable with its geohint.
	rt := world.RouterAt(174, world.CityID("Dresden"))
	if rt == nil {
		t.Fatal("no Cogent Dresden router")
	}
	if m[rt.IP] != rt.Hostname {
		t.Errorf("lookup mismatch: %q vs %q", m[rt.IP], rt.Hostname)
	}
}

func TestRDNSParseErrors(t *testing.T) {
	if _, err := rdns.Parse([]byte("1.2.3.4 no-tab\n")); err == nil {
		t.Error("missing tab should fail")
	}
	if _, err := rdns.Parse([]byte("999.2.3.4\thost\n")); err == nil {
		t.Error("bad IP should fail")
	}
}

func TestASRankRoundTrip(t *testing.T) {
	d, err := asrank.Export(world)
	if err != nil {
		t.Fatal(err)
	}
	infos, links, err := asrank.Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(world.ASes) {
		t.Fatalf("infos = %d, want %d (BGP sees every AS)", len(infos), len(world.ASes))
	}
	if len(links) != len(world.ASLinks) {
		t.Fatalf("links = %d, want %d", len(links), len(world.ASLinks))
	}
	for _, l := range links {
		if l.Rel != 0 && l.Rel != -1 {
			t.Fatalf("unexpected rel %d", l.Rel)
		}
	}
	// The §3.2 example: AS2686 has different names in AS Rank vs PeeringDB.
	var rankName string
	for _, i := range infos {
		if i.ASN == 2686 {
			rankName = i.ASNName
		}
	}
	if rankName != "ATGS-MMD-AS" {
		t.Errorf("AS2686 AS Rank name = %q", rankName)
	}
	pdb := peeringdb.Export(world)
	for _, n := range pdb.Nets {
		if n.ASN == 2686 && n.Name == rankName {
			t.Error("AS2686 should have inconsistent names across sources")
		}
	}
}

func TestRIPEAtlasRoundTrip(t *testing.T) {
	d, err := ripeatlas.Export(world)
	if err != nil {
		t.Fatal(err)
	}
	metas, ms, err := ripeatlas.Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != len(world.Anchors) {
		t.Fatalf("anchors = %d, want %d", len(metas), len(world.Anchors))
	}
	if len(ms) != len(world.Traces) {
		t.Fatalf("measurements = %d, want %d", len(ms), len(world.Traces))
	}
	// Hidden hops never appear in exported measurements.
	for i, m := range ms {
		truth := world.Traces[i]
		if len(m.Hops) != len(truth.VisibleHops()) {
			t.Fatalf("measurement %d has %d hops, visible truth %d", i, len(m.Hops), len(truth.VisibleHops()))
		}
	}
	// RTTs non-trivially positive.
	for _, m := range ms {
		for _, h := range m.Hops {
			if h.RTT < 0 {
				t.Fatal("negative RTT")
			}
		}
	}
}
