// Package peeringdb emulates the PeeringDB API dump: organizations,
// networks, peering facilities, exchange points, and the net→facility and
// net→IX membership relations, serialized as JSON like the real API. It is
// the richest declarative source and carries both physical (facility
// lat/lon) and logical (ASN, IXP prefix) information.
package peeringdb

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"igdb/internal/geo"
	"igdb/internal/iptrie"
	"igdb/internal/worldgen"
)

// Net is one network (AS) record.
type Net struct {
	ASN  int    `json:"asn"`
	Name string `json:"name"`
	Org  string `json:"org_name"`
	Info string `json:"info_type"`
}

// Fac is one colocation/peering facility.
type Fac struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	City    string  `json:"city"`
	State   string  `json:"state"`
	Country string  `json:"country"`
	Lat     float64 `json:"latitude"`
	Lon     float64 `json:"longitude"`
}

// NetFac records a network's presence at a facility.
type NetFac struct {
	ASN   int `json:"asn"`
	FacID int `json:"fac_id"`
}

// IX is one exchange point.
type IX struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	City     string  `json:"city"`
	Country  string  `json:"country"`
	PrefixV4 string  `json:"prefix_v4"`
	Lat      float64 `json:"latitude"`
	Lon      float64 `json:"longitude"`
}

// NetIX records a network's port at an exchange.
type NetIX struct {
	ASN  int    `json:"asn"`
	IXID int    `json:"ix_id"`
	IPv4 string `json:"ipaddr4"`
}

// Dump is a full PeeringDB snapshot.
type Dump struct {
	Nets    []Net    `json:"net"`
	Facs    []Fac    `json:"fac"`
	NetFacs []NetFac `json:"netfac"`
	IXs     []IX     `json:"ix"`
	NetIXs  []NetIX  `json:"netixlan"`
}

// Export renders the PeeringDB view: every ISP's declared PoPs become
// facility presences; IXP members (including remote peers, indistinguishably)
// become netixlan rows. About a third of stub ASes also register.
func Export(w *worldgen.World) *Dump {
	r := rand.New(rand.NewSource(w.Cfg.Seed + 102))
	d := &Dump{}

	// Facilities per city grow with demand: one colocation site per ~8
	// tenant networks, as metros with heavy peering host several buildings.
	facByCity := map[int][]int{}
	tenantsByCity := map[int]int{}
	facFor := func(cityID int) int {
		tenantsByCity[cityID]++
		facs := facByCity[cityID]
		if len(facs) == 0 || tenantsByCity[cityID] > 8*len(facs) {
			c := w.Cities[cityID]
			id := len(d.Facs) + 1
			loc := geo.Destination(c.Loc, r.Float64()*360, r.Float64()*6)
			d.Facs = append(d.Facs, Fac{
				ID: id, Name: fmt.Sprintf("%s Data Center %d", c.Name, len(facs)+1),
				City: c.Name, State: c.State, Country: c.Country,
				Lat: loc.Lat, Lon: loc.Lon,
			})
			facs = append(facs, id)
			facByCity[cityID] = facs
		}
		return facs[r.Intn(len(facs))]
	}

	for _, as := range w.ASes {
		name, ok := as.NamesBySource["peeringdb"]
		if !ok {
			continue // not every AS registers in PeeringDB
		}
		info := "NSP"
		if as.ISP < 0 {
			info = "Content"
		}
		d.Nets = append(d.Nets, Net{ASN: as.ASN, Name: name, Org: as.OrgsBySource["peeringdb"], Info: info})
		if as.ISP >= 0 {
			for _, cityID := range w.ISPs[as.ISP].DeclaredPOPs() {
				d.NetFacs = append(d.NetFacs, NetFac{ASN: as.ASN, FacID: facFor(cityID)})
			}
		}
	}
	for _, ix := range w.IXPs {
		c := w.Cities[ix.City]
		d.IXs = append(d.IXs, IX{
			ID: ix.ID + 1, Name: ix.Name, City: c.Name, Country: c.Country,
			PrefixV4: ix.Prefix.String(), Lat: c.Loc.Lat, Lon: c.Loc.Lon,
		})
		for _, m := range ix.Members {
			// Remote peers are NOT flagged — that ambiguity is the §3.3
			// challenge iGDB has to detect.
			d.NetIXs = append(d.NetIXs, NetIX{
				ASN: m.ASN, IXID: ix.ID + 1, IPv4: iptrie.FormatAddr(m.IP),
			})
		}
	}
	return d
}

// Marshal serializes the dump as JSON.
func Marshal(d *Dump) ([]byte, error) { return json.Marshal(d) }

// Parse reads a JSON snapshot.
func Parse(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("peeringdb: %w", err)
	}
	return &d, nil
}
