package peeringdb

import "testing"

// FuzzParse asserts the PeeringDB dump parser returns errors, never
// panics, for arbitrary bytes.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"nets":[{"asn":64500,"name":"ExampleNet","org_name":"Example Org","info_type":"NSP"}],` +
		`"facs":[{"id":1,"name":"Example DC","city":"Austin","state":"TX","country":"US","latitude":30.27,"longitude":-97.74}],` +
		`"netfacs":[{"asn":64500,"fac_id":1}],` +
		`"ixs":[{"id":1,"name":"EX-IX","city":"Austin","country":"US","prefix_v4":"203.0.113.0/24","latitude":30.27,"longitude":-97.74}],` +
		`"netixs":[{"asn":64500,"ix_id":1,"ipaddr4":"203.0.113.7"}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nets":null}`))
	f.Add([]byte(`{"nets":[{"asn":"not-a-number"}]}`))
	f.Add([]byte(`[`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Parse(data)
	})
}
