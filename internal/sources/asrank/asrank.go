// Package asrank emulates the CAIDA AS Rank API output: AS metadata
// (WHOIS-derived names and organizations) as JSON lines, plus the AS-level
// adjacency graph in CAIDA's "A|B|rel" serialization (rel: -1 provider→
// customer, 0 peer) aggregated from RouteViews/RIPE RIS announcements.
package asrank

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"igdb/internal/worldgen"
)

// ASInfo is one AS metadata record.
type ASInfo struct {
	ASN     int    `json:"asn"`
	ASNName string `json:"asnName"`
	OrgName string `json:"orgName"`
	Country string `json:"country"`
}

// Link is one AS adjacency.
type Link struct {
	A, B int
	Rel  int // -1: A is provider of B; 0: peers
}

// Dump is a full AS Rank snapshot.
type Dump struct {
	ASNsJSONL []byte
	LinksTxt  []byte
}

// Export renders the AS Rank view: every AS (BGP sees all of them), with
// WHOIS naming.
func Export(w *worldgen.World) (*Dump, error) {
	var asns bytes.Buffer
	enc := json.NewEncoder(&asns)
	for _, as := range w.ASes {
		rec := ASInfo{
			ASN:     as.ASN,
			ASNName: as.NamesBySource["asrank"],
			OrgName: as.OrgsBySource["asrank"],
			Country: as.HomeCountry,
		}
		if err := enc.Encode(rec); err != nil {
			return nil, err
		}
	}
	var links bytes.Buffer
	fmt.Fprintln(&links, "# A|B|rel  (-1 provider-customer, 0 peer)")
	for _, l := range w.ASLinks {
		rel := 0
		if l.Kind == "p2c" {
			rel = -1
		}
		fmt.Fprintf(&links, "%d|%d|%d\n", l.A, l.B, rel)
	}
	return &Dump{ASNsJSONL: asns.Bytes(), LinksTxt: links.Bytes()}, nil
}

// Parse reads a snapshot back.
func Parse(d *Dump) ([]ASInfo, []Link, error) {
	var infos []ASInfo
	sc := bufio.NewScanner(bytes.NewReader(d.ASNsJSONL))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec ASInfo
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, nil, fmt.Errorf("asrank: asns line %d: %w", lineNo, err)
		}
		infos = append(infos, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	var links []Link
	lsc := bufio.NewScanner(bytes.NewReader(d.LinksTxt))
	lsc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo = 0
	for lsc.Scan() {
		lineNo++
		line := strings.TrimSpace(lsc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 3 {
			return nil, nil, fmt.Errorf("asrank: links line %d has %d fields", lineNo, len(parts))
		}
		a, err1 := strconv.Atoi(parts[0])
		b, err2 := strconv.Atoi(parts[1])
		rel, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("asrank: links line %d malformed", lineNo)
		}
		links = append(links, Link{A: a, B: b, Rel: rel})
	}
	return infos, links, lsc.Err()
}
