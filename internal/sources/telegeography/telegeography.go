// Package telegeography emulates the Telegeography submarine cable map:
// cable systems with their consortium owners, landing points and segment
// geometry, serialized as JSON with WKT path strings (the representation
// iGDB stores directly into its sub_cables relation).
package telegeography

import (
	"encoding/json"
	"fmt"

	"igdb/internal/wkt"
	"igdb/internal/worldgen"
)

// LandingPoint is one shore site where a cable lands.
type LandingPoint struct {
	Name    string  `json:"name"`
	City    string  `json:"city"`
	Country string  `json:"country"`
	Lat     float64 `json:"latitude"`
	Lon     float64 `json:"longitude"`
}

// Cable is one submarine cable system.
type Cable struct {
	ID       int            `json:"id"`
	Name     string         `json:"name"`
	Owners   []string       `json:"owners"`
	LengthKm float64        `json:"length_km"`
	WKT      string         `json:"wkt"`
	Landings []LandingPoint `json:"landing_points"`
}

// Dump is a full Telegeography snapshot.
type Dump struct {
	Cables []Cable `json:"cables"`
}

// Export renders the cable view of the world.
func Export(w *worldgen.World) *Dump {
	d := &Dump{}
	for i, c := range w.Cables {
		cable := Cable{
			ID:       i + 1,
			Name:     c.Name,
			Owners:   c.Owners,
			LengthKm: c.LengthKm,
			WKT:      wkt.Marshal(wkt.NewLineString(c.Path)),
		}
		for _, l := range c.Landings {
			city := w.Cities[l]
			cable.Landings = append(cable.Landings, LandingPoint{
				Name:    fmt.Sprintf("%s Landing Station", city.Name),
				City:    city.Name,
				Country: city.Country,
				Lat:     city.Loc.Lat,
				Lon:     city.Loc.Lon,
			})
		}
		d.Cables = append(d.Cables, cable)
	}
	return d
}

// Marshal serializes the dump as JSON.
func Marshal(d *Dump) ([]byte, error) { return json.Marshal(d) }

// Parse reads a JSON snapshot and validates every cable geometry.
func Parse(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("telegeography: %w", err)
	}
	for _, c := range d.Cables {
		g, err := wkt.Parse(c.WKT)
		if err != nil {
			return nil, fmt.Errorf("telegeography: cable %q: %w", c.Name, err)
		}
		if g.Kind != wkt.KindLineString && g.Kind != wkt.KindMultiLineString {
			return nil, fmt.Errorf("telegeography: cable %q has %s geometry", c.Name, g.Kind)
		}
	}
	return &d, nil
}
