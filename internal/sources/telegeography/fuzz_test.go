package telegeography

import "testing"

// FuzzParse asserts the cable-map parser (JSON envelope plus nested WKT
// geometries) returns errors, never panics, for arbitrary bytes.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"cables":[{"id":1,"name":"Example Cable","owners":["Example Co"],"length_km":1234.5,` +
		`"wkt":"LINESTRING (-97.74 30.27, -3.7 40.4)",` +
		`"landing_points":[{"name":"Austin Landing Station","city":"Austin","country":"US","latitude":30.27,"longitude":-97.74}]}]}`))
	f.Add([]byte(`{"cables":[]}`))
	f.Add([]byte(`{"cables":[{"wkt":"POINT (1 2)"}]}`))
	f.Add([]byte(`{"cables":[{"wkt":"LINESTRING (0 0"}]}`))
	f.Add([]byte(`{"cables":[{"wkt":""}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Parse(data)
	})
}
