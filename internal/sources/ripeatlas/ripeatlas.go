// Package ripeatlas emulates the RIPE Atlas anchor platform: anchor
// metadata (IP, ASN, approximate coordinates — the cross-layer link the
// paper highlights) and the anchor-mesh traceroute measurements as JSON
// lines. Only hops visible to the measurement are exported; MPLS-hidden
// ground truth never leaves worldgen.
package ripeatlas

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"

	"igdb/internal/geo"
	"igdb/internal/iptrie"
	"igdb/internal/worldgen"
)

// AnchorMeta is one anchor record.
type AnchorMeta struct {
	ID  int     `json:"id"`
	IP  string  `json:"address_v4"`
	ASN int     `json:"as_v4"`
	Lat float64 `json:"latitude"`
	Lon float64 `json:"longitude"`
}

// HopReply is one responding hop in a measurement.
type HopReply struct {
	IP  string  `json:"from"`
	RTT float64 `json:"rtt"`
}

// Measurement is one traceroute result.
type Measurement struct {
	SrcAnchor int        `json:"src_anchor"`
	DstAnchor int        `json:"dst_anchor"`
	Hops      []HopReply `json:"result"`
}

// Dump is a full RIPE Atlas snapshot.
type Dump struct {
	AnchorsJSON       []byte
	MeasurementsJSONL []byte
}

// Export renders anchors and the visible traceroute mesh. Anchor
// coordinates are snapped to ~0.1° like the real platform's privacy fuzz.
func Export(w *worldgen.World) (*Dump, error) {
	var metas []AnchorMeta
	for _, a := range w.Anchors {
		loc := fuzz(w.Cities[a.City].Loc)
		metas = append(metas, AnchorMeta{
			ID: a.ID, IP: iptrie.FormatAddr(a.IP), ASN: a.ASN,
			Lat: loc.Lat, Lon: loc.Lon,
		})
	}
	anchors, err := json.Marshal(metas)
	if err != nil {
		return nil, err
	}
	var meas bytes.Buffer
	enc := json.NewEncoder(&meas)
	for _, tr := range w.Traces {
		m := Measurement{SrcAnchor: tr.SrcAnchor, DstAnchor: tr.DstAnchor}
		for _, h := range tr.VisibleHops() {
			m.Hops = append(m.Hops, HopReply{IP: iptrie.FormatAddr(h.IP), RTT: round2(h.RTTms)})
		}
		if err := enc.Encode(m); err != nil {
			return nil, err
		}
	}
	return &Dump{AnchorsJSON: anchors, MeasurementsJSONL: meas.Bytes()}, nil
}

func fuzz(p geo.Point) geo.Point {
	return geo.Point{
		Lon: float64(int(p.Lon*10)) / 10,
		Lat: float64(int(p.Lat*10)) / 10,
	}
}

func round2(f float64) float64 { return float64(int(f*100)) / 100 }

// Parse reads a snapshot back.
func Parse(d *Dump) ([]AnchorMeta, []Measurement, error) {
	var metas []AnchorMeta
	if err := json.Unmarshal(d.AnchorsJSON, &metas); err != nil {
		return nil, nil, fmt.Errorf("ripeatlas: anchors: %w", err)
	}
	var ms []Measurement
	sc := bufio.NewScanner(bytes.NewReader(d.MeasurementsJSONL))
	sc.Buffer(make([]byte, 4*1024*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m Measurement
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return nil, nil, fmt.Errorf("ripeatlas: measurement line %d: %w", lineNo, err)
		}
		ms = append(ms, m)
	}
	return metas, ms, sc.Err()
}
