// Package pch emulates the Packet Clearing House IXP directory: a TSV of
// every exchange worldwide with its metro and the ASNs seen there. PCH has
// no coordinates — only city names — so consumers must resolve locations by
// name against their own gazetteer.
package pch

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"igdb/internal/worldgen"
)

// Record is one IXP directory row.
type Record struct {
	Name    string
	City    string
	Country string
	ASNs    []int
}

// Org is one ASN→organization record from PCH's own registry, whose
// spellings differ from WHOIS and PeeringDB (the paper's AS2686 example).
type Org struct {
	ASN  int
	Name string
}

// ExportOrgs renders PCH's ASN→organization table for ASes seen at any of
// its exchanges.
func ExportOrgs(w *worldgen.World) []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, "#asn\torganization")
	seen := map[int]bool{}
	for _, ix := range w.IXPs {
		for _, m := range ix.Members {
			if seen[m.ASN] {
				continue
			}
			seen[m.ASN] = true
			as := w.ASByNumber(m.ASN)
			if as == nil {
				continue
			}
			org, ok := as.OrgsBySource["pch"]
			if !ok {
				org = as.OrgsBySource["asrank"] // PCH copies WHOIS when blank
			}
			fmt.Fprintf(&b, "%d\t%s\n", m.ASN, org)
		}
	}
	return b.Bytes()
}

// ParseOrgs reads the organization table back.
func ParseOrgs(data []byte) ([]Org, error) {
	var out []Org
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tab := strings.IndexByte(line, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("pch: orgs line %d missing tab", lineNo)
		}
		asn, err := strconv.Atoi(line[:tab])
		if err != nil {
			return nil, fmt.Errorf("pch: orgs line %d bad ASN", lineNo)
		}
		out = append(out, Org{ASN: asn, Name: line[tab+1:]})
	}
	return out, sc.Err()
}

// Export renders the PCH directory. PCH tends to know slightly different
// member sets than PeeringDB (it misses some, it remembers some that left).
func Export(w *worldgen.World) []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, "#name\tcity\tcountry\tasns")
	for _, ix := range w.IXPs {
		c := w.Cities[ix.City]
		var asns []string
		for i, m := range ix.Members {
			// PCH's directory lags: drop every 7th member.
			if i%7 == 6 {
				continue
			}
			asns = append(asns, strconv.Itoa(m.ASN))
		}
		fmt.Fprintf(&b, "%s\t%s\t%s\t%s\n", ix.Name, c.Name, c.Country, strings.Join(asns, ";"))
	}
	return b.Bytes()
}

// Parse reads the TSV back.
func Parse(data []byte) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("pch: line %d has %d fields", lineNo, len(parts))
		}
		rec := Record{Name: parts[0], City: parts[1], Country: parts[2]}
		if parts[3] != "" {
			for _, s := range strings.Split(parts[3], ";") {
				n, err := strconv.Atoi(s)
				if err != nil {
					return nil, fmt.Errorf("pch: line %d bad ASN %q", lineNo, s)
				}
				rec.ASNs = append(rec.ASNs, n)
			}
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}
