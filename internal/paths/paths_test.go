package paths

import (
	"sync"
	"testing"
	"time"

	"igdb/internal/core"
	"igdb/internal/geoloc"
	"igdb/internal/ingest"
	"igdb/internal/iptrie"
	"igdb/internal/sources/ripeatlas"
	"igdb/internal/worldgen"
)

var (
	once     sync.Once
	world    *worldgen.World
	gdb      *core.IGDB
	pipeline *Pipeline
)

func fixture(t *testing.T) (*worldgen.World, *core.IGDB, *Pipeline) {
	t.Helper()
	once.Do(func() {
		world = worldgen.Generate(worldgen.SmallConfig())
		store := ingest.NewStore("")
		if err := ingest.Collect(world, store, time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)); err != nil {
			panic(err)
		}
		var err error
		gdb, err = core.Build(store, core.BuildOptions{SkipPolygons: true})
		if err != nil {
			panic(err)
		}
		pipeline, err = NewPipeline(gdb, store)
		if err != nil {
			panic(err)
		}
	})
	return world, gdb, pipeline
}

// measurementBetween finds the mesh measurement between two named metros.
func measurementBetween(w *worldgen.World, p *Pipeline, src, dst string) (ripeatlas.Measurement, bool) {
	tr := w.FindTrace(src, dst)
	if tr == nil {
		return ripeatlas.Measurement{}, false
	}
	for _, m := range p.Measurements {
		if m.SrcAnchor == tr.SrcAnchor && m.DstAnchor == tr.DstAnchor {
			return m, true
		}
	}
	return ripeatlas.Measurement{}, false
}

func TestPipelineTrained(t *testing.T) {
	_, _, p := fixture(t)
	if p.Hoiho.Domains() == 0 {
		t.Error("Hoiho learned no conventions")
	}
	if len(p.PTR) == 0 || len(p.Measurements) == 0 || len(p.AnchorCity) == 0 {
		t.Fatal("pipeline inputs empty")
	}
}

func TestBdrmapAccuracyOnGroundTruth(t *testing.T) {
	w, _, p := fixture(t)
	correct, total := 0, 0
	fixableCorrect, fixableTotal := 0, 0 // borrowed interfaces WITH a PTR record
	blindTotal := 0                      // borrowed interfaces without rDNS: uncorrectable
	for _, tr := range w.Traces {
		vis := tr.VisibleHops()
		ips := make([]uint32, len(vis))
		for i, h := range vis {
			ips[i] = h.IP
		}
		got := p.Mapper.MapTrace(ips, p.PTR)
		for i, h := range vis {
			if got[i] < 0 {
				continue
			}
			total++
			if got[i] == h.ASN {
				correct++
			}
			if w.BorderOwner(h.IP) >= 0 {
				if _, hasPTR := p.PTR[h.IP]; hasPTR {
					fixableTotal++
					if got[i] == h.ASN {
						fixableCorrect++
					}
				} else {
					blindTotal++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no attributed hops")
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("bdrmap accuracy %.3f, want >= 0.9", acc)
	}
	if fixableTotal == 0 || blindTotal == 0 {
		t.Fatalf("noise model inactive: fixable=%d blind=%d", fixableTotal, blindTotal)
	}
	// Plain LPM scores 0 on borrowed interfaces; with rDNS evidence bdrmap
	// must fix the large majority.
	if acc := float64(fixableCorrect) / float64(fixableTotal); acc < 0.8 {
		t.Errorf("border-interface accuracy %.3f with rDNS, want >= 0.8 (%d/%d)",
			acc, fixableCorrect, fixableTotal)
	}
}

func TestHoihoAccuracyOnGroundTruth(t *testing.T) {
	w, g, p := fixture(t)
	correct, total := 0, 0
	for _, rt := range w.Routers {
		if !rt.Geohint || rt.Hostname == "" {
			continue
		}
		city, ok := p.Hoiho.Locate(rt.Hostname)
		if !ok {
			continue
		}
		total++
		if g.Cities[city].Name == w.Cities[rt.City].Name {
			correct++
		}
	}
	if total < 20 {
		t.Fatalf("hoiho located only %d routers", total)
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("hoiho precision %.3f on %d routers, want >= 0.8", acc, total)
	}
}

func TestFigure7KansasCityAtlanta(t *testing.T) {
	w, g, p := fixture(t)
	m, ok := measurementBetween(w, p, "Kansas City", "Atlanta")
	if !ok {
		t.Fatal("reference KC→Atlanta measurement missing")
	}
	ta := p.AnalyzeTrace(m)
	// The visible metro sequence skips Tulsa (hidden by MPLS).
	var names []string
	for _, c := range ta.CitySeq {
		names = append(names, g.Cities[c].Name)
	}
	want := []string{"Kansas City", "Dallas", "Houston", "Atlanta"}
	if !equalStrings(names, want) {
		t.Fatalf("visible metro sequence = %v, want %v", names, want)
	}
	// AS path includes Cogent.
	has174 := false
	for _, asn := range ta.ASPath {
		if asn == 174 {
			has174 = true
		}
	}
	if !has174 {
		t.Errorf("AS path %v missing AS174", ta.ASPath)
	}
	// Hidden-node inference proposes Tulsa (and possibly Oklahoma City)
	// between KC and Dallas.
	kc, dal := g.CityByName("Kansas City", "", "US"), g.CityByName("Dallas", "", "US")
	cands := p.HiddenNodeCandidates(kc, dal, []int{174}, 25)
	foundTulsa := false
	for _, c := range cands {
		if g.Cities[c.City].Name == "Tulsa" {
			foundTulsa = true
		}
	}
	if !foundTulsa {
		t.Errorf("hidden-node inference missed Tulsa; candidates: %v", candNames(g, cands))
	}
	// Distance cost: the routed path is materially longer than the shortest
	// practical path (paper: 1.96).
	_, _, cost, ok := p.DistanceCost(ta.CitySeq)
	if !ok {
		t.Fatal("distance cost unavailable")
	}
	if cost < 1.2 {
		t.Errorf("distance cost = %.2f, want >= 1.2 (inflated route)", cost)
	}
}

func candNames(g *core.IGDB, cands []HiddenCandidate) []string {
	var out []string
	for _, c := range cands {
		out = append(out, g.Cities[c.City].Name)
	}
	return out
}

func TestFigure9MadridBerlin(t *testing.T) {
	w, g, p := fixture(t)
	m, ok := measurementBetween(w, p, "Madrid", "Berlin")
	if !ok {
		t.Fatal("reference Madrid→Berlin measurement missing")
	}
	ta := p.AnalyzeTrace(m)
	// Three ASes, as in the paper.
	asSet := map[int]bool{}
	for _, asn := range ta.ASPath {
		asSet[asn] = true
	}
	for _, want := range []int{12008, 22822, 20647} {
		if !asSet[want] {
			t.Errorf("AS path %v missing AS%d", ta.ASPath, want)
		}
	}
	// Five metros along the path (Madrid, Paris, Frankfurt, Duesseldorf,
	// Berlin).
	var names []string
	for _, c := range ta.CitySeq {
		names = append(names, g.Cities[c].Name)
	}
	want := []string{"Madrid", "Paris", "Frankfurt", "Duesseldorf", "Berlin"}
	if !equalStrings(names, want) {
		t.Errorf("metro sequence = %v, want %v", names, want)
	}
	// Countries traversed: 3 (ES, FR, DE).
	countries := map[string]bool{}
	for _, c := range ta.CitySeq {
		countries[g.Cities[c].Country] = true
	}
	if len(countries) != 3 {
		t.Errorf("countries = %d, want 3", len(countries))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBeliefPropagationAccuracy(t *testing.T) {
	w, g, p := fixture(t)
	known := p.KnownLocations()
	if len(known) == 0 {
		t.Fatal("no seed locations")
	}
	obs := p.Observations()
	inferred := geoloc.Propagate(obs, known, geoloc.Options{})
	if len(inferred) == 0 {
		t.Fatal("belief propagation inferred nothing")
	}
	// Score against ground truth: every IP belongs to a router/anchor/hop
	// whose true city worldgen knows.
	truth := map[uint32]int{}
	for _, tr := range w.Traces {
		for _, h := range tr.Hops {
			truth[h.IP] = h.City
		}
	}
	correct, total := 0, 0
	for ip, inf := range inferred {
		want, ok := truth[ip]
		if !ok {
			continue
		}
		total++
		if g.Cities[inf.City].Name == w.Cities[want].Name {
			correct++
		}
	}
	if total < 10 {
		t.Fatalf("only %d scored inferences", total)
	}
	if acc := float64(correct) / float64(total); acc < 0.7 {
		t.Errorf("belief propagation accuracy %.3f (%d/%d), want >= 0.7", acc, correct, total)
	}
}

func TestBeliefPropagationConsistencyWithHoiho(t *testing.T) {
	_, _, p := fixture(t)
	// Withhold Hoiho locations from the seed set, propagate from anchors +
	// IXP prefixes only, then compare the overlap — the paper's 86% check.
	seed := make(map[uint32]int)
	hoihoLoc := make(map[uint32]int)
	for _, m := range p.Measurements {
		for _, h := range m.Hops {
			addr, err := iptrie.ParseAddr(h.IP)
			if err != nil {
				continue
			}
			if c, src, ok := p.Geolocate(addr); ok {
				if src == "hoiho" {
					hoihoLoc[addr] = c
				} else {
					seed[addr] = c
				}
			}
		}
	}
	if len(hoihoLoc) == 0 {
		t.Skip("no hoiho-only locations in this world")
	}
	inferred := geoloc.Propagate(p.Observations(), seed, geoloc.Options{})
	agree, total := geoloc.Consistency(inferred, hoihoLoc)
	if total == 0 {
		t.Skip("no overlap between BP inferences and hoiho")
	}
	if frac := float64(agree) / float64(total); frac < 0.6 {
		t.Errorf("BP/hoiho consistency %.2f (%d/%d), want >= 0.6", frac, agree, total)
	}
}

func TestInferredRouteFallsBackToGreatCircle(t *testing.T) {
	_, g, p := fixture(t)
	// Two metros with no physical route still produce a geometry.
	a := g.CityByName("Sydney", "", "AU")
	b := g.CityByName("Lima", "", "PE")
	if a < 0 || b < 0 {
		t.Skip("cities missing")
	}
	geom, km := p.InferredRoute([]int{a, b})
	if len(geom) < 2 || km <= 0 {
		t.Errorf("fallback route empty: %d points, %.0f km", len(geom), km)
	}
}

func TestDistanceCostDegenerate(t *testing.T) {
	_, _, p := fixture(t)
	if _, _, _, ok := p.DistanceCost(nil); ok {
		t.Error("empty sequence should not score")
	}
	if _, _, _, ok := p.DistanceCost([]int{3}); ok {
		t.Error("single metro should not score")
	}
}
