// Package paths implements §4.2 of the paper: recovering the physical
// route a traceroute's packets traversed. It fuses logical measurements
// (hop IPs, RTTs) with iGDB's physical layer: bdrmap attributes hops to
// ASes, Hoiho/IXP-prefix/anchor lookups geolocate them, the hop metros are
// chained along inferred standard paths, MPLS-hidden intermediate PoPs are
// proposed via a spatial buffer join, and the route is scored against the
// shortest practical physical path (distance cost).
package paths

import (
	"fmt"
	"sort"

	"igdb/internal/bdrmap"
	"igdb/internal/core"
	"igdb/internal/geo"
	"igdb/internal/geoloc"
	"igdb/internal/geom"
	"igdb/internal/hoiho"
	"igdb/internal/ingest"
	"igdb/internal/iptrie"
	"igdb/internal/reldb"
	"igdb/internal/sources/rdns"
	"igdb/internal/sources/ripeatlas"
	"igdb/internal/sources/routeviews"
)

// trainingRTTMs bounds the RTT below which a hop is assumed co-located with
// the traceroute origin, for harvesting Hoiho training labels.
const trainingRTTMs = 1.0

// Pipeline holds everything needed to analyze traceroutes against an iGDB
// instance.
type Pipeline struct {
	G      *core.IGDB
	Mapper *bdrmap.Mapper
	Hoiho  *hoiho.Extractor
	// PTR maps IP → hostname from the rDNS snapshot.
	PTR map[uint32]string
	// Measurements are the visible traceroute mesh results.
	Measurements []ripeatlas.Measurement
	// AnchorCity maps anchor IPs and IDs to standard city indices.
	AnchorCity   map[uint32]int
	AnchorByID   map[int]ripeatlas.AnchorMeta
	anchorCityID map[int]int

	ixpTrie       *iptrie.Trie // IXP LAN prefix → city index
	asnMetroCache map[int]map[int]bool
}

// NewPipeline loads the measurement-side snapshots and trains the learned
// components (bdrmap domain votes, Hoiho conventions).
func NewPipeline(g *core.IGDB, store ingest.Reader) (*Pipeline, error) {
	p := &Pipeline{
		G:            g,
		PTR:          make(map[uint32]string),
		AnchorCity:   make(map[uint32]int),
		AnchorByID:   make(map[int]ripeatlas.AnchorMeta),
		anchorCityID: make(map[int]int),
		ixpTrie:      iptrie.New(),
	}
	// Prefix table → LPM trie.
	rvSnap, err := store.Latest("routeviews", g.AsOf)
	if err != nil {
		return nil, err
	}
	recs, err := routeviews.Parse(rvSnap.Files["pfx2as.tsv"])
	if err != nil {
		return nil, err
	}
	p.Mapper = bdrmap.New(recs)

	// rDNS.
	rdnsSnap, err := store.Latest("rdns", g.AsOf)
	if err != nil {
		return nil, err
	}
	ptrRecs, err := rdns.Parse(rdnsSnap.Files["ptr.tsv"])
	if err != nil {
		return nil, err
	}
	p.PTR = rdns.Lookup(ptrRecs)

	// Anchors + measurements.
	raSnap, err := store.Latest("ripeatlas", g.AsOf)
	if err != nil {
		return nil, err
	}
	metas, ms, err := ripeatlas.Parse(&ripeatlas.Dump{
		AnchorsJSON:       raSnap.Files["anchors.json"],
		MeasurementsJSONL: raSnap.Files["measurements.jsonl"],
	})
	if err != nil {
		return nil, err
	}
	p.Measurements = ms
	for _, m := range metas {
		city := g.Standardize(geo.Point{Lon: m.Lon, Lat: m.Lat})
		if city < 0 {
			continue
		}
		addr, err := iptrie.ParseAddr(m.IP)
		if err != nil {
			return nil, fmt.Errorf("paths: anchor %d: %v", m.ID, err)
		}
		p.AnchorCity[addr] = city
		p.AnchorByID[m.ID] = m
		p.anchorCityID[m.ID] = city
	}

	// IXP peering LANs from the database's ixp_prefixes ⋈ ixps.
	rows := g.Rel.MustQuery(`SELECT DISTINCT p.prefix, x.metro, x.country
		FROM ixp_prefixes p JOIN ixps x ON p.ixp_name = x.ixp_name`)
	for _, r := range rows.Rows {
		pfxText, _ := r[0].AsText()
		metro, _ := r[1].AsText()
		country, _ := r[2].AsText()
		pfx, err := iptrie.ParsePrefix(pfxText)
		if err != nil {
			continue
		}
		city := g.CityByName(metro, "", country)
		if city < 0 {
			continue
		}
		p.ixpTrie.Insert(pfx, city)
	}

	// Train: bdrmap domain votes over all hops, Hoiho from near-origin and
	// near-destination hops (their metros are pinned by the anchor).
	var allIPs [][]uint32
	var examples []hoiho.Example
	for _, m := range ms {
		ips := make([]uint32, 0, len(m.Hops))
		for _, h := range m.Hops {
			addr, err := iptrie.ParseAddr(h.IP)
			if err != nil {
				continue
			}
			ips = append(ips, addr)
		}
		allIPs = append(allIPs, ips)
		srcCity, okS := p.anchorCityID[m.SrcAnchor]
		dstCity, okD := p.anchorCityID[m.DstAnchor]
		last := 0.0
		if n := len(m.Hops); n > 0 {
			last = m.Hops[n-1].RTT
		}
		for i, h := range m.Hops {
			if i >= len(ips) {
				break
			}
			host, okPTR := p.PTR[ips[i]]
			if !okPTR {
				continue
			}
			switch {
			case okS && h.RTT <= trainingRTTMs:
				examples = append(examples, hoiho.Example{Hostname: host, City: srcCity})
			case okD && last-h.RTT <= trainingRTTMs:
				examples = append(examples, hoiho.Example{Hostname: host, City: dstCity})
			}
		}
	}
	p.Mapper.LearnDomains(allIPs, p.PTR)
	p.Hoiho = hoiho.Learn(examples, g.Cities)
	return p, nil
}

// Geolocate resolves one hop IP to a standard city using, in priority
// order: anchor metadata, IXP peering LAN prefixes, Hoiho hostname
// conventions. source names the winning technique.
func (p *Pipeline) Geolocate(ip uint32) (city int, source string, ok bool) {
	return p.GeolocateWithAS(ip, -1)
}

// GeolocateWithAS is Geolocate with an optional AS attribution for the hop:
// when the hostname's city code is ambiguous (several gazetteer cities
// derive the same code), candidates where the AS declares a presence win
// over raw population order.
func (p *Pipeline) GeolocateWithAS(ip uint32, asn int) (city int, source string, ok bool) {
	return p.GeolocateHop(ip, asn, -1, 0)
}

// fiberKmPerMs is the one-way propagation speed of light in fiber.
const fiberKmPerMs = 200.0

// GeolocateHop adds measurement context to GeolocateWithAS: srcCity is the
// metro of the traceroute's origin anchor and rttMs the hop's RTT. A
// candidate metro farther from the origin than light in fiber could travel
// in rtt/2 is physically impossible and is discarded — the constraint-based
// filter that disambiguates colliding city codes (e.g. every "orl" metro
// except the one actually reachable).
func (p *Pipeline) GeolocateHop(ip uint32, asn, srcCity int, rttMs float64) (city int, source string, ok bool) {
	if c, have := p.AnchorCity[ip]; have {
		return c, "anchor", true
	}
	if c, have := p.ixpTrie.Lookup(ip); have {
		return c, "ixp", true
	}
	host, have := p.PTR[ip]
	if !have {
		return -1, "", false
	}
	cands := p.Hoiho.Candidates(host)
	if len(cands) == 0 {
		return -1, "", false
	}
	if srcCity >= 0 && rttMs > 0 {
		// Allow generous slack for queueing and route inflation.
		maxKm := rttMs/2*fiberKmPerMs + 100
		filtered := cands[:0:0]
		srcLoc := p.G.Cities[srcCity].Loc
		for _, c := range cands {
			if geo.Haversine(srcLoc, p.G.Cities[c].Loc) <= maxKm {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) > 0 {
			cands = filtered
		}
	}
	if len(cands) > 1 && asn >= 0 {
		if metros := p.asnMetros(asn); metros != nil {
			for _, c := range cands {
				if metros[c] {
					return c, "hoiho", true
				}
			}
		}
	}
	return cands[0], "hoiho", true
}

// asnMetros lazily caches the declared metro set of an AS from asn_loc.
func (p *Pipeline) asnMetros(asn int) map[int]bool {
	if p.asnMetroCache == nil {
		p.asnMetroCache = make(map[int]map[int]bool)
	}
	if m, ok := p.asnMetroCache[asn]; ok {
		return m
	}
	m := make(map[int]bool)
	rows := p.G.Rel.MustQuery(fmt.Sprintf(
		`SELECT DISTINCT metro, state_province, country FROM asn_loc WHERE asn = %d`, asn))
	for _, r := range rows.Rows {
		mm, _ := r[0].AsText()
		ss, _ := r[1].AsText()
		cc, _ := r[2].AsText()
		if idx := p.G.CityIndex(mm, ss, cc); idx >= 0 {
			m[idx] = true
		}
	}
	p.asnMetroCache[asn] = m
	return m
}

// StoreIPASNDNS analyzes the full measurement corpus and writes one row per
// distinct IP into the ip_asn_dns relation — the paper's §3.2 preparatory
// table (IP→ASN via bdrmap, IP→FQDN via rDNS, FQDN→location via Hoiho),
// which users may extend with their own mappings. Returns the row count.
func (p *Pipeline) StoreIPASNDNS() (int, error) {
	type entry struct {
		asn    int
		host   string
		city   int
		source string
	}
	seen := map[uint32]entry{}
	order := []uint32{}
	for _, m := range p.Measurements {
		ta := p.AnalyzeTrace(m)
		for _, h := range ta.Hops {
			if _, have := seen[h.IP]; have {
				continue
			}
			seen[h.IP] = entry{asn: h.ASN, host: h.Hostname, city: h.City, source: h.GeoSource}
			order = append(order, h.IP)
		}
	}
	asOf := "latest"
	if !p.G.AsOf.IsZero() {
		asOf = p.G.AsOf.UTC().Format("2006-01-02")
	}
	rows := make([][]reldb.Value, 0, len(order))
	for _, ip := range order {
		e := seen[ip]
		metro, state, country := "", "", ""
		if e.city >= 0 {
			c := p.G.Cities[e.city]
			metro, state, country = c.Name, c.State, c.Country
		}
		asnVal := reldb.Null
		if e.asn >= 0 {
			asnVal = reldb.Int(int64(e.asn))
		}
		rows = append(rows, []reldb.Value{
			reldb.Text(iptrie.FormatAddr(ip)), asnVal, reldb.Text(e.host),
			reldb.Text(metro), reldb.Text(state), reldb.Text(country),
			reldb.Text(e.source), reldb.Text(asOf),
		})
	}
	if err := p.G.Rel.BulkInsert("ip_asn_dns", rows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Hop is one analyzed traceroute hop.
type Hop struct {
	IP        uint32
	RTT       float64
	ASN       int    // bdrmap attribution, -1 unknown
	City      int    // -1 unknown
	GeoSource string // anchor | ixp | hoiho | bp | ""
	Hostname  string
}

// TraceAnalysis is the §4.2 output for one traceroute.
type TraceAnalysis struct {
	Hops    []Hop
	ASPath  []int
	CitySeq []int // geolocated metros, consecutive duplicates collapsed
}

// AnalyzeTrace runs attribution + geolocation for one measurement.
func (p *Pipeline) AnalyzeTrace(m ripeatlas.Measurement) TraceAnalysis {
	ips := make([]uint32, 0, len(m.Hops))
	rtts := make([]float64, 0, len(m.Hops))
	for _, h := range m.Hops {
		addr, err := iptrie.ParseAddr(h.IP)
		if err != nil {
			continue
		}
		ips = append(ips, addr)
		rtts = append(rtts, h.RTT)
	}
	asns := p.Mapper.MapTrace(ips, p.PTR)
	ta := TraceAnalysis{ASPath: bdrmap.ASPath(asns)}
	srcCity := -1
	if c, ok := p.anchorCityID[m.SrcAnchor]; ok {
		srcCity = c
	}
	for i, ip := range ips {
		h := Hop{IP: ip, RTT: rtts[i], ASN: asns[i], City: -1, Hostname: p.PTR[ip]}
		if c, src, ok := p.GeolocateHop(ip, asns[i], srcCity, rtts[i]); ok {
			h.City = c
			h.GeoSource = src
		}
		ta.Hops = append(ta.Hops, h)
	}
	for _, h := range ta.Hops {
		if h.City < 0 {
			continue
		}
		if len(ta.CitySeq) == 0 || ta.CitySeq[len(ta.CitySeq)-1] != h.City {
			ta.CitySeq = append(ta.CitySeq, h.City)
		}
	}
	return ta
}

// InferredRoute chains the metro sequence along inferred physical paths,
// returning the concatenated conduit geometry and its length. Metro pairs
// with no physical route contribute a great-circle segment (and its
// distance) so the total remains comparable.
func (p *Pipeline) InferredRoute(citySeq []int) (geom []geo.Point, km float64) {
	for i := 0; i+1 < len(citySeq); i++ {
		a, b := citySeq[i], citySeq[i+1]
		nodes, segKm, ok := p.G.Paths.ShortestPracticalPath(a, b)
		if !ok {
			la, lb := p.G.Cities[a].Loc, p.G.Cities[b].Loc
			km += geo.Haversine(la, lb)
			geom = appendSeg(geom, []geo.Point{la, lb})
			continue
		}
		km += segKm
		geom = appendSeg(geom, p.G.Paths.RouteGeometry(nodes))
	}
	return geom, km
}

func appendSeg(dst, seg []geo.Point) []geo.Point {
	if len(seg) == 0 {
		return dst
	}
	if len(dst) > 0 && dst[len(dst)-1] == seg[0] {
		seg = seg[1:]
	}
	return append(dst, seg...)
}

// HiddenCandidate is a PoP possibly traversed but invisible to traceroute
// (e.g. inside an MPLS tunnel).
type HiddenCandidate struct {
	City int
	ASN  int
	Km   float64 // distance from the inferred route
}

// HiddenNodeCandidates proposes MPLS-hidden intermediate nodes between two
// observed consecutive metros: cities inside a buffer around the k=2
// alternate physical routes where any of the segment's ASes has a peering
// location with physical connectivity (the paper's ArcGIS buffer + spatial
// join, Figure 7's Tulsa/Oklahoma City finding).
func (p *Pipeline) HiddenNodeCandidates(a, b int, asns []int, bufferMiles float64) []HiddenCandidate {
	if bufferMiles <= 0 {
		bufferMiles = 25
	}
	radius := bufferMiles * geo.KmPerMile
	peering := p.peeringCities(asns)
	var out []HiddenCandidate
	seen := map[[2]int]bool{}
	for _, route := range p.G.Paths.KShortestRoutes(a, b, 2) {
		line := p.G.Paths.RouteGeometry(route)
		if len(line) < 2 {
			continue
		}
		buf := geom.NewBuffer(line, radius)
		box := buf.BBox()
		for city, cityASNs := range peering {
			if city == a || city == b {
				continue
			}
			loc := p.G.Cities[city].Loc
			if !box.Contains(loc) || !buf.Contains(loc) {
				continue
			}
			// Require physical connectivity at the candidate.
			if p.G.Paths.G.Len() <= city || len(p.G.Paths.G.Neighbors(city)) == 0 {
				continue
			}
			d, _ := geom.DistanceToPolylineKm(loc, line)
			for _, asn := range cityASNs {
				key := [2]int{city, asn}
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, HiddenCandidate{City: city, ASN: asn, Km: d})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Km != out[j].Km {
			return out[i].Km < out[j].Km
		}
		return out[i].City < out[j].City
	})
	return out
}

// peeringCities returns city → subset of asns with a peering location there
// (from asn_loc).
func (p *Pipeline) peeringCities(asns []int) map[int][]int {
	out := make(map[int][]int)
	for _, asn := range asns {
		rows := p.G.Rel.MustQuery(fmt.Sprintf(
			`SELECT DISTINCT metro, state_province, country FROM asn_loc WHERE asn = %d`, asn))
		for _, r := range rows.Rows {
			m, _ := r[0].AsText()
			s, _ := r[1].AsText()
			c, _ := r[2].AsText()
			city := p.G.CityIndex(m, s, c)
			if city >= 0 {
				out[city] = append(out[city], asn)
			}
		}
	}
	return out
}

// DistanceCost compares the traceroute-derived route against the shortest
// practical physical path between the sequence's endpoints (§4.2: the
// Kansas City→Atlanta example scores 2518/1282 = 1.96).
func (p *Pipeline) DistanceCost(citySeq []int) (inferredKm, shortestKm, cost float64, ok bool) {
	if len(citySeq) < 2 {
		return 0, 0, 0, false
	}
	_, inferredKm = p.InferredRoute(citySeq)
	_, shortestKm, ok = p.G.Paths.ShortestPracticalPath(citySeq[0], citySeq[len(citySeq)-1])
	if !ok || shortestKm == 0 {
		return inferredKm, 0, 0, false
	}
	return inferredKm, shortestKm, inferredKm / shortestKm, true
}

// Observations converts the loaded measurements into geoloc observations
// with bdrmap AS attributions, for belief propagation (§4.4).
func (p *Pipeline) Observations() []geoloc.Observation {
	out := make([]geoloc.Observation, 0, len(p.Measurements))
	for _, m := range p.Measurements {
		var o geoloc.Observation
		for _, h := range m.Hops {
			addr, err := iptrie.ParseAddr(h.IP)
			if err != nil {
				continue
			}
			o.IPs = append(o.IPs, addr)
			o.RTTs = append(o.RTTs, h.RTT)
		}
		o.ASNs = p.Mapper.MapTrace(o.IPs, p.PTR)
		out = append(out, o)
	}
	return out
}

// KnownLocations returns every IP geolocatable without propagation, the
// seed set for §4.4. Hop AS attributions and per-measurement latency
// context sharpen ambiguous geohints.
func (p *Pipeline) KnownLocations() map[uint32]int {
	known := make(map[uint32]int)
	for _, m := range p.Measurements {
		ta := p.AnalyzeTrace(m)
		for _, h := range ta.Hops {
			if h.City < 0 {
				continue
			}
			if _, have := known[h.IP]; !have {
				known[h.IP] = h.City
			}
		}
	}
	return known
}
