package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"igdb/internal/geo"
	"igdb/internal/geom"
)

func TestTwoSites(t *testing.T) {
	sites := []geo.Point{{Lon: -10, Lat: 0}, {Lon: 10, Lat: 0}}
	d := Build(sites, WorldBounds)
	if d.Cells[0] == nil || d.Cells[1] == nil {
		t.Fatal("both cells must exist")
	}
	// The boundary is the lon=0 meridian; each cell covers half the world.
	half := 360.0 * 180.0 / 2
	if a := d.CellArea(0); math.Abs(a-half) > 1 {
		t.Errorf("cell 0 area = %v, want %v", a, half)
	}
	// Sites sit inside their own cells.
	if !geom.PointInPolygon(sites[0], [][]geo.Point{d.Cells[0]}) {
		t.Error("site 0 not in its own cell")
	}
	// A point west of the bisector belongs to cell 0.
	if !geom.PointInPolygon(geo.Point{Lon: -1, Lat: 30}, [][]geo.Point{d.Cells[0]}) {
		t.Error("(-1,30) should be in the western cell")
	}
	if geom.PointInPolygon(geo.Point{Lon: 1, Lat: 30}, [][]geo.Point{d.Cells[0]}) {
		t.Error("(1,30) should not be in the western cell")
	}
}

func TestCellsAreClosedRings(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	sites := randomSites(r, 40)
	d := Build(sites, WorldBounds)
	for i, c := range d.Cells {
		if c == nil {
			t.Fatalf("cell %d missing", i)
		}
		if len(c) < 4 {
			t.Fatalf("cell %d too small: %d points", i, len(c))
		}
		if c[0] != c[len(c)-1] {
			t.Fatalf("cell %d ring not closed", i)
		}
	}
}

func randomSites(r *rand.Rand, n int) []geo.Point {
	sites := make([]geo.Point, n)
	for i := range sites {
		sites[i] = geo.Point{Lon: r.Float64()*360 - 180, Lat: r.Float64()*180 - 90}
	}
	return sites
}

// The defining property: every random point lies in the cell of its planar
// nearest site.
func TestNearestSiteOwnsCell(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	sites := randomSites(r, 120)
	d := Build(sites, WorldBounds)
	for q := 0; q < 400; q++ {
		p := geo.Point{Lon: r.Float64()*360 - 180, Lat: r.Float64()*180 - 90}
		owner := d.Locate(p)
		if owner < 0 {
			t.Fatal("locate failed")
		}
		if !geom.PointInPolygon(p, [][]geo.Point{d.Cells[owner]}) {
			// Tolerate boundary-precision cases: point must at least be very
			// close to the owner's cell.
			dmin, _ := geom.DistanceToPolylineKm(p, d.Cells[owner])
			if dmin > 1 {
				t.Fatalf("point %v not in cell of nearest site %d (%.2f km away)", p, owner, dmin)
			}
		}
	}
}

// Cells tile the bounding rectangle: areas sum to the world rectangle area.
func TestTessellationCoversWorld(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	sites := randomSites(r, 200)
	d := Build(sites, WorldBounds)
	want := 360.0 * 180.0
	got := d.TotalArea()
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("total cell area = %.4f, want %.4f", got, want)
	}
}

func TestDuplicateSites(t *testing.T) {
	sites := []geo.Point{{Lon: 0, Lat: 0}, {Lon: 0, Lat: 0}, {Lon: 20, Lat: 20}}
	d := Build(sites, WorldBounds)
	if d.Cells[0] == nil {
		t.Error("first duplicate keeps its cell")
	}
	if d.Cells[1] != nil {
		t.Error("second duplicate must lose its cell")
	}
	if d.Cells[2] == nil {
		t.Error("distinct site keeps its cell")
	}
	// Areas still tile the world.
	want := 360.0 * 180.0
	if got := d.TotalArea(); math.Abs(got-want)/want > 1e-6 {
		t.Errorf("area %.2f, want %.2f", got, want)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	d := Build(nil, WorldBounds)
	if len(d.Cells) != 0 || d.Locate(geo.Point{}) != -1 {
		t.Error("empty diagram mishandled")
	}
	d = Build([]geo.Point{{Lon: 5, Lat: 5}}, WorldBounds)
	if d.CellArea(0) != 360*180 {
		t.Errorf("single site must own the world, got area %v", d.CellArea(0))
	}
}

func TestRegionalBounds(t *testing.T) {
	// Continental US-ish box.
	bounds := geo.BBox{MinLon: -125, MinLat: 24, MaxLon: -66, MaxLat: 50}
	sites := []geo.Point{
		{Lon: -94.58, Lat: 39.10}, // Kansas City
		{Lon: -95.99, Lat: 36.15}, // Tulsa
		{Lon: -84.39, Lat: 33.75}, // Atlanta
		{Lon: -90.20, Lat: 38.63}, // St. Louis
		{Lon: -86.78, Lat: 36.16}, // Nashville
	}
	d := Build(sites, bounds)
	want := (bounds.MaxLon - bounds.MinLon) * (bounds.MaxLat - bounds.MinLat)
	if got := d.TotalArea(); math.Abs(got-want)/want > 1e-6 {
		t.Errorf("regional tessellation area %.2f, want %.2f", got, want)
	}
	// Check all cell vertices stay in bounds.
	for i, c := range d.Cells {
		for _, p := range c {
			if !bounds.Pad(1e-9).Contains(p) {
				t.Fatalf("cell %d vertex %v escapes bounds", i, p)
			}
		}
	}
}

func TestLargeDiagramProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := rand.New(rand.NewSource(77))
	sites := randomSites(r, 1500)
	d := Build(sites, WorldBounds)
	want := 360.0 * 180.0
	if got := d.TotalArea(); math.Abs(got-want)/want > 1e-5 {
		t.Errorf("1500-site tessellation area %.2f, want %.2f", got, want)
	}
	// Spot-check ownership.
	for q := 0; q < 100; q++ {
		p := geo.Point{Lon: r.Float64()*360 - 180, Lat: r.Float64()*180 - 90}
		owner := d.Locate(p)
		if !geom.PointInPolygon(p, [][]geo.Point{d.Cells[owner]}) {
			dmin, _ := geom.DistanceToPolylineKm(p, d.Cells[owner])
			if dmin > 1 {
				t.Fatalf("ownership violated for %v (%.2f km)", p, dmin)
			}
		}
	}
}

func BenchmarkBuild1000(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	sites := randomSites(r, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(sites, WorldBounds)
	}
}
