// Package voronoi constructs the Thiessen-polygon tessellation at the heart
// of iGDB's location standardization (§3.1 of the paper): the Earth is
// divided into one polygon per urban area such that every point inside a
// polygon is closer to that polygon's city than to any other.
//
// Cells are computed exactly in the plate-carrée plane (lon/lat treated as
// planar, the same convention the polygons are stored and rendered in) by
// clipping a bounding rectangle with perpendicular-bisector half-planes.
// The incremental k-nearest strategy stops once no remaining site can cut
// the cell, so the result equals the full O(n²) construction.
package voronoi

import (
	"math"
	"sort"

	"igdb/internal/geo"
	"igdb/internal/geom"
)

// Diagram is a Voronoi tessellation of a set of sites.
type Diagram struct {
	Sites []geo.Point
	// Cells[i] is the closed polygon ring (first point repeated at the end)
	// of site i, nil for duplicate sites that lost their cell.
	Cells  [][]geo.Point
	bounds geo.BBox
}

// WorldBounds is the default clipping rectangle covering the whole Earth in
// plate-carrée coordinates.
var WorldBounds = geo.BBox{MinLon: -180, MinLat: -90, MaxLon: 180, MaxLat: 90}

// Build computes the Voronoi diagram of sites clipped to bounds.
func Build(sites []geo.Point, bounds geo.BBox) *Diagram {
	d := &Diagram{
		Sites:  append([]geo.Point(nil), sites...),
		Cells:  make([][]geo.Point, len(sites)),
		bounds: bounds,
	}
	if len(sites) == 0 {
		return d
	}
	idx := newKD2(sites)
	boundRing := []geom.XY{
		{X: bounds.MinLon, Y: bounds.MinLat},
		{X: bounds.MaxLon, Y: bounds.MinLat},
		{X: bounds.MaxLon, Y: bounds.MaxLat},
		{X: bounds.MinLon, Y: bounds.MaxLat},
	}
	dup := findDuplicates(sites)
	for i, s := range sites {
		if dup[i] {
			continue
		}
		d.Cells[i] = closeRing(cellFor(s, i, idx, boundRing))
	}
	return d
}

// findDuplicates marks every site after the first at identical coordinates.
func findDuplicates(sites []geo.Point) []bool {
	seen := make(map[geo.Point]bool, len(sites))
	dup := make([]bool, len(sites))
	for i, s := range sites {
		if seen[s] {
			dup[i] = true
		}
		seen[s] = true
	}
	return dup
}

func cellFor(site geo.Point, selfID int, idx *kd2, boundRing []geom.XY) []geom.XY {
	cell := boundRing
	p := geom.XY{X: site.Lon, Y: site.Lat}
	// Stream neighbours in increasing planar distance. A site at distance d
	// can only clip the cell if d/2 < R, the max distance from our site to
	// any current cell vertex; once d > 2R we are done.
	const batch = 16
	k := batch
	processed := 0
	for {
		neigh := idx.kNearest(p, k+1) // +1: includes self
		madeProgress := false
		for _, nb := range neigh[processed:] {
			if nb.id == selfID {
				processed++
				continue
			}
			r := maxVertexDist(p, cell)
			if nb.dist > 2*r {
				return cell
			}
			q := geom.XY{X: idx.pts[nb.id].X, Y: idx.pts[nb.id].Y}
			if q == p {
				processed++
				continue // exact duplicate handled by caller
			}
			cell = geom.ClipRingHalfPlane(cell, geom.Bisector(p, q))
			if len(cell) == 0 {
				return nil
			}
			processed++
			madeProgress = true
		}
		if len(neigh) < k+1 {
			// Exhausted all sites.
			return cell
		}
		if !madeProgress && processed >= len(neigh) {
			return cell
		}
		k *= 2
	}
}

func maxVertexDist(p geom.XY, ring []geom.XY) float64 {
	var worst float64
	for _, v := range ring {
		d := math.Hypot(v.X-p.X, v.Y-p.Y)
		if d > worst {
			worst = d
		}
	}
	return worst
}

func closeRing(ring []geom.XY) []geo.Point {
	if len(ring) == 0 {
		return nil
	}
	out := make([]geo.Point, 0, len(ring)+1)
	for _, v := range ring {
		out = append(out, geo.Point{Lon: v.X, Lat: v.Y})
	}
	out = append(out, out[0])
	return out
}

// Locate returns the index of the site whose cell contains p (the planar
// nearest site), or -1 for an empty diagram.
func (d *Diagram) Locate(p geo.Point) int {
	best := -1
	bestD := math.Inf(1)
	for i, s := range d.Sites {
		dx, dy := s.Lon-p.Lon, s.Lat-p.Lat
		if dd := dx*dx + dy*dy; dd < bestD {
			bestD = dd
			best = i
		}
	}
	return best
}

// CellArea returns the planar (degree²) area of cell i, 0 when absent.
func (d *Diagram) CellArea(i int) float64 {
	c := d.Cells[i]
	if len(c) < 4 {
		return 0
	}
	ring := make([]geom.XY, len(c)-1)
	for j := 0; j < len(c)-1; j++ {
		ring[j] = geom.XY{X: c[j].Lon, Y: c[j].Lat}
	}
	return math.Abs(geom.SignedArea(ring))
}

// TotalArea sums all cell areas; for a full tessellation it equals the area
// of the bounding rectangle.
func (d *Diagram) TotalArea() float64 {
	var sum float64
	for i := range d.Cells {
		sum += d.CellArea(i)
	}
	return sum
}

// kd2 is a small planar k-d tree used to stream nearest sites.
type kd2 struct {
	pts      []geom.XY
	rootNode *kdNode
}

func newKD2(sites []geo.Point) *kd2 {
	t := &kd2{pts: make([]geom.XY, len(sites))}
	order := make([]int, len(sites))
	for i, s := range sites {
		t.pts[i] = geom.XY{X: s.Lon, Y: s.Lat}
		order[i] = i
	}
	t.rootNode = t.buildRec(order, 0)
	return t
}

type kdNode struct {
	idx         int
	axis        int
	left, right *kdNode
}

func (t *kd2) buildRec(order []int, depth int) *kdNode {
	if len(order) == 0 {
		return nil
	}
	axis := depth % 2
	sort.Slice(order, func(i, j int) bool {
		a, b := t.pts[order[i]], t.pts[order[j]]
		if axis == 0 {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	mid := len(order) / 2
	n := &kdNode{idx: order[mid], axis: axis}
	left := append([]int(nil), order[:mid]...)
	right := append([]int(nil), order[mid+1:]...)
	n.left = t.buildRec(left, depth+1)
	n.right = t.buildRec(right, depth+1)
	return n
}

type neighbor struct {
	id   int
	dist float64
}

// kNearest returns the k nearest sites to p in increasing distance.
func (t *kd2) kNearest(p geom.XY, k int) []neighbor {
	if t.rootNode == nil || k <= 0 {
		return nil
	}
	// Max-heap of current best k, implemented on a slice.
	var best []neighbor
	worse := func(i, j int) bool { return best[i].dist > best[j].dist }
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			largest := i
			if l < len(best) && worse(l, largest) {
				largest = l
			}
			if r < len(best) && worse(r, largest) {
				largest = r
			}
			if largest == i {
				return
			}
			best[i], best[largest] = best[largest], best[i]
			i = largest
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(i, parent) {
				return
			}
			best[i], best[parent] = best[parent], best[i]
			i = parent
		}
	}
	var search func(n *kdNode)
	search = func(n *kdNode) {
		if n == nil {
			return
		}
		q := t.pts[n.idx]
		d := math.Hypot(q.X-p.X, q.Y-p.Y)
		if len(best) < k {
			best = append(best, neighbor{n.idx, d})
			siftUp(len(best) - 1)
		} else if d < best[0].dist {
			best[0] = neighbor{n.idx, d}
			siftDown(0)
		}
		var delta float64
		if n.axis == 0 {
			delta = p.X - q.X
		} else {
			delta = p.Y - q.Y
		}
		near, far := n.left, n.right
		if delta > 0 {
			near, far = far, near
		}
		search(near)
		if len(best) < k || math.Abs(delta) < best[0].dist {
			search(far)
		}
	}
	search(t.rootNode)
	sort.Slice(best, func(i, j int) bool { return best[i].dist < best[j].dist })
	return best
}
