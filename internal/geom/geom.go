// Package geom implements the geometry operations iGDB's spatial analyses
// need: point-in-polygon tests, point-to-polyline distance, geodesic buffers
// around routes (the §4.2 MPLS hidden-node inference joins AS peering
// locations against a buffer around each inferred physical path),
// Sutherland–Hodgman clipping (used by the Voronoi builder), and
// Douglas–Peucker simplification (used when rendering dense cable paths).
package geom

import (
	"math"

	"igdb/internal/geo"
)

// XY is a planar coordinate used by the low-level polygon routines. The
// geographic entry points project lon/lat into a local plane first.
type XY struct {
	X, Y float64
}

// PointInRing reports whether p is inside the closed ring (even-odd ray
// casting). Points exactly on an edge may report either side; iGDB's
// standardization never depends on boundary points because it assigns by
// nearest-neighbour distance.
func PointInRing(p XY, ring []XY) bool {
	inside := false
	n := len(ring)
	if n < 3 {
		return false
	}
	j := n - 1
	for i := 0; i < n; i++ {
		pi, pj := ring[i], ring[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			xCross := (pj.X-pi.X)*(p.Y-pi.Y)/(pj.Y-pi.Y) + pi.X
			if p.X < xCross {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// PointInPolygon reports whether the lon/lat point lies inside the polygon
// rings (exterior ring first, subsequent rings are holes). The test treats
// lon/lat as planar, which matches how the polygons are constructed.
func PointInPolygon(p geo.Point, rings [][]geo.Point) bool {
	if len(rings) == 0 {
		return false
	}
	q := XY{p.Lon, p.Lat}
	if !PointInRing(q, toXY(rings[0])) {
		return false
	}
	for _, hole := range rings[1:] {
		if PointInRing(q, toXY(hole)) {
			return false
		}
	}
	return true
}

func toXY(pts []geo.Point) []XY {
	out := make([]XY, len(pts))
	for i, p := range pts {
		out[i] = XY{p.Lon, p.Lat}
	}
	return out
}

// SignedArea returns the signed planar area of a ring: positive when the
// ring winds counter-clockwise.
func SignedArea(ring []XY) float64 {
	var a float64
	n := len(ring)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += ring[i].X*ring[j].Y - ring[j].X*ring[i].Y
	}
	return a / 2
}

// Centroid returns the planar area centroid of a ring. Falls back to the
// vertex mean for degenerate (zero-area) rings.
func Centroid(ring []XY) XY {
	a := SignedArea(ring)
	if math.Abs(a) < 1e-12 {
		var c XY
		for _, p := range ring {
			c.X += p.X
			c.Y += p.Y
		}
		n := float64(len(ring))
		return XY{c.X / n, c.Y / n}
	}
	var cx, cy float64
	n := len(ring)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		f := ring[i].X*ring[j].Y - ring[j].X*ring[i].Y
		cx += (ring[i].X + ring[j].X) * f
		cy += (ring[i].Y + ring[j].Y) * f
	}
	return XY{cx / (6 * a), cy / (6 * a)}
}

// HalfPlane is the set of points satisfying A*x + B*y <= C.
type HalfPlane struct {
	A, B, C float64
}

// Side returns A*x + B*y - C; <= 0 means p is inside the half-plane.
func (h HalfPlane) Side(p XY) float64 { return h.A*p.X + h.B*p.Y - h.C }

// Bisector returns the half-plane of points at least as close to a as to b
// (the perpendicular-bisector half containing a). Voronoi cells are
// intersections of these.
func Bisector(a, b XY) HalfPlane {
	// |p-a|^2 <= |p-b|^2  ⇔  2(b-a)·p <= |b|^2 - |a|^2
	return HalfPlane{
		A: 2 * (b.X - a.X),
		B: 2 * (b.Y - a.Y),
		C: b.X*b.X + b.Y*b.Y - a.X*a.X - a.Y*a.Y,
	}
}

// ClipRingHalfPlane clips a convex or simple ring against a half-plane,
// returning the part inside (Sutherland–Hodgman step). The input ring is
// open (no repeated last vertex); so is the output.
func ClipRingHalfPlane(ring []XY, h HalfPlane) []XY {
	if len(ring) == 0 {
		return nil
	}
	out := make([]XY, 0, len(ring)+4)
	n := len(ring)
	for i := 0; i < n; i++ {
		cur, next := ring[i], ring[(i+1)%n]
		curIn, nextIn := h.Side(cur) <= 0, h.Side(next) <= 0
		if curIn {
			out = append(out, cur)
		}
		if curIn != nextIn {
			out = append(out, intersectHalfPlane(cur, next, h))
		}
	}
	if len(out) < 3 {
		return nil
	}
	return out
}

func intersectHalfPlane(a, b XY, h HalfPlane) XY {
	da, db := h.Side(a), h.Side(b)
	t := da / (da - db)
	return XY{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
}

// ClipRingConvex clips ring against every edge of the convex clip ring
// (counter-clockwise winding), returning the intersection.
func ClipRingConvex(ring, clip []XY) []XY {
	out := ring
	n := len(clip)
	for i := 0; i < n && len(out) > 0; i++ {
		a, b := clip[i], clip[(i+1)%n]
		// For a CCW clip polygon the inside of edge a→b is its left side:
		// cross(b-a, p-a) >= 0, rearranged into A*x + B*y <= C form.
		h := HalfPlane{
			A: b.Y - a.Y,
			B: a.X - b.X,
			C: a.X*b.Y - a.Y*b.X,
		}
		out = ClipRingHalfPlane(out, h)
	}
	return out
}

// SegmentPointDistance returns the planar distance from p to segment ab and
// the parameter t in [0,1] of the closest point along ab.
func SegmentPointDistance(p, a, b XY) (dist, t float64) {
	dx, dy := b.X-a.X, b.Y-a.Y
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return math.Hypot(p.X-a.X, p.Y-a.Y), 0
	}
	t = ((p.X-a.X)*dx + (p.Y-a.Y)*dy) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	cx, cy := a.X+t*dx, a.Y+t*dy
	return math.Hypot(p.X-cx, p.Y-cy), t
}

// wrapLon180 normalizes a longitude difference into [-180, 180].
func wrapLon180(d float64) float64 {
	d = math.Mod(d+180, 360)
	if d < 0 {
		d += 360
	}
	return d - 180
}

// DistanceToSegmentKm returns the great-circle-accurate distance in km from
// point p to the geodesic segment ab, computed in a local equirectangular
// plane centered on the segment (accurate for the sub-thousand-km segments
// right-of-way networks consist of). Longitudes are unwrapped into a frame
// centered on a, so a segment crossing the antimeridian (179.9° → -179.9°)
// projects as the short 0.2° hop, not a planet-wide span.
func DistanceToSegmentKm(p, a, b geo.Point) float64 {
	b.Lon = a.Lon + wrapLon180(b.Lon-a.Lon)
	p.Lon = a.Lon + wrapLon180(p.Lon-a.Lon)
	pr := geo.LocalProjection(geo.Point{Lon: (a.Lon + b.Lon) / 2, Lat: (a.Lat + b.Lat) / 2})
	px, py := pr.Forward(p)
	ax, ay := pr.Forward(a)
	bx, by := pr.Forward(b)
	d, _ := SegmentPointDistance(XY{px, py}, XY{ax, ay}, XY{bx, by})
	return d
}

// DistanceToPolylineKm returns the minimum distance in km from p to the
// polyline, and the index of the nearest segment. Returns +Inf for an empty
// line and the point distance for a single-vertex line.
func DistanceToPolylineKm(p geo.Point, line []geo.Point) (km float64, seg int) {
	switch len(line) {
	case 0:
		return math.Inf(1), -1
	case 1:
		return geo.Haversine(p, line[0]), 0
	}
	best := math.Inf(1)
	bestSeg := 0
	for i := 1; i < len(line); i++ {
		if d := DistanceToSegmentKm(p, line[i-1], line[i]); d < best {
			best = d
			bestSeg = i - 1
		}
	}
	return best, bestSeg
}

// PolylineMinDistanceKm returns the minimum distance between two polylines
// in km (0 when they intersect is approximated by vertex/segment proximity;
// adequate for the 25-mile corridor comparison of Figure 4).
func PolylineMinDistanceKm(a, b []geo.Point) float64 {
	best := math.Inf(1)
	for _, p := range a {
		if d, _ := DistanceToPolylineKm(p, b); d < best {
			best = d
		}
	}
	for _, p := range b {
		if d, _ := DistanceToPolylineKm(p, a); d < best {
			best = d
		}
	}
	return best
}

// HausdorffDirectedKm returns the directed Hausdorff distance from polyline
// a to polyline b in km: the largest distance any vertex of a is from b.
// Used to score how closely an inferred right-of-way route tracks a
// ground-truth long-haul link (Figure 4's "within 25 miles" criterion).
func HausdorffDirectedKm(a, b []geo.Point) float64 {
	var worst float64
	for _, p := range a {
		d, _ := DistanceToPolylineKm(p, b)
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Buffer is a corridor of fixed geodesic radius around a polyline — the
// spatial-buffer object §4.2 builds around each inferred physical route.
type Buffer struct {
	Line     []geo.Point
	RadiusKm float64
}

// NewBuffer constructs a buffer of radiusKm around line.
func NewBuffer(line []geo.Point, radiusKm float64) Buffer {
	return Buffer{Line: line, RadiusKm: radiusKm}
}

// Contains reports whether p lies within the buffer corridor.
func (b Buffer) Contains(p geo.Point) bool {
	d, _ := DistanceToPolylineKm(p, b.Line)
	return d <= b.RadiusKm
}

// BBox returns a bounding box guaranteed to contain the buffer, for index
// pre-filtering.
func (b Buffer) BBox() geo.BBox {
	box := geo.BBoxOf(b.Line)
	// One degree of latitude is ~111 km; padding by the radius converted at
	// the equator over-covers at higher latitudes, which is safe.
	pad := b.RadiusKm / 111.0 * 1.5
	return box.Pad(pad)
}

// Outline returns an approximate polygon outline of the buffer for
// rendering: perpendicular offsets on each side with semicircular end caps.
func (b Buffer) Outline() []geo.Point {
	line := b.Line
	if len(line) == 0 {
		return nil
	}
	if len(line) == 1 {
		return circle(line[0], b.RadiusKm, 24)
	}
	var left, right []geo.Point
	for i := range line {
		var brng float64
		switch {
		case i == 0:
			brng = geo.InitialBearing(line[0], line[1])
		case i == len(line)-1:
			brng = geo.InitialBearing(line[len(line)-2], line[len(line)-1])
		default:
			b1 := geo.InitialBearing(line[i-1], line[i])
			b2 := geo.InitialBearing(line[i], line[i+1])
			brng = meanBearing(b1, b2)
		}
		left = append(left, geo.Destination(line[i], brng-90, b.RadiusKm))
		right = append(right, geo.Destination(line[i], brng+90, b.RadiusKm))
	}
	out := make([]geo.Point, 0, 2*len(line)+18)
	out = append(out, left...)
	// End cap at the last vertex.
	endBrng := geo.InitialBearing(line[len(line)-2], line[len(line)-1])
	for a := -90.0; a <= 90; a += 22.5 {
		out = append(out, geo.Destination(line[len(line)-1], endBrng+a, b.RadiusKm))
	}
	for i := len(right) - 1; i >= 0; i-- {
		out = append(out, right[i])
	}
	// Start cap.
	startBrng := geo.InitialBearing(line[1], line[0])
	for a := -90.0; a <= 90; a += 22.5 {
		out = append(out, geo.Destination(line[0], startBrng+a, b.RadiusKm))
	}
	out = append(out, out[0]) // close ring
	return out
}

func meanBearing(b1, b2 float64) float64 {
	r1, r2 := b1*math.Pi/180, b2*math.Pi/180
	x := math.Cos(r1) + math.Cos(r2)
	y := math.Sin(r1) + math.Sin(r2)
	return math.Mod(math.Atan2(y, x)*180/math.Pi+360, 360)
}

func circle(c geo.Point, radiusKm float64, n int) []geo.Point {
	out := make([]geo.Point, 0, n+1)
	for i := 0; i < n; i++ {
		out = append(out, geo.Destination(c, float64(i)*360/float64(n), radiusKm))
	}
	out = append(out, out[0])
	return out
}

// Simplify applies Douglas–Peucker simplification with the given tolerance
// in kilometers, preserving the first and last vertices.
func Simplify(line []geo.Point, toleranceKm float64) []geo.Point {
	if len(line) < 3 {
		return line
	}
	keep := make([]bool, len(line))
	keep[0], keep[len(line)-1] = true, true
	simplifyRange(line, 0, len(line)-1, toleranceKm, keep)
	out := make([]geo.Point, 0, len(line))
	for i, k := range keep {
		if k {
			out = append(out, line[i])
		}
	}
	return out
}

func simplifyRange(line []geo.Point, lo, hi int, tol float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	var worst float64
	worstIdx := -1
	for i := lo + 1; i < hi; i++ {
		d := DistanceToSegmentKm(line[i], line[lo], line[hi])
		if d > worst {
			worst = d
			worstIdx = i
		}
	}
	if worst > tol {
		keep[worstIdx] = true
		simplifyRange(line, lo, worstIdx, tol, keep)
		simplifyRange(line, worstIdx, hi, tol, keep)
	}
}

// ConvexHull returns the convex hull of pts (Andrew's monotone chain) as an
// open counter-clockwise ring. Used for AS spatial-extent polygons (the
// translucent footprint polygons of Figure 9).
func ConvexHull(pts []geo.Point) []geo.Point {
	n := len(pts)
	if n < 3 {
		out := make([]geo.Point, n)
		copy(out, pts)
		return out
	}
	sorted := make([]geo.Point, n)
	copy(sorted, pts)
	// Sort by lon, then lat.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && less(sorted[j], sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	cross := func(o, a, b geo.Point) float64 {
		return (a.Lon-o.Lon)*(b.Lat-o.Lat) - (a.Lat-o.Lat)*(b.Lon-o.Lon)
	}
	var hull []geo.Point
	for _, p := range sorted { // lower
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- { // upper
		p := sorted[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

func less(a, b geo.Point) bool {
	if a.Lon != b.Lon {
		return a.Lon < b.Lon
	}
	return a.Lat < b.Lat
}
