package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igdb/internal/geo"
)

var unitSquare = []XY{{0, 0}, {10, 0}, {10, 10}, {0, 10}}

func closedRing(open []XY) []XY { return append(append([]XY{}, open...), open[0]) }

func TestPointInRing(t *testing.T) {
	ring := closedRing(unitSquare)
	cases := []struct {
		p    XY
		want bool
	}{
		{XY{5, 5}, true},
		{XY{0.001, 0.001}, true},
		{XY{-1, 5}, false},
		{XY{11, 5}, false},
		{XY{5, -1}, false},
		{XY{5, 11}, false},
	}
	for _, c := range cases {
		if got := PointInRing(c.p, ring); got != c.want {
			t.Errorf("PointInRing(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPointInRingDegenerate(t *testing.T) {
	if PointInRing(XY{0, 0}, nil) {
		t.Error("empty ring should contain nothing")
	}
	if PointInRing(XY{0, 0}, []XY{{0, 0}, {1, 1}}) {
		t.Error("2-point ring should contain nothing")
	}
}

func TestPointInPolygonWithHole(t *testing.T) {
	rings := [][]geo.Point{
		{{Lon: 0, Lat: 0}, {Lon: 10, Lat: 0}, {Lon: 10, Lat: 10}, {Lon: 0, Lat: 10}, {Lon: 0, Lat: 0}},
		{{Lon: 3, Lat: 3}, {Lon: 7, Lat: 3}, {Lon: 7, Lat: 7}, {Lon: 3, Lat: 7}, {Lon: 3, Lat: 3}},
	}
	if !PointInPolygon(geo.Point{Lon: 1, Lat: 1}, rings) {
		t.Error("(1,1) should be inside (not in hole)")
	}
	if PointInPolygon(geo.Point{Lon: 5, Lat: 5}, rings) {
		t.Error("(5,5) is in the hole")
	}
	if PointInPolygon(geo.Point{Lon: 20, Lat: 20}, rings) {
		t.Error("(20,20) is outside")
	}
	if PointInPolygon(geo.Point{}, nil) {
		t.Error("empty polygon contains nothing")
	}
}

func TestSignedAreaAndCentroid(t *testing.T) {
	ccw := unitSquare
	if a := SignedArea(ccw); math.Abs(a-100) > 1e-9 {
		t.Errorf("CCW area = %v, want 100", a)
	}
	cw := []XY{{0, 0}, {0, 10}, {10, 10}, {10, 0}}
	if a := SignedArea(cw); math.Abs(a+100) > 1e-9 {
		t.Errorf("CW area = %v, want -100", a)
	}
	c := Centroid(ccw)
	if math.Abs(c.X-5) > 1e-9 || math.Abs(c.Y-5) > 1e-9 {
		t.Errorf("centroid = %v, want (5,5)", c)
	}
	// Degenerate ring falls back to vertex mean.
	line := []XY{{0, 0}, {2, 0}, {4, 0}}
	c2 := Centroid(line)
	if math.Abs(c2.X-2) > 1e-9 || math.Abs(c2.Y) > 1e-9 {
		t.Errorf("degenerate centroid = %v, want (2,0)", c2)
	}
}

func TestBisectorHalfPlane(t *testing.T) {
	a, b := XY{0, 0}, XY{10, 0}
	h := Bisector(a, b)
	if h.Side(XY{1, 3}) > 0 {
		t.Error("point nearer a should be inside the bisector half-plane of a")
	}
	if h.Side(XY{9, 3}) < 0 {
		t.Error("point nearer b should be outside")
	}
	if math.Abs(h.Side(XY{5, 7})) > 1e-9 {
		t.Error("equidistant point should be on the boundary")
	}
}

func TestBisectorProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		a := XY{r.Float64()*100 - 50, r.Float64()*100 - 50}
		b := XY{r.Float64()*100 - 50, r.Float64()*100 - 50}
		if a == b {
			return true
		}
		p := XY{r.Float64()*100 - 50, r.Float64()*100 - 50}
		da := math.Hypot(p.X-a.X, p.Y-a.Y)
		db := math.Hypot(p.X-b.X, p.Y-b.Y)
		inside := Bisector(a, b).Side(p) <= 0
		if math.Abs(da-db) < 1e-9 {
			return true // boundary: either answer fine
		}
		return inside == (da < db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClipRingHalfPlane(t *testing.T) {
	// Keep x <= 5 of the 10x10 square.
	h := HalfPlane{A: 1, B: 0, C: 5}
	out := ClipRingHalfPlane(unitSquare, h)
	if len(out) != 4 {
		t.Fatalf("clipped ring has %d vertices, want 4", len(out))
	}
	if a := math.Abs(SignedArea(out)); math.Abs(a-50) > 1e-9 {
		t.Errorf("clipped area = %v, want 50", a)
	}
	for _, p := range out {
		if p.X > 5+1e-9 {
			t.Errorf("vertex %v violates clip plane", p)
		}
	}
}

func TestClipRingHalfPlaneAllOutside(t *testing.T) {
	h := HalfPlane{A: 1, B: 0, C: -5} // x <= -5 excludes the square entirely
	if out := ClipRingHalfPlane(unitSquare, h); out != nil {
		t.Errorf("fully-clipped ring should be nil, got %v", out)
	}
	if out := ClipRingHalfPlane(nil, h); out != nil {
		t.Error("clipping empty ring should be nil")
	}
}

func TestClipRingHalfPlaneAllInside(t *testing.T) {
	h := HalfPlane{A: 1, B: 0, C: 100}
	out := ClipRingHalfPlane(unitSquare, h)
	if len(out) != 4 || math.Abs(SignedArea(out)-100) > 1e-9 {
		t.Errorf("unclipped ring changed: %v", out)
	}
}

func TestClipRingConvex(t *testing.T) {
	clip := []XY{{5, -5}, {15, -5}, {15, 15}, {5, 15}} // CCW square overlapping right half
	out := ClipRingConvex(unitSquare, clip)
	if a := math.Abs(SignedArea(out)); math.Abs(a-50) > 1e-9 {
		t.Errorf("intersection area = %v, want 50", a)
	}
	// Disjoint clip yields empty.
	far := []XY{{100, 100}, {110, 100}, {110, 110}, {100, 110}}
	if out := ClipRingConvex(unitSquare, far); len(out) != 0 {
		t.Errorf("disjoint clip should be empty, got %v", out)
	}
}

func TestSegmentPointDistance(t *testing.T) {
	d, tt := SegmentPointDistance(XY{5, 5}, XY{0, 0}, XY{10, 0})
	if math.Abs(d-5) > 1e-9 || math.Abs(tt-0.5) > 1e-9 {
		t.Errorf("got d=%v t=%v", d, tt)
	}
	// Beyond segment end clamps.
	d, tt = SegmentPointDistance(XY{20, 0}, XY{0, 0}, XY{10, 0})
	if math.Abs(d-10) > 1e-9 || tt != 1 {
		t.Errorf("clamped: d=%v t=%v", d, tt)
	}
	// Zero-length segment.
	d, tt = SegmentPointDistance(XY{3, 4}, XY{0, 0}, XY{0, 0})
	if math.Abs(d-5) > 1e-9 || tt != 0 {
		t.Errorf("degenerate: d=%v t=%v", d, tt)
	}
}

func TestDistanceToSegmentKm(t *testing.T) {
	// Point 1 degree of latitude north of segment midpoint ≈ 111.2 km.
	a := geo.Point{Lon: 0, Lat: 0}
	b := geo.Point{Lon: 2, Lat: 0}
	p := geo.Point{Lon: 1, Lat: 1}
	d := DistanceToSegmentKm(p, a, b)
	if math.Abs(d-111.2) > 1.5 {
		t.Errorf("distance = %.2f km, want ~111.2", d)
	}
}

func TestDistanceToPolylineKm(t *testing.T) {
	line := []geo.Point{{Lon: 0, Lat: 0}, {Lon: 1, Lat: 0}, {Lon: 2, Lat: 0}, {Lon: 2, Lat: 1}}
	p := geo.Point{Lon: 2.5, Lat: 0.5}
	d, seg := DistanceToPolylineKm(p, line)
	if seg != 2 {
		t.Errorf("nearest segment = %d, want 2 (the vertical one)", seg)
	}
	if d > 60 {
		t.Errorf("distance %.1f km too large", d)
	}
	if d, seg := DistanceToPolylineKm(p, nil); !math.IsInf(d, 1) || seg != -1 {
		t.Error("empty polyline should be Inf/-1")
	}
	if d, _ := DistanceToPolylineKm(p, line[:1]); math.Abs(d-geo.Haversine(p, line[0])) > 1e-9 {
		t.Error("single-vertex polyline should reduce to point distance")
	}
}

func TestHausdorffDirectedKm(t *testing.T) {
	a := []geo.Point{{Lon: 0, Lat: 0}, {Lon: 1, Lat: 0}, {Lon: 2, Lat: 0}}
	b := []geo.Point{{Lon: 0, Lat: 0.1}, {Lon: 1, Lat: 0.1}, {Lon: 2, Lat: 0.1}}
	d := HausdorffDirectedKm(a, b)
	if math.Abs(d-11.1) > 0.5 {
		t.Errorf("Hausdorff = %.2f, want ~11.1 km", d)
	}
	// A sub-path has zero directed distance to its superset line.
	if d := HausdorffDirectedKm(a[:2], a); d > 1e-9 {
		t.Errorf("sub-path Hausdorff = %v, want 0", d)
	}
}

func TestBufferContains(t *testing.T) {
	line := []geo.Point{{Lon: -94.58, Lat: 39.10}, {Lon: -95.99, Lat: 36.15}} // ~KC to Tulsa
	buf := NewBuffer(line, geo.KmPerMile*25)
	onPath := geo.Interpolate(line[0], line[1], 0.5)
	if !buf.Contains(onPath) {
		t.Error("midpoint of the line must be in its own buffer")
	}
	nearby := geo.Destination(onPath, 90, 30) // 30 km east < 40.2 km radius
	if !buf.Contains(nearby) {
		t.Error("point 30 km off a 25-mile buffer should be inside")
	}
	far := geo.Destination(onPath, 90, 80)
	if buf.Contains(far) {
		t.Error("point 80 km off should be outside")
	}
	if !buf.BBox().Contains(nearby) {
		t.Error("buffer bbox must cover contained points")
	}
}

func TestBufferOutline(t *testing.T) {
	line := []geo.Point{{Lon: 0, Lat: 0}, {Lon: 1, Lat: 0}, {Lon: 2, Lat: 0.5}}
	buf := NewBuffer(line, 20)
	out := buf.Outline()
	if len(out) < 10 {
		t.Fatalf("outline too short: %d points", len(out))
	}
	if out[0] != out[len(out)-1] {
		t.Error("outline must be a closed ring")
	}
	// Every outline vertex should be ~radius from the line.
	for _, p := range out[:len(out)-1] {
		d, _ := DistanceToPolylineKm(p, line)
		if d < 15 || d > 25 {
			t.Errorf("outline vertex %v at %.1f km, want ~20", p, d)
		}
	}
	if got := NewBuffer(nil, 5).Outline(); got != nil {
		t.Error("empty line outline should be nil")
	}
	if got := NewBuffer(line[:1], 5).Outline(); len(got) < 4 {
		t.Error("single-point outline should be a circle")
	}
}

func TestSimplify(t *testing.T) {
	// Dense nearly-straight line collapses to endpoints.
	var line []geo.Point
	for i := 0; i <= 100; i++ {
		line = append(line, geo.Point{Lon: float64(i) * 0.01, Lat: 0.00001 * float64(i%2)})
	}
	out := Simplify(line, 1.0)
	if len(out) != 2 {
		t.Errorf("straight line simplified to %d points, want 2", len(out))
	}
	// A sharp corner survives.
	bent := []geo.Point{{Lon: 0, Lat: 0}, {Lon: 1, Lat: 0}, {Lon: 1, Lat: 1}}
	out = Simplify(bent, 1.0)
	if len(out) != 3 {
		t.Errorf("corner simplified away: %v", out)
	}
	if got := Simplify(bent[:2], 1); len(got) != 2 {
		t.Error("short lines pass through")
	}
}

func TestSimplifyPreservesEndpoints(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(30)
		line := make([]geo.Point, n)
		for i := range line {
			line[i] = geo.Point{Lon: r.Float64() * 10, Lat: r.Float64() * 10}
		}
		out := Simplify(line, r.Float64()*100)
		if len(out) < 2 || out[0] != line[0] || out[len(out)-1] != line[n-1] {
			t.Fatalf("endpoints not preserved: in=%v out=%v", line, out)
		}
	}
}

func TestConvexHull(t *testing.T) {
	pts := []geo.Point{
		{Lon: 0, Lat: 0}, {Lon: 10, Lat: 0}, {Lon: 10, Lat: 10}, {Lon: 0, Lat: 10},
		{Lon: 5, Lat: 5}, {Lon: 2, Lat: 3}, {Lon: 7, Lat: 8}, // interior points
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(hull), hull)
	}
	ring := make([]XY, len(hull))
	for i, p := range hull {
		ring[i] = XY{p.Lon, p.Lat}
	}
	if a := SignedArea(ring); math.Abs(math.Abs(a)-100) > 1e-9 {
		t.Errorf("hull area = %v, want 100", a)
	}
	// Interior points are inside the hull.
	if !PointInRing(XY{5, 5}, closedRing(ring)) {
		t.Error("interior point not in hull")
	}
}

func TestConvexHullSmallInputs(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Error("nil input")
	}
	two := []geo.Point{{Lon: 0, Lat: 0}, {Lon: 1, Lat: 1}}
	if got := ConvexHull(two); len(got) != 2 {
		t.Errorf("2-point hull = %v", got)
	}
}

func TestConvexHullProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(50)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{Lon: r.Float64()*20 - 10, Lat: r.Float64()*20 - 10}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue // collinear degenerate draws are fine
		}
		ring := make([]XY, len(hull))
		for i, p := range hull {
			ring[i] = XY{p.Lon, p.Lat}
		}
		closed := closedRing(ring)
		for _, p := range pts {
			q := XY{p.Lon, p.Lat}
			onHull := false
			for _, h := range ring {
				if math.Abs(h.X-q.X) < 1e-12 && math.Abs(h.Y-q.Y) < 1e-12 {
					onHull = true
					break
				}
			}
			if !onHull && !PointInRing(q, closed) {
				// Boundary points may fail ray casting; tolerate tiny epsilon.
				d := math.Inf(1)
				for i := 0; i < len(ring); i++ {
					dd, _ := SegmentPointDistance(q, ring[i], ring[(i+1)%len(ring)])
					if dd < d {
						d = dd
					}
				}
				if d > 1e-9 {
					t.Fatalf("point %v outside hull %v (dist %g)", p, hull, d)
				}
			}
		}
	}
}

func TestDistanceToSegmentKmAntimeridian(t *testing.T) {
	// A segment hopping the antimeridian: 0.2° of longitude at the equator,
	// not a planet-wide span. Naive projection of raw longitudes would put
	// the endpoints ~40000 km apart and misplace every distance.
	a := geo.Point{Lon: 179.9, Lat: 0}
	b := geo.Point{Lon: -179.9, Lat: 0}
	cases := []struct {
		name   string
		p      geo.Point
		wantKm float64
		within float64
	}{
		{"on the meridian itself", geo.Point{Lon: 180, Lat: 0}, 0, 0.5},
		{"just north of the midpoint", geo.Point{Lon: 180, Lat: 0.5}, 55.6, 1.5},
		{"west endpoint side", geo.Point{Lon: 179.5, Lat: 0}, 44.5, 1.5},
		{"east endpoint side", geo.Point{Lon: -179.5, Lat: 0}, 44.5, 1.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DistanceToSegmentKm(tc.p, a, b)
			if math.Abs(got-tc.wantKm) > tc.within {
				t.Errorf("DistanceToSegmentKm = %.2f km, want %.2f ± %.1f", got, tc.wantKm, tc.within)
			}
			// Symmetric in the segment's orientation.
			if rev := DistanceToSegmentKm(tc.p, b, a); math.Abs(rev-got) > 1e-6 {
				t.Errorf("orientation asymmetry: %.6f vs %.6f", got, rev)
			}
		})
	}
}

func TestDistanceToPolylineKmAntimeridian(t *testing.T) {
	// A cable-like polyline crossing the antimeridian at the equator.
	line := []geo.Point{{Lon: 178, Lat: 0}, {Lon: 179.5, Lat: 0.2}, {Lon: -179, Lat: 0}}
	km, seg := DistanceToPolylineKm(geo.Point{Lon: 179.9, Lat: 0.1}, line)
	if km > 15 {
		t.Errorf("point near the crossing should be close to the line, got %.1f km", km)
	}
	if seg != 1 {
		t.Errorf("nearest segment = %d, want 1 (the crossing segment)", seg)
	}
	// A point a whole hemisphere away stays far even with wrapping.
	if km, _ := DistanceToPolylineKm(geo.Point{Lon: 0, Lat: 0}, line); km < 19000 {
		t.Errorf("antipodal point should be ~20000 km away, got %.0f", km)
	}
}

func TestDistanceToSegmentKmNearPole(t *testing.T) {
	// Segment along the 89°N parallel from lon 0 to lon 90. Every point on
	// it is one degree (~111 km) from the pole; the local projection must
	// not blow that up even though meridians converge sharply there.
	a := geo.Point{Lon: 0, Lat: 89}
	b := geo.Point{Lon: 90, Lat: 89}
	pole := geo.Point{Lon: 45, Lat: 90}
	got := DistanceToSegmentKm(pole, a, b)
	if got < 95 || got > 125 {
		t.Errorf("pole to 89°N segment = %.1f km, want ≈111", got)
	}
	// A point on the parallel between the endpoints is near the segment
	// (the chord cuts poleward of the parallel, so allow the sagitta).
	mid := geo.Point{Lon: 45, Lat: 89}
	if got := DistanceToSegmentKm(mid, a, b); got > 50 {
		t.Errorf("on-parallel midpoint = %.1f km from chord, want < 50", got)
	}
}
