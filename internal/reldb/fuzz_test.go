package reldb

import "testing"

// FuzzParseStatement asserts the SQL lexer and parser never panic,
// whatever bytes arrive on the wire (the server feeds them user input
// directly).
func FuzzParseStatement(f *testing.F) {
	f.Add("SELECT * FROM t")
	f.Add("SELECT a, b FROM t WHERE a = 1 AND b <> 'x' ORDER BY a DESC LIMIT 5")
	f.Add("SELECT COUNT(DISTINCT country) AS c FROM asn_loc GROUP BY asn HAVING c > 1")
	f.Add("SELECT l.asn FROM asn_loc l JOIN asn_name n ON n.asn = l.asn")
	f.Add("CREATE TABLE t (a INTEGER, b TEXT)")
	f.Add("INSERT INTO t VALUES (1, 'two')")
	f.Add("SELECT 'unterminated")
	f.Add("SELECT * FROM t WHERE a IN (1, 2, 3)")
	f.Add("SELECT -1.5e10, 0x, ``, \"q\"")
	f.Add("((((")
	f.Add(";")
	f.Add("")
	f.Fuzz(func(t *testing.T, sql string) {
		_, _ = ParseStatement(sql)
	})
}

// FuzzPrepare drives the full plan path (lex, parse, resolve, compile)
// against a populated database.
func FuzzPrepare(f *testing.F) {
	f.Add("SELECT a FROM t WHERE b = 'x'")
	f.Add("SELECT MAX(a) FROM t")
	f.Add("SELECT * FROM missing")
	f.Add("SELECT t.a, u.a FROM t JOIN u ON t.a = u.a ORDER BY 1")
	f.Fuzz(func(t *testing.T, sql string) {
		db := New()
		for _, stmt := range []string{
			"CREATE TABLE t (a INTEGER, b TEXT)",
			"CREATE TABLE u (a INTEGER)",
			"INSERT INTO t VALUES (1, 'x')",
		} {
			if _, err := db.Exec(stmt); err != nil {
				t.Fatal(err)
			}
		}
		_, _ = db.Prepare(sql)
	})
}
