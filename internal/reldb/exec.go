package reldb

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// schema describes the columns of an intermediate joined row: one entry per
// position, qualified by the table label (alias or name).
type schema struct {
	labels []string // table label per position
	names  []string // lower-cased column name per position
}

func newSchema() *schema { return &schema{} }

// perf: allocates intentionally — schema construction runs once per table
// per query, not per row.
func (s *schema) addTable(label string, t *Table) {
	for _, c := range t.Cols {
		s.labels = append(s.labels, strings.ToLower(label))
		s.names = append(s.names, strings.ToLower(c.Name))
	}
}

// resolve finds the position of a (possibly qualified) column reference.
func (s *schema) resolve(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i := range s.names {
		if s.names[i] != name {
			continue
		}
		if table != "" && s.labels[i] != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("reldb: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("reldb: no column %s.%s", table, name)
		}
		return 0, fmt.Errorf("reldb: no column %q", name)
	}
	return found, nil
}

// evalEnv is the evaluation context for one row (or one group).
type evalEnv struct {
	db     *DB
	schema *schema
	row    []Value
	group  [][]Value // non-nil while evaluating aggregate expressions
}

func (e *evalEnv) eval(x Expr) (Value, error) {
	switch n := x.(type) {
	case *Lit:
		return n.V, nil
	case *ColRef:
		if e.schema == nil {
			return Null, fmt.Errorf("reldb: column %q referenced outside a row context", n.Name)
		}
		pos, err := e.schema.resolve(n.Table, n.Name)
		if err != nil {
			return Null, err
		}
		return e.row[pos], nil
	case *Unary:
		return e.evalUnary(n)
	case *Binary:
		return e.evalBinary(n)
	case *InExpr:
		return e.evalIn(n)
	case *IsNullExpr:
		v, err := e.eval(n.X)
		if err != nil {
			return Null, err
		}
		res := v.IsNull()
		if n.Not {
			res = !res
		}
		return Bool(res), nil
	case *BetweenExpr:
		v, err := e.eval(n.X)
		if err != nil {
			return Null, err
		}
		lo, err := e.eval(n.Lo)
		if err != nil {
			return Null, err
		}
		hi, err := e.eval(n.Hi)
		if err != nil {
			return Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null, nil
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if n.Not {
			in = !in
		}
		return Bool(in), nil
	case *Call:
		if aggregateFns[n.Fn] {
			return e.evalAggregate(n)
		}
		return e.evalScalarCall(n)
	default:
		return Null, fmt.Errorf("reldb: cannot evaluate %T", x)
	}
}

func (e *evalEnv) evalUnary(n *Unary) (Value, error) {
	v, err := e.eval(n.X)
	if err != nil {
		return Null, err
	}
	switch n.Op {
	case "NOT":
		if v.IsNull() {
			return Null, nil
		}
		b, _ := v.AsBool()
		return Bool(!b), nil
	case "-":
		if v.IsNull() {
			return Null, nil
		}
		if v.kind == kindInt {
			return Int(-v.i), nil
		}
		if f, ok := v.AsFloat(); ok {
			return Float(-f), nil
		}
		return Null, fmt.Errorf("reldb: cannot negate %s", v)
	default:
		return Null, fmt.Errorf("reldb: unknown unary op %q", n.Op)
	}
}

func (e *evalEnv) evalBinary(n *Binary) (Value, error) {
	// AND/OR get three-valued logic with short-circuiting.
	if n.Op == "AND" || n.Op == "OR" {
		l, err := e.eval(n.L)
		if err != nil {
			return Null, err
		}
		lb, lok := l.AsBool()
		if n.Op == "AND" && lok && !lb {
			return Bool(false), nil
		}
		if n.Op == "OR" && lok && lb {
			return Bool(true), nil
		}
		r, err := e.eval(n.R)
		if err != nil {
			return Null, err
		}
		rb, rok := r.AsBool()
		if n.Op == "AND" {
			if lok && rok {
				return Bool(lb && rb), nil
			}
			if (lok && !lb) || (rok && !rb) {
				return Bool(false), nil
			}
			return Null, nil
		}
		if lok && rok {
			return Bool(lb || rb), nil
		}
		if (lok && lb) || (rok && rb) {
			return Bool(true), nil
		}
		return Null, nil
	}

	l, err := e.eval(n.L)
	if err != nil {
		return Null, err
	}
	r, err := e.eval(n.R)
	if err != nil {
		return Null, err
	}
	switch n.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		c := Compare(l, r)
		var res bool
		switch n.Op {
		case "=":
			res = c == 0
		case "!=":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return Bool(res), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		ls, _ := l.AsText()
		rs, _ := r.AsText()
		return Bool(like(ls, rs)), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		ls, _ := l.AsText()
		rs, _ := r.AsText()
		return Text(ls + rs), nil
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		// Integer arithmetic when both sides are ints (except /0 guard).
		if l.kind == kindInt && r.kind == kindInt {
			switch n.Op {
			case "+":
				return Int(l.i + r.i), nil
			case "-":
				return Int(l.i - r.i), nil
			case "*":
				return Int(l.i * r.i), nil
			case "/":
				if r.i == 0 {
					return Null, nil
				}
				return Int(l.i / r.i), nil
			}
		}
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return Null, fmt.Errorf("reldb: non-numeric operand for %q", n.Op)
		}
		switch n.Op {
		case "+":
			return Float(lf + rf), nil
		case "-":
			return Float(lf - rf), nil
		case "*":
			return Float(lf * rf), nil
		default:
			if rf == 0 {
				return Null, nil
			}
			return Float(lf / rf), nil
		}
	default:
		return Null, fmt.Errorf("reldb: unknown operator %q", n.Op)
	}
}

func (e *evalEnv) evalIn(n *InExpr) (Value, error) {
	v, err := e.eval(n.X)
	if err != nil {
		return Null, err
	}
	if v.IsNull() {
		return Null, nil
	}
	sawNull := false
	for _, le := range n.List {
		lv, err := e.eval(le)
		if err != nil {
			return Null, err
		}
		if lv.IsNull() {
			sawNull = true
			continue
		}
		if Compare(v, lv) == 0 {
			return Bool(!n.Not), nil
		}
	}
	if sawNull {
		return Null, nil
	}
	return Bool(n.Not), nil
}

func (e *evalEnv) evalScalarCall(n *Call) (Value, error) {
	fn, ok := e.db.funcs[n.Fn]
	if !ok {
		return Null, fmt.Errorf("reldb: unknown function %q", n.Fn)
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := e.eval(a)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	return fn(args)
}

// evalAggregate computes an aggregate over e.group.
func (e *evalEnv) evalAggregate(n *Call) (Value, error) {
	if e.group == nil {
		return Null, fmt.Errorf("reldb: aggregate %s outside grouped context", n.Fn)
	}
	if n.Star {
		if n.Fn != "COUNT" {
			return Null, fmt.Errorf("reldb: %s(*) is not valid", n.Fn)
		}
		return Int(int64(len(e.group))), nil
	}
	if len(n.Args) != 1 {
		return Null, fmt.Errorf("reldb: %s takes one argument", n.Fn)
	}
	// Evaluate the argument per group row. One env is reused across the
	// group and the DISTINCT set is only allocated when needed: this loop
	// runs once per aggregate per group, so per-iteration allocations here
	// dominate grouped-query cost.
	vals := make([]Value, 0, len(e.group))
	var seen map[string]bool
	var kbuf []byte
	sub := evalEnv{db: e.db, schema: e.schema}
	for _, row := range e.group {
		sub.row = row
		v, err := sub.eval(n.Args[0])
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		if n.Distinct {
			if seen == nil {
				//lint:ignore alloclint the DISTINCT set is allocated at most once per aggregate call (guarded by seen == nil), not per row
				seen = make(map[string]bool, len(e.group))
			}
			kbuf = v.appendKey(kbuf[:0])
			if seen[string(kbuf)] {
				continue
			}
			seen[string(kbuf)] = true
		}
		vals = append(vals, v)
	}
	switch n.Fn {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null, nil
		}
		var sum float64
		allInt := true
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return Null, fmt.Errorf("reldb: %s over non-numeric value %s", n.Fn, v)
			}
			if v.kind != kindInt {
				allInt = false
			}
			sum += f
		}
		if n.Fn == "AVG" {
			return Float(sum / float64(len(vals))), nil
		}
		if allInt && sum == math.Trunc(sum) {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := Compare(v, best)
			if (n.Fn == "MIN" && c < 0) || (n.Fn == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return Null, fmt.Errorf("reldb: unknown aggregate %q", n.Fn)
	}
}

// ---- SELECT execution ----

// execSelect runs one SELECT plan. Callers (Query, Stmt.Query) hold
// db.mu for reading.
func (db *DB) execSelect(s *SelectStmt) (*Rows, error) {
	return db.execSelectPlan(s, nil)
}

// execSelectPlan runs one SELECT. With a non-nil plan (EXPLAIN ANALYZE)
// every pipeline stage is timed and row-counted into the matching plan
// node; with a nil plan each probe call is a nil check and nothing more,
// so the plain-query path pays no measurable overhead for the
// instrumentation.
func (db *DB) execSelectPlan(s *SelectStmt, pl *selectPlan) (*Rows, error) {
	sch := newSchema()
	var rows [][]Value
	if s.From == nil {
		// Expression-only select: SELECT 1+1.
		prb := pl.probeScan()
		rows = [][]Value{nil}
		prb.done(0, 1, 1)
	} else {
		//lint:ignore guardedby callers (Query, Stmt.Query) hold db.mu
		base, ok := db.tables[strings.ToLower(s.From.Name)]
		if !ok {
			return nil, fmt.Errorf("reldb: no such table %q", s.From.Name)
		}
		prb := pl.probeScan()
		sch.addTable(s.From.label(), base)
		rows = make([][]Value, len(base.Rows))
		copy(rows, base.Rows)
		prb.done(len(base.Rows), len(rows), 1)
		for i, j := range s.Joins {
			//lint:ignore alloclint one name fold per JOIN clause, not per data row
			joinName := strings.ToLower(j.Table.Name)
			//lint:ignore guardedby callers (Query, Stmt.Query) hold db.mu
			jt, ok := db.tables[joinName]
			if !ok {
				return nil, fmt.Errorf("reldb: no such table %q", j.Table.Name)
			}
			in := len(rows)
			prb := pl.probeJoin(i)
			var err error
			//lint:ignore alloclint join allocates the joined row set once per JOIN clause, not per data row
			rows, err = db.join(sch, rows, j, jt, pl.joinProbeAt(i))
			if err != nil {
				return nil, err
			}
			prb.done(in, len(rows), 1)
			sch.addTable(j.Table.label(), jt)
		}
	}

	// WHERE.
	if s.Where != nil {
		if hasAggregate(s.Where) {
			return nil, fmt.Errorf("reldb: aggregates are not allowed in WHERE")
		}
		prb := pl.probeFilter()
		in := len(rows)
		filtered := rows[:0:0]
		env := evalEnv{db: db, schema: sch}
		for _, row := range rows {
			env.row = row
			v, err := env.eval(s.Where)
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); ok && b {
				filtered = append(filtered, row)
			}
		}
		rows = filtered
		prb.done(in, len(rows), 1)
	}

	// Expand stars into explicit items.
	items, err := expandStars(s.Items, sch)
	if err != nil {
		return nil, err
	}

	grouped := len(s.GroupBy) > 0 || s.Having != nil || anyAggregate(items) ||
		(len(s.OrderBy) > 0 && anyAggregateOrder(s.OrderBy))

	out := &Rows{}
	for _, it := range items {
		out.Columns = append(out.Columns, itemName(it))
	}

	type outRow struct {
		vals []Value
		keys []Value // order-by keys
	}
	var result []outRow
	var valsBuf, keysBuf []Value
	// initEmit pre-sizes the output buffers once the emit count is known:
	// each emit call then appends into flat backing arrays and slices out
	// its row, instead of allocating fresh vals/keys slices per output row.
	initEmit := func(n int) {
		result = make([]outRow, 0, n)
		valsBuf = make([]Value, 0, n*len(items))
		keysBuf = make([]Value, 0, n*len(s.OrderBy))
	}

	aliasExpr := func(e Expr) Expr {
		// ORDER BY may reference a select alias or a 1-based ordinal.
		if c, ok := e.(*ColRef); ok && c.Table == "" {
			for _, it := range items {
				if strings.EqualFold(it.Alias, c.Name) {
					return it.Expr
				}
			}
		}
		if l, ok := e.(*Lit); ok {
			if n, ok2 := l.V.AsInt(); ok2 && n >= 1 && int(n) <= len(items) {
				return items[n-1].Expr
			}
		}
		return e
	}

	emit := func(env *evalEnv) error {
		vStart := len(valsBuf)
		for _, it := range items {
			v, err := env.eval(it.Expr)
			if err != nil {
				return err
			}
			valsBuf = append(valsBuf, v)
		}
		kStart := len(keysBuf)
		for _, ob := range s.OrderBy {
			v, err := env.eval(aliasExpr(ob.Expr))
			if err != nil {
				return err
			}
			keysBuf = append(keysBuf, v)
		}
		result = append(result, outRow{
			vals: valsBuf[vStart:len(valsBuf):len(valsBuf)],
			keys: keysBuf[kStart:len(keysBuf):len(keysBuf)],
		})
		return nil
	}

	if grouped {
		prb := pl.probeOutput()
		in := len(rows)
		groups, err := groupRows(db, sch, rows, s.GroupBy)
		if err != nil {
			return nil, err
		}
		initEmit(len(groups))
		env := evalEnv{db: db, schema: sch}
		for _, g := range groups {
			env.row, env.group = g.first, g.rows
			if s.Having != nil {
				v, err := env.eval(s.Having)
				if err != nil {
					return nil, err
				}
				if b, ok := v.AsBool(); !ok || !b {
					continue
				}
			}
			if err := emit(&env); err != nil {
				return nil, err
			}
		}
		prb.done(in, len(result), 1)
	} else {
		prb := pl.probeOutput()
		in := len(rows)
		initEmit(len(rows))
		env := evalEnv{db: db, schema: sch}
		for _, row := range rows {
			env.row = row
			if err := emit(&env); err != nil {
				return nil, err
			}
		}
		prb.done(in, len(result), 1)
	}

	// DISTINCT.
	if s.Distinct {
		prb := pl.probeDistinct()
		in := len(result)
		seen := make(map[string]bool, len(result))
		dedup := result[:0:0]
		var buf []byte
		for _, r := range result {
			buf = buf[:0]
			for _, v := range r.vals {
				buf = v.appendKey(buf)
				buf = append(buf, '\x01')
			}
			// The m[string(buf)] lookup is allocation-free; only newly seen
			// rows pay for a retained key string.
			if !seen[string(buf)] {
				seen[string(buf)] = true
				dedup = append(dedup, r)
			}
		}
		result = dedup
		prb.done(in, len(result), 1)
	}

	// ORDER BY (stable, so ties preserve input order).
	if len(s.OrderBy) > 0 {
		prb := pl.probeSort()
		sort.SliceStable(result, func(i, j int) bool {
			for k, ob := range s.OrderBy {
				c := Compare(result[i].keys[k], result[j].keys[k])
				if c == 0 {
					continue
				}
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		prb.done(len(result), len(result), 1)
	}

	// OFFSET / LIMIT.
	if s.Limit >= 0 || s.Offset > 0 {
		prb := pl.probeLimit()
		in := len(result)
		if s.Offset > 0 {
			if s.Offset >= len(result) {
				result = nil
			} else {
				result = result[s.Offset:]
			}
		}
		if s.Limit >= 0 && s.Limit < len(result) {
			result = result[:s.Limit]
		}
		prb.done(in, len(result), 1)
	}

	out.Rows = make([][]Value, len(result))
	for i, r := range result {
		out.Rows[i] = r.vals
	}
	return out, nil
}

type group struct {
	first []Value
	rows  [][]Value
}

func groupRows(db *DB, sch *schema, rows [][]Value, by []Expr) ([]group, error) {
	if len(by) == 0 {
		// Single group over everything; present even when empty so COUNT(*)
		// returns 0.
		return []group{{first: nil, rows: rows}}, nil
	}
	// Groups are kept in a slice in first-seen order; the map only carries
	// key -> index, so the per-row lookup path is allocation-free (one
	// reused key buffer, m[string(buf)] indexing) and only new groups pay
	// for a retained key string.
	idx := make(map[string]int, 16)
	var out []group
	env := evalEnv{db: db, schema: sch}
	var buf []byte
	for _, row := range rows {
		env.row = row
		buf = buf[:0]
		for _, e := range by {
			v, err := env.eval(e)
			if err != nil {
				return nil, err
			}
			buf = v.appendKey(buf)
			buf = append(buf, '\x01')
		}
		gi, ok := idx[string(buf)]
		if !ok {
			gi = len(out)
			idx[string(buf)] = gi
			out = append(out, group{first: row})
		}
		out[gi].rows = append(out[gi].rows, row)
	}
	return out, nil
}

// perf: allocates intentionally — expands the select list once per query,
// not per row.
func expandStars(items []SelectItem, sch *schema) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		qual := strings.ToLower(it.Table)
		matched := false
		for i := range sch.names {
			if qual != "" && sch.labels[i] != qual {
				continue
			}
			matched = true
			out = append(out, SelectItem{
				Expr:  &ColRef{Table: sch.labels[i], Name: sch.names[i]},
				Alias: sch.names[i],
			})
		}
		if qual != "" && !matched {
			return nil, fmt.Errorf("reldb: no table %q for %s.*", it.Table, it.Table)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("reldb: empty select list")
	}
	return out, nil
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Name
	}
	if c, ok := it.Expr.(*Call); ok {
		return strings.ToLower(c.Fn)
	}
	return "expr"
}

func anyAggregate(items []SelectItem) bool {
	for _, it := range items {
		if hasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func anyAggregateOrder(obs []OrderItem) bool {
	for _, ob := range obs {
		if hasAggregate(ob.Expr) {
			return true
		}
	}
	return false
}

// join combines the current intermediate rows with table jt. When the ON
// clause contains an equality between a column of the existing schema and a
// column of the new table, a hash join is used; otherwise a nested loop.
// jp (nil outside EXPLAIN ANALYZE) records which strategy ran.
func (db *DB) join(sch *schema, left [][]Value, j JoinClause, jt *Table, jp *joinProbe) ([][]Value, error) {
	newSch := &schema{
		labels: append([]string{}, sch.labels...),
		names:  append([]string{}, sch.names...),
	}
	newSch.addTable(j.Table.label(), jt)

	leftWidth := len(sch.names)
	// perf: allocates intentionally — each combined row it builds is a
	// retained output row; there is nothing to hoist.
	combine := func(l []Value, r []Value) []Value {
		row := make([]Value, 0, leftWidth+len(jt.Cols))
		row = append(row, l...)
		row = append(row, r...)
		return row
	}
	nullRight := make([]Value, len(jt.Cols))

	// Try to extract an equi-join pair from the ON expression.
	lExpr, rExpr := equiJoinPair(j.On, sch, newSch, j.Table.label(), jt)
	jp.chose(lExpr != nil, len(left), len(jt.Rows))
	var out [][]Value
	if lExpr != nil {
		// Hash the right side. The build key is evaluated against one
		// reusable padded row rather than a fresh combine per right row.
		idx := make(map[string][][]Value, len(jt.Rows))
		pad := make([]Value, leftWidth+len(jt.Cols))
		envR := evalEnv{db: db, schema: newSch, row: pad}
		var kbuf []byte
		for _, rrow := range jt.Rows {
			copy(pad[leftWidth:], rrow)
			v, err := envR.eval(rExpr)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			kbuf = v.appendKey(kbuf[:0])
			k := string(kbuf) // retained as the bucket key
			idx[k] = append(idx[k], rrow)
		}
		envL := evalEnv{db: db, schema: sch}
		env := evalEnv{db: db, schema: newSch}
		for _, lrow := range left {
			envL.row = lrow
			lv, err := envL.eval(lExpr)
			if err != nil {
				return nil, err
			}
			matched := false
			if !lv.IsNull() {
				// Allocation-free probe: reused key buffer, m[string(buf)].
				kbuf = lv.appendKey(kbuf[:0])
				for _, rrow := range idx[string(kbuf)] {
					full := combine(lrow, rrow)
					env.row = full
					v, err := env.eval(j.On)
					if err != nil {
						return nil, err
					}
					if b, ok := v.AsBool(); ok && b {
						out = append(out, full)
						matched = true
					}
				}
			}
			if !matched && j.Left {
				out = append(out, combine(lrow, nullRight))
			}
		}
		return out, nil
	}

	// Nested loop fallback.
	env := evalEnv{db: db, schema: newSch}
	for _, lrow := range left {
		matched := false
		for _, rrow := range jt.Rows {
			full := combine(lrow, rrow)
			env.row = full
			v, err := env.eval(j.On)
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); ok && b {
				out = append(out, full)
				matched = true
			}
		}
		if !matched && j.Left {
			out = append(out, combine(lrow, nullRight))
		}
	}
	return out, nil
}

// perf: allocates intentionally — ON-clause analysis runs once per JOIN
// clause at plan time, not per row.
//
// equiJoinPair finds `leftCols = rightCols` inside the ON expression (either
// at the top level or as a conjunct of an AND chain) where the left side
// only references existing tables and the right side only references the
// newly joined table. Returns nil, nil when no such pair exists.
func equiJoinPair(on Expr, leftSch, fullSch *schema, rightLabel string, jt *Table) (Expr, Expr) {
	var conjuncts []Expr
	var collect func(e Expr)
	collect = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == "AND" {
			collect(b.L)
			collect(b.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	collect(on)
	for _, c := range conjuncts {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		lSide := sideOf(b.L, leftSch, rightLabel, jt)
		rSide := sideOf(b.R, leftSch, rightLabel, jt)
		if lSide == sideLeft && rSide == sideRight {
			return b.L, b.R
		}
		if lSide == sideRight && rSide == sideLeft {
			return b.R, b.L
		}
	}
	return nil, nil
}

type joinSide int

const (
	sideNone joinSide = iota
	sideLeft
	sideRight
	sideMixed
)

// sideOf classifies which relation(s) an expression references.
func sideOf(e Expr, leftSch *schema, rightLabel string, jt *Table) joinSide {
	side := sideNone
	add := func(s joinSide) {
		if side == sideNone {
			side = s
		} else if side != s {
			side = sideMixed
		}
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *ColRef:
			tbl := strings.ToLower(n.Table)
			name := strings.ToLower(n.Name)
			if tbl != "" {
				if tbl == strings.ToLower(rightLabel) {
					add(sideRight)
				} else {
					add(sideLeft)
				}
				return
			}
			// Unqualified: right table wins if it (and only it) has the column.
			inRight := jt.ColumnIndex(name) >= 0
			inLeft := false
			for _, ln := range leftSch.names {
				if ln == name {
					inLeft = true
					break
				}
			}
			switch {
			case inRight && !inLeft:
				add(sideRight)
			case inLeft && !inRight:
				add(sideLeft)
			default:
				add(sideMixed)
			}
		case *Unary:
			walk(n.X)
		case *Binary:
			walk(n.L)
			walk(n.R)
		case *InExpr:
			walk(n.X)
			for _, a := range n.List {
				walk(a)
			}
		case *IsNullExpr:
			walk(n.X)
		case *BetweenExpr:
			walk(n.X)
			walk(n.Lo)
			walk(n.Hi)
		case *Call:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return side
}

// ---- built-in scalar functions ----

func registerBuiltins(db *DB) {
	db.funcs["UPPER"] = func(args []Value) (Value, error) {
		if err := arity("UPPER", args, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		s, _ := args[0].AsText()
		return Text(strings.ToUpper(s)), nil
	}
	db.funcs["LOWER"] = func(args []Value) (Value, error) {
		if err := arity("LOWER", args, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		s, _ := args[0].AsText()
		return Text(strings.ToLower(s)), nil
	}
	db.funcs["LENGTH"] = func(args []Value) (Value, error) {
		if err := arity("LENGTH", args, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		s, _ := args[0].AsText()
		return Int(int64(len(s))), nil
	}
	db.funcs["SUBSTR"] = func(args []Value) (Value, error) {
		if len(args) != 2 && len(args) != 3 {
			return Null, fmt.Errorf("reldb: SUBSTR takes 2 or 3 arguments")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		s, _ := args[0].AsText()
		start64, ok := args[1].AsInt()
		if !ok {
			return Null, fmt.Errorf("reldb: SUBSTR start must be an integer")
		}
		start := int(start64) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return Text(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			n64, ok := args[2].AsInt()
			if !ok {
				return Null, fmt.Errorf("reldb: SUBSTR length must be an integer")
			}
			if e := start + int(n64); e < end {
				end = e
			}
			if end < start {
				end = start
			}
		}
		return Text(s[start:end]), nil
	}
	db.funcs["ABS"] = func(args []Value) (Value, error) {
		if err := arity("ABS", args, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		if args[0].kind == kindInt {
			if args[0].i < 0 {
				return Int(-args[0].i), nil
			}
			return args[0], nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return Null, fmt.Errorf("reldb: ABS of non-number")
		}
		return Float(math.Abs(f)), nil
	}
	db.funcs["ROUND"] = func(args []Value) (Value, error) {
		if len(args) != 1 && len(args) != 2 {
			return Null, fmt.Errorf("reldb: ROUND takes 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return Null, fmt.Errorf("reldb: ROUND of non-number")
		}
		digits := int64(0)
		if len(args) == 2 {
			digits, _ = args[1].AsInt()
		}
		scale := math.Pow(10, float64(digits))
		return Float(math.Round(f*scale) / scale), nil
	}
	db.funcs["COALESCE"] = func(args []Value) (Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	}
	db.funcs["IIF"] = func(args []Value) (Value, error) {
		if err := arity("IIF", args, 3); err != nil {
			return Null, err
		}
		if b, ok := args[0].AsBool(); ok && b {
			return args[1], nil
		}
		return args[2], nil
	}
}

func arity(fn string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("reldb: %s takes %d argument(s), got %d", fn, n, len(args))
	}
	return nil
}
