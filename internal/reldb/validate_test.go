package reldb

import (
	"strings"
	"testing"
)

func testSchema() Schema {
	return Schema{
		"asn_loc":  {"asn", "metro", "country", "as_of_date"},
		"asn_name": {"asn", "asn_name", "as_of_date"},
	}
}

// validate parses then validates, failing the test on parse errors.
func validate(t *testing.T, sql string) []string {
	t.Helper()
	st, err := ParseStatement(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return ValidateStatement(st, testSchema())
}

func TestValidateStatementClean(t *testing.T) {
	for _, sql := range []string{
		`SELECT asn, metro FROM asn_loc WHERE country = 'US'`,
		`SELECT l.metro, n.asn_name FROM asn_loc l JOIN asn_name n ON n.asn = l.asn`,
		`SELECT COUNT(*) AS c, metro FROM asn_loc GROUP BY metro HAVING c > 1 ORDER BY c DESC`,
		`SELECT * FROM asn_loc LIMIT 5`,
		`SELECT l.* FROM asn_loc l`,
		`INSERT INTO asn_name (asn, asn_name) VALUES (1, 'one')`,
		`INSERT INTO asn_name VALUES (1, 'one', '2022-01-01')`,
		`UPDATE asn_loc SET metro = 'x' WHERE asn = 5`,
		`DELETE FROM asn_loc WHERE country = 'US'`,
		`DROP TABLE IF EXISTS scratch`,
		`CREATE TABLE scratch (a INTEGER)`,
		`CREATE INDEX ON asn_loc (asn)`,
		`SELECT 1 + 2`,
	} {
		if issues := validate(t, sql); len(issues) != 0 {
			t.Errorf("%q: unexpected issues %v", sql, issues)
		}
	}
}

func TestValidateStatementCatchesDrift(t *testing.T) {
	cases := []struct {
		sql  string
		want string // substring of one reported issue
	}{
		{`SELECT asn FROM asn_locs`, `unknown table "asn_locs"`},
		{`SELECT asnn FROM asn_loc`, `no table in scope has column "asnn"`},
		{`SELECT l.metroo FROM asn_loc l`, `table "asn_loc" has no column "metroo"`},
		{`SELECT x.asn FROM asn_loc l`, `unknown table or alias "x"`},
		{`SELECT asn FROM asn_loc l JOIN asn_name n ON n.asn = l.asn`, `ambiguous`},
		{`SELECT z.* FROM asn_loc l`, `unknown table or alias "z"`},
		{`INSERT INTO asn_name (asn, nam) VALUES (1, 'x')`, `has no column "nam"`},
		{`INSERT INTO asn_name VALUES (1)`, `has 1 values, expected 3`},
		{`UPDATE asn_loc SET metroo = 'x'`, `has no column "metroo"`},
		{`DELETE FROM nope`, `unknown table "nope"`},
		{`DROP TABLE nope`, `unknown table "nope"`},
		{`CREATE INDEX ON asn_loc (nope)`, `has no column "nope"`},
		{`SELECT metro`, `referenced without a FROM clause`},
	}
	for _, c := range cases {
		issues := validate(t, c.sql)
		found := false
		for _, msg := range issues {
			if strings.Contains(msg, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%q: want issue containing %q, got %v", c.sql, c.want, issues)
		}
	}
}

func TestSchemaCloneIsDeep(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c["new"] = []string{"a"}
	c["asn_loc"][0] = "zzz"
	if _, ok := s["new"]; ok {
		t.Fatal("Clone shares the map")
	}
	if s["asn_loc"][0] != "asn" {
		t.Fatal("Clone shares column slices")
	}
}
