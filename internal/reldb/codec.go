package reldb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary relation codec: one self-describing chunk per table, the unit the
// replication tier ships from leader to follower. The format is
// deliberately dumb — length-prefixed schema followed by tagged values in
// row-major order — because chunks are always verified by checksum before
// decoding: the decoder's only job is to reject what a verified-but-wrong
// chunk (version skew, a buggy encoder) could contain, not to detect
// transfer corruption.
//
// Layout (all integers are uvarint unless noted):
//
//	magic "RELC"  version byte (1)
//	name          (len-prefixed string)
//	ncols, then per column: name, type byte
//	nrows, then per row, per column: tag byte + payload
//	  0 NULL | 1 int (zigzag varint) | 2 float (8B little-endian IEEE 754)
//	  3 text (len-prefixed) | 4 bool (1B)

// codecMagic and codecVersion open every encoded relation chunk.
const (
	codecMagic   = "RELC"
	codecVersion = 1
)

// value tags in the encoded stream.
const (
	tagNull byte = iota
	tagInt
	tagFloat
	tagText
	tagBool
)

// EncodeTable serializes one relation — schema and rows — into a
// self-describing chunk. The table is read under the database lock via
// Snapshot accessors' conventions: callers pass a *Table obtained from
// DB.Table on a database that is no longer being mutated (iGDB relations
// are immutable once built).
func EncodeTable(t *Table) []byte {
	// Size hint: tag byte + ~8 bytes per value is the common shape.
	buf := make([]byte, 0, 64+len(t.Rows)*(1+len(t.Cols)*9))
	buf = append(buf, codecMagic...)
	buf = append(buf, codecVersion)
	buf = appendString(buf, t.Name)
	buf = binary.AppendUvarint(buf, uint64(len(t.Cols)))
	for _, c := range t.Cols {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Type))
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.Rows)))
	for _, row := range t.Rows {
		for _, v := range row {
			buf = appendValue(buf, v)
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v Value) []byte {
	switch v.kind {
	case kindInt:
		buf = append(buf, tagInt)
		return binary.AppendVarint(buf, v.i)
	case kindFloat:
		buf = append(buf, tagFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
	case kindText:
		buf = append(buf, tagText)
		return appendString(buf, v.s)
	case kindBool:
		buf = append(buf, tagBool)
		if v.b {
			return append(buf, 1)
		}
		return append(buf, 0)
	default:
		return append(buf, tagNull)
	}
}

// DecodedTable is the schema and row data recovered from one chunk,
// ready for CREATE TABLE + BulkInsert on the receiving side.
type DecodedTable struct {
	Name string
	Cols []ColumnDef
	Rows [][]Value
}

// decoder walks an encoded chunk with bounds checking on every read.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) fail(format string, args ...interface{}) error {
	return fmt.Errorf("reldb: decode at byte %d: %s", d.pos, fmt.Sprintf(format, args...))
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.data) {
		return nil, d.fail("need %d bytes, have %d", n, len(d.data)-d.pos)
	}
	out := d.data[d.pos : d.pos+n]
	d.pos += n
	return out, nil
}

func (d *decoder) byte() (byte, error) {
	b, err := d.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad varint")
	}
	d.pos += n
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	// A length prefix beyond the remaining buffer is corrupt, not an
	// allocation request.
	if n > uint64(len(d.data)-d.pos) {
		return "", d.fail("string length %d exceeds remaining %d bytes", n, len(d.data)-d.pos)
	}
	b, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *decoder) value() (Value, error) {
	tag, err := d.byte()
	if err != nil {
		return Null, err
	}
	switch tag {
	case tagNull:
		return Null, nil
	case tagInt:
		i, err := d.varint()
		if err != nil {
			return Null, err
		}
		return Int(i), nil
	case tagFloat:
		b, err := d.bytes(8)
		if err != nil {
			return Null, err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case tagText:
		s, err := d.string()
		if err != nil {
			return Null, err
		}
		return Text(s), nil
	case tagBool:
		b, err := d.byte()
		if err != nil {
			return Null, err
		}
		return Bool(b != 0), nil
	default:
		return Null, d.fail("unknown value tag %d", tag)
	}
}

// DecodeTable parses one encoded relation chunk. Every length and tag is
// bounds-checked; a malformed chunk returns an error, never panics.
func DecodeTable(data []byte) (*DecodedTable, error) {
	d := &decoder{data: data}
	magic, err := d.bytes(len(codecMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != codecMagic {
		return nil, d.fail("bad magic %q", magic)
	}
	ver, err := d.byte()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, d.fail("unsupported codec version %d (want %d)", ver, codecVersion)
	}
	out := &DecodedTable{}
	if out.Name, err = d.string(); err != nil {
		return nil, err
	}
	if out.Name == "" {
		return nil, d.fail("empty table name")
	}
	ncols, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Two bytes minimum per encoded column definition.
	if ncols == 0 || ncols > uint64(len(data)) {
		return nil, d.fail("implausible column count %d", ncols)
	}
	out.Cols = make([]ColumnDef, ncols)
	for i := range out.Cols {
		if out.Cols[i].Name, err = d.string(); err != nil {
			return nil, err
		}
		tb, err := d.byte()
		if err != nil {
			return nil, err
		}
		if Type(tb) < TypeInt || Type(tb) > TypeBool {
			return nil, d.fail("column %q: unknown type %d", out.Cols[i].Name, tb)
		}
		out.Cols[i].Type = Type(tb)
	}
	nrows, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// One byte minimum per encoded value.
	if nrows > uint64(len(data)-d.pos)/ncols+1 {
		return nil, d.fail("implausible row count %d", nrows)
	}
	out.Rows = make([][]Value, nrows)
	for r := range out.Rows {
		row := make([]Value, ncols)
		for c := range row {
			if row[c], err = d.value(); err != nil {
				return nil, err
			}
		}
		out.Rows[r] = row
	}
	if d.pos != len(data) {
		return nil, d.fail("%d trailing bytes after %d rows", len(data)-d.pos, nrows)
	}
	return out, nil
}

// CreateTableDDL renders the CREATE TABLE statement that reproduces the
// decoded schema on a fresh database.
func (t *DecodedTable) CreateTableDDL() string {
	ddl := "CREATE TABLE " + t.Name + " ("
	for i, c := range t.Cols {
		if i > 0 {
			ddl += ", "
		}
		ddl += c.Name + " " + c.Type.String()
	}
	return ddl + ")"
}
