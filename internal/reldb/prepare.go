package reldb

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrStmtClosed is returned by Query on a statement whose plan has been
// released with Close.
var ErrStmtClosed = errors.New("reldb: statement is closed")

// ErrNotSelect is returned by Prepare (and wrapped by Classify callers) when
// a statement parses correctly but is not a read-only SELECT. Servers use it
// to distinguish "forbidden statement type" from "malformed SQL".
var ErrNotSelect = errors.New("reldb: statement is not a SELECT")

// Stmt is a prepared SELECT: the SQL text is lexed and parsed exactly once,
// then the cached plan can be executed any number of times (concurrently)
// without re-parsing. Statements are bound to the DB that prepared them.
//
// A Stmt sees the table contents current at each Query call, not at Prepare
// time; it is a cached plan, not a snapshot.
type Stmt struct {
	db      *DB
	sel     *SelectStmt
	explain *ExplainStmt // non-nil when the statement is EXPLAIN [ANALYZE]
	sql     string
	closed  atomic.Bool
}

// Prepare parses a read-only statement once and returns a reusable plan.
// SELECT and EXPLAIN [ANALYZE] are accepted (plain EXPLAIN of any statement
// is read-only planning; EXPLAIN ANALYZE requires a SELECT since execution
// happens under a shared lock). Any other statement type returns
// ErrNotSelect; malformed SQL returns the parse error. Safe for concurrent
// use, like all DB methods.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *SelectStmt:
		return &Stmt{db: db, sel: s, sql: sql}, nil
	case *ExplainStmt:
		if s.Analyze {
			if _, ok := s.Stmt.(*SelectStmt); !ok {
				return nil, fmt.Errorf("%w (EXPLAIN ANALYZE of %s)", ErrNotSelect, StatementKind(s.Stmt))
			}
		}
		return &Stmt{db: db, explain: s, sql: sql}, nil
	default:
		return nil, fmt.Errorf("%w (got %s)", ErrNotSelect, StatementKind(st))
	}
}

// IsExplain reports whether the prepared statement is an EXPLAIN (with or
// without ANALYZE).
func (s *Stmt) IsExplain() bool { return s.explain != nil }

// IsAnalyze reports whether the prepared statement is an EXPLAIN ANALYZE.
func (s *Stmt) IsAnalyze() bool { return s.explain != nil && s.explain.Analyze }

// Explain runs the prepared EXPLAIN and returns the structured plan tree
// (freshly planned — and for ANALYZE freshly executed — per call, so
// timings and row counts reflect the current table contents). Returns
// ErrNotSelect when the statement is not an EXPLAIN.
func (s *Stmt) Explain() (*PlanNode, error) {
	if s.closed.Load() {
		return nil, ErrStmtClosed
	}
	if s.explain == nil {
		return nil, fmt.Errorf("%w (statement is not EXPLAIN)", ErrNotSelect)
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return s.db.explainLocked(s.explain)
}

// Query executes the prepared plan against the current table contents. The
// plan is shared and never mutated by execution, so concurrent Query calls
// on one Stmt are safe. EXPLAIN statements yield the plan tree as
// single-column text rows.
//
// perf: hot path — every SQL request the server takes executes here;
// alloclint proves the executor pipeline under it allocation-disciplined.
func (s *Stmt) Query() (*Rows, error) {
	if s.closed.Load() {
		return nil, ErrStmtClosed
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	if s.explain != nil {
		plan, err := s.db.explainLocked(s.explain)
		if err != nil {
			return nil, err
		}
		return plan.Rows(), nil
	}
	return s.db.execSelect(s.sel)
}

// Close releases the prepared plan. Further Query calls return
// ErrStmtClosed; Close is idempotent and safe for concurrent use. Plans
// hold parsed AST memory, so long-lived servers that prepare per-request
// (rather than through a plan cache) must close what they prepare.
func (s *Stmt) Close() error {
	s.closed.Store(true)
	return nil
}

// SQL returns the statement text the plan was prepared from.
func (s *Stmt) SQL() string { return s.sql }

// StatementKind names a parsed statement's type ("SELECT", "INSERT", ...),
// for error messages and statement-type gating.
func StatementKind(st Statement) string {
	switch st.(type) {
	case *SelectStmt:
		return "SELECT"
	case *InsertStmt:
		return "INSERT"
	case *UpdateStmt:
		return "UPDATE"
	case *DeleteStmt:
		return "DELETE"
	case *CreateTableStmt:
		return "CREATE TABLE"
	case *CreateIndexStmt:
		return "CREATE INDEX"
	case *DropTableStmt:
		return "DROP TABLE"
	case *ExplainStmt:
		return "EXPLAIN"
	default:
		return fmt.Sprintf("%T", st)
	}
}
