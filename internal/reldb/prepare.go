package reldb

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrStmtClosed is returned by Query on a statement whose plan has been
// released with Close.
var ErrStmtClosed = errors.New("reldb: statement is closed")

// ErrNotSelect is returned by Prepare (and wrapped by Classify callers) when
// a statement parses correctly but is not a read-only SELECT. Servers use it
// to distinguish "forbidden statement type" from "malformed SQL".
var ErrNotSelect = errors.New("reldb: statement is not a SELECT")

// Stmt is a prepared SELECT: the SQL text is lexed and parsed exactly once,
// then the cached plan can be executed any number of times (concurrently)
// without re-parsing. Statements are bound to the DB that prepared them.
//
// A Stmt sees the table contents current at each Query call, not at Prepare
// time; it is a cached plan, not a snapshot.
type Stmt struct {
	db     *DB
	sel    *SelectStmt
	sql    string
	closed atomic.Bool
}

// Prepare parses a SELECT once and returns a reusable statement. Any other
// statement type returns ErrNotSelect; malformed SQL returns the parse
// error. Safe for concurrent use, like all DB methods.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("%w (got %s)", ErrNotSelect, StatementKind(st))
	}
	return &Stmt{db: db, sel: sel, sql: sql}, nil
}

// Query executes the prepared plan against the current table contents. The
// plan is shared and never mutated by execution, so concurrent Query calls
// on one Stmt are safe.
func (s *Stmt) Query() (*Rows, error) {
	if s.closed.Load() {
		return nil, ErrStmtClosed
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return s.db.execSelect(s.sel)
}

// Close releases the prepared plan. Further Query calls return
// ErrStmtClosed; Close is idempotent and safe for concurrent use. Plans
// hold parsed AST memory, so long-lived servers that prepare per-request
// (rather than through a plan cache) must close what they prepare.
func (s *Stmt) Close() error {
	s.closed.Store(true)
	return nil
}

// SQL returns the statement text the plan was prepared from.
func (s *Stmt) SQL() string { return s.sql }

// StatementKind names a parsed statement's type ("SELECT", "INSERT", ...),
// for error messages and statement-type gating.
func StatementKind(st Statement) string {
	switch st.(type) {
	case *SelectStmt:
		return "SELECT"
	case *InsertStmt:
		return "INSERT"
	case *UpdateStmt:
		return "UPDATE"
	case *DeleteStmt:
		return "DELETE"
	case *CreateTableStmt:
		return "CREATE TABLE"
	case *CreateIndexStmt:
		return "CREATE INDEX"
	case *DropTableStmt:
		return "DROP TABLE"
	default:
		return fmt.Sprintf("%T", st)
	}
}
