package reldb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , . * = != <> < <= > >= + - / ||
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "ASC": true,
	"DESC": true, "AS": true, "DISTINCT": true, "JOIN": true, "INNER": true,
	"LEFT": true, "OUTER": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "LIKE": true, "IN": true, "IS": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "DROP": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"UPDATE": true, "SET": true, "INTEGER": true, "INT": true, "REAL": true,
	"FLOAT": true, "TEXT": true, "VARCHAR": true, "BOOLEAN": true,
	"BOOL": true, "TRUE": true, "FALSE": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "BETWEEN": true, "EXISTS": true,
	"IF": true, "CROSS": true, "EXPLAIN": true, "ANALYZE": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.ident()
		case c >= '0' && c <= '9':
			l.number()
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.quotedIdent(); err != nil {
				return nil, err
			}
		default:
			if err := l.symbol(); err != nil {
				return nil, err
			}
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.tokens = append(l.tokens, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.tokens = append(l.tokens, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) number() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("reldb: unterminated string literal at offset %d", start)
}

func (l *lexer) quotedIdent() error {
	start := l.pos
	l.pos++
	end := strings.IndexByte(l.src[l.pos:], '"')
	if end < 0 {
		return fmt.Errorf("reldb: unterminated quoted identifier at offset %d", start)
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[l.pos : l.pos+end], pos: start})
	l.pos += end + 1
	return nil
}

func (l *lexer) symbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=", "||":
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', '/', ';':
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("reldb: unexpected character %q at offset %d", c, l.pos)
}
