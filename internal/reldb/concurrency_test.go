package reldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriters backs the package's "safe for concurrent
// use" claim with the race detector: parallel Query and prepared-Stmt
// readers run against goroutines doing BulkInsert and SQL Exec writes.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE nodes (metro TEXT, country TEXT, n INTEGER)`)
	db.MustExec(`CREATE INDEX ON nodes (metro)`)
	seedRows := make([][]Value, 0, 64)
	for i := 0; i < 64; i++ {
		seedRows = append(seedRows, []Value{
			Text(fmt.Sprintf("metro%d", i%8)), Text("US"), Int(int64(i)),
		})
	}
	if err := db.BulkInsert("nodes", seedRows); err != nil {
		t.Fatal(err)
	}

	stmt, err := db.Prepare(`SELECT metro, COUNT(*), SUM(n) FROM nodes GROUP BY metro ORDER BY 2 DESC`)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers    = 8
		writers    = 4
		iterations = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				var rows *Rows
				var err error
				if r%2 == 0 {
					rows, err = stmt.Query()
				} else {
					rows, err = db.Query(`SELECT COUNT(*) FROM nodes WHERE country = 'US'`)
				}
				if err != nil {
					errs <- err
					return
				}
				if rows.Len() == 0 {
					errs <- fmt.Errorf("reader %d: empty result", r)
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				if w%2 == 0 {
					err := db.BulkInsert("nodes", [][]Value{
						{Text(fmt.Sprintf("metro%d", i%8)), Text("US"), Int(int64(i))},
					})
					if err != nil {
						errs <- err
						return
					}
				} else {
					sql := fmt.Sprintf(`INSERT INTO nodes VALUES ('w%d', 'DE', %d)`, w, i)
					if _, err := db.Exec(sql); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rows := db.MustQuery(`SELECT COUNT(*) FROM nodes`)
	n, _ := rows.Rows[0][0].AsInt()
	want := int64(64 + writers*iterations)
	if n != want {
		t.Fatalf("row count after concurrent writes = %d, want %d", n, want)
	}
}

func TestPrepareRejectsNonSelect(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	for _, sql := range []string{
		`INSERT INTO t VALUES (1)`,
		`UPDATE t SET a = 2`,
		`DELETE FROM t`,
		`CREATE TABLE u (b TEXT)`,
		`DROP TABLE t`,
	} {
		if _, err := db.Prepare(sql); !errors.Is(err, ErrNotSelect) {
			t.Errorf("Prepare(%q) error = %v, want ErrNotSelect", sql, err)
		}
	}
	if _, err := db.Prepare(`SELEKT * FROM t`); err == nil || errors.Is(err, ErrNotSelect) {
		t.Errorf("Prepare(malformed) error = %v, want parse error", err)
	}
}

func TestPreparedStmtSeesNewRows(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	stmt, err := db.Prepare(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(1); want <= 3; want++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, want))
		rows, err := stmt.Query()
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := rows.Rows[0][0].AsInt(); n != want {
			t.Fatalf("after %d inserts COUNT(*) = %d", want, n)
		}
	}
}

func TestValueInterface(t *testing.T) {
	cases := []struct {
		v    Value
		want interface{}
	}{
		{Null, nil},
		{Int(7), int64(7)},
		{Float(2.5), 2.5},
		{Text("12"), "12"},
		{Bool(true), true},
	}
	for _, c := range cases {
		if got := c.v.Interface(); got != c.want {
			t.Errorf("Interface(%s) = %v (%T), want %v (%T)", c.v, got, got, c.want, c.want)
		}
	}
}

// BenchmarkPreparedVsQuery shows the parse-once win: repeated execution
// through a prepared Stmt vs DB.Query re-parsing each time. The point
// lookup is parse-dominated (prepared wins big); the grouped join is
// execution-dominated (the two converge) — together they bound where the
// server's plan cache pays off.
func BenchmarkPreparedVsQuery(b *testing.B) {
	db := New()
	db.MustExec(`CREATE TABLE loc (asn INTEGER, country TEXT)`)
	db.MustExec(`CREATE TABLE name (asn INTEGER, asn_name TEXT, source TEXT)`)
	var locRows, nameRows [][]Value
	for asn := 0; asn < 200; asn++ {
		nameRows = append(nameRows, []Value{Int(int64(asn)), Text(fmt.Sprintf("AS%d", asn)), Text("asrank")})
		for c := 0; c < asn%7+1; c++ {
			locRows = append(locRows, []Value{Int(int64(asn)), Text(fmt.Sprintf("C%d", c))})
		}
	}
	if err := db.BulkInsert("loc", locRows); err != nil {
		b.Fatal(err)
	}
	if err := db.BulkInsert("name", nameRows); err != nil {
		b.Fatal(err)
	}

	workloads := []struct {
		name string
		sql  string
	}{
		{"PointLookup", `SELECT asn, asn_name FROM name WHERE asn = 7 AND source = 'asrank' ORDER BY asn LIMIT 1`},
		{"GroupedJoin", `SELECT l.asn, MIN(n.asn_name), COUNT(DISTINCT l.country) AS countries
			FROM loc l JOIN name n ON n.asn = l.asn
			GROUP BY l.asn ORDER BY countries DESC, l.asn ASC LIMIT 11`},
	}
	for _, wl := range workloads {
		b.Run(wl.name+"/Query", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(wl.sql); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(wl.name+"/Prepared", func(b *testing.B) {
			stmt, err := db.Prepare(wl.sql)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stmt.Query(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
