// Package reldb is an in-memory relational database with a SQL subset. It
// plays the role SQLite/PostgreSQL play in the iGDB paper: every iGDB
// relation (Figure 2) is a reldb table, and the paper's use-case analyses
// are expressed as self-contained SQL queries.
//
// Supported SQL: CREATE TABLE, CREATE INDEX, DROP TABLE, INSERT, DELETE,
// UPDATE, and SELECT with WHERE, INNER/LEFT JOIN (hash joins for
// equality predicates), GROUP BY + HAVING, aggregates (COUNT, COUNT
// DISTINCT, SUM, AVG, MIN, MAX), ORDER BY, LIMIT/OFFSET and DISTINCT.
// Geometries are stored as WKT text, matching the paper's storage model.
package reldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type is a column type.
type Type int

// Column types. Affinity is loose, SQLite-style: values are coerced on
// insert when lossless, otherwise rejected.
const (
	TypeInt Type = iota
	TypeFloat
	TypeText
	TypeBool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "REAL"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("TYPE(%d)", int(t))
	}
}

// Value is a dynamically-typed SQL value. The zero Value is NULL.
type Value struct {
	kind valueKind
	i    int64
	f    float64
	s    string
	b    bool
}

type valueKind int

const (
	kindNull valueKind = iota
	kindInt
	kindFloat
	kindText
	kindBool
)

// Null is the SQL NULL value.
var Null = Value{}

// Int wraps an int64.
func Int(v int64) Value { return Value{kind: kindInt, i: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{kind: kindFloat, f: v} }

// Text wraps a string.
func Text(v string) Value { return Value{kind: kindText, s: v} }

// Bool wraps a bool.
func Bool(v bool) Value { return Value{kind: kindBool, b: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == kindNull }

// AsInt returns the value as int64 (coercing float/bool), with ok=false for
// NULL or text that is not a number.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case kindInt:
		return v.i, true
	case kindFloat:
		return int64(v.f), true
	case kindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case kindText:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		return n, err == nil
	default:
		return 0, false
	}
}

// AsFloat returns the value as float64 where sensible.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case kindInt:
		return float64(v.i), true
	case kindFloat:
		return v.f, true
	case kindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case kindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsText returns the value rendered as a string (NULL renders empty, ok=false).
func (v Value) AsText() (string, bool) {
	switch v.kind {
	case kindText:
		return v.s, true
	case kindInt:
		return strconv.FormatInt(v.i, 10), true
	case kindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64), true
	case kindBool:
		if v.b {
			return "true", true
		}
		return "false", true
	default:
		return "", false
	}
}

// AsBool returns the value's truthiness: non-zero numbers and "true" are
// true; NULL is false with ok=false.
func (v Value) AsBool() (bool, bool) {
	switch v.kind {
	case kindBool:
		return v.b, true
	case kindInt:
		return v.i != 0, true
	case kindFloat:
		return v.f != 0, true
	case kindText:
		return strings.EqualFold(v.s, "true") || v.s == "1", true
	default:
		return false, false
	}
}

// Interface returns the value as the native Go type JSON encoders expect:
// nil for NULL, int64, float64, string, or bool. Unlike the As* accessors it
// preserves the stored kind (Text("12") stays a string).
func (v Value) Interface() interface{} {
	switch v.kind {
	case kindInt:
		return v.i
	case kindFloat:
		return v.f
	case kindText:
		return v.s
	case kindBool:
		return v.b
	default:
		return nil
	}
}

// String renders the value for display.
func (v Value) String() string {
	if v.kind == kindNull {
		return "NULL"
	}
	s, _ := v.AsText()
	return s
}

// isNumeric reports whether the value holds a number.
func (v Value) isNumeric() bool { return v.kind == kindInt || v.kind == kindFloat }

// Compare orders two values: NULL < everything; numbers numerically; text
// lexicographically; bool false<true. Cross-kind number/text comparisons
// coerce text to number when possible, else compare type tags.
func Compare(a, b Value) int {
	if a.kind == kindNull || b.kind == kindNull {
		switch {
		case a.kind == kindNull && b.kind == kindNull:
			return 0
		case a.kind == kindNull:
			return -1
		default:
			return 1
		}
	}
	if a.isNumeric() && b.isNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind == kindText && b.kind == kindText {
		return strings.Compare(a.s, b.s)
	}
	if a.kind == kindBool && b.kind == kindBool {
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		default:
			return 0
		}
	}
	// Mixed: try numeric coercion.
	if af, aok := a.AsFloat(); aok {
		if bf, bok := b.AsFloat(); bok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	// Fall back to kind ordering for deterministic sorts.
	switch {
	case a.kind < b.kind:
		return -1
	case a.kind > b.kind:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality (NULL never equals anything, including NULL).
func Equal(a, b Value) bool {
	if a.kind == kindNull || b.kind == kindNull {
		return false
	}
	return Compare(a, b) == 0
}

// key returns a hashable representation for index/group-by use. Unlike SQL
// equality, NULLs group together (standard GROUP BY semantics).
func (v Value) key() string {
	return string(v.appendKey(nil))
}

// appendKey appends v's key bytes (the same encoding key returns) to b and
// returns the grown slice. Hot loops reuse one buffer across rows and look
// up maps with m[string(buf)], which the compiler keeps allocation-free.
func (v Value) appendKey(b []byte) []byte {
	switch v.kind {
	case kindNull:
		return append(b, "\x00N"...)
	case kindInt:
		return strconv.AppendInt(append(b, '\x00', 'I'), v.i, 10)
	case kindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e15 {
			// Integral floats hash like ints so 1 and 1.0 group together.
			return strconv.AppendInt(append(b, '\x00', 'I'), int64(v.f), 10)
		}
		return strconv.AppendFloat(append(b, '\x00', 'F'), v.f, 'g', -1, 64)
	case kindText:
		return append(append(b, '\x00', 'T'), v.s...)
	case kindBool:
		if v.b {
			return append(b, "\x00B1"...)
		}
		return append(b, "\x00B0"...)
	default:
		return append(b, "\x00?"...)
	}
}

// like implements SQL LIKE with % and _ wildcards, case-insensitive (the
// common configuration for ASCII, matching SQLite's default).
func like(s, pattern string) bool {
	return likeMatch(strings.ToLower(s), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Dynamic programming over pattern/string positions, iterative two-pointer
	// with backtracking on the last '%'.
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star != -1:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// coerce converts v for storage in a column of type t; error when lossy in a
// way that matters (text that isn't numeric into a numeric column).
func coerce(v Value, t Type) (Value, error) {
	if v.kind == kindNull {
		return v, nil
	}
	switch t {
	case TypeInt:
		if n, ok := v.AsInt(); ok {
			if v.kind == kindFloat && v.f != math.Trunc(v.f) {
				return Null, fmt.Errorf("reldb: cannot store non-integral %v in INTEGER column", v.f)
			}
			return Int(n), nil
		}
	case TypeFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
	case TypeText:
		if s, ok := v.AsText(); ok {
			return Text(s), nil
		}
	case TypeBool:
		if b, ok := v.AsBool(); ok {
			return Bool(b), nil
		}
	}
	return Null, fmt.Errorf("reldb: cannot coerce %s to %s", v, t)
}
