package reldb_test

import (
	"testing"

	"igdb/internal/reldb"
)

func TestFingerprint(t *testing.T) {
	tests := []struct {
		name string
		sql  string
		want string
	}{
		{"literals stripped",
			"SELECT name FROM cities WHERE pop > 100 AND country = 'US'",
			"SELECT name FROM cities WHERE pop > ? AND country = ?"},
		{"float and exponent literals",
			"SELECT * FROM links WHERE km < 1.5e3 OFFSET 2",
			"SELECT * FROM links WHERE km < ? OFFSET ?"},
		{"keyword case canonicalized",
			"select Name from Cities where POP > 7",
			"SELECT name FROM cities WHERE pop > ?"},
		{"whitespace canonicalized",
			"SELECT\n\tname ,  pop\nFROM cities",
			"SELECT name, pop FROM cities"},
		{"trailing semicolon dropped",
			"SELECT 1;",
			"SELECT ?"},
		{"comments dropped",
			"SELECT 1 -- trailing note",
			"SELECT ?"},
		{"function calls keep shape",
			"SELECT COUNT( * ), UPPER( name ) FROM cities GROUP BY country",
			"SELECT COUNT(*), upper(name) FROM cities GROUP BY country"},
		{"in list literals collapse per element",
			"SELECT id FROM cities WHERE country IN ('US', 'FR')",
			"SELECT id FROM cities WHERE country IN(?, ?)"},
		{"explain prefix is part of the fingerprint",
			"explain analyze SELECT id FROM cities",
			"EXPLAIN ANALYZE SELECT id FROM cities"},
		{"quoted identifiers lowercased",
			`SELECT "Name" FROM cities`,
			"SELECT name FROM cities"},
		{"unlexable input falls back to whitespace collapse",
			"SELECT   $bogus\n FROM x",
			"SELECT $bogus FROM x"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := reldb.Fingerprint(tc.sql); got != tc.want {
				t.Errorf("Fingerprint(%q) = %q, want %q", tc.sql, got, tc.want)
			}
		})
	}
}

func TestFingerprintGroupsVariants(t *testing.T) {
	variants := []string{
		"SELECT name FROM cities WHERE pop > 100",
		"select name from cities where pop > 250",
		"SELECT name\nFROM cities\nWHERE pop > 9999;",
	}
	base := reldb.Fingerprint(variants[0])
	for _, v := range variants[1:] {
		if got := reldb.Fingerprint(v); got != base {
			t.Errorf("Fingerprint(%q) = %q, want %q (same as base)", v, got, base)
		}
	}
	// Different shapes must not collide.
	other := reldb.Fingerprint("SELECT name FROM cities WHERE pop < 100")
	if other == base {
		t.Errorf("different predicates share fingerprint %q", base)
	}
}
