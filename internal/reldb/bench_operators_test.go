package reldb

import (
	"fmt"
	"testing"
)

// benchOpDB builds worldgen-scale synthetic tables: facts (one row per
// AS-presence observation) and dim (one row per AS), the shape the iGDB
// standardization joins take.
func benchOpDB(b *testing.B, factRows, dimRows int) *DB {
	b.Helper()
	db := New()
	db.MustExec(`CREATE TABLE facts (asn INTEGER, country TEXT, metro TEXT, v REAL)`)
	db.MustExec(`CREATE TABLE dim (asn INTEGER, org TEXT)`)
	facts := make([][]Value, 0, factRows)
	for i := 0; i < factRows; i++ {
		asn := i % dimRows
		facts = append(facts, []Value{
			Int(int64(asn)),
			Text(fmt.Sprintf("C%d", asn%40)),
			Text(fmt.Sprintf("M%d", i%97)),
			Float(float64(i%1000) / 1000.0),
		})
	}
	if err := db.BulkInsert("facts", facts); err != nil {
		b.Fatal(err)
	}
	dims := make([][]Value, 0, dimRows)
	for i := 0; i < dimRows; i++ {
		dims = append(dims, []Value{Int(int64(i)), Text(fmt.Sprintf("ORG%d", i))})
	}
	if err := db.BulkInsert("dim", dims); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkOperators tracks per-operator executor throughput for
// BENCH_reldb.json: each sub-benchmark isolates one plan operator over the
// worldgen-scale tables and reports input rows/s alongside ns/op.
func BenchmarkOperators(b *testing.B) {
	const factRows, dimRows = 20000, 2000
	db := benchOpDB(b, factRows, dimRows)
	small := benchOpDB(b, 200, 200)

	cases := []struct {
		name string
		db   *DB
		sql  string
		rows int // input rows the measured operator consumes per execution
	}{
		{"Scan", db, `SELECT asn FROM facts`, factRows},
		{"Filter", db, `SELECT asn FROM facts WHERE v < 0.1 AND country != 'C0'`, factRows},
		{"HashJoin", db, `SELECT f.asn FROM facts f JOIN dim d ON d.asn = f.asn`, factRows},
		{"NestedLoopJoin", small, `SELECT f.asn FROM facts f JOIN dim d ON d.asn < f.asn LIMIT 100000`, 200 * 200},
		{"Group", db, `SELECT country, COUNT(*), AVG(v) FROM facts GROUP BY country`, factRows},
		{"Sort", db, `SELECT asn FROM facts ORDER BY v DESC`, factRows},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			stmt, err := c.db.Prepare(c.sql)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stmt.Query(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkExplainOverhead bounds what EXPLAIN support costs the plain
// query path (acceptance: ≈0 — probes are nil checks when not explaining)
// and what ANALYZE instrumentation adds when requested.
func BenchmarkExplainOverhead(b *testing.B) {
	db := benchOpDB(b, 20000, 2000)
	const sql = `SELECT f.country, COUNT(*) AS n FROM facts f JOIN dim d ON d.asn = f.asn GROUP BY f.country ORDER BY n DESC LIMIT 10`
	b.Run("PlainQuery", func(b *testing.B) {
		stmt, err := db.Prepare(sql)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Query(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ExplainAnalyze", func(b *testing.B) {
		stmt, err := db.Prepare("EXPLAIN ANALYZE " + sql)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Explain(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
