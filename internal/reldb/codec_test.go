package reldb

import (
	"math"
	"strings"
	"testing"
)

// codecTestDB builds a table exercising every value kind, including NULLs,
// negative ints, non-integral floats, empty strings, and special floats.
func codecTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE specimens (id INTEGER, ratio REAL, label TEXT, flag BOOLEAN)`)
	rows := [][]Value{
		{Int(1), Float(1.5), Text("alpha"), Bool(true)},
		{Int(-42), Float(-0.25), Text(""), Bool(false)},
		{Null, Null, Null, Null},
		{Int(math.MaxInt64), Float(math.Inf(1)), Text(strings.Repeat("x", 300)), Bool(true)},
		{Int(math.MinInt64), Float(math.SmallestNonzeroFloat64), Text("utf8 ✓ ∞"), Null},
	}
	if err := db.BulkInsert("specimens", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestTableCodecRoundTrip(t *testing.T) {
	db := codecTestDB(t)
	src := db.Table("specimens")
	dec, err := DecodeTable(EncodeTable(src))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != "specimens" {
		t.Fatalf("name = %q", dec.Name)
	}
	if len(dec.Cols) != len(src.Cols) {
		t.Fatalf("cols = %d, want %d", len(dec.Cols), len(src.Cols))
	}
	for i, c := range dec.Cols {
		if c.Name != src.Cols[i].Name || c.Type != src.Cols[i].Type {
			t.Errorf("col %d = %+v, want %+v", i, c, src.Cols[i])
		}
	}
	if len(dec.Rows) != len(src.Rows) {
		t.Fatalf("rows = %d, want %d", len(dec.Rows), len(src.Rows))
	}
	for r, row := range dec.Rows {
		for c, v := range row {
			want := src.Rows[r][c]
			if v.IsNull() != want.IsNull() {
				t.Errorf("row %d col %d: null mismatch", r, c)
				continue
			}
			if !want.IsNull() && Compare(v, want) != 0 {
				t.Errorf("row %d col %d = %v, want %v", r, c, v, want)
			}
		}
	}
}

// TestTableCodecRebuild round-trips through CREATE TABLE + BulkInsert — the
// follower's reconstruction path — and compares query results.
func TestTableCodecRebuild(t *testing.T) {
	db := codecTestDB(t)
	dec, err := DecodeTable(EncodeTable(db.Table("specimens")))
	if err != nil {
		t.Fatal(err)
	}
	replica := New()
	if _, err := replica.Exec(dec.CreateTableDDL()); err != nil {
		t.Fatalf("replaying DDL %q: %v", dec.CreateTableDDL(), err)
	}
	if err := replica.BulkInsert(dec.Name, dec.Rows); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT id, label FROM specimens WHERE flag = true ORDER BY id`
	want := db.MustQuery(q)
	got := replica.MustQuery(q)
	if got.Len() != want.Len() {
		t.Fatalf("replica rows = %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if want.Rows[i][j].String() != got.Rows[i][j].String() {
				t.Errorf("row %d col %d = %v, want %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

func TestTableCodecEmptyTable(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE vacant (a INTEGER, b TEXT)`)
	dec, err := DecodeTable(EncodeTable(db.Table("vacant")))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != "vacant" || len(dec.Cols) != 2 || len(dec.Rows) != 0 {
		t.Fatalf("decoded %+v", dec)
	}
}

// TestDecodeTableCorrupt feeds the decoder the corruptions the chaos layer
// produces — truncation at every length, bit flips at every position — and
// requires an error or a clean decode, never a panic.
func TestDecodeTableCorrupt(t *testing.T) {
	db := codecTestDB(t)
	enc := EncodeTable(db.Table("specimens"))
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeTable(enc[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded cleanly", n)
		}
	}
	for pos := 0; pos < len(enc); pos++ {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0x5a
		// A flip may land in string payload bytes and still decode — that
		// is what the chunk checksum is for. The decoder's contract is only
		// "no panic, no OOM".
		_, _ = DecodeTable(mut)
	}
}

func TestDecodeTableRejectsJunk(t *testing.T) {
	for _, junk := range [][]byte{nil, {}, []byte("RELC"), []byte("NOPE\x01"), []byte("RELC\x63")} {
		if _, err := DecodeTable(junk); err == nil {
			t.Errorf("junk %q decoded cleanly", junk)
		}
	}
}
