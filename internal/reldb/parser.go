package reldb

import (
	"fmt"
	"strconv"
	"strings"
)

// ---- AST ----

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef declares a column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type Type
}

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name string
	Cols []ColumnDef
}

// CreateIndexStmt is CREATE INDEX [name] ON table (column).
type CreateIndexStmt struct {
	Table  string
	Column string
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// InsertStmt is INSERT INTO table [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SetClause is one column = expr assignment in UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE table SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SelectItem is one projection in a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool   // SELECT * or tbl.*
	Table string // qualifier for tbl.*
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (t TableRef) label() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN ... ON ... in a SELECT.
type JoinClause struct {
	Left  bool // LEFT OUTER join; false = INNER
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
	Offset   int // 0 = none
}

// ExplainStmt is EXPLAIN [ANALYZE] <statement>. The wrapped statement is
// planned (and, for ANALYZE, executed) rather than run directly; execution
// produces a plan tree instead of the statement's own result set.
type ExplainStmt struct {
	Analyze bool
	Stmt    Statement
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}

// Expr is any SQL expression node.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ V Value }

// ColRef references a column, optionally qualified by table/alias.
type ColRef struct{ Table, Name string }

// Unary is NOT x or -x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operation (comparisons, boolean, arithmetic, LIKE, ||).
type Binary struct {
	Op   string
	L, R Expr
}

// InExpr is x [NOT] IN (list).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// Call is a function call; aggregates are COUNT/SUM/AVG/MIN/MAX.
type Call struct {
	Fn       string
	Distinct bool
	Star     bool // COUNT(*)
	Args     []Expr
}

func (*Lit) expr()         {}
func (*ColRef) expr()      {}
func (*Unary) expr()       {}
func (*Binary) expr()      {}
func (*InExpr) expr()      {}
func (*IsNullExpr) expr()  {}
func (*BetweenExpr) expr() {}
func (*Call) expr()        {}

// ---- Parser ----

type parser struct {
	toks []token
	pos  int
}

// ParseStatement parses a single SQL statement.
//
// perf: allocates intentionally — parsing builds an AST; hot callers cache
// the result behind Prepare/plan caches instead of re-parsing.
func ParseStatement(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.cur().kind == tokSymbol && p.cur().text == ";" {
		p.pos++
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("reldb: unexpected %q after statement", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("reldb: expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("reldb: expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", fmt.Errorf("reldb: expected identifier, found %q", t.text)
}

func (p *parser) statement() (Statement, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("reldb: expected statement, found %q", t.text)
	}
	switch t.text {
	case "CREATE":
		return p.create()
	case "DROP":
		return p.drop()
	case "INSERT":
		return p.insert()
	case "DELETE":
		return p.delete()
	case "UPDATE":
		return p.update()
	case "SELECT":
		return p.selectStmt()
	case "EXPLAIN":
		return p.explain()
	default:
		return nil, fmt.Errorf("reldb: unsupported statement %q", t.text)
	}
}

func (p *parser) explain() (Statement, error) {
	p.pos++ // EXPLAIN
	analyze := p.acceptKeyword("ANALYZE")
	if p.cur().kind == tokKeyword && p.cur().text == "EXPLAIN" {
		return nil, fmt.Errorf("reldb: cannot EXPLAIN an EXPLAIN")
	}
	inner, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &ExplainStmt{Analyze: analyze, Stmt: inner}, nil
}

func (p *parser) create() (Statement, error) {
	p.pos++ // CREATE
	if p.acceptKeyword("TABLE") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var cols []ColumnDef
		for {
			cname, err := p.ident()
			if err != nil {
				return nil, err
			}
			ctype, err := p.columnType()
			if err != nil {
				return nil, err
			}
			cols = append(cols, ColumnDef{Name: cname, Type: ctype})
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Cols: cols}, nil
	}
	if p.acceptKeyword("INDEX") {
		// Optional index name, ignored (indexes are per-column).
		if p.cur().kind == tokIdent {
			p.pos++
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Table: table, Column: col}, nil
	}
	return nil, fmt.Errorf("reldb: CREATE must be followed by TABLE or INDEX")
}

func (p *parser) columnType() (Type, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return 0, fmt.Errorf("reldb: expected column type, found %q", t.text)
	}
	p.pos++
	switch t.text {
	case "INTEGER", "INT":
		return TypeInt, nil
	case "REAL", "FLOAT":
		return TypeFloat, nil
	case "TEXT":
		return TypeText, nil
	case "VARCHAR":
		// Accept VARCHAR(n) and ignore the width.
		if p.acceptSymbol("(") {
			if p.cur().kind == tokNumber {
				p.pos++
			}
			if err := p.expectSymbol(")"); err != nil {
				return 0, err
			}
		}
		return TypeText, nil
	case "BOOLEAN", "BOOL":
		return TypeBool, nil
	default:
		return 0, fmt.Errorf("reldb: unknown column type %q", t.text)
	}
}

func (p *parser) drop() (Statement, error) {
	p.pos++ // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name, IfExists: ifExists}, nil
}

func (p *parser) insert() (Statement, error) {
	p.pos++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.acceptSymbol("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return &InsertStmt{Table: table, Columns: cols, Rows: rows}, nil
}

func (p *parser) delete() (Statement, error) {
	p.pos++ // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var where Expr
	if p.acceptKeyword("WHERE") {
		where, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	return &DeleteStmt{Table: table, Where: where}, nil
}

func (p *parser) update() (Statement, error) {
	p.pos++ // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	var sets []SetClause
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		sets = append(sets, SetClause{Column: col, Value: e})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	var where Expr
	if p.acceptKeyword("WHERE") {
		where, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	return &UpdateStmt{Table: table, Sets: sets, Where: where}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.pos++ // SELECT
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("FROM") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name}
		ref.Alias = p.optionalAlias()
		st.From = &ref
		for {
			left := false
			switch {
			case p.acceptKeyword("JOIN"):
			case p.acceptKeyword("INNER"):
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
			case p.acceptKeyword("LEFT"):
				p.acceptKeyword("OUTER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				left = true
			case p.acceptKeyword("CROSS"):
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jname, err := p.ident()
				if err != nil {
					return nil, err
				}
				jref := TableRef{Name: jname}
				jref.Alias = p.optionalAlias()
				st.Joins = append(st.Joins, JoinClause{Table: jref, On: &Lit{V: Bool(true)}})
				continue
			default:
				goto afterJoins
			}
			jname, err := p.ident()
			if err != nil {
				return nil, err
			}
			jref := TableRef{Name: jname}
			jref.Alias = p.optionalAlias()
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.Joins = append(st.Joins, JoinClause{Left: left, Table: jref, On: on})
		}
	}
afterJoins:
	if p.acceptKeyword("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		st.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		st.Offset = n
	}
	return st, nil
}

func (p *parser) optionalAlias() string {
	if p.acceptKeyword("AS") {
		if p.cur().kind == tokIdent {
			return p.next().text
		}
		return ""
	}
	if p.cur().kind == tokIdent {
		return p.next().text
	}
	return ""
}

func (p *parser) intLiteral() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("reldb: expected integer, found %q", t.text)
	}
	p.pos++
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("reldb: bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	// "*" or "tbl.*"
	if p.cur().kind == tokSymbol && p.cur().text == "*" {
		p.pos++
		return SelectItem{Star: true}, nil
	}
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokSymbol &&
		p.toks[p.pos+1].text == "." && p.toks[p.pos+2].kind == tokSymbol &&
		p.toks[p.pos+2].text == "*" {
		table := p.next().text
		p.pos += 2
		return SelectItem{Star: true, Table: table}, nil
	}
	e, err := p.expression()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		name, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name
	} else if p.cur().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

// Expression precedence climbing.

func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	// Optional [NOT] before LIKE / IN / BETWEEN.
	negated := false
	if p.cur().kind == tokKeyword && p.cur().text == "NOT" &&
		p.toks[p.pos+1].kind == tokKeyword &&
		(p.toks[p.pos+1].text == "LIKE" || p.toks[p.pos+1].text == "IN" || p.toks[p.pos+1].text == "BETWEEN") {
		p.pos++
		negated = true
	}
	switch {
	case p.cur().kind == tokSymbol && isCompareOp(p.cur().text):
		op := p.next().text
		if op == "<>" {
			op = "!="
		}
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	case p.acceptKeyword("LIKE"):
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		var e Expr = &Binary{Op: "LIKE", L: l, R: r}
		if negated {
			e = &Unary{Op: "NOT", X: e}
		}
		return e, nil
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: l, List: list, Not: negated}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: negated}, nil
	case p.acceptKeyword("IS"):
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: not}, nil
	}
	return l, nil
}

func isCompareOp(s string) bool {
	switch s {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.pos++
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unary() (Expr, error) {
	if p.cur().kind == tokSymbol && p.cur().text == "-" {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

var aggregateFns = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("reldb: bad number %q", t.text)
			}
			return &Lit{V: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("reldb: bad number %q", t.text)
		}
		return &Lit{V: Int(n)}, nil
	case tokString:
		p.pos++
		return &Lit{V: Text(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &Lit{V: Null}, nil
		case "TRUE":
			p.pos++
			return &Lit{V: Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Lit{V: Bool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			return p.callTail(t.text)
		}
		return nil, fmt.Errorf("reldb: unexpected keyword %q in expression", t.text)
	case tokIdent:
		// function call, qualified column, or bare column
		name := t.text
		if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.pos++
			return p.callTail(strings.ToUpper(name))
		}
		p.pos++
		if p.acceptSymbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("reldb: unexpected token %q in expression", t.text)
}

func (p *parser) callTail(fn string) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	c := &Call{Fn: fn}
	if p.acceptSymbol("*") {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		c.Star = true
		return c, nil
	}
	c.Distinct = p.acceptKeyword("DISTINCT")
	if !p.acceptSymbol(")") {
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// hasAggregate reports whether e contains an aggregate function call.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *Call:
		if aggregateFns[x.Fn] {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *Unary:
		return hasAggregate(x.X)
	case *Binary:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *InExpr:
		if hasAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if hasAggregate(a) {
				return true
			}
		}
	case *IsNullExpr:
		return hasAggregate(x.X)
	case *BetweenExpr:
		return hasAggregate(x.X) || hasAggregate(x.Lo) || hasAggregate(x.Hi)
	}
	return false
}
