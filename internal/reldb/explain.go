package reldb

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Operator names used in plan trees. They double as the machine-readable
// "op" field of the JSON rendering, so they are stable identifiers.
const (
	OpScan     = "scan"
	OpValues   = "values"
	OpHashJoin = "hash_join"
	OpLoopJoin = "nested_loop_join"
	OpFilter   = "filter"
	OpGroup    = "group"
	OpProject  = "project"
	OpDistinct = "distinct"
	OpSort     = "sort"
	OpLimit    = "limit"
)

// OpStats holds the runtime measurements EXPLAIN ANALYZE attaches to one
// operator: rows flowing in and out, how many times the operator ran, and
// wall time spent inside it.
type OpStats struct {
	RowsIn  int     `json:"rows_in"`
	RowsOut int     `json:"rows_out"`
	Loops   int     `json:"loops"`
	TimeMs  float64 `json:"time_ms"`
}

// PlanNode is one operator in a query plan tree. Plain EXPLAIN produces the
// static tree (Actual nil); EXPLAIN ANALYZE additionally executes the
// statement and fills Actual on every operator that ran.
type PlanNode struct {
	Op       string      `json:"op"`
	Table    string      `json:"table,omitempty"`
	Detail   string      `json:"detail,omitempty"`
	Index    string      `json:"index,omitempty"`
	EstRows  int         `json:"est_rows,omitempty"`
	Children []*PlanNode `json:"children,omitempty"`
	Actual   *OpStats    `json:"actual,omitempty"`
}

// Text renders the plan tree as indented lines, root first.
func (n *PlanNode) Text() []string {
	var out []string
	n.appendText(&out, 0)
	return out
}

// Rows renders the plan tree as a single-column result set, so EXPLAIN
// output flows through every surface that already speaks *Rows (the SQL
// HTTP endpoint, igdb sql, the codec).
//
// perf: allocates intentionally — rendering builds the retained result
// set; one row and one text line per plan node.
func (n *PlanNode) Rows() *Rows {
	lines := n.Text()
	out := &Rows{Columns: []string{"plan"}}
	out.Rows = make([][]Value, len(lines))
	for i, l := range lines {
		out.Rows[i] = []Value{Text(l)}
	}
	return out
}

func (n *PlanNode) appendText(out *[]string, depth int) {
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	if depth > 0 {
		b.WriteString("-> ")
	}
	b.WriteString(n.Op)
	if n.Table != "" {
		b.WriteByte(' ')
		b.WriteString(n.Table)
	}
	if n.Detail != "" {
		b.WriteString(" (")
		b.WriteString(n.Detail)
		b.WriteByte(')')
	}
	if n.EstRows > 0 || n.Op == OpScan {
		fmt.Fprintf(&b, " rows=%d", n.EstRows)
	}
	if n.Index != "" {
		b.WriteString(" [")
		b.WriteString(n.Index)
		b.WriteByte(']')
	}
	if n.Actual != nil {
		fmt.Fprintf(&b, " (actual: in=%d out=%d loops=%d time=%.3fms)",
			n.Actual.RowsIn, n.Actual.RowsOut, n.Actual.Loops, n.Actual.TimeMs)
	}
	*out = append(*out, b.String())
	for _, c := range n.Children {
		c.appendText(out, depth+1)
	}
}

// Walk visits the node and all descendants in depth-first pre-order.
func (n *PlanNode) Walk(fn func(*PlanNode, int)) { n.walk(fn, 0) }

func (n *PlanNode) walk(fn func(*PlanNode, int), depth int) {
	fn(n, depth)
	for _, c := range n.Children {
		c.walk(fn, depth+1)
	}
}

// selectPlan carries the plan tree for one SELECT plus direct handles to the
// stage nodes the executor instruments. A nil *selectPlan is the plain-query
// path: every probe call on it is a nil check and nothing else, which keeps
// EXPLAIN support free when not asked for.
type selectPlan struct {
	root   *PlanNode
	scan   *PlanNode
	joins  []*PlanNode
	rscans []*PlanNode // right-side scan child per join, same order
	filter *PlanNode
	output *PlanNode // group or project
	dedup  *PlanNode
	sort   *PlanNode
	limit  *PlanNode
}

// opProbe measures one operator activation. The zero-value-free nil form is
// a no-op on every method, so un-instrumented execution pays only a nil
// comparison per stage.
type opProbe struct {
	node *PlanNode
	t0   time.Time
}

func newProbe(n *PlanNode) *opProbe {
	if n == nil {
		return nil
	}
	return &opProbe{node: n, t0: time.Now()}
}

// Per-stage probe constructors; all are no-ops on a nil plan so the
// executor can call them unconditionally.
func (pl *selectPlan) probeScan() *opProbe {
	if pl == nil {
		return nil
	}
	return newProbe(pl.scan)
}

func (pl *selectPlan) probeJoin(i int) *opProbe {
	if pl == nil {
		return nil
	}
	return newProbe(pl.joins[i])
}

func (pl *selectPlan) probeFilter() *opProbe {
	if pl == nil {
		return nil
	}
	return newProbe(pl.filter)
}

func (pl *selectPlan) probeOutput() *opProbe {
	if pl == nil {
		return nil
	}
	return newProbe(pl.output)
}

func (pl *selectPlan) probeDistinct() *opProbe {
	if pl == nil {
		return nil
	}
	return newProbe(pl.dedup)
}

func (pl *selectPlan) probeSort() *opProbe {
	if pl == nil {
		return nil
	}
	return newProbe(pl.sort)
}

func (pl *selectPlan) probeLimit() *opProbe {
	if pl == nil {
		return nil
	}
	return newProbe(pl.limit)
}

// done accumulates the activation into the node. Accumulation (rather than
// assignment) keeps repeated activations of one operator additive.
func (p *opProbe) done(rowsIn, rowsOut, loops int) {
	if p == nil {
		return
	}
	st := p.node.Actual
	if st == nil {
		st = &OpStats{}
		p.node.Actual = st
	}
	st.RowsIn += rowsIn
	st.RowsOut += rowsOut
	st.Loops += loops
	st.TimeMs += float64(time.Since(p.t0)) / float64(time.Millisecond)
}

func (pl *selectPlan) joinProbeAt(i int) *joinProbe {
	if pl == nil {
		return nil
	}
	return &joinProbe{join: pl.joins[i], scan: pl.rscans[i]}
}

// joinProbe lets the join operator report which strategy it actually chose
// and how the right-side scan behaved under it.
type joinProbe struct {
	join *PlanNode
	scan *PlanNode
}

func (jp *joinProbe) chose(hash bool, leftRows, rightRows int) {
	if jp == nil {
		return
	}
	if hash {
		jp.join.Op = OpHashJoin
		// Hash join reads the right side once to build the hash table.
		jp.scan.Actual = &OpStats{RowsIn: rightRows, RowsOut: rightRows, Loops: 1}
		return
	}
	jp.join.Op = OpLoopJoin
	jp.join.Index = ""
	// Nested loop re-scans the right side once per left row.
	jp.scan.Actual = &OpStats{RowsIn: rightRows, RowsOut: leftRows * rightRows, Loops: leftRows}
}

// planSelect builds the static plan tree for a SELECT. The caller must hold
// db.mu (shared is enough); the planner reads table sizes and index state
// and replays the executor's own join-strategy decision so EXPLAIN never
// lies about what execution would do.
func (db *DB) planSelect(s *SelectStmt) (*selectPlan, error) {
	pl := &selectPlan{}
	sch := newSchema()
	var cur *PlanNode
	if s.From == nil {
		cur = &PlanNode{Op: OpValues, Detail: "one synthetic row", EstRows: 1}
		pl.scan = cur
	} else {
		//lint:ignore guardedby callers hold db.mu
		base, ok := db.tables[strings.ToLower(s.From.Name)]
		if !ok {
			return nil, fmt.Errorf("reldb: no such table %q", s.From.Name)
		}
		cur = scanNode(s.From.label(), base)
		pl.scan = cur
		sch.addTable(s.From.label(), base)
		for _, j := range s.Joins {
			//lint:ignore guardedby callers hold db.mu
			jt, ok := db.tables[strings.ToLower(j.Table.Name)]
			if !ok {
				return nil, fmt.Errorf("reldb: no such table %q", j.Table.Name)
			}
			newSch := &schema{
				labels: append([]string{}, sch.labels...),
				names:  append([]string{}, sch.names...),
			}
			newSch.addTable(j.Table.label(), jt)
			lExpr, rExpr := equiJoinPair(j.On, sch, newSch, j.Table.label(), jt)
			kind := "inner"
			if j.Left {
				kind = "left"
			}
			jn := &PlanNode{Detail: kind + " join on " + ExprString(j.On)}
			if lExpr != nil {
				jn.Op = OpHashJoin
				jn.Index = "hash(" + ExprString(rExpr) + ")"
			} else {
				jn.Op = OpLoopJoin
			}
			rscan := scanNode(j.Table.label(), jt)
			jn.Children = []*PlanNode{cur, rscan}
			pl.joins = append(pl.joins, jn)
			pl.rscans = append(pl.rscans, rscan)
			cur = jn
			sch = newSch
		}
	}

	if s.Where != nil {
		pl.filter = &PlanNode{Op: OpFilter, Detail: ExprString(s.Where), Children: []*PlanNode{cur}}
		cur = pl.filter
	}

	items, err := expandStars(s.Items, sch)
	if err != nil {
		return nil, err
	}
	grouped := len(s.GroupBy) > 0 || s.Having != nil || anyAggregate(items) ||
		(len(s.OrderBy) > 0 && anyAggregateOrder(s.OrderBy))

	var names []string
	for _, it := range items {
		names = append(names, itemName(it))
	}
	if grouped {
		detail := "by: all rows"
		if len(s.GroupBy) > 0 {
			detail = "by: " + exprListString(s.GroupBy)
		}
		if s.Having != nil {
			detail += "; having: " + ExprString(s.Having)
		}
		detail += "; emit: " + strings.Join(names, ", ")
		pl.output = &PlanNode{Op: OpGroup, Detail: detail, Children: []*PlanNode{cur}}
	} else {
		pl.output = &PlanNode{Op: OpProject, Detail: strings.Join(names, ", "), Children: []*PlanNode{cur}}
	}
	cur = pl.output

	if s.Distinct {
		pl.dedup = &PlanNode{Op: OpDistinct, Children: []*PlanNode{cur}}
		cur = pl.dedup
	}
	if len(s.OrderBy) > 0 {
		var keys []string
		for _, ob := range s.OrderBy {
			k := ExprString(ob.Expr)
			if ob.Desc {
				k += " desc"
			}
			keys = append(keys, k)
		}
		pl.sort = &PlanNode{Op: OpSort, Detail: "keys: " + strings.Join(keys, ", "), Children: []*PlanNode{cur}}
		cur = pl.sort
	}
	if s.Limit >= 0 || s.Offset > 0 {
		detail := ""
		if s.Limit >= 0 {
			detail = fmt.Sprintf("limit %d", s.Limit)
		}
		if s.Offset > 0 {
			if detail != "" {
				detail += " "
			}
			detail += fmt.Sprintf("offset %d", s.Offset)
		}
		pl.limit = &PlanNode{Op: OpLimit, Detail: detail, Children: []*PlanNode{cur}}
		cur = pl.limit
	}
	pl.root = cur
	return pl, nil
}

// scanNode describes a full scan of one table, annotated with the hash
// indexes that exist on it (execution may or may not use them; the join
// operator reports the transient hash table it builds separately).
func scanNode(label string, t *Table) *PlanNode {
	n := &PlanNode{Op: OpScan, Table: t.Name, EstRows: len(t.Rows)}
	if !strings.EqualFold(label, t.Name) {
		n.Detail = "as " + label
	}
	if len(t.indexes) > 0 {
		var cols []string
		for col := range t.indexes {
			cols = append(cols, "hash("+strings.ToLower(t.Cols[col].Name)+")")
		}
		sort.Strings(cols)
		n.Index = strings.Join(cols, ", ")
	}
	return n
}

// explainLocked plans ex.Stmt and, for EXPLAIN ANALYZE of a SELECT,
// executes it with per-operator probes attached. Callers hold db.mu for
// reading — ANALYZE therefore only supports read-only statements.
//
// perf: allocates intentionally — planning builds a fresh plan tree per
// EXPLAIN; it is the diagnostic path, not the per-row execution path.
func (db *DB) explainLocked(ex *ExplainStmt) (*PlanNode, error) {
	switch inner := ex.Stmt.(type) {
	case *SelectStmt:
		pl, err := db.planSelect(inner)
		if err != nil {
			return nil, err
		}
		if ex.Analyze {
			if _, err := db.execSelectPlan(inner, pl); err != nil {
				return nil, err
			}
		}
		return pl.root, nil
	default:
		if ex.Analyze {
			return nil, fmt.Errorf("reldb: EXPLAIN ANALYZE supports only SELECT (got %s)", StatementKind(ex.Stmt))
		}
		return staticPlan(ex.Stmt), nil
	}
}

// staticPlan builds the single-node plans EXPLAIN reports for DDL/DML.
func staticPlan(st Statement) *PlanNode {
	switch s := st.(type) {
	case *InsertStmt:
		return &PlanNode{Op: "insert", Table: s.Table, Detail: fmt.Sprintf("%d row(s)", len(s.Rows))}
	case *DeleteStmt:
		n := &PlanNode{Op: "delete", Table: s.Table}
		if s.Where != nil {
			n.Detail = ExprString(s.Where)
		}
		return n
	case *UpdateStmt:
		var cols []string
		for _, set := range s.Sets {
			cols = append(cols, strings.ToLower(set.Column))
		}
		n := &PlanNode{Op: "update", Table: s.Table, Detail: "set: " + strings.Join(cols, ", ")}
		if s.Where != nil {
			n.Detail += "; where: " + ExprString(s.Where)
		}
		return n
	case *CreateTableStmt:
		return &PlanNode{Op: "create_table", Table: s.Name, Detail: fmt.Sprintf("%d column(s)", len(s.Cols))}
	case *CreateIndexStmt:
		return &PlanNode{Op: "create_index", Table: s.Table, Index: "hash(" + strings.ToLower(s.Column) + ")"}
	case *DropTableStmt:
		return &PlanNode{Op: "drop_table", Table: s.Name}
	default:
		return &PlanNode{Op: strings.ToLower(StatementKind(st))}
	}
}

// ExprString renders an expression for plan annotations. The output is for
// humans reading plans, not for re-parsing.
func ExprString(e Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *Lit:
		return litString(n.V)
	case *ColRef:
		if n.Table != "" {
			return strings.ToLower(n.Table) + "." + strings.ToLower(n.Name)
		}
		return strings.ToLower(n.Name)
	case *Unary:
		if n.Op == "NOT" {
			return "NOT " + ExprString(n.X)
		}
		return n.Op + ExprString(n.X)
	case *Binary:
		return boolOperand(n.L, n.Op) + " " + n.Op + " " + boolOperand(n.R, n.Op)
	case *InExpr:
		op := " IN ("
		if n.Not {
			op = " NOT IN ("
		}
		return ExprString(n.X) + op + exprListString(n.List) + ")"
	case *IsNullExpr:
		if n.Not {
			return ExprString(n.X) + " IS NOT NULL"
		}
		return ExprString(n.X) + " IS NULL"
	case *BetweenExpr:
		op := " BETWEEN "
		if n.Not {
			op = " NOT BETWEEN "
		}
		return ExprString(n.X) + op + ExprString(n.Lo) + " AND " + ExprString(n.Hi)
	case *Call:
		if n.Star {
			return n.Fn + "(*)"
		}
		args := exprListString(n.Args)
		if n.Distinct {
			args = "DISTINCT " + args
		}
		return n.Fn + "(" + args + ")"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// boolOperand parenthesizes a nested AND/OR of a different operator so the
// rendered precedence matches the tree.
func boolOperand(e Expr, parentOp string) string {
	if b, ok := e.(*Binary); ok && (b.Op == "AND" || b.Op == "OR") && b.Op != parentOp {
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}

func exprListString(list []Expr) string {
	var parts []string
	for _, e := range list {
		parts = append(parts, ExprString(e))
	}
	return strings.Join(parts, ", ")
}

func litString(v Value) string {
	if v.kind == kindText {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}
