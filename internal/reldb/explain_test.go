package reldb_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"igdb/internal/core"
	"igdb/internal/reldb"
)

func explainTestDB(t testing.TB) *reldb.DB {
	t.Helper()
	db := reldb.New()
	db.MustExec("CREATE TABLE cities (id INTEGER, name TEXT, country TEXT, pop INTEGER)")
	db.MustExec("CREATE TABLE links (src INTEGER, dst INTEGER, km REAL)")
	db.MustExec("CREATE INDEX ON cities (id)")
	db.MustExec("INSERT INTO cities VALUES (1,'ashburn','US',120), (2,'fremont','US',230), (3,'lyon','FR',500), (4,'paris','FR',2100)")
	db.MustExec("INSERT INTO links VALUES (1,3,6200.5), (1,4,6180.0), (2,3,9100.25), (3,4,390.0)")
	return db
}

// collect flattens the tree pre-order for shape assertions.
func planOps(n *reldb.PlanNode) []string {
	var ops []string
	n.Walk(func(p *reldb.PlanNode, _ int) { ops = append(ops, p.Op) })
	return ops
}

func TestExplainPlanShape(t *testing.T) {
	db := explainTestDB(t)
	tests := []struct {
		sql  string
		want []string // pre-order op sequence
	}{
		{"SELECT name FROM cities",
			[]string{"project", "scan"}},
		{"SELECT name FROM cities WHERE pop > 200",
			[]string{"project", "filter", "scan"}},
		{"SELECT DISTINCT country FROM cities ORDER BY country LIMIT 2",
			[]string{"limit", "sort", "distinct", "project", "scan"}},
		{"SELECT country, COUNT(*) FROM cities GROUP BY country",
			[]string{"group", "scan"}},
		{"SELECT c.name FROM cities c JOIN links l ON l.src = c.id",
			[]string{"project", "hash_join", "scan", "scan"}},
		{"SELECT c.name FROM cities c JOIN links l ON l.src < c.id",
			[]string{"project", "nested_loop_join", "scan", "scan"}},
		{"SELECT 1+1",
			[]string{"project", "values"}},
	}
	for _, tc := range tests {
		plan, err := db.Explain(tc.sql, false)
		if err != nil {
			t.Fatalf("Explain(%q): %v", tc.sql, err)
		}
		got := planOps(plan)
		if strings.Join(got, " ") != strings.Join(tc.want, " ") {
			t.Errorf("Explain(%q) ops = %v, want %v", tc.sql, got, tc.want)
		}
		// Plain EXPLAIN must not execute: no actuals anywhere.
		plan.Walk(func(p *reldb.PlanNode, _ int) {
			if p.Actual != nil {
				t.Errorf("Explain(%q): node %s has actuals without ANALYZE", tc.sql, p.Op)
			}
		})
	}
}

func TestExplainAnalyzeActuals(t *testing.T) {
	db := explainTestDB(t)
	sql := "SELECT c.country, COUNT(*) AS n FROM cities c JOIN links l ON l.src = c.id WHERE c.pop > 100 GROUP BY c.country ORDER BY n DESC LIMIT 1"
	plan, err := db.Explain(sql, true)
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string]*reldb.PlanNode{}
	plan.Walk(func(p *reldb.PlanNode, _ int) {
		byOp[p.Op] = p
		if p.Actual == nil {
			t.Fatalf("node %s missing actuals", p.Op)
		}
		if p.Actual.Loops < 1 {
			t.Errorf("node %s: loops = %d, want >= 1", p.Op, p.Actual.Loops)
		}
	})
	// 4 joined rows survive (every link src has pop > 100).
	if got := byOp["hash_join"].Actual.RowsOut; got != 4 {
		t.Errorf("hash_join rows_out = %d, want 4", got)
	}
	if got := byOp["filter"].Actual; got.RowsIn != 4 || got.RowsOut != 4 {
		t.Errorf("filter in/out = %d/%d, want 4/4", got.RowsIn, got.RowsOut)
	}
	// Two countries grouped, limit keeps one.
	if got := byOp["group"].Actual.RowsOut; got != 2 {
		t.Errorf("group rows_out = %d, want 2", got)
	}
	if got := byOp["limit"].Actual; got.RowsIn != 2 || got.RowsOut != 1 {
		t.Errorf("limit in/out = %d/%d, want 2/1", got.RowsIn, got.RowsOut)
	}
}

func TestExplainAnalyzeMatchesExecution(t *testing.T) {
	db := explainTestDB(t)
	sql := "SELECT country, SUM(pop) FROM cities GROUP BY country ORDER BY 2 DESC"
	direct, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.Explain(sql, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Actual.RowsOut; got != direct.Len() {
		t.Errorf("root rows_out = %d, direct query returned %d", got, direct.Len())
	}
}

func TestExplainThroughQuery(t *testing.T) {
	db := explainTestDB(t)
	rows, err := db.Query("EXPLAIN ANALYZE SELECT name FROM cities WHERE country = 'US'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 1 || rows.Columns[0] != "plan" {
		t.Fatalf("columns = %v, want [plan]", rows.Columns)
	}
	text := ""
	for _, r := range rows.Rows {
		text += r[0].String() + "\n"
	}
	for _, want := range []string{"project", "filter (country = 'US')", "scan cities", "actual:", "[hash(id)]"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered plan missing %q:\n%s", want, text)
		}
	}
}

func TestExplainJSONRendering(t *testing.T) {
	db := explainTestDB(t)
	plan, err := db.Explain("SELECT c.name FROM cities c JOIN links l ON l.src = c.id LIMIT 2", true)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var back reldb.PlanNode
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if strings.Join(planOps(&back), " ") != strings.Join(planOps(plan), " ") {
		t.Errorf("JSON round-trip changed op sequence")
	}
	if !strings.Contains(string(blob), `"rows_out"`) {
		t.Errorf("JSON missing actuals: %s", blob)
	}
}

func TestExplainErrors(t *testing.T) {
	db := explainTestDB(t)
	if _, err := db.Query("EXPLAIN EXPLAIN SELECT 1"); err == nil {
		t.Error("nested EXPLAIN accepted")
	}
	if _, err := db.Query("EXPLAIN ANALYZE DELETE FROM cities"); err == nil {
		t.Error("EXPLAIN ANALYZE of DML accepted")
	}
	if _, err := db.Query("EXPLAIN SELECT * FROM nope"); err == nil {
		t.Error("EXPLAIN of missing table accepted")
	}
	// Plain EXPLAIN of DML is read-only planning and must work — and must
	// not execute the statement.
	rows, err := db.Query("EXPLAIN DELETE FROM cities WHERE pop > 0")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Error("EXPLAIN DELETE returned no plan")
	}
	if n := db.MustQuery("SELECT COUNT(*) FROM cities").Rows[0][0]; n.String() != "4" {
		t.Errorf("EXPLAIN DELETE executed the delete: %s cities left", n)
	}
	// Prepare gates EXPLAIN ANALYZE of writes behind ErrNotSelect.
	if _, err := db.Prepare("EXPLAIN ANALYZE UPDATE cities SET pop = 0"); !errors.Is(err, reldb.ErrNotSelect) {
		t.Errorf("Prepare(EXPLAIN ANALYZE UPDATE) err = %v, want ErrNotSelect", err)
	}
	if _, err := db.Prepare("EXPLAIN INSERT INTO cities VALUES (9,'x','Y',1)"); err != nil {
		t.Errorf("Prepare(plain EXPLAIN INSERT) err = %v, want nil", err)
	}
}

func TestExplainPreparedStmt(t *testing.T) {
	db := explainTestDB(t)
	stmt, err := db.Prepare("EXPLAIN ANALYZE SELECT name FROM cities WHERE pop > 100")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if !stmt.IsExplain() || !stmt.IsAnalyze() {
		t.Fatal("IsExplain/IsAnalyze false for EXPLAIN ANALYZE stmt")
	}
	plan, err := stmt.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Actual == nil {
		t.Fatal("prepared EXPLAIN ANALYZE returned no actuals")
	}
	// Repeated execution stays correct (fresh plan per call).
	plan2, err := stmt.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Actual.RowsOut != plan.Actual.RowsOut {
		t.Errorf("repeat rows_out = %d, want %d", plan2.Actual.RowsOut, plan.Actual.RowsOut)
	}
	plain, err := db.Prepare("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.IsExplain() {
		t.Error("plain SELECT reports IsExplain")
	}
	if _, err := plain.Explain(); !errors.Is(err, reldb.ErrNotSelect) {
		t.Errorf("Explain on plain SELECT err = %v, want ErrNotSelect", err)
	}
}

// readCorpusSeeds parses the `go test fuzz v1` seed files the harvester
// maintains, returning the raw SQL statements.
func readCorpusSeeds(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
				continue
			}
			sql, err := strconv.Unquote(line[len("string(") : len(line)-1])
			if err != nil {
				continue
			}
			out = append(out, sql)
		}
	}
	if len(out) == 0 {
		t.Fatal("no corpus seeds found")
	}
	return out
}

// TestExplainHarvestedCorpus proves EXPLAIN covers the SQL the codebase
// actually issues: every harvested corpus statement must EXPLAIN, and every
// SELECT must EXPLAIN ANALYZE with actuals on each operator.
func TestExplainHarvestedCorpus(t *testing.T) {
	db := reldb.New()
	for _, ddl := range core.SchemaDDL {
		db.MustExec(ddl)
	}
	selects, analyzed := 0, 0
	for _, sql := range readCorpusSeeds(t) {
		st, err := reldb.ParseStatement(sql)
		if err != nil {
			continue // fuzzer-found seeds need not be valid SQL
		}
		trimmed := strings.TrimSpace(sql)
		if strings.HasPrefix(strings.ToUpper(trimmed), "EXPLAIN") {
			continue // already an EXPLAIN; re-wrapping is rejected by design
		}
		if _, err := db.Query("EXPLAIN " + trimmed); err != nil {
			// CREATE TABLE seeds collide with the installed schema only at
			// execution; planning must still succeed.
			t.Errorf("EXPLAIN %q: %v", sql, err)
			continue
		}
		if _, ok := st.(*reldb.SelectStmt); !ok {
			continue
		}
		selects++
		plan, err := db.Explain(trimmed, true)
		if err != nil {
			t.Errorf("EXPLAIN ANALYZE %q: %v", sql, err)
			continue
		}
		ok := true
		plan.Walk(func(p *reldb.PlanNode, _ int) {
			if p.Actual == nil {
				ok = false
			}
		})
		if !ok {
			t.Errorf("EXPLAIN ANALYZE %q: operators missing actuals", sql)
			continue
		}
		analyzed++
	}
	if selects < 30 {
		t.Fatalf("corpus yielded only %d SELECTs; harvest looks broken", selects)
	}
	if analyzed != selects {
		t.Fatalf("only %d/%d corpus SELECTs produced full actuals", analyzed, selects)
	}
	t.Logf("EXPLAIN ANALYZE over corpus: %d SELECTs, all with actuals", analyzed)
}
