package reldb

import "strings"

// Fingerprint returns the normalized identity of a SQL statement for
// statement-statistics aggregation: literals (numbers and strings) are
// replaced with '?', keywords are upper-cased, identifiers lower-cased,
// whitespace is canonicalized to single spaces, and trailing semicolons are
// dropped. Statements that differ only in literal values or layout share a
// fingerprint; statements with different shapes never do. Input that does
// not lex falls back to plain whitespace collapse so every string gets
// *some* stable fingerprint.
func Fingerprint(sql string) string {
	toks, err := lex(sql)
	if err != nil {
		return strings.Join(strings.Fields(sql), " ")
	}
	var b strings.Builder
	b.Grow(len(sql))
	prev := ""
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		var text string
		switch t.kind {
		case tokKeyword:
			text = t.text
		case tokIdent:
			text = strings.ToLower(t.text)
		case tokNumber, tokString:
			text = "?"
		default:
			text = t.text
		}
		if text == ";" {
			continue
		}
		if b.Len() > 0 && !fpNoSpaceBefore(text) && !fpNoSpaceAfter(prev) {
			b.WriteByte(' ')
		}
		b.WriteString(text)
		prev = text
	}
	return b.String()
}

// fpNoSpaceBefore lists tokens that attach to the preceding token, so
// "COUNT ( * )" renders as "COUNT(*)" and "a , b" as "a, b".
func fpNoSpaceBefore(t string) bool {
	switch t {
	case ",", ")", ".", "(":
		return true
	}
	return false
}

func fpNoSpaceAfter(t string) bool {
	return t == "(" || t == "."
}
