package reldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property test: SELECT with WHERE over a random table must agree with a
// direct Go evaluation of the same predicate (the engine as its own oracle).
func TestSelectWhereMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	db := New()
	db.MustExec(`CREATE TABLE p (a INTEGER, b INTEGER, s TEXT)`)
	type row struct {
		a, b int64
		s    string
	}
	var data []row
	labels := []string{"x", "y", "z", "xy"}
	var bulk [][]Value
	for i := 0; i < 2000; i++ {
		rw := row{a: int64(r.Intn(100)), b: int64(r.Intn(100) - 50), s: labels[r.Intn(len(labels))]}
		data = append(data, rw)
		bulk = append(bulk, []Value{Int(rw.a), Int(rw.b), Text(rw.s)})
	}
	if err := db.BulkInsert("p", bulk); err != nil {
		t.Fatal(err)
	}
	preds := []struct {
		sql string
		fn  func(row) bool
	}{
		{`a < 50`, func(r row) bool { return r.a < 50 }},
		{`a >= b`, func(r row) bool { return r.a >= r.b }},
		{`a + b > 40`, func(r row) bool { return r.a+r.b > 40 }},
		{`s = 'x'`, func(r row) bool { return r.s == "x" }},
		{`s LIKE 'x%'`, func(r row) bool { return r.s == "x" || r.s == "xy" }},
		{`a BETWEEN 10 AND 20 AND s != 'z'`, func(r row) bool { return r.a >= 10 && r.a <= 20 && r.s != "z" }},
		{`a IN (1, 2, 3) OR b < -40`, func(r row) bool { return r.a == 1 || r.a == 2 || r.a == 3 || r.b < -40 }},
		{`NOT (a = 0)`, func(r row) bool { return r.a != 0 }},
	}
	for _, p := range preds {
		rows := db.MustQuery(`SELECT COUNT(*) FROM p WHERE ` + p.sql)
		got, _ := rows.Rows[0][0].AsInt()
		want := int64(0)
		for _, rw := range data {
			if p.fn(rw) {
				want++
			}
		}
		if got != want {
			t.Errorf("WHERE %s: engine %d vs oracle %d", p.sql, got, want)
		}
	}
}

// Property test: GROUP BY aggregates agree with a direct Go aggregation.
func TestGroupByMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(999))
	db := New()
	db.MustExec(`CREATE TABLE g (k TEXT, v INTEGER)`)
	sums := map[string]int64{}
	counts := map[string]int64{}
	var bulk [][]Value
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%d", r.Intn(25))
		v := int64(r.Intn(1000))
		sums[k] += v
		counts[k]++
		bulk = append(bulk, []Value{Text(k), Int(v)})
	}
	if err := db.BulkInsert("g", bulk); err != nil {
		t.Fatal(err)
	}
	rows := db.MustQuery(`SELECT k, COUNT(*), SUM(v) FROM g GROUP BY k`)
	if rows.Len() != len(sums) {
		t.Fatalf("groups = %d, want %d", rows.Len(), len(sums))
	}
	for _, rw := range rows.Rows {
		k, _ := rw[0].AsText()
		n, _ := rw[1].AsInt()
		s, _ := rw[2].AsInt()
		if n != counts[k] || s != sums[k] {
			t.Errorf("group %s: engine (%d,%d) vs oracle (%d,%d)", k, n, s, counts[k], sums[k])
		}
	}
}

// Property test: hash join equals nested-loop join (forced via an
// inequality wrapper that defeats the equi-join detector).
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	db := New()
	db.MustExec(`CREATE TABLE ja (id INTEGER, x INTEGER)`)
	db.MustExec(`CREATE TABLE jb (id INTEGER, y INTEGER)`)
	var ba, bb [][]Value
	for i := 0; i < 400; i++ {
		ba = append(ba, []Value{Int(int64(r.Intn(100))), Int(int64(i))})
		bb = append(bb, []Value{Int(int64(r.Intn(100))), Int(int64(i))})
	}
	if err := db.BulkInsert("ja", ba); err != nil {
		t.Fatal(err)
	}
	if err := db.BulkInsert("jb", bb); err != nil {
		t.Fatal(err)
	}
	hash := db.MustQuery(`SELECT COUNT(*) FROM ja a JOIN jb b ON a.id = b.id`)
	// ">= AND <=" is the same predicate but not recognized as an equi-join.
	loop := db.MustQuery(`SELECT COUNT(*) FROM ja a JOIN jb b ON a.id >= b.id AND a.id <= b.id`)
	h, _ := hash.Rows[0][0].AsInt()
	l, _ := loop.Rows[0][0].AsInt()
	if h != l {
		t.Errorf("hash join %d vs nested loop %d", h, l)
	}
	if h == 0 {
		t.Error("join produced nothing; data degenerate")
	}
}
