package reldb

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is the parse-time view of a database: lower-cased table names
// mapped to their lower-cased column names in declaration order. It is the
// contract between the canonical DDL (internal/core.SchemaTables) and
// static tooling: ValidateStatement checks a parsed statement against a
// Schema without ever touching a live DB.
type Schema map[string][]string

// Clone returns a deep copy, so callers can extend a base schema with
// dynamically created tables without mutating the original.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	for t, cols := range s {
		out[t] = append([]string(nil), cols...)
	}
	return out
}

// AddCreate records st's table in the schema, mirroring what executing the
// DDL would create.
func (s Schema) AddCreate(st *CreateTableStmt) {
	cols := make([]string, len(st.Cols))
	for i, c := range st.Cols {
		cols[i] = strings.ToLower(c.Name)
	}
	s[strings.ToLower(st.Name)] = cols
}

func (s Schema) hasColumn(table, col string) bool {
	for _, c := range s[strings.ToLower(table)] {
		if c == strings.ToLower(col) {
			return true
		}
	}
	return false
}

// ValidateStatement checks every table and column reference in a parsed
// statement against schema, returning one message per inconsistency. It is
// purely static — expressions are not evaluated, only resolved — and is the
// semantic half of "parse-only validation": ParseStatement proves the SQL
// is well-formed, ValidateStatement proves it still matches the schema.
func ValidateStatement(st Statement, schema Schema) []string {
	if ex, ok := st.(*ExplainStmt); ok {
		// EXPLAIN is transparent to validation: the wrapped statement's
		// references are what must hold against the schema.
		return ValidateStatement(ex.Stmt, schema)
	}
	v := &validator{schema: schema}
	switch s := st.(type) {
	case *CreateTableStmt:
		// Defines a table; nothing to resolve.
	case *CreateIndexStmt:
		if v.table(s.Table) {
			if !schema.hasColumn(s.Table, s.Column) {
				v.errf("table %q has no column %q", s.Table, s.Column)
			}
		}
	case *DropTableStmt:
		if !s.IfExists {
			v.table(s.Name)
		}
	case *InsertStmt:
		v.insert(s)
	case *DeleteStmt:
		if v.table(s.Table) {
			v.pushScope(TableRef{Name: s.Table}, nil)
			v.expr(s.Where)
		}
	case *UpdateStmt:
		v.update(s)
	case *SelectStmt:
		v.selectStmt(s)
	}
	sort.Strings(v.issues)
	return v.issues
}

type validator struct {
	schema Schema
	issues []string
	// scope maps visible labels (table names or aliases, lower-cased) to
	// table names; aliases lists select-item aliases valid in expressions.
	scope   map[string]string
	aliases map[string]bool
}

func (v *validator) errf(format string, args ...any) {
	v.issues = append(v.issues, fmt.Sprintf(format, args...))
}

// table checks the table exists, reporting otherwise.
func (v *validator) table(name string) bool {
	if _, ok := v.schema[strings.ToLower(name)]; ok {
		return true
	}
	v.errf("unknown table %q", name)
	return false
}

func (v *validator) pushScope(from TableRef, joins []JoinClause) {
	v.scope = map[string]string{}
	add := func(r TableRef) {
		if v.table(r.Name) {
			v.scope[strings.ToLower(r.label())] = strings.ToLower(r.Name)
		}
	}
	add(from)
	for _, j := range joins {
		add(j.Table)
	}
}

func (v *validator) insert(s *InsertStmt) {
	if !v.table(s.Table) {
		return
	}
	cols := v.schema[strings.ToLower(s.Table)]
	width := len(cols)
	if len(s.Columns) > 0 {
		width = len(s.Columns)
		for _, c := range s.Columns {
			if !v.schema.hasColumn(s.Table, c) {
				v.errf("table %q has no column %q", s.Table, c)
			}
		}
	}
	for i, row := range s.Rows {
		if len(row) != width {
			v.errf("INSERT row %d has %d values, expected %d", i+1, len(row), width)
		}
	}
}

func (v *validator) update(s *UpdateStmt) {
	if !v.table(s.Table) {
		return
	}
	for _, set := range s.Sets {
		if !v.schema.hasColumn(s.Table, set.Column) {
			v.errf("table %q has no column %q", s.Table, set.Column)
		}
	}
	v.pushScope(TableRef{Name: s.Table}, nil)
	for _, set := range s.Sets {
		v.expr(set.Value)
	}
	v.expr(s.Where)
}

func (v *validator) selectStmt(s *SelectStmt) {
	if s.From == nil {
		// SELECT <exprs> without FROM: only literal/function expressions
		// make sense; column refs cannot resolve.
		for _, item := range s.Items {
			v.expr(item.Expr)
		}
		return
	}
	v.pushScope(*s.From, s.Joins)
	v.aliases = map[string]bool{}
	for _, item := range s.Items {
		if item.Alias != "" {
			v.aliases[strings.ToLower(item.Alias)] = true
		}
	}
	for _, item := range s.Items {
		if item.Star {
			if item.Table != "" {
				if _, ok := v.scope[strings.ToLower(item.Table)]; !ok {
					v.errf("unknown table or alias %q", item.Table)
				}
			}
			continue
		}
		v.expr(item.Expr)
	}
	for _, j := range s.Joins {
		v.expr(j.On)
	}
	v.expr(s.Where)
	for _, e := range s.GroupBy {
		v.expr(e)
	}
	v.expr(s.Having)
	for _, o := range s.OrderBy {
		v.expr(o.Expr)
	}
}

// colRef resolves one column reference against the current scope.
func (v *validator) colRef(c *ColRef) {
	if v.scope == nil {
		v.errf("column %q referenced without a FROM clause", c.Name)
		return
	}
	if c.Table != "" {
		table, ok := v.scope[strings.ToLower(c.Table)]
		if !ok {
			v.errf("unknown table or alias %q", c.Table)
			return
		}
		if !v.schema.hasColumn(table, c.Name) {
			v.errf("table %q has no column %q", table, c.Name)
		}
		return
	}
	if v.aliases[strings.ToLower(c.Name)] {
		return
	}
	matches := 0
	for _, table := range v.scope {
		if v.schema.hasColumn(table, c.Name) {
			matches++
		}
	}
	switch {
	case matches == 0:
		v.errf("no table in scope has column %q", c.Name)
	case matches > 1 && len(v.scope) > 1:
		v.errf("column %q is ambiguous across joined tables", c.Name)
	}
}

func (v *validator) expr(e Expr) {
	switch x := e.(type) {
	case nil, *Lit:
	case *ColRef:
		v.colRef(x)
	case *Unary:
		v.expr(x.X)
	case *Binary:
		v.expr(x.L)
		v.expr(x.R)
	case *InExpr:
		v.expr(x.X)
		for _, a := range x.List {
			v.expr(a)
		}
	case *IsNullExpr:
		v.expr(x.X)
	case *BetweenExpr:
		v.expr(x.X)
		v.expr(x.Lo)
		v.expr(x.Hi)
	case *Call:
		for _, a := range x.Args {
			v.expr(a)
		}
	}
}
