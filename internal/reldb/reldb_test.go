package reldb

import (
	"strings"
	"testing"
)

// testDB builds a small two-table database used across tests.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE asn_name (asn INTEGER, asn_name TEXT, source TEXT)`)
	db.MustExec(`CREATE TABLE asn_loc (asn INTEGER, city TEXT, country TEXT, remote BOOLEAN, lat REAL)`)
	db.MustExec(`INSERT INTO asn_name (asn, asn_name, source) VALUES
		(174, 'COGENT-174', 'asrank'),
		(174, 'cogent', 'peeringdb'),
		(2686, 'ATGS-MMD-AS', 'asrank'),
		(2686, 'as-ignemea', 'peeringdb'),
		(13335, 'CLOUDFLARENET', 'asrank')`)
	db.MustExec(`INSERT INTO asn_loc (asn, city, country, remote, lat) VALUES
		(174, 'Paris', 'FR', FALSE, 48.85),
		(174, 'Atlanta', 'US', FALSE, 33.75),
		(2686, 'Amsterdam', 'NL', TRUE, 52.37),
		(13335, 'Paris', 'FR', FALSE, 48.85),
		(13335, 'Singapore', 'SG', FALSE, 1.35),
		(64512, 'Nowhere', 'XX', FALSE, 0.0)`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`SELECT asn, asn_name FROM asn_name WHERE source = 'asrank' ORDER BY asn`)
	if rows.Len() != 3 {
		t.Fatalf("got %d rows", rows.Len())
	}
	if v, _ := rows.Rows[0][0].AsInt(); v != 174 {
		t.Errorf("first asn = %v", rows.Rows[0][0])
	}
	if s, _ := rows.Rows[2][1].AsText(); s != "CLOUDFLARENET" {
		t.Errorf("last name = %v", rows.Rows[2][1])
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`SELECT * FROM asn_loc LIMIT 2`)
	if len(rows.Columns) != 5 || rows.Len() != 2 {
		t.Fatalf("columns=%v rows=%d", rows.Columns, rows.Len())
	}
	if rows.Col("country") != 2 {
		t.Errorf("country column at %d", rows.Col("country"))
	}
}

func TestQualifiedStar(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`SELECT n.* FROM asn_name n JOIN asn_loc l ON n.asn = l.asn LIMIT 1`)
	if len(rows.Columns) != 3 {
		t.Errorf("n.* should have 3 columns, got %v", rows.Columns)
	}
}

func TestWhereOperators(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{`asn = 174`, 2},
		{`asn != 174`, 4},
		{`asn <> 174`, 4},
		{`asn > 2686`, 3},
		{`asn >= 2686`, 4},
		{`lat < 10`, 2},
		{`lat <= 1.35`, 2},
		{`city LIKE 'P%'`, 2},
		{`city LIKE '%apore'`, 1},
		{`city LIKE '_aris'`, 2},
		{`city NOT LIKE 'P%'`, 4},
		{`country IN ('FR', 'SG')`, 3},
		{`country NOT IN ('FR', 'SG')`, 3},
		{`asn BETWEEN 174 AND 2686`, 3},
		{`asn NOT BETWEEN 174 AND 2686`, 3},
		{`remote = TRUE`, 1},
		{`NOT remote`, 5},
		{`country = 'FR' AND asn = 174`, 1},
		{`country = 'FR' OR country = 'SG'`, 3},
		{`lat BETWEEN 0 AND 90 AND (country = 'FR' OR remote)`, 3},
	}
	for _, c := range cases {
		rows := db.MustQuery(`SELECT * FROM asn_loc WHERE ` + c.where)
		if rows.Len() != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, rows.Len(), c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER, b TEXT)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL)`)
	if got := db.MustQuery(`SELECT * FROM t WHERE a = NULL`).Len(); got != 0 {
		t.Errorf("= NULL matched %d rows, want 0", got)
	}
	if got := db.MustQuery(`SELECT * FROM t WHERE a IS NULL`).Len(); got != 1 {
		t.Errorf("IS NULL matched %d", got)
	}
	if got := db.MustQuery(`SELECT * FROM t WHERE a IS NOT NULL`).Len(); got != 2 {
		t.Errorf("IS NOT NULL matched %d", got)
	}
	// COUNT(col) skips NULLs, COUNT(*) does not.
	rows := db.MustQuery(`SELECT COUNT(*), COUNT(a), COUNT(b) FROM t`)
	star, _ := rows.Rows[0][0].AsInt()
	ca, _ := rows.Rows[0][1].AsInt()
	cb, _ := rows.Rows[0][2].AsInt()
	if star != 3 || ca != 2 || cb != 2 {
		t.Errorf("counts = %d,%d,%d want 3,2,2", star, ca, cb)
	}
	// NULL in IN list: unknown, not matched.
	if got := db.MustQuery(`SELECT * FROM t WHERE a IN (99, NULL)`).Len(); got != 0 {
		t.Errorf("IN with NULL matched %d", got)
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`
		SELECT country, COUNT(*) AS n, MIN(asn) AS lo, MAX(asn) AS hi
		FROM asn_loc GROUP BY country ORDER BY n DESC, country`)
	if rows.Len() != 5 {
		t.Fatalf("got %d groups", rows.Len())
	}
	// FR has 2 rows.
	first := rows.Rows[0]
	if s, _ := first[0].AsText(); s != "FR" {
		t.Errorf("top group = %v", first[0])
	}
	if n, _ := first[1].AsInt(); n != 2 {
		t.Errorf("FR count = %v", first[1])
	}
	if lo, _ := first[2].AsInt(); lo != 174 {
		t.Errorf("FR min asn = %v", first[2])
	}
	if hi, _ := first[3].AsInt(); hi != 13335 {
		t.Errorf("FR max asn = %v", first[3])
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`SELECT COUNT(DISTINCT country) FROM asn_loc`)
	if n, _ := rows.Rows[0][0].AsInt(); n != 5 {
		t.Errorf("distinct countries = %v, want 5", n)
	}
	rows = db.MustQuery(`SELECT asn, COUNT(DISTINCT country) AS c FROM asn_loc GROUP BY asn ORDER BY c DESC LIMIT 1`)
	if n, _ := rows.Rows[0][1].AsInt(); n != 2 {
		t.Errorf("max countries per asn = %v, want 2", n)
	}
}

func TestSumAvg(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE v (x INTEGER, f REAL)`)
	db.MustExec(`INSERT INTO v VALUES (1, 0.5), (2, 1.5), (3, NULL)`)
	rows := db.MustQuery(`SELECT SUM(x), AVG(x), SUM(f), AVG(f) FROM v`)
	if n, _ := rows.Rows[0][0].AsInt(); n != 6 {
		t.Errorf("SUM(x) = %v", rows.Rows[0][0])
	}
	if f, _ := rows.Rows[0][1].AsFloat(); f != 2 {
		t.Errorf("AVG(x) = %v", rows.Rows[0][1])
	}
	if f, _ := rows.Rows[0][2].AsFloat(); f != 2 {
		t.Errorf("SUM(f) = %v", rows.Rows[0][2])
	}
	if f, _ := rows.Rows[0][3].AsFloat(); f != 1 {
		t.Errorf("AVG(f) skipping NULL = %v", rows.Rows[0][3])
	}
}

func TestEmptyAggregates(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE empty (x INTEGER)`)
	rows := db.MustQuery(`SELECT COUNT(*), SUM(x), MIN(x) FROM empty`)
	if rows.Len() != 1 {
		t.Fatal("aggregate over empty table must yield one row")
	}
	if n, _ := rows.Rows[0][0].AsInt(); n != 0 {
		t.Errorf("COUNT(*) = %v", rows.Rows[0][0])
	}
	if !rows.Rows[0][1].IsNull() || !rows.Rows[0][2].IsNull() {
		t.Error("SUM/MIN over empty set must be NULL")
	}
}

func TestHaving(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`
		SELECT city, COUNT(*) AS n FROM asn_loc
		GROUP BY city HAVING COUNT(*) > 1`)
	if rows.Len() != 1 {
		t.Fatalf("got %d rows", rows.Len())
	}
	if s, _ := rows.Rows[0][0].AsText(); s != "Paris" {
		t.Errorf("city = %v", rows.Rows[0][0])
	}
}

func TestInnerJoin(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`
		SELECT n.asn_name, l.city FROM asn_name n
		JOIN asn_loc l ON n.asn = l.asn
		WHERE n.source = 'asrank' ORDER BY n.asn_name, l.city`)
	// 174→2 cities, 2686→1, 13335→2 = 5 rows
	if rows.Len() != 5 {
		t.Fatalf("got %d rows, want 5", rows.Len())
	}
	if s, _ := rows.Rows[0][0].AsText(); s != "ATGS-MMD-AS" {
		t.Errorf("first row name = %v", rows.Rows[0][0])
	}
}

func TestLeftJoin(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`
		SELECT l.asn, n.asn_name FROM asn_loc l
		LEFT JOIN asn_name n ON l.asn = n.asn AND n.source = 'asrank'
		WHERE l.city = 'Nowhere'`)
	if rows.Len() != 1 {
		t.Fatalf("got %d rows", rows.Len())
	}
	if !rows.Rows[0][1].IsNull() {
		t.Errorf("unmatched left join should have NULL name, got %v", rows.Rows[0][1])
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := testDB(t)
	db.MustExec(`CREATE TABLE asn_org (asn INTEGER, org TEXT)`)
	db.MustExec(`INSERT INTO asn_org VALUES (174, 'Cogent Communications'), (13335, 'Cloudflare, Inc.')`)
	rows := db.MustQuery(`
		SELECT o.org, l.city, n.asn_name
		FROM asn_org o
		JOIN asn_loc l ON o.asn = l.asn
		JOIN asn_name n ON o.asn = n.asn
		WHERE n.source = 'peeringdb' ORDER BY o.org, l.city`)
	// cogent: 2 cities; cloudflare has no peeringdb name row => only cogent rows
	if rows.Len() != 2 {
		t.Fatalf("got %d rows, want 2", rows.Len())
	}
	if s, _ := rows.Rows[0][2].AsText(); s != "cogent" {
		t.Errorf("name = %v", rows.Rows[0][2])
	}
}

func TestNonEquiJoinFallsBackToNestedLoop(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE a (x INTEGER)`)
	db.MustExec(`CREATE TABLE b (y INTEGER)`)
	db.MustExec(`INSERT INTO a VALUES (1), (2), (3)`)
	db.MustExec(`INSERT INTO b VALUES (2), (3)`)
	rows := db.MustQuery(`SELECT a.x, b.y FROM a JOIN b ON a.x < b.y ORDER BY a.x, b.y`)
	// pairs: (1,2),(1,3),(2,3)
	if rows.Len() != 3 {
		t.Fatalf("got %d rows, want 3", rows.Len())
	}
}

func TestCrossJoin(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE a (x INTEGER)`)
	db.MustExec(`CREATE TABLE b (y INTEGER)`)
	db.MustExec(`INSERT INTO a VALUES (1), (2)`)
	db.MustExec(`INSERT INTO b VALUES (10), (20), (30)`)
	rows := db.MustQuery(`SELECT x, y FROM a CROSS JOIN b`)
	if rows.Len() != 6 {
		t.Fatalf("cross join gave %d rows, want 6", rows.Len())
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`SELECT DISTINCT country FROM asn_loc ORDER BY country`)
	if rows.Len() != 5 {
		t.Errorf("distinct countries = %d", rows.Len())
	}
}

func TestOrderByDescAndOrdinal(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery(`SELECT asn, city FROM asn_loc ORDER BY 1 DESC, 2 ASC LIMIT 3`)
	if n, _ := rows.Rows[0][0].AsInt(); n != 64512 {
		t.Errorf("first = %v", rows.Rows[0][0])
	}
	// ORDER BY alias.
	rows = db.MustQuery(`SELECT asn AS a FROM asn_loc ORDER BY a LIMIT 1`)
	if n, _ := rows.Rows[0][0].AsInt(); n != 174 {
		t.Errorf("alias order first = %v", rows.Rows[0][0])
	}
}

func TestLimitOffset(t *testing.T) {
	db := testDB(t)
	all := db.MustQuery(`SELECT asn FROM asn_loc ORDER BY asn`)
	page := db.MustQuery(`SELECT asn FROM asn_loc ORDER BY asn LIMIT 2 OFFSET 2`)
	if page.Len() != 2 {
		t.Fatalf("page len %d", page.Len())
	}
	if !Equal(page.Rows[0][0], all.Rows[2][0]) {
		t.Error("offset skipped wrong rows")
	}
	// Offset beyond end.
	if got := db.MustQuery(`SELECT asn FROM asn_loc LIMIT 5 OFFSET 100`).Len(); got != 0 {
		t.Errorf("offset past end gave %d rows", got)
	}
}

func TestExpressionSelect(t *testing.T) {
	db := New()
	rows := db.MustQuery(`SELECT 1 + 2 * 3 AS v, 'a' || 'b' AS s, 10 / 4, 10.0 / 4`)
	if n, _ := rows.Rows[0][0].AsInt(); n != 7 {
		t.Errorf("1+2*3 = %v", rows.Rows[0][0])
	}
	if s, _ := rows.Rows[0][1].AsText(); s != "ab" {
		t.Errorf("concat = %v", rows.Rows[0][1])
	}
	if n, _ := rows.Rows[0][2].AsInt(); n != 2 {
		t.Errorf("int div = %v", rows.Rows[0][2])
	}
	if f, _ := rows.Rows[0][3].AsFloat(); f != 2.5 {
		t.Errorf("float div = %v", rows.Rows[0][3])
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	db := New()
	rows := db.MustQuery(`SELECT 1 / 0, 1.0 / 0`)
	if !rows.Rows[0][0].IsNull() || !rows.Rows[0][1].IsNull() {
		t.Error("division by zero should be NULL")
	}
}

func TestScalarFunctions(t *testing.T) {
	db := New()
	rows := db.MustQuery(`SELECT UPPER('abc'), LOWER('ABC'), LENGTH('hello'),
		SUBSTR('hostname', 1, 4), ABS(-5), ROUND(3.14159, 2), COALESCE(NULL, NULL, 7), IIF(1 > 0, 'y', 'n')`)
	r := rows.Rows[0]
	checks := []string{"ABC", "abc", "5", "host", "5", "3.14", "7", "y"}
	for i, want := range checks {
		if s, _ := r[i].AsText(); s != want {
			t.Errorf("func %d = %q, want %q", i, s, want)
		}
	}
}

func TestRegisterFunc(t *testing.T) {
	db := New()
	db.RegisterFunc("double", func(args []Value) (Value, error) {
		n, _ := args[0].AsInt()
		return Int(n * 2), nil
	})
	rows := db.MustQuery(`SELECT DOUBLE(21)`)
	if n, _ := rows.Rows[0][0].AsInt(); n != 42 {
		t.Errorf("custom func = %v", rows.Rows[0][0])
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	db := testDB(t)
	n, err := db.Exec(`DELETE FROM asn_loc WHERE country = 'XX'`)
	if err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	if got := db.MustQuery(`SELECT * FROM asn_loc`).Len(); got != 5 {
		t.Errorf("rows after delete = %d", got)
	}
	n, err = db.Exec(`UPDATE asn_loc SET remote = TRUE WHERE country = 'FR'`)
	if err != nil || n != 2 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	if got := db.MustQuery(`SELECT * FROM asn_loc WHERE remote`).Len(); got != 3 {
		t.Errorf("remote rows = %d", got)
	}
}

func TestDropTable(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`DROP TABLE asn_name`); err != nil {
		t.Fatal(err)
	}
	if db.Table("asn_name") != nil {
		t.Error("table should be gone")
	}
	if _, err := db.Exec(`DROP TABLE asn_name`); err == nil {
		t.Error("double drop should fail")
	}
	if _, err := db.Exec(`DROP TABLE IF EXISTS asn_name`); err != nil {
		t.Errorf("IF EXISTS should be quiet: %v", err)
	}
}

func TestIndexedJoinMatchesUnindexed(t *testing.T) {
	db := testDB(t)
	before := db.MustQuery(`SELECT n.asn_name, l.city FROM asn_name n JOIN asn_loc l ON n.asn = l.asn ORDER BY 1, 2`)
	db.MustExec(`CREATE INDEX ON asn_loc (asn)`)
	after := db.MustQuery(`SELECT n.asn_name, l.city FROM asn_name n JOIN asn_loc l ON n.asn = l.asn ORDER BY 1, 2`)
	if before.Len() != after.Len() {
		t.Fatalf("index changed results: %d vs %d", before.Len(), after.Len())
	}
	for i := range before.Rows {
		for j := range before.Rows[i] {
			if !Equal(before.Rows[i][j], after.Rows[i][j]) {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestBulkInsert(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER, b TEXT)`)
	err := db.BulkInsert("t", [][]Value{
		{Int(1), Text("x")},
		{Int(2), Text("y")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.MustQuery(`SELECT COUNT(*) FROM t`); mustInt(got.Rows[0][0]) != 2 {
		t.Error("bulk insert lost rows")
	}
	if err := db.BulkInsert("t", [][]Value{{Int(1)}}); err == nil {
		t.Error("width mismatch should error")
	}
	if err := db.BulkInsert("missing", nil); err == nil {
		t.Error("missing table should error")
	}
}

func mustInt(v Value) int64 {
	n, _ := v.AsInt()
	return n
}

func TestInsertColumnSubset(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER, b TEXT, c REAL)`)
	db.MustExec(`INSERT INTO t (b) VALUES ('only-b')`)
	rows := db.MustQuery(`SELECT a, b, c FROM t`)
	if !rows.Rows[0][0].IsNull() || !rows.Rows[0][2].IsNull() {
		t.Error("unspecified columns should be NULL")
	}
	if s, _ := rows.Rows[0][1].AsText(); s != "only-b" {
		t.Errorf("b = %v", rows.Rows[0][1])
	}
}

func TestTypeCoercion(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER, b REAL, c TEXT, d BOOLEAN)`)
	db.MustExec(`INSERT INTO t VALUES ('42', 7, 99, 1)`)
	rows := db.MustQuery(`SELECT a, b, c, d FROM t`)
	if n, _ := rows.Rows[0][0].AsInt(); n != 42 {
		t.Errorf("text→int coercion failed: %v", rows.Rows[0][0])
	}
	if f, _ := rows.Rows[0][1].AsFloat(); f != 7 {
		t.Errorf("int→real failed: %v", rows.Rows[0][1])
	}
	if s, _ := rows.Rows[0][2].AsText(); s != "99" {
		t.Errorf("int→text failed: %v", rows.Rows[0][2])
	}
	if b, _ := rows.Rows[0][3].AsBool(); !b {
		t.Errorf("int→bool failed: %v", rows.Rows[0][3])
	}
	// Lossy coercion rejected.
	if _, err := db.Exec(`INSERT INTO t (a) VALUES ('not-a-number')`); err == nil {
		t.Error("bad coercion should fail")
	}
	if _, err := db.Exec(`INSERT INTO t (a) VALUES (1.5)`); err == nil {
		t.Error("fractional float into INTEGER should fail")
	}
}

func TestErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		`SELECT * FROM missing`,
		`SELECT nope FROM asn_loc`,
		`SELECT asn FROM asn_name n JOIN asn_loc l ON n.asn = l.asn`, // ambiguous
		`INSERT INTO asn_loc (bogus) VALUES (1)`,
		`INSERT INTO missing VALUES (1)`,
		`CREATE TABLE asn_loc (x INTEGER)`,                // exists
		`SELECT COUNT(*) FROM asn_loc WHERE COUNT(*) > 1`, // aggregate in WHERE
		`SELECT FROM asn_loc`,
		`SELECT * FROM asn_loc WHERE`,
		`BOGUS STATEMENT`,
		`SELECT * FROM asn_loc; SELECT 1`, // trailing garbage
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			if _, err2 := db.Exec(q); err2 == nil {
				t.Errorf("query %q should fail", q)
			}
		}
	}
	if _, err := db.Exec(`SELECT 1`); err == nil {
		t.Error("Exec(SELECT) should direct caller to Query")
	}
	if _, err := db.Query(`DELETE FROM asn_loc`); err == nil {
		t.Error("Query(DELETE) should fail")
	}
}

func TestStringEscapes(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (s TEXT)`)
	db.MustExec(`INSERT INTO t VALUES ('it''s')`)
	rows := db.MustQuery(`SELECT s FROM t WHERE s = 'it''s'`)
	if rows.Len() != 1 {
		t.Fatal("escaped quote round-trip failed")
	}
	if s, _ := rows.Rows[0][0].AsText(); s != "it's" {
		t.Errorf("got %q", s)
	}
}

func TestComments(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery("SELECT asn -- trailing comment\nFROM asn_loc -- another\nWHERE country = 'FR'")
	if rows.Len() != 2 {
		t.Errorf("comment handling broke query: %d rows", rows.Len())
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "HELLO", true}, // case-insensitive
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false}, // wrong length, no wildcard to absorb it
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%b%c", true},
		{"axbyc", "a%b%c", true},
		{"cogentco.com", "%.cogentco.com", false},
		{"rcr21.atlas.cogentco.com", "%.cogentco.com", true},
	}
	for _, c := range cases {
		if got := like(c.s, c.p); got != c.want {
			t.Errorf("like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Int(1), -1},
		{Int(1), Null, 1},
		{Null, Null, 0},
		{Int(1), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(1.5), Float(1.5), 0},
		{Text("a"), Text("b"), -1},
		{Bool(false), Bool(true), -1},
		{Text("10"), Int(9), 1}, // numeric coercion
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if Equal(Null, Null) {
		t.Error("NULL must not equal NULL")
	}
}

func TestGroupByNullsGroupTogether(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (k TEXT, v INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (NULL, 1), (NULL, 2), ('a', 3)`)
	rows := db.MustQuery(`SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY 2 DESC`)
	if rows.Len() != 2 {
		t.Fatalf("got %d groups, want 2", rows.Len())
	}
	if n, _ := rows.Rows[0][1].AsInt(); n != 2 {
		t.Errorf("NULL group size = %v", rows.Rows[0][1])
	}
}

func TestTableNamesAndAccessors(t *testing.T) {
	db := testDB(t)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "asn_loc" {
		t.Errorf("TableNames = %v", names)
	}
	tbl := db.Table("ASN_LOC") // case-insensitive
	if tbl == nil || tbl.Len() != 6 {
		t.Error("Table accessor failed")
	}
	if tbl.ColumnIndex("CITY") != 1 || tbl.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex wrong")
	}
}

func TestLargeJoinPerformanceSanity(t *testing.T) {
	// A 20k x 20k equi-join must complete fast (hash join, not O(n²)).
	db := New()
	db.MustExec(`CREATE TABLE big_a (id INTEGER, v TEXT)`)
	db.MustExec(`CREATE TABLE big_b (id INTEGER, w TEXT)`)
	var rowsA, rowsB [][]Value
	for i := 0; i < 20000; i++ {
		rowsA = append(rowsA, []Value{Int(int64(i)), Text("a")})
		rowsB = append(rowsB, []Value{Int(int64(i)), Text("b")})
	}
	if err := db.BulkInsert("big_a", rowsA); err != nil {
		t.Fatal(err)
	}
	if err := db.BulkInsert("big_b", rowsB); err != nil {
		t.Fatal(err)
	}
	rows := db.MustQuery(`SELECT COUNT(*) FROM big_a a JOIN big_b b ON a.id = b.id`)
	if mustInt(rows.Rows[0][0]) != 20000 {
		t.Errorf("join count = %v", rows.Rows[0][0])
	}
}

func TestValueAccessors(t *testing.T) {
	if _, ok := Null.AsInt(); ok {
		t.Error("Null.AsInt should not be ok")
	}
	if s := Null.String(); s != "NULL" {
		t.Errorf("Null.String = %q", s)
	}
	if n, ok := Text(" 42 ").AsInt(); !ok || n != 42 {
		t.Error("text with spaces should parse to int")
	}
	if b, ok := Text("true").AsBool(); !ok || !b {
		t.Error("'true' should be truthy")
	}
	if f, ok := Bool(true).AsFloat(); !ok || f != 1 {
		t.Error("bool→float")
	}
	if s, _ := Float(2.5).AsText(); s != "2.5" {
		t.Errorf("float text = %q", s)
	}
	if !strings.HasPrefix(Type(99).String(), "TYPE(") {
		t.Error("unknown type string")
	}
}

func BenchmarkSelectWhere(b *testing.B) {
	db := New()
	db.MustExec(`CREATE TABLE t (id INTEGER, country TEXT)`)
	var rows [][]Value
	countries := []string{"US", "FR", "DE", "JP", "BR"}
	for i := 0; i < 50000; i++ {
		rows = append(rows, []Value{Int(int64(i)), Text(countries[i%5])})
	}
	if err := db.BulkInsert("t", rows); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustQuery(`SELECT COUNT(*) FROM t WHERE country = 'FR'`)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := New()
	db.MustExec(`CREATE TABLE a (id INTEGER)`)
	db.MustExec(`CREATE TABLE b2 (id INTEGER)`)
	var ra, rb [][]Value
	for i := 0; i < 10000; i++ {
		ra = append(ra, []Value{Int(int64(i))})
		rb = append(rb, []Value{Int(int64(i * 2))})
	}
	if err := db.BulkInsert("a", ra); err != nil {
		b.Fatal(err)
	}
	if err := db.BulkInsert("b2", rb); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustQuery(`SELECT COUNT(*) FROM a JOIN b2 ON a.id = b2.id`)
	}
}
