package reldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DB is an in-memory relational database. All methods are safe for
// concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table     // guarded by mu
	funcs  map[string]ScalarFunc // guarded by mu
}

// ScalarFunc is a Go-implemented SQL scalar function. iGDB registers
// geographic helpers (e.g. GEO_DIST) through RegisterFunc.
type ScalarFunc func(args []Value) (Value, error)

// New creates an empty database with the built-in scalar functions
// (UPPER, LOWER, LENGTH, SUBSTR, ABS, ROUND, COALESCE, IIF).
func New() *DB {
	db := &DB{tables: make(map[string]*Table), funcs: make(map[string]ScalarFunc)}
	registerBuiltins(db)
	return db
}

// RegisterFunc installs (or replaces) a scalar SQL function. Names are
// case-insensitive.
func (db *DB) RegisterFunc(name string, fn ScalarFunc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.funcs[strings.ToUpper(name)] = fn
}

// Table is one relation: a schema plus row storage and optional hash
// indexes.
type Table struct {
	Name    string
	Cols    []ColumnDef
	Rows    [][]Value
	colIdx  map[string]int
	indexes map[int]map[string][]int // column position -> value key -> row ids
}

func newTable(name string, cols []ColumnDef) (*Table, error) {
	t := &Table{
		Name:    name,
		Cols:    cols,
		colIdx:  make(map[string]int, len(cols)),
		indexes: make(map[int]map[string][]int),
	}
	for i, c := range cols {
		lower := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lower]; dup {
			return nil, fmt.Errorf("reldb: duplicate column %q in table %q", c.Name, name)
		}
		t.colIdx[lower] = i
	}
	return t, nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

func (t *Table) addIndex(col int) {
	if _, exists := t.indexes[col]; exists {
		return
	}
	idx := make(map[string][]int)
	for rowID, row := range t.Rows {
		k := row[col].key()
		idx[k] = append(idx[k], rowID)
	}
	t.indexes[col] = idx
}

func (t *Table) appendRow(row []Value) {
	rowID := len(t.Rows)
	t.Rows = append(t.Rows, row)
	for col, idx := range t.indexes {
		k := row[col].key()
		idx[k] = append(idx[k], rowID)
	}
}

// rebuildIndexes recreates all hash indexes after bulk deletion/update.
func (t *Table) rebuildIndexes() {
	for col := range t.indexes {
		idx := make(map[string][]int)
		for rowID, row := range t.Rows {
			k := row[col].key()
			idx[k] = append(idx[k], rowID)
		}
		t.indexes[col] = idx
	}
}

// Rows is a query result set.
type Rows struct {
	Columns []string
	Rows    [][]Value
}

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.Rows) }

// Col returns the index of the named output column, or -1.
func (r *Rows) Col(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Exec parses and runs a statement, returning the number of affected rows
// (for DML) or 0.
func (db *DB) Exec(sql string) (int, error) {
	st, err := ParseStatement(sql)
	if err != nil {
		return 0, err
	}
	switch s := st.(type) {
	case *SelectStmt:
		return 0, fmt.Errorf("reldb: use Query for SELECT")
	case *ExplainStmt:
		return 0, fmt.Errorf("reldb: use Query for EXPLAIN")
	case *CreateTableStmt:
		return 0, db.createTable(s)
	case *CreateIndexStmt:
		return 0, db.createIndex(s)
	case *DropTableStmt:
		return 0, db.dropTable(s)
	case *InsertStmt:
		return db.insert(s)
	case *DeleteStmt:
		return db.deleteRows(s)
	case *UpdateStmt:
		return db.updateRows(s)
	default:
		return 0, fmt.Errorf("reldb: unhandled statement %T", st)
	}
}

// MustExec runs Exec and panics on error; for setup code and tests.
func (db *DB) MustExec(sql string) int {
	n, err := db.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("reldb: %v\n  in: %s", err, sql))
	}
	return n
}

// Query parses and runs a SELECT, or an EXPLAIN [ANALYZE] of any statement
// (EXPLAIN output is the plan tree rendered as single-column text rows; use
// Explain for the structured tree).
func (db *DB) Query(sql string) (*Rows, error) {
	st, err := ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *SelectStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.execSelect(s)
	case *ExplainStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		plan, err := db.explainLocked(s)
		if err != nil {
			return nil, err
		}
		return plan.Rows(), nil
	default:
		return nil, fmt.Errorf("reldb: Query requires SELECT")
	}
}

// Explain plans sql (which may but need not carry an EXPLAIN prefix) and
// returns the structured plan tree. With analyze true the statement must be
// a SELECT; it is executed and the tree carries actual row counts and
// per-operator timings.
func (db *DB) Explain(sql string, analyze bool) (*PlanNode, error) {
	st, err := ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	ex, ok := st.(*ExplainStmt)
	if !ok {
		ex = &ExplainStmt{Stmt: st}
	}
	ex.Analyze = ex.Analyze || analyze
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.explainLocked(ex)
}

// MustQuery runs Query and panics on error.
func (db *DB) MustQuery(sql string) *Rows {
	r, err := db.Query(sql)
	if err != nil {
		panic(fmt.Sprintf("reldb: %v\n  in: %s", err, sql))
	}
	return r
}

// Table returns the named table (case-insensitive) or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// BulkInsert appends pre-built rows to a table without SQL parsing — the
// fast path the ETL pipeline uses. Each row must have one value per column;
// values are coerced to the column types.
func (db *DB) BulkInsert(table string, rows [][]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("reldb: no such table %q", table)
	}
	for _, row := range rows {
		if len(row) != len(t.Cols) {
			return fmt.Errorf("reldb: table %q has %d columns, row has %d", table, len(t.Cols), len(row))
		}
		stored := make([]Value, len(row))
		for i, v := range row {
			cv, err := coerce(v, t.Cols[i].Type)
			if err != nil {
				return fmt.Errorf("reldb: column %q: %v", t.Cols[i].Name, err)
			}
			stored[i] = cv
		}
		t.appendRow(stored)
	}
	return nil
}

func (db *DB) createTable(s *CreateTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, exists := db.tables[key]; exists {
		return fmt.Errorf("reldb: table %q already exists", s.Name)
	}
	t, err := newTable(s.Name, s.Cols)
	if err != nil {
		return err
	}
	db.tables[key] = t
	return nil
}

func (db *DB) createIndex(s *CreateIndexStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return fmt.Errorf("reldb: no such table %q", s.Table)
	}
	col := t.ColumnIndex(s.Column)
	if col < 0 {
		return fmt.Errorf("reldb: no column %q in table %q", s.Column, s.Table)
	}
	t.addIndex(col)
	return nil
}

func (db *DB) dropTable(s *DropTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := db.tables[key]; !ok {
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("reldb: no such table %q", s.Name)
	}
	delete(db.tables, key)
	return nil
}

func (db *DB) insert(s *InsertStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("reldb: no such table %q", s.Table)
	}
	// Map the insert column list to table positions.
	positions := make([]int, 0, len(t.Cols))
	if len(s.Columns) == 0 {
		for i := range t.Cols {
			positions = append(positions, i)
		}
	} else {
		for _, c := range s.Columns {
			i := t.ColumnIndex(c)
			if i < 0 {
				return 0, fmt.Errorf("reldb: no column %q in table %q", c, s.Table)
			}
			positions = append(positions, i)
		}
	}
	env := &evalEnv{db: db}
	inserted := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(positions) {
			return inserted, fmt.Errorf("reldb: INSERT expects %d values, got %d", len(positions), len(exprRow))
		}
		row := make([]Value, len(t.Cols))
		for i := range row {
			row[i] = Null
		}
		for i, e := range exprRow {
			v, err := env.eval(e)
			if err != nil {
				return inserted, err
			}
			cv, err := coerce(v, t.Cols[positions[i]].Type)
			if err != nil {
				return inserted, fmt.Errorf("reldb: column %q: %v", t.Cols[positions[i]].Name, err)
			}
			row[positions[i]] = cv
		}
		t.appendRow(row)
		inserted++
	}
	return inserted, nil
}

func (db *DB) deleteRows(s *DeleteStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("reldb: no such table %q", s.Table)
	}
	schema := newSchema()
	schema.addTable(t.Name, t)
	kept := t.Rows[:0]
	deleted := 0
	for _, row := range t.Rows {
		env := &evalEnv{db: db, schema: schema, row: row}
		match := true
		if s.Where != nil {
			v, err := env.eval(s.Where)
			if err != nil {
				return 0, err
			}
			b, _ := v.AsBool()
			match = b
		}
		if match {
			deleted++
		} else {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	t.rebuildIndexes()
	return deleted, nil
}

func (db *DB) updateRows(s *UpdateStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("reldb: no such table %q", s.Table)
	}
	// Resolve target columns first.
	targets := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		c := t.ColumnIndex(set.Column)
		if c < 0 {
			return 0, fmt.Errorf("reldb: no column %q in table %q", set.Column, s.Table)
		}
		targets[i] = c
	}
	schema := newSchema()
	schema.addTable(t.Name, t)
	updated := 0
	for rowID, row := range t.Rows {
		env := &evalEnv{db: db, schema: schema, row: row}
		match := true
		if s.Where != nil {
			v, err := env.eval(s.Where)
			if err != nil {
				return updated, err
			}
			b, _ := v.AsBool()
			match = b
		}
		if !match {
			continue
		}
		newRow := make([]Value, len(row))
		copy(newRow, row)
		for i, set := range s.Sets {
			v, err := env.eval(set.Value)
			if err != nil {
				return updated, err
			}
			cv, err := coerce(v, t.Cols[targets[i]].Type)
			if err != nil {
				return updated, err
			}
			newRow[targets[i]] = cv
		}
		t.Rows[rowID] = newRow
		updated++
	}
	if updated > 0 {
		t.rebuildIndexes()
	}
	return updated, nil
}
