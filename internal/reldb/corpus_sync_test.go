package reldb_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"igdb/internal/lint"
)

// corpusDir is FuzzParseStatement's seed corpus; `go test -run Fuzz` and
// `go test -fuzz` both replay every file in it.
const corpusDir = "testdata/fuzz/FuzzParseStatement"

// TestHarvestedFuzzCorpus keeps the fuzz seed corpus in sync with the SQL
// the codebase actually issues: every statement igdblint's harvester finds
// (reldb call arguments, *SQL consts, SQL-shaped literals) must exist as a
// committed harvested-<hash> seed file, and no stale harvested seeds may
// linger. On drift it fails with the exact delta; run with
// IGDB_UPDATE_FUZZ_CORPUS=1 to rewrite the files.
func TestHarvestedFuzzCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("harvesting loads and type-checks the whole module")
	}
	pkgs, fset, err := lint.Load([]string{"igdb/..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	want := map[string]string{} // filename -> seed file content
	for _, pkg := range pkgs {
		for _, use := range lint.HarvestSQL(pkg, fset) {
			sum := sha256.Sum256([]byte(use.SQL))
			name := "harvested-" + hex.EncodeToString(sum[:8])
			want[name] = fmt.Sprintf("go test fuzz v1\nstring(%q)\n", use.SQL)
		}
	}
	if len(want) == 0 {
		t.Fatal("harvested no SQL from the module; the lint harvester is broken")
	}

	got := map[string]string{}
	entries, err := os.ReadDir(corpusDir)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "harvested-") {
			continue // hand-written or fuzzer-found seeds are not managed here
		}
		data, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got[e.Name()] = string(data)
	}

	var missing, stale []string
	for name := range want {
		if got[name] != want[name] {
			missing = append(missing, name)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) == 0 && len(stale) == 0 {
		t.Logf("corpus in sync: %d harvested seeds", len(want))
		return
	}

	if os.Getenv("IGDB_UPDATE_FUZZ_CORPUS") == "" {
		t.Fatalf("fuzz seed corpus out of sync with harvested SQL (missing %d, stale %d).\nmissing: %v\nstale: %v\nRun: IGDB_UPDATE_FUZZ_CORPUS=1 go test ./internal/reldb -run TestHarvestedFuzzCorpus",
			len(missing), len(stale), missing, stale)
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range missing {
		if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(want[name]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range stale {
		if err := os.Remove(filepath.Join(corpusDir, name)); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("corpus updated: wrote %d, removed %d", len(missing), len(stale))
}
