package wkt

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"igdb/internal/geo"
)

func TestParsePoint(t *testing.T) {
	g, err := Parse("POINT (-3.7038 40.4168)")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != KindPoint || g.Point.Lon != -3.7038 || g.Point.Lat != 40.4168 {
		t.Errorf("got %+v", g)
	}
}

func TestParseLineString(t *testing.T) {
	g, err := Parse("LINESTRING (0 0, 1 1, 2 0)")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != KindLineString || len(g.Line) != 3 {
		t.Fatalf("got %+v", g)
	}
	if g.Line[2] != (geo.Point{Lon: 2, Lat: 0}) {
		t.Errorf("third point = %v", g.Line[2])
	}
}

func TestParsePolygonWithHole(t *testing.T) {
	g, err := Parse("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != KindPolygon || len(g.Rings) != 2 {
		t.Fatalf("got %+v", g)
	}
	if len(g.Rings[0]) != 5 || len(g.Rings[1]) != 5 {
		t.Errorf("ring lengths %d, %d", len(g.Rings[0]), len(g.Rings[1]))
	}
}

func TestParseMultiPointBothForms(t *testing.T) {
	a, err := Parse("MULTIPOINT ((1 2), (3 4))")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("MULTIPOINT (1 2, 3 4)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Errorf("forms disagree: %v vs %v", a.Points, b.Points)
	}
}

func TestParseMultiLineString(t *testing.T) {
	g, err := Parse("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Lines) != 2 || len(g.Lines[1]) != 3 {
		t.Errorf("got %+v", g.Lines)
	}
}

func TestParseMultiPolygon(t *testing.T) {
	g, err := Parse("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Polygons) != 2 {
		t.Errorf("got %d polygons", len(g.Polygons))
	}
}

func TestParseGeometryCollection(t *testing.T) {
	g, err := Parse("GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Geoms) != 2 || g.Geoms[0].Kind != KindPoint || g.Geoms[1].Kind != KindLineString {
		t.Errorf("got %+v", g.Geoms)
	}
}

func TestParseEmptyForms(t *testing.T) {
	for _, s := range []string{
		"POINT EMPTY", "LINESTRING EMPTY", "POLYGON EMPTY",
		"MULTIPOINT EMPTY", "MULTILINESTRING EMPTY", "MULTIPOLYGON EMPTY",
		"GEOMETRYCOLLECTION EMPTY",
	} {
		g, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if !g.Empty {
			t.Errorf("Parse(%q) not marked empty", s)
		}
		// Empty geometries round-trip.
		if got := Marshal(g); got != s {
			t.Errorf("Marshal(Parse(%q)) = %q", s, got)
		}
	}
}

func TestParseCaseInsensitiveAndWhitespace(t *testing.T) {
	g, err := Parse("  point(1   2)  ")
	if err != nil {
		t.Fatal(err)
	}
	if g.Point != (geo.Point{Lon: 1, Lat: 2}) {
		t.Errorf("got %v", g.Point)
	}
}

func TestParseScientificNotation(t *testing.T) {
	g, err := Parse("POINT (1e2 -2.5E-1)")
	if err != nil {
		t.Fatal(err)
	}
	if g.Point.Lon != 100 || g.Point.Lat != -0.25 {
		t.Errorf("got %v", g.Point)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"CIRCLE (1 2)",
		"POINT (1)",
		"POINT (1 2",
		"POINT (1 2) extra",
		"LINESTRING (1 2)",                     // too few points
		"POLYGON ((0 0, 1 0, 1 1))",            // too few ring points
		"POLYGON ((0 0, 1 0, 1 1, 2 2))",       // not closed
		"LINESTRING (a b, c d)",                // not numbers
		"GEOMETRYCOLLECTION (POINT (1 2)",      // unterminated
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0))", // unterminated
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	cases := []string{
		"POINT (-3.7038 40.4168)",
		"LINESTRING (0 0, 1 1, 2 0)",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
		"MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))",
		"GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))",
	}
	for _, s := range cases {
		g := MustParse(s)
		out := Marshal(g)
		g2 := MustParse(out)
		if !reflect.DeepEqual(g, g2) {
			t.Errorf("round trip of %q changed geometry", s)
		}
	}
}

func randomLine(r *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{
			Lon: math.Round(r.Float64()*36000-18000) / 100,
			Lat: math.Round(r.Float64()*18000-9000) / 100,
		}
	}
	return pts
}

func TestRoundTripPropertyLineString(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 2 + r.Intn(20)
		g := NewLineString(randomLine(r, n))
		g2, err := Parse(Marshal(g))
		return err == nil && reflect.DeepEqual(g, g2)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBBoxAndAllPoints(t *testing.T) {
	g := MustParse("MULTILINESTRING ((0 0, 10 5), (-5 -2, 3 3))")
	b := g.BBox()
	want := geo.BBox{MinLon: -5, MinLat: -2, MaxLon: 10, MaxLat: 5}
	if b != want {
		t.Errorf("bbox = %+v, want %+v", b, want)
	}
	if n := len(g.AllPoints()); n != 4 {
		t.Errorf("AllPoints len = %d, want 4", n)
	}
}

func TestAllPointsNestedCollection(t *testing.T) {
	g := MustParse("GEOMETRYCOLLECTION (GEOMETRYCOLLECTION (POINT (1 1)), POINT (2 2))")
	if n := len(g.AllPoints()); n != 2 {
		t.Errorf("nested collection AllPoints = %d, want 2", n)
	}
}

func TestKindString(t *testing.T) {
	if KindPolygon.String() != "POLYGON" {
		t.Error("KindPolygon name wrong")
	}
	if !strings.HasPrefix(Kind(99).String(), "KIND(") {
		t.Error("unknown kind should stringify defensively")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("NOT WKT")
}
