package wkt

import "testing"

// FuzzParse asserts the WKT parser never panics and that anything it
// accepts survives a Marshal→Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("POINT (1 2)")
	f.Add("POINT(-97.74 30.27)")
	f.Add("LINESTRING (0 0, 1 1, 2 0)")
	f.Add("LINESTRING(-1.5 -2.5,3 4)")
	f.Add("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	f.Add("POLYGON ((0 0, 10 0, 10 10, 0 0), (1 1, 2 1, 2 2, 1 1))")
	f.Add("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))")
	f.Add("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))")
	f.Add("GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))")
	f.Add("POINT EMPTY")
	f.Add("LINESTRING (0 0")
	f.Add("point (1 2)")
	f.Add("POINT (1e309 2)")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := Parse(s)
		if err != nil {
			return
		}
		if _, err := Parse(Marshal(g)); err != nil {
			t.Fatalf("round trip failed for %q: %v", s, err)
		}
	})
}
