// Package wkt parses and serializes geometries in the OGC Well-Known Text
// format, the interchange representation iGDB stores in its relational
// tables (the paper stores every physical geometry — city polygons, standard
// paths, submarine cables — as WKT strings).
//
// Supported geometry types: POINT, LINESTRING, POLYGON, MULTIPOINT,
// MULTILINESTRING, MULTIPOLYGON and GEOMETRYCOLLECTION, plus EMPTY forms.
// Coordinates are 2-D lon/lat.
package wkt

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"igdb/internal/geo"
)

// Kind enumerates the geometry types.
type Kind int

// Geometry kinds, mirroring the OGC type names.
const (
	KindPoint Kind = iota
	KindLineString
	KindPolygon
	KindMultiPoint
	KindMultiLineString
	KindMultiPolygon
	KindGeometryCollection
)

// String returns the OGC tag for the kind.
func (k Kind) String() string {
	switch k {
	case KindPoint:
		return "POINT"
	case KindLineString:
		return "LINESTRING"
	case KindPolygon:
		return "POLYGON"
	case KindMultiPoint:
		return "MULTIPOINT"
	case KindMultiLineString:
		return "MULTILINESTRING"
	case KindMultiPolygon:
		return "MULTIPOLYGON"
	case KindGeometryCollection:
		return "GEOMETRYCOLLECTION"
	default:
		return fmt.Sprintf("KIND(%d)", int(k))
	}
}

// Geometry is a parsed WKT geometry. Exactly the fields relevant to its Kind
// are populated:
//
//   - KindPoint: Point
//   - KindLineString: Line
//   - KindPolygon: Rings (first is the exterior ring)
//   - KindMultiPoint: Points
//   - KindMultiLineString: Lines
//   - KindMultiPolygon: Polygons
//   - KindGeometryCollection: Geoms
type Geometry struct {
	Kind     Kind
	Empty    bool
	Point    geo.Point
	Line     []geo.Point
	Rings    [][]geo.Point
	Points   []geo.Point
	Lines    [][]geo.Point
	Polygons [][][]geo.Point
	Geoms    []Geometry
}

// NewPoint wraps a point as a Geometry.
func NewPoint(p geo.Point) Geometry { return Geometry{Kind: KindPoint, Point: p} }

// NewLineString wraps a polyline as a Geometry.
func NewLineString(pts []geo.Point) Geometry {
	return Geometry{Kind: KindLineString, Line: pts, Empty: len(pts) == 0}
}

// NewPolygon wraps rings (exterior first) as a Geometry.
func NewPolygon(rings [][]geo.Point) Geometry {
	return Geometry{Kind: KindPolygon, Rings: rings, Empty: len(rings) == 0}
}

// NewMultiLineString wraps multiple polylines as a Geometry.
func NewMultiLineString(lines [][]geo.Point) Geometry {
	return Geometry{Kind: KindMultiLineString, Lines: lines, Empty: len(lines) == 0}
}

// BBox returns the geometry's bounding box over all coordinates.
func (g Geometry) BBox() geo.BBox {
	b := geo.EmptyBBox()
	for _, p := range g.AllPoints() {
		b = b.Extend(p)
	}
	return b
}

// AllPoints returns every coordinate in the geometry, in encounter order.
func (g Geometry) AllPoints() []geo.Point {
	var out []geo.Point
	switch g.Kind {
	case KindPoint:
		if !g.Empty {
			out = append(out, g.Point)
		}
	case KindLineString:
		out = append(out, g.Line...)
	case KindPolygon:
		for _, r := range g.Rings {
			out = append(out, r...)
		}
	case KindMultiPoint:
		out = append(out, g.Points...)
	case KindMultiLineString:
		for _, l := range g.Lines {
			out = append(out, l...)
		}
	case KindMultiPolygon:
		for _, poly := range g.Polygons {
			for _, r := range poly {
				out = append(out, r...)
			}
		}
	case KindGeometryCollection:
		for _, sub := range g.Geoms {
			out = append(out, sub.AllPoints()...)
		}
	}
	return out
}

// Marshal serializes the geometry to canonical WKT.
func Marshal(g Geometry) string {
	var b strings.Builder
	writeGeometry(&b, g)
	return b.String()
}

func writeGeometry(b *strings.Builder, g Geometry) {
	b.WriteString(g.Kind.String())
	b.WriteByte(' ')
	if g.Empty {
		b.WriteString("EMPTY")
		return
	}
	switch g.Kind {
	case KindPoint:
		b.WriteByte('(')
		writeCoord(b, g.Point)
		b.WriteByte(')')
	case KindLineString:
		writeLine(b, g.Line)
	case KindPolygon:
		writeRings(b, g.Rings)
	case KindMultiPoint:
		b.WriteByte('(')
		for i, p := range g.Points {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteByte('(')
			writeCoord(b, p)
			b.WriteByte(')')
		}
		b.WriteByte(')')
	case KindMultiLineString:
		b.WriteByte('(')
		for i, l := range g.Lines {
			if i > 0 {
				b.WriteString(", ")
			}
			writeLine(b, l)
		}
		b.WriteByte(')')
	case KindMultiPolygon:
		b.WriteByte('(')
		for i, poly := range g.Polygons {
			if i > 0 {
				b.WriteString(", ")
			}
			writeRings(b, poly)
		}
		b.WriteByte(')')
	case KindGeometryCollection:
		b.WriteByte('(')
		for i, sub := range g.Geoms {
			if i > 0 {
				b.WriteString(", ")
			}
			writeGeometry(b, sub)
		}
		b.WriteByte(')')
	}
}

func writeCoord(b *strings.Builder, p geo.Point) {
	b.WriteString(strconv.FormatFloat(p.Lon, 'f', -1, 64))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(p.Lat, 'f', -1, 64))
}

func writeLine(b *strings.Builder, pts []geo.Point) {
	b.WriteByte('(')
	for i, p := range pts {
		if i > 0 {
			b.WriteString(", ")
		}
		writeCoord(b, p)
	}
	b.WriteByte(')')
}

func writeRings(b *strings.Builder, rings [][]geo.Point) {
	b.WriteByte('(')
	for i, r := range rings {
		if i > 0 {
			b.WriteString(", ")
		}
		writeLine(b, r)
	}
	b.WriteByte(')')
}

// Parse parses a WKT string into a Geometry.
func Parse(s string) (Geometry, error) {
	p := &parser{src: s}
	g, err := p.geometry()
	if err != nil {
		return Geometry{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Geometry{}, fmt.Errorf("wkt: trailing input at offset %d", p.pos)
	}
	return g, nil
}

// MustParse parses s and panics on error. For tests and literals.
func MustParse(s string) Geometry {
	g, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return g
}

type parser struct {
	src string
	pos int
}

var errUnexpectedEnd = errors.New("wkt: unexpected end of input")

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(p.src[start:p.pos])
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return errUnexpectedEnd
	}
	if p.src[p.pos] != c {
		return fmt.Errorf("wkt: expected %q at offset %d, found %q", c, p.pos, p.src[p.pos])
	}
	p.pos++
	return nil
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, fmt.Errorf("wkt: expected number at offset %d", p.pos)
	}
	return strconv.ParseFloat(p.src[start:p.pos], 64)
}

func (p *parser) coord() (geo.Point, error) {
	lon, err := p.number()
	if err != nil {
		return geo.Point{}, err
	}
	lat, err := p.number()
	if err != nil {
		return geo.Point{}, err
	}
	return geo.Point{Lon: lon, Lat: lat}, nil
}

// coordList parses "(c, c, ...)".
func (p *parser) coordList() ([]geo.Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var pts []geo.Point
	for {
		pt, err := p.coord()
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return pts, nil
}

// ringList parses "((...), (...))".
func (p *parser) ringList() ([][]geo.Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var rings [][]geo.Point
	for {
		ring, err := p.coordList()
		if err != nil {
			return nil, err
		}
		rings = append(rings, ring)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return rings, nil
}

func (p *parser) isEmpty() bool {
	save := p.pos
	if p.word() == "EMPTY" {
		return true
	}
	p.pos = save
	return false
}

func (p *parser) geometry() (Geometry, error) {
	tag := p.word()
	switch tag {
	case "POINT":
		if p.isEmpty() {
			return Geometry{Kind: KindPoint, Empty: true}, nil
		}
		if err := p.expect('('); err != nil {
			return Geometry{}, err
		}
		pt, err := p.coord()
		if err != nil {
			return Geometry{}, err
		}
		if err := p.expect(')'); err != nil {
			return Geometry{}, err
		}
		return Geometry{Kind: KindPoint, Point: pt}, nil

	case "LINESTRING":
		if p.isEmpty() {
			return Geometry{Kind: KindLineString, Empty: true}, nil
		}
		pts, err := p.coordList()
		if err != nil {
			return Geometry{}, err
		}
		if len(pts) < 2 {
			return Geometry{}, errors.New("wkt: linestring needs at least 2 points")
		}
		return Geometry{Kind: KindLineString, Line: pts}, nil

	case "POLYGON":
		if p.isEmpty() {
			return Geometry{Kind: KindPolygon, Empty: true}, nil
		}
		rings, err := p.ringList()
		if err != nil {
			return Geometry{}, err
		}
		for _, r := range rings {
			if len(r) < 4 {
				return Geometry{}, errors.New("wkt: polygon ring needs at least 4 points")
			}
			if r[0] != r[len(r)-1] {
				return Geometry{}, errors.New("wkt: polygon ring must be closed")
			}
		}
		return Geometry{Kind: KindPolygon, Rings: rings}, nil

	case "MULTIPOINT":
		if p.isEmpty() {
			return Geometry{Kind: KindMultiPoint, Empty: true}, nil
		}
		if err := p.expect('('); err != nil {
			return Geometry{}, err
		}
		var pts []geo.Point
		for {
			var pt geo.Point
			var err error
			// Both "MULTIPOINT ((1 2), (3 4))" and "MULTIPOINT (1 2, 3 4)"
			// are legal WKT.
			if p.peek() == '(' {
				p.pos++
				pt, err = p.coord()
				if err == nil {
					err = p.expect(')')
				}
			} else {
				pt, err = p.coord()
			}
			if err != nil {
				return Geometry{}, err
			}
			pts = append(pts, pt)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return Geometry{}, err
		}
		return Geometry{Kind: KindMultiPoint, Points: pts}, nil

	case "MULTILINESTRING":
		if p.isEmpty() {
			return Geometry{Kind: KindMultiLineString, Empty: true}, nil
		}
		lines, err := p.ringList()
		if err != nil {
			return Geometry{}, err
		}
		return Geometry{Kind: KindMultiLineString, Lines: lines}, nil

	case "MULTIPOLYGON":
		if p.isEmpty() {
			return Geometry{Kind: KindMultiPolygon, Empty: true}, nil
		}
		if err := p.expect('('); err != nil {
			return Geometry{}, err
		}
		var polys [][][]geo.Point
		for {
			rings, err := p.ringList()
			if err != nil {
				return Geometry{}, err
			}
			polys = append(polys, rings)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return Geometry{}, err
		}
		return Geometry{Kind: KindMultiPolygon, Polygons: polys}, nil

	case "GEOMETRYCOLLECTION":
		if p.isEmpty() {
			return Geometry{Kind: KindGeometryCollection, Empty: true}, nil
		}
		if err := p.expect('('); err != nil {
			return Geometry{}, err
		}
		var geoms []Geometry
		for {
			g, err := p.geometry()
			if err != nil {
				return Geometry{}, err
			}
			geoms = append(geoms, g)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return Geometry{}, err
		}
		return Geometry{Kind: KindGeometryCollection, Geoms: geoms}, nil

	case "":
		return Geometry{}, errUnexpectedEnd
	default:
		return Geometry{}, fmt.Errorf("wkt: unknown geometry type %q", tag)
	}
}
