// Package lint is iGDB's project-aware static analyzer framework, built
// from scratch on go/parser, go/ast, and go/types only — no
// golang.org/x/tools. It loads packages via `go list -export` (see load.go)
// and runs a fixed set of analyzers that encode repository-wide invariants
// the Go compiler cannot check: SQL/schema consistency, error-handling and
// logging discipline, metric exposition hygiene, and mutex guard
// annotations. The cmd/igdblint binary is a thin CLI over this package.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic: a position, the rule that fired, and a
// human-readable message.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: rule: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string

	linter *Linter
	rule   string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.linter.report(p.Fset.Position(pos), p.rule, fmt.Sprintf(format, args...))
}

// Internal reports whether the package under analysis is an internal
// (non-test, non-example) package — several analyzers only apply there.
func (p *Pass) Internal() bool {
	return strings.Contains(p.ImportPath, "/internal/") || strings.HasPrefix(p.ImportPath, "internal/")
}

// Analyzer is one named rule. Run is invoked once per package; Finish, if
// set, once after every package has been visited (for cross-package rules
// like sqlcheck, which must see all CREATE TABLE literals before
// validating queries).
type Analyzer struct {
	Name string
	Doc  string // one line, shown by igdblint -rules
	Run  func(*Pass)
	// Finish reports via the callback; positions were resolved during Run.
	Finish func(report func(pos token.Position, format string, args ...any))
}

// AnalyzerStat is one analyzer's cost and yield for a whole run, surfaced
// by igdblint -bench and scripts/lint.sh into artifacts/lint.json.
type AnalyzerStat struct {
	Name     string  `json:"name"`
	WallMs   float64 `json:"wall_ms"`
	Findings int     `json:"findings"`
}

// Linter runs a set of analyzers over loaded packages and collects
// findings, applying //lint:ignore suppressions.
type Linter struct {
	Analyzers []*Analyzer

	findings   []Finding
	suppressed map[suppressKey]*directive
	stats      []AnalyzerStat
}

// Stats returns per-analyzer wall time and finding counts for the last
// Run, in analyzer registration order.
func (l *Linter) Stats() []AnalyzerStat { return l.stats }

type suppressKey struct {
	file string
	line int
	rule string
}

type directive struct {
	pos  token.Position
	rule string
	used bool
}

// NewLinter returns a linter with the full iGDB analyzer set. Analyzer
// state is per-linter, so each Run is independent.
func NewLinter() *Linter {
	l := &Linter{suppressed: make(map[suppressKey]*directive)}
	l.Analyzers = []*Analyzer{
		newSQLCheck(),
		newErrDrop(),
		newLogDiscipline(),
		newMetricLint(),
		newGuardedBy(),
		newLockOrder(),
		newLeakCheck(),
		newCloseCheck(),
		// directive must stay last: its Finish sees which suppressions the
		// other analyzers' findings actually used.
		l.newDirectiveCheck(),
	}
	return l
}

// newDirectiveCheck audits the //lint:ignore directives themselves:
// malformed ones are reported during scanning, and a well-formed directive
// that suppressed zero findings is dead weight that hides future bugs.
func (l *Linter) newDirectiveCheck() *Analyzer {
	a := &Analyzer{
		Name: "directive",
		Doc:  "//lint:ignore directives must be well-formed, name a known rule, give a reason, and suppress at least one finding",
		Run:  func(*Pass) {},
	}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		seen := map[*directive]bool{}
		ds := make([]*directive, 0, len(l.suppressed))
		for _, d := range l.suppressed {
			if !seen[d] {
				seen[d] = true
				ds = append(ds, d)
			}
		}
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].pos.Filename != ds[j].pos.Filename {
				return ds[i].pos.Filename < ds[j].pos.Filename
			}
			return ds[i].pos.Line < ds[j].pos.Line
		})
		for _, d := range ds {
			if !d.used {
				report(d.pos, "//lint:ignore %s suppresses no finding; delete it", d.rule)
			}
		}
	}
	return a
}

// Run lints every package and returns the surviving findings in
// deterministic order (file, line, column, rule, message).
func (l *Linter) Run(pkgs []*Package, fset *token.FileSet) []Finding {
	for _, pkg := range pkgs {
		l.scanDirectives(pkg, fset)
	}
	elapsed := make(map[string]time.Duration, len(l.Analyzers))
	for _, a := range l.Analyzers {
		start := time.Now()
		for _, pkg := range pkgs {
			pass := &Pass{
				Fset:       fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ImportPath: pkg.ImportPath,
				linter:     l,
				rule:       a.Name,
			}
			a.Run(pass)
		}
		elapsed[a.Name] += time.Since(start)
	}
	for _, a := range l.Analyzers {
		if a.Finish == nil {
			continue
		}
		rule := a.Name
		start := time.Now()
		a.Finish(func(pos token.Position, format string, args ...any) {
			l.report(pos, rule, fmt.Sprintf(format, args...))
		})
		elapsed[rule] += time.Since(start)
	}
	counts := map[string]int{}
	for _, f := range l.findings {
		counts[f.Rule]++
	}
	l.stats = l.stats[:0]
	for _, a := range l.Analyzers {
		l.stats = append(l.stats, AnalyzerStat{
			Name:     a.Name,
			WallMs:   float64(elapsed[a.Name].Microseconds()) / 1000,
			Findings: counts[a.Name],
		})
	}
	sort.Slice(l.findings, func(i, j int) bool {
		a, b := l.findings[i], l.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return l.findings
}

func (l *Linter) report(pos token.Position, rule, msg string) {
	if d, ok := l.suppressed[suppressKey{pos.Filename, pos.Line, rule}]; ok {
		d.used = true
		return
	}
	l.findings = append(l.findings, Finding{
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Rule:    rule,
		Message: msg,
	})
}

// directiveRE matches //lint:ignore <rule> <reason>.
var directiveRE = regexp.MustCompile(`^//lint:ignore(?:\s+(\S+))?(?:\s+(.+))?$`)

// scanDirectives registers every //lint:ignore directive in pkg. A
// directive suppresses findings of the named rule on its own line (trailing
// comment) or on the following line (preceding comment). Unknown rule names
// and missing reasons are themselves findings under the "directive" rule.
func (l *Linter) scanDirectives(pkg *Package, fset *token.FileSet) {
	known := make(map[string]bool, len(l.Analyzers))
	for _, a := range l.Analyzers {
		known[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil || m[1] == "" {
					l.report(pos, "directive", "malformed //lint:ignore: want //lint:ignore <rule> <reason>")
					continue
				}
				rule, reason := m[1], strings.TrimSpace(m[2])
				if !known[rule] {
					l.report(pos, "directive", fmt.Sprintf("//lint:ignore names unknown rule %q", rule))
					continue
				}
				if reason == "" {
					l.report(pos, "directive", fmt.Sprintf("//lint:ignore %s needs a reason", rule))
					continue
				}
				d := &directive{pos: pos, rule: rule}
				l.suppressed[suppressKey{pos.Filename, pos.Line, rule}] = d
				l.suppressed[suppressKey{pos.Filename, pos.Line + 1, rule}] = d
			}
		}
	}
}

// ---- shared type helpers ----

var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// calleeObject resolves the function or method object a call invokes, or
// nil for indirect calls (function values, conversions).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// isPkgFunc reports whether obj is a function from the named package (by
// exact import path) with one of the given names.
func isPkgFunc(obj types.Object, pkgPath string, names ...string) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// derefNamed returns t's named type through one pointer, or nil.
func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// namedReceiver returns the named type of a method's receiver (through one
// pointer), or nil.
func namedReceiver(sig *types.Signature) *types.Named {
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return derefNamed(sig.Recv().Type())
}

// constString returns the compile-time constant string value of e, if any.
// It sees through const references and concatenation of literals, exactly
// what the type checker can fold.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
