// Package lint is iGDB's project-aware static analyzer framework, built
// from scratch on go/parser, go/ast, and go/types only — no
// golang.org/x/tools. It loads packages via `go list -export` (see load.go)
// and runs a fixed set of analyzers that encode repository-wide invariants
// the Go compiler cannot check: SQL/schema consistency, error-handling and
// logging discipline, metric exposition hygiene, and mutex guard
// annotations. The cmd/igdblint binary is a thin CLI over this package.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Finding is one diagnostic: a position, the rule that fired, and a
// human-readable message.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: rule: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string
	// Graph is the project-wide call graph, built once per Run before any
	// analyzer sees a package. Interprocedural analyzers query it.
	Graph *CallGraph

	linter *Linter
	rule   string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.linter.report(p.Fset.Position(pos), p.rule, fmt.Sprintf(format, args...))
}

// Internal reports whether the package under analysis is an internal
// (non-test, non-example) package — several analyzers only apply there.
func (p *Pass) Internal() bool {
	return strings.Contains(p.ImportPath, "/internal/") || strings.HasPrefix(p.ImportPath, "internal/")
}

// Analyzer is one named rule. Run is invoked once per package; Finish, if
// set, once after every package has been visited (for cross-package rules
// like sqlcheck, which must see all CREATE TABLE literals before
// validating queries).
type Analyzer struct {
	Name string
	Doc  string // one line, shown by igdblint -rules
	Run  func(*Pass)
	// Finish reports via the callback; positions were resolved during Run.
	Finish func(report func(pos token.Position, format string, args ...any))
}

// AnalyzerStat is one analyzer's cost and yield for a whole run, surfaced
// by igdblint -bench and scripts/lint.sh into artifacts/lint.json.
type AnalyzerStat struct {
	Name     string  `json:"name"`
	WallMs   float64 `json:"wall_ms"`
	Findings int     `json:"findings"`
}

// Linter runs a set of analyzers over loaded packages and collects
// findings, applying //lint:ignore suppressions.
type Linter struct {
	Analyzers []*Analyzer
	// Workers is the package-phase worker count; 0 means runtime.NumCPU().
	// Findings are byte-identical regardless of the value.
	Workers int

	findings   []Finding
	suppressed map[suppressKey]*directive
	stats      []AnalyzerStat
	graph      *CallGraph
	fset       *token.FileSet
	wall       time.Duration

	// mu guards findings and directive used-flags while package passes run
	// concurrently.
	mu sync.Mutex
}

// Stats returns per-analyzer wall time and finding counts for the last
// Run, in analyzer registration order. Under a parallel run an analyzer's
// WallMs is its summed per-package CPU time, so the column stays
// comparable across worker counts; TotalWallMs is the elapsed wall clock.
func (l *Linter) Stats() []AnalyzerStat { return l.stats }

// TotalWallMs returns the elapsed wall-clock time of the last Run.
func (l *Linter) TotalWallMs() float64 { return float64(l.wall.Microseconds()) / 1000 }

// Graph returns the call graph built by the last Run (for tests and
// tooling).
func (l *Linter) Graph() *CallGraph { return l.graph }

type suppressKey struct {
	file string
	line int
	rule string
}

type directive struct {
	pos  token.Position
	rule string
	used bool
}

// NewLinter returns a linter with the full iGDB analyzer set. Analyzer
// state is per-linter, so each Run is independent.
func NewLinter() *Linter {
	l := &Linter{suppressed: make(map[suppressKey]*directive)}
	l.Analyzers = []*Analyzer{
		newSQLCheck(),
		newErrDrop(),
		newLogDiscipline(),
		newMetricLint(),
		newGuardedBy(),
		newLockOrder(),
		newLeakCheck(),
		newCloseCheck(),
		l.newCallGraphCheck(),
		l.newSnapshotSafe(),
		l.newContextCheck(),
		l.newAllocLint(),
		// directive must stay last: its Finish sees which suppressions the
		// other analyzers' findings actually used.
		l.newDirectiveCheck(),
	}
	return l
}

// newDirectiveCheck audits the //lint:ignore directives themselves:
// malformed ones are reported during scanning, and a well-formed directive
// that suppressed zero findings is dead weight that hides future bugs.
func (l *Linter) newDirectiveCheck() *Analyzer {
	a := &Analyzer{
		Name: "directive",
		Doc:  "//lint:ignore directives must be well-formed, name a known rule, give a reason, and suppress at least one finding",
		Run:  func(*Pass) {},
	}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		seen := map[*directive]bool{}
		ds := make([]*directive, 0, len(l.suppressed))
		for _, d := range l.suppressed {
			if !seen[d] {
				seen[d] = true
				ds = append(ds, d)
			}
		}
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].pos.Filename != ds[j].pos.Filename {
				return ds[i].pos.Filename < ds[j].pos.Filename
			}
			return ds[i].pos.Line < ds[j].pos.Line
		})
		for _, d := range ds {
			if !d.used {
				report(d.pos, "//lint:ignore %s suppresses no finding; delete it", d.rule)
			}
		}
	}
	return a
}

// Run lints every package and returns the surviving findings in
// deterministic order (file, line, column, rule, message).
//
// The run has four phases. Directives are scanned sequentially, the call
// graph is built once over every package, then the per-package analyzer
// passes execute on a worker pool: packages are dispatched in dependency
// order (a package only after its in-set imports), ties broken by import
// path, so cross-package analyzer state accretes in a stable order.
// Finally the Finish hooks run — concurrently for independent analyzers,
// with directive strictly last so it observes which suppressions were
// used. Findings are reported under a lock and sorted at the end, so
// output is byte-identical for any worker count.
func (l *Linter) Run(pkgs []*Package, fset *token.FileSet) []Finding {
	runStart := time.Now()
	l.fset = fset
	for _, pkg := range pkgs {
		l.scanDirectives(pkg, fset)
	}

	elapsed := make([]atomic.Int64, len(l.Analyzers))
	graphStart := time.Now()
	l.graph = BuildCallGraph(pkgs, fset)
	for i, a := range l.Analyzers {
		if a.Name == "callgraph" {
			elapsed[i].Add(int64(time.Since(graphStart)))
		}
	}

	workers := l.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	l.runPasses(pkgs, fset, workers, elapsed)

	// Finish hooks: every analyzer but directive is independent once the
	// package phase is done, so they may run concurrently; reporting is
	// locked and the final sort restores determinism.
	var wg sync.WaitGroup
	for i, a := range l.Analyzers {
		if a.Finish == nil || a.Name == "directive" {
			continue
		}
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			start := time.Now()
			a.Finish(func(pos token.Position, format string, args ...any) {
				l.report(pos, a.Name, fmt.Sprintf(format, args...))
			})
			elapsed[i].Add(int64(time.Since(start)))
		}(i, a)
	}
	wg.Wait()
	for i, a := range l.Analyzers {
		if a.Finish == nil || a.Name != "directive" {
			continue
		}
		start := time.Now()
		a.Finish(func(pos token.Position, format string, args ...any) {
			l.report(pos, a.Name, fmt.Sprintf(format, args...))
		})
		elapsed[i].Add(int64(time.Since(start)))
	}

	counts := map[string]int{}
	for _, f := range l.findings {
		counts[f.Rule]++
	}
	l.stats = l.stats[:0]
	for i, a := range l.Analyzers {
		l.stats = append(l.stats, AnalyzerStat{
			Name:     a.Name,
			WallMs:   float64(time.Duration(elapsed[i].Load()).Microseconds()) / 1000,
			Findings: counts[a.Name],
		})
	}
	sort.Slice(l.findings, func(i, j int) bool {
		a, b := l.findings[i], l.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	l.wall = time.Since(runStart)
	return l.findings
}

// runPasses executes every analyzer's Run over every package on a pool of
// workers. Dispatch respects the import DAG restricted to the loaded set:
// a package becomes ready only when all its loaded imports have been
// analyzed; the ready queue is kept sorted by import path so dispatch
// order (though not completion order) is deterministic.
func (l *Linter) runPasses(pkgs []*Package, fset *token.FileSet, workers int, elapsed []atomic.Int64) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	waiting := make(map[*Package]int, len(pkgs))
	dependents := make(map[*Package][]*Package, len(pkgs))
	for _, p := range pkgs {
		if p.Types == nil {
			continue
		}
		for _, imp := range p.Types.Imports() {
			if d, ok := byPath[imp.Path()]; ok && d != p {
				waiting[p]++
				dependents[d] = append(dependents[d], p)
			}
		}
	}

	var (
		mu    sync.Mutex
		cond  = sync.NewCond(&mu)
		ready []*Package
		done  int
	)
	insert := func(p *Package) {
		i := sort.Search(len(ready), func(i int) bool { return ready[i].ImportPath > p.ImportPath })
		ready = append(ready, nil)
		copy(ready[i+1:], ready[i:])
		ready[i] = p
	}
	for _, p := range pkgs {
		if waiting[p] == 0 {
			insert(p)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && done < len(pkgs) {
					cond.Wait()
				}
				if len(ready) == 0 {
					mu.Unlock()
					return
				}
				p := ready[0]
				ready = ready[1:]
				mu.Unlock()

				l.analyzePackage(p, fset, elapsed)

				mu.Lock()
				done++
				for _, dep := range dependents[p] {
					waiting[dep]--
					if waiting[dep] == 0 {
						insert(dep)
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// analyzePackage runs every analyzer's per-package pass over one package,
// charging elapsed time to the analyzer.
func (l *Linter) analyzePackage(pkg *Package, fset *token.FileSet, elapsed []atomic.Int64) {
	for i, a := range l.Analyzers {
		pass := &Pass{
			Fset:       fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			ImportPath: pkg.ImportPath,
			Graph:      l.graph,
			linter:     l,
			rule:       a.Name,
		}
		start := time.Now()
		a.Run(pass)
		elapsed[i].Add(int64(time.Since(start)))
	}
}

func (l *Linter) report(pos token.Position, rule, msg string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if d, ok := l.suppressed[suppressKey{pos.Filename, pos.Line, rule}]; ok {
		d.used = true
		return
	}
	l.findings = append(l.findings, Finding{
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Rule:    rule,
		Message: msg,
	})
}

// directiveRE matches //lint:ignore <rule> <reason>.
var directiveRE = regexp.MustCompile(`^//lint:ignore(?:\s+(\S+))?(?:\s+(.+))?$`)

// scanDirectives registers every //lint:ignore directive in pkg. A
// directive suppresses findings of the named rule on its own line (trailing
// comment) or on the following line (preceding comment). Unknown rule names
// and missing reasons are themselves findings under the "directive" rule.
func (l *Linter) scanDirectives(pkg *Package, fset *token.FileSet) {
	known := make(map[string]bool, len(l.Analyzers))
	for _, a := range l.Analyzers {
		known[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil || m[1] == "" {
					l.report(pos, "directive", "malformed //lint:ignore: want //lint:ignore <rule> <reason>")
					continue
				}
				rule, reason := m[1], strings.TrimSpace(m[2])
				if !known[rule] {
					l.report(pos, "directive", fmt.Sprintf("//lint:ignore names unknown rule %q", rule))
					continue
				}
				if reason == "" {
					l.report(pos, "directive", fmt.Sprintf("//lint:ignore %s needs a reason", rule))
					continue
				}
				d := &directive{pos: pos, rule: rule}
				l.suppressed[suppressKey{pos.Filename, pos.Line, rule}] = d
				l.suppressed[suppressKey{pos.Filename, pos.Line + 1, rule}] = d
			}
		}
	}
}

// ---- shared type helpers ----

var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// calleeObject resolves the function or method object a call invokes, or
// nil for indirect calls (function values, conversions).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// isPkgFunc reports whether obj is a function from the named package (by
// exact import path) with one of the given names.
func isPkgFunc(obj types.Object, pkgPath string, names ...string) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// derefNamed returns t's named type through one pointer, or nil.
func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// funcSig returns fn's *types.Signature (every *types.Func has one).
func funcSig(fn *types.Func) *types.Signature {
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// namedReceiver returns the named type of a method's receiver (through one
// pointer), or nil.
func namedReceiver(sig *types.Signature) *types.Named {
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return derefNamed(sig.Recv().Type())
}

// constString returns the compile-time constant string value of e, if any.
// It sees through const references and concatenation of literals, exactly
// what the type checker can fold.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
