package lint

// callgraph.go builds the project-wide call graph the interprocedural
// analyzers (snapshotsafe, contextcheck, and the callgraph dead-code rule)
// consume. Nodes are declared functions and methods of the loaded
// packages, every function literal (attributed to its enclosing
// declaration), and the external functions the project calls (stdlib and
// dependency objects from export data, e.g. time.Sleep). Edges come in
// four kinds:
//
//   - static: direct calls to a function, method, or immediately-invoked
//     literal, resolved through go/types;
//   - interface: dynamic dispatch through an interface method, resolved
//     CHA-style to every loaded concrete type that implements the
//     interface;
//   - funcvalue: indirect calls through a function-typed expression,
//     resolved CHA-style to every function or literal whose value is taken
//     somewhere in the project with an identical signature (this is how
//     `opts.Sleep(d)` resolves to time.Sleep);
//   - enclosing: a pseudo-edge from a declaration to each function literal
//     in its body — the literal may run whenever its encloser does, which
//     keeps reachability conservative for literals that are stored before
//     being invoked.
//
// The graph is deterministic: nodes and edges are recorded in (file, pos)
// source order per package and packages are merged in load order, so two
// builds over the same sources are identical regardless of the driver's
// worker count.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CGEdgeKind classifies one call edge.
type CGEdgeKind uint8

// The edge kinds.
const (
	CallStatic CGEdgeKind = iota
	CallInterface
	CallFuncValue
	CallEnclosing
)

func (k CGEdgeKind) String() string {
	switch k {
	case CallStatic:
		return "static"
	case CallInterface:
		return "interface"
	case CallFuncValue:
		return "funcvalue"
	case CallEnclosing:
		return "enclosing"
	}
	return "unknown"
}

// CGEdge is one call: a site in the caller, the callee it may reach, and
// how the callee was resolved.
type CGEdge struct {
	Caller *CGNode
	Callee *CGNode
	// Pos is the call site (or the literal position for enclosing edges).
	Pos token.Pos
	// Call is the call expression, nil for enclosing edges. Analyzers use
	// it to map arguments to callee parameters.
	Call *ast.CallExpr
	Kind CGEdgeKind
	// Go marks a call site under a go statement.
	Go bool
}

// CGNode is one function in the graph.
type CGNode struct {
	// Obj is the function object; nil for function literals.
	Obj *types.Func
	// Decl is the declaration, nil for literals and external functions.
	Decl *ast.FuncDecl
	// Lit is the literal, nil for declared and external functions.
	Lit *ast.FuncLit
	// Parent is the enclosing declared node for literals, nil otherwise.
	Parent *CGNode
	// Pkg is the loaded package that owns the body; nil for external
	// functions known only through export data.
	Pkg *Package
	// Out and In are the call edges, in deterministic order.
	Out []*CGEdge
	In  []*CGEdge
	// ValueTaken lists the sites where this function is referenced as a
	// value (assigned, passed, stored) rather than called.
	ValueTaken []token.Pos

	name string
}

// Name returns the qualified display name: pkg.Func, pkg.(*T).Method, or
// pkg.Func$N for the N'th literal inside Func.
func (n *CGNode) Name() string { return n.name }

// External reports whether the node has no analyzable body (a function
// from outside the loaded packages).
func (n *CGNode) External() bool { return n.Decl == nil && n.Lit == nil }

// Body returns the node's function body, nil for external nodes.
func (n *CGNode) Body() *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// Sig returns the node's signature, nil when unknown.
func (n *CGNode) Sig() *types.Signature {
	if n.Obj != nil {
		sig, _ := n.Obj.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil && n.Pkg != nil {
		if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
			sig, _ := tv.Type.(*types.Signature)
			return sig
		}
	}
	return nil
}

// GoSpawned reports whether every path to this node starts at a go
// statement: true for literals whose enclosing edge is a go spawn.
func (n *CGNode) GoSpawned() bool {
	if n.Lit == nil {
		return false
	}
	for _, e := range n.In {
		if e.Kind == CallEnclosing {
			return e.Go
		}
	}
	return false
}

// CallGraph is the queryable project call graph.
type CallGraph struct {
	// Nodes lists every node in deterministic order: declared and literal
	// nodes in package load order then source order, then external nodes
	// sorted by name.
	Nodes []*CGNode

	funcs map[*types.Func]*CGNode
	lits  map[*ast.FuncLit]*CGNode

	// ifaces are all interface types (with at least one method) visible to
	// the loaded packages; the callgraph analyzer uses them to keep
	// interface-satisfying methods alive.
	ifaces []*types.Interface
}

// NodeOf returns the node for a declared or external function, creating an
// external node on first use. Generic instantiations share their origin's
// node.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	if n, ok := g.funcs[fn]; ok {
		return n
	}
	n := &CGNode{Obj: fn, name: funcDisplayName(fn)}
	g.funcs[fn] = n
	return n
}

// LitNode returns the node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *CGNode { return g.lits[lit] }

// Reachable returns every node reachable from the seeds (the seeds
// included), walking Out edges, in deterministic order.
func (g *CallGraph) Reachable(seeds ...*CGNode) []*CGNode {
	seen := map[*CGNode]bool{}
	var out []*CGNode
	var walk func(n *CGNode)
	walk = func(n *CGNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		out = append(out, n)
		for _, e := range n.Out {
			walk(e.Callee)
		}
	}
	for _, s := range seeds {
		walk(s)
	}
	return out
}

// funcDisplayName renders pkg.Func or pkg.(*T).Method.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			ptr = "*"
		}
		if named, ok := recv.(*types.Named); ok {
			return fmt.Sprintf("%s(%s%s).%s", pkg, ptr, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}

// pendingDynamic is one unresolved dynamic call site, resolved after every
// package has been scanned (CHA needs the whole program's types).
type pendingDynamic struct {
	caller *CGNode
	call   *ast.CallExpr
	goStmt bool
	// iface is the interface method for interface dispatch; nil for
	// function-value calls.
	iface *types.Func
	// sig is the call signature for function-value dispatch.
	sig *types.Signature
	// pkg owns the call site.
	pkg *Package
}

// BuildCallGraph constructs the graph over the loaded packages.
func BuildCallGraph(pkgs []*Package, fset *token.FileSet) *CallGraph {
	g := &CallGraph{
		funcs: map[*types.Func]*CGNode{},
		lits:  map[*ast.FuncLit]*CGNode{},
	}
	var pending []pendingDynamic
	// takenBySig buckets value-taken functions and literals by canonical
	// signature string for function-value CHA.
	takenBySig := map[string][]*CGNode{}

	for _, pkg := range pkgs {
		g.scanPackage(pkg, &pending, takenBySig)
	}
	g.collectInterfaces(pkgs)

	named := g.allNamed(pkgs)
	for _, p := range pending {
		if p.iface != nil {
			g.resolveInterfaceCall(p, named)
		} else {
			g.resolveFuncValueCall(p, takenBySig)
		}
	}

	// External nodes referenced but never scanned join Nodes last, sorted.
	var ext []*CGNode
	seen := map[*CGNode]bool{}
	for _, n := range g.Nodes {
		seen[n] = true
	}
	for _, n := range g.funcs {
		if !seen[n] {
			ext = append(ext, n)
		}
	}
	sort.Slice(ext, func(i, j int) bool { return ext[i].name < ext[j].name })
	g.Nodes = append(g.Nodes, ext...)
	return g
}

// scanPackage records nodes, static edges, value-taken sites, and pending
// dynamic call sites for one package, in source order. Package-level var
// initializers (method-expression tables, handler registries) are scanned
// under a synthetic per-package init node so the functions they reference
// count as taken and their literals join the graph.
func (g *CallGraph) scanPackage(pkg *Package, pending *[]pendingDynamic, takenBySig map[string][]*CGNode) {
	var initNode *CGNode
	initFor := func() *CGNode {
		if initNode == nil {
			initNode = &CGNode{Pkg: pkg, name: pkg.Types.Name() + ".init·vars"}
			g.Nodes = append(g.Nodes, initNode)
		}
		return initNode
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := g.NodeOf(obj)
				n.Decl, n.Pkg = d, pkg
				g.Nodes = append(g.Nodes, n)
				if d.Body != nil {
					g.scanBody(n, pkg, d.Body, pending, takenBySig)
				}
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, value := range vs.Values {
						g.scanBody(initFor(), pkg, value, pending, takenBySig)
					}
				}
			}
		}
	}
}

// scanBody walks one function body (or package-level initializer
// expression): literals become child nodes (scanned recursively with an
// enclosing edge), calls become edges or pending dynamic sites, and
// function references become value-taken records. The callee name of a
// direct call is not a value use — only references outside call position
// feed the function-value CHA candidate set.
func (g *CallGraph) scanBody(owner *CGNode, pkg *Package, body ast.Node, pending *[]pendingDynamic, takenBySig map[string][]*CGNode) {
	litIdx := 0
	var walk func(n ast.Node) bool
	inspect := func(root ast.Node) {
		ast.Inspect(root, walk)
	}
	// descendCall walks a call's arguments and its Fun minus the callee
	// name itself, so called functions are not recorded as value-taken.
	descendCall := func(call *ast.CallExpr) {
		for _, arg := range call.Args {
			inspect(arg)
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			// the callee name: not a value use
		case *ast.SelectorExpr:
			inspect(fun.X)
		default:
			inspect(call.Fun)
		}
	}
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			// The call itself (and a literal callee) is go-spawned; its
			// arguments are evaluated synchronously. A literal callee must
			// be scanned here, before scanCall can memoize it without the
			// go-spawn flag on its enclosing edge.
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				for _, arg := range x.Call.Args {
					inspect(arg)
				}
				ln := g.scanLit(owner, pkg, lit, true, &litIdx, pending, takenBySig)
				g.addEdge(&CGEdge{Caller: owner, Callee: ln, Pos: x.Call.Pos(), Call: x.Call, Kind: CallStatic, Go: true})
				return false
			}
			g.scanCall(owner, pkg, x.Call, true, pending, &litIdx, takenBySig)
			descendCall(x.Call)
			return false
		case *ast.CallExpr:
			g.scanCall(owner, pkg, x, false, pending, &litIdx, takenBySig)
			// An immediately-invoked literal was already linked statically
			// by scanCall but still needs its body scanned as a child node.
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				for _, arg := range x.Args {
					inspect(arg)
				}
				g.scanLit(owner, pkg, lit, false, &litIdx, pending, takenBySig)
			} else {
				descendCall(x)
			}
			return false
		case *ast.FuncLit:
			// A literal in value position: child node plus a value-taken
			// record for function-value CHA.
			ln := g.scanLit(owner, pkg, x, false, &litIdx, pending, takenBySig)
			ln.ValueTaken = append(ln.ValueTaken, x.Pos())
			if sig := ln.Sig(); sig != nil {
				key := sigKey(sig)
				takenBySig[key] = append(takenBySig[key], ln)
			}
			return false
		case *ast.Ident:
			g.noteValueUse(pkg, x, x, takenBySig)
		case *ast.SelectorExpr:
			g.noteValueUse(pkg, x.Sel, x, takenBySig)
			inspect(x.X)
			return false
		}
		return true
	}
	inspect(body)
}

// scanLit creates (and scans) the child node for one literal.
func (g *CallGraph) scanLit(owner *CGNode, pkg *Package, lit *ast.FuncLit, goSpawn bool, litIdx *int, pending *[]pendingDynamic, takenBySig map[string][]*CGNode) *CGNode {
	if n, ok := g.lits[lit]; ok {
		return n
	}
	*litIdx++
	n := &CGNode{
		Lit:    lit,
		Parent: owner,
		Pkg:    pkg,
		name:   fmt.Sprintf("%s$%d", owner.name, *litIdx),
	}
	g.lits[lit] = n
	g.Nodes = append(g.Nodes, n)
	g.addEdge(&CGEdge{Caller: owner, Callee: n, Pos: lit.Pos(), Kind: CallEnclosing, Go: goSpawn})
	g.scanBody(n, pkg, lit.Body, pending, takenBySig)
	return n
}

// scanCall records one call expression from owner.
func (g *CallGraph) scanCall(owner *CGNode, pkg *Package, call *ast.CallExpr, goSpawn bool, pending *[]pendingDynamic, litIdx *int, takenBySig map[string][]*CGNode) {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		ln := g.scanLit(owner, pkg, lit, false, litIdx, pending, takenBySig)
		g.addEdge(&CGEdge{Caller: owner, Callee: ln, Pos: call.Pos(), Call: call, Kind: CallStatic, Go: goSpawn})
		return
	}
	// Conversions are not calls.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	obj := calleeObject(pkg.Info, call)
	switch fn := obj.(type) {
	case *types.Func:
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if selection, ok := pkg.Info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
				if types.IsInterface(selection.Recv()) {
					*pending = append(*pending, pendingDynamic{
						caller: owner, call: call, goStmt: goSpawn, iface: fn, pkg: pkg,
					})
					return
				}
			}
		}
		g.addEdge(&CGEdge{Caller: owner, Callee: g.NodeOf(fn), Pos: call.Pos(), Call: call, Kind: CallStatic, Go: goSpawn})
	case *types.Builtin, *types.TypeName:
		// len/append/...; conversions through named types.
	default:
		// Indirect call through a function-typed expression (variable,
		// field, call result).
		tv, ok := pkg.Info.Types[call.Fun]
		if !ok || tv.Type == nil {
			return
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return
		}
		*pending = append(*pending, pendingDynamic{
			caller: owner, call: call, goStmt: goSpawn, sig: sig, pkg: pkg,
		})
	}
}

// noteValueUse records a function referenced as a value: not the operand
// of a call expression (scanCall never descends there).
func (g *CallGraph) noteValueUse(pkg *Package, id *ast.Ident, ref ast.Expr, takenBySig map[string][]*CGNode) {
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	n := g.NodeOf(fn)
	n.ValueTaken = append(n.ValueTaken, ref.Pos())
	// Bucket by the reference expression's type: a method value drops the
	// receiver, a method expression keeps it as the first parameter. The
	// reference type is what any call through the stored value must match.
	t := fn.Type()
	if tv, ok := pkg.Info.Types[ref]; ok && tv.Type != nil {
		t = tv.Type
	}
	if sig, ok := t.Underlying().(*types.Signature); ok {
		key := sigKey(sig)
		takenBySig[key] = append(takenBySig[key], n)
	}
}

// valueSig strips the receiver so method values bucket with plain funcs.
func valueSig(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

// sigKey canonicalizes a signature for function-value CHA bucketing:
// receiver dropped, parameter and result names stripped (TypeString keeps
// them, and `func(d time.Duration)` must bucket with `func(time.Duration)`),
// package paths fully qualified.
func sigKey(sig *types.Signature) string {
	sig = valueSig(sig)
	canon := types.NewSignatureType(nil, nil, nil,
		unnamedTuple(sig.Params()), unnamedTuple(sig.Results()), sig.Variadic())
	return types.TypeString(canon, nil)
}

// unnamedTuple copies a tuple with the variable names erased.
func unnamedTuple(t *types.Tuple) *types.Tuple {
	if t == nil || t.Len() == 0 {
		return t
	}
	vars := make([]*types.Var, t.Len())
	for i := 0; i < t.Len(); i++ {
		vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
	}
	return types.NewTuple(vars...)
}

// addEdge links one edge into both endpoint adjacency lists.
func (g *CallGraph) addEdge(e *CGEdge) {
	e.Caller.Out = append(e.Caller.Out, e)
	e.Callee.In = append(e.Callee.In, e)
}

// allNamed collects every named type declared in the loaded packages, in
// deterministic order, for CHA interface resolution.
func (g *CallGraph) allNamed(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				out = append(out, named)
			}
		}
	}
	return out
}

// collectInterfaces gathers interface types visible to the project: those
// declared in loaded packages and in every (transitive) import.
func (g *CallGraph) collectInterfaces(pkgs []*Package) {
	seenPkg := map[*types.Package]bool{}
	var fromScope func(p *types.Package)
	fromScope = func(p *types.Package) {
		if p == nil || seenPkg[p] {
			return
		}
		seenPkg[p] = true
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
				g.ifaces = append(g.ifaces, iface)
			}
		}
		for _, imp := range p.Imports() {
			fromScope(imp)
		}
	}
	for _, pkg := range pkgs {
		fromScope(pkg.Types)
	}
}

// resolveInterfaceCall adds CHA edges: one per loaded concrete type whose
// method set satisfies the interface and provides the called method.
func (g *CallGraph) resolveInterfaceCall(p pendingDynamic, named []*types.Named) {
	ifaceRecv := funcSig(p.iface).Recv()
	if ifaceRecv == nil {
		return
	}
	iface, ok := ifaceRecv.Type().Underlying().(*types.Interface)
	if !ok {
		// Receiver may be a named interface type.
		if under, uok := ifaceRecv.Type().(*types.Named); uok {
			iface, ok = under.Underlying().(*types.Interface)
		}
		if !ok {
			return
		}
	}
	// Always keep an edge to the interface method itself so the call site
	// is never dangling (its targets may all be external).
	g.addEdge(&CGEdge{Caller: p.caller, Callee: g.NodeOf(p.iface), Pos: p.call.Pos(), Call: p.call, Kind: CallInterface, Go: p.goStmt})
	for _, t := range named {
		if types.IsInterface(t) {
			continue
		}
		recv := types.Type(t)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(t)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		sel := types.NewMethodSet(recv).Lookup(p.iface.Pkg(), p.iface.Name())
		if sel == nil {
			continue
		}
		target, ok := sel.Obj().(*types.Func)
		if !ok {
			continue
		}
		g.addEdge(&CGEdge{Caller: p.caller, Callee: g.NodeOf(target), Pos: p.call.Pos(), Call: p.call, Kind: CallInterface, Go: p.goStmt})
	}
}

// resolveFuncValueCall adds CHA edges to every value-taken function or
// literal with the call's exact signature.
func (g *CallGraph) resolveFuncValueCall(p pendingDynamic, takenBySig map[string][]*CGNode) {
	key := sigKey(p.sig)
	seen := map[*CGNode]bool{}
	for _, target := range takenBySig[key] {
		if seen[target] {
			continue
		}
		seen[target] = true
		g.addEdge(&CGEdge{Caller: p.caller, Callee: target, Pos: p.call.Pos(), Call: p.call, Kind: CallFuncValue, Go: p.goStmt})
	}
}

// ---- the callgraph analyzer: dead unexported functions ----

// newCallGraphCheck builds the callgraph analyzer. With the whole-program
// graph in hand, an unexported function or method that no edge reaches,
// whose value is never taken, and that satisfies no visible interface is
// provably dead code — the project compiles without it.
func (l *Linter) newCallGraphCheck() *Analyzer {
	a := &Analyzer{
		Name: "callgraph",
		Doc:  "unexported functions must be reachable in the project call graph: called, value-taken, or satisfying a visible interface (dead code otherwise)",
	}
	a.Run = func(*Pass) {}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		g := l.graph
		if g == nil {
			return
		}
		for _, n := range g.Nodes {
			if n.Decl == nil || n.Obj == nil || n.Pkg == nil {
				continue
			}
			name := n.Obj.Name()
			if ast.IsExported(name) || name == "main" || name == "init" || name == "_" {
				continue
			}
			if len(n.In) > 0 || len(n.ValueTaken) > 0 {
				continue
			}
			if sig := n.Sig(); sig != nil && sig.Recv() != nil && g.satisfiesVisibleInterface(n.Obj) {
				continue
			}
			fset := l.fset
			report(fset.Position(n.Decl.Name.Pos()),
				"%s is never called, never taken as a value, and satisfies no visible interface; dead code", n.Name())
		}
	}
	return a
}

// satisfiesVisibleInterface reports whether method fn matches a method of
// any interface visible to the project and its receiver type implements
// that interface — such methods are called through dispatch the graph may
// not see (fmt.Stringer, http.Handler, sort.Interface, ...).
func (g *CallGraph) satisfiesVisibleInterface(fn *types.Func) bool {
	sig := funcSig(fn)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	for _, iface := range g.ifaces {
		if m := findIfaceMethod(iface, fn.Name()); m == nil {
			continue
		}
		if types.Implements(recv, iface) {
			return true
		}
		if _, isPtr := recv.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(recv), iface) {
				return true
			}
		}
	}
	return false
}

// findIfaceMethod returns the interface's method with the given name.
func findIfaceMethod(iface *types.Interface, name string) *types.Func {
	for i := 0; i < iface.NumMethods(); i++ {
		if m := iface.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// funcNodeDisplay is a debugging helper: one line per node with edge
// counts.
func (g *CallGraph) String() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%s in=%d out=%d taken=%d\n", n.Name(), len(n.In), len(n.Out), len(n.ValueTaken))
	}
	return b.String()
}
