package lint

// dataflow.go is a generic forward dataflow engine over the CFGs built by
// cfg.go: a classic worklist solver parameterized by a join-semilattice of
// facts. An analyzer supplies the entry fact, a join, an equality test,
// and a monotone per-block transfer function; the solver iterates to the
// least fixed point.
//
// Termination: facts must form a lattice of finite height (every fact
// domain used here is a finite map over the locks/resources that occur in
// one function body) and Transfer/Edge must be monotone with respect to
// Join. Each block's IN fact then ascends a finite chain, the worklist
// re-enqueues a block only when its IN strictly grows, and the solve
// terminates after O(blocks × lattice height) transfer evaluations.

// FlowProblem describes one forward dataflow analysis.
//
// All callbacks must treat facts as immutable: Transfer and Edge return
// fresh values (or the input unchanged) and never mutate their argument,
// because the solver aliases facts across blocks.
type FlowProblem[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join combines facts at control-flow merges. It must be commutative,
	// associative, and idempotent.
	Join func(a, b F) F
	// Equal reports whether two facts are identical; the solver uses it to
	// detect the fixed point.
	Equal func(a, b F) bool
	// Transfer pushes a fact through one whole block.
	Transfer func(b *Block, in F) F
	// Edge, when non-nil, refines the fact flowing along one specific
	// successor edge — this is where path-sensitivity on branch conditions
	// lives (b.Cond with Succs[0]=true/Succs[1]=false for two-way blocks).
	Edge func(from *Block, succIdx int, out F) F
}

// Solve runs the worklist algorithm and returns the IN fact of every block
// reachable from Entry. Unreachable blocks are absent from the map —
// reporting passes skip them rather than diagnosing dead code.
func Solve[F any](c *CFG, p FlowProblem[F]) map[*Block]F {
	in := map[*Block]F{c.Entry: p.Entry}
	queued := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := p.Transfer(blk, in[blk])
		for i, succ := range blk.Succs {
			f := out
			if p.Edge != nil {
				f = p.Edge(blk, i, out)
			}
			old, seen := in[succ]
			next := f
			if seen {
				next = p.Join(old, f)
			}
			if seen && p.Equal(old, next) {
				continue
			}
			in[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}
