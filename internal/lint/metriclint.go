package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// metricNameRE is the project metric naming convention: igdb_ prefix,
// lower-case snake, optionally ending in Prometheus histogram suffixes.
var metricNameRE = regexp.MustCompile(`^igdb_[a-z][a-z0-9_]*$`)

// metricBaseRE extracts the metric name at the start of an exposition
// format string ("igdb_requests_total{route=%q} %d\n" → igdb_requests_total).
var metricBaseRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)

// newMetricLint builds the metriclint analyzer — the static form of the
// server's runtime TestMetricsExposition: every metric name declared via
// help(w, name, type, text) must match igdb_[a-z0-9_]+ with a Prometheus
// type and non-empty help text, and every exposition line a package writes
// (a fmt.Fprint* whose format literal starts with "igdb_") must correspond
// to a declared metric — histogram _bucket/_sum/_count series resolve to
// their declared histogram.
func newMetricLint() *Analyzer {
	a := &Analyzer{
		Name: "metriclint",
		Doc:  "metric names must match igdb_[a-z0-9_]+ and every emitted series needs a help(name, type, text) declaration",
	}
	a.Run = func(pass *Pass) {
		type emission struct {
			pos  ast.Node
			base string
		}
		declared := map[string]string{} // name -> type
		var emissions []emission

		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				// help(w, name, typ, text) declarations.
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "help" && len(call.Args) == 4 {
					name, nameOK := constString(pass.Info, call.Args[1])
					typ, typOK := constString(pass.Info, call.Args[2])
					text, textOK := constString(pass.Info, call.Args[3])
					switch {
					case !nameOK || !typOK || !textOK:
						pass.Reportf(call.Pos(), "metric declaration must use string literals so it can be verified statically")
					case !metricNameRE.MatchString(name):
						pass.Reportf(call.Args[1].Pos(), "metric name %q does not match igdb_[a-z0-9_]+", name)
					case typ != "counter" && typ != "gauge" && typ != "histogram":
						pass.Reportf(call.Args[2].Pos(), "metric %q has invalid TYPE %q (want counter, gauge, or histogram)", name, typ)
					case strings.TrimSpace(text) == "":
						pass.Reportf(call.Args[3].Pos(), "metric %q has empty HELP text", name)
					default:
						declared[name] = typ
					}
					return true
				}
				// fmt.Fprint* exposition lines.
				obj := calleeObject(pass.Info, call)
				if isPkgFunc(obj, "fmt", "Fprintf", "Fprint", "Fprintln") && len(call.Args) >= 2 {
					if format, ok := constString(pass.Info, call.Args[1]); ok && strings.HasPrefix(format, "igdb_") {
						if base := metricBaseRE.FindString(format); base != "" {
							emissions = append(emissions, emission{pos: call.Args[1], base: base})
						}
					}
				}
				return true
			})
		}

		for _, e := range emissions {
			if !metricNameRE.MatchString(e.base) {
				pass.Reportf(e.pos.Pos(), "emitted metric %q does not match igdb_[a-z0-9_]+", e.base)
				continue
			}
			if _, ok := declared[e.base]; ok {
				continue
			}
			if hist, ok := strings.CutSuffix(e.base, "_bucket"); ok && declared[hist] == "histogram" {
				continue
			}
			if hist, ok := strings.CutSuffix(e.base, "_sum"); ok && declared[hist] == "histogram" {
				continue
			}
			if hist, ok := strings.CutSuffix(e.base, "_count"); ok && declared[hist] == "histogram" {
				continue
			}
			pass.Reportf(e.pos.Pos(), "metric %q emitted without a help(name, type, text) declaration in this package", e.base)
		}
	}
	return a
}
