package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"sync"

	"igdb/internal/core"
	"igdb/internal/reldb"
)

// reldbEntryPoints are the *reldb.DB methods whose first argument is a SQL
// statement.
var reldbEntryPoints = map[string]bool{
	"Query": true, "MustQuery": true, "Exec": true, "MustExec": true, "Prepare": true,
}

// sqlPrefixRE recognizes string literals that are SQL statements even when
// they are not passed directly to a reldb call (table-driven query lists,
// consts). Literals containing % verbs are fmt templates, not complete
// statements, and are skipped.
var sqlPrefixRE = regexp.MustCompile(`(?i)^\s*(EXPLAIN\s+(ANALYZE\s+)?)?(SELECT|INSERT\s+INTO|CREATE\s+TABLE|CREATE\s+INDEX|UPDATE|DELETE\s+FROM|DROP\s+TABLE)\s+\S`)

// SQLUse is one harvested SQL statement: where it appears and its text.
type SQLUse struct {
	Pos token.Position
	SQL string
}

// HarvestSQL collects every statically-known SQL statement in pkg: constant
// string arguments to reldb Query/MustQuery/Exec/MustExec/Prepare, consts
// and vars whose name ends in SQL, and any string literal that starts like
// a SQL statement (covering table-driven query slices). Dynamic SQL — built
// with fmt.Sprintf or received over the wire — cannot be harvested and is
// checked at runtime instead. The same harvest seeds the reldb parser fuzz
// corpus, so the fuzzer replays every query the codebase actually issues.
func HarvestSQL(pkg *Package, fset *token.FileSet) []SQLUse {
	// The SQL engine itself is full of keyword fragments ("SELECT", "CREATE
	// TABLE") that are syntax elements, not statements; the prefix heuristic
	// does not apply there. Literals passed to reldb entry points and *SQL
	// consts are still harvested.
	engine := strings.HasSuffix(pkg.ImportPath, "internal/reldb")
	seen := make(map[token.Pos]bool)
	var uses []SQLUse
	add := func(pos token.Pos, sql string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		uses = append(uses, SQLUse{Pos: fset.Position(pos), SQL: sql})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if len(x.Args) == 0 {
					break
				}
				sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
				if !ok || !reldbEntryPoints[sel.Sel.Name] {
					break
				}
				selection, ok := pkg.Info.Selections[sel]
				if !ok {
					break
				}
				named := derefNamed(selection.Recv())
				if named == nil || named.Obj().Name() != "DB" || named.Obj().Pkg() == nil ||
					!strings.HasSuffix(named.Obj().Pkg().Path(), "internal/reldb") {
					break
				}
				if s, ok := constString(pkg.Info, x.Args[0]); ok {
					add(x.Args[0].Pos(), s)
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if !strings.HasSuffix(name.Name, "SQL") || i >= len(x.Values) {
						continue
					}
					if s, ok := constString(pkg.Info, x.Values[i]); ok {
						add(x.Values[i].Pos(), s)
					}
				}
			case *ast.BasicLit:
				if x.Kind != token.STRING || engine {
					break
				}
				if s, ok := constString(pkg.Info, x); ok {
					if sqlPrefixRE.MatchString(s) && !strings.Contains(s, "%") {
						add(x.Pos(), s)
					}
				}
			}
			return true
		})
	}
	return uses
}

// newSQLCheck builds the sqlcheck analyzer: every harvested SQL statement
// must parse with reldb.ParseStatement and reference only tables and
// columns that exist — either in the canonical core schema
// (core.SchemaTables, derived from core.SchemaDDL) or in a CREATE TABLE
// statement harvested from the same lint run. Query/schema drift therefore
// fails at lint time instead of at runtime.
func newSQLCheck() *Analyzer {
	type parsed struct {
		pos  token.Position
		sql  string
		stmt reldb.Statement
	}
	var (
		mu         sync.Mutex
		stmts      []parsed
		parseFails []SQLUse
	)
	a := &Analyzer{
		Name: "sqlcheck",
		Doc:  "SQL literals must parse and match the canonical core schema (tables and columns)",
	}
	a.Run = func(pass *Pass) {
		uses := harvestForPass(pass)
		// Parse outside the lock; packages run concurrently.
		var okStmts []parsed
		var fails []SQLUse
		for _, use := range uses {
			st, err := reldb.ParseStatement(use.SQL)
			if err != nil {
				fails = append(fails, SQLUse{Pos: use.Pos, SQL: err.Error()})
				continue
			}
			okStmts = append(okStmts, parsed{pos: use.Pos, sql: use.SQL, stmt: st})
		}
		mu.Lock()
		stmts = append(stmts, okStmts...)
		parseFails = append(parseFails, fails...)
		mu.Unlock()
	}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		// Packages complete in arbitrary order under the parallel driver;
		// sort the harvest by position so validation (and any schema
		// additions from harvested CREATE TABLEs) is order-independent.
		posLess := func(a, b token.Position) bool {
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Column < b.Column
		}
		sort.Slice(stmts, func(i, j int) bool { return posLess(stmts[i].pos, stmts[j].pos) })
		sort.Slice(parseFails, func(i, j int) bool { return posLess(parseFails[i].Pos, parseFails[j].Pos) })
		for _, pf := range parseFails {
			report(pf.Pos, "parse error: %s", pf.SQL)
		}
		schema := core.SchemaTables()
		for _, p := range stmts {
			if ct, ok := p.stmt.(*reldb.CreateTableStmt); ok {
				schema.AddCreate(ct)
			}
		}
		for _, p := range stmts {
			for _, issue := range reldb.ValidateStatement(p.stmt, schema) {
				report(p.pos, "%s (in: %s)", issue, compactSQL(p.sql))
			}
		}
	}
	return a
}

// harvestForPass is HarvestSQL over the pass's package.
func harvestForPass(pass *Pass) []SQLUse {
	pkg := &Package{
		ImportPath: pass.ImportPath,
		Files:      pass.Files,
		Types:      pass.Pkg,
		Info:       pass.Info,
	}
	return HarvestSQL(pkg, pass.Fset)
}

// compactSQL renders sql on one line, truncated, for finding messages.
func compactSQL(sql string) string {
	s := strings.Join(strings.Fields(sql), " ")
	if len(s) > 80 {
		s = s[:77] + "..."
	}
	return s
}
