package lint

// leakcheck.go audits goroutine lifetimes: every `go` statement must be
// tied to a shutdown path. A goroutine is considered tied when it
//   - observes a context.Context (cancellation),
//   - participates in a sync.WaitGroup (calls Done),
//   - receives from a channel declared outside itself (close-to-stop), or
//   - is a bounded one-shot: a loop-free body whose only channel sends go
//     to free channels provably buffered at their make site.
// Anything else may outlive the server and is reported; intentional
// daemons document themselves with //lint:ignore leakcheck <reason>.

import (
	"go/ast"
	"go/constant"
	"go/types"
)

func newLeakCheck() *Analyzer {
	a := &Analyzer{
		Name: "leakcheck",
		Doc:  "every go statement must be tied to a shutdown path: a context, a WaitGroup, or a channel receive; bounded one-shots need buffered result channels",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if ok {
						checkGoStmt(pass, fn, g)
					}
					return true
				})
			}
		}
	}
	return a
}

func checkGoStmt(pass *Pass, enclosing *ast.FuncDecl, g *ast.GoStmt) {
	lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !isLit {
		// go fn(args) / go x.m(args): the body is elsewhere; accept when a
		// context flows in, otherwise demand an explicit tie.
		for _, arg := range g.Call.Args {
			if isContextType(pass.Info.Types[arg].Type) {
				return
			}
		}
		pass.Reportf(g.Pos(), "goroutine is not tied to a shutdown path (context, WaitGroup, or channel receive)")
		return
	}

	body := lit.Body
	if usesContext(pass, body) || callsWaitGroupDone(pass, body) || receivesFromFreeChannel(pass, lit) {
		return
	}
	if loopFree(body) {
		if send := unprovenSend(pass, enclosing, lit); send != nil {
			pass.Reportf(send.Pos(), "goroutine may block forever sending to %s; buffer the channel or tie the goroutine to a shutdown path", exprText(send.Chan))
			return
		}
		return // bounded one-shot: runs to completion on its own
	}
	pass.Reportf(g.Pos(), "goroutine loops without a shutdown path (context, WaitGroup, or channel receive)")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named := derefNamed(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesContext reports whether any identifier of type context.Context is
// referenced in the body — cancellation is observable.
func usesContext(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := pass.Info.Uses[id]; obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}

// callsWaitGroupDone reports whether the body calls Done on a
// sync.WaitGroup — the spawner's Wait bounds the goroutine.
func callsWaitGroupDone(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		obj := calleeObject(pass.Info, call)
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Done" {
			found = true
		}
		return !found
	})
	return found
}

// receivesFromFreeChannel reports whether the goroutine receives from (or
// ranges over, or selects on) a channel declared outside the literal —
// closing that channel stops it.
func receivesFromFreeChannel(pass *Pass, lit *ast.FuncLit) bool {
	isFreeChan := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		t := pass.Info.Types[e].Type
		if t == nil {
			return false
		}
		if _, ok := t.Underlying().(*types.Chan); !ok {
			return false
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			return obj != nil && !(lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End())
		case *ast.SelectorExpr, *ast.CallExpr:
			// Field channels and ctx.Done()-style accessors live outside.
			return true
		}
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" && isFreeChan(x.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isFreeChan(x.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopFree reports whether the body contains no loops (nested literals are
// their own goroutines' problem only if started with go, which re-enters
// checkGoStmt).
func loopFree(body *ast.BlockStmt) bool {
	free := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			free = false
		}
		return free
	})
	return free
}

// unprovenSend returns the first channel send in the goroutine whose target
// cannot be proven buffered — a one-shot goroutine blocked on an unbuffered
// send with no receiver leaks forever.
func unprovenSend(pass *Pass, enclosing *ast.FuncDecl, lit *ast.FuncLit) *ast.SendStmt {
	var bad *ast.SendStmt
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if !provenBuffered(pass, enclosing, send.Chan) {
			bad = send
		}
		return true
	})
	return bad
}

// provenBuffered reports whether ch is a local channel whose make site in
// the enclosing function has a constant capacity > 0.
func provenBuffered(pass *Pass, enclosing *ast.FuncDecl, ch ast.Expr) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	buffered := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || buffered {
			return !buffered
		}
		for i, lhs := range as.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || pass.Info.Defs[lid] != obj || i >= len(as.Rhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				continue
			}
			if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "make" {
				continue
			}
			if tv, ok := pass.Info.Types[call.Args[1]]; ok && tv.Value != nil {
				if c, exact := constant.Int64Val(tv.Value); exact && c > 0 {
					buffered = true
				}
			}
		}
		return !buffered
	})
	return buffered
}

// exprText renders a short expression for messages.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	}
	return "channel"
}
