package lint

// closecheck.go tracks resource lifetimes on the CFG: a local variable
// assigned from a call returning a value whose type has Close() error —
// files, reldb prepared statements, HTTP bodies — must reach Close (or
// defer Close) on every path that returns normally. The analysis is a
// may-open forward dataflow: Close kills the resource, escaping it (return,
// argument, store, send, closure capture) transfers ownership and stops
// tracking, and the error-guard branch after `v, err := open(...)` kills it
// on the failure edge where v was never valid. Findings anchor at the
// return statement that leaks, naming the creation site — so a resource
// closed on the main path but leaked on one early return is reported on
// that return only.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// openRes is one tracked resource: where it was created and the error
// variable paired with it (nil for single-result constructors).
type openRes struct {
	pos    token.Pos
	name   string
	errObj types.Object
}

// closeFact maps still-open resource objects. May-analysis: join = union.
type closeFact map[types.Object]openRes

func (f closeFact) clone() closeFact {
	out := make(closeFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func newCloseCheck() *Analyzer {
	a := &Analyzer{
		Name: "closecheck",
		Doc:  "values with a Close() error method must be closed (or escape) on every return path",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, body := range funcBodies(f) {
				checkCloses(pass, body)
			}
		}
	}
	return a
}

func checkCloses(pass *Pass, body *ast.BlockStmt) {
	// Objects captured by nested function literals leave our intraprocedural
	// world: never track them.
	captured := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					captured[obj] = true
				}
			}
			return true
		})
		return false
	})

	cfg := BuildCFG(body)
	transfer := func(b *Block, in closeFact) closeFact {
		fact := in
		for _, n := range b.Nodes {
			fact = closeTransferNode(pass, n, fact, captured)
		}
		return fact
	}
	in := Solve(cfg, FlowProblem[closeFact]{
		Entry:    closeFact{},
		Join:     joinCloseFacts,
		Equal:    equalCloseFacts,
		Transfer: func(b *Block, f closeFact) closeFact { return transfer(b, f) },
		Edge:     func(from *Block, i int, out closeFact) closeFact { return closeEdgeRefine(pass, from, i, out) },
	})

	// Report at each return that flows an open resource into Exit.
	for _, blk := range cfg.Blocks {
		fact, reachable := in[blk]
		if !reachable || blk == cfg.Exit || blk.Panic {
			continue
		}
		exitIdx := -1
		for i, s := range blk.Succs {
			if s == cfg.Exit {
				exitIdx = i
			}
		}
		if exitIdx < 0 {
			continue
		}
		out := transfer(blk, fact)
		out = closeEdgeRefine(pass, blk, exitIdx, out)
		if len(out) == 0 {
			continue
		}
		retPos := body.End()
		if len(blk.Nodes) > 0 {
			retPos = blk.Nodes[len(blk.Nodes)-1].Pos()
		}
		for _, obj := range sortedResObjs(out) {
			res := out[obj]
			pass.Reportf(retPos, "%s (created at %s) may not be closed before this return", res.name, posStr(pass.Fset, res.pos))
		}
	}
}

// closeTransferNode pushes the fact through one statement.
func closeTransferNode(pass *Pass, n ast.Node, in closeFact, captured map[types.Object]bool) closeFact {
	fact := in
	mutated := false
	mutable := func() closeFact {
		if !mutated {
			fact = fact.clone()
			mutated = true
		}
		return fact
	}

	if as, ok := n.(*ast.AssignStmt); ok {
		// Reassigning a resource's paired error variable invalidates the
		// pairing: after `info, err := f.Stat()`, a branch on err says
		// nothing about whether f was opened successfully.
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			for resObj, res := range fact {
				if res.errObj != nil && res.errObj == obj {
					m := mutable()
					res.errObj = nil
					m[resObj] = res
				}
			}
		}
		// Creation: v, err := open(...) / v := open(...).
		if len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				if obj, res, ok := closerCreation(pass, as, call); ok && !captured[obj] {
					// Escapes on the RHS (the call's args) still kill first.
					fact = killEscapes(pass, n, fact, &mutated)
					m := mutable()
					m[obj] = res
					return fact
				}
			}
		}
	}

	// Close: obj.Close() directly or under defer.
	closed := closedObjs(pass, n)
	for _, obj := range closed {
		if _, ok := fact[obj]; ok {
			m := mutable()
			delete(m, obj)
		}
	}

	return killEscapes(pass, n, fact, &mutated)
}

// closerCreation matches an assignment whose call produces a closer: the
// callee returns (T) or (T, error) where T has Close() error, and the
// result lands in a plain local identifier.
func closerCreation(pass *Pass, as *ast.AssignStmt, call *ast.CallExpr) (types.Object, openRes, bool) {
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, openRes{}, false
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	if obj == nil || !hasCloseMethod(obj.Type()) {
		return nil, openRes{}, false
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return nil, openRes{}, false
	}
	var errObj types.Object
	switch rt := tv.Type.(type) {
	case *types.Tuple:
		if rt.Len() != 2 || !isErrorType(rt.At(1).Type()) || len(as.Lhs) != 2 {
			return nil, openRes{}, false
		}
		if eid, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident); ok && eid.Name != "_" {
			if e := pass.Info.Defs[eid]; e != nil {
				errObj = e
			} else {
				errObj = pass.Info.Uses[eid]
			}
		}
	default:
		if len(as.Lhs) != 1 {
			return nil, openRes{}, false
		}
	}
	return obj, openRes{pos: as.Pos(), name: id.Name, errObj: errObj}, true
}

// hasCloseMethod reports whether t (or *t) has a Close() error method.
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type())
}

// closedObjs returns resources this statement closes: obj.Close() as an
// expression or deferred (including inside a deferred closure).
func closedObjs(pass *Pass, n ast.Node) []types.Object {
	var objs []types.Object
	collect := func(root ast.Node, intoLits bool) {
		ast.Inspect(root, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok && !intoLits {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
				return true
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					objs = append(objs, obj)
				}
			}
			return true
		})
	}
	if d, ok := n.(*ast.DeferStmt); ok {
		collect(d, true)
		return objs
	}
	for _, sub := range ownExprs(n) {
		collect(sub, false)
	}
	return objs
}

// killEscapes drops resources whose identifier escapes in this statement:
// returned, passed as an argument, stored anywhere, sent, or aliased.
// A use as the receiver of a method call (stmt.Query(...)) is not an
// escape; neither is the Close call itself.
func killEscapes(pass *Pass, n ast.Node, fact closeFact, mutated *bool) closeFact {
	if len(fact) == 0 {
		return fact
	}
	escaped := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				escaped[obj] = true
			}
		}
	}
	inspect := func(root ast.Node) {
		ast.Inspect(root, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.ReturnStmt:
				for _, r := range s.Results {
					mark(r)
				}
			case *ast.CallExpr:
				// Receiver uses are fine; arguments escape.
				for _, arg := range s.Args {
					mark(arg)
				}
			case *ast.CompositeLit:
				for _, el := range s.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						mark(kv.Value)
					} else {
						mark(el)
					}
				}
			case *ast.SendStmt:
				mark(s.Value)
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					mark(s.X)
				}
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					// Skip the creation call itself; alias assignments escape.
					if _, isCall := ast.Unparen(r).(*ast.CallExpr); !isCall {
						mark(r)
					}
				}
			}
			return true
		})
	}
	for _, sub := range ownExprs(n) {
		inspect(sub)
	}
	if len(escaped) == 0 {
		return fact
	}
	out := fact
	for obj := range escaped {
		if _, ok := out[obj]; ok {
			if !*mutated {
				out = out.clone()
				*mutated = true
			}
			delete(out, obj)
		}
	}
	return out
}

// closeEdgeRefine kills a resource on the branch where its paired error is
// known non-nil — `v, err := open(...); if err != nil { return err }` does
// not leak v, which was never valid. Panic edges flow nothing.
func closeEdgeRefine(pass *Pass, from *Block, succIdx int, out closeFact) closeFact {
	if from.Panic {
		return closeFact{}
	}
	if from.Cond == nil || len(out) == 0 {
		return out
	}
	errObj, nonNilOnTrue, ok := errNilCheck(pass, from.Cond)
	if !ok {
		return out
	}
	deadEdge := 0 // err != nil: resource dead on the true edge
	if !nonNilOnTrue {
		deadEdge = 1 // err == nil: dead on the false edge
	}
	if succIdx != deadEdge {
		return out
	}
	var next closeFact
	for obj, res := range out {
		if res.errObj == errObj && errObj != nil {
			if next == nil {
				next = out.clone()
			}
			delete(next, obj)
		}
	}
	if next == nil {
		return out
	}
	return next
}

// errNilCheck matches `err != nil` / `err == nil` over a plain identifier,
// returning the error object and whether the error is non-nil on the true
// branch.
func errNilCheck(pass *Pass, cond ast.Expr) (types.Object, bool, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return nil, false, false
	}
	var idExpr ast.Expr
	switch {
	case isNilIdent(bin.Y):
		idExpr = bin.X
	case isNilIdent(bin.X):
		idExpr = bin.Y
	default:
		return nil, false, false
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	obj := pass.Info.Uses[id]
	if obj == nil || !isErrorType(obj.Type()) {
		return nil, false, false
	}
	return obj, bin.Op == token.NEQ, true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func joinCloseFacts(a, b closeFact) closeFact {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func equalCloseFacts(a, b closeFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av != bv {
			return false
		}
	}
	return true
}

func sortedResObjs(f closeFact) []types.Object {
	objs := make([]types.Object, 0, len(f))
	for o := range f {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	return objs
}
