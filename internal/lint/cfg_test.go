package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// parseBody parses src as a function body and returns it with its fset.
func parseBody(t testing.TB, src string) (*ast.BlockStmt, *token.FileSet) {
	if t != nil {
		t.Helper()
	}
	fset := token.NewFileSet()
	file := "package p\nfunc f() {\n" + src + "\n}"
	f, err := parser.ParseFile(fset, "cfg_test.go", file, 0)
	if err != nil {
		if t != nil {
			t.Fatalf("parse: %v\n%s", err, file)
		}
		return nil, nil
	}
	fn := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return fn.Body, fset
}

// edgeMap extracts "bN -> succs" pairs from a CFG for structural asserts.
func edgeMap(c *CFG) map[int][]string {
	out := map[int][]string{}
	for _, blk := range c.Blocks {
		if blk == c.Exit {
			continue
		}
		var succs []string
		for _, s := range blk.Succs {
			if s == c.Exit {
				succs = append(succs, "exit")
			} else {
				succs = append(succs, fmt.Sprintf("b%d", s.Index))
			}
		}
		out[blk.Index] = succs
	}
	return out
}

// TestCFGStructure pins block/edge structure for every control construct
// the builder handles. Expectations name blocks by index (entry is b0,
// exit is b1) and list each block's successors in edge order; blocks whose
// index is not listed must have no successors.
func TestCFGStructure(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want map[int][]string // block index -> successor labels
	}{
		{
			name: "straight line",
			src:  "x := 1\n_ = x",
			want: map[int][]string{0: {"exit"}},
		},
		{
			name: "if without else",
			src:  "x := 1\nif x > 0 {\nx = 2\n}\n_ = x",
			// b0: cond (true->b2 then, false->b3 after), b2 -> b3, b3 -> exit
			want: map[int][]string{0: {"b2", "b3"}, 2: {"b3"}, 3: {"exit"}},
		},
		{
			name: "if with else",
			src:  "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x",
			want: map[int][]string{0: {"b2", "b3"}, 2: {"b4"}, 3: {"b4"}, 4: {"exit"}},
		},
		{
			name: "if with early return",
			src:  "x := 1\nif x > 0 {\nreturn\n}\n_ = x",
			// then-block returns straight to exit; only the false edge
			// reaches the after-block.
			want: map[int][]string{0: {"b2", "b3"}, 2: {"exit"}, 3: {"exit"}},
		},
		{
			name: "for with cond and post",
			src:  "for i := 0; i < 3; i++ {\n_ = i\n}",
			// b0 init -> b2 head; head true->b3 body, false->b4 after;
			// body -> b5 post -> head.
			want: map[int][]string{0: {"b2"}, 2: {"b3", "b4"}, 3: {"b5"}, 4: {"exit"}, 5: {"b2"}},
		},
		{
			name: "infinite for without break",
			src:  "for {\n_ = 1\n}",
			// head -> body -> head; the after-block exists but nothing
			// reaches it, and nothing reaches exit.
			want: map[int][]string{0: {"b2"}, 2: {"b3"}, 3: {"b2"}, 4: {"exit"}},
		},
		{
			name: "for with break and continue",
			src:  "for {\nif true {\nbreak\n}\nif false {\ncontinue\n}\n_ = 1\n}",
			want: map[int][]string{
				0: {"b2"},       // entry -> head
				2: {"b3"},       // head -> body
				3: {"b5", "b6"}, // if true: then(b5), after(b6)
				5: {"b4"},       // break -> after-loop
				6: {"b7", "b8"}, // if false: then(b7), after(b8)
				7: {"b2"},       // continue -> head
				8: {"b2"},       // body end -> head
				4: {"exit"},     // after-loop -> exit
			},
		},
		{
			name: "range",
			src:  "xs := []int{1}\nfor _, x := range xs {\n_ = x\n}",
			// b0 -> b2 head; head -> b3 body, b4 after; body -> head.
			want: map[int][]string{0: {"b2"}, 2: {"b3", "b4"}, 3: {"b2"}, 4: {"exit"}},
		},
		{
			name: "switch with default",
			src:  "x := 1\nswitch x {\ncase 1:\nx = 2\ncase 2:\nx = 3\ndefault:\nx = 4\n}\n_ = x",
			// head b0 -> case bodies b3,b4,b5 (default present: no direct
			// head->after edge); every body -> after b2.
			want: map[int][]string{0: {"b3", "b4", "b5"}, 3: {"b2"}, 4: {"b2"}, 5: {"b2"}, 2: {"exit"}},
		},
		{
			name: "switch without default",
			src:  "x := 1\nswitch x {\ncase 1:\nx = 2\n}\n_ = x",
			want: map[int][]string{0: {"b3", "b2"}, 3: {"b2"}, 2: {"exit"}},
		},
		{
			name: "switch fallthrough",
			src:  "x := 1\nswitch x {\ncase 1:\nfallthrough\ncase 2:\nx = 3\n}\n_ = x",
			// case-1 body b3 falls through to case-2 body b4.
			want: map[int][]string{0: {"b3", "b4", "b2"}, 3: {"b4"}, 4: {"b2"}, 2: {"exit"}},
		},
		{
			name: "type switch",
			src:  "var v interface{} = 1\nswitch v.(type) {\ncase int:\n_ = 1\ndefault:\n_ = 2\n}",
			want: map[int][]string{0: {"b3", "b4"}, 3: {"b2"}, 4: {"b2"}, 2: {"exit"}},
		},
		{
			name: "select",
			src:  "ch := make(chan int, 1)\nselect {\ncase v := <-ch:\n_ = v\ndefault:\n}",
			// head b0 -> comm cases b3,b4; both -> after b2. No head->after
			// edge: select always takes a case.
			want: map[int][]string{0: {"b3", "b4"}, 3: {"b2"}, 4: {"b2"}, 2: {"exit"}},
		},
		{
			name: "select forever",
			src:  "select {}",
			// No cases: the head blocks forever; the after-block exists but
			// nothing reaches it.
			want: map[int][]string{0: nil, 2: {"exit"}},
		},
		{
			name: "goto forward",
			src:  "x := 1\nif x > 0 {\ngoto done\n}\nx = 2\ndone:\n_ = x",
			// goto in then-block b2 targets the labeled block; label block
			// b4 (after) is fallthrough target too... structure: b0 cond ->
			// b2(goto)/b3(after-if); b3 -> b4 label; goto edge b2 -> b4.
			want: map[int][]string{0: {"b2", "b3"}, 2: {"b4"}, 3: {"b4"}, 4: {"exit"}},
		},
		{
			name: "labeled break",
			src:  "outer:\nfor {\nfor {\nbreak outer\n}\n}",
			want: map[int][]string{
				0: {"b2"},   // entry -> label block
				2: {"b3"},   // label -> outer head
				3: {"b4"},   // outer head -> outer body
				4: {"b6"},   // outer body -> inner head
				6: {"b7"},   // inner head -> inner body
				7: {"b5"},   // break outer -> outer after
				5: {"exit"}, // outer after -> exit
				8: {"b3"},   // inner after: unreachable, wired to outer head
			},
		},
		{
			name: "panic terminates",
			src:  "x := 1\nif x > 0 {\npanic(\"boom\")\n}\n_ = x",
			want: map[int][]string{0: {"b2", "b3"}, 2: {"exit"}, 3: {"exit"}},
		},
		{
			name: "defer stays in line",
			src:  "defer println(1)\n_ = 2",
			want: map[int][]string{0: {"exit"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, fset := parseBody(t, tc.src)
			cfg := BuildCFG(body)
			got := edgeMap(cfg)
			for idx, want := range tc.want {
				g := strings.Join(got[idx], " ")
				w := strings.Join(want, " ")
				if g != w {
					t.Errorf("block b%d successors = [%s], want [%s]\nCFG:\n%s",
						idx, g, w, cfg.Dump(fset))
				}
			}
			for idx, succs := range got {
				if _, listed := tc.want[idx]; !listed && len(succs) > 0 {
					t.Errorf("unexpected successors on b%d: %v\nCFG:\n%s", idx, succs, cfg.Dump(fset))
				}
			}
		})
	}
}

// TestCFGLabeledBreakUnreachableInnerAfter pins the quirk documented in the
// labeled-break case: the inner loop's after-block is built (wired to the
// outer loop's continue target) but unreachable.
func TestCFGLabeledBreakUnreachableInnerAfter(t *testing.T) {
	body, _ := parseBody(t, "outer:\nfor {\nfor {\nbreak outer\n}\n}")
	cfg := BuildCFG(body)
	reach := cfg.Reachable()
	var unreachable []int
	for _, blk := range cfg.Blocks {
		if !reach[blk] && len(blk.Succs) > 0 {
			unreachable = append(unreachable, blk.Index)
		}
	}
	if len(unreachable) == 0 {
		t.Fatalf("expected an unreachable inner after-block, got none\n%s", cfg.Dump(token.NewFileSet()))
	}
}

// TestCFGPanicBlockMarked verifies panic/os.Exit blocks carry the Panic
// flag so lifetime analyzers can skip abnormal exits.
func TestCFGPanicBlockMarked(t *testing.T) {
	body, _ := parseBody(t, "x := 1\nif x > 0 {\npanic(\"a\")\n}\nif x > 1 {\nreturn\n}")
	cfg := BuildCFG(body)
	var panics, returns int
	for _, blk := range cfg.Blocks {
		if blk.Panic {
			panics++
		}
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
				if blk.Panic {
					t.Errorf("return block b%d wrongly marked Panic", blk.Index)
				}
			}
		}
	}
	if panics != 1 {
		t.Errorf("want exactly 1 panic-marked block, got %d", panics)
	}
	if returns != 1 {
		t.Errorf("want 1 return block, got %d", returns)
	}
}

// TestCFGCondConvention pins the Succs[0]=true / Succs[1]=false convention
// that edge-sensitive analyzers (closecheck, lockorder TryLock) rely on.
func TestCFGCondConvention(t *testing.T) {
	body, _ := parseBody(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}")
	cfg := BuildCFG(body)
	cond := cfg.Blocks[0]
	if cond.Cond == nil {
		t.Fatal("entry block should carry the branch condition")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond block has %d successors, want 2", len(cond.Succs))
	}
	// The true block assigns 2, the false block assigns 3.
	litOf := func(b *Block) string {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
					return lit.Value
				}
			}
		}
		return ""
	}
	if got := litOf(cond.Succs[0]); got != "2" {
		t.Errorf("Succs[0] (true edge) assigns %q, want \"2\"", got)
	}
	if got := litOf(cond.Succs[1]); got != "3" {
		t.Errorf("Succs[1] (false edge) assigns %q, want \"3\"", got)
	}
}

// TestSolveReachingMode exercises the generic solver with a tiny constant
// lattice: track whether each block can be reached with a flag set by one
// branch. The fixed point must mark the merge block "maybe".
func TestSolveReachingMode(t *testing.T) {
	body, _ := parseBody(t, "x := 1\nif x > 0 {\nx = 2\n}\n_ = x")
	cfg := BuildCFG(body)
	// Fact: 0 = flag clear, 1 = flag set, 2 = maybe (join of both).
	in := Solve(cfg, FlowProblem[int]{
		Entry: 0,
		Join: func(a, b int) int {
			if a == b {
				return a
			}
			return 2
		},
		Equal: func(a, b int) bool { return a == b },
		Transfer: func(b *Block, f int) int {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "2" {
						return 1
					}
				}
			}
			return f
		},
	})
	exitFact, ok := in[cfg.Exit]
	if !ok {
		t.Fatal("exit unreachable?")
	}
	if exitFact != 2 {
		t.Errorf("exit fact = %d, want 2 (maybe): one path sets the flag, one does not", exitFact)
	}
}

// TestSolveLoopTerminates pins termination on a looping CFG with a
// growing-then-capped fact.
func TestSolveLoopTerminates(t *testing.T) {
	body, _ := parseBody(t, "for i := 0; i < 3; i++ {\n_ = i\n}")
	cfg := BuildCFG(body)
	steps := 0
	in := Solve(cfg, FlowProblem[int]{
		Entry: 0,
		Join: func(a, b int) int {
			if a > b {
				return a
			}
			return b
		},
		Equal: func(a, b int) bool { return a == b },
		Transfer: func(b *Block, f int) int {
			steps++
			if steps > 10000 {
				t.Fatal("solver did not terminate")
			}
			if f < 3 { // finite-height chain 0..3
				return f + 1
			}
			return f
		},
	})
	if len(in) == 0 {
		t.Fatal("no facts computed")
	}
}

// FuzzCFG builds CFGs over arbitrary syntactically valid function bodies
// and asserts structural invariants instead of exact shapes: no panic, all
// successor pointers stay inside the block list, and the entry/exit blocks
// exist.
func FuzzCFG(f *testing.F) {
	seeds := []string{
		"x := 1\n_ = x",
		"if a() {\nreturn\n} else if b() {\npanic(1)\n}",
		"for i := 0; i < 10; i++ {\nif i == 2 {\ncontinue\n}\nif i == 3 {\nbreak\n}\n}",
		"outer:\nfor {\nselect {\ncase <-ch:\nbreak outer\ndefault:\ncontinue\n}\n}",
		"switch x {\ncase 1:\nfallthrough\ncase 2:\ngoto end\n}\nend:\nreturn",
		"defer f()\ngo g()\nL:\nfor range xs {\nbreak L\n}",
		"switch v := v.(type) {\ncase int:\n_ = v\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file := "package p\nfunc f() {\n" + src + "\n}"
		parsed, err := parser.ParseFile(fset, "fuzz.go", file, 0)
		if err != nil {
			t.Skip()
		}
		decl, ok := parsed.Decls[len(parsed.Decls)-1].(*ast.FuncDecl)
		if !ok || decl.Body == nil {
			t.Skip()
		}
		cfg := BuildCFG(decl.Body)
		if cfg.Entry == nil || cfg.Exit == nil {
			t.Fatal("missing entry/exit")
		}
		inList := map[*Block]bool{}
		for _, blk := range cfg.Blocks {
			inList[blk] = true
		}
		for _, blk := range cfg.Blocks {
			for _, s := range blk.Succs {
				if !inList[s] {
					t.Fatalf("block b%d has successor outside the block list", blk.Index)
				}
			}
			if blk != cfg.Exit && blk.Cond != nil && len(blk.Succs) != 2 {
				t.Fatalf("cond block b%d has %d successors, want 2", blk.Index, len(blk.Succs))
			}
		}
		if len(cfg.Exit.Succs) != 0 {
			t.Fatal("exit block must have no successors")
		}
		// The solver must terminate on whatever shape came out.
		Solve(cfg, FlowProblem[bool]{
			Entry:    false,
			Join:     func(a, b bool) bool { return a || b },
			Equal:    func(a, b bool) bool { return a == b },
			Transfer: func(b *Block, f bool) bool { return f || len(b.Nodes) > 3 },
		})
	})
}

// loopCalls renders each natural loop as the sorted set of function names
// called from its body blocks, in header order. Range heads are skipped
// whole — exactly as the alloclint walk skips them — because their clause
// expressions run once per loop entry, not per iteration.
func loopCalls(c *CFG) [][]string {
	var out [][]string
	for _, lp := range c.NaturalLoops() {
		seen := map[string]bool{}
		for blk := range lp.Blocks {
			for _, n := range blk.Nodes {
				if _, ok := n.(*ast.RangeStmt); ok {
					continue
				}
				ast.Inspect(n, func(nd ast.Node) bool {
					if call, ok := nd.(*ast.CallExpr); ok {
						if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
							seen[id.Name] = true
						}
					}
					return true
				})
			}
		}
		names := make([]string, 0, len(seen))
		for n := range seen {
			names = append(names, n)
		}
		sort.Strings(names)
		out = append(out, names)
	}
	return out
}

// TestNaturalLoops pins back-edge detection and loop-body membership for
// every loop shape the alloclint analyzer depends on. Membership is
// asserted by which calls land inside each loop: early-exit arms (return,
// continue to an outer label) must stay outside, because allocations there
// run at most once, not per iteration.
func TestNaturalLoops(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want [][]string // per loop (header order): sorted call names inside
	}{
		{
			name: "no loop",
			src:  "a()\nif c() {\n\tb()\n}",
			want: nil,
		},
		{
			name: "three-clause for",
			src:  "for i := 0; i < 10; i++ {\n\ta()\n}\nb()",
			want: [][]string{{"a"}},
		},
		{
			name: "while-style for with call condition",
			src:  "for c() {\n\ta()\n}\nb()",
			want: [][]string{{"a", "c"}},
		},
		{
			name: "for-range",
			src:  "for range xs {\n\ta()\n}\nb()",
			want: [][]string{{"a"}},
		},
		{
			name: "range head clause runs per entry not per iteration",
			src:  "for _, x := range f() {\n\ta(x)\n}",
			want: [][]string{{"a"}},
		},
		{
			name: "sequential loops",
			src:  "for range xs {\n\ta()\n}\nfor range xs {\n\tb()\n}",
			want: [][]string{{"a"}, {"b"}},
		},
		{
			name: "nested loops",
			src:  "for range xs {\n\ta()\n\tfor range ys {\n\t\tb()\n\t}\n}",
			want: [][]string{{"a", "b"}, {"b"}},
		},
		{
			name: "continue merges into one loop",
			src:  "for i := 0; i < 10; i++ {\n\tif c() {\n\t\tcontinue\n\t}\n\ta()\n}",
			want: [][]string{{"a", "c"}},
		},
		{
			name: "labeled continue exits the inner loop",
			src:  "outer:\nfor i := 0; i < 10; i++ {\n\tfor j := 0; j < 10; j++ {\n\t\tif c() {\n\t\t\td()\n\t\t\tcontinue outer\n\t\t}\n\t\ta()\n\t}\n}",
			want: [][]string{{"a", "c", "d"}, {"a", "c"}},
		},
		{
			name: "goto-formed loop",
			src:  "i := 0\nloop:\na()\ni++\nif i < 10 {\n\tgoto loop\n}\nb()",
			want: [][]string{{"a"}},
		},
		{
			name: "return arm is outside the loop",
			src:  "for range xs {\n\tif c() {\n\t\te()\n\t\treturn\n\t}\n\ta()\n}",
			want: [][]string{{"a", "c"}},
		},
		{
			name: "select in loop keeps looping arms only",
			src:  "for {\n\tselect {\n\tcase <-ch1:\n\t\ta()\n\tcase <-ch2:\n\t\tb()\n\t\treturn\n\t}\n\tc()\n}",
			want: [][]string{{"a", "c"}},
		},
		{
			name: "labeled break arm is outside the loop",
			src:  "outer:\nfor range xs {\n\tfor range ys {\n\t\tif c() {\n\t\t\te()\n\t\t\tbreak outer\n\t\t}\n\t\ta()\n\t}\n}",
			want: [][]string{{"a", "c"}, {"a", "c"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, _ := parseBody(t, tc.src)
			got := loopCalls(BuildCFG(body))
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("loops = %v, want %v\nsrc:\n%s", got, tc.want, tc.src)
			}
		})
	}
}
