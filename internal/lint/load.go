package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package from the module
// under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as `go list` understands them, relative to the
// current directory), parses every matched package's non-test sources with
// comments, and type-checks them. Imports — stdlib and module-local alike —
// are satisfied from compiler export data produced by `go list -export`, so
// the loader needs only the standard library: go/parser for syntax,
// go/types for semantics, and the go tool for dependency export data. No
// golang.org/x/tools.
func Load(patterns []string) ([]*Package, *token.FileSet, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error", "--"}, patterns...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	if len(roots) == 0 {
		return nil, nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(roots))
	for _, p := range roots {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, fset, nil
}
