package lint

// cfg.go builds intraprocedural control-flow graphs over go/ast function
// bodies — the foundation the path-sensitive analyzers (lockorder,
// closecheck, guardedby) solve dataflow problems on. Pure syntax: the
// builder needs no type information, handles if/for/range/switch/
// typeswitch/select/goto/labeled break+continue/defer/fallthrough, and
// treats panic(...) and os.Exit-style calls as terminators.

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// Block is one basic block: a maximal straight-line run of AST nodes.
// Nodes holds statements and, for branching blocks, the condition
// expression as its last entry. A block ending in a two-way branch sets
// Cond, and by convention Succs[0] is the true edge and Succs[1] the false
// edge; multi-way blocks (switch heads, select heads, range heads) leave
// Cond nil and fan out in source order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	// Cond is the branch condition when this block ends in a conditional
	// jump (if, for-with-cond). Succs[0] is then the true edge, Succs[1]
	// the false edge.
	Cond ast.Expr
	// Panic marks a block terminated by panic(...) or a known no-return
	// call (os.Exit, log.Fatal*). Its edge to Exit is an abnormal exit:
	// resource- and lock-lifetime checks skip it.
	Panic bool
}

// CFG is one function body's control-flow graph. Blocks[0] is Entry; Exit
// is a synthetic empty block every return (and the implicit fallthrough at
// the end of the body) jumps to.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// BuildCFG constructs the CFG of one function body. The body may be a
// FuncDecl's or a FuncLit's; nested function literals are NOT descended
// into — each is analyzed as its own function by callers that care.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*Block{},
		gotos:  map[string][]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit) // implicit return at end of body
	}
	return b.cfg
}

// loopCtx is one enclosing breakable/continuable construct.
type loopCtx struct {
	label string
	brk   *Block // break target (nil for none)
	cont  *Block // continue target (nil for switch/select)
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block // nil right after a terminator; add() revives a dead block

	loops    []loopCtx
	labels   map[string]*Block   // resolved label -> target block
	gotos    map[string][]*Block // pending goto sources by label
	fallNext *Block              // next case body, target of fallthrough

	// pendingLabel is set by a LabeledStmt so the loop/switch/select it
	// labels can register labeled break/continue targets.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block, starting a fresh (unreachable)
// block when the previous one ended in a terminator.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// startBlock begins a new block reached by fallthrough from cur (when cur
// is live) and makes it current.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the label a LabeledStmt attached for the construct
// being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findLoop resolves a break/continue target. wantCont selects constructs
// with a continue target (loops only).
func (b *cfgBuilder) findLoop(label string, wantCont bool) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := b.loops[i]
		if label != "" && lc.label != label {
			continue
		}
		if wantCont {
			if lc.cont != nil {
				return lc.cont
			}
			if label != "" {
				return nil
			}
			continue
		}
		return lc.brk
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		lbl := b.startBlock()
		b.labels[s.Label.Name] = lbl
		for _, src := range b.gotos[s.Label.Name] {
			b.edge(src, lbl)
		}
		delete(b.gotos, s.Label.Name)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		if b.cur != nil {
			b.cur.Cond = s.Cond
		}
		cond := b.cur
		then := b.newBlock()
		if cond != nil {
			b.edge(cond, then) // true edge first
		}
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *Block
		hasElse := s.Else != nil
		if hasElse {
			els := b.newBlock()
			if cond != nil {
				b.edge(cond, els)
			}
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		after := b.newBlock()
		if !hasElse && cond != nil {
			b.edge(cond, after) // false edge
		}
		if thenEnd != nil {
			b.edge(thenEnd, after)
		}
		if elseEnd != nil {
			b.edge(elseEnd, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
		}
		body := b.newBlock()
		b.edge(head, body) // true edge (or the only edge for for {...})
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after) // false edge
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.loops = append(b.loops, loopCtx{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startBlock()
		head.Nodes = append(head.Nodes, s) // range clause: one iteration step
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.loops = append(b.loops, loopCtx{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, nil, s.Body, true)

	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, nil, s.Assign, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, brk: after})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			caseBlk := b.newBlock()
			b.edge(head, caseBlk)
			b.cur = caseBlk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmts(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		// A select with no cases blocks forever: head keeps no successors.
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.add(s)
			if t := b.findLoop(labelName(s.Label), false); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.CONTINUE:
			b.add(s)
			if t := b.findLoop(labelName(s.Label), true); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.GOTO:
			b.add(s)
			// A nil label only survives parser error recovery; treat the
			// jump as going nowhere rather than crashing.
			if name := labelName(s.Label); name != "" {
				if t, ok := b.labels[name]; ok {
					b.edge(b.cur, t)
				} else {
					b.gotos[name] = append(b.gotos[name], b.cur)
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			b.add(s)
			if b.fallNext != nil {
				b.edge(b.cur, b.fallNext)
			}
			b.cur = nil
		}

	default:
		// DeclStmt, AssignStmt, ExprStmt, SendStmt, IncDecStmt, GoStmt,
		// DeferStmt, EmptyStmt — straight-line nodes.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
		if isNoReturnStmt(s) {
			b.cur.Panic = true
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}
	}
}

// buildSwitch handles value switches (tag, fallthrough allowed) and type
// switches (assign, no fallthrough).
func (b *cfgBuilder) buildSwitch(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFall bool) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		clauses = append(clauses, cl.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after) // no case matched
	}
	b.loops = append(b.loops, loopCtx{label: label, brk: after})
	for i, cc := range clauses {
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		savedFall := b.fallNext
		b.fallNext = nil
		if allowFall && i+1 < len(bodies) {
			b.fallNext = bodies[i+1]
		}
		b.stmts(cc.Body)
		b.fallNext = savedFall
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

// labelName returns the label's name, or "" for an unlabeled branch.
func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// ownExprs returns the parts of a CFG node that belong to it alone. A
// RangeStmt head is stored whole, but the CFG splits its body into
// separate blocks — walking the full statement would double-visit body
// nodes — so only the range clause expressions are its own.
func ownExprs(n ast.Node) []ast.Node {
	rs, ok := n.(*ast.RangeStmt)
	if !ok {
		return []ast.Node{n}
	}
	var out []ast.Node
	for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// isNoReturnStmt reports whether a statement never returns control:
// panic(...), os.Exit(...), or log.Fatal*(...). Purely syntactic — good
// enough for terminator detection, and a false negative only costs an
// extra conservative CFG edge.
func isNoReturnStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			if pkg.Name == "os" && fn.Sel.Name == "Exit" {
				return true
			}
			if pkg.Name == "log" && strings.HasPrefix(fn.Sel.Name, "Fatal") {
				return true
			}
		}
	}
	return false
}

// Loop is one natural loop, keyed by its header block. Blocks holds the
// loop body: the header plus every block that can reach a back edge into
// the header without passing through the header again. Blocks that leave
// the loop — a `return` or `break` arm inside the loop body — are NOT part
// of the body, which is exactly the precision alloclint wants: an
// allocation on an early-exit path runs at most once, not per iteration.
type Loop struct {
	Head   *Block
	Blocks map[*Block]bool
}

// NaturalLoops finds every loop in the CFG by back-edge detection: a DFS
// from Entry marks an edge u→v as a back edge when v is an ancestor on the
// current DFS stack, and the loop body is the backward predecessor closure
// from u that stops at v. Multiple back edges into one header (a `for`
// with `continue`) merge into a single Loop. The result is ordered by
// header block index, so two builds over the same body are identical.
func (c *CFG) NaturalLoops() []Loop {
	preds := map[*Block][]*Block{}
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := map[*Block]int{c.Entry: onStack}
	type backEdge struct{ src, head *Block }
	var backs []backEdge
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{c.Entry, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Succs) {
			s := f.b.Succs[f.i]
			f.i++
			switch state[s] {
			case unvisited:
				state[s] = onStack
				stack = append(stack, frame{s, 0})
			case onStack:
				backs = append(backs, backEdge{src: f.b, head: s})
			}
			continue
		}
		state[f.b] = done
		stack = stack[:len(stack)-1]
	}

	byHead := map[*Block]*Loop{}
	var heads []*Block
	for _, be := range backs {
		lp := byHead[be.head]
		if lp == nil {
			lp = &Loop{Head: be.head, Blocks: map[*Block]bool{be.head: true}}
			byHead[be.head] = lp
			heads = append(heads, be.head)
		}
		if lp.Blocks[be.src] {
			continue
		}
		lp.Blocks[be.src] = true
		work := []*Block{be.src}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range preds[b] {
				// Only DFS-visited predecessors: an unreachable block with a
				// stray edge into the loop is not part of any executed path.
				if state[p] != unvisited && !lp.Blocks[p] {
					lp.Blocks[p] = true
					work = append(work, p)
				}
			}
		}
	}
	loops := make([]Loop, 0, len(heads))
	for _, h := range heads {
		loops = append(loops, *byHead[h])
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Head.Index < loops[j].Head.Index })
	return loops
}

// Reachable returns the set of blocks reachable from Entry. Dataflow
// reporting passes skip unreachable blocks (dead code after return).
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Dump renders the CFG compactly for tests and debugging: one line per
// block with its node summaries and successor indices. The Exit block
// prints as "exit".
func (c *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		if blk == c.Exit {
			continue
		}
		fmt.Fprintf(&sb, "b%d", blk.Index)
		if blk.Panic {
			sb.WriteString(" panic")
		}
		sb.WriteString(" [")
		for i, n := range blk.Nodes {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(nodeSummary(fset, n))
		}
		sb.WriteString("] ->")
		if len(blk.Succs) == 0 {
			sb.WriteString(" (none)")
		}
		for _, s := range blk.Succs {
			if s == c.Exit {
				sb.WriteString(" exit")
			} else {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeSummary renders one AST node as a single collapsed line.
func nodeSummary(fset *token.FileSet, n ast.Node) string {
	if rs, ok := n.(*ast.RangeStmt); ok {
		// Print only the clause, not the body the CFG already split out.
		var sb strings.Builder
		sb.WriteString("range ")
		if err := printer.Fprint(&sb, fset, rs.X); err != nil {
			return "range ?"
		}
		return sb.String()
	}
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, n); err != nil {
		return fmt.Sprintf("%T", n)
	}
	out := strings.Join(strings.Fields(sb.String()), " ")
	if len(out) > 60 {
		out = out[:57] + "..."
	}
	return out
}
