package lint

// alloclint.go proves allocation discipline on annotated hot paths. The
// annotation grammar:
//
//   - `// perf: hot path` on a function declaration (or on the line above
//     a function literal) roots a hot region. The project call graph
//     propagates hotness to every reachable callee over static,
//     interface-CHA, function-value, and enclosing edges, so annotating
//     (*Stmt).Query makes the whole executor pipeline hot transitively.
//   - `// perf: allocates intentionally` on a function excludes it: it is
//     not checked, hotness does not propagate through it, and calls to it
//     are never blamed. Use it where allocation is the point (parsers,
//     result construction that the caller retains).
//   - `//lint:ignore alloclint <reason>` suppresses one finding.
//
// Inside each hot function the CFG's natural loops (back-edge detection,
// cfg.go NaturalLoops) select the blocks that run once per iteration —
// early-exit blocks (`return`/`break` arms) are outside the loop body, so
// an allocation on an error path is not blamed. Within loop blocks the
// analyzer flags:
//
//   - composite literals of slice/map type, `make`, and map literals;
//   - `&T{}`/`new(T)` that the intraprocedural escape approximation says
//     reach the heap (returned, stored, passed, captured, or address
//     re-taken); a pointer whose only uses are field reads/writes and
//     comparisons is stack-eligible and stays silent;
//   - `append` growing a slice declared outside the loop without a
//     capacity, with a `make(..., 0, n)` suggestion when the loop bound
//     is visible (range expression or for-condition limit);
//   - known allocating calls (fmt.Sprintf and friends, strconv/strings
//     formatting, (*bytes.Buffer).String copies, (*strings.Builder).Reset
//     dropping its backing array) and string `+` concatenation;
//   - interface boxing of scalar arguments at call sites — the
//     Value-shaped hazard this executor is prone to;
//   - closures capturing outer variables (one allocation per iteration);
//   - calls to project functions or local closures that allocate on
//     every path — a must-allocate summary computed with the dataflow
//     solver over each callee's CFG (panic edges are neutral), so a
//     clean-looking loop calling an allocating helper is still caught.
//
// Everything is conservative approximation, tuned so that every finding
// on this repository is actionable; suppress the rest with a reason.

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

const (
	markerHotPath = "perf: hot path"
	markerAllocOK = "perf: allocates intentionally"
)

func (l *Linter) newAllocLint() *Analyzer {
	a := &Analyzer{
		Name: "alloclint",
		Doc:  "functions reachable from a '// perf: hot path' root must not allocate per loop iteration: hoist, pre-size, or annotate '// perf: allocates intentionally'",
	}
	a.Run = func(*Pass) {}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		g := l.graph
		if g == nil {
			return
		}
		c := &allocChecker{
			graph:     g,
			fset:      l.fset,
			hot:       map[*CGNode]bool{},
			allocOK:   map[*CGNode]bool{},
			mustAlloc: map[*CGNode]bool{},
			ctxs:      map[*CGNode]*funcCtx{},
		}
		c.propagate()
		for _, n := range g.Nodes {
			if c.hot[n] && n.Body() != nil {
				c.checkNode(n, report)
			}
		}
	}
	return a
}

type allocChecker struct {
	graph *CallGraph
	fset  *token.FileSet
	// hot: reachable from a `// perf: hot path` root without passing
	// through a `// perf: allocates intentionally` function.
	hot map[*CGNode]bool
	// allocOK: carries the intentional-allocation marker.
	allocOK map[*CGNode]bool
	// mustAlloc memoizes the per-callee "allocates on every call" summary.
	mustAlloc map[*CGNode]bool
	ctxs      map[*CGNode]*funcCtx
}

// propagate computes the hot set: BFS from annotated roots over every
// call-graph edge kind, stopping at intentional allocators.
func (c *allocChecker) propagate() {
	var queue []*CGNode
	for _, n := range c.graph.Nodes {
		if c.nodeMarked(n, markerAllocOK) {
			c.allocOK[n] = true
		}
		if c.nodeMarked(n, markerHotPath) {
			queue = append(queue, n)
		}
	}
	for _, n := range queue {
		c.hot[n] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if c.allocOK[n] {
			continue
		}
		for _, e := range n.Out {
			m := e.Callee
			if m == nil || c.hot[m] || c.allocOK[m] {
				continue
			}
			c.hot[m] = true
			queue = append(queue, m)
		}
	}
}

// nodeMarked reports whether the node carries the marker: in a FuncDecl's
// doc comment, or — for function literals — in a comment ending on the
// line above (or just before, on the same line as) the literal.
func (c *allocChecker) nodeMarked(n *CGNode, marker string) bool {
	if n.Decl != nil {
		return commentHas(marker, n.Decl.Doc)
	}
	if n.Lit == nil || n.Pkg == nil {
		return false
	}
	litPos := c.fset.Position(n.Lit.Pos())
	for _, f := range n.Pkg.Files {
		if c.fset.Position(f.Pos()).Filename != litPos.Filename {
			continue
		}
		for _, cg := range f.Comments {
			if cg.End() >= n.Lit.Pos() {
				continue
			}
			endLine := c.fset.Position(cg.End()).Line
			if (endLine == litPos.Line-1 || endLine == litPos.Line) && commentHas(marker, cg) {
				return true
			}
		}
	}
	return false
}

// ---- per-function analysis context ----

type funcCtx struct {
	node    *CGNode
	body    *ast.BlockStmt
	info    *types.Info
	pkg     *types.Package
	parents map[ast.Node]ast.Node
	// handled marks composite literals consumed by an enclosing &T{} so
	// the walker does not double-report them.
	handled map[ast.Node]bool
	varEsc  map[*types.Var]bool
	// litBind maps a local variable to the single function literal bound
	// to it, for precise local closure-call resolution (emit := func...).
	litBind map[*types.Var]*ast.FuncLit
}

func (c *allocChecker) ctxFor(n *CGNode) *funcCtx {
	if x, ok := c.ctxs[n]; ok {
		return x
	}
	x := &funcCtx{
		node:    n,
		body:    n.Body(),
		info:    n.Pkg.Info,
		pkg:     n.Pkg.Types,
		parents: map[ast.Node]ast.Node{},
		handled: map[ast.Node]bool{},
		varEsc:  map[*types.Var]bool{},
		litBind: map[*types.Var]*ast.FuncLit{},
	}
	var stack []ast.Node
	ast.Inspect(x.body, func(nd ast.Node) bool {
		if nd == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			x.parents[nd] = stack[len(stack)-1]
		}
		stack = append(stack, nd)
		return true
	})
	bound := map[*types.Var]int{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := objOf(x.info, id).(*types.Var)
		if !ok {
			return
		}
		bound[v]++
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok && bound[v] == 1 {
			x.litBind[v] = lit
		} else {
			delete(x.litBind, v)
		}
	}
	ast.Inspect(x.body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					bind(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range s.Names {
				if i < len(s.Values) {
					bind(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
	c.ctxs[n] = x
	return x
}

// parentOf returns the logical parent of a node, seeing through parens.
func (x *funcCtx) parentOf(n ast.Node) ast.Node {
	p := x.parents[n]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			return p
		}
		p = x.parents[pe]
	}
}

// objOf resolves an identifier to its object whether it defines (:=) or
// uses (=) the name.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// ---- the per-node check ----

func (c *allocChecker) checkNode(n *CGNode, report func(pos token.Position, format string, args ...any)) {
	cfg := BuildCFG(n.Body())
	loops := cfg.NaturalLoops()
	if len(loops) == 0 {
		return
	}
	ctx := c.ctxFor(n)
	inLoop := map[*Block]bool{}
	for _, lp := range loops {
		for b := range lp.Blocks {
			inLoop[b] = true
		}
	}
	reach := cfg.Reachable()
	seen := map[string]bool{}
	emit := func(s allocSite) {
		key := fmt.Sprintf("%d %s", s.pos, s.msg)
		if seen[key] {
			return
		}
		seen[key] = true
		report(c.fset.Position(s.pos), "%s", s.msg)
	}
	for _, b := range cfg.Blocks {
		if !inLoop[b] || !reach[b] {
			continue
		}
		for _, node := range b.Nodes {
			// A range head runs its clause expression once per loop entry,
			// not per iteration — skip it entirely.
			if _, ok := node.(*ast.RangeStmt); ok {
				continue
			}
			c.forEachAlloc(ctx, node, false, emit)
		}
	}
	c.checkAppends(ctx, emit)
}

// allocSite is one allocation the walker found.
type allocSite struct {
	pos token.Pos
	msg string
	// summary marks sites that count toward the must-allocate callee
	// summary (boxing and callee blame do not, to keep summaries
	// intraprocedural and cycle-free).
	summary bool
}

// forEachAlloc walks one CFG-block node and emits every allocation site.
// In summary mode (summarizing a callee) boxing and callee-blame checks
// are skipped.
func (c *allocChecker) forEachAlloc(ctx *funcCtx, root ast.Node, summaryMode bool, emit func(allocSite)) {
	ast.Inspect(root, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			if capturesOuter(ctx, x) {
				emit(allocSite{x.Pos(), "closure captures variables and allocates per iteration of a hot loop; hoist the function literal", true})
			}
			return false // the literal's body is its own call-graph node
		case *ast.CallExpr:
			c.callAlloc(ctx, x, summaryMode, emit)
			return true
		case *ast.CompositeLit:
			if ctx.handled[x] {
				return true
			}
			switch ctx.info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				emit(allocSite{x.Pos(), "composite literal allocates per iteration of a hot loop; hoist it or reuse a buffer", true})
			case *types.Map:
				emit(allocSite{x.Pos(), "map literal allocates per iteration of a hot loop; hoist it and clear() between iterations", true})
			}
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					ctx.handled[cl] = true
					if c.escapes(ctx, x) {
						emit(allocSite{x.Pos(), fmt.Sprintf("&%s{} escapes and heap-allocates per iteration of a hot loop; hoist it or keep it from escaping", allocExprText(c.fset, cl.Type)), true})
					}
				}
			}
			return true
		case *ast.BinaryExpr:
			if x.Op != token.ADD {
				return true
			}
			t, ok := ctx.info.TypeOf(x).Underlying().(*types.Basic)
			if !ok || t.Info()&types.IsString == 0 {
				return true
			}
			if tv, ok := ctx.info.Types[x]; ok && tv.Value != nil {
				return true // constant-folded
			}
			// Report only the outermost + of a concat chain.
			if p, ok := ctx.parentOf(x).(*ast.BinaryExpr); ok && p.Op == token.ADD {
				return true
			}
			emit(allocSite{x.Pos(), "string concatenation allocates per iteration of a hot loop; build into a reused buffer", true})
			return true
		}
		return true
	})
}

// callAlloc classifies one call expression.
func (c *allocChecker) callAlloc(ctx *funcCtx, call *ast.CallExpr, summaryMode bool, emit func(allocSite)) {
	info := ctx.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion. T(v) boxes when T is an interface and v a scalar.
		if !summaryMode && len(call.Args) == 1 {
			c.boxingSite(ctx, call.Args[0], tv.Type, emit)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "make":
				if _, isMap := info.TypeOf(call).Underlying().(*types.Map); isMap {
					emit(allocSite{call.Pos(), "map made per iteration of a hot loop; hoist it and clear() between iterations", true})
				} else {
					emit(allocSite{call.Pos(), "make allocates per iteration of a hot loop; hoist the buffer and reuse it across iterations", true})
				}
			case "new":
				if c.escapes(ctx, call) {
					emit(allocSite{call.Pos(), "new(T) escapes and heap-allocates per iteration of a hot loop; hoist it or keep it from escaping", true})
				}
			}
			return
		}
	}
	obj := calleeObject(info, call)
	if msg, ok := allocatorCallMsg(obj); ok {
		emit(allocSite{call.Pos(), msg, true})
		return // boxing into its params is part of the reported cost
	}
	if summaryMode {
		return
	}
	if callee := c.resolveCallee(ctx, call, obj); callee != nil && !c.allocOK[callee] && c.summaryOf(callee) {
		emit(allocSite{call.Pos(), fmt.Sprintf("%s allocates on every call and is called per iteration of a hot loop; hoist the allocation or annotate the callee '// perf: allocates intentionally'", callee.Name()), false})
	}
	c.boxingSites(ctx, call, emit)
}

// allocatorCallMsg recognizes stdlib calls that allocate on every call.
func allocatorCallMsg(obj types.Object) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if names, ok := allocPkgFuncs[pkg]; ok && funcSig(fn).Recv() == nil {
		for _, n := range names {
			if n == name {
				return fmt.Sprintf("%s.%s allocates per iteration of a hot loop; hoist it or use an append-style API into a reused buffer", fn.Pkg().Name(), name), true
			}
		}
	}
	if recv := namedReceiver(funcSig(fn)); recv != nil {
		switch {
		case pkg == "bytes" && recv.Obj().Name() == "Buffer" && name == "String":
			return "(*bytes.Buffer).String copies to a fresh string per iteration of a hot loop; key maps with m[string(buf.Bytes())] or reuse a []byte", true
		case pkg == "strings" && recv.Obj().Name() == "Builder" && name == "Reset":
			return "(*strings.Builder).Reset drops its backing array, re-allocating per iteration of a hot loop; reuse a []byte with append instead", true
		}
	}
	return "", false
}

var allocPkgFuncs = map[string][]string{
	"fmt":     {"Sprintf", "Sprint", "Sprintln", "Errorf"},
	"errors":  {"New"},
	"strconv": {"Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote", "AppendQuote"},
	"strings": {"Join", "Repeat", "Split", "SplitN", "Fields", "ToUpper", "ToLower", "Replace", "ReplaceAll", "Clone"},
	"bytes":   {"Join", "Repeat", "Split", "SplitN", "Fields", "ToUpper", "ToLower", "Clone"},
	"regexp":  {"Compile", "MustCompile"},
}

// resolveCallee maps a call to its single project callee: a statically
// resolved function with a body, or a local variable bound exactly once to
// a function literal (the `emit := func(...)` pattern).
func (c *allocChecker) resolveCallee(ctx *funcCtx, call *ast.CallExpr, obj types.Object) *CGNode {
	if fn, ok := obj.(*types.Func); ok {
		if n := c.graph.NodeOf(fn); n != nil && !n.External() {
			return n
		}
		return nil
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return c.graph.LitNode(lit)
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := objOf(ctx.info, id).(*types.Var)
	if !ok {
		return nil
	}
	if lit := ctx.litBind[v]; lit != nil {
		return c.graph.LitNode(lit)
	}
	return nil
}

// boxingSites flags scalar arguments converted to interface parameters.
func (c *allocChecker) boxingSites(ctx *funcCtx, call *ast.CallExpr, emit func(allocSite)) {
	if call.Ellipsis.IsValid() {
		return
	}
	tv, ok := ctx.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		c.boxingSite(ctx, arg, pt, emit)
	}
}

func (c *allocChecker) boxingSite(ctx *funcCtx, arg ast.Expr, param types.Type, emit func(allocSite)) {
	if !types.IsInterface(param) {
		return
	}
	at, ok := ctx.info.Types[arg]
	if !ok || at.Type == nil || at.Value != nil {
		return // constants box from the read-only data segment or not at all
	}
	basic, ok := at.Type.Underlying().(*types.Basic)
	if !ok || basic.Kind() == types.UntypedNil || basic.Kind() == types.Bool {
		return // booleans box to two runtime singletons, no allocation
	}
	emit(allocSite{arg.Pos(), fmt.Sprintf("%s is boxed into %s per iteration of a hot loop; avoid the interface conversion on the hot path", types.TypeString(at.Type, types.RelativeTo(ctx.pkg)), types.TypeString(param, types.RelativeTo(ctx.pkg))), false})
}

// ---- must-allocate callee summaries ----

// summaryOf reports whether n allocates on every normal-return path: a
// forward must-analysis over n's CFG with AND at joins; panic edges are
// neutral so an error-path panic does not mask the happy path's
// allocation.
func (c *allocChecker) summaryOf(n *CGNode) bool {
	if v, ok := c.mustAlloc[n]; ok {
		return v
	}
	c.mustAlloc[n] = false // settled below; also a cycle guard
	if n.Body() == nil || n.Pkg == nil {
		return false
	}
	ctx := c.ctxFor(n)
	cfg := BuildCFG(n.Body())
	blockAllocs := map[*Block]bool{}
	for _, b := range cfg.Blocks {
		for _, node := range b.Nodes {
			for _, own := range ownExprs(node) {
				c.forEachAlloc(ctx, own, true, func(s allocSite) {
					if s.summary {
						blockAllocs[b] = true
					}
				})
			}
		}
	}
	in := Solve(cfg, FlowProblem[bool]{
		Entry: false,
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(b *Block, in bool) bool {
			return in || blockAllocs[b]
		},
		Edge: func(from *Block, succIdx int, out bool) bool {
			if from.Panic {
				return true // never returns: neutral for the AND join
			}
			return out
		},
	})
	v, ok := in[cfg.Exit]
	c.mustAlloc[n] = ok && v
	return c.mustAlloc[n]
}

// ---- escape approximation ----

// escapes reports whether the pointer created at site (an &T{} unary
// expression or new(T) call) may outlive the enclosing function or be
// observed through the heap. The approximation: a pointer bound to a
// single local whose every use is a field read/write, dereference, or
// comparison is stack-eligible; anything else — returned, stored,
// passed as an argument or receiver, captured by a closure, aliased —
// escapes.
func (c *allocChecker) escapes(ctx *funcCtx, site ast.Expr) bool {
	switch p := ctx.parentOf(site).(type) {
	case *ast.AssignStmt:
		if len(p.Lhs) != len(p.Rhs) {
			return true
		}
		for i, r := range p.Rhs {
			if ast.Unparen(r) != ast.Unparen(site.(ast.Expr)) && r != site {
				continue
			}
			id, ok := p.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			v, ok := objOf(ctx.info, id).(*types.Var)
			if !ok {
				return true
			}
			return c.varEscapes(ctx, v)
		}
		return true
	case *ast.ValueSpec:
		for i, r := range p.Values {
			if r != site || i >= len(p.Names) {
				continue
			}
			v, ok := ctx.info.Defs[p.Names[i]].(*types.Var)
			if !ok {
				return true
			}
			return c.varEscapes(ctx, v)
		}
		return true
	}
	return true
}

// varEscapes reports whether any use of v lets the pointee escape.
func (c *allocChecker) varEscapes(ctx *funcCtx, v *types.Var) bool {
	if esc, ok := ctx.varEsc[v]; ok {
		return esc
	}
	esc := false
	ast.Inspect(ctx.body, func(nd ast.Node) bool {
		if esc {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok || ctx.info.Uses[id] != v {
			return true
		}
		if c.identEscapes(ctx, id) {
			esc = true
		}
		return true
	})
	ctx.varEsc[v] = esc
	return esc
}

// identEscapes classifies one use of a tracked pointer variable.
func (c *allocChecker) identEscapes(ctx *funcCtx, id *ast.Ident) bool {
	// A use inside a nested function literal is a capture: the closure
	// may outlive the frame.
	for a := ctx.parents[id]; a != nil; a = ctx.parents[a] {
		if _, ok := a.(*ast.FuncLit); ok {
			return true
		}
	}
	switch p := ctx.parentOf(id).(type) {
	case *ast.SelectorExpr:
		if ast.Unparen(p.X) != ast.Expr(id) {
			return true
		}
		switch q := ctx.parentOf(p).(type) {
		case *ast.CallExpr:
			// x.m(...): the method may retain its receiver.
			return ast.Unparen(q.Fun) == ast.Expr(p)
		case *ast.UnaryExpr:
			return q.Op == token.AND // &x.f re-exposes the pointer
		}
		return false // field read or write: the pointee stays put
	case *ast.StarExpr:
		if q, ok := ctx.parentOf(p).(*ast.UnaryExpr); ok && q.Op == token.AND {
			return true // &*x is x again
		}
		return false
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				return false // reassignment kills the old pointee
			}
		}
		return true // aliased into another location
	case *ast.BinaryExpr:
		return false // comparisons (x == nil) and the like
	case *ast.IncDecStmt:
		return false
	}
	return true
}

// capturesOuter reports whether a function literal captures any variable
// declared outside it (package-level variables are accessed directly and
// do not force a heap closure).
func capturesOuter(ctx *funcCtx, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if captures {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := ctx.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == ctx.pkg.Scope() {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

// ---- the append rule ----

// checkAppends flags `x = append(x, ...)` statements sitting directly in
// a loop body when x is declared outside the loop with no capacity. The
// direct-statement restriction keeps the rule to appends that run every
// iteration; a conditional append inside an if is a different (data-
// dependent) shape the analyzer stays quiet about.
func (c *allocChecker) checkAppends(ctx *funcCtx, emit func(allocSite)) {
	ast.Inspect(ctx.body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || call.Ellipsis.IsValid() || len(call.Args) < 2 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok {
			return true
		} else if bi, ok := ctx.info.Uses[id].(*types.Builtin); !ok || bi.Name() != "append" {
			return true
		}
		if allocExprText(c.fset, call.Args[0]) != allocExprText(c.fset, as.Lhs[0]) {
			return true // not a self-append
		}
		blk, ok := ctx.parents[as].(*ast.BlockStmt)
		if !ok {
			return true
		}
		loop := ctx.parents[blk]
		var loopPos, loopEnd token.Pos
		var bound string
		switch l := loop.(type) {
		case *ast.ForStmt:
			if l.Body != blk {
				return true
			}
			loopPos, loopEnd, bound = l.Pos(), l.End(), forBound(c.fset, l)
		case *ast.RangeStmt:
			if l.Body != blk {
				return true
			}
			loopPos, loopEnd, bound = l.Pos(), l.End(), rangeBound(c.fset, l)
		default:
			return true
		}
		if !c.unsizedOutsideLoop(ctx, as.Lhs[0], loopPos, loopEnd) {
			return true
		}
		target := allocExprText(c.fset, as.Lhs[0])
		if bound != "" {
			emit(allocSite{as.Pos(), fmt.Sprintf("append to %s grows an unsized slice per iteration of a hot loop; pre-size with make(..., 0, %s) before the loop", target, bound), false})
		} else {
			emit(allocSite{as.Pos(), fmt.Sprintf("append to %s grows an unsized slice per iteration of a hot loop; pre-size it before the loop", target), false})
		}
		return true
	})
}

// unsizedOutsideLoop reports whether the append target is declared
// outside [loopPos, loopEnd) and provably starts with no capacity.
func (c *allocChecker) unsizedOutsideLoop(ctx *funcCtx, target ast.Expr, loopPos, loopEnd token.Pos) bool {
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		v, ok := ctx.info.Uses[t].(*types.Var)
		if !ok {
			return false
		}
		if v.Pos() >= loopPos && v.Pos() < loopEnd {
			return false // declared inside the loop; the decl itself is the finding
		}
		sized, found := c.sliceDeclSized(ctx, v)
		return found && !sized
	case *ast.SelectorExpr:
		// r.keys: find r's single composite-literal binding; the field is
		// unsized when the literal does not initialize it.
		base, ok := ast.Unparen(t.X).(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := objOf(ctx.info, base).(*types.Var)
		if !ok || (v.Pos() >= loopPos && v.Pos() < loopEnd) {
			return false
		}
		cl, found := c.structLitBinding(ctx, v)
		if !found {
			return false
		}
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == t.Sel.Name {
					return false // field initialized in the literal
				}
			}
		}
		return true
	}
	return false
}

// sliceDeclSized finds v's declaration, searching the current node's body
// and then enclosing declarations (for variables captured by a literal),
// and reports whether it carries an initial capacity.
func (c *allocChecker) sliceDeclSized(ctx *funcCtx, v *types.Var) (sized, found bool) {
	for n := ctx.node; n != nil; n = n.Parent {
		if n.Body() == nil {
			break
		}
		x := c.ctxFor(n)
		if sized, found = declSizedIn(x, v); found {
			return sized, true
		}
	}
	return false, false
}

func declSizedIn(ctx *funcCtx, v *types.Var) (sized, found bool) {
	ast.Inspect(ctx.body, func(nd ast.Node) bool {
		if found && sized {
			return false
		}
		switch s := nd.(type) {
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if ctx.info.Defs[name] != v {
					continue
				}
				found = true
				if i < len(s.Values) {
					sized = sized || initHasCapacity(ctx, s.Values[i])
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, l := range s.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				if ctx.info.Defs[id] == v {
					found = true
					sized = sized || initHasCapacity(ctx, s.Rhs[i])
					continue
				}
				// A plain `=` re-assignment that installs capacity sizes the
				// slice too: the `var buf []T` + `buf = make(..., 0, n)`
				// hoist idiom, or a `buf = buf[:0]` reuse reset. Growth
				// self-appends (`buf = append(buf, x)`) don't count.
				if ctx.info.Uses[id] == v && !isAppendCall(ctx, s.Rhs[i]) && initHasCapacity(ctx, s.Rhs[i]) {
					found, sized = true, true
				}
			}
		}
		return true
	})
	return sized, found
}

// isAppendCall reports whether e is a call of the builtin append.
func isAppendCall(ctx *funcCtx, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := ctx.info.Uses[id].(*types.Builtin)
	return ok && bi.Name() == "append"
}

// initHasCapacity reports whether a slice initializer provides backing
// capacity: make with an explicit cap (or non-zero length), a non-empty
// composite literal, or anything the analyzer can't see through (a call
// result), which it conservatively treats as sized.
func initHasCapacity(ctx *funcCtx, init ast.Expr) bool {
	switch e := ast.Unparen(init).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if bi, ok := ctx.info.Uses[id].(*types.Builtin); ok && bi.Name() == "make" {
				if len(e.Args) >= 3 {
					return true
				}
				if len(e.Args) == 2 {
					tv, ok := ctx.info.Types[e.Args[1]]
					return !ok || tv.Value == nil || tv.Value.String() != "0"
				}
				return false
			}
		}
		return true // opaque call result
	case *ast.CompositeLit:
		return len(e.Elts) > 0
	case *ast.Ident:
		return e.Name != "nil"
	}
	return true
}

// structLitBinding finds v's single `v := T{...}` binding.
func (c *allocChecker) structLitBinding(ctx *funcCtx, v *types.Var) (*ast.CompositeLit, bool) {
	var lit *ast.CompositeLit
	bindings := 0
	for n := ctx.node; n != nil; n = n.Parent {
		if n.Body() == nil {
			break
		}
		x := c.ctxFor(n)
		ast.Inspect(x.body, func(nd ast.Node) bool {
			s, ok := nd.(*ast.AssignStmt)
			if !ok || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, l := range s.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || objOf(x.info, id) != v {
					continue
				}
				bindings++
				if cl, ok := ast.Unparen(s.Rhs[i]).(*ast.CompositeLit); ok {
					lit = cl
				}
			}
			return true
		})
		if bindings > 0 {
			break
		}
	}
	if bindings == 1 && lit != nil {
		if _, ok := ctx.info.TypeOf(lit).Underlying().(*types.Struct); ok {
			return lit, true
		}
	}
	return nil, false
}

// ---- loop-bound extraction for the append suggestion ----

// rangeBound suggests len(X) for a simple range expression.
func rangeBound(fset *token.FileSet, l *ast.RangeStmt) string {
	switch x := ast.Unparen(l.X).(type) {
	case *ast.Ident:
		return "len(" + x.Name + ")"
	case *ast.SelectorExpr:
		if _, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return "len(" + allocExprText(fset, x) + ")"
		}
	}
	return ""
}

// forBound extracts the limit of `for i := 0; i < N; i++` shapes.
func forBound(fset *token.FileSet, l *ast.ForStmt) string {
	cond, ok := l.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return ""
	}
	switch y := ast.Unparen(cond.Y).(type) {
	case *ast.Ident:
		return y.Name
	case *ast.SelectorExpr:
		if _, ok := ast.Unparen(y.X).(*ast.Ident); ok {
			return allocExprText(fset, y)
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(y.Fun).(*ast.Ident); ok && id.Name == "len" {
			return allocExprText(fset, y)
		}
	}
	return ""
}

// allocExprText renders an expression as compact source text.
func allocExprText(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return fmt.Sprintf("%T", e)
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}
