package lint

// lockorder.go is the path-sensitive lock analyzer. Per function it solves
// a forward may-held dataflow problem over the CFG: every sync.Mutex /
// sync.RWMutex acquisition must be released on all normal exit paths, a
// lock may not be re-acquired while held (self-deadlock), and an RLock may
// not be upgraded to Lock. Across functions it accumulates a
// lock-acquisition ordering graph — an edge A→B means some function
// acquires B while holding A — and reports every cycle as a potential
// deadlock, naming the acquisition site of each edge.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// lockKey identifies one mutex within a function: the root variable object
// (receiver, local, or package var) plus the selector path to the mutex
// field ("mu", "idx.mu"); empty field for a bare mutex variable.
type lockKey struct {
	root  types.Object
	field string
}

// heldLock is the per-lock fact: where it was acquired, whether it is a
// read lock, and whether a deferred release is already registered.
type heldLock struct {
	pos      token.Pos
	node     string // graph node name, "" for locals
	rlock    bool
	deferred bool
}

// lockFact is the may-held set. Facts are immutable; transfer copies.
type lockFact map[lockKey]heldLock

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// lockEdge is one ordering-graph edge between project-wide lock nodes.
type lockEdge struct{ from, to string }

// lockEdgeSite pins an edge to source: where the first lock was held and
// where the second was acquired.
type lockEdgeSite struct{ fromPos, toPos token.Position }

// lockEdgeSet is the cross-package acquisition graph. Packages are
// analyzed concurrently, so recording locks, and each edge keeps its
// minimum-position witness site — not the first seen — so the reported
// sites are identical for any worker count or completion order.
type lockEdgeSet struct {
	mu sync.Mutex
	m  map[lockEdge]lockEdgeSite
}

func (s *lockEdgeSet) record(e lockEdge, site lockEdgeSite) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, seen := s.m[e]
	if !seen || lockSiteLess(site, old) {
		s.m[e] = site
	}
}

// lockSiteLess orders sites by (toPos, fromPos) filename/line/column.
func lockSiteLess(a, b lockEdgeSite) bool {
	if c := comparePositions(a.toPos, b.toPos); c != 0 {
		return c < 0
	}
	return comparePositions(a.fromPos, b.fromPos) < 0
}

// comparePositions is a three-way (filename, line, column) comparison.
func comparePositions(a, b token.Position) int {
	if a.Filename != b.Filename {
		if a.Filename < b.Filename {
			return -1
		}
		return 1
	}
	if a.Line != b.Line {
		return a.Line - b.Line
	}
	return a.Column - b.Column
}

// mutexOp is one resolved locking call inside a statement.
type mutexOp struct {
	key    lockKey
	node   string
	method string // Lock, Unlock, RLock, RUnlock
	pos    token.Pos
}

func newLockOrder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "locks must be released on every exit path, never re-acquired while held, and acquired in a consistent global order (cycles are potential deadlocks)",
	}
	edges := &lockEdgeSet{m: map[lockEdge]lockEdgeSite{}}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, body := range funcBodies(f) {
				checkLockOrder(pass, body, edges)
			}
		}
	}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		reportLockCycles(edges.m, report)
	}
	return a
}

// funcBodies yields every function body in the file in source order:
// FuncDecl bodies and each FuncLit body as its own unit (CFGs do not
// descend into literals). Cross-function state — the lock-acquisition
// graph — canonicalizes its edge sites to the minimum position, so
// results do not depend on this order or on the driver's worker count.
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
		return true
	})
	return bodies
}

// checkLockOrder runs the may-held analysis over one function body.
func checkLockOrder(pass *Pass, body *ast.BlockStmt, edges *lockEdgeSet) {
	cfg := BuildCFG(body)
	prob := FlowProblem[lockFact]{
		Entry: lockFact{},
		Join:  joinLockFacts,
		Equal: equalLockFacts,
		Transfer: func(b *Block, in lockFact) lockFact {
			return lockTransfer(pass, b, in, nil, nil)
		},
		Edge: func(from *Block, succIdx int, out lockFact) lockFact {
			return lockEdgeRefine(pass, from, succIdx, out)
		},
	}
	in := Solve(cfg, prob)

	// Reporting replay: one pass per reachable block, diagnosing while
	// re-running the transfer from each block's solved IN fact.
	for _, blk := range cfg.Blocks {
		fact, ok := in[blk]
		if !ok || blk == cfg.Exit {
			continue
		}
		lockTransfer(pass, blk, fact, pass.Reportf, edges)
	}
	if exit, ok := in[cfg.Exit]; ok {
		keys := sortedLockKeys(exit)
		for _, k := range keys {
			h := exit[k]
			if h.deferred {
				continue
			}
			pass.Reportf(h.pos, "%s is locked here but may not be released on every return path", lockName(k))
		}
	}
}

// lockTransfer pushes the fact through one block. When reportf is non-nil
// it also diagnoses double-locks/upgrades and records ordering edges —
// that mode runs exactly once per block, after the fixed point.
func lockTransfer(pass *Pass, b *Block, in lockFact, reportf func(token.Pos, string, ...any), edges *lockEdgeSet) lockFact {
	fact := in
	mutated := false
	mutable := func() lockFact {
		if !mutated {
			fact = fact.clone()
			mutated = true
		}
		return fact
	}
	for _, n := range b.Nodes {
		for _, op := range nodeMutexOps(pass, n) {
			switch op.method {
			case "Lock", "RLock":
				if held, ok := fact[op.key]; ok && reportf != nil {
					heldAt := posStr(pass.Fset, held.pos)
					switch {
					case held.rlock && op.method == "Lock":
						reportf(op.pos, "%s is upgraded from RLock (held since %s) to Lock; RWMutex upgrades deadlock", lockName(op.key), heldAt)
					case !held.rlock:
						reportf(op.pos, "%s is locked again while already held (acquired at %s); double %s self-deadlocks", lockName(op.key), heldAt, op.method)
					}
				}
				if reportf != nil && edges != nil && op.node != "" {
					for _, k := range sortedLockKeys(fact) {
						h := fact[k]
						if h.node == "" || h.node == op.node {
							continue
						}
						edges.record(lockEdge{from: h.node, to: op.node}, lockEdgeSite{
							fromPos: pass.Fset.Position(h.pos),
							toPos:   pass.Fset.Position(op.pos),
						})
					}
				}
				m := mutable()
				m[op.key] = heldLock{pos: op.pos, node: op.node, rlock: op.method == "RLock"}
			case "Unlock", "RUnlock":
				if op.deferred(n) {
					if h, ok := fact[op.key]; ok {
						m := mutable()
						h.deferred = true
						m[op.key] = h
					}
				} else if _, ok := fact[op.key]; ok {
					m := mutable()
					delete(m, op.key)
				}
			}
		}
	}
	return fact
}

// deferred reports whether this op sits under the defer statement n (either
// `defer mu.Unlock()` or a deferred closure releasing it).
func (op mutexOp) deferred(n ast.Node) bool {
	_, ok := n.(*ast.DeferStmt)
	return ok
}

// nodeMutexOps extracts the locking calls inside one CFG node in source
// order. Nested function literals are skipped — they run later, not here —
// except under a DeferStmt, whose closure body releases locks at return.
func nodeMutexOps(pass *Pass, n ast.Node) []mutexOp {
	var ops []mutexOp
	skipLits := true
	if _, ok := n.(*ast.DeferStmt); ok {
		skipLits = false
	}
	for _, sub := range ownExprs(n) {
		ast.Inspect(sub, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok && skipLits {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, recv := syncMutexMethod(pass.Info, call)
			switch method {
			case "Lock", "Unlock", "RLock", "RUnlock":
			default:
				return true
			}
			key, node, ok := resolveLockKey(pass.Info, recv)
			if !ok {
				return true
			}
			ops = append(ops, mutexOp{key: key, node: node, method: method, pos: call.Pos()})
			return true
		})
	}
	return ops
}

// lockEdgeRefine is the path-sensitive piece: a branch on x.TryLock() (or
// its negation) holds the lock only on the acquiring edge.
func lockEdgeRefine(pass *Pass, from *Block, succIdx int, out lockFact) lockFact {
	if from.Panic {
		// Abnormal exits do not flow held locks into the exit check.
		return lockFact{}
	}
	if from.Cond == nil {
		return out
	}
	key, node, method, negated, ok := tryLockCond(pass.Info, from.Cond)
	if !ok {
		return out
	}
	acquiringEdge := 0
	if negated {
		acquiringEdge = 1
	}
	if succIdx != acquiringEdge {
		return out
	}
	next := out.clone()
	next[key] = heldLock{pos: from.Cond.Pos(), node: node, rlock: method == "TryRLock"}
	return next
}

// tryLockCond matches `x.TryLock()` / `x.TryRLock()` and `!` thereof.
func tryLockCond(info *types.Info, cond ast.Expr) (key lockKey, node, method string, negated bool, ok bool) {
	cond = ast.Unparen(cond)
	if un, isNot := cond.(*ast.UnaryExpr); isNot && un.Op == token.NOT {
		negated = true
		cond = ast.Unparen(un.X)
	}
	call, isCall := cond.(*ast.CallExpr)
	if !isCall {
		return lockKey{}, "", "", false, false
	}
	m, recv := syncMutexMethod(info, call)
	if m != "TryLock" && m != "TryRLock" {
		return lockKey{}, "", "", false, false
	}
	key, node, ok = resolveLockKey(info, recv)
	return key, node, m, negated, ok
}

func joinLockFacts(a, b lockFact) lockFact {
	out := a.clone()
	for k, bv := range b {
		if av, ok := out[k]; ok {
			av.deferred = av.deferred && bv.deferred
			av.rlock = av.rlock && bv.rlock
			out[k] = av
		} else {
			out[k] = bv
		}
	}
	return out
}

func equalLockFacts(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av != bv {
			return false
		}
	}
	return true
}

func sortedLockKeys(f lockFact) []lockKey {
	keys := make([]lockKey, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].root != keys[j].root {
			return keys[i].root.Pos() < keys[j].root.Pos()
		}
		return keys[i].field < keys[j].field
	})
	return keys
}

// syncMutexMethod returns the method name and receiver expression when call
// invokes a locking method of sync.Mutex or sync.RWMutex.
func syncMutexMethod(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", nil
	}
	switch obj.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return obj.Name(), sel.X
	}
	return "", nil
}

// resolveLockKey maps a mutex receiver expression to its identity and, when
// the mutex is a field of a named type or a package-level variable, the
// project-wide graph node name ("server.Metrics.mu", "chaos.faultMu").
func resolveLockKey(info *types.Info, e ast.Expr) (lockKey, string, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return lockKey{}, "", false
		}
		return lockKey{root: obj}, globalNode(obj), true
	case *ast.SelectorExpr:
		var path []string
		cur := x
		for {
			path = append([]string{cur.Sel.Name}, path...)
			inner := ast.Unparen(cur.X)
			switch base := inner.(type) {
			case *ast.Ident:
				obj := info.Uses[base]
				if obj == nil {
					return lockKey{}, "", false
				}
				if _, isPkg := obj.(*types.PkgName); isPkg {
					// pkg.muVar(.field...): the first selector is the root var.
					vobj := info.Uses[cur.Sel]
					if vobj == nil {
						return lockKey{}, "", false
					}
					key := lockKey{root: vobj, field: strings.Join(path[1:], ".")}
					if key.field == "" {
						return key, globalNode(vobj), true
					}
					return key, typeFieldNode(info, x), true
				}
				key := lockKey{root: obj, field: strings.Join(path, ".")}
				return key, typeFieldNode(info, x), true
			case *ast.SelectorExpr:
				cur = base
			default:
				return lockKey{}, "", false
			}
		}
	}
	return lockKey{}, "", false
}

// globalNode names a package-level mutex variable, or "" for locals.
func globalNode(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Name() + "." + v.Name()
}

// typeFieldNode names a mutex that is a field of a named struct type,
// merging all instances of the type into one graph node.
func typeFieldNode(info *types.Info, sel *ast.SelectorExpr) string {
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	named := derefNamed(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Sel.Name
}

func lockName(k lockKey) string {
	if k.field == "" {
		return k.root.Name()
	}
	return k.root.Name() + "." + k.field
}

func posStr(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func posBase(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// reportLockCycles finds every cycle in the acquisition graph and reports
// each once, naming both (all) acquisition sites involved.
func reportLockCycles(edges map[lockEdge]lockEdgeSite, report func(pos token.Position, format string, args ...any)) {
	adj := map[string][]string{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	reported := map[string]bool{}
	// DFS from each node looking for a cycle back to it; canonicalizing on
	// the smallest node keeps each cycle reported exactly once.
	var path []string
	onPath := map[string]bool{}
	var dfs func(start, cur string)
	dfs = func(start, cur string) {
		for _, next := range adj[cur] {
			if next == start {
				cycle := append(append([]string{}, path...), cur)
				min := 0
				for i, n := range cycle {
					if n < cycle[min] {
						min = i
					}
				}
				if cycle[min] != start {
					continue // reported when DFS starts from the minimum
				}
				key := strings.Join(cycle, "→")
				if reported[key] {
					continue
				}
				reported[key] = true
				reportCycle(cycle, edges, report)
				continue
			}
			if onPath[next] || next < start {
				continue
			}
			path = append(path, cur)
			onPath[next] = true
			dfs(start, next)
			onPath[next] = false
			path = path[:len(path)-1]
		}
	}
	for _, n := range nodes {
		onPath[n] = true
		dfs(n, n)
		onPath[n] = false
	}
}

// reportCycle renders one cycle n0→n1→…→n0 with each edge's acquisition
// site, anchored at the site closing the cycle.
func reportCycle(cycle []string, edges map[lockEdge]lockEdgeSite, report func(pos token.Position, format string, args ...any)) {
	if len(cycle) == 2 {
		ab := edges[lockEdge{from: cycle[0], to: cycle[1]}]
		ba := edges[lockEdge{from: cycle[1], to: cycle[0]}]
		report(ba.toPos,
			"potential deadlock: %s is acquired before %s at %s, but %s is acquired before %s at %s",
			cycle[0], cycle[1], posBase(ab.toPos), cycle[1], cycle[0], posBase(ba.toPos))
		return
	}
	var parts []string
	for i := range cycle {
		next := cycle[(i+1)%len(cycle)]
		site := edges[lockEdge{from: cycle[i], to: next}]
		parts = append(parts, fmt.Sprintf("%s before %s (%s)", cycle[i], next, posBase(site.toPos)))
	}
	last := edges[lockEdge{from: cycle[len(cycle)-1], to: cycle[0]}]
	report(last.toPos, "potential deadlock: lock order cycle: %s", strings.Join(parts, ", "))
}
