package lint

import (
	"go/ast"
	"go/types"
)

// newErrDrop builds the errdrop analyzer: inside internal packages, an
// error-typed result may not be assigned to _ or discarded by calling a
// function as a bare statement. fmt's printing functions and the
// never-failing bytes.Buffer / strings.Builder writers are exempt; deferred
// and go'd calls are left to reviewers (flow analysis cannot tell a benign
// deferred Close from a harmful one without more context).
func newErrDrop() *Analyzer {
	a := &Analyzer{
		Name: "errdrop",
		Doc:  "internal packages must not discard error results (assign to _ or ignore a call's error)",
	}
	a.Run = func(pass *Pass) {
		if !pass.Internal() {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					checkAssign(pass, x)
				case *ast.ExprStmt:
					if call, ok := x.X.(*ast.CallExpr); ok {
						checkIgnoredCall(pass, call)
					}
				}
				return true
			})
		}
	}
	return a
}

// checkAssign flags error values assigned to the blank identifier.
func checkAssign(pass *Pass, as *ast.AssignStmt) {
	blankAt := func(i int) bool {
		id, ok := as.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// x, _ := f()
		tv, ok := pass.Info.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i := range as.Lhs {
			if blankAt(i) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(as.Lhs[i].Pos(), "error result assigned to _; handle it (or annotate with //lint:ignore errdrop <reason>)")
			}
		}
		return
	}
	for i := range as.Lhs {
		if i >= len(as.Rhs) || !blankAt(i) {
			continue
		}
		if tv, ok := pass.Info.Types[as.Rhs[i]]; ok && tv.Type != nil && isErrorType(tv.Type) {
			pass.Reportf(as.Lhs[i].Pos(), "error result assigned to _; handle it (or annotate with //lint:ignore errdrop <reason>)")
		}
	}
}

// checkIgnoredCall flags statement-position calls whose error result
// vanishes.
func checkIgnoredCall(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	returnsError := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				returnsError = true
			}
		}
	default:
		returnsError = isErrorType(t)
	}
	if !returnsError || exemptFromErrDrop(pass.Info, call) {
		return
	}
	pass.Reportf(call.Pos(), "call discards its error result; handle it (or annotate with //lint:ignore errdrop <reason>)")
}

// exemptFromErrDrop excludes callees whose errors are conventionally
// meaningless: fmt printing (the io.Writer targets used here never fail
// mid-render) and the in-memory bytes.Buffer / strings.Builder writers,
// which are documented to always return nil errors.
func exemptFromErrDrop(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj == nil {
		return false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return true
	}
	if sig, ok := obj.Type().(*types.Signature); ok {
		if named := namedReceiver(sig); named != nil && named.Obj().Pkg() != nil {
			pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
			if (pkg == "bytes" && name == "Buffer") || (pkg == "strings" && name == "Builder") {
				return true
			}
		}
	}
	return false
}
