package lint

// contextcheck.go verifies context discipline interprocedurally: every
// blocking operation must be reachable only from functions that thread a
// context.Context (or *http.Request, which carries one). leakcheck proves
// goroutines are tied to shutdown paths; contextcheck closes the
// remaining gap — a blocking call that no caller can cancel or bound with
// a deadline. Three rules, all over the project call graph:
//
//  1. http.Get/Post/PostForm/Head (package-level or the *http.Client
//     convenience methods) can never carry a context and are always
//     reported: use http.NewRequestWithContext + (*http.Client).Do.
//  2. (*http.Client).Do and time.Sleep inside a for/range loop (a retry
//     backoff) are reported when the containing function is ctx-free
//     reachable: neither it nor the functions on some caller path down
//     from a root thread a context. time.Sleep reached through a function
//     value (e.g. a pluggable opts.Sleep defaulting to time.Sleep) is
//     resolved by the call graph's function-value CHA.
//  3. A goroutine spawned inside a context-threading function whose body
//     performs channel operations without ever observing the context
//     blocks a request path unconditionally — unless every channel op is
//     a send to a channel proven buffered, which cannot block past
//     capacity.
//
// Suppress intentional cases with //lint:ignore contextcheck <reason>.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

func (l *Linter) newContextCheck() *Analyzer {
	a := &Analyzer{
		Name: "contextcheck",
		Doc:  "blocking operations (HTTP round trips, retry sleeps, channel ops on request-path goroutines) must be reachable only from functions threading a context.Context",
	}
	a.Run = func(*Pass) {}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		g := l.graph
		if g == nil {
			return
		}
		c := &ctxChecker{graph: g, fset: l.fset, threads: map[*CGNode]bool{}}
		c.computeThreading()
		c.computeUncovered()
		for _, n := range g.Nodes {
			if n.Body() == nil {
				continue
			}
			c.checkBlockingCalls(n, report)
			c.checkGoroutineChannels(n, report)
		}
	}
	return a
}

type ctxChecker struct {
	graph *CallGraph
	fset  *token.FileSet
	// threads: the node's own signature (or literal body) gives it a
	// context to observe.
	threads map[*CGNode]bool
	// uncovered: reachable from some root along a path where no function
	// threads a context — nothing on that path can cancel the work.
	uncovered map[*CGNode]bool
}

// threadsContext reports whether the signature carries a context.Context
// or *http.Request parameter.
func signatureThreadsContext(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) {
			return true
		}
		if named := derefNamed(t); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request" {
				return true
			}
		}
	}
	return false
}

func (c *ctxChecker) computeThreading() {
	for _, n := range c.graph.Nodes {
		if signatureThreadsContext(n.Sig()) {
			c.threads[n] = true
			continue
		}
		// A literal that references a context identifier (own param or a
		// capture) observes cancellation even without a ctx parameter.
		if n.Lit != nil && n.Pkg != nil && bodyUsesContext(n.Pkg.Info, n.Lit.Body) {
			c.threads[n] = true
		}
	}
}

// computeUncovered marks every node ctx-free reachable: roots are declared
// functions nobody in the project calls (entry points, including main and
// value-taken handlers without in-edges); coverage propagates through
// call edges until a context-threading signature is crossed.
func (c *ctxChecker) computeUncovered() {
	c.uncovered = map[*CGNode]bool{}
	var queue []*CGNode
	mark := func(n *CGNode) {
		if n == nil || c.threads[n] || c.uncovered[n] {
			return
		}
		c.uncovered[n] = true
		queue = append(queue, n)
	}
	for _, n := range c.graph.Nodes {
		if n.Decl != nil && len(n.In) == 0 {
			mark(n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			mark(e.Callee)
		}
	}
}

// externalCallee returns the callee object for an edge into an external
// function, or nil.
func externalCallee(e *CGEdge) *types.Func {
	if e.Callee == nil || !e.Callee.External() {
		return nil
	}
	return e.Callee.Obj
}

// httpReceiver reports whether fn is a method on net/http's named type.
func httpMethodOn(fn *types.Func, typeName string) bool {
	named := namedReceiver(funcSig(fn))
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == typeName
}

var ctxlessHTTPNames = map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true}

// checkBlockingCalls applies rules 1 and 2 to every call edge out of n.
func (c *ctxChecker) checkBlockingCalls(n *CGNode, report func(pos token.Position, format string, args ...any)) {
	var loops []loopSpan
	loopsBuilt := false
	inLoop := func(pos token.Pos) bool {
		if !loopsBuilt {
			loops = collectLoopSpans(n.Body())
			loopsBuilt = true
		}
		for _, s := range loops {
			if s.start <= pos && pos < s.end {
				return true
			}
		}
		return false
	}
	seen := map[token.Pos]bool{} // one report per call site (CHA may fan out)
	for _, e := range n.Out {
		if e.Kind == CallEnclosing || e.Call == nil || seen[e.Pos] {
			continue
		}
		fn := externalCallee(e)
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		switch {
		case fn.Pkg().Path() == "net/http" && funcSig(fn).Recv() == nil && ctxlessHTTPNames[fn.Name()]:
			seen[e.Pos] = true
			report(c.fset.Position(e.Pos),
				"http.%s cannot carry a context; use http.NewRequestWithContext and (*http.Client).Do", fn.Name())
		case httpMethodOn(fn, "Client") && ctxlessHTTPNames[fn.Name()]:
			seen[e.Pos] = true
			report(c.fset.Position(e.Pos),
				"(*http.Client).%s cannot carry a context; use http.NewRequestWithContext and (*http.Client).Do", fn.Name())
		case httpMethodOn(fn, "Client") && fn.Name() == "Do" && c.uncovered[n]:
			seen[e.Pos] = true
			report(c.fset.Position(e.Pos),
				"HTTP round trip in %s, which no caller path reaches with a context.Context; thread one through", n.Name())
		case fn.Pkg().Path() == "time" && fn.Name() == "Sleep" && c.uncovered[n] && inLoop(e.Pos):
			seen[e.Pos] = true
			via := ""
			if e.Kind == CallFuncValue {
				via = " (reached through a function value)"
			}
			report(c.fset.Position(e.Pos),
				"retry loop sleeps%s in %s, which no caller path reaches with a context.Context/deadline; thread one through and select on ctx.Done()", via, n.Name())
		}
	}
}

type loopSpan struct{ start, end token.Pos }

// collectLoopSpans records the body extent of every for/range statement,
// excluding nested function literals (their loops belong to their own
// node).
func collectLoopSpans(body *ast.BlockStmt) []loopSpan {
	var spans []loopSpan
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			spans = append(spans, loopSpan{x.Body.Pos(), x.Body.End()})
		case *ast.RangeStmt:
			spans = append(spans, loopSpan{x.Body.Pos(), x.Body.End()})
		}
		return true
	})
	return spans
}

// checkGoroutineChannels applies rule 3: n spawns a goroutine literal on a
// context-threading path; the literal must observe the context if it
// blocks on channels.
func (c *ctxChecker) checkGoroutineChannels(n *CGNode, report func(pos token.Position, format string, args ...any)) {
	if !c.threads[n] {
		return
	}
	for _, e := range n.Out {
		if e.Kind != CallEnclosing || !e.Go {
			continue
		}
		lit := e.Callee
		if lit == nil || lit.Lit == nil || c.threads[lit] {
			continue
		}
		if pos, ok := c.blockingChanOp(lit); ok {
			report(c.fset.Position(pos),
				"goroutine spawned on a request path blocks on a channel without observing the caller's context; add a ctx.Done() case or pass the context in")
		}
	}
}

// blockingChanOp returns the first channel operation in the literal's body
// that can block indefinitely: any receive or select, or a send to a
// channel not proven buffered. Channel ops inside nested literals belong
// to those literals' own spawn analysis.
func (c *ctxChecker) blockingChanOp(lit *CGNode) (token.Pos, bool) {
	info := lit.Pkg.Info
	var found token.Pos
	ok := false
	note := func(pos token.Pos) {
		if !ok || pos < found {
			found, ok = pos, true
		}
	}
	ast.Inspect(lit.Lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return x == lit.Lit
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				note(x.Pos())
			}
		case *ast.SelectStmt:
			note(x.Pos())
			return false
		case *ast.SendStmt:
			if !chanProvenBuffered(info, c.enclosingDeclBody(lit), x.Chan) {
				note(x.Pos())
			}
		case *ast.RangeStmt:
			if tv, tok := info.Types[x.X]; tok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					note(x.Pos())
				}
			}
		}
		return true
	})
	return found, ok
}

// enclosingDeclBody walks literal parents up to the declared function
// whose body contains every make site the literal can see.
func (c *ctxChecker) enclosingDeclBody(n *CGNode) *ast.BlockStmt {
	for n != nil {
		if n.Decl != nil {
			return n.Decl.Body
		}
		n = n.Parent
	}
	return nil
}

// chanProvenBuffered reports whether ch resolves to a channel made with a
// constant capacity > 0 somewhere in scope — a send can block only if the
// buffer is full, which leakcheck's shutdown rules already bound.
func chanProvenBuffered(info *types.Info, scope *ast.BlockStmt, ch ast.Expr) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok || scope == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	buffered := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if buffered {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			def := info.Defs[lid]
			if def == nil {
				def = info.Uses[lid]
			}
			if def != obj {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if fid, ok := call.Fun.(*ast.Ident); !ok || fid.Name != "make" {
				continue
			}
			if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(tv.Value); exact && v > 0 {
					buffered = true
				}
			}
		}
		return true
	})
	return buffered
}

// bodyUsesContext is usesContext without a Pass.
func bodyUsesContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := info.Uses[id]; obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}
