package lint

// guardedby.go enforces `// guarded by mu` field annotations
// path-sensitively: a guarded field access is legal only when the
// annotated mutex is held *at that program point*, not merely somewhere in
// the method. The analyzer solves a must-held forward dataflow problem per
// method: each receiver mutex carries a mode (unlocked < RLocked < Locked),
// joins at merges take the weakest mode, Unlock before a path's access is
// a finding, and a TryLock branch holds the lock only on its success edge.
// Writes additionally require the exclusive Lock. Helpers that run with
// the lock already held document that with //lint:ignore guardedby.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// guardedByRE matches the annotation in a struct field's doc or trailing
// comment: `// <field> guarded by mu` or just `// guarded by mu`.
var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardSpec records that a named struct type's field is protected by its
// mutex field.
type guardSpec struct {
	field string
	mu    string
}

// Lock modes form the 3-point must-lattice; join takes the minimum.
const (
	muUnlocked = 0
	muRLocked  = 1
	muLocked   = 2
)

// guardFact maps receiver-mutex name -> held mode. Only mutexes held above
// muUnlocked appear; absence means unlocked. Immutable after creation.
type guardFact map[string]int

func (f guardFact) clone() guardFact {
	out := make(guardFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func newGuardedBy() *Analyzer {
	a := &Analyzer{
		Name: "guardedby",
		Doc:  "fields annotated '// guarded by mu' may only be accessed where mu is held on that path (writes need the exclusive Lock)",
	}
	a.Run = func(pass *Pass) {
		// Pass 1: collect annotations, keyed by the struct's type name object.
		guards := map[types.Object][]guardSpec{}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				obj := pass.Info.Defs[ts.Name]
				if obj == nil {
					return true
				}
				for _, field := range st.Fields.List {
					mu := annotationMutex(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						guards[obj] = append(guards[obj], guardSpec{field: name.Name, mu: mu})
					}
				}
				return true
			})
		}
		if len(guards) == 0 {
			return
		}
		// Pass 2: audit every method of an annotated type.
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 || fn.Body == nil {
					continue
				}
				recvField := fn.Recv.List[0]
				if len(recvField.Names) == 0 {
					continue // unnamed receiver cannot access fields
				}
				recvObj := pass.Info.Defs[recvField.Names[0]]
				if recvObj == nil {
					continue
				}
				named := derefNamed(recvObj.Type())
				if named == nil {
					continue
				}
				specs := guards[named.Obj()]
				if len(specs) == 0 {
					continue
				}
				auditMethod(pass, fn, recvObj, specs)
			}
		}
	}
	return a
}

// annotationMutex extracts the guard's mutex name from a field's comments.
func annotationMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// auditMethod solves the must-held problem over the method's CFG and
// checks every guarded access against the mode at its program point.
func auditMethod(pass *Pass, fn *ast.FuncDecl, recvObj types.Object, specs []guardSpec) {
	// recvSelector returns the field name if e is recv.<field>, else "".
	recvSelector := func(e ast.Expr) string {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.Info.Uses[id] != recvObj {
			return ""
		}
		return sel.Sel.Name
	}

	// muOps lists this node's receiver-mutex transitions in source order;
	// deferred releases keep the lock held to the end of the method.
	type muOp struct {
		mu   string
		mode int // mode after the op; -1 means release
	}
	nodeOps := func(n ast.Node) []muOp {
		var ops []muOp
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return nil
		}
		for _, sub := range ownExprs(n) {
			ast.Inspect(sub, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				mu := recvSelector(sel.X)
				if mu == "" {
					return true
				}
				switch sel.Sel.Name {
				case "Lock":
					ops = append(ops, muOp{mu, muLocked})
				case "RLock":
					ops = append(ops, muOp{mu, muRLocked})
				case "Unlock", "RUnlock":
					ops = append(ops, muOp{mu, -1})
				}
				return true
			})
		}
		return ops
	}

	transferNode := func(fact guardFact, n ast.Node) guardFact {
		ops := nodeOps(n)
		if len(ops) == 0 {
			return fact
		}
		out := fact.clone()
		for _, op := range ops {
			if op.mode < 0 {
				delete(out, op.mu)
			} else {
				out[op.mu] = op.mode
			}
		}
		return out
	}

	cfg := BuildCFG(fn.Body)
	in := Solve(cfg, FlowProblem[guardFact]{
		Entry: guardFact{},
		Join: func(a, b guardFact) guardFact {
			out := guardFact{}
			for k, av := range a {
				if bv, ok := b[k]; ok {
					if bv < av {
						av = bv
					}
					out[k] = av
				}
			}
			return out
		},
		Equal: func(a, b guardFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, av := range a {
				if bv, ok := b[k]; !ok || av != bv {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, f guardFact) guardFact {
			for _, n := range b.Nodes {
				f = transferNode(f, n)
			}
			return f
		},
		Edge: func(from *Block, succIdx int, out guardFact) guardFact {
			// recv.mu.TryLock() holds the lock only on the success edge.
			mu, mode, negated, ok := recvTryLockCond(pass, recvObj, from.Cond)
			if !ok {
				return out
			}
			acquire := 0
			if negated {
				acquire = 1
			}
			if succIdx != acquire {
				return out
			}
			next := out.clone()
			next[mu] = mode
			return next
		},
	})

	// Collect write targets once (same marking as assignments/inc-dec, with
	// element writes counting against the container).
	writes := map[ast.Expr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				writes[lhs] = true
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					writes[idx.X] = true
				}
			}
		case *ast.IncDecStmt:
			writes[x.X] = true
			if idx, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok {
				writes[idx.X] = true
			}
		}
		return true
	})

	// Replay each reachable block once, checking accesses at their exact
	// point between lock transitions.
	checkNode := func(fact guardFact, n ast.Node) {
		for _, sub := range ownExprs(n) {
			ast.Inspect(sub, func(x ast.Node) bool {
				e, ok := x.(ast.Expr)
				if !ok {
					return true
				}
				field := recvSelector(e)
				if field == "" {
					return true
				}
				for _, spec := range specs {
					if spec.field != field {
						continue
					}
					mode := fact[spec.mu]
					switch {
					case mode == muUnlocked:
						pass.Reportf(e.Pos(), "%s.%s is guarded by %s but this path does not hold it",
							recvObj.Name(), spec.field, spec.mu)
					case writes[e] && mode == muRLocked:
						pass.Reportf(e.Pos(), "%s.%s is written under %s.RLock; writes need the exclusive Lock",
							recvObj.Name(), spec.field, spec.mu)
					}
				}
				return true
			})
		}
	}
	for _, blk := range cfg.Blocks {
		fact, reachable := in[blk]
		if !reachable || blk == cfg.Exit {
			continue
		}
		for _, n := range blk.Nodes {
			checkNode(fact, n)
			fact = transferNode(fact, n)
		}
	}
}

// recvTryLockCond matches `recv.mu.TryLock()` / `recv.mu.TryRLock()` and
// their negations as a branch condition.
func recvTryLockCond(pass *Pass, recvObj types.Object, cond ast.Expr) (mu string, mode int, negated, ok bool) {
	if cond == nil {
		return "", 0, false, false
	}
	cond = ast.Unparen(cond)
	if un, isNot := cond.(*ast.UnaryExpr); isNot && un.Op == token.NOT {
		negated = true
		cond = ast.Unparen(un.X)
	}
	call, isCall := cond.(*ast.CallExpr)
	if !isCall {
		return "", 0, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false, false
	}
	inner, isSel2 := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel2 {
		return "", 0, false, false
	}
	id, isID := ast.Unparen(inner.X).(*ast.Ident)
	if !isID || pass.Info.Uses[id] != recvObj {
		return "", 0, false, false
	}
	switch sel.Sel.Name {
	case "TryLock":
		return inner.Sel.Name, muLocked, negated, true
	case "TryRLock":
		return inner.Sel.Name, muRLocked, negated, true
	}
	return "", 0, false, false
}
