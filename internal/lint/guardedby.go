package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// guardedByRE matches the annotation in a struct field's doc or trailing
// comment: `// <field> guarded by mu` or just `// guarded by mu`.
var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardSpec records that a named struct type's field is protected by its
// mutex field.
type guardSpec struct {
	field string
	mu    string
}

// newGuardedBy builds the guardedby analyzer: a struct field annotated
// `// guarded by mu` may only be read or written inside methods of that
// type which lock the same receiver's mu (mu.Lock or mu.RLock; writes
// require the exclusive Lock). The check is flow-insensitive and scoped to
// methods — helpers that run with the lock already held document that with
// //lint:ignore guardedby <reason>.
func newGuardedBy() *Analyzer {
	a := &Analyzer{
		Name: "guardedby",
		Doc:  "fields annotated '// guarded by mu' may only be accessed in methods that lock mu on the same receiver",
	}
	a.Run = func(pass *Pass) {
		// Pass 1: collect annotations, keyed by the struct's type name object.
		guards := map[types.Object][]guardSpec{}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				obj := pass.Info.Defs[ts.Name]
				if obj == nil {
					return true
				}
				for _, field := range st.Fields.List {
					mu := annotationMutex(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						guards[obj] = append(guards[obj], guardSpec{field: name.Name, mu: mu})
					}
				}
				return true
			})
		}
		if len(guards) == 0 {
			return
		}
		// Pass 2: audit every method of an annotated type.
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 || fn.Body == nil {
					continue
				}
				recvField := fn.Recv.List[0]
				if len(recvField.Names) == 0 {
					continue // unnamed receiver cannot access fields
				}
				recvObj := pass.Info.Defs[recvField.Names[0]]
				if recvObj == nil {
					continue
				}
				named := derefNamed(recvObj.Type())
				if named == nil {
					continue
				}
				specs := guards[named.Obj()]
				if len(specs) == 0 {
					continue
				}
				auditMethod(pass, fn, recvObj, specs)
			}
		}
	}
	return a
}

// annotationMutex extracts the guard's mutex name from a field's comments.
func annotationMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// auditMethod checks one method's accesses to guarded fields against the
// locks it takes on its receiver.
func auditMethod(pass *Pass, fn *ast.FuncDecl, recvObj types.Object, specs []guardSpec) {
	type access struct {
		pos   ast.Node
		spec  guardSpec
		write bool
	}
	var accesses []access
	locked := map[string]string{} // mutex name -> "Lock" | "RLock" (strongest seen)

	// recvSelector returns the field name if e is recv.<field>, else "".
	recvSelector := func(e ast.Expr) string {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.Info.Uses[id] != recvObj {
			return ""
		}
		return sel.Sel.Name
	}

	writes := map[ast.Expr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				writes[lhs] = true
				// Writing an element of a guarded map/slice mutates the
				// guarded field too: mark the indexed expression.
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					writes[idx.X] = true
				}
			}
		case *ast.IncDecStmt:
			writes[x.X] = true
			if idx, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok {
				writes[idx.X] = true
			}
		case *ast.CallExpr:
			// recv.mu.Lock() / recv.mu.RLock() — a two-level selector.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				method := sel.Sel.Name
				if method == "Lock" || method == "RLock" {
					if mu := recvSelector(sel.X); mu != "" {
						if method == "Lock" || locked[mu] == "" {
							locked[mu] = method
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		field := recvSelector(e)
		if field == "" {
			return true
		}
		for _, spec := range specs {
			if spec.field == field {
				accesses = append(accesses, access{pos: e, spec: spec, write: writes[e]})
			}
		}
		return true
	})

	for _, acc := range accesses {
		held := locked[acc.spec.mu]
		switch {
		case held == "":
			pass.Reportf(acc.pos.Pos(), "%s.%s is guarded by %s but %s does not lock it",
				recvObj.Name(), acc.spec.field, acc.spec.mu, fn.Name.Name)
		case acc.write && held == "RLock":
			pass.Reportf(acc.pos.Pos(), "%s.%s is written under %s.RLock; writes need the exclusive Lock",
				recvObj.Name(), acc.spec.field, acc.spec.mu)
		}
	}
}
